file(REMOVE_RECURSE
  "CMakeFiles/tsx_core.dir/runtime.cpp.o"
  "CMakeFiles/tsx_core.dir/runtime.cpp.o.d"
  "libtsx_core.a"
  "libtsx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
