file(REMOVE_RECURSE
  "libtsx_stamp.a"
)
