# Empty dependencies file for tsx_stamp.
# This may be replaced when dependencies are built.
