file(REMOVE_RECURSE
  "CMakeFiles/tsx_stamp.dir/apps/bayes.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/bayes.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/genome.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/genome.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/intruder.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/intruder.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/kmeans.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/kmeans.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/labyrinth.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/labyrinth.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/ssca2.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/ssca2.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/vacation.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/vacation.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/apps/yada.cpp.o"
  "CMakeFiles/tsx_stamp.dir/apps/yada.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/bitmap.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/bitmap.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/hashtable.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/hashtable.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/heap.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/heap.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/list.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/list.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/queue.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/queue.cpp.o.d"
  "CMakeFiles/tsx_stamp.dir/lib/rbtree.cpp.o"
  "CMakeFiles/tsx_stamp.dir/lib/rbtree.cpp.o.d"
  "libtsx_stamp.a"
  "libtsx_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
