
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stamp/apps/bayes.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/bayes.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/bayes.cpp.o.d"
  "/root/repo/src/stamp/apps/genome.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/genome.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/genome.cpp.o.d"
  "/root/repo/src/stamp/apps/intruder.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/intruder.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/intruder.cpp.o.d"
  "/root/repo/src/stamp/apps/kmeans.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/kmeans.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/kmeans.cpp.o.d"
  "/root/repo/src/stamp/apps/labyrinth.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/labyrinth.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/labyrinth.cpp.o.d"
  "/root/repo/src/stamp/apps/ssca2.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/ssca2.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/ssca2.cpp.o.d"
  "/root/repo/src/stamp/apps/vacation.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/vacation.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/vacation.cpp.o.d"
  "/root/repo/src/stamp/apps/yada.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/yada.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/apps/yada.cpp.o.d"
  "/root/repo/src/stamp/lib/bitmap.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/bitmap.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/bitmap.cpp.o.d"
  "/root/repo/src/stamp/lib/hashtable.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/hashtable.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/hashtable.cpp.o.d"
  "/root/repo/src/stamp/lib/heap.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/heap.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/heap.cpp.o.d"
  "/root/repo/src/stamp/lib/list.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/list.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/list.cpp.o.d"
  "/root/repo/src/stamp/lib/queue.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/queue.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/queue.cpp.o.d"
  "/root/repo/src/stamp/lib/rbtree.cpp" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/rbtree.cpp.o" "gcc" "src/stamp/CMakeFiles/tsx_stamp.dir/lib/rbtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tsx_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsx_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/tsx_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tsx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
