
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backing_store.cpp" "src/sim/CMakeFiles/tsx_sim.dir/backing_store.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/backing_store.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/tsx_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/tsx_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/sim/CMakeFiles/tsx_sim.dir/fiber.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/fiber.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/tsx_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/tsx_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/types.cpp" "src/sim/CMakeFiles/tsx_sim.dir/types.cpp.o" "gcc" "src/sim/CMakeFiles/tsx_sim.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
