file(REMOVE_RECURSE
  "CMakeFiles/tsx_sim.dir/backing_store.cpp.o"
  "CMakeFiles/tsx_sim.dir/backing_store.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/cache.cpp.o"
  "CMakeFiles/tsx_sim.dir/cache.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/energy_model.cpp.o"
  "CMakeFiles/tsx_sim.dir/energy_model.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/fiber.cpp.o"
  "CMakeFiles/tsx_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/machine.cpp.o"
  "CMakeFiles/tsx_sim.dir/machine.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/memory_system.cpp.o"
  "CMakeFiles/tsx_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/tsx_sim.dir/types.cpp.o"
  "CMakeFiles/tsx_sim.dir/types.cpp.o.d"
  "libtsx_sim.a"
  "libtsx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
