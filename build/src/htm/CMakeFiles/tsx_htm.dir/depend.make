# Empty dependencies file for tsx_htm.
# This may be replaced when dependencies are built.
