file(REMOVE_RECURSE
  "CMakeFiles/tsx_htm.dir/hle.cpp.o"
  "CMakeFiles/tsx_htm.dir/hle.cpp.o.d"
  "CMakeFiles/tsx_htm.dir/rtm.cpp.o"
  "CMakeFiles/tsx_htm.dir/rtm.cpp.o.d"
  "libtsx_htm.a"
  "libtsx_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
