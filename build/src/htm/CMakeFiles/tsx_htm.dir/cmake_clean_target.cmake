file(REMOVE_RECURSE
  "libtsx_htm.a"
)
