file(REMOVE_RECURSE
  "CMakeFiles/tsx_util.dir/flags.cpp.o"
  "CMakeFiles/tsx_util.dir/flags.cpp.o.d"
  "CMakeFiles/tsx_util.dir/summary.cpp.o"
  "CMakeFiles/tsx_util.dir/summary.cpp.o.d"
  "CMakeFiles/tsx_util.dir/table.cpp.o"
  "CMakeFiles/tsx_util.dir/table.cpp.o.d"
  "libtsx_util.a"
  "libtsx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
