file(REMOVE_RECURSE
  "libtsx_util.a"
)
