# Empty compiler generated dependencies file for tsx_util.
# This may be replaced when dependencies are built.
