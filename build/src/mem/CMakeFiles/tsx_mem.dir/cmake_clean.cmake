file(REMOVE_RECURSE
  "CMakeFiles/tsx_mem.dir/sim_heap.cpp.o"
  "CMakeFiles/tsx_mem.dir/sim_heap.cpp.o.d"
  "libtsx_mem.a"
  "libtsx_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
