file(REMOVE_RECURSE
  "CMakeFiles/tsx_sync.dir/spinlock.cpp.o"
  "CMakeFiles/tsx_sync.dir/spinlock.cpp.o.d"
  "libtsx_sync.a"
  "libtsx_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
