
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/spinlock.cpp" "src/sync/CMakeFiles/tsx_sync.dir/spinlock.cpp.o" "gcc" "src/sync/CMakeFiles/tsx_sync.dir/spinlock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
