# Empty compiler generated dependencies file for tsx_sync.
# This may be replaced when dependencies are built.
