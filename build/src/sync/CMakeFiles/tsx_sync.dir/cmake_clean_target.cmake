file(REMOVE_RECURSE
  "libtsx_sync.a"
)
