file(REMOVE_RECURSE
  "CMakeFiles/tsx_stm.dir/common.cpp.o"
  "CMakeFiles/tsx_stm.dir/common.cpp.o.d"
  "CMakeFiles/tsx_stm.dir/tinystm.cpp.o"
  "CMakeFiles/tsx_stm.dir/tinystm.cpp.o.d"
  "CMakeFiles/tsx_stm.dir/tl2.cpp.o"
  "CMakeFiles/tsx_stm.dir/tl2.cpp.o.d"
  "libtsx_stm.a"
  "libtsx_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
