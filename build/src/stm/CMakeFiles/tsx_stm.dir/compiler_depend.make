# Empty compiler generated dependencies file for tsx_stm.
# This may be replaced when dependencies are built.
