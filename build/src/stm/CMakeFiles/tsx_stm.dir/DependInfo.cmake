
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stm/common.cpp" "src/stm/CMakeFiles/tsx_stm.dir/common.cpp.o" "gcc" "src/stm/CMakeFiles/tsx_stm.dir/common.cpp.o.d"
  "/root/repo/src/stm/tinystm.cpp" "src/stm/CMakeFiles/tsx_stm.dir/tinystm.cpp.o" "gcc" "src/stm/CMakeFiles/tsx_stm.dir/tinystm.cpp.o.d"
  "/root/repo/src/stm/tl2.cpp" "src/stm/CMakeFiles/tsx_stm.dir/tl2.cpp.o" "gcc" "src/stm/CMakeFiles/tsx_stm.dir/tl2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
