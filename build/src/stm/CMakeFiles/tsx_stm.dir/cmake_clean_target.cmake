file(REMOVE_RECURSE
  "libtsx_stm.a"
)
