file(REMOVE_RECURSE
  "CMakeFiles/tsx_eigenbench.dir/eigenbench.cpp.o"
  "CMakeFiles/tsx_eigenbench.dir/eigenbench.cpp.o.d"
  "libtsx_eigenbench.a"
  "libtsx_eigenbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsx_eigenbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
