file(REMOVE_RECURSE
  "libtsx_eigenbench.a"
)
