# Empty compiler generated dependencies file for tsx_eigenbench.
# This may be replaced when dependencies are built.
