
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_backing_store.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_backing_store.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_backing_store.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_containers.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_containers.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_containers.cpp.o.d"
  "/root/repo/tests/test_eigen_knobs.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_eigen_knobs.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_eigen_knobs.cpp.o.d"
  "/root/repo/tests/test_eigenbench.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_eigenbench.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_eigenbench.cpp.o.d"
  "/root/repo/tests/test_fiber.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_fiber.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_fiber.cpp.o.d"
  "/root/repo/tests/test_heap.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_heap.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_heap.cpp.o.d"
  "/root/repo/tests/test_hle.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_hle.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_hle.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_list.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_list.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_list.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_memory_system.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_queue.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_queue.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_queue.cpp.o.d"
  "/root/repo/tests/test_rbtree.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_rbtree.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_rbtree.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rtm.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_rtm.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_rtm.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_shapes.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_shapes.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_shapes.cpp.o.d"
  "/root/repo/tests/test_stm.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_stm.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_stm.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_sync.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/tsxlab_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/tsxlab_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsx_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tsx_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/tsx_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tsx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eigenbench/CMakeFiles/tsx_eigenbench.dir/DependInfo.cmake"
  "/root/repo/build/src/stamp/CMakeFiles/tsx_stamp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
