# Empty compiler generated dependencies file for tsxlab_tests.
# This may be replaced when dependencies are built.
