file(REMOVE_RECURSE
  "CMakeFiles/packet_reassembly.dir/packet_reassembly.cpp.o"
  "CMakeFiles/packet_reassembly.dir/packet_reassembly.cpp.o.d"
  "packet_reassembly"
  "packet_reassembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_reassembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
