# Empty dependencies file for packet_reassembly.
# This may be replaced when dependencies are built.
