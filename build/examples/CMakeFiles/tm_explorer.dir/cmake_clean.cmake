file(REMOVE_RECURSE
  "CMakeFiles/tm_explorer.dir/tm_explorer.cpp.o"
  "CMakeFiles/tm_explorer.dir/tm_explorer.cpp.o.d"
  "tm_explorer"
  "tm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
