# Empty compiler generated dependencies file for tm_explorer.
# This may be replaced when dependencies are built.
