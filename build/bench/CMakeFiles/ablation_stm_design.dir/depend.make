# Empty dependencies file for ablation_stm_design.
# This may be replaced when dependencies are built.
