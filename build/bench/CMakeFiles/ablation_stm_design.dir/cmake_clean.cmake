file(REMOVE_RECURSE
  "CMakeFiles/ablation_stm_design.dir/ablation_stm_design.cpp.o"
  "CMakeFiles/ablation_stm_design.dir/ablation_stm_design.cpp.o.d"
  "ablation_stm_design"
  "ablation_stm_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stm_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
