file(REMOVE_RECURSE
  "CMakeFiles/fig06_locality.dir/fig06_locality.cpp.o"
  "CMakeFiles/fig06_locality.dir/fig06_locality.cpp.o.d"
  "fig06_locality"
  "fig06_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
