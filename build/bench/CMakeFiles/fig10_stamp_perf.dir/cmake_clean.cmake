file(REMOVE_RECURSE
  "CMakeFiles/fig10_stamp_perf.dir/fig10_stamp_perf.cpp.o"
  "CMakeFiles/fig10_stamp_perf.dir/fig10_stamp_perf.cpp.o.d"
  "fig10_stamp_perf"
  "fig10_stamp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_stamp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
