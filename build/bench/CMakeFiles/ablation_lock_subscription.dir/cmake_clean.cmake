file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_subscription.dir/ablation_lock_subscription.cpp.o"
  "CMakeFiles/ablation_lock_subscription.dir/ablation_lock_subscription.cpp.o.d"
  "ablation_lock_subscription"
  "ablation_lock_subscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_subscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
