# Empty dependencies file for ablation_lock_subscription.
# This may be replaced when dependencies are built.
