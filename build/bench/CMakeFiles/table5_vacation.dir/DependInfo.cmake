
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_vacation.cpp" "bench/CMakeFiles/table5_vacation.dir/table5_vacation.cpp.o" "gcc" "bench/CMakeFiles/table5_vacation.dir/table5_vacation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tsx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eigenbench/CMakeFiles/tsx_eigenbench.dir/DependInfo.cmake"
  "/root/repo/build/src/stamp/CMakeFiles/tsx_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/tsx_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsx_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/tsx_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tsx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
