file(REMOVE_RECURSE
  "CMakeFiles/table5_vacation.dir/table5_vacation.cpp.o"
  "CMakeFiles/table5_vacation.dir/table5_vacation.cpp.o.d"
  "table5_vacation"
  "table5_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
