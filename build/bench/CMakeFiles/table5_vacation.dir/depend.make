# Empty dependencies file for table5_vacation.
# This may be replaced when dependencies are built.
