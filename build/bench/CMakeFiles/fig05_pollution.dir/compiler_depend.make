# Empty compiler generated dependencies file for fig05_pollution.
# This may be replaced when dependencies are built.
