file(REMOVE_RECURSE
  "CMakeFiles/fig05_pollution.dir/fig05_pollution.cpp.o"
  "CMakeFiles/fig05_pollution.dir/fig05_pollution.cpp.o.d"
  "fig05_pollution"
  "fig05_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
