file(REMOVE_RECURSE
  "CMakeFiles/fig01_capacity.dir/fig01_capacity.cpp.o"
  "CMakeFiles/fig01_capacity.dir/fig01_capacity.cpp.o.d"
  "fig01_capacity"
  "fig01_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
