# Empty compiler generated dependencies file for extension_hle_vs_rtm.
# This may be replaced when dependencies are built.
