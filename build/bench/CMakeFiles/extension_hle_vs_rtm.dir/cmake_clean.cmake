file(REMOVE_RECURSE
  "CMakeFiles/extension_hle_vs_rtm.dir/extension_hle_vs_rtm.cpp.o"
  "CMakeFiles/extension_hle_vs_rtm.dir/extension_hle_vs_rtm.cpp.o.d"
  "extension_hle_vs_rtm"
  "extension_hle_vs_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hle_vs_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
