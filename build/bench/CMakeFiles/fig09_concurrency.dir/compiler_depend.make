# Empty compiler generated dependencies file for fig09_concurrency.
# This may be replaced when dependencies are built.
