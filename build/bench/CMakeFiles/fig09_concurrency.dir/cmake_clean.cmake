file(REMOVE_RECURSE
  "CMakeFiles/fig09_concurrency.dir/fig09_concurrency.cpp.o"
  "CMakeFiles/fig09_concurrency.dir/fig09_concurrency.cpp.o.d"
  "fig09_concurrency"
  "fig09_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
