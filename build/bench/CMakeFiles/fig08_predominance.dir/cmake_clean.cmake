file(REMOVE_RECURSE
  "CMakeFiles/fig08_predominance.dir/fig08_predominance.cpp.o"
  "CMakeFiles/fig08_predominance.dir/fig08_predominance.cpp.o.d"
  "fig08_predominance"
  "fig08_predominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_predominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
