# Empty compiler generated dependencies file for fig08_predominance.
# This may be replaced when dependencies are built.
