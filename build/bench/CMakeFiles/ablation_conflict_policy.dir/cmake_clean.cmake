file(REMOVE_RECURSE
  "CMakeFiles/ablation_conflict_policy.dir/ablation_conflict_policy.cpp.o"
  "CMakeFiles/ablation_conflict_policy.dir/ablation_conflict_policy.cpp.o.d"
  "ablation_conflict_policy"
  "ablation_conflict_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conflict_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
