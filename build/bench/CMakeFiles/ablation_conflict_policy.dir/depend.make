# Empty dependencies file for ablation_conflict_policy.
# This may be replaced when dependencies are built.
