file(REMOVE_RECURSE
  "CMakeFiles/ablation_retry_budget.dir/ablation_retry_budget.cpp.o"
  "CMakeFiles/ablation_retry_budget.dir/ablation_retry_budget.cpp.o.d"
  "ablation_retry_budget"
  "ablation_retry_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retry_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
