file(REMOVE_RECURSE
  "CMakeFiles/table4_intruder.dir/table4_intruder.cpp.o"
  "CMakeFiles/table4_intruder.dir/table4_intruder.cpp.o.d"
  "table4_intruder"
  "table4_intruder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_intruder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
