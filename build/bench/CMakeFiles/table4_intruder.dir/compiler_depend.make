# Empty compiler generated dependencies file for table4_intruder.
# This may be replaced when dependencies are built.
