# Empty dependencies file for fig04_txlen.
# This may be replaced when dependencies are built.
