file(REMOVE_RECURSE
  "CMakeFiles/fig04_txlen.dir/fig04_txlen.cpp.o"
  "CMakeFiles/fig04_txlen.dir/fig04_txlen.cpp.o.d"
  "fig04_txlen"
  "fig04_txlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_txlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
