# Empty dependencies file for fig12_abort_distribution.
# This may be replaced when dependencies are built.
