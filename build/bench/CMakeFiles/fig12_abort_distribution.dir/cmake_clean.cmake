file(REMOVE_RECURSE
  "CMakeFiles/fig12_abort_distribution.dir/fig12_abort_distribution.cpp.o"
  "CMakeFiles/fig12_abort_distribution.dir/fig12_abort_distribution.cpp.o.d"
  "fig12_abort_distribution"
  "fig12_abort_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_abort_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
