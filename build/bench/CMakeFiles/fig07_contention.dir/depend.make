# Empty dependencies file for fig07_contention.
# This may be replaced when dependencies are built.
