file(REMOVE_RECURSE
  "CMakeFiles/fig07_contention.dir/fig07_contention.cpp.o"
  "CMakeFiles/fig07_contention.dir/fig07_contention.cpp.o.d"
  "fig07_contention"
  "fig07_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
