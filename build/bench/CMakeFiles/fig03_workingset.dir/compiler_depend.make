# Empty compiler generated dependencies file for fig03_workingset.
# This may be replaced when dependencies are built.
