file(REMOVE_RECURSE
  "CMakeFiles/fig03_workingset.dir/fig03_workingset.cpp.o"
  "CMakeFiles/fig03_workingset.dir/fig03_workingset.cpp.o.d"
  "fig03_workingset"
  "fig03_workingset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_workingset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
