// Tests for the src/check subsystem: the serializability checker's replay
// semantics on hand-built histories, the history recorder's integration
// with every backend, and the schedule explorer's ability to catch (and
// shrink) an intentionally broken conflict-detection policy.

#include <gtest/gtest.h>

#include <unordered_map>

#include "check/checker.h"
#include "check/explorer.h"
#include "check/history.h"
#include "check/oracle.h"
#include "mem/layout.h"

namespace {

using tsx::check::Access;
using tsx::check::CheckResult;
using tsx::check::ExplorerConfig;
using tsx::check::History;
using tsx::check::OracleConfig;
using tsx::check::Unit;
using tsx::core::Backend;
using tsx::sim::Addr;
using tsx::sim::Word;

constexpr Addr kX = tsx::mem::kHeapBase;
constexpr Addr kY = tsx::mem::kHeapBase + 8;

Unit strict_unit(tsx::sim::CtxId ctx, std::vector<Access> accs) {
  Unit u;
  u.ctx = ctx;
  u.accesses = std::move(accs);
  return u;
}

Unit stm_unit(tsx::sim::CtxId ctx, std::vector<Access> accs) {
  Unit u = strict_unit(ctx, std::move(accs));
  u.stm = true;
  return u;
}

// A final-state oracle that replays the expected values.
std::function<Word(Addr)> final_is(std::unordered_map<Addr, Word> vals) {
  return [vals = std::move(vals)](Addr a) {
    auto it = vals.find(a);
    return it != vals.end() ? it->second : Word{0};
  };
}

TEST(Checker, AcceptsSerialHistory) {
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(strict_unit(0, {{kX, 0, false}, {kX, 1, true}}));
  h.units.push_back(strict_unit(1, {{kX, 1, false}, {kX, 2, true}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 2}}));
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Checker, DetectsLostUpdate) {
  // Both units read 0 and write 1: the second one's read missed the first
  // one's committed write — the classic read-set-conflict-ignored bug.
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(strict_unit(0, {{kX, 0, false}, {kX, 1, true}}));
  h.units.push_back(strict_unit(1, {{kX, 0, false}, {kX, 1, true}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 1}}));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.unit_index, 1u);
}

TEST(Checker, DetectsFinalStateDivergence) {
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(strict_unit(0, {{kX, 5, true}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 7}}));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.unit_index, SIZE_MAX);
}

TEST(Checker, StmUnitMayReadAnOlderSnapshot) {
  // A time-based STM transaction can serialize after a writer it did not
  // observe, as long as all its reads come from one consistent snapshot.
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(strict_unit(0, {{kX, 1, true}}));
  h.units.push_back(stm_unit(1, {{kX, 0, false}, {kY, 9, true}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 1}, {kY, 9}}));
  EXPECT_TRUE(r.ok) << r.error;

  // The same history is NOT valid for a strict (lock/HTM) unit.
  h.units[1].stm = false;
  r = tsx::check::check_history(h, final_is({{kX, 1}, {kY, 9}}));
  EXPECT_FALSE(r.ok);
}

TEST(Checker, StmSnapshotMustBeSingleInstant) {
  // x and y are written together (unit 0); an STM unit that sees the new y
  // but the old x mixed two snapshots — torn read, must be rejected.
  History h;
  h.initial = {{kX, 0}, {kY, 0}};
  h.units.push_back(strict_unit(0, {{kX, 1, true}, {kY, 1, true}}));
  h.units.push_back(stm_unit(1, {{kY, 1, false}, {kX, 0, false}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 1}, {kY, 1}}));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.unit_index, 1u);
}

TEST(Checker, StmReadOwnWriteMustReturnBufferedValue) {
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(stm_unit(0, {{kX, 5, true}, {kX, 4, false}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 5}}));
  EXPECT_FALSE(r.ok);
}

TEST(Checker, StmRepeatedReadMustBeStable) {
  History h;
  h.initial = {{kX, 0}};
  h.units.push_back(strict_unit(0, {{kX, 1, true}}));
  h.units.push_back(stm_unit(1, {{kX, 0, false}, {kX, 1, false}}));
  CheckResult r = tsx::check::check_history(h, final_is({{kX, 1}}));
  EXPECT_FALSE(r.ok);
}

// ---- recorder + oracle integration ----

class OracleBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(OracleBackends, EigenIncHistorySerializable) {
  OracleConfig cfg;
  cfg.threads = 2;
  cfg.loops = 24;
  cfg.seed = 11;
  tsx::check::WorkloadResult r =
      tsx::check::run_workload("eigen-inc", GetParam(), cfg);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_P(OracleBackends, EigenIncSurvivesScheduleJitter) {
  OracleConfig cfg;
  cfg.threads = 4;
  cfg.loops = 16;
  cfg.seed = 3;
  cfg.jitter_window = 128;
  cfg.quantum_ops = 4;
  tsx::check::WorkloadResult r =
      tsx::check::run_workload("eigen-inc", GetParam(), cfg);
  EXPECT_TRUE(r.ok) << r.error;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, OracleBackends,
                         ::testing::Values(Backend::kRtm, Backend::kHle,
                                           Backend::kTinyStm, Backend::kTl2,
                                           Backend::kLock, Backend::kCas),
                         [](const auto& inf) {
                           return std::string(
                               tsx::core::backend_name(inf.param));
                         });

TEST(Oracle, DigestsAgreeAcrossBackends) {
  OracleConfig cfg;
  cfg.threads = 2;
  cfg.loops = 24;
  cfg.seed = 5;
  tsx::check::OracleResult r = tsx::check::run_oracle(
      {"eigen-inc", "rbtree"}, tsx::check::default_backends(), cfg);
  EXPECT_TRUE(r.ok) << r.workload << "/" << r.backend << ": " << r.error;
}

TEST(Oracle, RunsAreDeterministic) {
  OracleConfig cfg;
  cfg.threads = 2;
  cfg.loops = 24;
  cfg.seed = 9;
  auto a = tsx::check::run_workload("rbtree", Backend::kRtm, cfg);
  auto b = tsx::check::run_workload("rbtree", Backend::kRtm, cfg);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.digest, b.digest);
}

// ---- fault injection: the oracle must catch a broken conflict policy ----

TEST(Explorer, CatchesIgnoredReadSetConflicts) {
  ExplorerConfig cfg;
  cfg.workloads = {"eigen-inc"};
  cfg.backends = {Backend::kRtm};
  cfg.seeds = 16;
  cfg.threads = 2;
  cfg.loops = 32;
  cfg.break_read_set_conflicts = true;
  tsx::check::ExploreResult res = tsx::check::explore(cfg);
  ASSERT_TRUE(res.failed)
      << "a conflict policy that ignores read sets must lose updates";
  EXPECT_FALSE(res.repro.error.empty());
  EXPECT_NE(res.repro_command().find("--break-read-conflicts"),
            std::string::npos);

  // The shrunk reproducer must still fail when replayed directly.
  tsx::check::WorkloadResult replay = tsx::check::run_workload(
      res.repro.workload, res.repro.backend, res.repro.cfg);
  EXPECT_FALSE(replay.ok);
}

TEST(Explorer, CleanPolicyPassesSameSweep) {
  ExplorerConfig cfg;
  cfg.workloads = {"eigen-inc"};
  cfg.backends = {Backend::kRtm};
  cfg.seeds = 16;
  cfg.threads = 2;
  cfg.loops = 32;
  tsx::check::ExploreResult res = tsx::check::explore(cfg);
  EXPECT_FALSE(res.failed) << res.repro.error;
}

}  // namespace
