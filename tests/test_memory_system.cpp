#include <gtest/gtest.h>

#include <vector>

#include "sim/memory_system.h"

namespace {

using namespace tsx::sim;

struct AbortRecord {
  CtxId victim;
  AbortReason reason;
  uint64_t line;
  CtxId attacker;
};

struct Harness {
  MachineConfig cfg;
  MemStats stats;
  std::vector<AbortRecord> aborts;
  std::unique_ptr<MemorySystem> mem;

  explicit Harness(uint32_t ctxs = 4, MachineConfig c = {}) : cfg(c) {
    mem = std::make_unique<MemorySystem>(
        cfg, ctxs, &stats,
        [this](CtxId v, AbortReason r, uint64_t l, CtxId a) {
          aborts.push_back({v, r, l, a});
          mem->tx_clear(v);
        });
  }
};

TEST(MemorySystem, LatenciesByLevel) {
  Harness h;
  MachineConfig& c = h.cfg;
  // Cold: memory access.
  Cycles lat = h.mem->access(0, 0x10000, false, false);
  EXPECT_EQ(lat, c.lat_issue + c.lat_mem);
  // Now hot in L1.
  lat = h.mem->access(0, 0x10000, false, false);
  EXPECT_EQ(lat, c.lat_issue + c.lat_l1);
  // Same line, different word: still L1.
  lat = h.mem->access(0, 0x10008, false, false);
  EXPECT_EQ(lat, c.lat_issue + c.lat_l1);
}

TEST(MemorySystem, L3HitAfterOtherCoreFetch) {
  Harness h;
  h.mem->access(0, 0x10000, false, false);  // core 0 brings it to L3
  Cycles lat = h.mem->access(1, 0x10000, false, false);  // core 1: L3 hit
  EXPECT_EQ(lat, h.cfg.lat_issue + h.cfg.lat_l3);
}

TEST(MemorySystem, CacheToCacheForDirtyRemote) {
  Harness h;
  h.mem->access(0, 0x10000, true, false);  // core 0 dirties the line
  uint64_t c2c_before = h.stats.c2c_transfers;
  Cycles lat = h.mem->access(1, 0x10000, false, false);
  EXPECT_EQ(lat, h.cfg.lat_issue + h.cfg.lat_c2c);
  EXPECT_EQ(h.stats.c2c_transfers, c2c_before + 1);
}

TEST(MemorySystem, WriteInvalidatesSharers) {
  Harness h;
  h.mem->access(0, 0x10000, false, false);
  h.mem->access(1, 0x10000, false, false);  // both cores share the line
  uint64_t inv_before = h.stats.invalidations;
  h.mem->access(0, 0x10000, true, false);  // core 0 upgrades
  EXPECT_GT(h.stats.invalidations, inv_before);
  // Core 1 must re-fetch (not an L1 hit).
  uint64_t l1_before = h.stats.l1_hits;
  h.mem->access(1, 0x10000, false, false);
  EXPECT_EQ(h.stats.l1_hits, l1_before);
}

TEST(MemorySystem, TxReadTracksLine) {
  Harness h;
  h.mem->tx_begin(0, 0);
  h.mem->access(0, 0x20000, false, true);
  EXPECT_EQ(h.mem->read_lines(0).count(line_of(0x20000)), 1u);
  EXPECT_TRUE(h.mem->write_lines(0).empty());
  h.mem->tx_clear(0);
  EXPECT_TRUE(h.mem->read_lines(0).empty());
}

TEST(MemorySystem, ConflictWriteOnRemoteReadSet) {
  Harness h;
  h.mem->tx_begin(0, 0);
  h.mem->access(0, 0x20000, false, true);
  // Ctx 1 (another core) writes the same line: ctx 0 must abort.
  h.mem->access(1, 0x20000, true, false);
  ASSERT_EQ(h.aborts.size(), 1u);
  EXPECT_EQ(h.aborts[0].victim, 0u);
  EXPECT_EQ(h.aborts[0].reason, AbortReason::kConflict);
  EXPECT_EQ(h.aborts[0].line, line_of(0x20000));
  EXPECT_EQ(h.aborts[0].attacker, 1u);  // the conflicting requester
}

TEST(MemorySystem, ReadOfRemoteWriteSetAbortsWriter) {
  Harness h;
  h.mem->tx_begin(0, 0);
  h.mem->access(0, 0x20000, true, true);
  h.mem->access(1, 0x20000, false, false);
  ASSERT_EQ(h.aborts.size(), 1u);
  EXPECT_EQ(h.aborts[0].victim, 0u);
  EXPECT_EQ(h.aborts[0].reason, AbortReason::kConflict);
  EXPECT_EQ(h.aborts[0].attacker, 1u);
}

TEST(MemorySystem, ReadersDoNotConflict) {
  Harness h;
  h.mem->tx_begin(0, 0);
  h.mem->tx_begin(1, 0);
  h.mem->access(0, 0x20000, false, true);
  h.mem->access(1, 0x20000, false, true);
  EXPECT_TRUE(h.aborts.empty());
}

TEST(MemorySystem, SameCtxNoSelfConflict) {
  Harness h;
  h.mem->tx_begin(0, 0);
  h.mem->access(0, 0x20000, false, true);
  h.mem->access(0, 0x20000, true, true);
  EXPECT_TRUE(h.aborts.empty());
}

TEST(MemorySystem, WriteCapacityAbortAtL1Pressure) {
  Harness h(1);
  // L1: 32 KB, 8-way, 64 sets. Write 9 lines mapping to the same set:
  // line addresses differing by 64*... set index = line % 64.
  h.mem->tx_begin(0, 0);
  for (int i = 0; i < 9; ++i) {
    Addr a = 0x100000 + static_cast<Addr>(i) * 64 * 64;  // same L1 set
    h.mem->access(0, a, true, true);
    if (!h.aborts.empty()) break;
  }
  ASSERT_FALSE(h.aborts.empty());
  EXPECT_EQ(h.aborts[0].reason, AbortReason::kWriteCapacity);
  EXPECT_EQ(h.aborts[0].attacker, 0u);  // self-eviction: attacker == victim
}

TEST(MemorySystem, ReadsSurviveL1PressureViaL3) {
  Harness h(1);
  h.mem->tx_begin(0, 0);
  // 32 reads in the same L1 set: far beyond L1 ways but trivial for L3.
  for (int i = 0; i < 32; ++i) {
    Addr a = 0x100000 + static_cast<Addr>(i) * 64 * 64;
    h.mem->access(0, a, false, true);
  }
  EXPECT_TRUE(h.aborts.empty());
  EXPECT_EQ(h.mem->read_lines(0).size(), 32u);
}

TEST(MemorySystem, ReadCapacityAbortAtL3Pressure) {
  // Shrink the L3 to make the test fast: 64 KB, 2-way -> 512 sets... use
  // 8 KB 2-way = 64 sets of 2.
  MachineConfig cfg;
  cfg.l3 = CacheGeometry{8 * 1024, 2};
  cfg.l1 = CacheGeometry{1024, 2};  // 8 sets
  cfg.l2 = CacheGeometry{2048, 2};
  Harness h(1, cfg);
  h.mem->tx_begin(0, 0);
  // 3 reads mapping to the same L3 set (set = line % 64): evicts a tx line.
  for (int i = 0; i < 3; ++i) {
    Addr a = 0x100000 + static_cast<Addr>(i) * 64 * 64;
    h.mem->access(0, a, false, true);
  }
  ASSERT_FALSE(h.aborts.empty());
  EXPECT_EQ(h.aborts[0].reason, AbortReason::kReadCapacity);
}

TEST(MemorySystem, SmtSharesL1) {
  // 8 contexts on 4 cores: ctx 0 and 4 share core 0's L1.
  Harness h(8);
  h.mem->access(0, 0x30000, false, false);
  Cycles lat = h.mem->access(4, 0x30000, false, false);
  EXPECT_EQ(lat, h.cfg.lat_issue + h.cfg.lat_l1);  // sibling L1 hit
  Cycles lat2 = h.mem->access(1, 0x30000, false, false);
  EXPECT_EQ(lat2, h.cfg.lat_issue + h.cfg.lat_l3);  // other core: L3
}

TEST(MemorySystem, StatsCountAccesses) {
  Harness h;
  h.mem->access(0, 0x1000, false, false);
  h.mem->access(0, 0x1000, true, false);
  EXPECT_EQ(h.stats.loads, 1u);
  EXPECT_EQ(h.stats.stores, 1u);
  EXPECT_EQ(h.stats.accesses(), 2u);
}

}  // namespace
