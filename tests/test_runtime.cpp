#include <gtest/gtest.h>

#include "core/runtime.h"

namespace {

using namespace tsx::core;
using tsx::sim::Addr;
using tsx::sim::Word;

RunConfig make_cfg(Backend b, uint32_t threads, bool interrupts = false) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = interrupts;
  cfg.stm.lock_table_entries = 1u << 14;  // fast init in tests
  return cfg;
}

// The canonical atomicity workload: every backend must produce an exact
// shared counter.
class BackendCounter : public ::testing::TestWithParam<std::tuple<Backend, uint32_t>> {};

TEST_P(BackendCounter, SharedCounterIsExact) {
  auto [backend, threads] = GetParam();
  RunConfig cfg = make_cfg(backend, threads);
  TxRuntime rt(cfg);
  Addr counter = rt.heap().host_alloc(8, 64);
  const int iters = 200;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      ctx.transaction([&] {
        Word v = ctx.load(counter);
        ctx.compute(7);
        ctx.store(counter, v + 1);
      });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), static_cast<Word>(threads) * iters);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendCounter,
    ::testing::Combine(::testing::Values(Backend::kLock, Backend::kRtm,
                                         Backend::kTinyStm, Backend::kTl2,
                                         Backend::kHybrid),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return std::string(backend_name(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "t";
    });

TEST(TxRuntime, SeqBackendRunsWithoutSynchronization) {
  RunConfig cfg = make_cfg(Backend::kSeq, 1);
  TxRuntime rt(cfg);
  Addr counter = rt.heap().host_alloc(8);
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.transaction([&] { ctx.store(counter, ctx.load(counter) + 1); });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), 100u);
}

TEST(TxRuntime, ReportMeasuresWindowOnly) {
  RunConfig cfg = make_cfg(Backend::kLock, 2);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(4096, 64);
  rt.run([&](TxCtx& ctx) {
    // Expensive setup phase.
    for (int i = 0; i < 100; ++i) ctx.compute(1000);
    ctx.barrier();
    if (ctx.id() == 0) ctx.runtime().mark_measurement_start();
    ctx.barrier();
    for (int i = 0; i < 10; ++i) {
      ctx.transaction([&] { ctx.store(data, ctx.load(data) + 1); });
    }
  });
  RunReport r = rt.report();
  // The measured window excludes the 100k-cycle setup.
  EXPECT_LT(r.wall_cycles, 60'000u);
  EXPECT_GT(r.wall_cycles, 0u);
  EXPECT_GT(r.joules(), 0.0);
}

TEST(TxRuntime, RtmReportCountsTransactions) {
  RunConfig cfg = make_cfg(Backend::kRtm, 2);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.transaction([&] { ctx.store(data, ctx.load(data) + 1); });
    }
  });
  RunReport r = rt.report();
  EXPECT_EQ(r.rtm.transactions, 100u);
  EXPECT_EQ(r.rtm.commits + r.rtm.fallbacks, 100u);
}

TEST(TxRuntime, StmReportCountsTransactions) {
  RunConfig cfg = make_cfg(Backend::kTinyStm, 2);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.transaction([&] { ctx.store(data, ctx.load(data) + 1); });
    }
  });
  RunReport r = rt.report();
  EXPECT_EQ(r.stm.transactions, 100u);
  EXPECT_EQ(r.stm.commits, 100u);
}

TEST(TxRuntime, NestedTransactionsFlatten) {
  RunConfig cfg = make_cfg(Backend::kRtm, 1);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  rt.run([&](TxCtx& ctx) {
    ctx.transaction([&] {
      ctx.store(data, 1);
      ctx.transaction([&] { ctx.store(data + 8, 2); });
    });
  });
  EXPECT_EQ(rt.machine().peek(data), 1u);
  EXPECT_EQ(rt.machine().peek(data + 8), 2u);
  EXPECT_EQ(rt.report().rtm.transactions, 1u);
}

TEST(TxRuntime, MallocInsideAbortedRtmTxIsReclaimed) {
  RunConfig cfg = make_cfg(Backend::kRtm, 1);
  cfg.retry.max_attempts = 1;
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  uint64_t allocs_live_before = 0;
  rt.run([&](TxCtx& ctx) {
    allocs_live_before = ctx.runtime().heap().stats().bytes_live;
    ctx.transaction([&] {
      Addr p = ctx.malloc(64);
      ctx.store(data, p);
      if (!ctx.in_rtm_fallback()) {
        // Force an abort on the speculative path only.
        ctx.runtime().machine().tx_abort(0x1);
      }
    });
  });
  // Exactly one allocation (from the fallback execution) survives.
  EXPECT_EQ(rt.heap().stats().bytes_live, allocs_live_before + 64);
}

TEST(TxRuntime, HeterogeneousWorkers) {
  RunConfig cfg = make_cfg(Backend::kLock, 2);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(16, 64);
  std::vector<std::function<void(TxCtx&)>> workers;
  workers.push_back([&](TxCtx& ctx) { ctx.store(data, 11); });
  workers.push_back([&](TxCtx& ctx) { ctx.store(data + 8, 22); });
  rt.run(std::move(workers));
  EXPECT_EQ(rt.machine().peek(data), 11u);
  EXPECT_EQ(rt.machine().peek(data + 8), 22u);
}

TEST(TxRuntime, WorkerCountMismatchThrows) {
  RunConfig cfg = make_cfg(Backend::kLock, 2);
  TxRuntime rt(cfg);
  std::vector<std::function<void(TxCtx&)>> workers(1, [](TxCtx&) {});
  EXPECT_THROW(rt.run(std::move(workers)), std::invalid_argument);
}

TEST(TxRuntime, CasInsideStmTxRejected) {
  RunConfig cfg = make_cfg(Backend::kTinyStm, 1);
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  EXPECT_THROW(
      rt.run([&](TxCtx& ctx) {
        ctx.transaction([&] {
          ctx.store(data, 1);  // makes the STM tx active
          ctx.cas(data, 1, 2);
        });
      }),
      std::logic_error);
}

TEST(TxRuntime, EnergySequentialVsParallel) {
  // A perfectly parallel workload: 4 threads must be faster and, with the
  // race-to-idle static-power term, spend less total energy than 1 thread
  // doing 4x the work.
  auto run_with = [](uint32_t threads, int iters_per_thread) {
    RunConfig cfg = make_cfg(Backend::kSeq, threads);
    TxRuntime rt(cfg);
    std::vector<Addr> regions;
    for (uint32_t t = 0; t < threads; ++t) {
      regions.push_back(rt.heap().host_alloc(64 * 1024, 64));
    }
    rt.run([&](TxCtx& ctx) {
      Addr base = regions[ctx.id()];
      for (int i = 0; i < iters_per_thread; ++i) {
        Addr a = base + (i % 8192) * 8;
        ctx.store(a, ctx.load(a) + 1);
        ctx.compute(20);
      }
    });
    return rt.report();
  };
  RunReport seq = run_with(1, 4000);
  RunReport par = run_with(4, 1000);
  EXPECT_LT(par.wall_cycles, seq.wall_cycles);
  EXPECT_LT(par.joules(), seq.joules());
}

}  // namespace
