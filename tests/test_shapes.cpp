// Shape-regression tests: fast, qualitative versions of the paper's
// headline results. If a model change breaks one of these, a figure almost
// certainly regressed too — they encode "who wins / where the cliff is"
// rather than absolute numbers.

#include <gtest/gtest.h>

#include "eigenbench/eigenbench.h"
#include "htm/rtm.h"

namespace {

using namespace tsx;
using core::Backend;
using sim::Addr;
using sim::Cycles;
using sim::Word;

// ---- Fig. 1 shapes: capacity cliffs ----

double capacity_abort_rate(uint64_t lines, bool writes) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  Addr base = rt.heap().host_alloc(lines * 64, 64);
  int aborts = 0;
  const int attempts = 3;
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    for (uint64_t i = 0; i < lines; ++i) m.load(base + i * 64);
    for (int a = 0; a < attempts; ++a) {
      auto r = htm::attempt(m, [&] {
        for (uint64_t i = 0; i < lines; ++i) {
          if (writes) {
            m.store(base + i * 64, 1);
          } else {
            m.load(base + i * 64);
          }
        }
      });
      aborts += !r.committed;
    }
  });
  return static_cast<double>(aborts) / attempts;
}

TEST(Shapes, Fig1WriteSetDiesPast512Lines) {
  EXPECT_EQ(capacity_abort_rate(448, true), 0.0);
  EXPECT_EQ(capacity_abort_rate(640, true), 1.0);
}

TEST(Shapes, Fig1ReadSetSurvivesFarBeyondWriteSet) {
  EXPECT_EQ(capacity_abort_rate(640, false), 0.0);
  EXPECT_EQ(capacity_abort_rate(16384, false), 0.0);  // 32x the write cliff
}

TEST(Shapes, Fig1ReadSetDiesPastL3) {
  EXPECT_EQ(capacity_abort_rate(200000, false), 1.0);  // > 131072 lines
}

// ---- Fig. 2 shape: duration cliff from interrupts ----

TEST(Shapes, Fig2LongTransactionsAbortFromInterrupts) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 1;  // interrupts stay enabled
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  Addr data = rt.heap().host_alloc(64, 64);
  int short_aborts = 0, long_aborts = 0;
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    m.load(data);
    for (int i = 0; i < 20; ++i) {
      auto r = htm::attempt(m, [&] {
        m.load(data);
        m.compute(5'000);  // ~5K cycles: far below the cliff
      });
      short_aborts += !r.committed;
    }
    for (int i = 0; i < 6; ++i) {
      auto r = htm::attempt(m, [&] {
        for (int k = 0; k < 40; ++k) m.compute(250'000);  // ~10M cycles
      });
      long_aborts += !r.committed;
    }
  });
  EXPECT_LE(short_aborts, 1);
  EXPECT_EQ(long_aborts, 6);  // P(survive 10M cycles) ~ 1%
}

// ---- Table I shape: RTM loses uncontended, wins contended ----

TEST(Shapes, Table1RtmCostsMoreThanLockUncontended) {
  // Single thread, tiny critical section: RTM's begin/commit must make it
  // measurably slower than the raw section but in the right ballpark
  // (paper: ~1.45x a spinlock version).
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  Addr data = rt.heap().host_alloc(64, 64);
  Cycles raw = 0, rtm = 0;
  // The critical section mirrors Table I's queue pop: a few accesses plus
  // some work, ~60-70 cycles.
  auto section = [&] {
    Word v = m.load(data);
    m.compute(50);
    m.store(data, v + 1);
  };
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    m.load(data);
    Cycles t0 = m.now();
    for (int i = 0; i < 100; ++i) section();
    raw = m.now() - t0;
    t0 = m.now();
    for (int i = 0; i < 100; ++i) htm::attempt(m, section);
    rtm = m.now() - t0;
  });
  double ratio = static_cast<double>(rtm) / static_cast<double>(raw);
  EXPECT_GT(ratio, 1.3);  // clearly more expensive...
  EXPECT_LT(ratio, 4.0);  // ...but in the paper's ballpark (1.45x vs a lock)
}

// ---- Fig. 4 shape: the 256K working set collapses with length ----

eigenbench::EigenResult eigen_rtm(uint32_t len, uint64_t ws) {
  core::RunConfig cfg;
  cfg.backend = Backend::kRtm;
  cfg.threads = 4;
  cfg.machine.interrupts_enabled = false;
  eigenbench::EigenConfig eb;
  eb.loops = 60;
  eb.reads_mild = len * 9 / 10;
  eb.writes_mild = len - eb.reads_mild;
  eb.ws_bytes = ws;
  return eigenbench::run(cfg, eb);
}

TEST(Shapes, Fig4MediumWorkingSetCollapsesPast100Accesses) {
  auto small_ws = eigen_rtm(520, 16 * 1024);
  auto medium_ws = eigen_rtm(520, 256 * 1024);
  EXPECT_LT(small_ws.report.rtm.abort_rate(), 0.05);
  EXPECT_GT(medium_ws.report.rtm.abort_rate(), 0.5);
}

TEST(Shapes, Fig4ShortTransactionsAreCleanForBoth) {
  auto small_ws = eigen_rtm(40, 16 * 1024);
  auto medium_ws = eigen_rtm(40, 256 * 1024);
  EXPECT_LT(small_ws.report.rtm.abort_rate(), 0.05);
  EXPECT_LT(medium_ws.report.rtm.abort_rate(), 0.05);
}

// ---- Fig. 9 shape: SMT halves RTM's effective write capacity ----

TEST(Shapes, Fig9HyperthreadingHalvesWriteCapacity) {
  // A 350-line write set fits the full L1 (512 lines) but not half of it.
  auto attempt_with_threads = [](uint32_t threads) {
    core::RunConfig cfg;
    cfg.backend = Backend::kRtm;
    cfg.threads = threads;
    cfg.machine.interrupts_enabled = false;
    core::TxRuntime rt(cfg);
    auto& m = rt.machine();
    std::vector<Addr> regions;
    for (uint32_t t = 0; t < threads; ++t) {
      regions.push_back(rt.heap().host_alloc(350 * 64, 64));
    }
    std::vector<int> aborts(threads, 0);
    rt.run([&](core::TxCtx& ctx) {
      Addr base = regions[ctx.id()];
      for (Addr a = base; a < base + 350 * 64; a += 64) m.load(a);
      ctx.barrier();
      for (int i = 0; i < 4; ++i) {
        auto r = htm::attempt(m, [&] {
          for (int l = 0; l < 350; ++l) m.store(base + l * 64, i);
        });
        aborts[ctx.id()] += !r.committed;
      }
    });
    int total = 0;
    for (int a : aborts) total += a;
    return total;
  };
  EXPECT_EQ(attempt_with_threads(4), 0);   // one thread per core: fits
  EXPECT_GT(attempt_with_threads(8), 10);  // SMT pairs share the L1: dies
}

// ---- Fig. 3/7 granularity: word-disjoint same-line writes ----

TEST(Shapes, LineGranularityFalseSharingOnlyForRtm) {
  auto run_packed = [](Backend b) {
    core::RunConfig cfg;
    cfg.backend = b;
    cfg.threads = 4;
    cfg.machine.interrupts_enabled = false;
    cfg.stm.lock_table_entries = 1u << 14;
    core::TxRuntime rt(cfg);
    Addr base = rt.heap().host_alloc(64, 64);  // four words in ONE line
    rt.run([&](core::TxCtx& ctx) {
      Addr mine = base + ctx.id() * 8;
      for (int i = 0; i < 100; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(mine);
          ctx.compute(30);
          ctx.store(mine, v + 1);
        });
      }
    });
    auto r = rt.report();
    return b == Backend::kRtm ? r.rtm.abort_rate() : r.stm.abort_rate();
  };
  EXPECT_GT(run_packed(Backend::kRtm), 0.1);        // false sharing aborts
  EXPECT_DOUBLE_EQ(run_packed(Backend::kTinyStm), 0.0);  // word granularity
}

}  // namespace
