// Tests for util/flat_table.h (FlatTable / FlatSet / WriteIndex) and
// util/arena.h. These containers sit on digest-relevant simulator paths, so
// beyond correctness the suite pins *determinism*: layout and iteration
// order must be a pure function of the operation sequence, and the STM
// write-set index must agree with a reference map under a randomized
// tm_fuzz-style seed sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/arena.h"
#include "util/flat_table.h"
#include "util/fn_ref.h"

namespace {

using tsx::util::Arena;
using tsx::util::FlatSet;
using tsx::util::FlatTable;
using tsx::util::FnRef;
using tsx::util::WriteIndex;

// ---------------------------------------------------------------- FlatTable

TEST(FlatTable, InsertFindBasic) {
  FlatTable<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(7), nullptr);
  auto [v, inserted] = t.try_emplace(7, 42);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(t.size(), 1u);
  auto [v2, inserted2] = t.try_emplace(7, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 42);  // existing value untouched
  EXPECT_EQ(*t.find(7), 42);
}

TEST(FlatTable, OperatorIndexDefaultConstructs) {
  FlatTable<uint64_t> t;
  t[3] += 5;
  t[3] += 5;
  EXPECT_EQ(*t.find(3), 10u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable, EraseAndTombstoneReuse) {
  FlatTable<int> t;
  for (uint64_t k = 0; k < 8; ++k) t.try_emplace(k, int(k));
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.find(3), nullptr);
  EXPECT_EQ(t.size(), 7u);
  // Keys past the tombstone are still reachable (probe continues).
  for (uint64_t k = 0; k < 8; ++k) {
    if (k == 3) continue;
    ASSERT_NE(t.find(k), nullptr) << k;
    EXPECT_EQ(*t.find(k), int(k));
  }
  // Re-inserting the erased key reuses the tombstone: no growth pressure.
  size_t cap = t.capacity();
  auto [v, inserted] = t.try_emplace(3, -3);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, -3);
  EXPECT_EQ(t.capacity(), cap);
}

TEST(FlatTable, GrowthPreservesEntriesAndDropsTombstones) {
  FlatTable<uint64_t> t;
  for (uint64_t k = 0; k < 500; ++k) t.try_emplace(k, k * 3);
  for (uint64_t k = 0; k < 500; k += 2) t.erase(k);
  for (uint64_t k = 1000; k < 1500; ++k) t.try_emplace(k, k * 3);  // forces rehash
  EXPECT_EQ(t.size(), 250u + 500u);
  for (uint64_t k = 0; k < 500; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(t.find(k), nullptr) << k;
    } else {
      ASSERT_NE(t.find(k), nullptr) << k;
      EXPECT_EQ(*t.find(k), k * 3);
    }
  }
  for (uint64_t k = 1000; k < 1500; ++k) ASSERT_NE(t.find(k), nullptr) << k;
}

TEST(FlatTable, MoveOnlyValues) {
  FlatTable<std::unique_ptr<int>> t;
  for (uint64_t k = 0; k < 100; ++k) {
    t.try_emplace(k, std::make_unique<int>(int(k)));
  }
  // Pointees survive rehash (slots are moved, not copied).
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_NE(t.find(k), nullptr);
    EXPECT_EQ(**t.find(k), int(k));
  }
}

// Pointee stability across rehash is what lets BackingStore keep a raw
// Page* cache: the unique_ptr slot moves, the pointee never does.
TEST(FlatTable, PointeeStableAcrossGrowth) {
  FlatTable<std::unique_ptr<int>> t;
  t.try_emplace(0, std::make_unique<int>(7));
  int* pointee = t.find(0)->get();
  for (uint64_t k = 1; k < 1000; ++k) {
    t.try_emplace(k, std::make_unique<int>(int(k)));
  }
  EXPECT_EQ(t.find(0)->get(), pointee);
  EXPECT_EQ(*pointee, 7);
}

// Same operation sequence => same slot layout => same for_each order.
// This is the digest-relevant property: nothing about iteration depends on
// allocator state or the standard library's hash seeding.
TEST(FlatTable, IterationOrderIsPureFunctionOfOpSequence) {
  auto build = [] {
    FlatTable<uint64_t> t;
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 300; ++i) t.try_emplace(rng() % 512, uint64_t(i));
    for (int i = 0; i < 100; ++i) t.erase(rng() % 512);
    for (int i = 0; i < 100; ++i) t.try_emplace(rng() % 512, uint64_t(i));
    return t;
  };
  std::vector<std::pair<uint64_t, uint64_t>> a, b;
  build().for_each([&](uint64_t k, const uint64_t& v) { a.emplace_back(k, v); });
  build().for_each([&](uint64_t k, const uint64_t& v) { b.emplace_back(k, v); });
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FlatTable, RandomizedAgainstUnorderedMap) {
  std::mt19937_64 rng(99);
  FlatTable<uint64_t> t;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng() % 1024;
    switch (rng() % 3) {
      case 0: {
        uint64_t val = rng();
        bool inserted = t.try_emplace(key, val).second;
        bool ref_inserted = ref.try_emplace(key, val).second;
        ASSERT_EQ(inserted, ref_inserted);
        break;
      }
      case 1:
        ASSERT_EQ(t.erase(key), ref.erase(key) == 1);
        break;
      default: {
        auto* p = t.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p) ASSERT_EQ(*p, it->second);
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
}

// ------------------------------------------------------------------ FlatSet

TEST(FlatSet, InsertContainsClear) {
  FlatSet s;
  EXPECT_TRUE(s.insert(10));
  EXPECT_FALSE(s.insert(10));
  EXPECT_TRUE(s.insert(11));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.count(10), 1u);
  EXPECT_EQ(s.count(12), 0u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(10), 0u);
  EXPECT_TRUE(s.insert(10));  // re-insert after epoch clear
}

TEST(FlatSet, IterationIsInsertionOrder) {
  FlatSet s;
  std::vector<uint64_t> want = {5, 3, 9, 1, 7};
  for (uint64_t k : want) s.insert(k);
  s.insert(3);  // duplicate: no effect on order
  std::vector<uint64_t> got(s.begin(), s.end());
  EXPECT_EQ(got, want);
}

TEST(FlatSet, SurvivesGrowthAndManyClears) {
  FlatSet s;
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    std::unordered_set<uint64_t> ref;
    int n = 1 + int(rng() % 300);
    for (int i = 0; i < n; ++i) {
      uint64_t k = rng() % 4096;
      ASSERT_EQ(s.insert(k), ref.insert(k).second);
    }
    ASSERT_EQ(s.size(), ref.size());
    for (uint64_t k : ref) ASSERT_TRUE(s.contains(k));
    s.clear();
    ASSERT_TRUE(s.empty());
  }
}

// -------------------------------------------------------------- WriteIndex

TEST(WriteIndex, InlineModeBasics) {
  WriteIndex w;
  EXPECT_EQ(w.find(0x100), nullptr);
  w.insert(0x100, 0);
  w.insert(0x108, 1);
  ASSERT_NE(w.find(0x100), nullptr);
  EXPECT_EQ(*w.find(0x100), 0u);
  EXPECT_EQ(*w.find(0x108), 1u);
  EXPECT_EQ(w.find(0x110), nullptr);
  EXPECT_FALSE(w.spilled());
  w.clear();
  EXPECT_EQ(w.find(0x100), nullptr);
  EXPECT_EQ(w.size(), 0u);
}

TEST(WriteIndex, SpillsPastInlineCapacity) {
  WriteIndex w;
  for (uint32_t i = 0; i <= WriteIndex::kInlineCap; ++i) {
    w.insert(0x1000 + 8 * uint64_t(i), i);
  }
  EXPECT_TRUE(w.spilled());
  for (uint32_t i = 0; i <= WriteIndex::kInlineCap; ++i) {
    auto* p = w.find(0x1000 + 8 * uint64_t(i));
    ASSERT_NE(p, nullptr) << i;
    EXPECT_EQ(*p, i);
  }
  // clear() returns to inline mode; spilled entries are gone.
  w.clear();
  EXPECT_FALSE(w.spilled());
  EXPECT_EQ(w.find(0x1000), nullptr);
  w.insert(0x2000, 5);
  EXPECT_EQ(*w.find(0x2000), 5u);
}

// The STM write-set equivalence sweep: replay tm_fuzz-style randomized
// transactions (write-heavy, re-write same word, occasional huge write set
// to force the spill path, clear() between txs) against a reference
// unordered_map. Mirrors exactly how tinystm.cpp/tl2.cpp use the index.
TEST(WriteIndex, EquivalenceSweepVsReferenceMap) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    std::mt19937_64 rng(seed);
    WriteIndex w;
    std::unordered_map<uint64_t, uint32_t> ref;
    int txs = 50;
    for (int tx = 0; tx < txs; ++tx) {
      // A few txs are large enough to spill; most stay inline.
      int writes = (rng() % 8 == 0) ? 20 + int(rng() % 200) : int(rng() % 12);
      uint32_t next_pos = 0;
      for (int i = 0; i < writes; ++i) {
        uint64_t addr = 0x10000 + 8 * (rng() % 256);
        uint32_t* p = w.find(addr);
        auto it = ref.find(addr);
        ASSERT_EQ(p != nullptr, it != ref.end()) << "seed " << seed;
        if (p) {
          ASSERT_EQ(*p, it->second) << "seed " << seed;
        } else {
          w.insert(addr, next_pos);
          ref.emplace(addr, next_pos);
          ++next_pos;
        }
        ASSERT_EQ(w.size(), ref.size());
      }
      w.clear();
      ref.clear();
    }
  }
}

// -------------------------------------------------------------------- Arena

TEST(Arena, BumpAllocatesAligned) {
  Arena a(256);
  auto* p1 = a.alloc_array<uint8_t>(3);
  auto* p2 = a.alloc_array<uint64_t>(4);
  EXPECT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % alignof(uint64_t), 0u);
  p2[0] = 42;
  p2[3] = 43;
  EXPECT_EQ(p2[0], 42u);
}

TEST(Arena, GrowsPastBlockSizeAndHonorsLargeRequests) {
  Arena a(64);
  std::vector<uint32_t*> ptrs;
  for (int i = 0; i < 100; ++i) {
    uint32_t* p = a.alloc_array<uint32_t>(8);  // 32 bytes each
    *p = uint32_t(i);
    ptrs.push_back(p);
  }
  // Larger than the block size: gets its own block.
  uint64_t* big = a.alloc_array<uint64_t>(1024);
  big[1023] = 7;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*ptrs[i], uint32_t(i));
  EXPECT_GT(a.blocks(), 1u);
}

TEST(Arena, ResetRecyclesBlocks) {
  Arena a(128);
  for (int i = 0; i < 50; ++i) a.alloc_array<uint64_t>(4);
  size_t blocks_before = a.blocks();
  a.reset();
  for (int i = 0; i < 50; ++i) a.alloc_array<uint64_t>(4);
  EXPECT_EQ(a.blocks(), blocks_before);  // no fresh allocation after reset
}

TEST(Arena, CreateConstructsInPlace) {
  struct Pod {
    int a;
    double b;
  };
  Arena arena;
  Pod* p = arena.create<Pod>(Pod{3, 1.5});
  EXPECT_EQ(p->a, 3);
  EXPECT_DOUBLE_EQ(p->b, 1.5);
}

// -------------------------------------------------------------------- FnRef

TEST(FnRef, CallsLambdaWithCapturesNoAllocation) {
  int hits = 0;
  uint64_t a = 1, b = 2, c = 3, d = 4;  // captures beyond any SBO budget
  auto body = [&] { hits += int(a + b + c + d); };
  FnRef<void()> ref(body);
  ref();
  ref();
  EXPECT_EQ(hits, 20);
}

TEST(FnRef, ForwardsArgumentsAndReturn) {
  auto add = [](int x, int y) { return x + y; };
  FnRef<int(int, int)> ref(add);
  EXPECT_EQ(ref(2, 3), 5);
}

TEST(FnRef, WorksWithMutableStateAcrossRetries) {
  // The executor retry loop re-invokes the same body; FnRef must observe
  // the caller's live state every time.
  int attempts = 0;
  auto body = [&] { ++attempts; };
  FnRef<void()> ref(body);
  for (int i = 0; i < 5; ++i) ref();
  EXPECT_EQ(attempts, 5);
}

}  // namespace
