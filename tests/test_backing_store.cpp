#include <gtest/gtest.h>

#include "sim/backing_store.h"

namespace {

using tsx::sim::BackingStore;
using tsx::sim::kPageBytes;

TEST(BackingStore, ZeroInitialized) {
  BackingStore bs;
  EXPECT_EQ(bs.peek(0x1000), 0u);
  EXPECT_EQ(bs.peek(0xdeadbe00), 0u);
}

TEST(BackingStore, PokePeekRoundTrip) {
  BackingStore bs;
  bs.poke(0x2000, 0x1234567890abcdefull);
  EXPECT_EQ(bs.peek(0x2000), 0x1234567890abcdefull);
  EXPECT_EQ(bs.peek(0x2008), 0u);
}

TEST(BackingStore, UnalignedAccessThrows) {
  BackingStore bs;
  EXPECT_THROW(bs.peek(0x2001), std::invalid_argument);
  EXPECT_THROW(bs.poke(0x2004, 1), std::invalid_argument);
}

TEST(BackingStore, PagesStartAbsent) {
  BackingStore bs;
  EXPECT_FALSE(bs.present(0x3000));
  bs.poke(0x3000, 7);  // value write does not imply presence
  EXPECT_FALSE(bs.present(0x3000));
  bs.make_present(0x3000);
  EXPECT_TRUE(bs.present(0x3000));
  // Presence is per page.
  EXPECT_TRUE(bs.present(0x3000 + kPageBytes - 8));
  EXPECT_FALSE(bs.present(0x3000 + kPageBytes));
}

TEST(BackingStore, PrefaultCoversRange) {
  BackingStore bs;
  bs.prefault(0x10000, 3 * kPageBytes);
  EXPECT_TRUE(bs.present(0x10000));
  EXPECT_TRUE(bs.present(0x10000 + 2 * kPageBytes));
  EXPECT_FALSE(bs.present(0x10000 + 3 * kPageBytes));
}

TEST(BackingStore, PrefaultPartialPagesRoundOut) {
  BackingStore bs;
  bs.prefault(0x20000 + 8, 16);  // straddles nothing, tiny range
  EXPECT_TRUE(bs.present(0x20000));
  bs.prefault(0x30000 + kPageBytes - 8, 16);  // straddles a boundary
  EXPECT_TRUE(bs.present(0x30000));
  EXPECT_TRUE(bs.present(0x30000 + kPageBytes));
}

TEST(BackingStore, PrefaultZeroBytesIsNoop) {
  BackingStore bs;
  bs.prefault(0x40000, 0);
  EXPECT_FALSE(bs.present(0x40000));
}

TEST(BackingStore, DistantAddressesIndependent) {
  BackingStore bs;
  bs.poke(0x0004'0000'0000ull, 1);
  bs.poke(0x0001'0000'0000ull, 2);
  EXPECT_EQ(bs.peek(0x0004'0000'0000ull), 1u);
  EXPECT_EQ(bs.peek(0x0001'0000'0000ull), 2u);
}

}  // namespace
