#include <gtest/gtest.h>

#include "htm/hle.h"
#include "sim/machine.h"

namespace {

using namespace tsx::sim;
using tsx::htm::HleLock;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

constexpr Addr kLock = 0x1000;
constexpr Addr kData = 0x2000;

TEST(HleLock, UncontendedSectionsElide) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  HleLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    for (int i = 0; i < 20; ++i) {
      lock.critical_section([&] { m.store(kData, m.load(kData) + 1); });
    }
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 20u);
  EXPECT_EQ(lock.stats().elided_commits, 20u);
  EXPECT_EQ(lock.stats().lock_acquisitions, 0u);
  EXPECT_DOUBLE_EQ(lock.stats().elision_rate(), 1.0);
}

TEST(HleLock, DisjointSectionsRunConcurrently) {
  // Four threads update four different lines under ONE elided lock: with
  // elision they don't serialize (that's the whole point of HLE).
  Machine m(quiet(), 4);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  HleLock lock(m, kLock);
  lock.init();
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&m, &lock, t] {
      Addr mine = kData + t * 64;
      for (int i = 0; i < 50; ++i) {
        lock.critical_section([&] {
          Word v = m.load(mine);
          m.compute(50);
          m.store(mine, v + 1);
        });
      }
    });
  }
  m.run();
  for (CtxId t = 0; t < 4; ++t) {
    EXPECT_EQ(m.peek(kData + t * 64), 50u);
  }
  // Near-perfect elision despite sharing the lock.
  EXPECT_GT(lock.stats().elision_rate(), 0.95);
}

TEST(HleLock, ConflictingSectionsStayAtomic) {
  Machine m(quiet(), 4);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  HleLock lock(m, kLock);
  lock.init();
  const int iters = 150;
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&m, &lock] {
      for (int i = 0; i < iters; ++i) {
        lock.critical_section([&] {
          Word v = m.load(kData);
          m.compute(25);
          m.store(kData, v + 1);
        });
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 4u * iters);
  EXPECT_GT(lock.stats().elision_aborts, 0u);
  EXPECT_GT(lock.stats().lock_acquisitions, 0u);
}

TEST(HleLock, CapacityOverflowFallsBackToRealLock) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  m.prefault(0x100000, 1024 * 1024);
  HleLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    lock.critical_section([&] {
      for (int i = 0; i < 700; ++i) {  // beyond 512-line write capacity
        m.store(0x100000 + static_cast<Addr>(i) * 64, 1);
      }
    });
  });
  m.run();
  EXPECT_EQ(lock.stats().elided_commits, 0u);
  EXPECT_EQ(lock.stats().lock_acquisitions, 1u);
  for (int i = 0; i < 700; ++i) {
    EXPECT_EQ(m.peek(0x100000 + static_cast<Addr>(i) * 64), 1u);
  }
}

TEST(HleLock, RealAcquisitionAbortsElidedSections) {
  // Thread 0 overflows (taking the real lock); thread 1 runs elided
  // sections which must abort-and-wait during the acquisition, keeping
  // the shared counter exact.
  Machine m(quiet(), 2);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  m.prefault(0x100000, 1024 * 1024);
  HleLock lock(m, kLock, /*elision_attempts=*/3);
  lock.init();
  m.set_thread(0, [&] {
    for (int r = 0; r < 4; ++r) {
      lock.critical_section([&] {
        Word v = m.load(kData);
        for (int i = 1; i < 700; ++i) {
          m.store(0x100000 + static_cast<Addr>(i) * 64, v);
        }
        m.store(kData, v + 1);
      });
    }
  });
  m.set_thread(1, [&] {
    for (int i = 0; i < 100; ++i) {
      lock.critical_section([&] {
        Word v = m.load(kData);
        m.compute(20);
        m.store(kData, v + 1);
      });
    }
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 104u);
}

}  // namespace
