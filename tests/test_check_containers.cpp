// Property tests of the STAMP lib containers under concurrent transactional
// mutation, driven through the differential oracle (src/check/oracle.h):
// each workload mutates a container from several simulated threads with
// per-thread disjoint key partitions, then compares the final contents
// against a sequential std:: reference, validates structural invariants
// (red-black shape, element conservation), and replays the recorded history
// through the serializability checker.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "check/oracle.h"

namespace {

using tsx::check::OracleConfig;
using tsx::check::WorkloadResult;
using tsx::core::Backend;

class ContainerOracle
    : public ::testing::TestWithParam<std::tuple<const char*, Backend>> {};

TEST_P(ContainerOracle, MatchesSequentialReference) {
  const auto& [workload, backend] = GetParam();
  for (uint64_t seed : {1ull, 17ull, 99ull}) {
    OracleConfig cfg;
    cfg.threads = 2;
    cfg.loops = 24;
    cfg.seed = seed;
    cfg.machine_seed = seed * 977 + 13;
    WorkloadResult r = tsx::check::run_workload(workload, backend, cfg);
    EXPECT_TRUE(r.ok) << workload << " seed " << seed << ": " << r.error;
  }
}

TEST_P(ContainerOracle, MatchesReferenceAtFourThreadsWithJitter) {
  const auto& [workload, backend] = GetParam();
  OracleConfig cfg;
  cfg.threads = 4;
  cfg.loops = 16;
  cfg.seed = 23;
  cfg.jitter_window = 64;
  cfg.quantum_ops = 2;
  WorkloadResult r = tsx::check::run_workload(workload, backend, cfg);
  EXPECT_TRUE(r.ok) << workload << ": " << r.error;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ContainerOracle,
    ::testing::Combine(::testing::Values("rbtree", "hashtable", "queue"),
                       ::testing::Values(Backend::kRtm, Backend::kHle,
                                         Backend::kTinyStm, Backend::kTl2,
                                         Backend::kLock, Backend::kCas)),
    [](const auto& inf) {
      return std::string(std::get<0>(inf.param)) + "_" +
             tsx::core::backend_name(std::get<1>(inf.param));
    });

TEST(ContainerOracle, ContainerDigestsAgreeAcrossAllBackends) {
  OracleConfig cfg;
  cfg.threads = 2;
  cfg.loops = 32;
  cfg.seed = 7;
  tsx::check::OracleResult r = tsx::check::run_oracle(
      {"rbtree", "hashtable", "queue"}, tsx::check::default_backends(), cfg);
  EXPECT_TRUE(r.ok) << r.workload << "/" << r.backend << ": " << r.error;
}

}  // namespace
