// Randomized invariant checks on the memory system itself: inclusion,
// directory consistency, and transactional-flag hygiene under arbitrary
// interleaved traffic. These guard the properties every higher-level result
// silently depends on.

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/memory_system.h"
#include "sim/rng.h"

namespace {

using namespace tsx::sim;

TEST(MemoryInvariants, InclusionHoldsUnderRandomTraffic) {
  MachineConfig cfg;
  cfg.l1 = CacheGeometry{1024, 2};
  cfg.l2 = CacheGeometry{4096, 2};
  cfg.l3 = CacheGeometry{16384, 4};
  MemStats stats;
  std::vector<std::pair<CtxId, AbortReason>> aborts;
  std::unique_ptr<MemorySystem> mem;
  mem = std::make_unique<MemorySystem>(
      cfg, 4, &stats, [&](CtxId v, AbortReason r, uint64_t, CtxId) {
        aborts.emplace_back(v, r);
        mem->tx_clear(v);
      });

  Rng rng(2024);
  std::array<bool, 4> in_tx{};
  // Track every line we ever touched so we can verify inclusion by probing.
  std::vector<Addr> addrs;
  for (int i = 0; i < 64; ++i) addrs.push_back(0x10000 + rng.below(128) * 64);

  for (int step = 0; step < 20000; ++step) {
    CtxId ctx = static_cast<CtxId>(rng.below(4));
    // Occasionally toggle transactions.
    if (rng.below(100) < 3) {
      if (in_tx[ctx]) {
        mem->tx_clear(ctx);
        in_tx[ctx] = false;
      } else {
        mem->tx_begin(ctx, step);
        in_tx[ctx] = true;
      }
    }
    if (aborts.size() > 0) {
      // tx_clear already ran in the callback; reconcile our shadow state.
      for (auto [v, r] : aborts) in_tx[v] = mem->tx_active(v);
      aborts.clear();
    }
    Addr a = addrs[rng.below(addrs.size())];
    mem->access(ctx, a, rng.below(2) == 1, in_tx[ctx] && mem->tx_active(ctx));
    for (auto [v, r] : aborts) in_tx[v] = mem->tx_active(v);
    aborts.clear();

    if (step % 500 == 0) {
      // Inclusion: every address present in a private cache must be in L3.
      for (Addr addr : addrs) {
        uint64_t line = line_of(addr);
        bool in_private = false;
        for (uint32_t core = 0; core < cfg.cores; ++core) {
          if (mem->l1(core).probe(line) || mem->l2(core).probe(line)) {
            in_private = true;
          }
        }
        if (in_private) {
          ASSERT_NE(mem->l3().probe(line), nullptr)
              << "inclusion violated for line " << line << " at step " << step;
        }
      }
    }
  }
  // Cleanly end all transactions.
  for (CtxId c = 0; c < 4; ++c) mem->tx_clear(c);
}

TEST(MemoryInvariants, TxFlagsClearedAfterClear) {
  MachineConfig cfg;
  MemStats stats;
  std::unique_ptr<MemorySystem> mem;
  mem = std::make_unique<MemorySystem>(
      cfg, 2, &stats,
      [&](CtxId v, AbortReason, uint64_t, CtxId) { mem->tx_clear(v); });
  mem->tx_begin(0, 0);
  for (int i = 0; i < 20; ++i) {
    mem->access(0, 0x40000 + i * 64, i % 2 == 0, true);
  }
  mem->tx_clear(0);
  EXPECT_TRUE(mem->read_lines(0).empty());
  EXPECT_TRUE(mem->write_lines(0).empty());
  for (int i = 0; i < 20; ++i) {
    uint64_t line = line_of(0x40000 + i * 64);
    if (auto* l = mem->l1(0).probe(line)) {
      EXPECT_EQ(l->tx_write_mask, 0) << "stale write flag on line " << line;
    }
    if (auto* l = mem->l3().probe(line)) {
      EXPECT_EQ(l->tx_read_mask, 0) << "stale read flag on line " << line;
    }
  }
}

TEST(MemoryInvariants, DirtyDataSurvivesEvictionChains) {
  // Write through a tiny hierarchy with heavy set pressure, then verify the
  // values all read back (i.e. no write was lost in an eviction path).
  MachineConfig cfg;
  cfg.l1 = CacheGeometry{512, 2};
  cfg.l2 = CacheGeometry{1024, 2};
  cfg.l3 = CacheGeometry{4096, 2};
  cfg.interrupts_enabled = false;
  Machine m(cfg, 2);
  m.prefault(0x50000, 64 * 1024);
  m.set_thread(0, [&] {
    for (int i = 0; i < 512; ++i) {
      m.store(0x50000 + static_cast<Addr>(i) * 64, 7000 + i);
    }
  });
  m.set_thread(1, [&] {
    for (int i = 0; i < 512; ++i) {
      m.store(0x58000 + static_cast<Addr>(i) * 64, 9000 + i);
    }
  });
  m.run();
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(m.peek(0x50000 + static_cast<Addr>(i) * 64),
              static_cast<Word>(7000 + i));
    EXPECT_EQ(m.peek(0x58000 + static_cast<Addr>(i) * 64),
              static_cast<Word>(9000 + i));
  }
}

TEST(MemoryInvariants, RemoteAbortLeavesNoSpeculativeState) {
  // Ctx 0 runs a tx with several stores, ctx 1 conflicts mid-way; after the
  // abort, none of ctx 0's speculative values may be visible and the next
  // transaction must succeed cleanly.
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  Machine m(cfg, 2);
  m.prefault(0x60000, 4096);
  bool aborted = false;
  m.set_thread(0, [&] {
    try {
      m.tx_begin();
      for (int i = 0; i < 8; ++i) {
        m.store(0x60000 + static_cast<Addr>(i) * 64, 0xbad);
        m.compute(100);
      }
      m.tx_commit();
    } catch (const TxAborted&) {
      aborted = true;
    }
    // Clean retry in a fresh transaction.
    m.tx_begin();
    m.store(0x60000, 1);
    m.tx_commit();
  });
  m.set_thread(1, [&] {
    // By cycle ~400 ctx 0 has written line 0 inside its transaction;
    // writing it non-transactionally conflicts and aborts ctx 0.
    m.compute(400);
    m.store(0x60000, 5);
  });
  m.run();
  EXPECT_TRUE(aborted);
  // Ctx 0's clean retry committed last: its value won the line.
  EXPECT_EQ(m.peek(0x60000), 1u);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(m.peek(0x60000 + static_cast<Addr>(i) * 64), 0u)
        << "speculative store leaked at line " << i;
  }
}

}  // namespace
