#include <gtest/gtest.h>

#include "stamp/lib/list.h"

namespace {

using namespace tsx;
using namespace tsx::stamp;
using core::Backend;

core::RunConfig cfg1() {
  core::RunConfig cfg;
  cfg.backend = Backend::kSeq;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;
  return cfg;
}

TEST(List, SortedInsertKeepsOrder) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (sim::Word k : {5, 1, 9, 3, 7}) l.insert_sorted(ctx, k, k * 10);
    EXPECT_EQ(l.size(ctx), 5u);
  });
  auto items = l.host_items(rt);
  ASSERT_EQ(items.size(), 5u);
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
  EXPECT_EQ(items[0].first, 1u);
  EXPECT_EQ(items[0].second, 10u);
}

TEST(List, PushFrontIsLifo) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    l.push_front(ctx, 1, 0);
    l.push_front(ctx, 2, 0);
    l.push_front(ctx, 3, 0);
  });
  auto items = l.host_items(rt);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 3u);
  EXPECT_EQ(items[2].first, 1u);
}

TEST(List, HostSortRestoresOrder) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (sim::Word k : {4, 2, 8, 6}) l.push_front(ctx, k, k);
  });
  l.host_sort(rt);
  auto items = l.host_items(rt);
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].first, 2u);
  EXPECT_EQ(items[3].first, 8u);
}

TEST(List, FindAndRemove) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (sim::Word k : {1, 2, 3}) l.insert_sorted(ctx, k, 100 + k);
    sim::Word v = 0;
    EXPECT_TRUE(l.find(ctx, 2, &v));
    EXPECT_EQ(v, 102u);
    EXPECT_FALSE(l.find(ctx, 4, &v));
    EXPECT_TRUE(l.remove(ctx, 2));
    EXPECT_FALSE(l.remove(ctx, 2));
    EXPECT_FALSE(l.find(ctx, 2, &v));
    EXPECT_EQ(l.size(ctx), 2u);
    // Remove the head and the tail.
    EXPECT_TRUE(l.remove(ctx, 1));
    EXPECT_TRUE(l.remove(ctx, 3));
    EXPECT_TRUE(l.empty(ctx));
  });
}

TEST(List, PopFrontDrains) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    l.insert_sorted(ctx, 2, 20);
    l.insert_sorted(ctx, 1, 10);
    sim::Word k = 0, v = 0;
    EXPECT_TRUE(l.pop_front(ctx, &k, &v));
    EXPECT_EQ(k, 1u);
    EXPECT_EQ(v, 10u);
    EXPECT_TRUE(l.pop_front(ctx, &k, &v));
    EXPECT_EQ(k, 2u);
    EXPECT_FALSE(l.pop_front(ctx, &k, &v));
  });
}

TEST(List, ClearFreesNodes) {
  core::RunConfig cfg = cfg1();
  core::TxRuntime rt(cfg);
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    uint64_t live0 = rt.heap().stats().bytes_live;
    for (int k = 0; k < 10; ++k) l.push_front(ctx, k, k);
    l.clear(ctx);
    EXPECT_TRUE(l.empty(ctx));
    EXPECT_EQ(l.size(ctx), 0u);
    EXPECT_EQ(rt.heap().stats().bytes_live, live0);
  });
}

TEST(List, DuplicateKeysAllowed) {
  core::TxRuntime rt(cfg1());
  List l = List::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    l.insert_sorted(ctx, 5, 1);
    l.insert_sorted(ctx, 5, 2);
    EXPECT_EQ(l.size(ctx), 2u);
  });
}

TEST(List, SortedInsertReadSetGrowsWithLength) {
  // The §V-A point: sorted insertion reads O(n) nodes, prepend reads O(1).
  core::RunConfig cfg = cfg1();
  cfg.backend = Backend::kRtm;
  core::TxRuntime rt(cfg);
  List l = List::create_host(rt);
  sim::Cycles sorted_cost = 0, prepend_cost = 0;
  rt.run([&](core::TxCtx& ctx) {
    for (int k = 0; k < 200; ++k) l.push_front(ctx, k, k);
    l.host_sort(rt);
    sim::Cycles t0 = ctx.now();
    ctx.transaction([&] { l.insert_sorted(ctx, 1000, 0); });
    sorted_cost = ctx.now() - t0;
    t0 = ctx.now();
    ctx.transaction([&] { l.push_front(ctx, 1001, 0); });
    prepend_cost = ctx.now() - t0;
  });
  EXPECT_GT(sorted_cost, 5 * prepend_cost);
}

}  // namespace
