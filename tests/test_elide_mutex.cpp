// Ported atomic_sync-style suite for elide::mutex: exclusion and exactness
// on every backend, speculation statistics, self-stop, nesting contract,
// and the broken-elision (unsubscribed lock word) canary.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "check/oracle.h"
#include "core/runtime.h"
#include "elide/elide.h"

namespace {

using namespace tsx;
using core::Backend;
using core::RunConfig;
using core::TxCtx;
using core::TxRuntime;
using sim::Addr;
using sim::Word;

RunConfig make_cfg(Backend b, uint32_t threads) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

// Shared-counter exactness through critical_section on every backend: the
// elided lock must serialize read-modify-write sections no matter how the
// executor implements (or declines) speculation.
class ElideMutexBackends
    : public ::testing::TestWithParam<std::tuple<Backend, uint32_t>> {};

TEST_P(ElideMutexBackends, CountingIsExact) {
  auto [backend, threads] = GetParam();
  TxRuntime rt(make_cfg(backend, threads));
  Addr counter = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "m");
  const int iters = 150;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      mu.critical_section(ctx, [&] {
        Word v = ctx.load(counter);
        ctx.compute(5);
        ctx.store(counter, v + 1);
      });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), static_cast<Word>(threads) * iters);
  const elide::ElideStats& s = mu.stats();
  EXPECT_EQ(s.acquisitions, static_cast<uint64_t>(threads) * iters);
  EXPECT_EQ(s.elided + s.fallbacks, s.acquisitions);
}

TEST_P(ElideMutexBackends, MixedLockedAndElidedSections) {
  auto [backend, threads] = GetParam();
  TxRuntime rt(make_cfg(backend, threads));
  Addr counter = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "m");
  const int iters = 120;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      auto body = [&] {
        Word v = ctx.load(counter);
        ctx.compute(20);
        ctx.store(counter, v + 1);
      };
      // Every third section takes the real lock — speculation must yield to
      // (and recover from) genuine holders.
      if (i % 3 == 0) {
        mu.locked_section(ctx, body);
      } else {
        mu.critical_section(ctx, body);
      }
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), static_cast<Word>(threads) * iters);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ElideMutexBackends,
    ::testing::Combine(::testing::Values(Backend::kRtm, Backend::kHle,
                                         Backend::kTinyStm, Backend::kTl2,
                                         Backend::kLock, Backend::kCas,
                                         Backend::kHybrid),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& suite_info) {
      return std::string(core::backend_name(std::get<0>(suite_info.param))) + "_" +
             std::to_string(std::get<1>(suite_info.param)) + "t";
    });

TEST(ElideMutex, SpeculationActuallyElidesOnRtm) {
  // Disjoint per-thread data: every speculative attempt commits, the lock
  // word is never written, and no section pays for the lock.
  TxRuntime rt(make_cfg(Backend::kRtm, 4));
  Addr arr = rt.heap().host_alloc(4 * 64, 64);
  elide::mutex mu(rt, "m");
  const int iters = 100;
  rt.run([&](TxCtx& ctx) {
    Addr mine = arr + ctx.id() * 64;
    for (int i = 0; i < iters; ++i) {
      mu.critical_section(ctx, [&] { ctx.store(mine, ctx.load(mine) + 1); });
    }
  });
  const elide::ElideStats& s = mu.stats();
  EXPECT_EQ(s.acquisitions, 400u);
  EXPECT_GT(s.elided, 0u);
  EXPECT_GT(s.elided, s.fallbacks);
  EXPECT_FALSE(mu.is_locked());
}

TEST(ElideMutex, DisabledElisionAlwaysTakesTheLock) {
  TxRuntime rt(make_cfg(Backend::kRtm, 2));
  Addr counter = rt.heap().host_alloc(8, 64);
  elide::ElideConfig ec;
  ec.elision_enabled = false;
  elide::mutex mu(rt, "m", ec);
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      mu.critical_section(ctx,
                          [&] { ctx.store(counter, ctx.load(counter) + 1); });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), 100u);
  const elide::ElideStats& s = mu.stats();
  EXPECT_EQ(s.elided, 0u);
  EXPECT_EQ(s.attempts, 0u);
  EXPECT_EQ(s.fallbacks, 100u);
}

TEST(ElideMutex, TryLockAndOwnership) {
  TxRuntime rt(make_cfg(Backend::kLock, 2));
  elide::mutex mu(rt, "m");
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      ASSERT_TRUE(mu.try_lock(ctx));
      EXPECT_TRUE(mu.held_by(ctx));
      ctx.barrier();  // let ctx 1 observe the held lock
      ctx.barrier();
      mu.unlock(ctx);
      EXPECT_FALSE(mu.is_locked());
    } else {
      ctx.barrier();
      EXPECT_FALSE(mu.try_lock(ctx));
      EXPECT_FALSE(mu.held_by(ctx));
      ctx.barrier();
    }
  });
}

TEST(ElideMutex, UnlockWithoutHoldingThrows) {
  TxRuntime rt(make_cfg(Backend::kLock, 1));
  elide::mutex mu(rt, "m");
  EXPECT_THROW(rt.run([&](TxCtx& ctx) { mu.unlock(ctx); }), std::logic_error);
}

TEST(ElideMutex, NestedElisionThrows) {
  TxRuntime rt(make_cfg(Backend::kLock, 1));
  Addr w = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "m");
  EXPECT_THROW(rt.run([&](TxCtx& ctx) {
                 ctx.transaction([&] {
                   mu.critical_section(ctx, [&] { ctx.store(w, 1); });
                 });
               }),
               std::logic_error);
}

TEST(ElideMutex, SeqBackendDisablesElisionButStaysCorrect) {
  TxRuntime rt(make_cfg(Backend::kSeq, 1));
  Addr counter = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "m");  // elision_enabled defaults true; kSeq vetoes it
  EXPECT_FALSE(mu.elision_active());
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 40; ++i) {
      mu.critical_section(ctx,
                          [&] { ctx.store(counter, ctx.load(counter) + 1); });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), 40u);
  EXPECT_EQ(mu.stats().elided, 0u);
  EXPECT_EQ(mu.stats().fallbacks, 40u);
}

TEST(ElideMutex, SelfStopTripsOnHopelessSections) {
  // Every speculative attempt write-overflows the transactional capacity,
  // so speculation is pure waste; the self-stop heuristic must disable
  // elision after `window * strikes` acquisitions and stop burning attempts.
  TxRuntime rt(make_cfg(Backend::kRtm, 1));
  constexpr uint32_t kLines = 1200;  // far past L1 write capacity
  Addr big = rt.heap().host_alloc(kLines * 64, 64);
  elide::ElideConfig ec;
  ec.retry.max_attempts = 2;
  ec.selfstop_window = 4;
  ec.selfstop_strikes = 2;
  elide::mutex mu(rt, "hopeless", ec);
  const int iters = 20;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      mu.critical_section(ctx, [&] {
        for (uint32_t l = 0; l < kLines; ++l) {
          ctx.store(big + l * 64, static_cast<Word>(i));
        }
      });
    }
  });
  const elide::ElideStats& s = mu.stats();
  EXPECT_TRUE(s.stopped);
  EXPECT_EQ(s.self_stops, 1u);
  EXPECT_FALSE(mu.elision_active());
  EXPECT_EQ(s.acquisitions, static_cast<uint64_t>(iters));
  EXPECT_EQ(s.elided, 0u);
  EXPECT_EQ(s.fallbacks, static_cast<uint64_t>(iters));
  // After the stop (8 acquisitions in), the remaining sections must not
  // speculate: attempts stay at 2 per pre-stop acquisition.
  EXPECT_EQ(s.attempts, 8u * ec.retry.max_attempts);
  // reset_elision() re-arms speculation.
  mu.reset_elision();
  EXPECT_TRUE(mu.elision_active());
}

TEST(ElideMutex, BrokenElisionCanaryLosesUpdates) {
  // With subscription off, a speculative section can commit entirely inside
  // a real holder's load-compute-store window — the oracle's elide-mutex
  // workload must catch the lost update on at least one seed.
  int failures = 0;
  for (uint64_t seed = 1; seed <= 12 && failures == 0; ++seed) {
    check::OracleConfig cfg;
    cfg.threads = 2;
    cfg.loops = 12;
    cfg.seed = seed;
    cfg.machine_seed = seed * 1013904223ull + 5;
    cfg.break_elision = true;
    check::WorkloadResult r =
        check::run_workload("elide-mutex", Backend::kRtm, cfg);
    if (!r.ok) ++failures;
  }
  EXPECT_GT(failures, 0)
      << "unsubscribed elision went undetected across all seeds";
}

TEST(ElideMutex, SubscribedElisionPassesTheSameSeeds) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    check::OracleConfig cfg;
    cfg.threads = 2;
    cfg.loops = 12;
    cfg.seed = seed;
    cfg.machine_seed = seed * 1013904223ull + 5;
    check::WorkloadResult r =
        check::run_workload("elide-mutex", Backend::kRtm, cfg);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.error;
  }
}

}  // namespace
