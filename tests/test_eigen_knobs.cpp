// Each Eigenbench knob (paper Table II) must move observable machine
// behaviour in the documented direction. These tests pin the knob-to-effect
// mapping that the figure sweeps rely on.

#include <gtest/gtest.h>

#include "eigenbench/eigenbench.h"

namespace {

using namespace tsx;
using namespace tsx::eigenbench;
using core::Backend;

core::RunConfig seq1() {
  core::RunConfig cfg;
  cfg.backend = Backend::kSeq;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;
  return cfg;
}

core::RunConfig rtm(uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = Backend::kRtm;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  return cfg;
}

EigenConfig base_eb() {
  EigenConfig eb;
  eb.loops = 60;
  eb.reads_mild = 45;
  eb.writes_mild = 5;
  eb.ws_bytes = 16 * 1024;
  return eb;
}

TEST(EigenKnobs, TxLengthScalesAccessCount) {
  EigenConfig short_tx = base_eb();
  EigenConfig long_tx = base_eb();
  long_tx.reads_mild = 180;
  long_tx.writes_mild = 20;
  auto rs = run(seq1(), short_tx);
  auto rl = run(seq1(), long_tx);
  EXPECT_EQ(rl.total_reads + rl.total_writes,
            4 * (rs.total_reads + rs.total_writes));
}

TEST(EigenKnobs, WorkingSetControlsCacheLevel) {
  EigenConfig small = base_eb();  // 16K: L1-resident
  EigenConfig big = base_eb();
  big.ws_bytes = 2 * 1024 * 1024;  // 2M: L2-busting
  auto rs = run(seq1(), small);
  auto rb = run(seq1(), big);
  // Larger working set: more L3/mem traffic per access.
  double small_miss =
      static_cast<double>(rs.report.machine.mem.l3_hits +
                          rs.report.machine.mem.mem_accesses) /
      rs.report.machine.mem.accesses();
  double big_miss =
      static_cast<double>(rb.report.machine.mem.l3_hits +
                          rb.report.machine.mem.mem_accesses) /
      rb.report.machine.mem.accesses();
  EXPECT_GT(big_miss, small_miss + 0.1);
}

TEST(EigenKnobs, PollutionControlsWriteShare) {
  EigenConfig eb = base_eb();
  eb.reads_mild = 10;
  eb.writes_mild = 40;  // pollution 0.8
  auto r = run(seq1(), eb);
  EXPECT_EQ(r.total_writes, 4u * r.total_reads);
}

TEST(EigenKnobs, LocalityShrinksFootprint) {
  // A cache-busting working set: with everything L1-resident, locality
  // cannot change timing, so use 2 MB.
  EigenConfig spread = base_eb();
  spread.ws_bytes = 2 * 1024 * 1024;
  EigenConfig tight = spread;
  tight.locality = 0.9;
  auto rs = run(seq1(), spread);
  auto rt_ = run(seq1(), tight);
  // High locality repeats addresses: fewer distinct lines -> fewer misses
  // -> fewer cycles for identical access counts.
  EXPECT_EQ(rs.total_reads, rt_.total_reads);
  EXPECT_LT(rt_.report.wall_cycles, rs.report.wall_cycles);
}

TEST(EigenKnobs, HotArrayCreatesConflicts) {
  EigenConfig calm = base_eb();
  EigenConfig hot = base_eb();
  hot.reads_hot = 6;
  hot.writes_hot = 6;
  hot.hot_bytes = 512;
  auto rc = run(rtm(4), calm);
  auto rh = run(rtm(4), hot);
  EXPECT_EQ(rc.report.rtm.aborts_by_class[size_t(
                htm::AbortClass::kConflictOrReadCap)],
            0u);
  EXPECT_GT(rh.report.rtm.aborts_by_class[size_t(
                htm::AbortClass::kConflictOrReadCap)],
            0u);
}

TEST(EigenKnobs, PredominanceAddsNonTxWork) {
  EigenConfig pure = base_eb();
  EigenConfig mixed = base_eb();
  mixed.reads_cold = 90;
  mixed.writes_cold = 10;
  auto rp = run(seq1(), pure);
  auto rm = run(seq1(), mixed);
  // Cold accesses add to total work but not to transactional counts.
  EXPECT_GT(rm.total_reads, rp.total_reads);
  EXPECT_GT(rm.report.wall_cycles, rp.report.wall_cycles);
  EXPECT_EQ(rm.report.machine.tx.started, rp.report.machine.tx.started);
}

TEST(EigenKnobs, NopsExtendTransactionDuration) {
  EigenConfig plain = base_eb();
  EigenConfig padded = base_eb();
  padded.nops_in_tx = 5000;
  auto rp = run(seq1(), plain);
  auto rq = run(seq1(), padded);
  EXPECT_GT(rq.report.wall_cycles,
            rp.report.wall_cycles + 60 * 4000);
}

TEST(EigenKnobs, ConcurrencyDistributesWork) {
  EigenConfig eb = base_eb();
  auto r1 = run(rtm(1), eb);
  auto r4 = run(rtm(4), eb);
  // Each thread does `loops` transactions: 4 threads, 4x the tx count.
  EXPECT_EQ(r4.report.machine.tx.started, 4 * r1.report.machine.tx.started);
  // And the wall time is far less than 4x.
  EXPECT_LT(r4.report.wall_cycles, 2 * r1.report.wall_cycles);
}

}  // namespace
