#include <gtest/gtest.h>

#include "eigenbench/eigenbench.h"

namespace {

using namespace tsx;
using namespace tsx::eigenbench;
using core::Backend;

core::RunConfig base_cfg(Backend b, uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

EigenConfig small_eb() {
  EigenConfig eb;
  eb.loops = 50;
  eb.reads_mild = 18;
  eb.writes_mild = 2;
  eb.ws_bytes = 4096;
  return eb;
}

TEST(Eigenbench, CountsMatchConfiguration) {
  auto res = run(base_cfg(Backend::kSeq, 1), small_eb());
  EXPECT_EQ(res.total_reads, 50u * 18u);
  EXPECT_EQ(res.total_writes, 50u * 2u);
}

TEST(Eigenbench, VerifyIncrementsConservedSeq) {
  EigenConfig eb = small_eb();
  eb.verify_increments = true;
  auto res = run(base_cfg(Backend::kSeq, 1), eb);
  EXPECT_EQ(res.increment_sum, res.total_writes);
}

class EigenAtomicity : public ::testing::TestWithParam<Backend> {};

TEST_P(EigenAtomicity, IncrementsConservedUnderContention) {
  EigenConfig eb = small_eb();
  eb.verify_increments = true;
  eb.reads_hot = 4;
  eb.writes_hot = 4;
  eb.hot_bytes = 512;  // tiny shared array: heavy conflicts
  auto res = run(base_cfg(GetParam(), 4), eb);
  // Atomic increments: the grand total must equal writes performed by
  // committed transactions exactly.
  EXPECT_EQ(res.increment_sum, res.total_writes);
  EXPECT_EQ(res.total_writes, 4u * 50u * (2u + 4u));
}

INSTANTIATE_TEST_SUITE_P(Backends, EigenAtomicity,
                         ::testing::Values(Backend::kLock, Backend::kRtm,
                                           Backend::kTinyStm, Backend::kTl2),
                         [](const auto& info) {
                           return core::backend_name(info.param);
                         });

TEST(Eigenbench, ContentionCausesAborts) {
  EigenConfig eb = small_eb();
  eb.reads_hot = 8;
  eb.writes_hot = 8;
  eb.hot_bytes = 256;
  auto rtm = run(base_cfg(Backend::kRtm, 4), eb);
  EXPECT_GT(rtm.report.rtm.aborts(), 0u);
  auto stm = run(base_cfg(Backend::kTinyStm, 4), eb);
  EXPECT_GT(stm.report.stm.aborts(), 0u);
}

TEST(Eigenbench, NoContentionNoConflicts) {
  EigenConfig eb = small_eb();  // mild arrays are per-thread
  auto res = run(base_cfg(Backend::kRtm, 4), eb);
  using tsx::htm::AbortClass;
  EXPECT_EQ(res.report.rtm.aborts_by_class[size_t(
                AbortClass::kConflictOrReadCap)],
            0u);
}

TEST(Eigenbench, WorkingSetBeyondL1SlowsRtm) {
  EigenConfig small = small_eb();
  small.loops = 100;
  EigenConfig big = small;
  big.ws_bytes = 1 * 1024 * 1024;  // 1 MB: L2-resident
  auto r_small = run(base_cfg(Backend::kRtm, 1), small);
  auto r_big = run(base_cfg(Backend::kRtm, 1), big);
  EXPECT_GT(r_big.report.wall_cycles, r_small.report.wall_cycles);
}

TEST(Eigenbench, ConflictProbabilityFormula) {
  EXPECT_DOUBLE_EQ(conflict_probability(1, 10, 10, 1024), 0.0);
  EXPECT_DOUBLE_EQ(conflict_probability(4, 10, 0, 1024),
                   conflict_probability(4, 10, 0, 1024));
  // More threads, more writes, smaller array -> higher probability.
  double p1 = conflict_probability(2, 5, 5, 4096);
  double p2 = conflict_probability(4, 5, 5, 4096);
  double p3 = conflict_probability(4, 5, 10, 4096);
  double p4 = conflict_probability(4, 5, 10, 1024);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
  EXPECT_GE(p1, 0.0);
  EXPECT_LE(p4, 1.0);
  // Line granularity (fewer units) yields higher contention than words.
  EXPECT_GT(conflict_probability_lines(4, 5, 5, 64 * 1024),
            conflict_probability(4, 5, 5, 64 * 1024 / 8));
}

TEST(Eigenbench, LocalityReducesRtmFootprint) {
  EigenConfig lo = small_eb();
  lo.loops = 100;
  lo.ws_bytes = 256 * 1024;
  lo.locality = 0.0;
  EigenConfig hi = lo;
  hi.locality = 0.9;
  auto r_lo = run(base_cfg(Backend::kRtm, 1), lo);
  auto r_hi = run(base_cfg(Backend::kRtm, 1), hi);
  // High locality touches fewer distinct lines: fewer cache misses, faster.
  EXPECT_LT(r_hi.report.wall_cycles, r_lo.report.wall_cycles);
}

TEST(Eigenbench, RejectsDegenerateArrays) {
  EigenConfig eb = small_eb();
  eb.ws_bytes = 4;
  EXPECT_THROW(run(base_cfg(Backend::kSeq, 1), eb), std::invalid_argument);
}

}  // namespace
