// elide::sux_lock (shared / update / exclusive): coexistence matrix, upgrade
// drain, and elided shared/exclusive consistency — plus elide::shared_mutex
// reader/writer behavior, both in the ported atomic_sync suite shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/runtime.h"
#include "elide/elide.h"

namespace {

using namespace tsx;
using core::Backend;
using core::RunConfig;
using core::TxCtx;
using core::TxRuntime;
using sim::Addr;
using sim::Word;

RunConfig make_cfg(Backend b, uint32_t threads) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

// ---- shared_mutex -------------------------------------------------------

// Writers keep two words in lockstep; readers must never see them diverge.
// Elided sections and real acquisitions are mixed so every protocol pairing
// (spec/spec, spec/real, real/real) occurs.
class ElideSharedBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ElideSharedBackends, ReadersNeverSeeTornWrites) {
  TxRuntime rt(make_cfg(GetParam(), 4));
  Addr x = rt.heap().host_alloc(64, 64);
  Addr y = rt.heap().host_alloc(64, 64);
  elide::shared_mutex mu(rt, "rw");
  const int iters = 60;
  bool torn = false;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      bool writer = (ctx.id() + i) % 4 == 0;
      if (writer) {
        auto body = [&] {
          ctx.store(x, ctx.load(x) + 1);
          ctx.compute(25);
          ctx.store(y, ctx.load(y) + 1);
        };
        if (i % 3 == 0) {
          mu.lock(ctx);
          ctx.elide_fallback(body);
          mu.unlock(ctx);
        } else {
          mu.critical_section(ctx, body);
        }
      } else {
        Word vx = 0, vy = 0;
        auto body = [&] {
          vx = ctx.load(x);
          ctx.compute(10);
          vy = ctx.load(y);
        };
        if (i % 3 == 0) {
          mu.lock_shared(ctx);
          ctx.elide_fallback(body);
          mu.unlock_shared(ctx);
        } else {
          mu.critical_section_shared(ctx, body);
        }
        if (vx != vy) torn = true;
      }
    }
  });
  EXPECT_FALSE(torn);
  EXPECT_EQ(rt.machine().peek(x), rt.machine().peek(y));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ElideSharedBackends,
                         ::testing::Values(Backend::kRtm, Backend::kHle,
                                           Backend::kTinyStm, Backend::kTl2,
                                           Backend::kLock, Backend::kCas,
                                           Backend::kHybrid),
                         [](const auto& suite_info) {
                           return std::string(core::backend_name(suite_info.param));
                         });

TEST(ElideSharedMutex, RealReadersOverlap) {
  // Host-side concurrency probe: real (non-speculative) shared holds never
  // retry, so host counters are exact. Readers must overlap each other.
  TxRuntime rt(make_cfg(Backend::kRtm, 4));
  elide::shared_mutex mu(rt, "rw");
  int in_section = 0, max_in_section = 0;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 20; ++i) {
      mu.lock_shared(ctx);
      ++in_section;
      max_in_section = std::max(max_in_section, in_section);
      ctx.compute(200);
      --in_section;
      mu.unlock_shared(ctx);
      ctx.compute(10);
    }
  });
  EXPECT_GE(max_in_section, 2);
}

TEST(ElideSharedMutex, WriterExcludesEveryone) {
  TxRuntime rt(make_cfg(Backend::kRtm, 4));
  elide::shared_mutex mu(rt, "rw");
  int in_write = 0;
  bool overlap = false;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < 15; ++i) {
      mu.lock(ctx);
      if (in_write != 0) overlap = true;
      ++in_write;
      ctx.compute(60);
      --in_write;
      mu.unlock(ctx);
      ctx.compute(15);
    }
  });
  EXPECT_FALSE(overlap);
}

TEST(ElideSharedMutex, TryVariantsBackOutCleanly) {
  TxRuntime rt(make_cfg(Backend::kLock, 2));
  elide::shared_mutex mu(rt, "rw");
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      ASSERT_TRUE(mu.try_lock(ctx));
      ctx.barrier();  // ctx 1 probes while the writer holds
      ctx.barrier();
      mu.unlock(ctx);
      ctx.barrier();  // ctx 1 takes a shared hold
      ctx.barrier();
    } else {
      ctx.barrier();
      EXPECT_FALSE(mu.try_lock_shared(ctx));
      EXPECT_FALSE(mu.try_lock(ctx));
      ctx.barrier();
      ctx.barrier();
      ASSERT_TRUE(mu.try_lock_shared(ctx));
      // A writer cannot sneak in past an active reader.
      EXPECT_FALSE(mu.try_lock(ctx));
      mu.unlock_shared(ctx);
      ctx.barrier();
    }
  });
}

// ---- sux_lock -----------------------------------------------------------

TEST(ElideSuxLock, SharedCoexistsWithUpdate) {
  // An update holder must not block readers (that is the point of U), and
  // readers must not block the update acquisition.
  TxRuntime rt(make_cfg(Backend::kRtm, 3));
  elide::sux_lock lk(rt, "sux");
  int readers_during_u = 0;
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      lk.u_lock(ctx);
      ctx.barrier();  // readers enter while U is held
      ctx.compute(500);
      ctx.barrier();  // readers report
      lk.u_unlock(ctx);
    } else {
      ctx.barrier();
      lk.s_lock(ctx);
      ++readers_during_u;
      ctx.compute(100);
      lk.s_unlock(ctx);
      ctx.barrier();
    }
  });
  EXPECT_EQ(readers_during_u, 2);
}

TEST(ElideSuxLock, UpgradeDrainsReadersBeforeExclusive) {
  // u -> x upgrade must wait for in-flight readers; once exclusive, new
  // readers wait. The two probe words make the ordering observable.
  TxRuntime rt(make_cfg(Backend::kRtm, 2));
  Addr data = rt.heap().host_alloc(64, 64);
  elide::sux_lock lk(rt, "sux");
  bool reader_saw_partial = false;
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      lk.u_lock(ctx);
      ctx.barrier();  // reader takes its shared hold
      lk.u_x_upgrade(ctx);  // must block until the reader releases
      ctx.store(data, 1);
      ctx.compute(50);
      ctx.store(data, 2);
      lk.x_unlock(ctx);
    } else {
      lk.s_lock(ctx);
      ctx.barrier();
      ctx.compute(300);
      // Still inside the shared hold: the upgrade cannot have completed,
      // so the data must be untouched.
      if (ctx.load(data) != 0) reader_saw_partial = true;
      lk.s_unlock(ctx);
      // Re-acquire after the writer finished: must see the final value.
      lk.s_lock(ctx);
      Word v = ctx.load(data);
      if (v != 0 && v != 2) reader_saw_partial = true;
      lk.s_unlock(ctx);
    }
  });
  EXPECT_FALSE(reader_saw_partial);
  EXPECT_EQ(rt.machine().peek(data), 2u);
}

TEST(ElideSuxLock, TryAcquiresRespectHolders) {
  TxRuntime rt(make_cfg(Backend::kLock, 2));
  elide::sux_lock lk(rt, "sux");
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      lk.x_lock(ctx);
      ctx.barrier();
      ctx.barrier();
      lk.x_unlock(ctx);
      ctx.barrier();
      // U held by ctx 1 now: S must still be available, U must not.
      EXPECT_TRUE(lk.try_s_lock(ctx));
      lk.s_unlock(ctx);
      EXPECT_FALSE(lk.try_u_lock(ctx));
      ctx.barrier();
    } else {
      ctx.barrier();
      EXPECT_FALSE(lk.try_s_lock(ctx));
      EXPECT_FALSE(lk.try_u_lock(ctx));
      ctx.barrier();
      ctx.barrier();
      ASSERT_TRUE(lk.try_u_lock(ctx));
      ctx.barrier();
      lk.u_unlock(ctx);
    }
  });
}

class ElideSuxBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ElideSuxBackends, ElidedSectionsKeepInvariant) {
  // Writers through critical_section_x keep x == y; readers through
  // critical_section_shared snapshot both. Mixed with real u->x upgrades.
  TxRuntime rt(make_cfg(GetParam(), 4));
  Addr x = rt.heap().host_alloc(64, 64);
  Addr y = rt.heap().host_alloc(64, 64);
  elide::sux_lock lk(rt, "sux");
  const int iters = 50;
  bool torn = false;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      bool writer = (ctx.id() + i) % 4 == 0;
      auto wbody = [&] {
        ctx.store(x, ctx.load(x) + 1);
        ctx.compute(20);
        ctx.store(y, ctx.load(y) + 1);
      };
      if (writer) {
        if (i % 3 == 0) {
          lk.x_lock(ctx);
          ctx.elide_fallback(wbody);
          lk.x_unlock(ctx);
        } else {
          lk.critical_section_x(ctx, wbody);
        }
      } else {
        Word vx = 0, vy = 0;
        lk.critical_section_shared(ctx, [&] {
          vx = ctx.load(x);
          ctx.compute(8);
          vy = ctx.load(y);
        });
        if (vx != vy) torn = true;
      }
    }
  });
  EXPECT_FALSE(torn);
  EXPECT_EQ(rt.machine().peek(x), rt.machine().peek(y));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ElideSuxBackends,
                         ::testing::Values(Backend::kRtm, Backend::kTinyStm,
                                           Backend::kLock, Backend::kHybrid),
                         [](const auto& suite_info) {
                           return std::string(core::backend_name(suite_info.param));
                         });

}  // namespace
