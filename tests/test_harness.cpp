#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "eigenbench/eigenbench.h"
#include "harness/runner.h"

namespace {

using tsx::harness::Digest;
using tsx::harness::Job;
using tsx::harness::Runner;
using tsx::harness::RunnerOptions;

RunnerOptions quiet(unsigned jobs) {
  RunnerOptions opt;
  opt.jobs = jobs;
  opt.quiet = true;
  return opt;
}

// A synthetic job mix with deliberately skewed durations: under a pool the
// completion order differs from the index order, which is exactly what the
// Runner must hide from the caller.
std::vector<uint64_t> synthetic_sweep(unsigned jobs) {
  Runner r(quiet(jobs));
  return r.map<uint64_t>(
      24,
      [](size_t i) {
        // Later indices finish first; earlier ones sleep.
        std::this_thread::sleep_for(std::chrono::microseconds((24 - i) * 50));
        uint64_t v = 0x9e3779b97f4a7c15ull * (i + 1);
        v ^= v >> 29;
        return v;
      },
      [](size_t i) {
        Job j;
        j.seed = i;
        j.label = "synthetic";
        return j;
      });
}

TEST(Runner, ResultsInIndexOrderRegardlessOfJobCount) {
  auto serial = synthetic_sweep(1);
  auto pooled = synthetic_sweep(8);
  EXPECT_EQ(serial, pooled);
}

TEST(Runner, SerialPathRunsInlineOnCallingThread) {
  Runner r(quiet(1));
  std::thread::id main_id = std::this_thread::get_id();
  std::vector<size_t> order;
  std::vector<Job> jobs;
  for (size_t i = 0; i < 5; ++i) {
    Job j;
    j.fn = [&, i] {
      EXPECT_EQ(std::this_thread::get_id(), main_id);
      order.push_back(i);
    };
    jobs.push_back(std::move(j));
  }
  r.run(std::move(jobs));
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(Runner, RethrowsLowestIndexedFailure) {
  for (unsigned jobs : {1u, 8u}) {
    Runner r(quiet(jobs));
    std::vector<Job> js;
    for (size_t i = 0; i < 16; ++i) {
      Job j;
      j.fn = [i] {
        if (i == 3) throw std::runtime_error("job3 failed");
        if (i == 11) throw std::runtime_error("job11 failed");
      };
      js.push_back(std::move(j));
    }
    try {
      r.run(std::move(js));
      FAIL() << "expected a rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job3 failed") << "jobs=" << jobs;
    }
  }
}

TEST(Runner, AllJobsCompleteDespiteFailures) {
  Runner r(quiet(4));
  std::atomic<int> completed{0};
  std::vector<Job> js;
  for (size_t i = 0; i < 12; ++i) {
    Job j;
    j.fn = [&completed, i] {
      if (i % 3 == 0) throw std::runtime_error("boom");
      completed.fetch_add(1);
    };
    js.push_back(std::move(j));
  }
  EXPECT_THROW(r.run(std::move(js)), std::runtime_error);
  EXPECT_EQ(completed.load(), 8);  // 12 jobs minus the 4 throwers
}

TEST(Runner, ZeroJobsDefaultsToHardwareConcurrency) {
  Runner r(quiet(0));
  unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(r.jobs(), hw == 0 ? 1u : hw);
}

TEST(Runner, ManifestRecordsJobsAndDigest) {
  std::ostringstream manifest;
  RunnerOptions opt = quiet(2);
  opt.bench_id = "unit_manifest";
  opt.config_digest = 0xabcdef;
  opt.manifest_stream = &manifest;
  Runner r(opt);
  std::vector<Job> js;
  for (size_t i = 0; i < 3; ++i) {
    Job j;
    j.fn = [] {};
    j.seed = 100 + i;
    j.label = "cell" + std::to_string(i);
    js.push_back(std::move(j));
  }
  r.run(std::move(js));
  std::string m = manifest.str();
  EXPECT_NE(m.find("\"bench\": \"unit_manifest\""), std::string::npos) << m;
  EXPECT_NE(m.find("\"config_digest\": \"0x0000000000abcdef\""),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("\"total_jobs\": 3"), std::string::npos) << m;
  EXPECT_NE(m.find("\"seed\": 102"), std::string::npos) << m;
  EXPECT_NE(m.find("\"label\": \"cell1\""), std::string::npos) << m;
  // No elide_locks_fn installed -> the key must be absent entirely.
  EXPECT_EQ(m.find("\"elide_locks\""), std::string::npos) << m;
}

TEST(Runner, ManifestEmbedsElideLockCounters) {
  std::ostringstream manifest;
  RunnerOptions opt = quiet(1);
  opt.bench_id = "unit_elide_manifest";
  opt.manifest_stream = &manifest;
  opt.elide_locks_fn = [] {
    return std::string(
        "[{\"name\": \"m\", \"acquisitions\": 7, \"attempts\": 9, "
        "\"elided\": 5, \"fallbacks\": 2, \"lock_acquires\": 2, "
        "\"self_stops\": 0}]");
  };
  Runner r(opt);
  std::vector<Job> js(1);
  js[0].fn = [] {};
  r.run(std::move(js));
  std::string m = manifest.str();
  EXPECT_NE(m.find("\"elide_locks\": [{\"name\": \"m\""), std::string::npos)
      << m;
  EXPECT_NE(m.find("\"acquisitions\": 7"), std::string::npos) << m;
  EXPECT_NE(m.find("\"fallbacks\": 2"), std::string::npos) << m;
}

TEST(Runner, ManifestOmitsElideLocksWhenFnReturnsEmpty) {
  std::ostringstream manifest;
  RunnerOptions opt = quiet(1);
  opt.bench_id = "unit_elide_manifest_empty";
  opt.manifest_stream = &manifest;
  opt.elide_locks_fn = [] { return std::string(); };
  Runner r(opt);
  std::vector<Job> js(1);
  js[0].fn = [] {};
  r.run(std::move(js));
  EXPECT_EQ(manifest.str().find("\"elide_locks\""), std::string::npos)
      << manifest.str();
}

// Progress-line policy: redirected output (stderr not a TTY) must stay free
// of throttled status lines, with --progress / TSXLAB_PROGRESS overrides.
TEST(Runner, ProgressForcedOffEmitsNothing) {
  std::ostringstream progress;
  RunnerOptions opt;
  opt.jobs = 1;
  opt.progress_stream = &progress;
  opt.assume_tty = 0;  // forced off beats the injected-stream auto-on
  Runner r(opt);
  std::vector<Job> js(3);
  for (Job& j : js) j.fn = [] {};
  r.run(std::move(js));
  EXPECT_EQ(progress.str(), "");
}

TEST(Runner, ProgressForcedOnEmitsFinalSummary) {
  std::ostringstream progress;
  RunnerOptions opt;
  opt.jobs = 1;
  opt.bench_id = "unit_progress";
  opt.progress_stream = &progress;
  opt.assume_tty = 1;
  Runner r(opt);
  std::vector<Job> js(3);
  for (Job& j : js) j.fn = [] {};
  r.run(std::move(js));
  EXPECT_NE(progress.str().find("[unit_progress] 3/3 jobs"),
            std::string::npos)
      << progress.str();
  EXPECT_NE(progress.str().find("(done)"), std::string::npos);
}

TEST(Runner, ProgressEnvOverridesAssumeTty) {
  ASSERT_EQ(setenv("TSXLAB_PROGRESS", "0", 1), 0);
  std::ostringstream progress;
  RunnerOptions opt;
  opt.jobs = 1;
  opt.progress_stream = &progress;
  opt.assume_tty = 1;  // env wins over the forced-on override
  Runner r(opt);
  std::vector<Job> js(2);
  for (Job& j : js) j.fn = [] {};
  r.run(std::move(js));
  unsetenv("TSXLAB_PROGRESS");
  EXPECT_EQ(progress.str(), "");
}

TEST(Digest, OrderAndValueSensitive) {
  Digest a, b, c;
  a.add(uint64_t{1});
  a.add(uint64_t{2});
  b.add(uint64_t{2});
  b.add(uint64_t{1});
  c.add(uint64_t{1});
  c.add(uint64_t{2});
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value(), c.value());
  EXPECT_EQ(a.hex().substr(0, 2), "0x");
}

// The load-bearing guarantee behind --jobs: distinct TxRuntime/Machine
// instances share no mutable state, so simulations running concurrently on
// host threads produce bit-identical reports to the same simulations run
// serially. This is the harness-level proof for the full bench drivers'
// byte-identical stdout (also enforced end-to-end in CI).
TEST(Runner, ConcurrentSimulationsMatchSerialBitForBit) {
  using tsx::core::Backend;

  auto simulate = [](size_t i) {
    tsx::core::RunConfig cfg;
    cfg.backend = i % 2 ? Backend::kRtm : Backend::kTinyStm;
    cfg.threads = 2;
    cfg.seed = 7000 + i;
    cfg.machine.seed = 7000 + i;
    tsx::eigenbench::EigenConfig eb;
    eb.loops = 20;
    eb.reads_mild = 18;
    eb.writes_mild = 2;
    eb.ws_bytes = 8 * 1024;
    auto res = tsx::eigenbench::run(cfg, eb);
    // Fingerprint everything the bench drivers derive rows from.
    Digest d;
    d.add(res.report.wall_cycles);
    d.add(res.report.joules());
    d.add(res.report.rtm.abort_rate());
    d.add(res.report.stm.abort_rate());
    d.add(res.read_checksum);
    return d.value();
  };
  auto meta = [](size_t i) {
    Job j;
    j.seed = 7000 + i;
    return j;
  };

  Runner serial(quiet(1));
  Runner pooled(quiet(6));
  auto a = serial.map<uint64_t>(12, simulate, meta);
  auto b = pooled.map<uint64_t>(12, simulate, meta);
  EXPECT_EQ(a, b);
}

}  // namespace
