// elide::condition_variable: Mesa wait/notify over elide::mutex, exercised
// under forced interrupt aborts across hardware, hybrid and lock backends,
// plus the wait-contract errors (inside an atomic section, without the
// mutex). A TSXLAB_SLOW-gated sweep widens the seed coverage.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/runtime.h"
#include "elide/elide.h"

namespace {

using namespace tsx;
using core::Backend;
using core::RunConfig;
using core::TxCtx;
using core::TxRuntime;
using sim::Addr;
using sim::Word;

// Interrupts ON with a short mean: speculative sections (and, on the lock
// backends, the executor's atomic blocks) keep taking asynchronous aborts,
// so the cv protocol must survive constant retry/fallback churn.
RunConfig make_cfg(Backend b, uint32_t threads, uint64_t machine_seed = 42) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.seed = machine_seed;
  cfg.machine.interrupts_enabled = true;
  cfg.machine.interrupt_mean_cycles = 5000;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

// Classic bounded mailbox: producers add tokens under the mutex and notify;
// consumers wait on "count > 0". Conservation is exact when every wakeup
// re-checks the predicate (Mesa semantics).
void run_mailbox(Backend backend, uint32_t threads, uint64_t machine_seed,
                 int tokens_per_producer) {
  TxRuntime rt(make_cfg(backend, threads, machine_seed));
  Addr count = rt.heap().host_alloc(8, 64);
  Addr consumed = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "mailbox");
  elide::condition_variable cv(rt, "mailbox-cv");
  const uint32_t producers = threads / 2;
  const uint32_t consumers = threads - producers;
  const int total = tokens_per_producer * static_cast<int>(producers);
  // Tokens are divided among consumers; the remainder goes to consumer 0.
  auto quota = [&](uint32_t consumer_idx) {
    int q = total / static_cast<int>(consumers);
    if (consumer_idx == 0) q += total % static_cast<int>(consumers);
    return q;
  };

  rt.run([&](TxCtx& ctx) {
    if (ctx.id() < producers) {
      for (int i = 0; i < tokens_per_producer; ++i) {
        mu.lock(ctx);
        ctx.store(count, ctx.load(count) + 1);
        cv.notify_one(ctx);
        mu.unlock(ctx);
        ctx.compute(30);
      }
    } else {
      int want = quota(ctx.id() - producers);
      for (int i = 0; i < want; ++i) {
        mu.lock(ctx);
        cv.wait(ctx, mu, [&] { return ctx.load(count) != 0; });
        ctx.store(count, ctx.load(count) - 1);
        ctx.store(consumed, ctx.load(consumed) + 1);
        mu.unlock(ctx);
      }
    }
  });
  EXPECT_EQ(rt.machine().peek(count), 0u) << core::backend_name(backend);
  EXPECT_EQ(rt.machine().peek(consumed), static_cast<Word>(total))
      << core::backend_name(backend);
}

class ElideCvBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ElideCvBackends, MailboxConservesTokens) {
  run_mailbox(GetParam(), 2, 42, 40);
}

TEST_P(ElideCvBackends, MailboxManyThreads) {
  run_mailbox(GetParam(), 4, 7, 25);
}

INSTANTIATE_TEST_SUITE_P(ForcedAborts, ElideCvBackends,
                         ::testing::Values(Backend::kRtm, Backend::kHybrid,
                                           Backend::kLock),
                         [](const auto& suite_info) {
                           return std::string(core::backend_name(suite_info.param));
                         });

TEST(ElideCv, NotifyAllWakesEveryWaiter) {
  TxRuntime rt(make_cfg(Backend::kRtm, 4));
  Addr flag = rt.heap().host_alloc(8, 64);
  Addr woke = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "gate");
  elide::condition_variable cv(rt, "gate-cv");
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      // Give the waiters time to register, then open the gate once.
      ctx.compute(20000);
      mu.lock(ctx);
      ctx.store(flag, 1);
      cv.notify_all(ctx);
      mu.unlock(ctx);
    } else {
      mu.lock(ctx);
      cv.wait(ctx, mu, [&] { return ctx.load(flag) != 0; });
      ctx.store(woke, ctx.load(woke) + 1);
      mu.unlock(ctx);
    }
  });
  EXPECT_EQ(rt.machine().peek(woke), 3u);
}

TEST(ElideCv, NotifyFromElidedSectionWakesWaiter) {
  // notify_* must be callable from inside a speculative section: the
  // sequence bump then rides the section's commit.
  TxRuntime rt(make_cfg(Backend::kRtm, 2));
  Addr flag = rt.heap().host_alloc(8, 64);
  elide::mutex mu(rt, "gate");
  elide::condition_variable cv(rt, "gate-cv");
  rt.run([&](TxCtx& ctx) {
    if (ctx.id() == 0) {
      ctx.compute(10000);
      mu.critical_section(ctx, [&] {
        ctx.store(flag, 1);
        cv.notify_one(ctx);
      });
    } else {
      mu.lock(ctx);
      cv.wait(ctx, mu, [&] { return ctx.load(flag) != 0; });
      mu.unlock(ctx);
    }
  });
  EXPECT_EQ(rt.machine().peek(flag), 1u);
}

TEST(ElideCv, WaitInsideAtomicSectionThrows) {
  TxRuntime rt(make_cfg(Backend::kLock, 1));
  elide::mutex mu(rt, "m");
  elide::condition_variable cv(rt, "cv");
  EXPECT_THROW(rt.run([&](TxCtx& ctx) {
                 mu.lock(ctx);
                 ctx.transaction([&] { cv.wait(ctx, mu); });
               }),
               std::logic_error);
}

TEST(ElideCv, WaitWithoutHoldingMutexThrows) {
  TxRuntime rt(make_cfg(Backend::kLock, 1));
  elide::mutex mu(rt, "m");
  elide::condition_variable cv(rt, "cv");
  EXPECT_THROW(rt.run([&](TxCtx& ctx) { cv.wait(ctx, mu); }),
               std::logic_error);
}

// Deep seed sweep across backends, gated behind TSXLAB_SLOW=1 (registered
// as the elide_cv_seed_sweep ctest with the `slow` label).
TEST(ElideCvSlowSweep, MailboxAcrossSeeds) {
  const char* slow = std::getenv("TSXLAB_SLOW");
  if (!slow || std::string(slow) != "1") {
    GTEST_SKIP() << "set TSXLAB_SLOW=1 for the deep cv seed sweep";
  }
  for (Backend b : {Backend::kRtm, Backend::kHybrid, Backend::kLock}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      run_mailbox(b, 2, seed, 30);
      run_mailbox(b, 4, seed * 2654435761ull, 15);
    }
  }
}

}  // namespace
