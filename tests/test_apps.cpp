// Integration tests: every STAMP-lite application must produce a valid
// final state under every backend and thread count (small inputs).

#include <gtest/gtest.h>

#include "stamp/apps/bayes.h"
#include "stamp/apps/genome.h"
#include "stamp/apps/intruder.h"
#include "stamp/apps/kmeans.h"
#include "stamp/apps/labyrinth.h"
#include "stamp/apps/ssca2.h"
#include "stamp/apps/vacation.h"
#include "stamp/apps/yada.h"

namespace {

using namespace tsx;
using namespace tsx::stamp;
using core::Backend;

core::RunConfig cfg_for(Backend b, uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;  // keep tests deterministic-fast
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

using Param = std::tuple<Backend, uint32_t>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(core::backend_name(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param)) + "t";
}

auto backend_thread_matrix() {
  return ::testing::Combine(
      ::testing::Values(Backend::kSeq, Backend::kLock, Backend::kRtm,
                        Backend::kTinyStm, Backend::kTl2),
      ::testing::Values(1u, 2u, 4u));
}

bool skip_multithreaded_seq(Backend b, uint32_t threads) {
  // SEQ provides no synchronization: only its 1-thread configuration is a
  // meaningful (and safe) data point.
  return b == Backend::kSeq && threads > 1;
}

class KmeansApp : public ::testing::TestWithParam<Param> {};
TEST_P(KmeansApp, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  KmeansConfig app;
  app.points = 256;
  app.dims = 4;
  app.clusters = 8;
  app.iterations = 2;
  auto res = run_kmeans(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, KmeansApp, backend_thread_matrix(), param_name);

class Ssca2App : public ::testing::TestWithParam<Param> {};
TEST_P(Ssca2App, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  Ssca2Config app;
  app.vertices = 256;
  app.edges = 1024;
  app.max_degree = 16;
  auto res = run_ssca2(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, Ssca2App, backend_thread_matrix(), param_name);

class LabyrinthApp : public ::testing::TestWithParam<Param> {};
TEST_P(LabyrinthApp, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  LabyrinthConfig app;
  app.width = 12;
  app.height = 12;
  app.depth = 2;
  app.paths = 6;
  auto res = run_labyrinth(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, LabyrinthApp, backend_thread_matrix(),
                         param_name);

class IntruderApp : public ::testing::TestWithParam<Param> {};
TEST_P(IntruderApp, BaseValid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  IntruderConfig app;
  app.flows = 48;
  app.max_fragments = 6;
  auto res = run_intruder(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
TEST_P(IntruderApp, OptimizedValid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  IntruderConfig app;
  app.flows = 48;
  app.max_fragments = 6;
  app.optimized = true;
  auto res = run_intruder(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, IntruderApp, backend_thread_matrix(),
                         param_name);

class VacationApp : public ::testing::TestWithParam<Param> {};
TEST_P(VacationApp, BaseValid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  VacationConfig app;
  app.relations = 64;
  app.customers = 32;
  app.sessions_per_thread = 60;
  auto res = run_vacation(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
TEST_P(VacationApp, OptimizedValid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  VacationConfig app;
  app.relations = 64;
  app.customers = 32;
  app.sessions_per_thread = 60;
  app.optimized = true;
  auto res = run_vacation(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, VacationApp, backend_thread_matrix(),
                         param_name);

class GenomeApp : public ::testing::TestWithParam<Param> {};
TEST_P(GenomeApp, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  GenomeConfig app;
  app.gene_length = 256;
  app.duplication_factor = 3;
  app.hash_buckets = 64;
  auto res = run_genome(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, GenomeApp, backend_thread_matrix(), param_name);

class YadaApp : public ::testing::TestWithParam<Param> {};
TEST_P(YadaApp, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  YadaConfig app;
  app.elements = 256;
  app.max_refinements = 150;
  auto res = run_yada(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, YadaApp, backend_thread_matrix(), param_name);

class BayesApp : public ::testing::TestWithParam<Param> {};
TEST_P(BayesApp, Valid) {
  auto [b, t] = GetParam();
  if (skip_multithreaded_seq(b, t)) GTEST_SKIP();
  BayesConfig app;
  app.variables = 10;
  app.stats_words = 64;
  app.candidates = 40;
  auto res = run_bayes(cfg_for(b, t), app);
  EXPECT_TRUE(res.valid) << res.validation_message;
}
INSTANTIATE_TEST_SUITE_P(Matrix, BayesApp, backend_thread_matrix(), param_name);

// Behavioural checks tied to the paper's observations.

TEST(AppBehaviour, LabyrinthRtmAlwaysFallsBack) {
  // The grid copy exceeds the 512-line write capacity: every routing
  // transaction must end up on the serial fallback (paper §IV labyrinth).
  LabyrinthConfig app;  // default 48x48x2 = 4608 words = 576 lines
  auto res = run_labyrinth(cfg_for(Backend::kRtm, 2), app);
  ASSERT_TRUE(res.valid) << res.validation_message;
  EXPECT_EQ(res.report.site_stats(1).commits, 0u);
  EXPECT_GT(res.report.site_stats(1).fallbacks, 0u);
  EXPECT_GT(res.report.rtm.aborts_by_class[size_t(
                htm::AbortClass::kWriteCapacity)],
            0u);
}

TEST(AppBehaviour, IntruderOptimizationShortensTransactions) {
  IntruderConfig base;
  base.flows = 128;
  base.max_fragments = 16;
  IntruderConfig opt = base;
  opt.optimized = true;
  auto rb = run_intruder(cfg_for(Backend::kRtm, 4), base);
  auto ro = run_intruder(cfg_for(Backend::kRtm, 4), opt);
  ASSERT_TRUE(rb.valid) << rb.validation_message;
  ASSERT_TRUE(ro.valid) << ro.validation_message;
  auto base_site = rb.report.site_stats(kIntruderSiteReassembly);
  auto opt_site = ro.report.site_stats(kIntruderSiteReassembly);
  double base_cyc = double(base_site.cycles_committed) /
                    std::max<uint64_t>(base_site.commits, 1);
  double opt_cyc = double(opt_site.cycles_committed) /
                   std::max<uint64_t>(opt_site.commits, 1);
  EXPECT_LT(opt_cyc, base_cyc);  // shorter reassembly transactions
  EXPECT_LT(ro.report.wall_cycles, rb.report.wall_cycles);
}

TEST(AppBehaviour, VacationPrefaultRemovesPageFaultAborts) {
  VacationConfig base;
  base.relations = 128;
  base.customers = 64;
  base.sessions_per_thread = 150;
  VacationConfig opt = base;
  opt.optimized = true;
  auto rb = run_vacation(cfg_for(Backend::kRtm, 2), base);
  auto ro = run_vacation(cfg_for(Backend::kRtm, 2), opt);
  ASSERT_TRUE(rb.valid) << rb.validation_message;
  ASSERT_TRUE(ro.valid) << ro.validation_message;
  using sim::AbortReason;
  uint64_t base_pf =
      rb.report.rtm.aborts_by_reason[size_t(AbortReason::kPageFault)];
  uint64_t opt_pf =
      ro.report.rtm.aborts_by_reason[size_t(AbortReason::kPageFault)];
  EXPECT_GT(base_pf, 0u);   // the baseline faults inside transactions
  EXPECT_EQ(opt_pf, 0u);    // the pre-faulting allocator eliminates them
  EXPECT_LT(ro.report.rtm.abort_rate(), rb.report.rtm.abort_rate());
}

}  // namespace
