#include <gtest/gtest.h>

#include "mem/layout.h"
#include "mem/sim_heap.h"
#include "sim/machine.h"

namespace {

using namespace tsx::sim;
using namespace tsx::mem;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

TEST(SimHeap, AllocReturnsDistinctAlignedBlocks) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(24);
    Addr b = heap.alloc(24);
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_GE(a, kHeapBase);
    Addr c = heap.alloc(100, 64);
    EXPECT_EQ(c % 64, 0u);
  });
  m.run();
  EXPECT_EQ(heap.stats().allocs, 3u);
}

TEST(SimHeap, FreeEnablesReuse) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.free(a);
    Addr b = heap.alloc(64);
    EXPECT_EQ(a, b);  // same size class, LIFO reuse
  });
  m.run();
}

TEST(SimHeap, FreeOfUnknownBlockThrows) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    EXPECT_THROW(heap.free(kHeapBase + 0x9999000), std::invalid_argument);
  });
  m.run();
}

TEST(SimHeap, LazyPagesFaultOnFirstTouch) {
  Machine m(quiet(), 1);
  SimHeap heap(m);  // prefault off
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    uint64_t faults_before = m.stats().mem.page_faults;
    m.store(a, 1);
    EXPECT_GT(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, PrefaultOnRefillAvoidsFaults) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.prefault_on_refill = true;
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    uint64_t faults_before = m.stats().mem.page_faults;
    m.store(a, 1);
    EXPECT_EQ(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, HostAllocIsPrefaulted) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  Addr a = heap.host_alloc(4096);
  m.set_thread(0, [&] {
    uint64_t faults_before = m.stats().mem.page_faults;
    m.load(a);
    EXPECT_EQ(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, TxScopeAbortUndoesAllocations) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    heap.tx_scope_begin(0);
    Addr a = heap.alloc(64);
    heap.tx_scope_abort(0);
    // The block was released: allocating again reuses it.
    Addr b = heap.alloc(64);
    EXPECT_EQ(a, b);
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 64u);
}

TEST(SimHeap, TxScopeDefersFreesUntilCommit) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.tx_scope_begin(0);
    heap.free(a);
    // Still allocated (deferred): reuse must NOT return it.
    Addr b = heap.alloc(64);
    EXPECT_NE(a, b);
    heap.tx_scope_commit(0);
    // Now actually freed.
    Addr c = heap.alloc(64);
    EXPECT_EQ(c, a);
  });
  m.run();
}

TEST(SimHeap, TxScopeAbortDropsDeferredFrees) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.tx_scope_begin(0);
    heap.free(a);
    heap.tx_scope_abort(0);
    // The free never happened; block still owned, so freeing works again.
    heap.tx_scope_begin(0);
    heap.free(a);
    heap.tx_scope_commit(0);
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SimHeap, SizeClassRounding) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(100);
    EXPECT_EQ(heap.block_size(a), 128u);
    Addr b = heap.alloc(1);
    EXPECT_EQ(heap.block_size(b), 8u);
  });
  m.run();
}

TEST(SimHeap, PerThreadPoolsDontInterleave) {
  Machine m(quiet(), 2);
  SimHeap heap(m);
  Addr a0 = 0, a1 = 0;
  m.set_thread(0, [&] { a0 = heap.alloc(64); });
  m.set_thread(1, [&] { a1 = heap.alloc(64); });
  m.run();
  // Different chunks entirely.
  EXPECT_GE(std::max(a0, a1) - std::min(a0, a1), 64u * 1024u);
}

}  // namespace
