#include <gtest/gtest.h>

#include "mem/layout.h"
#include "mem/sim_heap.h"
#include "sim/machine.h"

namespace {

using namespace tsx::sim;
using namespace tsx::mem;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

TEST(SimHeap, AllocReturnsDistinctAlignedBlocks) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(24);
    Addr b = heap.alloc(24);
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_GE(a, kHeapBase);
    Addr c = heap.alloc(100, 64);
    EXPECT_EQ(c % 64, 0u);
  });
  m.run();
  EXPECT_EQ(heap.stats().allocs, 3u);
}

TEST(SimHeap, FreeEnablesReuse) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.free(a);
    Addr b = heap.alloc(64);
    EXPECT_EQ(a, b);  // same size class, LIFO reuse
  });
  m.run();
}

TEST(SimHeap, FreeOfUnknownBlockThrows) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    EXPECT_THROW(heap.free(kHeapBase + 0x9999000), std::invalid_argument);
  });
  m.run();
}

TEST(SimHeap, LazyPagesFaultOnFirstTouch) {
  Machine m(quiet(), 1);
  SimHeap heap(m);  // prefault off
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    uint64_t faults_before = m.stats().mem.page_faults;
    m.store(a, 1);
    EXPECT_GT(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, PrefaultOnRefillAvoidsFaults) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.prefault_on_refill = true;
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    uint64_t faults_before = m.stats().mem.page_faults;
    m.store(a, 1);
    EXPECT_EQ(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, HostAllocIsPrefaulted) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  Addr a = heap.host_alloc(4096);
  m.set_thread(0, [&] {
    uint64_t faults_before = m.stats().mem.page_faults;
    m.load(a);
    EXPECT_EQ(m.stats().mem.page_faults, faults_before);
  });
  m.run();
}

TEST(SimHeap, TxScopeAbortUndoesAllocations) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    heap.tx_scope_begin(0);
    Addr a = heap.alloc(64);
    heap.tx_scope_abort(0);
    // The block was released: allocating again reuses it.
    Addr b = heap.alloc(64);
    EXPECT_EQ(a, b);
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 64u);
}

TEST(SimHeap, TxScopeDefersFreesUntilCommit) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.tx_scope_begin(0);
    heap.free(a);
    // Still allocated (deferred): reuse must NOT return it.
    Addr b = heap.alloc(64);
    EXPECT_NE(a, b);
    heap.tx_scope_commit(0);
    // Now actually freed.
    Addr c = heap.alloc(64);
    EXPECT_EQ(c, a);
  });
  m.run();
}

TEST(SimHeap, TxScopeAbortDropsDeferredFrees) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.tx_scope_begin(0);
    heap.free(a);
    heap.tx_scope_abort(0);
    // The free never happened; block still owned, so freeing works again.
    heap.tx_scope_begin(0);
    heap.free(a);
    heap.tx_scope_commit(0);
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SimHeap, SizeClassRounding) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(100);
    EXPECT_EQ(heap.block_size(a), 128u);
    Addr b = heap.alloc(1);
    EXPECT_EQ(heap.block_size(b), 8u);
  });
  m.run();
}

TEST(SimHeap, PerThreadPoolsDontInterleave) {
  Machine m(quiet(), 2);
  SimHeap heap(m);
  Addr a0 = 0, a1 = 0;
  m.set_thread(0, [&] { a0 = heap.alloc(64); });
  m.set_thread(1, [&] { a1 = heap.alloc(64); });
  m.run();
  // Different chunks entirely.
  EXPECT_GE(std::max(a0, a1) - std::min(a0, a1), 64u * 1024u);
}

// Regression: a refill's base must be rounded up to the requested alignment.
// After a smaller-class refill leaves the global bump cursor on a 64 KiB
// boundary, a class larger than chunk_bytes (here align = 128 KiB) used to
// carve at that 64 KiB-aligned cursor and hand out a misaligned block.
TEST(SimHeap, RefillAlignsBaseForClassLargerThanChunk) {
  Machine m(quiet(), 1);
  SimHeap heap(m);  // chunk_bytes = 64 KiB
  m.set_thread(0, [&] {
    heap.alloc(64);  // heap churn: bump cursor now base + 64 KiB
    Addr a = heap.alloc(8, 128 * 1024);
    EXPECT_EQ(a % (128u * 1024u), 0u);
    EXPECT_EQ(heap.block_size(a), 128u * 1024u);
  });
  m.run();
}

TEST(SimHeap, RefillAlignsBaseAfterSmallerChunkRefills) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.chunk_bytes = 4096;
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    heap.alloc(64);  // 4 KiB refill: cursor no longer 8 KiB-aligned
    Addr a = heap.alloc(100, 8192);
    EXPECT_EQ(a % 8192u, 0u);
  });
  m.run();
}

// Regression: a double free() of one address inside an open tx scope is
// detected at the second free() call — not later at tx_scope_commit, by
// which point the error has escaped the transaction — and charges no
// simulated cycles on the error path.
TEST(SimHeap, DoubleFreeInScopeThrowsAtFreeTime) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.tx_scope_begin(0);
    heap.free(a);  // deferred to commit
    Cycles before = m.now();
    EXPECT_THROW(heap.free(a), std::invalid_argument);
    EXPECT_EQ(m.now(), before);  // free_cycles not charged before the throw
    heap.tx_scope_commit(0);  // the one deferred free still commits cleanly
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  EXPECT_EQ(heap.stats().frees, 1u);
}

TEST(SimHeap, InvalidFreeChargesNoCycles) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Cycles before = m.now();
    EXPECT_THROW(heap.free(kHeapBase + 0x9999000), std::invalid_argument);
    EXPECT_EQ(m.now(), before);
  });
  m.run();
}

// Conservation: an aborted scope leaves bytes_live exactly as it found it
// (allocations undone, deferred frees dropped); a committed scope releases
// exactly the deferred set.
TEST(SimHeap, TxScopeAbortConservesBytesLive) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr x = heap.alloc(128);
    uint64_t before = heap.stats().bytes_live;
    heap.tx_scope_begin(0);
    heap.alloc(64);
    heap.alloc(256);
    heap.free(x);
    heap.tx_scope_abort(0);
    EXPECT_EQ(heap.stats().bytes_live, before);
    EXPECT_EQ(heap.block_size(x), 128u);  // the deferred free never happened
  });
  m.run();
}

TEST(SimHeap, TxScopeCommitReleasesExactlyDeferredSet) {
  Machine m(quiet(), 1);
  SimHeap heap(m);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    Addr b = heap.alloc(512);
    uint64_t before = heap.stats().bytes_live;
    heap.tx_scope_begin(0);
    heap.free(a);
    Addr c = heap.alloc(32);
    heap.tx_scope_commit(0);
    // -64 (deferred free of a) +32 (allocation kept): nothing else moved.
    EXPECT_EQ(heap.stats().bytes_live, before - 64 + 32);
    EXPECT_EQ(heap.block_size(a), 0u);
    EXPECT_EQ(heap.block_size(b), 512u);
    EXPECT_EQ(heap.block_size(c), 32u);
  });
  m.run();
}

// ---- Placement policies ----

TEST(SimHeapPolicy, PolicyNamesAreStable) {
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kSizeClass),
               "size-class");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kBumpPerThread), "bump");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kPadded), "padded");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kColored), "colored");
}

TEST(SimHeapPolicy, PaddedBlocksAreLineExclusive) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.policy = PlacementPolicy::kPadded;
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(8);
    Addr b = heap.alloc(8);
    EXPECT_EQ(heap.block_size(a), 64u);  // sub-line class rounded to a line
    EXPECT_EQ(a % 64u, 0u);
    EXPECT_NE(a / 64, b / 64);  // never share a cache line
    EXPECT_EQ(heap.stats().bytes_padding, 2u * (64 - 8));
  });
  m.run();
}

TEST(SimHeapPolicy, BumpNeverReusesFreedBlocks) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.policy = PlacementPolicy::kBumpPerThread;
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    Addr a = heap.alloc(64);
    heap.free(a);
    Addr b = heap.alloc(64);
    EXPECT_NE(a, b);  // fresh address space, not LIFO reuse
    EXPECT_GT(b, a);  // sequential carving
  });
  m.run();
  EXPECT_EQ(heap.stats().bytes_live, 64u);
  EXPECT_EQ(heap.stats().frees, 1u);
}

TEST(SimHeapPolicy, ColoredPackConfinesPlacementsToFirstSets) {
  Machine m(quiet(), 1);  // default L1: 32 KiB / 8-way = 64 sets
  HeapConfig cfg;
  cfg.policy = PlacementPolicy::kColored;
  cfg.color_sets = 2;
  SimHeap heap(m, cfg);
  const uint32_t sets = m.l1_geometry().sets();
  ASSERT_EQ(sets, 64u);
  m.set_thread(0, [&] {
    for (int i = 0; i < 100; ++i) {
      Addr a = heap.alloc(48);
      EXPECT_LT((a / 64) % sets, 2u);
    }
  });
  m.run();
  const auto& sa = heap.stats().set_allocs;
  ASSERT_EQ(sa.size(), sets);
  EXPECT_EQ(sa[0] + sa[1], 100u);
  for (size_t s = 2; s < sa.size(); ++s) EXPECT_EQ(sa[s], 0u);
}

TEST(SimHeapPolicy, ColoredSpreadUsesManySets) {
  Machine m(quiet(), 1);
  HeapConfig cfg;
  cfg.policy = PlacementPolicy::kColored;  // color_sets = 0: spread
  SimHeap heap(m, cfg);
  m.set_thread(0, [&] {
    for (int i = 0; i < 512; ++i) heap.alloc(48);
  });
  m.run();
  size_t used = 0;
  for (uint64_t v : heap.stats().set_allocs) used += v != 0;
  EXPECT_GE(used, 32u);  // >= half of the 64 sets see placements
}

TEST(SimHeapPolicy, SetHistogramMatchesAllocCount) {
  Machine m(quiet(), 1);
  SimHeap heap(m);  // default size-class policy also feeds the histogram
  m.set_thread(0, [&] {
    for (int i = 0; i < 37; ++i) heap.alloc(100);
  });
  m.run();
  uint64_t placed = 0;
  for (uint64_t v : heap.stats().set_allocs) placed += v;
  EXPECT_EQ(placed, heap.stats().allocs);
}

}  // namespace
