#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/fiber.h"

namespace {

using tsx::sim::Fiber;

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f(64 * 1024, [&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldAndResumeInterleave) {
  std::vector<int> order;
  Fiber* self = nullptr;
  Fiber f(64 * 1024, [&] {
    order.push_back(1);
    self->yield();
    order.push_back(3);
    self->yield();
    order.push_back(5);
  });
  self = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, TwoFibersPingPong) {
  std::vector<int> order;
  Fiber* fa = nullptr;
  Fiber* fb = nullptr;
  Fiber a(64 * 1024, [&] {
    order.push_back(10);
    fa->yield();
    order.push_back(12);
  });
  Fiber b(64 * 1024, [&] {
    order.push_back(11);
    fb->yield();
    order.push_back(13);
  });
  fa = &a;
  fb = &b;
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 12, 13}));
}

TEST(Fiber, ExceptionInsideFiberIsCapturedNotPropagated) {
  Fiber f(64 * 1024, [] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(f.resume());
  EXPECT_TRUE(f.finished());
  ASSERT_TRUE(f.error() != nullptr);
  EXPECT_THROW(std::rethrow_exception(f.error()), std::runtime_error);
}

TEST(Fiber, ExceptionCaughtWithinFiberIsFine) {
  bool caught = false;
  Fiber f(64 * 1024, [&] {
    try {
      throw std::runtime_error("inner");
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  f.resume();
  EXPECT_TRUE(caught);
  EXPECT_EQ(f.error(), nullptr);
}

TEST(Fiber, ResumeAfterFinishThrows) {
  Fiber f(64 * 1024, [] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, DestroySuspendedFiberIsSafe) {
  Fiber* self = nullptr;
  auto f = std::make_unique<Fiber>(64 * 1024, [&] {
    self->yield();  // never resumed again
  });
  self = f.get();
  f->resume();
  EXPECT_FALSE(f->finished());
  f.reset();  // must not crash
}

}  // namespace
