#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <sstream>

#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"
#include "util/warn_once.h"

namespace {

using tsx::util::Flags;
using tsx::util::Table;

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--threads=4", "--name=abc"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 1), 4);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--threads", "8"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 1), 8);
}

TEST(Flags, BareFlagIsBoolean) {
  const char* argv[] = {"prog", "--csv"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("csv", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("csv", false));
}

TEST(Flags, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--threads=four"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_THROW(f.get_int("threads", 1), std::invalid_argument);
}

TEST(Flags, TracksUnconsumed) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.get_int("used", 0);
  auto un = f.unconsumed();
  ASSERT_EQ(un.size(), 1u);
  EXPECT_EQ(un[0], "typo");
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "alpha", "--k=1", "beta"};
  Flags f(4, const_cast<char**>(argv));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

// Regression: "fig07_contention --csv out.txt" used to attach "out.txt" as
// the value of --csv and throw "expects a boolean". A boolean flag must
// never swallow a following non-flag token.
TEST(Flags, BareBooleanDoesNotSwallowFollowingToken) {
  const char* argv[] = {"prog", "--csv", "out.txt"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("csv", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "out.txt");
}

// Regression: "--fast 7000" used to silently consume 7000 as the value of
// --fast. The token must stay positional (drivers then reject it).
TEST(Flags, BareBooleanLeavesNumberPositional) {
  const char* argv[] = {"prog", "--fast", "7000"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("fast", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "7000");
}

TEST(Flags, BooleanExplicitValueRequiresEqualsForm) {
  const char* argv[] = {"prog", "--csv=false", "--fast=no"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_FALSE(f.get_bool("csv", true));
  EXPECT_FALSE(f.get_bool("fast", true));
}

TEST(Flags, IntConsumesOnlyParsableToken) {
  const char* argv[] = {"prog", "--reps", "8", "--threads", "x"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("reps", 1), 8);
  EXPECT_THROW(f.get_int("threads", 1), std::invalid_argument);
}

TEST(Flags, StringConsumesFollowingToken) {
  const char* argv[] = {"prog", "--manifest", "run.json"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_string("manifest", ""), "run.json");
  EXPECT_TRUE(f.positional().empty());
}

// Regression: a flag given twice used to silently last-win via map
// overwrite; a typo'd sweep script must fail loudly instead.
TEST(Flags, DuplicateFlagThrows) {
  const char* argv[] = {"prog", "--reps", "2", "--reps", "8"};
  EXPECT_THROW(Flags(5, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Flags, DuplicateFlagThrowsAcrossForms) {
  const char* argv[] = {"prog", "--csv", "--csv=false"};
  EXPECT_THROW(Flags(3, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

// Regression: cells containing a comma or quote used to be emitted raw,
// corrupting the CSV for post-processing. RFC-4180 quoting, with untouched
// output for cells that need none.
TEST(Table, CsvQuotesCommaCells) {
  Table t({"name", "note"});
  t.add_row({"a", "x, y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,note\na,\"x, y\"\n");
}

TEST(Table, CsvQuotesQuoteAndNewlineCells) {
  Table t({"say \"hi\"", "v"});
  t.add_row({"line1\nline2", "plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\",v\n\"line1\nline2\",plain\n");
}

TEST(Table, CsvEscapePassthroughWhenClean) {
  EXPECT_EQ(Table::csv_escape("1.23"), "1.23");
  EXPECT_EQ(Table::csv_escape("RTM-16K speedup"), "RTM-16K speedup");
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::nan(""), 2), "-");
}

TEST(Summary, MeanStdevGeomean) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(tsx::util::mean(xs), 2.5);
  EXPECT_NEAR(tsx::util::stdev(xs), 1.2909944, 1e-6);
  EXPECT_NEAR(tsx::util::geomean({1, 4}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(tsx::util::median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(tsx::util::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(tsx::util::minimum(xs), 1.0);
  EXPECT_DOUBLE_EQ(tsx::util::maximum(xs), 4.0);
}

TEST(Summary, EmptySampleThrows) {
  EXPECT_THROW(tsx::util::mean({}), std::invalid_argument);
}

TEST(Summary, GeomeanRejectsNonPositive) {
  EXPECT_THROW(tsx::util::geomean({1.0, 0.0}), std::invalid_argument);
}

TEST(WarnOnce, EmitsExactlyOncePerKey) {
  tsx::util::warn_once_reset_for_tests();
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  EXPECT_TRUE(tsx::util::warn_once("test:k1", "first warning"));
  EXPECT_FALSE(tsx::util::warn_once("test:k1", "first warning"));
  EXPECT_FALSE(tsx::util::warn_once("test:k1", "different text, same key"));
  EXPECT_TRUE(tsx::util::warn_once("test:k2", "second key"));
  std::cerr.rdbuf(old);
  // One line per distinct key — the once-per-run guarantee benches rely on
  // when a warning fires from inside sharded sweep cells.
  EXPECT_EQ(captured.str(), "first warning\nsecond key\n");
  EXPECT_TRUE(tsx::util::warned("test:k1"));
  EXPECT_TRUE(tsx::util::warned("test:k2"));
  EXPECT_FALSE(tsx::util::warned("test:k3"));
}

TEST(WarnOnce, ResetSeamForgetsKeys) {
  tsx::util::warn_once_reset_for_tests();
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  EXPECT_TRUE(tsx::util::warn_once("test:reset", "a"));
  size_t n = tsx::util::warn_once_reset_for_tests();
  EXPECT_GE(n, 1u);
  EXPECT_FALSE(tsx::util::warned("test:reset"));
  EXPECT_TRUE(tsx::util::warn_once("test:reset", "a"));
  std::cerr.rdbuf(old);
}

}  // namespace
