#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"

namespace {

using tsx::util::Flags;
using tsx::util::Table;

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--threads=4", "--name=abc"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 1), 4);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--threads", "8"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 1), 8);
}

TEST(Flags, BareFlagIsBoolean) {
  const char* argv[] = {"prog", "--csv"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("csv", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("threads", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("csv", false));
}

TEST(Flags, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--threads=four"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_THROW(f.get_int("threads", 1), std::invalid_argument);
}

TEST(Flags, TracksUnconsumed) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.get_int("used", 0);
  auto un = f.unconsumed();
  ASSERT_EQ(un.size(), 1u);
  EXPECT_EQ(un[0], "typo");
}

TEST(Flags, PositionalArguments) {
  const char* argv[] = {"prog", "alpha", "--k=1", "beta"};
  Flags f(4, const_cast<char**>(argv));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::nan(""), 2), "-");
}

TEST(Summary, MeanStdevGeomean) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(tsx::util::mean(xs), 2.5);
  EXPECT_NEAR(tsx::util::stdev(xs), 1.2909944, 1e-6);
  EXPECT_NEAR(tsx::util::geomean({1, 4}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(tsx::util::median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(tsx::util::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(tsx::util::minimum(xs), 1.0);
  EXPECT_DOUBLE_EQ(tsx::util::maximum(xs), 4.0);
}

TEST(Summary, EmptySampleThrows) {
  EXPECT_THROW(tsx::util::mean({}), std::invalid_argument);
}

TEST(Summary, GeomeanRejectsNonPositive) {
  EXPECT_THROW(tsx::util::geomean({1.0, 0.0}), std::invalid_argument);
}

}  // namespace
