#include <gtest/gtest.h>

#include "sim/machine.h"
#include "stm/tinystm.h"
#include "stm/tl2.h"

namespace {

using namespace tsx::sim;
using namespace tsx::stm;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

constexpr Addr kStmBase = 0x0001'0000'0000ull;
constexpr Addr kData = 0x2000;

StmConfig small_cfg() {
  StmConfig cfg;
  cfg.lock_table_entries = 1u << 12;  // keep init cheap in tests
  return cfg;
}

// Typed tests over both STM implementations.
template <typename T>
std::unique_ptr<StmSystem> make_stm(Machine& m, const StmConfig& cfg) {
  return std::make_unique<T>(m, kStmBase, cfg);
}

template <typename T>
class StmTest : public ::testing::Test {};

using StmImpls = ::testing::Types<TinyStm, Tl2>;
TYPED_TEST_SUITE(StmTest, StmImpls);

TYPED_TEST(StmTest, ReadYourOwnWrite) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  auto stm = make_stm<TypeParam>(m, small_cfg());
  stm->init();
  m.set_thread(0, [&] {
    m.poke(kData, 10);
    stm->tx_start(0);
    EXPECT_EQ(stm->tx_read(0, kData), 10u);
    stm->tx_write(0, kData, 20);
    EXPECT_EQ(stm->tx_read(0, kData), 20u);  // redo-log visibility
    // Not yet visible in memory (write-back design).
    EXPECT_EQ(m.peek(kData), 10u);
    stm->tx_commit(0);
    EXPECT_EQ(m.peek(kData), 20u);
  });
  m.run();
  EXPECT_EQ(stm->stats().commits, 1u);
}

TYPED_TEST(StmTest, AbortDiscardsWrites) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  auto stm = make_stm<TypeParam>(m, small_cfg());
  stm->init();
  m.set_thread(0, [&] {
    m.poke(kData, 1);
    stm->tx_start(0);
    stm->tx_write(0, kData, 99);
    stm->tx_abort_cleanup(0);
    EXPECT_EQ(m.peek(kData), 1u);
    EXPECT_FALSE(stm->tx_active(0));
    // Locks released: a new transaction can write the same word.
    stm->tx_start(0);
    stm->tx_write(0, kData, 5);
    stm->tx_commit(0);
    EXPECT_EQ(m.peek(kData), 5u);
  });
  m.run();
}

TYPED_TEST(StmTest, ExecutorCountsCorrectlyUnderContention) {
  Machine m(quiet(), 4);
  m.prefault(kData, 4096);
  StmConfig cfg = small_cfg();
  Machine* mp = &m;
  auto stm = make_stm<TypeParam>(m, cfg);
  stm->init();
  StmExecutor exec(m, *stm, cfg);
  const int iters = 250;
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&, t] {
      for (int i = 0; i < iters; ++i) {
        exec.execute([&] {
          Word v = stm->tx_read(t, kData);
          mp->compute(25);
          stm->tx_write(t, kData, v + 1);
        });
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 4u * iters);
  EXPECT_EQ(stm->stats().commits, 4u * iters);
  EXPECT_GT(stm->stats().aborts(), 0u);
}

TYPED_TEST(StmTest, IsolationNoDirtyReads) {
  // Thread 0 writes two words in a tx with a pause in between; thread 1
  // reads both in its own txs — it must never observe a torn pair.
  Machine m(quiet(), 2);
  m.prefault(kData, 4096);
  StmConfig cfg = small_cfg();
  auto stm = make_stm<TypeParam>(m, cfg);
  stm->init();
  StmExecutor exec(m, *stm, cfg);
  bool torn = false;
  m.set_thread(0, [&] {
    for (int i = 1; i <= 50; ++i) {
      exec.execute([&] {
        stm->tx_write(0, kData, static_cast<Word>(i));
        m.compute(200);
        stm->tx_write(0, kData + 8, static_cast<Word>(i));
      });
    }
  });
  m.set_thread(1, [&] {
    for (int i = 0; i < 100; ++i) {
      Word a = 0, b = 0;
      exec.execute([&] {
        a = stm->tx_read(1, kData);
        m.compute(100);
        b = stm->tx_read(1, kData + 8);
      });
      if (a != b) torn = true;
    }
  });
  m.run();
  EXPECT_FALSE(torn);
}

TYPED_TEST(StmTest, FalseConflictsViaStripeAliasing) {
  // Two addresses exactly lock_table_entries*8 words apart share a stripe.
  Machine m(quiet(), 1);
  StmConfig cfg = small_cfg();
  auto stm = make_stm<TypeParam>(m, cfg);
  stm->init();
  Addr a1 = kData;
  Addr a2 = kData + (static_cast<Addr>(cfg.lock_table_entries) << cfg.stripe_shift);
  m.prefault(a1, 4096);
  m.prefault(a2, 4096);
  m.set_thread(0, [&] {
    stm->tx_start(0);
    stm->tx_write(0, a1, 7);
    // Same stripe, different address: owned by us, must not self-abort.
    stm->tx_write(0, a2, 8);
    EXPECT_EQ(stm->tx_read(0, a2), 8u);
    stm->tx_commit(0);
  });
  m.run();
  EXPECT_EQ(m.peek(a1), 7u);
  EXPECT_EQ(m.peek(a2), 8u);
}

TEST(TinyStm, TimestampExtensionHappens) {
  Machine m(quiet(), 2);
  m.prefault(kData, 4096);
  StmConfig cfg = small_cfg();
  TinyStm stm(m, kStmBase, cfg);
  stm.init();
  StmExecutor exec(m, stm, cfg);
  // Thread 1 commits writes to an unrelated word, advancing the clock;
  // thread 0 then reads a word whose version is newer than its snapshot.
  m.set_thread(0, [&] {
    exec.execute([&] {
      (void)stm.tx_read(0, kData);  // snapshot rv = 0-ish
      m.compute(4000);              // let thread 1 commit meanwhile
      (void)stm.tx_read(0, kData + 512);
    });
  });
  m.set_thread(1, [&] {
    m.compute(300);
    for (int i = 0; i < 4; ++i) {
      exec.execute([&] {
        Word v = stm.tx_read(1, kData + 512);
        stm.tx_write(1, kData + 512, v + 1);
      });
    }
  });
  m.run();
  EXPECT_GT(stm.stats().extensions + stm.stats().aborts(), 0u);
}

TEST(TinyStm, WriteAfterReadDetectsInterveningCommit) {
  // T0 reads X; T1 commits X+1; T0 then writes X -> must abort/extend, and
  // the final value must reflect both increments.
  Machine m(quiet(), 2);
  m.prefault(kData, 4096);
  StmConfig cfg = small_cfg();
  TinyStm stm(m, kStmBase, cfg);
  stm.init();
  StmExecutor exec(m, stm, cfg);
  m.set_thread(0, [&] {
    exec.execute([&] {
      Word v = stm.tx_read(0, kData);
      m.compute(3000);  // T1 commits in this window
      stm.tx_write(0, kData, v + 1);
    });
  });
  m.set_thread(1, [&] {
    m.compute(200);
    exec.execute([&] {
      Word v = stm.tx_read(1, kData);
      stm.tx_write(1, kData, v + 1);
    });
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 2u);
}

TEST(Tl2, CommitTimeLockingLeavesStripesCleanOnAbort) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  StmConfig cfg = small_cfg();
  Tl2 stm(m, kStmBase, cfg);
  stm.init();
  m.set_thread(0, [&] {
    stm.tx_start(0);
    stm.tx_write(0, kData, 42);
    stm.tx_abort_cleanup(0);  // nothing was locked yet (commit-time locking)
    stm.tx_start(0);
    stm.tx_write(0, kData, 43);
    stm.tx_commit(0);
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 43u);
}

TEST(StmStats, AbortCauseNames) {
  EXPECT_STREQ(stm_abort_cause_name(StmAbortCause::kReadLocked), "read-locked");
  EXPECT_STREQ(stm_abort_cause_name(StmAbortCause::kValidation), "validation");
}

}  // namespace
