#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sync/spinlock.h"

namespace {

using namespace tsx::sim;
using namespace tsx::sync;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

constexpr Addr kLock = 0x1000;
constexpr Addr kData = 0x2000;

TEST(TicketSpinLock, MutualExclusionUnderContention) {
  Machine m(quiet(), 4);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  TicketSpinLock lock(m, kLock);
  lock.init();
  const int iters = 200;
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&] {
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        Word v = m.load(kData);
        m.compute(20);  // widen the race window
        m.store(kData, v + 1);
        lock.unlock();
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 4u * iters);
}

TEST(TicketSpinLock, IsLockedReflectsState) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  TicketSpinLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    EXPECT_FALSE(lock.is_locked());
    lock.lock();
    EXPECT_TRUE(lock.is_locked());
    lock.unlock();
    EXPECT_FALSE(lock.is_locked());
  });
  m.run();
}

TEST(TicketSpinLock, FifoOrderAmongWaiters) {
  Machine m(quiet(), 3);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  TicketSpinLock lock(m, kLock);
  lock.init();
  std::vector<int> order;
  for (CtxId t = 0; t < 3; ++t) {
    m.set_thread(t, [&, t] {
      m.compute(1 + t * 10);  // staggered arrival
      lock.lock();
      order.push_back(static_cast<int>(t));
      m.compute(5000);  // hold while others queue up
      lock.unlock();
    });
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TasSpinLock, MutualExclusion) {
  Machine m(quiet(), 4);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  TasSpinLock lock(m, kLock);
  lock.init();
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&] {
      for (int i = 0; i < 100; ++i) {
        lock.lock();
        Word v = m.load(kData);
        m.compute(10);
        m.store(kData, v + 1);
        lock.unlock();
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 400u);
}

TEST(TasSpinLock, TryLock) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  TasSpinLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    EXPECT_TRUE(lock.try_lock());
    EXPECT_TRUE(lock.is_locked());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
  });
  m.run();
}

TEST(SerialRwLock, WriterExcludesWriter) {
  Machine m(quiet(), 2);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  SerialRwLock lock(m, kLock);
  lock.init();
  for (CtxId t = 0; t < 2; ++t) {
    m.set_thread(t, [&] {
      for (int i = 0; i < 100; ++i) {
        lock.write_lock();
        Word v = m.load(kData);
        m.compute(15);
        m.store(kData, v + 1);
        lock.write_unlock();
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 200u);
}

TEST(SerialRwLock, ReadCanLockTracksWriter) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  SerialRwLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    EXPECT_TRUE(lock.read_can_lock());
    lock.write_lock();
    EXPECT_FALSE(lock.read_can_lock());
    lock.write_unlock();
    EXPECT_TRUE(lock.read_can_lock());
  });
  m.run();
}

TEST(TicketSpinLock, TryLockNeverWaits) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  TicketSpinLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    EXPECT_TRUE(lock.try_lock());
    EXPECT_TRUE(lock.is_locked());
    EXPECT_FALSE(lock.try_lock());  // would have to queue: refuses
    lock.unlock();
    EXPECT_FALSE(lock.is_locked());
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
  });
  m.run();
}

TEST(TicketSpinLock, TryLockKeepsFifoWithBlockedWaiter) {
  Machine m(quiet(), 2);
  m.prefault(kLock, 4096);
  bool tried = false, try_result = true;
  TicketSpinLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    lock.lock();
    m.compute(5000);  // hold while thread 1 tries
    lock.unlock();
  });
  m.set_thread(1, [&] {
    m.compute(500);  // arrive while thread 0 holds the lock
    try_result = lock.try_lock();
    tried = true;
  });
  m.run();
  EXPECT_TRUE(tried);
  EXPECT_FALSE(try_result);
  // Failed try must not burn a ticket: next == serving after the run
  // (host-side peek; is_locked() is a simulated read and needs a fiber).
  EXPECT_EQ(m.peek(kLock), m.peek(kLock + kWordBytes));
}

TEST(SerialRwLock, TryReadLockFailsUnderWriter) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  SerialRwLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    EXPECT_TRUE(lock.try_read_lock());
    EXPECT_TRUE(lock.try_read_lock());  // readers share
    lock.read_unlock();
    lock.read_unlock();
    lock.write_lock();
    EXPECT_FALSE(lock.try_read_lock());
    lock.write_unlock();
    EXPECT_TRUE(lock.try_read_lock());
    lock.read_unlock();
  });
  m.run();
}

TEST(SerialRwLock, TryWriteLockFailsUnderReadersOrWriter) {
  Machine m(quiet(), 1);
  m.prefault(kLock, 4096);
  SerialRwLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    lock.read_lock();
    EXPECT_FALSE(lock.try_write_lock());      // reader present: backs out
    EXPECT_EQ(m.load(lock.writer_addr()), 0u);  // writer flag restored
    lock.read_unlock();
    EXPECT_TRUE(lock.try_write_lock());
    EXPECT_FALSE(lock.try_write_lock());      // writer excludes writer
    lock.write_unlock();
  });
  m.run();
}

TEST(SerialRwLock, TryWriteBackoutUnblocksLaterReaders) {
  Machine m(quiet(), 2);
  m.prefault(kLock, 4096);
  bool writer_tried = false, writer_got = true;
  SerialRwLock lock(m, kLock);
  lock.init();
  m.set_thread(0, [&] {
    lock.read_lock();
    m.compute(5000);
    lock.read_unlock();
  });
  m.set_thread(1, [&] {
    m.compute(500);  // arrive while the reader holds the lock
    writer_got = lock.try_write_lock();
    writer_tried = true;
    // The failed try must leave the lock usable for everyone.
    lock.read_lock();
    lock.read_unlock();
  });
  m.run();
  EXPECT_TRUE(writer_tried);
  EXPECT_FALSE(writer_got);
}

TEST(SerialRwLock, WriterWaitsForReaders) {
  Machine m(quiet(), 2);
  m.prefault(kLock, 4096);
  m.prefault(kData, 4096);
  SerialRwLock lock(m, kLock);
  lock.init();
  Cycles writer_acquired = 0, reader_released = 0;
  m.set_thread(0, [&] {
    lock.read_lock();
    m.compute(20'000);
    reader_released = m.now();
    lock.read_unlock();
  });
  m.set_thread(1, [&] {
    m.compute(2000);  // arrive well after the reader holds the lock
    lock.write_lock();
    writer_acquired = m.now();
    lock.write_unlock();
  });
  m.run();
  EXPECT_GT(writer_acquired, reader_released);
}

}  // namespace
