// src/obs MetricsHub: exact event->window folding, the live subscribe seam,
// the EWMA/CUSUM phase detector on synthetic and simulated series, the
// wasted-cycle flame profile (exact under ring wrap), and the OpenMetrics /
// collapsed-stack exporters' determinism.
//
// The window/total identity against PmuData lives in test_pmu.cpp next to
// the cycle-attribution identity it extends.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"

namespace {

using namespace tsx;
using core::Backend;
using sim::CtxId;
using sim::Cycles;
using sim::Word;

// ---- PhaseDetector on synthetic window series ----

obs::MetricsConfig det_cfg() {
  obs::MetricsConfig cfg;
  cfg.window_cycles = 1000;
  return cfg;  // detector defaults: warmup 3, alpha 0.25, k 0.5, h 4
}

// A window with the given commit count (activity channel) and optional
// abort traffic (abort-rate channel).
obs::MetricsWindow win(uint64_t commits, uint64_t aborts = 0,
                       Cycles committed_cycles = 0, Cycles wasted_cycles = 0) {
  obs::MetricsWindow w;
  w.hw_starts = commits + aborts;
  w.hw_commits = commits;
  w.hw_aborts = aborts;
  w.aborts_by_reason[static_cast<size_t>(sim::AbortReason::kConflict)] =
      aborts;
  w.aborts_by_misc[static_cast<size_t>(
      sim::misc_bucket_for(sim::AbortReason::kConflict))] = aborts;
  w.committed_cycles = committed_cycles;
  w.wasted_cycles = wasted_cycles;
  return w;
}

TEST(PhaseDetector, SteadySeriesNeverFires) {
  obs::PhaseDetector det(det_cfg());
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(det.update(win(100)).has_value()) << "window " << i;
  }
}

TEST(PhaseDetector, ActivityStepUpFiresWithinOneWindow) {
  obs::PhaseDetector det(det_cfg());
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(det.update(win(100)));
  // 4x throughput step: log1p jumps ~1.4 against a near-zero deviation
  // (floored at 0.08), so the CUSUM must cross on the very first shifted
  // window — the boundary is located to within one window.
  std::optional<obs::PhaseEvent> e = det.update(win(400));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->window, 20u);
  EXPECT_EQ(e->channel, obs::PhaseDetector::kChannelActivity);
  EXPECT_EQ(e->direction, 1);
  EXPECT_GT(e->score, 4.0);
}

TEST(PhaseDetector, ActivityStepDownFiresFalling) {
  obs::PhaseDetector det(det_cfg());
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(det.update(win(400)));
  std::optional<obs::PhaseEvent> e = det.update(win(50));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->window, 20u);
  EXPECT_EQ(e->channel, obs::PhaseDetector::kChannelActivity);
  EXPECT_EQ(e->direction, -1);
}

TEST(PhaseDetector, AbortRateStepFiresItsOwnChannel) {
  obs::PhaseDetector det(det_cfg());
  // Constant commits (activity flat) with a contention step: abort rate
  // jumps from ~0.09 to 0.5 while log-activity stays fixed.
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(det.update(win(100, 10)));
  std::optional<obs::PhaseEvent> e = det.update(win(100, 100));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->channel, obs::PhaseDetector::kChannelAbortRate);
  EXPECT_EQ(e->direction, 1);
}

TEST(PhaseDetector, WastedShareStepFiresItsOwnChannel) {
  obs::PhaseDetector det(det_cfg());
  // Fixed commit/abort counts; only the cycle mix moves, so neither the
  // activity nor the abort-rate channel sees a shift.
  for (int i = 0; i < 20; ++i) {
    ASSERT_FALSE(det.update(win(100, 10, 9000, 1000)));
  }
  std::optional<obs::PhaseEvent> e = det.update(win(100, 10, 4000, 6000));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->channel, obs::PhaseDetector::kChannelWastedShare);
  EXPECT_EQ(e->direction, 1);
}

TEST(PhaseDetector, RelearnsAfterBoundaryWithoutRefiring) {
  obs::PhaseDetector det(det_cfg());
  for (int i = 0; i < 20; ++i) ASSERT_FALSE(det.update(win(100)));
  ASSERT_TRUE(det.update(win(400)).has_value());
  // The new phase is steady at the shifted level: after the cooldown and
  // re-learn the detector must settle, not ring on the same boundary.
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(det.update(win(400)).has_value()) << "window " << i;
  }
  // And a genuine second boundary still fires.
  EXPECT_TRUE(det.update(win(100)).has_value());
}

TEST(PhaseDetector, WarmupWindowsNeverFire) {
  obs::MetricsConfig cfg = det_cfg();
  cfg.warmup_windows = 5;
  obs::PhaseDetector det(cfg);
  // A wild series inside the warmup: the detector is still learning and
  // must stay silent for warmup_windows + 1 windows (prime + warmup).
  for (uint32_t i = 0; i <= cfg.warmup_windows; ++i) {
    EXPECT_FALSE(det.update(win(i % 2 ? 500 : 10)).has_value());
  }
}

// ---- MetricsHub feeding, sealing and the subscribe seam ----

obs::MetricsConfig hub_cfg(Cycles window) {
  obs::MetricsConfig cfg;
  cfg.window_cycles = window;
  return cfg;
}

TEST(MetricsHub, EventsLandInTheWindowContainingTheirTimestamp) {
  obs::MetricsHub hub(hub_cfg(100));
  hub.hw_begin(0, 10);
  hub.hw_commit(0, 99);   // attempt [10, 99]: window 0, 89 committed cycles
  hub.hw_begin(0, 150);
  hub.hw_commit(0, 260);  // closes in window 2: cycles attributed there
  hub.hw_begin(1, 205);
  hub.hw_abort(1, 230, sim::AbortReason::kConflict, 7, obs::kNoSite);
  obs::MetricsData d = hub.finalize(300);
  ASSERT_EQ(d.windows.size(), 3u);
  EXPECT_EQ(d.windows[0].hw_starts, 1u);
  EXPECT_EQ(d.windows[0].hw_commits, 1u);
  EXPECT_EQ(d.windows[0].committed_cycles, 89u);
  EXPECT_EQ(d.windows[1].hw_starts, 1u);
  EXPECT_EQ(d.windows[1].hw_commits, 0u);
  EXPECT_EQ(d.windows[2].hw_commits, 1u);
  EXPECT_EQ(d.windows[2].committed_cycles, 110u);
  EXPECT_EQ(d.windows[2].hw_starts, 1u);  // ctx 1's begin at t=205
  EXPECT_EQ(d.windows[2].hw_aborts, 1u);
  EXPECT_EQ(d.windows[2].wasted_cycles, 25u);
  EXPECT_EQ(d.windows[2].aborts_by_reason[static_cast<size_t>(
                sim::AbortReason::kConflict)],
            1u);
}

TEST(MetricsHub, FinalizePadsIdleTailToWall) {
  obs::MetricsHub hub(hub_cfg(100));
  hub.hw_begin(0, 5);
  hub.hw_commit(0, 50);
  obs::MetricsData d = hub.finalize(1000);
  ASSERT_EQ(d.windows.size(), 10u);  // trailing idle windows materialized
  for (size_t i = 0; i < d.windows.size(); ++i) {
    EXPECT_EQ(d.windows[i].start, i * 100u);
    if (i > 0) EXPECT_EQ(d.windows[i].hw_commits, 0u);
  }
}

TEST(MetricsHub, SubscribersSeeContiguousWindowsInOrderWithOneWindowLag) {
  obs::MetricsHub hub(hub_cfg(100));
  std::vector<Cycles> starts;
  hub.subscribe([&](const obs::MetricsWindow& w,
                    const std::optional<obs::PhaseEvent>&) {
    starts.push_back(w.start);
  });
  // Stream events marching forward through five windows. Sealing lags the
  // high-water mark by one full window (clock-skew slack): after an event
  // at t in window 4, windows [0, 3) are sealed.
  for (Cycles t = 10; t < 450; t += 20) {
    hub.hw_begin(0, t);
    hub.hw_commit(0, t + 5);
  }
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 100u);
  EXPECT_EQ(starts[2], 200u);
  // finalize delivers the rest exactly once, still in order.
  obs::MetricsData d = hub.finalize(450);
  ASSERT_EQ(starts.size(), d.windows.size());
  for (size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i], i * 100u);
  }
}

TEST(MetricsHub, LiveWindowsMatchFinalizedWindows) {
  obs::MetricsHub hub(hub_cfg(100));
  std::vector<uint64_t> live_commits;
  hub.subscribe([&](const obs::MetricsWindow& w,
                    const std::optional<obs::PhaseEvent>&) {
    live_commits.push_back(w.hw_commits);
  });
  for (Cycles t = 0; t < 1000; t += 10) {
    hub.hw_begin(0, t);
    hub.hw_commit(0, t + 9);
  }
  obs::MetricsData d = hub.finalize(1000);
  ASSERT_EQ(live_commits.size(), d.windows.size());
  for (size_t i = 0; i < d.windows.size(); ++i) {
    EXPECT_EQ(live_commits[i], d.windows[i].hw_commits) << "window " << i;
  }
}

TEST(MetricsHub, FinalizeIsIdempotent) {
  obs::MetricsHub hub(hub_cfg(100));
  hub.hw_begin(0, 10);
  hub.hw_commit(0, 20);
  obs::MetricsData a = hub.finalize(200);
  obs::MetricsData b = hub.finalize(200);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  EXPECT_EQ(a.phases.size(), b.phases.size());
  EXPECT_EQ(a.windows[0].hw_commits, b.windows[0].hw_commits);
}

TEST(MetricsHub, ElideCountersAggregatePerLockPerWindow) {
  obs::MetricsHub hub(hub_cfg(100));
  hub.elide_lock_name(3, "hot-mutex");
  hub.elide_acquire(3, 50, obs::ElideAcqKind::kElided, 40, 0);
  hub.elide_acquire(3, 60, obs::ElideAcqKind::kFallback, 0, 25);
  hub.elide_acquire(3, 150, obs::ElideAcqKind::kElided, 30, 0);
  obs::MetricsData d = hub.finalize(200);
  ASSERT_EQ(d.windows.size(), 2u);
  const obs::ElideWindowCounters& w0 = d.windows[0].elide.at(3);
  EXPECT_EQ(w0.acquisitions, 2u);
  EXPECT_EQ(w0.elided, 1u);
  EXPECT_EQ(w0.fallbacks, 1u);
  EXPECT_EQ(w0.cycles_elided, 40u);
  EXPECT_EQ(w0.cycles_wasted, 25u);
  EXPECT_EQ(d.windows[1].elide.at(3).elided, 1u);
  EXPECT_EQ(d.lock_names.at(3), "hot-mutex");
}

// ---- Flame profile: exact under ring wrap ----

core::RunConfig traced_cfg(Backend b, size_t ring_capacity) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = 2;
  cfg.obs.enabled = true;
  cfg.obs.capacity = ring_capacity;
  cfg.obs.metrics.window_cycles = 500;
  return cfg;
}

void run_contended(core::TxRuntime& rt, uint32_t threads) {
  sim::Addr addr = rt.heap().host_alloc(64, 64);
  std::vector<std::function<void(core::TxCtx&)>> workers;
  for (CtxId t = 0; t < threads; ++t) {
    workers.push_back([addr](core::TxCtx& ctx) {
      for (int i = 0; i < 150; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(addr);
          ctx.compute(30);
          ctx.store(addr, v + 1);
        });
      }
    });
  }
  rt.run(std::move(workers));
}

TEST(FlameProfile, WeightsSumToWastedCyclesEvenAfterRingWrap) {
  // A 16-event ring wraps hundreds of times in this run; the flame profile
  // aggregates at emission time, so it must not lose a single wasted cycle.
  core::TxRuntime rt(traced_cfg(Backend::kRtm, 16));
  run_contended(rt, 2);
  ASSERT_GT(rt.trace_sink()->dropped(), 0u);
  auto m = rt.metrics_data();
  auto p = rt.pmu_data();
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(p.has_value());
  ASSERT_GT(p->split.wasted, 0u);
  uint64_t flame_total = 0;
  for (const auto& [victim, edges] : m->flame) {
    for (const auto& [key, cycles] : edges) flame_total += cycles;
  }
  EXPECT_EQ(flame_total, p->split.wasted);
}

// ---- Exporters ----

obs::Capture hub_capture(const std::string& label, Backend b) {
  core::TxRuntime rt(traced_cfg(b, 1 << 16));
  run_contended(rt, 2);
  obs::Capture c = obs::make_capture(*rt.trace_sink(), label, 3.3, 2);
  c.pmu = rt.pmu_data();
  c.metrics = rt.metrics_data();
  return c;
}

TEST(OpenMetrics, ExpositionIsByteDeterministicAndWellFormed) {
  auto render = [] {
    std::vector<obs::Capture> caps;
    caps.push_back(hub_capture("cell:rtm", Backend::kRtm));
    std::ostringstream os;
    obs::write_openmetrics(os, caps);
    return os.str();
  };
  std::string a = render();
  EXPECT_EQ(a, render());
  // Spot-check the exposition grammar: HELP/TYPE headers, labelled samples,
  // the misc-bucket label, and the mandatory EOF marker last.
  EXPECT_NE(a.find("# HELP tsxlab_window_hw_commits "), std::string::npos);
  EXPECT_NE(a.find("# TYPE tsxlab_window_hw_commits gauge"),
            std::string::npos);
  EXPECT_NE(a.find("tsxlab_window_hw_commits{cell=\"cell:rtm\",w=\"0\"} "),
            std::string::npos);
  EXPECT_NE(a.find("bucket=\"1\""), std::string::npos);
  EXPECT_NE(a.find("tsxlab_window_abort_rate{"), std::string::npos);
  EXPECT_NE(a.find("tsxlab_window_cycles{cell=\"cell:rtm\"} 500"),
            std::string::npos);
  ASSERT_GE(a.size(), 6u);
  EXPECT_EQ(a.substr(a.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, SamplesFollowRegistryLabelOrder) {
  // Registry::drain label-sorts, which is what makes the exposition --jobs
  // invariant; the exporter itself must preserve that order per family.
  obs::Registry reg;
  reg.add(hub_capture("cell:b", Backend::kRtm));
  reg.add(hub_capture("cell:a", Backend::kRtm));
  std::vector<obs::Capture> caps = reg.drain();
  std::ostringstream os;
  obs::write_openmetrics(os, caps);
  std::string out = os.str();
  size_t first_a = out.find("tsxlab_window_hw_starts{cell=\"cell:a\"");
  size_t first_b = out.find("tsxlab_window_hw_starts{cell=\"cell:b\"");
  ASSERT_NE(first_a, std::string::npos);
  ASSERT_NE(first_b, std::string::npos);
  EXPECT_LT(first_a, first_b);
}

TEST(Flamegraph, CollapsedStacksAreDeterministicAndWeighted) {
  auto render = [] {
    std::vector<obs::Capture> caps;
    caps.push_back(hub_capture("cell:rtm", Backend::kRtm));
    std::ostringstream os;
    obs::write_flamegraph(os, caps);
    return os.str();
  };
  std::string a = render();
  EXPECT_EQ(a, render());
  ASSERT_FALSE(a.empty());
  // Each line: "cell;victim;attacker-or-[reason] <cycles>" with a positive
  // weight (zero-weight stacks are filtered).
  std::istringstream is(a);
  std::string line;
  uint64_t total = 0;
  while (std::getline(is, line)) {
    ASSERT_EQ(line.rfind("cell:rtm;", 0), 0u) << line;
    size_t semi2 = line.find(';', line.find(';') + 1);
    ASSERT_NE(semi2, std::string::npos) << line;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    uint64_t cycles = std::stoull(line.substr(sp + 1));
    EXPECT_GT(cycles, 0u) << line;
    total += cycles;
  }
  EXPECT_GT(total, 0u);
}

// ---- Phase events reach the finalized data on a simulated phased run ----

TEST(MetricsHub, SimulatedLoadShiftProducesAPhaseEvent) {
  // Two phases in one run: a quiet warmup (sparse small transactions), then
  // a hot burst (every context hammering one line). The detector must mark
  // at least one boundary, on the activity or contention axis.
  core::RunConfig cfg = traced_cfg(Backend::kRtm, 1 << 16);
  cfg.threads = 4;
  cfg.obs.metrics.window_cycles = 2000;
  core::TxRuntime rt(cfg);
  sim::Addr addr = rt.heap().host_alloc(256, 64);
  std::vector<std::function<void(core::TxCtx&)>> workers;
  for (CtxId t = 0; t < 4; ++t) {
    workers.push_back([addr, t](core::TxCtx& ctx) {
      // Phase 1: long idle gaps, disjoint lines — low activity, no aborts.
      for (int i = 0; i < 40; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(addr + 64 * t);
          ctx.compute(5);
          ctx.store(addr + 64 * t, v + 1);
        });
        ctx.compute(400);
      }
      // Phase 2: tight contended loop on one shared line.
      for (int i = 0; i < 400; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(addr);
          ctx.compute(10);
          ctx.store(addr, v + 1);
        });
      }
    });
  }
  rt.run(std::move(workers));
  auto m = rt.metrics_data();
  ASSERT_TRUE(m.has_value());
  ASSERT_GT(m->windows.size(), 6u);
  EXPECT_FALSE(m->phases.empty());
  for (const obs::PhaseEvent& e : m->phases) {
    EXPECT_LT(e.window, m->windows.size());
    EXPECT_EQ(e.t, m->windows[e.window].start);
  }
}

}  // namespace
