#include <gtest/gtest.h>

#include "sim/cache.h"

namespace {

using tsx::sim::Cache;
using tsx::sim::CacheGeometry;
using tsx::sim::CacheLine;

// A tiny 4-set, 2-way cache (8 lines of 64 B).
CacheGeometry tiny() { return CacheGeometry{8 * 64, 2}; }

TEST(Cache, GeometryDerivation) {
  CacheGeometry g{32 * 1024, 8};
  EXPECT_EQ(g.lines(), 512u);
  EXPECT_EQ(g.sets(), 64u);
}

TEST(Cache, MissThenHit) {
  Cache c(tiny(), "t");
  EXPECT_EQ(c.probe(100), nullptr);
  int evictions = 0;
  c.fill(100, [&](const CacheLine&) { ++evictions; });
  EXPECT_NE(c.probe(100), nullptr);
  EXPECT_EQ(evictions, 0);
}

TEST(Cache, LruEvictsColdest) {
  Cache c(tiny(), "t");
  // Set index = line % 4. Lines 0, 4, 8 map to set 0 (2 ways).
  c.fill(0, [](const CacheLine&) {});
  c.fill(4, [](const CacheLine&) {});
  c.touch(0);  // 4 becomes LRU
  uint64_t evicted = ~0ull;
  c.fill(8, [&](const CacheLine& v) { evicted = v.tag; });
  EXPECT_EQ(evicted, 4u);
  EXPECT_NE(c.probe(0), nullptr);
  EXPECT_NE(c.probe(8), nullptr);
  EXPECT_EQ(c.probe(4), nullptr);
}

TEST(Cache, FillOfPresentLineThrows) {
  Cache c(tiny(), "t");
  c.fill(3, [](const CacheLine&) {});
  EXPECT_THROW(c.fill(3, [](const CacheLine&) {}), std::logic_error);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(tiny(), "t");
  c.fill(5, [](const CacheLine&) {});
  c.invalidate(5);
  EXPECT_EQ(c.probe(5), nullptr);
  // Invalidate of missing line is a no-op.
  c.invalidate(5);
}

TEST(Cache, EvictionCallbackSeesFlags) {
  Cache c(tiny(), "t");
  CacheLine* l = c.fill(0, [](const CacheLine&) {});
  l->dirty = true;
  l->tx_write_mask = 0b10;
  c.fill(4, [](const CacheLine&) {});
  bool saw = false;
  // Evicting set 0 again must surface line 0 or 4; touch 4 so 0 is LRU.
  c.touch(4);
  c.fill(8, [&](const CacheLine& v) {
    saw = true;
    EXPECT_EQ(v.tag, 0u);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.tx_write_mask, 0b10);
  });
  EXPECT_TRUE(saw);
}

TEST(Cache, ResetClearsFlagsOnReuse) {
  Cache c(tiny(), "t");
  CacheLine* l = c.fill(0, [](const CacheLine&) {});
  l->dirty = true;
  l->tx_read_mask = 0xff;
  c.invalidate(0);
  CacheLine* l2 = c.fill(0, [](const CacheLine&) {});
  EXPECT_FALSE(l2->dirty);
  EXPECT_EQ(l2->tx_read_mask, 0);
}

TEST(Cache, ValidLineCount) {
  Cache c(tiny(), "t");
  EXPECT_EQ(c.valid_lines(), 0u);
  c.fill(1, [](const CacheLine&) {});
  c.fill(2, [](const CacheLine&) {});
  EXPECT_EQ(c.valid_lines(), 2u);
}

TEST(Cache, NonPowerOfTwoSetsRejected) {
  CacheGeometry g{3 * 64, 1};  // 3 sets
  EXPECT_THROW(Cache(g, "bad"), std::invalid_argument);
}

TEST(Cache, TouchUpdatesRecency) {
  Cache c(tiny(), "t");
  c.fill(0, [](const CacheLine&) {});
  c.fill(4, [](const CacheLine&) {});
  // Without the touch, 0 would be evicted; with it, 4 goes.
  ASSERT_NE(c.touch(0), nullptr);
  uint64_t evicted = ~0ull;
  c.fill(8, [&](const CacheLine& v) { evicted = v.tag; });
  EXPECT_EQ(evicted, 4u);
}

}  // namespace
