#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sim/rng.h"
#include "stamp/lib/bitmap.h"
#include "stamp/lib/hashtable.h"
#include "stamp/lib/heap.h"

namespace {

using namespace tsx;
using namespace tsx::stamp;
using core::Backend;
using sim::Word;

core::RunConfig cfg_for(Backend b, uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

TEST(HashTable, InsertFindRemove) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  HashTable h = HashTable::create_host(rt, 64);
  rt.run([&](core::TxCtx& ctx) {
    EXPECT_TRUE(h.insert(ctx, 1, 10));
    EXPECT_TRUE(h.insert(ctx, 65, 650));  // likely different bucket, any is fine
    EXPECT_FALSE(h.insert(ctx, 1, 99));
    Word v = 0;
    EXPECT_TRUE(h.find(ctx, 1, &v));
    EXPECT_EQ(v, 10u);
    EXPECT_TRUE(h.find(ctx, 65, &v));
    EXPECT_EQ(v, 650u);
    EXPECT_FALSE(h.find(ctx, 2, &v));
    EXPECT_TRUE(h.remove(ctx, 1));
    EXPECT_FALSE(h.remove(ctx, 1));
    EXPECT_EQ(h.size(ctx), 1u);
  });
}

TEST(HashTable, RejectsNonPowerOfTwoBuckets) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  EXPECT_THROW(HashTable::create_host(rt, 100), std::invalid_argument);
}

TEST(HashTable, RandomOpsMatchReference) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  HashTable h = HashTable::create_host(rt, 32);  // small: long chains
  sim::Rng rng(99);
  std::unordered_map<Word, Word> ref;
  rt.run([&](core::TxCtx& ctx) {
    for (int step = 0; step < 2000; ++step) {
      Word key = rng.below(100);
      switch (rng.below(3)) {
        case 0: {
          bool ours = h.insert(ctx, key, step);
          bool theirs = ref.emplace(key, step).second;
          ASSERT_EQ(ours, theirs);
          break;
        }
        case 1: {
          bool ours = h.remove(ctx, key);
          ASSERT_EQ(ours, ref.erase(key) > 0);
          break;
        }
        default: {
          Word v = 0;
          bool ours = h.find(ctx, key, &v);
          auto it = ref.find(key);
          ASSERT_EQ(ours, it != ref.end());
          if (ours) ASSERT_EQ(v, it->second);
        }
      }
    }
  });
  auto items = h.host_items(rt);
  EXPECT_EQ(items.size(), ref.size());
  for (auto [k, v] : items) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  }
}

TEST(HashTable, ConcurrentDistinctInsertsAllLand) {
  core::TxRuntime rt(cfg_for(Backend::kRtm, 4));
  HashTable h = HashTable::create_host(rt, 64);
  rt.run([&](core::TxCtx& ctx) {
    for (int i = 0; i < 100; ++i) {
      Word key = ctx.id() * 1000 + i;
      ctx.transaction([&] { h.insert(ctx, key, key); });
    }
  });
  EXPECT_EQ(h.host_items(rt).size(), 400u);
}

TEST(BinHeap, PushPopSortedOrder) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  BinHeap h = BinHeap::create_host(rt, 64);
  rt.run([&](core::TxCtx& ctx) {
    for (Word k : {9, 3, 7, 1, 5}) EXPECT_TRUE(h.push(ctx, k));
    Word prev = 0;
    Word k = 0;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(h.pop_min(ctx, &k));
      EXPECT_GE(k, prev);
      prev = k;
    }
    EXPECT_FALSE(h.pop_min(ctx, &k));
  });
}

TEST(BinHeap, CapacityLimit) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  BinHeap h = BinHeap::create_host(rt, 2);
  rt.run([&](core::TxCtx& ctx) {
    EXPECT_TRUE(h.push(ctx, 1));
    EXPECT_TRUE(h.push(ctx, 2));
    EXPECT_FALSE(h.push(ctx, 3));
  });
}

TEST(BinHeap, RandomOpsKeepInvariant) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  BinHeap h = BinHeap::create_host(rt, 512);
  sim::Rng rng(7);
  std::multiset<Word> ref;
  rt.run([&](core::TxCtx& ctx) {
    for (int step = 0; step < 1500; ++step) {
      if (ref.empty() || rng.chance(0.6)) {
        Word k = rng.below(1000);
        if (h.push(ctx, k)) ref.insert(k);
      } else {
        Word k = 0;
        ASSERT_TRUE(h.pop_min(ctx, &k));
        ASSERT_EQ(k, *ref.begin());
        ref.erase(ref.begin());
      }
    }
  });
  EXPECT_TRUE(h.host_validate(rt));
  EXPECT_EQ(h.host_size(rt), ref.size());
}

TEST(BinHeap, HostPushMatchesSimPush) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  BinHeap h = BinHeap::create_host(rt, 16);
  for (Word k : {5, 2, 8}) h.host_push(rt, k);
  EXPECT_TRUE(h.host_validate(rt));
  rt.run([&](core::TxCtx& ctx) {
    Word k = 0;
    ASSERT_TRUE(h.pop_min(ctx, &k));
    EXPECT_EQ(k, 2u);
  });
}

TEST(Bitmap, SetTestClear) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  Bitmap b = Bitmap::create_host(rt, 200);
  rt.run([&](core::TxCtx& ctx) {
    EXPECT_FALSE(b.test(ctx, 5));
    EXPECT_TRUE(b.set(ctx, 5));
    EXPECT_FALSE(b.set(ctx, 5));  // already set
    EXPECT_TRUE(b.test(ctx, 5));
    EXPECT_TRUE(b.set(ctx, 64));  // second word
    EXPECT_TRUE(b.set(ctx, 199));
    b.clear(ctx, 5);
    EXPECT_FALSE(b.test(ctx, 5));
    EXPECT_THROW(b.test(ctx, 200), std::out_of_range);
    EXPECT_THROW(b.set(ctx, 999), std::out_of_range);
  });
  EXPECT_EQ(b.host_count_set(rt), 2u);
}

TEST(Bitmap, ConcurrentClaimIsExclusive) {
  // Four threads race to claim bits transactionally; each bit must be won
  // exactly once.
  core::TxRuntime rt(cfg_for(Backend::kRtm, 4));
  Bitmap b = Bitmap::create_host(rt, 256);
  std::array<uint64_t, 4> wins{};
  rt.run([&](core::TxCtx& ctx) {
    for (uint64_t bit = 0; bit < 256; ++bit) {
      bool won = false;
      ctx.transaction([&] { won = b.set(ctx, bit); });
      if (won) ++wins[ctx.id()];
    }
  });
  EXPECT_EQ(wins[0] + wins[1] + wins[2] + wins[3], 256u);
  EXPECT_EQ(b.host_count_set(rt), 256u);
}

}  // namespace
