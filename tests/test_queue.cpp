#include <gtest/gtest.h>

#include <set>

#include "stamp/lib/queue.h"

namespace {

using namespace tsx;
using namespace tsx::stamp;
using core::Backend;
using sim::Word;

core::RunConfig cfg_for(Backend b, uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

TEST(Queue, HostPushAndSize) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  Queue q = Queue::create(rt, 100);
  EXPECT_EQ(q.host_size(rt), 0u);
  for (int i = 0; i < 100; ++i) q.host_push(rt, i);
  EXPECT_EQ(q.host_size(rt), 100u);
  EXPECT_THROW(q.host_push(rt, 1), std::runtime_error);
}

TEST(Queue, FifoOrderSingleThread) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  Queue q = Queue::create(rt, 10);
  rt.run([&](core::TxCtx& ctx) {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(ctx, 100 + i));
    Word v;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.pop(ctx, &v));
      EXPECT_EQ(v, static_cast<Word>(100 + i));
    }
    EXPECT_FALSE(q.pop(ctx, &v));
    EXPECT_TRUE(q.is_empty(ctx));
  });
}

TEST(Queue, FullQueueRejectsPush) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  Queue q = Queue::create(rt, 3);
  rt.run([&](core::TxCtx& ctx) {
    EXPECT_TRUE(q.push(ctx, 1));
    EXPECT_TRUE(q.push(ctx, 2));
    EXPECT_TRUE(q.push(ctx, 3));
    EXPECT_FALSE(q.push(ctx, 4));
    Word v;
    EXPECT_TRUE(q.pop(ctx, &v));
    EXPECT_TRUE(q.push(ctx, 4));  // wraps around
  });
}

class QueueDrain : public ::testing::TestWithParam<Backend> {};

TEST_P(QueueDrain, ConcurrentPopsDrainExactlyOnce) {
  const uint64_t n = 2000;
  core::TxRuntime rt(cfg_for(GetParam(), 4));
  Queue q = Queue::create(rt, n);
  for (uint64_t i = 0; i < n; ++i) q.host_push(rt, i + 1);
  std::array<std::vector<Word>, 4> popped;
  rt.run([&](core::TxCtx& ctx) {
    Word v = 0;
    for (;;) {
      bool ok = false;
      ctx.transaction([&] { ok = q.pop(ctx, &v); });
      if (!ok) break;
      popped[ctx.id()].push_back(v);
    }
  });
  std::set<Word> all;
  uint64_t total = 0;
  for (const auto& vec : popped) {
    total += vec.size();
    all.insert(vec.begin(), vec.end());
  }
  EXPECT_EQ(total, n);            // nothing lost
  EXPECT_EQ(all.size(), n);       // nothing popped twice
  EXPECT_EQ(q.host_size(rt), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, QueueDrain,
                         ::testing::Values(Backend::kLock, Backend::kRtm,
                                           Backend::kTinyStm),
                         [](const auto& info) {
                           return core::backend_name(info.param);
                         });

TEST(Queue, CasPopDrainsExactlyOnce) {
  const uint64_t n = 2000;
  core::TxRuntime rt(cfg_for(Backend::kSeq, 4));
  Queue q = Queue::create(rt, n);
  for (uint64_t i = 0; i < n; ++i) q.host_push(rt, i + 1);
  std::array<std::vector<Word>, 4> popped;
  rt.run([&](core::TxCtx& ctx) {
    Word v = 0;
    while (q.pop_cas(ctx, &v)) popped[ctx.id()].push_back(v);
  });
  std::set<Word> all;
  uint64_t total = 0;
  for (const auto& vec : popped) {
    total += vec.size();
    all.insert(vec.begin(), vec.end());
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(all.size(), n);
}

}  // namespace
