// bench/server: the open-loop request generator (Zipf sampler, phase
// schedules), the three services' conservation laws under every scoreboard
// backend (with the serializability oracle recording each run), and the
// --jobs determinism of the rendered scoreboard.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bench/server/server_driver.h"
#include "sim/rng.h"

namespace {

using namespace tsx;
using namespace tsx::bench::server;

// ---- Zipf sampler ----

TEST(ZipfSampler, StaysInRangeAndIsDeterministic) {
  sim::ZipfSampler z(1000, 0.99);
  sim::Rng a(42), b(42);
  for (int i = 0; i < 5000; ++i) {
    uint64_t va = z(a);
    uint64_t vb = z(b);
    EXPECT_EQ(va, vb);
    EXPECT_LT(va, 1000u);
  }
}

TEST(ZipfSampler, SingleElementAlwaysZero) {
  sim::ZipfSampler z(1, 0.99);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  // Rank 0 must dominate a mid-pack rank, and the head must carry far more
  // mass than a uniform draw would give it. Loose bounds: this is a
  // distribution sanity check, not a statistical test.
  sim::ZipfSampler z(1u << 16, 0.99);
  sim::Rng rng(7);
  const int n = 200000;
  uint64_t rank0 = 0, head256 = 0, mid = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t v = z(rng);
    if (v == 0) ++rank0;
    if (v < 256) ++head256;
    if (v >= (1u << 15) && v < (1u << 15) + 256) ++mid;  // 256 mid ranks
  }
  EXPECT_GT(rank0, n / 1000);    // uniform would give ~3 hits
  EXPECT_GT(head256, n / 10);    // the head carries a large share
  EXPECT_GT(head256, 20 * mid);  // and dwarfs an equal-width mid slice
}

TEST(ZipfSampler, StableAtThetaOne) {
  // theta == 1 exercises the log branch of hIntegral (the 0/0 limit the
  // log1p/expm1 helpers exist for). Must not hang, NaN, or leave range.
  sim::ZipfSampler z(1u << 20, 1.0);
  sim::Rng rng(3);
  uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = z(rng);
    EXPECT_LT(v, 1u << 20);
    if (v > max_seen) max_seen = v;
  }
  // The tail is still reachable (not collapsed onto rank 0).
  EXPECT_GT(max_seen, 1u << 10);
}

// ---- Schedule generator ----

TrafficConfig small_traffic(uint64_t requests_per_phase = 40) {
  TrafficConfig t;
  t.keys = 4096;
  t.clients = 1024;
  t.mean_interarrival = 400;
  t.threads = 2;
  t.seed = 1234;
  t.phases = default_phases(requests_per_phase, 0.2);
  return t;
}

TEST(ServerSchedule, DeterministicPerWorkerAndDistinctAcrossWorkers) {
  TrafficConfig t = small_traffic();
  std::vector<Request> a = make_schedule(t, 0);
  std::vector<Request> b = make_schedule(t, 0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
  std::vector<Request> other = make_schedule(t, 1);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].arrival != other[i].arrival || a[i].key != other[i].key;
  }
  EXPECT_TRUE(differs) << "workers must not share an arrival stream";
}

TEST(ServerSchedule, PhasesArriveInOrderWithScriptedShape) {
  TrafficConfig t = small_traffic(300);
  std::vector<Request> s = make_schedule(t, 0);
  ASSERT_EQ(s.size(), 900u);
  uint64_t writes[3] = {0, 0, 0}, hot[3] = {0, 0, 0}, count[3] = {0, 0, 0};
  sim::Cycles prev = 0;
  uint32_t prev_phase = 0;
  for (const Request& r : s) {
    EXPECT_GT(r.arrival, prev);  // strictly increasing open-loop arrivals
    prev = r.arrival;
    EXPECT_GE(r.phase, prev_phase);  // phases are contiguous windows
    prev_phase = r.phase;
    ASSERT_LT(r.phase, 3u);
    ++count[r.phase];
    if (r.is_write) ++writes[r.phase];
    if (r.key < 16) ++hot[r.phase];
    EXPECT_LT(r.key, t.keys);
    EXPECT_LT(r.client, t.clients);
    EXPECT_GE(r.amount, 1u);
    EXPECT_LE(r.amount, 8u);
  }
  for (int p = 0; p < 3; ++p) EXPECT_EQ(count[p], 300u);
  // Flash crowd: ~80% of phase-1 traffic on 16 keys; the steady phase only
  // hits them by Zipf chance.
  EXPECT_GT(hot[1], 200u);
  EXPECT_LT(hot[0], hot[1] / 2);
  // Write burst: phase 2 writes (ratio 0.8) dwarf the steady 0.2.
  EXPECT_GT(writes[2], writes[0] * 2);
}

// ---- Services under every scoreboard backend, oracle-recorded ----

class ServerService
    : public ::testing::TestWithParam<std::tuple<ServiceKind, core::Backend>> {
};

TEST_P(ServerService, ConservationHoldsAndHistorySerializable) {
  auto [kind, backend] = GetParam();
  TrafficConfig t = small_traffic();
  // verify_history=true records every simulated access and checks the run
  // for serializability (tm_fuzz's oracle) — small workload, full check.
  CellResult r = run_server_rep(kind, backend, t, t.seed,
                                /*obs_label=*/"", /*verify_history=*/true);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.completed, r.offered);
  EXPECT_EQ(r.lat_all.count(), r.completed);
  EXPECT_GT(r.wall, 0u);
  ASSERT_EQ(r.lat_phase.size(), 3u);
  uint64_t per_phase = 0;
  for (size_t p = 0; p < 3; ++p) per_phase += r.completed_phase[p];
  EXPECT_EQ(per_phase, r.completed);
  if (kind == ServiceKind::kKv) {
    EXPECT_GT(r.elide_attempts, 0u);  // the KV store went through elision
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ServerService,
    ::testing::Combine(::testing::Values(ServiceKind::kKv,
                                         ServiceKind::kOrderBook,
                                         ServiceKind::kInventory),
                       ::testing::Values(core::Backend::kRtm,
                                         core::Backend::kTinyStm,
                                         core::Backend::kHybrid,
                                         core::Backend::kLock)),
    [](const auto& info) {
      return std::string(service_name(std::get<0>(info.param))) + "_" +
             core::backend_name(std::get<1>(info.param));
    });

TEST(ServerService, SameSeedSameScoreboardCell) {
  TrafficConfig t = small_traffic();
  CellResult a = run_server_rep(ServiceKind::kOrderBook, core::Backend::kRtm,
                                t, t.seed);
  CellResult b = run_server_rep(ServiceKind::kOrderBook, core::Backend::kRtm,
                                t, t.seed);
  EXPECT_EQ(a.wall, b.wall);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.misses, b.misses);
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.lat_all.percentile(p), b.lat_all.percentile(p));
  }
}

// ---- Online phase detection on the scripted schedule ----

// The metrics hub's acceptance criterion (PR 10): for every scoreboard
// backend, the online detector must flag the scripted steady->flash-crowd
// and flash-crowd->write-burst transitions within one window of the ground
// truth, without chattering in between.
class ServerPhaseDetection : public ::testing::TestWithParam<core::Backend> {};

TEST_P(ServerPhaseDetection, ScriptedBoundariesFlaggedWithinOneWindow) {
  TrafficConfig t;
  t.keys = 4096;
  t.clients = 1024;
  // Sub-capacity load: every backend (the serialized Lock included) must
  // drain requests as they arrive, so per-window activity tracks the
  // *scripted* arrival rate instead of saturating at service capacity —
  // an overloaded server turns scripted steps into queueing ramps.
  t.mean_interarrival = 4000;
  t.threads = 2;
  t.seed = 99;
  // Long phases spanning many windows: ~1.2M cycles steady, ~600k flash
  // crowd (arrival_scale 0.5), ~1.2M write burst.
  t.phases = default_phases(300, 0.2);

  PhaseProbe probe;
  probe.window_cycles = 60000;  // ~30 completions per steady window
  CellResult r = run_server_rep(ServiceKind::kOrderBook, GetParam(), t,
                                t.seed, /*obs_label=*/"",
                                /*verify_history=*/false, &probe);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(probe.metrics.has_value());
  ASSERT_EQ(probe.boundaries.size(), 2u);  // two scripted transitions

  const obs::MetricsData& m = *probe.metrics;
  ASSERT_GT(m.windows.size(), 20u);
  for (size_t b = 0; b < probe.boundaries.size(); ++b) {
    // The transition lands inside window wb; the detector may flag the
    // mixed window itself or the first wholly-shifted one — within one
    // window of the scripted boundary either way.
    uint32_t wb =
        static_cast<uint32_t>(probe.boundaries[b] / probe.window_cycles);
    bool flagged = false;
    for (const obs::PhaseEvent& e : m.phases) {
      flagged = flagged || (e.window >= wb && e.window <= wb + 1);
    }
    EXPECT_TRUE(flagged) << "scripted boundary " << b << " (cycle "
                         << probe.boundaries[b] << ", window " << wb
                         << ") not flagged; detector fired at windows: "
                         << [&] {
                              std::string s;
                              for (const obs::PhaseEvent& e : m.phases) {
                                s += std::to_string(e.window) + " ";
                              }
                              return s;
                            }();
  }
  // Bounded chatter: a handful of boundary events across the whole run,
  // not one per window.
  EXPECT_LE(m.phases.size(), 8u);
  EXPECT_GE(m.phases.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ServerPhaseDetection,
                         ::testing::Values(core::Backend::kRtm,
                                           core::Backend::kTinyStm,
                                           core::Backend::kHybrid,
                                           core::Backend::kLock),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

// ---- --jobs determinism of the rendered scoreboard ----

TEST(ServerSweep, ScoreboardIsByteIdenticalAcrossJobs) {
  TrafficConfig t = small_traffic();
  tsx::bench::BenchArgs args;
  args.reps = 2;
  args.progress = 0;  // no TTY progress lines from the pool
  std::vector<core::Backend> backends = server_backends();

  args.jobs = 1;
  std::string serial =
      scoreboard_text(t, run_server_sweep("test_server_sweep", ServiceKind::kKv,
                                          t, backends, args));
  args.jobs = 4;
  std::string sharded =
      scoreboard_text(t, run_server_sweep("test_server_sweep", ServiceKind::kKv,
                                          t, backends, args));
  EXPECT_EQ(serial, sharded);
  EXPECT_NE(serial.find("RTM"), std::string::npos);
  EXPECT_NE(serial.find("Lock"), std::string::npos);
}

}  // namespace
