// src/obs: ring-buffer trace sink, abort attribution, and the exporters.
//
// Covers the subsystem's contract end-to-end: the ring keeps the newest
// events while aggregation stays exact; a deliberately conflicting
// two-thread workload is attributed to the correct cache line and attacker
// call site; the Chrome trace export is well-formed and byte-identical
// across repeated identical runs (the --jobs determinism the bench layer
// relies on).

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "obs/abort_report.h"
#include "obs/chrome_trace.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"

namespace {

using namespace tsx;
using sim::AbortReason;
using sim::CtxId;
using sim::Cycles;
using sim::Word;

TEST(TraceSink, RingWraparoundKeepsNewestAndAggregatesStayExact) {
  obs::TraceSink sink(4);
  for (Cycles t = 0; t < 10; ++t) sink.stm_begin(0, t, 7);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<obs::Event> ev = sink.events();
  ASSERT_EQ(ev.size(), 4u);
  for (size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].t, 6u + i);  // oldest -> newest, newest kept
    EXPECT_EQ(ev[i].kind, obs::EventKind::kTxBegin);
    EXPECT_EQ(ev[i].flags & obs::kFlagStm, obs::kFlagStm);
  }
  // Per-site attribution is maintained incrementally, not recomputed from
  // the (lossy) ring: all 10 attempts are still counted.
  ASSERT_EQ(sink.sites().count(7u), 1u);
  EXPECT_EQ(sink.sites().at(7u).attempts, 10u);
}

TEST(TraceSink, RejectsZeroCapacity) {
  EXPECT_THROW(obs::TraceSink sink(0), std::invalid_argument);
}

// Two threads hammer the same word from distinct call sites: the abort
// report must name the contended line and blame the opposite site.
core::RunConfig conflict_cfg() {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 2;
  cfg.machine.interrupts_enabled = false;
  cfg.obs.enabled = true;
  return cfg;
}

void run_conflict_workload(core::TxRuntime& rt, sim::Addr* addr_out) {
  sim::Addr addr = rt.heap().host_alloc(64, 64);
  *addr_out = addr;
  std::vector<std::function<void(core::TxCtx&)>> workers;
  for (CtxId t = 0; t < 2; ++t) {
    uint32_t site = t + 1;  // thread 0 -> site 1, thread 1 -> site 2
    workers.push_back([addr, site](core::TxCtx& ctx) {
      for (int i = 0; i < 200; ++i) {
        ctx.transaction(
            [&] {
              Word v = ctx.load(addr);
              ctx.compute(30);
              ctx.store(addr, v + 1);
            },
            site);
      }
    });
  }
  rt.run(std::move(workers));
}

TEST(AbortAttribution, ConflictNamesLineAndAttackerSite) {
  core::TxRuntime rt(conflict_cfg());
  sim::Addr addr = 0;
  run_conflict_workload(rt, &addr);
  EXPECT_EQ(rt.machine().peek(addr), 400u);  // workload actually contended

  obs::TraceSink* sink = rt.trace_sink();
  ASSERT_NE(sink, nullptr);
  const auto& sites = sink->sites();
  ASSERT_EQ(sites.count(1u), 1u);
  ASSERT_EQ(sites.count(2u), 1u);

  uint64_t conflicts = 0, on_line = 0, attacked = 0;
  for (uint32_t site : {1u, 2u}) {
    const obs::SiteAgg& agg = sites.at(site);
    EXPECT_GT(agg.attempts, 0u);
    EXPECT_GT(agg.commits, 0u);
    conflicts +=
        agg.aborts_by_reason[static_cast<size_t>(AbortReason::kConflict)];
    auto it = agg.conflict_lines.find(sim::line_of(addr));
    if (it != agg.conflict_lines.end()) on_line += it->second;
    // Attackers can only be the two workload sites (self-aborts are not
    // attributed to an attacker site).
    uint32_t other = site == 1u ? 2u : 1u;
    for (const auto& [asite, n] : agg.attacker_sites) {
      EXPECT_EQ(asite, other) << "victim site " << site;
      attacked += n;
    }
  }
  EXPECT_GT(conflicts, 0u);  // the workload must have conflicted
  EXPECT_GT(on_line, 0u);    // ... on the shared word's cache line
  EXPECT_GT(attacked, 0u);   // ... blamed on the opposite call site
}

TEST(ChromeTrace, ExportIsWellFormedAndDeterministic) {
  auto traced_run = [] {
    core::TxRuntime rt(conflict_cfg());
    sim::Addr addr = 0;
    run_conflict_workload(rt, &addr);
    std::vector<obs::Capture> caps;
    caps.push_back(
        obs::make_capture(*rt.trace_sink(), "test:conflict", 3.3, 2));
    std::ostringstream os;
    obs::write_chrome_trace(os, caps);
    return os.str();
  };
  std::string a = traced_run();
  // Structural sanity without a JSON parser: envelope plus the event types
  // a contended RTM run must produce.
  EXPECT_EQ(a.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(a.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);  // committed tx spans
  EXPECT_NE(a.find("\"ph\":\"i\""), std::string::npos);  // abort instants
  // The simulation and the export are both deterministic: a second
  // identical run serializes byte-identically (what makes bench traces
  // independent of --jobs).
  EXPECT_EQ(a, traced_run());
}

TEST(AbortReport, WriterCoversEverySiteAndDroppedNote) {
  core::TxRuntime rt(conflict_cfg());
  sim::Addr addr = 0;
  run_conflict_workload(rt, &addr);
  std::vector<obs::Capture> caps;
  caps.push_back(obs::make_capture(*rt.trace_sink(), "test:conflict", 3.3, 2));
  std::ostringstream os;
  obs::write_abort_report(os, caps);
  std::string r = os.str();
  EXPECT_NE(r.find("abort attribution: test:conflict"), std::string::npos);
  EXPECT_NE(r.find("site#1"), std::string::npos);
  EXPECT_NE(r.find("site#2"), std::string::npos);
}

TEST(EnergyWindows, SamplesAreEmittedOnMonotonicBoundaries) {
  core::RunConfig cfg = conflict_cfg();
  cfg.obs.sample_interval = 1000;
  core::TxRuntime rt(cfg);
  sim::Addr addr = 0;
  run_conflict_workload(rt, &addr);
  Cycles last = 0;
  size_t samples = 0;
  for (const obs::Event& e : rt.trace_sink()->events()) {
    if (e.kind != obs::EventKind::kEnergy) continue;
    ++samples;
    EXPECT_EQ(e.t % 1000, 0u);  // window boundaries only
    EXPECT_GT(e.t, last);       // strictly monotonic
    last = e.t;
  }
  EXPECT_GT(samples, 1u);
}

TEST(Registry, DrainSortsByLabelRegardlessOfAddOrder) {
  obs::Registry reg;
  obs::TraceSink sink(8);
  reg.add(obs::make_capture(sink, "b:second", 3.3, 1));
  reg.add(obs::make_capture(sink, "a:first", 3.3, 1));
  EXPECT_EQ(reg.size(), 2u);
  std::vector<obs::Capture> caps = reg.drain();
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0].label, "a:first");
  EXPECT_EQ(caps[1].label, "b:second");
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
