// Exhaustive check of the AbortReason -> MiscBucket mapping (the
// RTM_RETIRED:ABORTED_MISCn model documented in sim/types.h), plus an
// end-to-end run proving the capacity bucket (MISC2) is reachable from the
// machine's abort accounting — the regression that motivated the mapping
// fix (capacity aborts used to be miscounted under MISC1).

#include <gtest/gtest.h>

#include "htm/rtm.h"
#include "sim/machine.h"
#include "sim/types.h"

namespace {

using namespace tsx::sim;

TEST(MiscBucket, MappingMatchesDocumentedTable) {
  // The authoritative table from sim/types.h, spelled out pair by pair.
  EXPECT_EQ(misc_bucket_for(AbortReason::kConflict), MiscBucket::kMisc1);
  EXPECT_EQ(misc_bucket_for(AbortReason::kReadCapacity), MiscBucket::kMisc2);
  EXPECT_EQ(misc_bucket_for(AbortReason::kWriteCapacity), MiscBucket::kMisc2);
  EXPECT_EQ(misc_bucket_for(AbortReason::kExplicit), MiscBucket::kMisc3);
  EXPECT_EQ(misc_bucket_for(AbortReason::kPageFault), MiscBucket::kMisc3);
  EXPECT_EQ(misc_bucket_for(AbortReason::kUnsupportedInsn), MiscBucket::kMisc3);
  EXPECT_EQ(misc_bucket_for(AbortReason::kInterrupt), MiscBucket::kMisc5);
}

TEST(MiscBucket, EveryRealReasonMapsToSomeBucket) {
  // Exhaustive over the enum: every abort reason that can actually be
  // raised (everything but the kNone/kCount sentinels) must land in a
  // bucket, i.e. never in the kCount sentinel.
  for (uint8_t r = 1; r < static_cast<uint8_t>(AbortReason::kCount); ++r) {
    MiscBucket b = misc_bucket_for(static_cast<AbortReason>(r));
    EXPECT_LT(static_cast<uint8_t>(b), static_cast<uint8_t>(MiscBucket::kCount))
        << "unmapped reason " << abort_reason_name(static_cast<AbortReason>(r));
  }
}

TEST(MiscBucket, EveryNonSentinelBucketIsReachable) {
  // MISC4 (incompatible memory type) cannot occur in this simulator and is
  // the one intentionally unreachable bucket; every other bucket must be
  // the image of at least one abort reason.
  std::array<bool, static_cast<size_t>(MiscBucket::kCount)> hit{};
  for (uint8_t r = 1; r < static_cast<uint8_t>(AbortReason::kCount); ++r) {
    hit[static_cast<size_t>(misc_bucket_for(static_cast<AbortReason>(r)))] =
        true;
  }
  EXPECT_TRUE(hit[static_cast<size_t>(MiscBucket::kMisc1)]);
  EXPECT_TRUE(hit[static_cast<size_t>(MiscBucket::kMisc2)]);
  EXPECT_TRUE(hit[static_cast<size_t>(MiscBucket::kMisc3)]);
  EXPECT_TRUE(hit[static_cast<size_t>(MiscBucket::kMisc5)]);
  EXPECT_FALSE(hit[static_cast<size_t>(MiscBucket::kMisc4)])
      << "MISC4 is the documented unreachable sentinel";
}

TEST(MiscBucket, CapacityRunCountsUnderMisc2) {
  // End-to-end: a write-set overflow must show up in the machine's MISC2
  // counter (and not inflate MISC1, which only counts data conflicts —
  // impossible here with a single hardware thread).
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  Machine m(cfg, 1);
  constexpr Addr kData = 0x20000;
  m.prefault(kData, 1024 * 1024);
  m.set_thread(0, [&] {
    tsx::htm::AttemptResult r = tsx::htm::attempt(m, [&] {
      for (int i = 0; i < 1000; ++i) {  // way past the 512-line L1 bound
        m.store(kData + static_cast<Addr>(i) * 64, i);
      }
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.reason, AbortReason::kWriteCapacity);
  });
  m.run();
  const TxStats& tx = m.snapshot().tx;
  EXPECT_GT(tx.aborts_by_misc[static_cast<size_t>(MiscBucket::kMisc2)], 0u);
  EXPECT_EQ(tx.aborts_by_misc[static_cast<size_t>(MiscBucket::kMisc1)], 0u);
}

}  // namespace
