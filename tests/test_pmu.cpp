// src/obs PMU: log2 histograms, per-context cycle attribution (the
// committed + wasted + non-tx + idle == wall identity), the committed-vs-
// wasted energy split, perf-stat counters, and the sample time series.
//
// The identity tests are the PR's core property: for every backend — pure
// hardware (RTM), pure software (TinySTM), mixed (hybrid), and no
// transactions at all (lock) — and with OS interrupts forcing extra aborts,
// the four attribution buckets must tile each hardware thread's [0, wall]
// exactly, with no mispaired attempt events.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "obs/histogram.h"
#include "obs/pmu.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace_sink.h"

namespace {

using namespace tsx;
using core::Backend;
using sim::CtxId;
using sim::Cycles;
using sim::Word;

// ---- Log2Histogram ----

TEST(Log2Histogram, BucketBoundariesAreExactPowersOfTwo) {
  EXPECT_EQ(obs::Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Log2Histogram::bucket_of(~0ull), 64u);

  EXPECT_EQ(obs::Log2Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(obs::Log2Histogram::bucket_lower_bound(1), 1u);
  EXPECT_EQ(obs::Log2Histogram::bucket_lower_bound(2), 2u);
  EXPECT_EQ(obs::Log2Histogram::bucket_lower_bound(11), 1024u);
  // Round-trip: every value lands in a bucket whose bound is <= value.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 64ull, 1000000ull}) {
    size_t b = obs::Log2Histogram::bucket_of(v);
    EXPECT_LE(obs::Log2Histogram::bucket_lower_bound(b), v == 0 ? 0 : v);
  }
}

TEST(Log2Histogram, PercentilesAreExactOnBucketBounds) {
  obs::Log2Histogram h;
  // 100 values: 50x 1, 45x 16, 5x 1024 — all exact bucket lower bounds, so
  // percentile() must return them exactly.
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 45; ++i) h.record(16);
  for (int i = 0; i < 5; ++i) h.record(1024);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 50u * 1 + 45u * 16 + 5u * 1024);
  EXPECT_EQ(h.percentile(50), 1u);
  EXPECT_EQ(h.percentile(51), 16u);
  EXPECT_EQ(h.percentile(95), 16u);
  EXPECT_EQ(h.percentile(96), 1024u);
  EXPECT_EQ(h.percentile(99), 1024u);
  EXPECT_EQ(h.percentile(100), 1024u);
}

TEST(Log2Histogram, PercentileInterpolatesWithinMixedBuckets) {
  obs::Log2Histogram h;
  // 90x 100 (bucket [64, 127]) and 10x 1000 (bucket [512, 1023]). The
  // original percentile() returned the bucket *lower* bound, so p99 came
  // back as 512 — underreporting the true tail value (1000) by nearly 2x.
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000);
  // Regression: the lower bound must no longer be reported for a bucket
  // whose values do not sit on it.
  EXPECT_NE(h.percentile(99), 512u);
  // Within-bucket rank interpolation: rank 99 is the 9th of 10 values in
  // [512, 1023] -> 512 + (1023 - 512) * 9 / 10 = 971.
  EXPECT_EQ(h.percentile(99), 971u);
  // The bucket's top rank reaches the upper bound exactly.
  EXPECT_EQ(h.percentile(100), 1023u);
  // A mid-bucket percentile is also interpolated, never the raw bound.
  EXPECT_EQ(h.percentile(50), 64u + (127u - 64u) * 50 / 90);
  // Never below the bucket's lower bound, never above its upper bound.
  EXPECT_GE(h.percentile(99), 512u);
  EXPECT_LE(h.percentile(99), 1023u);
}

TEST(Log2Histogram, PercentileStaysExactWhenBucketIsDegenerate) {
  obs::Log2Histogram h;
  // A mix: bucket 5 holds only its exact lower bound (16), bucket 11 holds
  // off-bound values. The degenerate bucket must keep the historical exact
  // answer while the other interpolates.
  for (int i = 0; i < 95; ++i) h.record(16);
  for (int i = 0; i < 5; ++i) h.record(1500);
  EXPECT_EQ(h.percentile(50), 16u);
  EXPECT_EQ(h.percentile(95), 16u);
  EXPECT_NE(h.percentile(99), 1024u);  // not the old lower bound
  EXPECT_GE(h.percentile(99), 1024u);
  EXPECT_LE(h.percentile(99), 2047u);
}

TEST(Log2Histogram, MergeMatchesRecordingEverything) {
  obs::Log2Histogram a, b, all;
  for (uint64_t v : {3ull, 16ull, 100ull, 999ull}) {
    a.record(v);
    all.record(v);
  }
  for (uint64_t v : {0ull, 16ull, 1ull << 20, 77ull}) {
    b.record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  for (double p : {10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

TEST(Log2Histogram, EmptyHistogramIsAllZero) {
  obs::Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

// ---- Cycle-attribution identity across backends ----

core::RunConfig pmu_cfg(Backend b, uint32_t threads, bool interrupts) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = interrupts;
  cfg.obs.enabled = true;
  cfg.obs.sample_interval = 2000;
  return cfg;
}

// Contended counter increments: every TM backend aborts sometimes here.
void run_counter_workload(core::TxRuntime& rt, uint32_t threads) {
  sim::Addr addr = rt.heap().host_alloc(64, 64);
  std::vector<std::function<void(core::TxCtx&)>> workers;
  for (CtxId t = 0; t < threads; ++t) {
    workers.push_back([addr](core::TxCtx& ctx) {
      for (int i = 0; i < 120; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(addr);
          ctx.compute(25);
          ctx.store(addr, v + 1);
        });
      }
    });
  }
  rt.run(std::move(workers));
  ASSERT_EQ(rt.machine().peek(addr), 120u * threads);
}

void expect_identity(const obs::PmuData& d) {
  EXPECT_TRUE(d.identity_ok);
  EXPECT_EQ(d.mismatched, 0u);
  ASSERT_EQ(d.ctx.size(), d.threads);
  obs::TxCycleSplit sum;
  for (const obs::PmuCtxSplit& c : d.ctx) {
    // Per-context identity, exact.
    EXPECT_EQ(c.committed + c.wasted + c.non_tx + c.idle, d.wall);
    EXPECT_EQ(c.finish + c.idle, d.wall);
    sum.committed += c.committed;
    sum.wasted += c.wasted;
    sum.non_tx += c.non_tx;
    sum.idle += c.idle;
  }
  // Whole-run split is the per-context sum and tiles threads * wall.
  EXPECT_EQ(d.split.committed, sum.committed);
  EXPECT_EQ(d.split.wasted, sum.wasted);
  EXPECT_EQ(d.split.non_tx, sum.non_tx);
  EXPECT_EQ(d.split.idle, sum.idle);
  EXPECT_EQ(d.split.total(), static_cast<Cycles>(d.threads) * d.wall);
}

class PmuIdentity : public ::testing::TestWithParam<Backend> {};

TEST_P(PmuIdentity, BucketsTileWallExactly) {
  core::TxRuntime rt(pmu_cfg(GetParam(), 2, false));
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  expect_identity(*d);
}

TEST_P(PmuIdentity, HoldsUnderInterruptForcedAborts) {
  core::RunConfig cfg = pmu_cfg(GetParam(), 2, true);
  cfg.machine.interrupt_mean_cycles = 3000;  // frequent: forced aborts
  core::TxRuntime rt(cfg);
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  expect_identity(*d);
}

INSTANTIATE_TEST_SUITE_P(Backends, PmuIdentity,
                         ::testing::Values(Backend::kRtm, Backend::kTinyStm,
                                           Backend::kHybrid, Backend::kLock),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

TEST(Pmu, LockBackendHasNoTransactionCycles) {
  core::TxRuntime rt(pmu_cfg(Backend::kLock, 2, false));
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->split.committed, 0u);
  EXPECT_EQ(d->split.wasted, 0u);
  EXPECT_GT(d->split.non_tx, 0u);
}

TEST(Pmu, RtmCountersMatchMachineStats) {
  core::TxRuntime rt(pmu_cfg(Backend::kRtm, 2, false));
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  const sim::TxStats& tx = d->machine.tx;
  EXPECT_GT(tx.started, 0u);
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const obs::PerfCounter& c : d->counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("tx-start"), tx.started);
  EXPECT_EQ(counter("tx-commit"), tx.committed);
  EXPECT_EQ(counter("tx-abort"), tx.aborted());
  // Committed-attempt durations: one histogram entry per commit.
  EXPECT_EQ(d->tx_duration.count(), tx.committed);
  EXPECT_EQ(d->abort_latency.count(), tx.aborted());
}

TEST(Pmu, StmAttemptCyclesAreCounted) {
  core::TxRuntime rt(pmu_cfg(Backend::kTinyStm, 2, false));
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->stm_starts, 0u);
  EXPECT_GT(d->stm_commits, 0u);
  EXPECT_GT(d->split.committed, 0u);
  // Executor-side cycle counters (RunReport energy split) agree in sign.
  core::RunReport rep = rt.report();
  EXPECT_GT(rep.stm.cycles_committed, 0u);
}

// ---- Energy split ----

TEST(Pmu, EnergySplitSumsToTotalExactly) {
  core::TxRuntime rt(pmu_cfg(Backend::kRtm, 2, false));
  run_counter_workload(rt, 2);
  auto d = rt.pmu_data();
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->energy.total_j(), 0.0);
  EXPECT_NEAR(d->energy_split.total_j(), d->energy.total_j(), 1e-12);
  EXPECT_GT(d->energy_split.committed_j, 0.0);
  EXPECT_GE(d->energy_split.wasted_j, 0.0);
  EXPECT_DOUBLE_EQ(d->energy_split.static_j, d->energy.package_idle_j);
}

TEST(RunReport, EnergySplitSumsToReportTotal) {
  core::TxRuntime rt(pmu_cfg(Backend::kRtm, 2, false));
  run_counter_workload(rt, 2);
  core::RunReport rep = rt.report();
  core::TxEnergySplit s = rep.energy_split();
  EXPECT_NEAR(s.total_j(), rep.joules(), 1e-12);
  EXPECT_GT(s.committed_j, 0.0);
  EXPECT_GE(s.wasted_share(), 0.0);
  EXPECT_LE(s.wasted_share(), 1.0);
}

// ---- Reports and exports are deterministic ----

obs::Capture captured_run(Backend b) {
  core::RunConfig cfg = pmu_cfg(b, 2, false);
  core::TxRuntime rt(cfg);
  run_counter_workload(rt, 2);
  obs::Capture c =
      obs::make_capture(*rt.trace_sink(), "test:pmu", 3.3, 2);
  c.pmu = rt.pmu_data();
  return c;
}

TEST(PerfStat, ReportIsByteDeterministicAndNamesHaswellEvents) {
  auto render = [] {
    std::vector<obs::Capture> caps;
    caps.push_back(captured_run(Backend::kRtm));
    std::ostringstream os;
    obs::write_perf_stat(os, caps);
    return os.str();
  };
  std::string a = render();
  EXPECT_NE(a.find("perf stat: test:pmu"), std::string::npos);
  EXPECT_NE(a.find("RTM_RETIRED.START"), std::string::npos);
  EXPECT_NE(a.find("RTM_RETIRED.ABORTED_MISC1"), std::string::npos);
  EXPECT_NE(a.find("cycle attribution"), std::string::npos);
  EXPECT_EQ(a.find("IDENTITY VIOLATED"), std::string::npos);
  EXPECT_EQ(a, render());
}

TEST(Timeseries, CsvHasSamplesAndIsByteDeterministic) {
  auto render = [] {
    std::vector<obs::Capture> caps;
    caps.push_back(captured_run(Backend::kRtm));
    std::ostringstream os;
    obs::write_timeseries_csv(os, caps);
    return os.str();
  };
  std::string a = render();
  EXPECT_EQ(a.rfind("label,t_cycles,", 0), 0u);  // header first
  // With sample_interval=2000 and a multi-thousand-cycle run there must be
  // data rows, each labeled and on a window boundary.
  EXPECT_NE(a.find("\ntest:pmu,"), std::string::npos);
  EXPECT_EQ(a, render());
}

// Heap placement counters ride in PmuData: they must feed the counter
// digest and the manifest's heap totals, and stay invariant to capture
// insertion order (the --jobs determinism contract: the registry sorts by
// label before hashing/summing).
obs::Capture captured_heap_run(const std::string& label,
                               mem::PlacementPolicy policy) {
  core::RunConfig cfg = pmu_cfg(Backend::kRtm, 2, false);
  cfg.heap.policy = policy;
  core::TxRuntime rt(cfg);
  run_counter_workload(rt, 2);
  obs::Capture c = obs::make_capture(*rt.trace_sink(), label, 3.3, 2);
  c.pmu = rt.pmu_data();
  return c;
}

TEST(Registry, HeapCountersAreDigestedOrderInvariantly) {
  obs::Capture a =
      captured_heap_run("heap:a", mem::PlacementPolicy::kSizeClass);
  obs::Capture b = captured_heap_run("heap:b", mem::PlacementPolicy::kPadded);
  ASSERT_TRUE(a.pmu.has_value());
  ASSERT_TRUE(a.pmu->heap.present);
  EXPECT_GT(a.pmu->heap.allocs, 0u);

  obs::Registry serial, shuffled;  // jobs=1 vs jobs=N completion orders
  serial.add(a);
  serial.add(b);
  shuffled.add(b);
  shuffled.add(a);
  EXPECT_EQ(serial.counter_digest(), shuffled.counter_digest());

  obs::HeapPmuCounters t1 = serial.heap_totals();
  obs::HeapPmuCounters t2 = shuffled.heap_totals();
  EXPECT_TRUE(t1.present);
  EXPECT_EQ(t1.policy, "size-class");  // label-sorted first capture's policy
  EXPECT_EQ(t2.policy, t1.policy);
  EXPECT_EQ(t1.allocs, a.pmu->heap.allocs + b.pmu->heap.allocs);
  EXPECT_EQ(t2.allocs, t1.allocs);
  ASSERT_EQ(t1.set_allocs.size(), t2.set_allocs.size());
  EXPECT_EQ(t1.set_allocs, t2.set_allocs);
}

TEST(Registry, HeapPolicyChangesTheCounterDigest) {
  obs::Registry r1, r2;
  r1.add(captured_heap_run("heap:x", mem::PlacementPolicy::kSizeClass));
  r2.add(captured_heap_run("heap:x", mem::PlacementPolicy::kPadded));
  EXPECT_NE(r1.counter_digest(), r2.counter_digest());
}

// ---- Window/total identity: MetricsHub window deltas vs PmuData totals ----
//
// The hub's windowing contract: every event lands in the window containing
// its timestamp, so for EVERY counter the sum of window deltas must equal
// the finalized PmuData total exactly — for pure-hardware, pure-software,
// mixed and no-transaction backends, and under interrupt-forced aborts.

core::RunConfig hub_cfg(Backend b, uint32_t threads, bool interrupts) {
  core::RunConfig cfg = pmu_cfg(b, threads, interrupts);
  cfg.obs.metrics.window_cycles = 700;  // off-round: exercises boundaries
  return cfg;
}

void expect_window_identity(const obs::MetricsData& m, const obs::PmuData& d) {
  ASSERT_GT(m.window_cycles, 0u);
  // The series tiles [0, wall): contiguous fixed-stride starts, covering
  // every cycle of the run.
  for (size_t i = 0; i < m.windows.size(); ++i) {
    EXPECT_EQ(m.windows[i].start, i * m.window_cycles);
  }
  ASSERT_FALSE(m.windows.empty());
  EXPECT_GE(m.windows.size() * m.window_cycles, d.wall);
  EXPECT_LT((m.windows.size() - 1) * m.window_cycles, d.wall);

  obs::MetricsWindow sum;
  for (const obs::MetricsWindow& w : m.windows) {
    sum.hw_starts += w.hw_starts;
    sum.hw_commits += w.hw_commits;
    sum.hw_aborts += w.hw_aborts;
    for (size_t i = 0; i < sum.aborts_by_misc.size(); ++i) {
      sum.aborts_by_misc[i] += w.aborts_by_misc[i];
    }
    for (size_t i = 0; i < sum.aborts_by_reason.size(); ++i) {
      sum.aborts_by_reason[i] += w.aborts_by_reason[i];
    }
    sum.stm_starts += w.stm_starts;
    sum.stm_commits += w.stm_commits;
    sum.stm_aborts += w.stm_aborts;
    sum.fallbacks += w.fallbacks;
    sum.committed_cycles += w.committed_cycles;
    sum.wasted_cycles += w.wasted_cycles;
  }
  const sim::TxStats& tx = d.machine.tx;
  EXPECT_EQ(sum.hw_starts, tx.started);
  EXPECT_EQ(sum.hw_commits, tx.committed);
  EXPECT_EQ(sum.hw_aborts, tx.aborted());
  for (size_t i = 0; i < sum.aborts_by_misc.size(); ++i) {
    EXPECT_EQ(sum.aborts_by_misc[i], tx.aborts_by_misc[i]) << "misc " << i + 1;
  }
  for (size_t i = 0; i < sum.aborts_by_reason.size(); ++i) {
    EXPECT_EQ(sum.aborts_by_reason[i], tx.aborts_by_reason[i])
        << "reason " << i;
  }
  EXPECT_EQ(sum.stm_starts, d.stm_starts);
  EXPECT_EQ(sum.stm_commits, d.stm_commits);
  EXPECT_EQ(sum.stm_aborts, d.stm_aborts);
  EXPECT_EQ(sum.fallbacks, d.fallbacks);
  // Cycle deltas: both the hub and the Pmu attribute an attempt's span to
  // its closing event, so the sums agree exactly.
  EXPECT_EQ(sum.committed_cycles, d.split.committed);
  EXPECT_EQ(sum.wasted_cycles, d.split.wasted);
}

class MetricsWindowIdentity : public ::testing::TestWithParam<Backend> {};

TEST_P(MetricsWindowIdentity, WindowDeltasSumToPmuTotals) {
  core::TxRuntime rt(hub_cfg(GetParam(), 2, false));
  run_counter_workload(rt, 2);
  auto m = rt.metrics_data();
  auto d = rt.pmu_data();
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(d.has_value());
  expect_window_identity(*m, *d);
}

TEST_P(MetricsWindowIdentity, HoldsUnderInterruptForcedAborts) {
  core::RunConfig cfg = hub_cfg(GetParam(), 2, true);
  cfg.machine.interrupt_mean_cycles = 3000;  // frequent: forced aborts
  core::TxRuntime rt(cfg);
  run_counter_workload(rt, 2);
  auto m = rt.metrics_data();
  auto d = rt.pmu_data();
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(d.has_value());
  expect_window_identity(*m, *d);
}

INSTANTIATE_TEST_SUITE_P(Backends, MetricsWindowIdentity,
                         ::testing::Values(Backend::kRtm, Backend::kTinyStm,
                                           Backend::kHybrid, Backend::kLock),
                         [](const auto& info) {
                           return std::string(core::backend_name(info.param));
                         });

TEST(MetricsWindowIdentity, LockBackendWindowsCarryLockSections) {
  core::TxRuntime rt(hub_cfg(Backend::kLock, 2, false));
  run_counter_workload(rt, 2);
  auto m = rt.metrics_data();
  ASSERT_TRUE(m.has_value());
  uint64_t sections = 0;
  Cycles section_cycles = 0;
  for (const obs::MetricsWindow& w : m->windows) {
    sections += w.lock_sections;
    section_cycles += w.lock_section_cycles;
  }
  // Every critical section of the workload is visible: 120 iterations x 2
  // threads, each with a non-zero simulated duration.
  EXPECT_EQ(sections, 240u);
  EXPECT_GT(section_cycles, 0u);
}

TEST(Registry, MetricsDigestIsOrderInvariantAndPresentOnlyWithHub) {
  auto captured_hub_run = [](const std::string& label, Backend b) {
    core::TxRuntime rt(hub_cfg(b, 2, false));
    run_counter_workload(rt, 2);
    obs::Capture c = obs::make_capture(*rt.trace_sink(), label, 3.3, 2);
    c.pmu = rt.pmu_data();
    c.metrics = rt.metrics_data();
    return c;
  };
  obs::Capture a = captured_hub_run("hub:a", Backend::kRtm);
  obs::Capture b = captured_hub_run("hub:b", Backend::kTinyStm);

  obs::Registry serial, shuffled;  // jobs=1 vs jobs=N completion orders
  serial.add(a);
  serial.add(b);
  shuffled.add(b);
  shuffled.add(a);
  auto d1 = serial.metrics_digest();
  auto d2 = shuffled.metrics_digest();
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(*d1, *d2);

  // Without hub-carrying captures the digest is absent (and the manifest
  // field omitted), not zero.
  obs::Registry off;
  off.add(captured_run(Backend::kRtm));
  EXPECT_FALSE(off.metrics_digest().has_value());
}

TEST(Registry, CounterDigestIsStableAndNonDestructive) {
  obs::Registry reg;
  reg.add(captured_run(Backend::kRtm));
  uint64_t d1 = reg.counter_digest();
  uint64_t d2 = reg.counter_digest();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, 0u);
  EXPECT_EQ(reg.size(), 1u);  // digest must not drain
  // Adding a capture changes the fingerprint.
  reg.add(captured_run(Backend::kTinyStm));
  EXPECT_NE(reg.counter_digest(), d1);
}

}  // namespace
