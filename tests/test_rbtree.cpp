#include <gtest/gtest.h>

#include <map>

#include "sim/rng.h"
#include "stamp/lib/rbtree.h"

namespace {

using namespace tsx;
using namespace tsx::stamp;
using core::Backend;
using sim::Word;

core::RunConfig cfg_for(Backend b, uint32_t threads) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

TEST(RbTree, InsertFindBasics) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    EXPECT_TRUE(t.insert(ctx, 10, 100));
    EXPECT_TRUE(t.insert(ctx, 5, 50));
    EXPECT_TRUE(t.insert(ctx, 15, 150));
    EXPECT_FALSE(t.insert(ctx, 10, 999));  // duplicate rejected
    Word v = 0;
    EXPECT_TRUE(t.find(ctx, 5, &v));
    EXPECT_EQ(v, 50u);
    EXPECT_FALSE(t.find(ctx, 7, &v));
    EXPECT_EQ(t.size(ctx), 3u);
    EXPECT_TRUE(t.update(ctx, 5, 55));
    EXPECT_TRUE(t.find(ctx, 5, &v));
    EXPECT_EQ(v, 55u);
    EXPECT_FALSE(t.update(ctx, 7, 1));
  });
  std::string why;
  EXPECT_TRUE(t.host_validate(rt, &why)) << why;
}

TEST(RbTree, RemoveAllShapes) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (Word k = 1; k <= 31; ++k) EXPECT_TRUE(t.insert(ctx, k, k));
    // Remove leaf, one-child, two-children and root-ish nodes.
    for (Word k : {1, 16, 8, 31, 2, 30, 15, 17}) {
      EXPECT_TRUE(t.remove(ctx, k));
      EXPECT_FALSE(t.find(ctx, k, nullptr));
    }
    EXPECT_FALSE(t.remove(ctx, 1));  // already gone
    EXPECT_EQ(t.size(ctx), 31u - 8u);
  });
  std::string why;
  EXPECT_TRUE(t.host_validate(rt, &why)) << why;
}

TEST(RbTree, MinAndSuccessorIterate) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (Word k : {20, 10, 30, 5, 15, 25, 35}) t.insert(ctx, k, 0);
    std::vector<Word> keys;
    for (sim::Addr n = t.min_node(ctx); n != 0; n = t.successor(ctx, n)) {
      keys.push_back(t.node_key(ctx, n));
    }
    EXPECT_EQ(keys, (std::vector<Word>{5, 10, 15, 20, 25, 30, 35}));
  });
}

TEST(RbTree, LowerBound) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    for (Word k : {10, 20, 30}) t.insert(ctx, k, 0);
    EXPECT_EQ(t.node_key(ctx, t.lower_bound(ctx, 5)), 10u);
    EXPECT_EQ(t.node_key(ctx, t.lower_bound(ctx, 10)), 10u);
    EXPECT_EQ(t.node_key(ctx, t.lower_bound(ctx, 11)), 20u);
    EXPECT_EQ(t.lower_bound(ctx, 31), 0u);
  });
}

TEST(RbTree, FindNodeAllowsDirectAccess) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    t.insert(ctx, 7, 70);
    sim::Addr n = t.find_node(ctx, 7);
    ASSERT_NE(n, 0u);
    EXPECT_EQ(t.node_value(ctx, n), 70u);
    t.set_node_value(ctx, n, 71);
    Word v = 0;
    EXPECT_TRUE(t.find(ctx, 7, &v));
    EXPECT_EQ(v, 71u);
    EXPECT_EQ(t.find_node(ctx, 8), 0u);
  });
}

// Property test: a random operation mix must match std::map exactly and
// preserve every red-black invariant, across several seeds.
class RbTreeRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeRandomOps, MatchesStdMapAndKeepsInvariants) {
  core::TxRuntime rt(cfg_for(Backend::kSeq, 1));
  RbTree t = RbTree::create_host(rt);
  sim::Rng rng(GetParam());
  std::map<Word, Word> ref;
  rt.run([&](core::TxCtx& ctx) {
    for (int step = 0; step < 3000; ++step) {
      Word key = rng.below(200);
      int op = static_cast<int>(rng.below(10));
      if (op < 5) {
        bool ours = t.insert(ctx, key, step);
        bool theirs = ref.emplace(key, step).second;
        ASSERT_EQ(ours, theirs) << "insert(" << key << ") step " << step;
      } else if (op < 8) {
        bool ours = t.remove(ctx, key);
        bool theirs = ref.erase(key) > 0;
        ASSERT_EQ(ours, theirs) << "remove(" << key << ") step " << step;
      } else {
        Word v = 0;
        bool ours = t.find(ctx, key, &v);
        auto it = ref.find(key);
        ASSERT_EQ(ours, it != ref.end()) << "find(" << key << ")";
        if (ours) ASSERT_EQ(v, it->second);
      }
    }
  });
  std::string why;
  ASSERT_TRUE(t.host_validate(rt, &why)) << why;
  auto items = t.host_items(rt);
  ASSERT_EQ(items.size(), ref.size());
  size_t i = 0;
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(items[i].first, k);
    EXPECT_EQ(items[i].second, v);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomOps,
                         ::testing::Values(1, 2, 3, 42, 1337));

// Concurrent property: disjoint key ranges inserted transactionally by four
// threads; the final tree must contain exactly the union and stay valid.
class RbTreeConcurrent : public ::testing::TestWithParam<Backend> {};

TEST_P(RbTreeConcurrent, ParallelInsertsAndRemoves) {
  core::TxRuntime rt(cfg_for(GetParam(), 4));
  RbTree t = RbTree::create_host(rt);
  const int per_thread = 120;
  rt.run([&](core::TxCtx& ctx) {
    Word base = ctx.id() * 1000;
    for (int i = 0; i < per_thread; ++i) {
      ctx.transaction([&] { t.insert(ctx, base + i, ctx.id()); });
    }
    // Remove every third key again.
    for (int i = 0; i < per_thread; i += 3) {
      ctx.transaction([&] { t.remove(ctx, base + i); });
    }
  });
  std::string why;
  ASSERT_TRUE(t.host_validate(rt, &why)) << why;
  auto items = t.host_items(rt);
  uint64_t expected = 4ull * (per_thread - (per_thread + 2) / 3);
  EXPECT_EQ(items.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Backends, RbTreeConcurrent,
                         ::testing::Values(Backend::kLock, Backend::kRtm,
                                           Backend::kTinyStm, Backend::kTl2),
                         [](const auto& info) {
                           return core::backend_name(info.param);
                         });

TEST(RbTree, AbortedInsertLeavesTreeUntouched) {
  core::RunConfig cfg = cfg_for(Backend::kRtm, 1);
  cfg.retry.max_attempts = 1;
  core::TxRuntime rt(cfg);
  RbTree t = RbTree::create_host(rt);
  rt.run([&](core::TxCtx& ctx) {
    ctx.transaction([&] { t.insert(ctx, 1, 1); });
    ctx.transaction([&] {
      t.insert(ctx, 2, 2);
      if (!ctx.in_rtm_fallback()) {
        rt.machine().tx_abort(0x3);  // abort the speculative attempt
      }
    });
  });
  // Key 2 was inserted exactly once (by the fallback execution).
  auto items = t.host_items(rt);
  ASSERT_EQ(items.size(), 2u);
  std::string why;
  EXPECT_TRUE(t.host_validate(rt, &why)) << why;
}

}  // namespace
