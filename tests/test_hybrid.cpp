// Backend::kHybrid: hardware transaction attempts with a TinySTM (not
// serial-lock) fallback. Exercises the coupling invariants — STM fallbacks
// run concurrently with hardware attempts and both directions of conflict
// are detected — through the public runtime interface and the differential
// oracle.

#include <gtest/gtest.h>

#include "check/oracle.h"
#include "core/runtime.h"

namespace {

using namespace tsx::core;
using tsx::sim::Addr;
using tsx::sim::Word;

RunConfig make_cfg(Backend b, uint32_t threads) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;  // fast init in tests
  return cfg;
}

TEST(Hybrid, SharedCounterIsExactAcrossThreadCounts) {
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    RunConfig cfg = make_cfg(Backend::kHybrid, threads);
    TxRuntime rt(cfg);
    Addr counter = rt.heap().host_alloc(8, 64);
    const int iters = 200;
    rt.run([&](TxCtx& ctx) {
      for (int i = 0; i < iters; ++i) {
        ctx.transaction([&] {
          Word v = ctx.load(counter);
          ctx.compute(7);
          ctx.store(counter, v + 1);
        });
      }
    });
    EXPECT_EQ(rt.machine().peek(counter), static_cast<Word>(threads) * iters)
        << threads << " threads";
  }
}

TEST(Hybrid, CapacityOverflowFallsBackToStmNotSerial) {
  RunConfig cfg = make_cfg(Backend::kHybrid, 1);
  cfg.retry.max_attempts = 1;
  TxRuntime rt(cfg);
  const int kLines = 700;  // beyond hardware write capacity
  Addr big = rt.heap().host_alloc(kLines * 64, 64);
  bool saw_serial_fallback = false;
  rt.run([&](TxCtx& ctx) {
    ctx.transaction([&] {
      for (int i = 0; i < kLines; ++i) {
        ctx.store(big + static_cast<Addr>(i) * 64, 7);
      }
      saw_serial_fallback |= ctx.in_rtm_fallback();
    });
  });
  RunReport r = rt.report();
  // One hardware attempt (write-capacity abort), then one software tx.
  EXPECT_EQ(r.rtm.attempts, 1u);
  EXPECT_EQ(r.rtm.fallbacks, 1u);
  EXPECT_EQ(r.stm.transactions, 1u);
  EXPECT_EQ(r.stm.commits, 1u);
  // The hybrid has no serial fallback path at all.
  EXPECT_FALSE(saw_serial_fallback);
  for (int i = 0; i < kLines; ++i) {
    ASSERT_EQ(rt.machine().peek(big + static_cast<Addr>(i) * 64), 7u);
  }
}

TEST(Hybrid, StmFallbackAndHardwareAttemptsShareOneCounterExactly) {
  // Thread 0: short transactions (hardware commits). Thread 1: every
  // transaction overflows capacity (STM fallback) and also bumps the shared
  // counter — so software commits must be visible to hardware attempts and
  // vice versa.
  RunConfig cfg = make_cfg(Backend::kHybrid, 2);
  cfg.retry.max_attempts = 2;
  TxRuntime rt(cfg);
  const int kLines = 700;
  Addr big = rt.heap().host_alloc(kLines * 64, 64);
  Addr counter = rt.heap().host_alloc(8, 64);
  const int small_iters = 150, big_iters = 4;
  std::vector<std::function<void(TxCtx&)>> workers;
  workers.emplace_back([&](TxCtx& ctx) {
    for (int i = 0; i < small_iters; ++i) {
      ctx.transaction([&] { ctx.store(counter, ctx.load(counter) + 1); },
                      /*site=*/1);
    }
  });
  workers.emplace_back([&](TxCtx& ctx) {
    for (int r = 0; r < big_iters; ++r) {
      ctx.transaction(
          [&] {
            for (int i = 0; i < kLines; ++i) {
              ctx.store(big + static_cast<Addr>(i) * 64, r);
            }
            ctx.store(counter, ctx.load(counter) + 1);
          },
          /*site=*/2);
    }
  });
  rt.run(std::move(workers));

  EXPECT_EQ(rt.machine().peek(counter),
            static_cast<Word>(small_iters + big_iters));
  RunReport r = rt.report();
  EXPECT_EQ(r.rtm.fallbacks, static_cast<uint64_t>(big_iters));
  EXPECT_EQ(r.stm.commits, static_cast<uint64_t>(big_iters));
  // Per-site stats survive the hybrid path: all fallbacks belong to site 2.
  EXPECT_EQ(r.site_stats(1).fallbacks, 0u);
  EXPECT_EQ(r.site_stats(2).fallbacks, static_cast<uint64_t>(big_iters));
}

TEST(Hybrid, OracleWorkloadsSerializableAndDigestMatchesLock) {
  tsx::check::OracleConfig ocfg;
  ocfg.threads = 4;
  ocfg.loops = 24;
  ocfg.check_history = true;  // includes the STM-fallback seal point
  for (const char* w : {"eigen-inc", "rbtree", "queue"}) {
    auto hybrid = tsx::check::run_workload(w, Backend::kHybrid, ocfg);
    ASSERT_TRUE(hybrid.ok) << w << ": " << hybrid.error;
    auto lock = tsx::check::run_workload(w, Backend::kLock, ocfg);
    ASSERT_TRUE(lock.ok) << w << ": " << lock.error;
    if (hybrid.comparable && lock.comparable) {
      EXPECT_EQ(hybrid.digest, lock.digest) << w;
    }
  }
}

}  // namespace
