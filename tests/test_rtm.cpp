#include <gtest/gtest.h>

#include "htm/rtm.h"
#include "sim/machine.h"

namespace {

using namespace tsx::sim;
using namespace tsx::htm;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

constexpr Addr kLockBase = 0x10000;
constexpr Addr kData = 0x20000;

TEST(Attempt, CommitPath) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  m.set_thread(0, [&] {
    AttemptResult r = attempt(m, [&] { m.store(kData, 3); });
    EXPECT_TRUE(r.committed);
    EXPECT_EQ(r.status, xstatus::kStarted);
    EXPECT_GT(r.cycles, 0u);
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 3u);
}

TEST(Attempt, AbortReportsStatus) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  m.set_thread(0, [&] {
    AttemptResult r = attempt(m, [&] {
      m.store(kData, 9);
      m.tx_abort(0x7);
    });
    EXPECT_FALSE(r.committed);
    EXPECT_EQ(r.reason, AbortReason::kExplicit);
    EXPECT_EQ(xstatus::unpack_code(r.status), 0x7);
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 0u);
}

TEST(RtmExecutor, SingleThreadCommits) {
  Machine m(quiet(), 1);
  m.prefault(kData, 4096);
  RtmExecutor ex(m, kLockBase);
  m.prefault(kLockBase, 4096);
  ex.init();
  m.set_thread(0, [&] {
    for (int i = 0; i < 10; ++i) {
      ex.execute([&] {
        Word v = m.load(kData);
        m.store(kData, v + 1);
      });
    }
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 10u);
  RtmStats s = ex.stats();
  EXPECT_EQ(s.transactions, 10u);
  EXPECT_EQ(s.commits, 10u);
  EXPECT_EQ(s.fallbacks, 0u);
  EXPECT_EQ(s.aborts(), 0u);
}

TEST(RtmExecutor, ContendedCounterIsAtomic) {
  Machine m(quiet(), 4);
  m.prefault(kData, 4096);
  m.prefault(kLockBase, 4096);
  RtmExecutor ex(m, kLockBase);
  ex.init();
  const int iters = 300;
  for (CtxId t = 0; t < 4; ++t) {
    m.set_thread(t, [&] {
      for (int i = 0; i < iters; ++i) {
        ex.execute([&] {
          Word v = m.load(kData);
          m.compute(30);
          m.store(kData, v + 1);
        });
      }
    });
  }
  m.run();
  EXPECT_EQ(m.peek(kData), 4u * iters);
  RtmStats s = ex.stats();
  EXPECT_EQ(s.transactions, 4u * iters);
  EXPECT_GT(s.aborts(), 0u);  // contention must have caused conflicts
}

TEST(RtmExecutor, CapacityOverflowFallsBackAndCompletes) {
  Machine m(quiet(), 1);
  RtmExecutor ex(m, kLockBase);
  m.prefault(kLockBase, 4096);
  m.prefault(kData, 1024 * 1024);
  ex.init();
  m.set_thread(0, [&] {
    ex.execute([&] {
      for (int i = 0; i < 1000; ++i) {  // way past 512-line write capacity
        m.store(kData + static_cast<Addr>(i) * 64, i);
      }
    });
  });
  m.run();
  // Completed via fallback, exactly once.
  RtmStats s = ex.stats();
  EXPECT_EQ(s.transactions, 1u);
  EXPECT_EQ(s.fallbacks, 1u);
  EXPECT_GT(s.aborts_by_class[size_t(AbortClass::kWriteCapacity)], 0u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.peek(kData + static_cast<Addr>(i) * 64), static_cast<Word>(i));
  }
}

TEST(RtmExecutor, FallbackSerializesAgainstTransactions) {
  // Thread 0 repeatedly overflows capacity (always fallback); thread 1 runs
  // small transactions. The shared counter must stay exact.
  Machine m(quiet(), 2);
  m.prefault(kLockBase, 4096);
  m.prefault(kData, 1024 * 1024);
  RtmExecutor ex(m, kLockBase, tsx::core::RetryPolicy{.max_attempts = 2});
  ex.init();
  m.set_thread(0, [&] {
    for (int r = 0; r < 5; ++r) {
      ex.execute([&] {
        Word v = m.load(kData);
        for (int i = 1; i < 700; ++i) {
          m.store(kData + static_cast<Addr>(i) * 64, v);
        }
        m.store(kData, v + 1);
      });
    }
  });
  m.set_thread(1, [&] {
    for (int i = 0; i < 200; ++i) {
      ex.execute([&] {
        Word v = m.load(kData);
        m.compute(10);
        m.store(kData, v + 1);
      });
    }
  });
  m.run();
  EXPECT_EQ(m.peek(kData), 205u);
  // Thread 1 must have seen lock aborts from thread 0's fallbacks.
  EXPECT_GT(ex.stats().aborts_by_class[size_t(AbortClass::kLock)], 0u);
}

TEST(RtmExecutor, SiteStatsSeparate) {
  Machine m(quiet(), 1);
  m.prefault(kLockBase, 4096);
  m.prefault(kData, 4096);
  RtmExecutor ex(m, kLockBase);
  ex.init();
  m.set_thread(0, [&] {
    ex.execute([&] { m.store(kData, 1); }, /*site=*/1);
    ex.execute([&] { m.store(kData, 2); }, /*site=*/1);
    ex.execute([&] { m.store(kData, 3); }, /*site=*/2);
  });
  m.run();
  EXPECT_EQ(ex.site_stats(1).transactions, 2u);
  EXPECT_EQ(ex.site_stats(2).transactions, 1u);
  EXPECT_EQ(ex.site_stats(99).transactions, 0u);
}

TEST(RtmExecutor, ClassifyLockAborts) {
  AttemptResult r;
  r.reason = AbortReason::kExplicit;
  r.status = xstatus::kExplicit | xstatus::pack_code(kAbortCodeLockBusy);
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kLock);

  r.reason = AbortReason::kConflict;
  r.status = xstatus::kConflict;
  r.conflict_line = 123;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kLock);
  r.conflict_line = 124;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kConflictOrReadCap);

  r.reason = AbortReason::kReadCapacity;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kConflictOrReadCap);
  r.reason = AbortReason::kWriteCapacity;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kWriteCapacity);
  r.reason = AbortReason::kPageFault;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kMisc3);
  r.reason = AbortReason::kInterrupt;
  EXPECT_EQ(RtmExecutor::classify(r, 123), AbortClass::kMisc5);
}

TEST(RtmExecutor, MiscBucketsMatchIntelMapping) {
  // Capacity aborts land in MISC2, the dedicated capacity counter — NOT
  // MISC1, even though a read-capacity abort's *status word* raises the
  // CONFLICT bit. tests/test_types_misc.cpp holds the exhaustive mapping.
  using tsx::sim::MiscBucket;
  EXPECT_EQ(misc_bucket_for(AbortReason::kConflict), MiscBucket::kMisc1);
  EXPECT_EQ(misc_bucket_for(AbortReason::kReadCapacity), MiscBucket::kMisc2);
  EXPECT_EQ(misc_bucket_for(AbortReason::kWriteCapacity), MiscBucket::kMisc2);
  EXPECT_EQ(misc_bucket_for(AbortReason::kExplicit), MiscBucket::kMisc3);
  EXPECT_EQ(misc_bucket_for(AbortReason::kPageFault), MiscBucket::kMisc3);
  EXPECT_EQ(misc_bucket_for(AbortReason::kInterrupt), MiscBucket::kMisc5);
}

}  // namespace
