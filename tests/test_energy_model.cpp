// Unit tests for the RAPL-like package-energy model (sim/energy_model.h):
// the dynamic / core-active / package-idle decomposition, the package-vs-
// core power split, and degenerate zero-cycle inputs.

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "sim/energy_model.h"

namespace {

using tsx::sim::EnergyBreakdown;
using tsx::sim::EnergyModel;
using tsx::sim::EnergyParams;

constexpr double kFreqGhz = 3.4;
constexpr double kFreqHz = kFreqGhz * 1e9;

TEST(EnergyModel, DynamicTermIsExactEventAccounting) {
  EnergyParams p;
  EnergyModel em(p, kFreqGhz);
  EnergyBreakdown e = em.compute(/*ops=*/1000, /*l1=*/500, /*l2=*/100,
                                 /*l3=*/10, /*mem=*/5, /*coherence=*/7,
                                 /*writebacks=*/3, /*core_busy=*/0,
                                 /*wall=*/0);
  double expected_nj = 1000 * p.nj_per_op + 500 * p.nj_per_l1 +
                       100 * p.nj_per_l2 + 10 * p.nj_per_l3 +
                       5 * p.nj_per_mem + 7 * p.nj_per_coherence +
                       3 * p.nj_per_writeback;
  EXPECT_DOUBLE_EQ(e.dynamic_j, 1e-9 * expected_nj);
  EXPECT_DOUBLE_EQ(e.core_active_j, 0.0);
  EXPECT_DOUBLE_EQ(e.package_idle_j, 0.0);
  EXPECT_DOUBLE_EQ(e.total_j(), e.dynamic_j);
}

TEST(EnergyModel, ZeroCycleRunCostsNothing) {
  EnergyModel em(EnergyParams{}, kFreqGhz);
  EnergyBreakdown e = em.compute(0, 0, 0, 0, 0, 0, 0, 0.0, 0);
  EXPECT_DOUBLE_EQ(e.dynamic_j, 0.0);
  EXPECT_DOUBLE_EQ(e.core_active_j, 0.0);
  EXPECT_DOUBLE_EQ(e.package_idle_j, 0.0);
  EXPECT_DOUBLE_EQ(e.total_j(), 0.0);
  EXPECT_FALSE(std::isnan(e.total_j()));
}

TEST(EnergyModel, PackagePowerAccruesOverWallTimeEvenWhenIdle) {
  // RAPL package energy keeps integrating static + uncore power while the
  // cores sleep: a run with zero busy cycles still pays w_package_idle.
  EnergyParams p;
  EnergyModel em(p, kFreqGhz);
  tsx::sim::Cycles wall = static_cast<tsx::sim::Cycles>(kFreqHz);  // 1 s
  EnergyBreakdown e = em.compute(0, 0, 0, 0, 0, 0, 0, /*core_busy=*/0.0, wall);
  EXPECT_NEAR(e.package_idle_j, p.w_package_idle, 1e-9);
  EXPECT_DOUBLE_EQ(e.core_active_j, 0.0);
  EXPECT_NEAR(e.total_j(), p.w_package_idle, 1e-9);
}

TEST(EnergyModel, CorePowerScalesWithBusyCyclesNotWallTime) {
  EnergyParams p;
  EnergyModel em(p, kFreqGhz);
  tsx::sim::Cycles wall = static_cast<tsx::sim::Cycles>(kFreqHz);  // 1 s

  // One core busy the whole second vs four cores busy the whole second:
  // package-idle identical, core-active 4x.
  EnergyBreakdown one = em.compute(0, 0, 0, 0, 0, 0, 0, kFreqHz, wall);
  EnergyBreakdown four = em.compute(0, 0, 0, 0, 0, 0, 0, 4 * kFreqHz, wall);
  EXPECT_DOUBLE_EQ(one.package_idle_j, four.package_idle_j);
  EXPECT_NEAR(one.core_active_j, p.w_core_active, 1e-9);
  EXPECT_NEAR(four.core_active_j, 4 * p.w_core_active, 1e-9);

  // Halving utilization at fixed wall time halves only the core term.
  EnergyBreakdown half = em.compute(0, 0, 0, 0, 0, 0, 0, kFreqHz / 2, wall);
  EXPECT_NEAR(half.core_active_j, one.core_active_j / 2, 1e-9);
  EXPECT_DOUBLE_EQ(half.package_idle_j, one.package_idle_j);
}

TEST(EnergyModel, SecondsConversionUsesConfiguredFrequency) {
  EnergyModel em(EnergyParams{}, 2.0);
  EXPECT_DOUBLE_EQ(em.seconds(2'000'000'000ull), 1.0);
  EXPECT_DOUBLE_EQ(em.seconds(0), 0.0);
}

TEST(EnergyModel, RunReportEnergyIsConsistentWithModel) {
  // End-to-end: a real (tiny) run's RunReport energy must decompose into
  // the same terms the model computes from the report's own counters.
  tsx::core::RunConfig cfg;
  cfg.backend = tsx::core::Backend::kLock;
  cfg.threads = 2;
  tsx::core::TxRuntime rt(cfg);
  tsx::sim::Addr a = rt.heap().host_alloc(64, 64);
  rt.run([&](tsx::core::TxCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.transaction([&] { ctx.store(a, ctx.load(a) + 1); });
    }
  });
  tsx::core::RunReport r = rt.report();

  ASSERT_GT(r.wall_cycles, 0u);
  EXPECT_GT(r.energy.dynamic_j, 0.0);
  EXPECT_GT(r.energy.core_active_j, 0.0);
  EXPECT_GT(r.energy.package_idle_j, 0.0);

  EnergyModel em(cfg.machine.energy, cfg.machine.freq_ghz);
  const tsx::sim::MemStats& ms = r.machine.mem;
  EnergyBreakdown want = em.compute(
      r.machine.ops, ms.l1_accesses(), ms.l2_accesses(), ms.l3_accesses(),
      ms.mem_accesses, ms.invalidations + ms.c2c_transfers, ms.writebacks,
      r.machine.core_busy_cycles, r.wall_cycles);
  EXPECT_DOUBLE_EQ(r.energy.total_j(), want.total_j());
  // The measured region is the whole run, so package-idle power integrates
  // over exactly wall_cycles.
  EXPECT_NEAR(r.energy.package_idle_j,
              cfg.machine.energy.w_package_idle * em.seconds(r.wall_cycles),
              1e-12);
}

}  // namespace
