#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.h"

namespace {

using tsx::sim::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng r(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ReseedReproduces) {
  Rng r(23);
  uint64_t first = r.next();
  r.next();
  r.reseed(23);
  EXPECT_EQ(r.next(), first);
}

}  // namespace
