// Property-based tests over randomized workloads: atomicity (counts
// conserved), isolation (paired-cell invariant never observed broken),
// snapshot consistency, and determinism of the whole stack. Parameterized
// over backend x threads x seed.

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "sim/rng.h"

namespace {

using namespace tsx;
using core::Backend;
using sim::Addr;
using sim::Word;

core::RunConfig cfg_for(Backend b, uint32_t threads, uint64_t seed,
                        bool interrupts = false) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.seed = seed;
  cfg.machine.seed = seed;
  cfg.machine.interrupts_enabled = interrupts;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

using Param = std::tuple<Backend, uint32_t, uint64_t>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(core::backend_name(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param)) + "t_s" +
         std::to_string(std::get<2>(info.param));
}

class RandomWorkload : public ::testing::TestWithParam<Param> {};

TEST_P(RandomWorkload, IncrementsConservedAndPairsNeverTorn) {
  auto [backend, threads, seed] = GetParam();
  core::TxRuntime rt(cfg_for(backend, threads, seed));
  constexpr uint32_t kCells = 64;  // pairs: cell i and i + kCells stay equal
  Addr base = rt.heap().host_alloc(2 * kCells * 8, 64);

  std::vector<uint64_t> increments(threads, 0);
  std::vector<bool> torn(threads, false);

  rt.run([&](core::TxCtx& ctx) {
    sim::Rng& rng = ctx.rng();
    for (int i = 0; i < 150; ++i) {
      uint64_t c = rng.below(kCells);
      uint64_t mode = rng.below(3);
      bool did_inc = false;
      ctx.transaction([&] {
        did_inc = false;
        Addr a = base + c * 8;
        Addr b = base + (kCells + c) * 8;
        Word va = ctx.load(a);
        if (mode == 2) ctx.compute(60);  // widen the window
        Word vb = ctx.load(b);
        if (va != vb) {
          torn[ctx.id()] = true;  // isolation broken
          return;
        }
        if (mode != 1) {
          ctx.store(a, va + 1);
          ctx.store(b, vb + 1);
          did_inc = true;
        }
      });
      if (did_inc) ++increments[ctx.id()];
    }
  });

  for (uint32_t t = 0; t < threads; ++t) {
    EXPECT_FALSE(torn[t]) << "thread " << t << " observed a torn pair";
  }
  uint64_t total = 0;
  for (uint64_t i : increments) total += i;
  uint64_t sum_a = 0, sum_b = 0;
  for (uint32_t c = 0; c < kCells; ++c) {
    sum_a += rt.machine().peek(base + c * 8);
    sum_b += rt.machine().peek(base + (kCells + c) * 8);
  }
  EXPECT_EQ(sum_a, total);
  EXPECT_EQ(sum_b, total);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RandomWorkload,
    ::testing::Combine(::testing::Values(Backend::kLock, Backend::kRtm,
                                         Backend::kTinyStm, Backend::kTl2),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(11u, 22u, 33u)),
    param_name);

// The same property must hold with interrupts enabled (asynchronous aborts
// mid-transaction) and with the mutual-kill conflict policy.
class HostileWorkload : public ::testing::TestWithParam<Backend> {};

TEST_P(HostileWorkload, ConservationUnderInterruptsAndMutualKill) {
  core::RunConfig cfg = cfg_for(GetParam(), 4, 77, /*interrupts=*/true);
  cfg.machine.interrupt_mean_cycles = 30'000;  // hostile interrupt rate
  cfg.machine.mutual_kill_conflicts = true;
  core::TxRuntime rt(cfg);
  Addr counter = rt.heap().host_alloc(8, 64);
  rt.run([&](core::TxCtx& ctx) {
    for (int i = 0; i < 150; ++i) {
      ctx.transaction([&] {
        Word v = ctx.load(counter);
        ctx.compute(100);
        ctx.store(counter, v + 1);
      });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), 600u);
}

INSTANTIATE_TEST_SUITE_P(Backends, HostileWorkload,
                         ::testing::Values(Backend::kRtm, Backend::kTinyStm,
                                           Backend::kTl2),
                         [](const auto& info) {
                           return core::backend_name(info.param);
                         });

TEST(Determinism, FullStackBitIdenticalAcrossRuns) {
  auto run_once = [] {
    core::TxRuntime rt(cfg_for(Backend::kRtm, 4, 123, /*interrupts=*/true));
    Addr data = rt.heap().host_alloc(4096, 64);
    rt.run([&](core::TxCtx& ctx) {
      sim::Rng& rng = ctx.rng();
      for (int i = 0; i < 200; ++i) {
        uint64_t c = rng.below(512);
        ctx.transaction([&] {
          Word v = ctx.load(data + c * 8);
          ctx.store(data + c * 8, v * 3 + 1);
        });
      }
    });
    auto r = rt.report();
    uint64_t checksum = 0;
    for (int c = 0; c < 512; ++c) checksum ^= rt.machine().peek(data + c * 8) * (c + 1);
    return std::tuple(r.wall_cycles, r.rtm.attempts, r.rtm.aborts(), checksum,
                      r.machine.interrupts);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, SeedChangesOutcome) {
  auto run_with = [](uint64_t seed) {
    core::TxRuntime rt(cfg_for(Backend::kRtm, 4, seed, true));
    Addr data = rt.heap().host_alloc(4096, 64);
    rt.run([&](core::TxCtx& ctx) {
      sim::Rng& rng = ctx.rng();
      for (int i = 0; i < 100; ++i) {
        uint64_t c = rng.below(512);
        ctx.transaction([&] {
          ctx.store(data + c * 8, ctx.load(data + c * 8) + 1);
        });
      }
    });
    return rt.report().wall_cycles;
  };
  EXPECT_NE(run_with(1), run_with(2));
}

TEST(EnergyModel, ComponentsAddUp) {
  sim::EnergyParams p;
  sim::EnergyModel em(p, 3.4);
  auto e = em.compute(1000, 800, 100, 50, 10, 5, 3, 1e6, 2'000'000);
  EXPECT_GT(e.dynamic_j, 0);
  EXPECT_GT(e.core_active_j, 0);
  EXPECT_GT(e.package_idle_j, 0);
  EXPECT_NEAR(e.total_j(), e.dynamic_j + e.core_active_j + e.package_idle_j,
              1e-12);
  // Idle power: 14 W for 2e6 cycles at 3.4 GHz.
  EXPECT_NEAR(e.package_idle_j, 14.0 * 2e6 / 3.4e9, 1e-9);
  EXPECT_NEAR(em.seconds(3'400'000'000ull), 1.0, 1e-9);
}

TEST(EnergyModel, AbortedWorkCostsEnergy) {
  // Same committed work, one run with forced extra aborted attempts: the
  // aborting run must burn more energy.
  auto run_with_aborts = [](bool force_aborts) {
    core::RunConfig cfg = cfg_for(Backend::kRtm, 2, 5);
    cfg.retry.max_attempts = 4;
    core::TxRuntime rt(cfg);
    Addr data = rt.heap().host_alloc(8, 64);
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < 100; ++i) {
        int attempt = 0;
        ctx.transaction([&] {
          Word v = ctx.load(data);
          ctx.compute(200);
          ctx.store(data, v + 1);
          if (force_aborts && ++attempt <= 2 && !ctx.in_rtm_fallback()) {
            ctx.runtime().machine().tx_abort(0x9);
          }
        });
      }
    });
    return rt.report().joules();
  };
  EXPECT_GT(run_with_aborts(true), run_with_aborts(false));
}

}  // namespace
