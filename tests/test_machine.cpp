#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace {

using namespace tsx::sim;

MachineConfig quiet() {
  MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

TEST(Machine, SingleThreadLoadStore) {
  Machine m(quiet(), 1);
  m.prefault(0x1000, 4096);
  m.set_thread(0, [&] {
    m.store(0x1000, 7);
    EXPECT_EQ(m.load(0x1000), 7u);
    EXPECT_EQ(m.load(0x1008), 0u);
  });
  m.run();
  EXPECT_EQ(m.peek(0x1000), 7u);
  EXPECT_GT(m.wall(), 0u);
}

TEST(Machine, OpsOutsideFiberThrow) {
  Machine m(quiet(), 1);
  EXPECT_THROW(m.load(0x1000), std::logic_error);
  EXPECT_THROW(m.compute(10), std::logic_error);
}

TEST(Machine, DeterministicInterleaving) {
  auto run_once = [] {
    Machine m(quiet(), 4);
    m.prefault(0x1000, 4096);
    for (CtxId t = 0; t < 4; ++t) {
      m.set_thread(t, [&m, t] {
        for (int i = 0; i < 100; ++i) {
          Word v = m.load(0x1000);
          m.compute(t * 3 + 1);
          m.store(0x1000, v + 1);
        }
      });
    }
    m.run();
    return std::pair(m.peek(0x1000), m.wall());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);  // identical final value AND identical timing
}

TEST(Machine, PageFaultCostOncePerPage) {
  Machine m(quiet(), 1);
  Cycles first = 0, second = 0;
  m.set_thread(0, [&] {
    Cycles t0 = m.now();
    m.load(0x5000);
    first = m.now() - t0;
    t0 = m.now();
    m.load(0x5008);
    second = m.now() - t0;
  });
  m.run();
  MachineConfig cfg = quiet();
  EXPECT_GE(first, cfg.page_fault_cycles);
  EXPECT_LT(second, cfg.page_fault_cycles);
  EXPECT_EQ(m.stats().mem.page_faults, 1u);
}

TEST(Machine, TxCommitMakesWritesDurable) {
  Machine m(quiet(), 1);
  m.prefault(0x1000, 4096);
  m.set_thread(0, [&] {
    m.tx_begin();
    m.store(0x1000, 99);
    EXPECT_TRUE(m.in_tx());
    m.tx_commit();
    EXPECT_FALSE(m.in_tx());
  });
  m.run();
  EXPECT_EQ(m.peek(0x1000), 99u);
  EXPECT_EQ(m.stats().tx.committed, 1u);
  EXPECT_EQ(m.stats().tx.started, 1u);
}

TEST(Machine, ExplicitAbortRollsBack) {
  Machine m(quiet(), 1);
  m.prefault(0x1000, 4096);
  m.set_thread(0, [&] {
    m.poke(0x1000, 5);
    try {
      m.tx_begin();
      m.store(0x1000, 123);
      m.tx_abort(0x42);
      FAIL() << "tx_abort must throw";
    } catch (const TxAborted& a) {
      EXPECT_EQ(a.reason, AbortReason::kExplicit);
      EXPECT_TRUE(a.status & xstatus::kExplicit);
      EXPECT_EQ(xstatus::unpack_code(a.status), 0x42);
    }
    EXPECT_FALSE(m.in_tx());
  });
  m.run();
  EXPECT_EQ(m.peek(0x1000), 5u);  // speculative store undone
  EXPECT_EQ(m.stats().tx.aborts_by_reason[size_t(AbortReason::kExplicit)], 1u);
}

TEST(Machine, ConflictAbortsOtherTx) {
  Machine m(quiet(), 2);
  m.prefault(0x1000, 4096);
  bool aborted = false;
  m.set_thread(0, [&] {
    try {
      m.tx_begin();
      m.load(0x1000);
      // Spin long enough for thread 1's write to land.
      for (int i = 0; i < 100; ++i) m.compute(100);
      m.tx_commit();
    } catch (const TxAborted& a) {
      aborted = true;
      EXPECT_EQ(a.reason, AbortReason::kConflict);
      EXPECT_TRUE(a.status & xstatus::kConflict);
      EXPECT_EQ(a.conflict_line, line_of(0x1000));
    }
  });
  m.set_thread(1, [&] {
    m.compute(500);
    m.store(0x1000, 1);
  });
  m.run();
  EXPECT_TRUE(aborted);
}

TEST(Machine, WriteCapacityAbort) {
  Machine m(quiet(), 1);
  m.prefault(0x100000, 16 * 1024 * 1024);
  bool aborted = false;
  m.set_thread(0, [&] {
    try {
      m.tx_begin();
      // 600 distinct lines written: beyond the 512-line L1.
      for (int i = 0; i < 600; ++i) {
        m.store(0x100000 + static_cast<Addr>(i) * 64, 1);
      }
      m.tx_commit();
    } catch (const TxAborted& a) {
      aborted = true;
      EXPECT_EQ(a.reason, AbortReason::kWriteCapacity);
      EXPECT_TRUE(a.status & xstatus::kCapacity);
    }
  });
  m.run();
  EXPECT_TRUE(aborted);
  // Everything rolled back.
  for (int i = 0; i < 600; ++i) {
    EXPECT_EQ(m.peek(0x100000 + static_cast<Addr>(i) * 64), 0u);
  }
}

TEST(Machine, PageFaultInsideTxAbortsAndDoesNotService) {
  Machine m(quiet(), 1);
  bool aborted = false;
  m.set_thread(0, [&] {
    try {
      m.tx_begin();
      m.load(0x9000);  // absent page
      m.tx_commit();
    } catch (const TxAborted& a) {
      aborted = true;
      EXPECT_EQ(a.reason, AbortReason::kPageFault);
    }
    // Outside the tx the fault services normally.
    m.load(0x9000);
  });
  m.run();
  EXPECT_TRUE(aborted);
  EXPECT_EQ(m.stats().mem.page_faults, 1u);  // only the non-tx access
}

TEST(Machine, InterruptsAbortLongTransactions) {
  MachineConfig cfg;
  cfg.interrupt_mean_cycles = 50'000;  // frequent for the test
  Machine m(cfg, 1);
  m.prefault(0x1000, 4096);
  int aborts = 0, commits = 0;
  m.set_thread(0, [&] {
    for (int t = 0; t < 50; ++t) {
      try {
        m.tx_begin();
        for (int i = 0; i < 100; ++i) m.compute(1000);  // ~100K cycles
        m.tx_commit();
        ++commits;
      } catch (const TxAborted& a) {
        EXPECT_EQ(a.reason, AbortReason::kInterrupt);
        ++aborts;
      }
    }
  });
  m.run();
  EXPECT_GT(aborts, 10);  // ~87% abort probability per tx
}

TEST(Machine, UnsupportedInsnAbortsTx) {
  Machine m(quiet(), 1);
  bool aborted = false;
  m.set_thread(0, [&] {
    try {
      m.tx_begin();
      m.tx_unsupported_insn();
      m.tx_commit();
    } catch (const TxAborted& a) {
      aborted = true;
      EXPECT_EQ(a.reason, AbortReason::kUnsupportedInsn);
    }
    m.tx_unsupported_insn();  // no-op outside tx
  });
  m.run();
  EXPECT_TRUE(aborted);
}

TEST(Machine, NestedTxFlattens) {
  Machine m(quiet(), 1);
  m.prefault(0x1000, 4096);
  m.set_thread(0, [&] {
    m.tx_begin();
    m.tx_begin();
    m.store(0x1000, 1);
    m.tx_commit();
    EXPECT_TRUE(m.in_tx());  // still inside the outer tx
    m.tx_commit();
    EXPECT_FALSE(m.in_tx());
  });
  m.run();
  EXPECT_EQ(m.stats().tx.started, 1u);
  EXPECT_EQ(m.stats().tx.committed, 1u);
}

TEST(Machine, BarrierSynchronizesClocks) {
  Machine m(quiet(), 2);
  Cycles after0 = 0, after1 = 0;
  m.set_thread(0, [&] {
    m.compute(10'000);
    m.barrier();
    after0 = m.now();
  });
  m.set_thread(1, [&] {
    m.compute(10);
    m.barrier();
    after1 = m.now();
  });
  m.run();
  EXPECT_EQ(after0, after1);
  EXPECT_GE(after0, 10'000u);
}

TEST(Machine, CasSucceedsAndFails) {
  Machine m(quiet(), 1);
  m.prefault(0x1000, 4096);
  m.set_thread(0, [&] {
    m.store(0x1000, 5);
    EXPECT_TRUE(m.cas(0x1000, 5, 6));
    EXPECT_FALSE(m.cas(0x1000, 5, 7));
    EXPECT_EQ(m.load(0x1000), 6u);
    EXPECT_EQ(m.fetch_add(0x1000, 10), 6u);
    EXPECT_EQ(m.load(0x1000), 16u);
    EXPECT_EQ(m.swap(0x1000, 1), 16u);
  });
  m.run();
}

TEST(Machine, WorkloadExceptionPropagatesFromRun) {
  Machine m(quiet(), 1);
  m.set_thread(0, [] { throw std::runtime_error("workload bug"); });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, CommitOutsideTxThrows) {
  Machine m(quiet(), 1);
  m.set_thread(0, [&] { EXPECT_THROW(m.tx_commit(), std::logic_error); });
  m.run();
}

TEST(Machine, SmtSlowsComputePerCore) {
  // 8 threads on 4 cores: compute is scaled by smt_slowdown.
  MachineConfig cfg = quiet();
  Machine m4(cfg, 4), m8(cfg, 8);
  Cycles t4 = 0, t8 = 0;
  for (CtxId t = 0; t < 4; ++t) {
    m4.set_thread(t, [&m4, &t4] {
      m4.compute(10'000);
      t4 = std::max(t4, m4.now());
    });
  }
  for (CtxId t = 0; t < 8; ++t) {
    m8.set_thread(t, [&m8, &t8] {
      m8.compute(10'000);
      t8 = std::max(t8, m8.now());
    });
  }
  m4.run();
  m8.run();
  EXPECT_GT(t8, t4);
  EXPECT_NEAR(static_cast<double>(t8) / static_cast<double>(t4),
              cfg.smt_slowdown, 0.05);
}

// The fast/general-path equivalence contract (DESIGN.md §10): with
// disable_fast_paths flipped, an identical workload must produce identical
// stats, clocks, and memory — op for op.
struct EquivResult {
  MachineStats stats;
  Cycles wall = 0;
  std::vector<Cycles> finish;
  std::vector<Word> values;
};

EquivResult run_equiv_workload(bool disable_fast, bool interrupts) {
  MachineConfig cfg;
  cfg.interrupts_enabled = interrupts;
  cfg.interrupt_mean_cycles = 20'000;  // several per run at this length
  cfg.disable_fast_paths = disable_fast;
  constexpr uint32_t kThreads = 4;
  Machine m(cfg, kThreads);
  m.prefault(0x1000, 4096);
  // 0x900000 left unfaulted: the first touches exercise the page-fault path.
  for (CtxId t = 0; t < kThreads; ++t) {
    m.set_thread(t, [&m, t] {
      Addr priv = 0x1000 + t * 512;
      Addr shared = 0x1000;
      Addr cold = 0x900000 + t * 8192;
      for (int i = 0; i < 400; ++i) {
        m.store(priv, m.load(priv) + 1);
        m.compute(5);
        if (i % 7 == 0) m.fetch_add(shared, 1);
        if (i % 11 == 0) m.cas(priv + 8, m.load(priv + 8), i);
        if (i % 31 == 0) m.load(cold + i * 8);
        if (i % 13 == 0) {
          try {
            m.tx_begin();
            m.store(priv + 16, m.load(priv + 16) + 1);
            m.load(shared + 64 + (t % 2) * 64);
            m.tx_commit();
          } catch (const TxAborted&) {
            // aborted attempts count too; no retry needed for equivalence
          }
        }
        if (i == 200) m.barrier();
      }
    });
  }
  m.run();
  EquivResult r;
  r.stats = m.snapshot();
  r.wall = m.wall();
  for (CtxId t = 0; t < kThreads; ++t) {
    r.finish.push_back(m.ctx_finish(t));
    r.values.push_back(m.peek(0x1000 + t * 512));
    r.values.push_back(m.peek(0x1000 + t * 512 + 16));
  }
  r.values.push_back(m.peek(0x1000));
  return r;
}

void expect_equiv(const EquivResult& fast, const EquivResult& slow) {
  EXPECT_EQ(fast.stats.ops, slow.stats.ops);
  EXPECT_EQ(fast.stats.interrupts, slow.stats.interrupts);
  EXPECT_EQ(fast.stats.mem.loads, slow.stats.mem.loads);
  EXPECT_EQ(fast.stats.mem.stores, slow.stats.mem.stores);
  EXPECT_EQ(fast.stats.mem.l1_hits, slow.stats.mem.l1_hits);
  EXPECT_EQ(fast.stats.mem.l2_hits, slow.stats.mem.l2_hits);
  EXPECT_EQ(fast.stats.mem.l3_hits, slow.stats.mem.l3_hits);
  EXPECT_EQ(fast.stats.mem.mem_accesses, slow.stats.mem.mem_accesses);
  EXPECT_EQ(fast.stats.mem.c2c_transfers, slow.stats.mem.c2c_transfers);
  EXPECT_EQ(fast.stats.mem.invalidations, slow.stats.mem.invalidations);
  EXPECT_EQ(fast.stats.mem.writebacks, slow.stats.mem.writebacks);
  EXPECT_EQ(fast.stats.mem.page_faults, slow.stats.mem.page_faults);
  EXPECT_EQ(fast.stats.tx.started, slow.stats.tx.started);
  EXPECT_EQ(fast.stats.tx.committed, slow.stats.tx.committed);
  EXPECT_EQ(fast.stats.tx.aborts_by_reason, slow.stats.tx.aborts_by_reason);
  EXPECT_EQ(fast.wall, slow.wall);
  EXPECT_EQ(fast.finish, slow.finish);
  EXPECT_EQ(fast.values, slow.values);
}

TEST(Machine, FastPathEquivalenceQuiet) {
  expect_equiv(run_equiv_workload(/*disable_fast=*/false, /*interrupts=*/false),
               run_equiv_workload(/*disable_fast=*/true, /*interrupts=*/false));
}

TEST(Machine, FastPathEquivalenceWithInterrupts) {
  expect_equiv(run_equiv_workload(/*disable_fast=*/false, /*interrupts=*/true),
               run_equiv_workload(/*disable_fast=*/true, /*interrupts=*/true));
}

}  // namespace
