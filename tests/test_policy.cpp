// The core::RetryPolicy seam: attempt budget, backoff shape and
// lock-subscription mode, exercised both directly and through the public
// TxExecutor interface (TxRuntime with a kRtm backend).

#include <gtest/gtest.h>

#include "core/retry_policy.h"
#include "core/runtime.h"

namespace {

using namespace tsx::core;
using tsx::sim::Addr;
using tsx::sim::Word;

RunConfig make_cfg(Backend b, uint32_t threads) {
  RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;  // fast init in tests
  return cfg;
}

// ---- The policy object itself ----

TEST(RetryPolicy, BudgetExhaustion) {
  RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_FALSE(p.unbounded());
  EXPECT_FALSE(p.exhausted(0));
  EXPECT_FALSE(p.exhausted(2));
  EXPECT_TRUE(p.exhausted(3));
  EXPECT_TRUE(p.exhausted(100));

  p.max_attempts = 0;  // unbounded: no fallback, retry forever
  EXPECT_TRUE(p.unbounded());
  EXPECT_FALSE(p.exhausted(1u << 30));
}

TEST(RetryPolicy, NoBackoffReturnsZeroAndDrawsNoRandomness) {
  RetryPolicy p;  // default BackoffShape::kNone
  tsx::sim::Rng used(7), untouched(7);
  for (uint32_t attempt = 1; attempt < 20; ++attempt) {
    EXPECT_EQ(p.backoff_cycles(attempt, used), 0u);
  }
  // The rng stream was not consumed — critical for schedule determinism of
  // the default policy.
  EXPECT_EQ(used.next(), untouched.next());
}

TEST(RetryPolicy, ExponentialBackoffWindowMonotoneAndCapped) {
  RetryPolicy p;
  p.backoff = BackoffShape::kExponential;
  p.backoff_base_cycles = 120;
  p.backoff_cap_shift = 6;
  tsx::sim::Rng rng(99);
  uint64_t prev_window = 0;
  for (uint32_t attempt = 1; attempt <= 12; ++attempt) {
    uint64_t shift = std::min(attempt, p.backoff_cap_shift);
    uint64_t window = static_cast<uint64_t>(p.backoff_base_cycles) << shift;
    // The window doubles per attempt until the cap, then freezes: never
    // shrinks (the monotonicity the contention manager relies on).
    EXPECT_GE(window, prev_window);
    if (attempt > p.backoff_cap_shift) {
      EXPECT_EQ(window, prev_window);
    }
    prev_window = window;
    for (int draw = 0; draw < 32; ++draw) {
      uint64_t w = p.backoff_cycles(attempt, rng);
      EXPECT_GE(w, p.backoff_base_cycles);
      EXPECT_LE(w, p.backoff_base_cycles + window);
    }
  }
}

TEST(RetryPolicy, LinearBackoffGrowsLinearly) {
  RetryPolicy p;
  p.backoff = BackoffShape::kLinear;
  p.backoff_base_cycles = 100;
  tsx::sim::Rng rng(3);
  for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
    for (int draw = 0; draw < 16; ++draw) {
      uint64_t w = p.backoff_cycles(attempt, rng);
      EXPECT_GE(w, 100u);
      EXPECT_LE(w, 100u + 100u * attempt);
    }
  }
}

TEST(RetryPolicy, ExponentialBackoffClampsShiftAtWordWidth) {
  RetryPolicy p;
  p.backoff = BackoffShape::kExponential;
  p.backoff_base_cycles = 120;
  // A knob at/beyond the word width used to shift by >= 64 (undefined
  // behavior); the window must instead saturate at kMaxBackoffWindow.
  p.backoff_cap_shift = 200;
  tsx::sim::Rng rng(5);
  for (uint32_t attempt : {63u, 64u, 65u, 1000u, ~0u}) {
    uint64_t w = p.backoff_cycles(attempt, rng);
    EXPECT_GE(w, p.backoff_base_cycles);
    EXPECT_LE(w, p.backoff_base_cycles + RetryPolicy::kMaxBackoffWindow);
  }
}

TEST(RetryPolicy, LinearBackoffClampsHugeAttemptCounts) {
  RetryPolicy p;
  p.backoff = BackoffShape::kLinear;
  p.backoff_base_cycles = ~0ull / 2;  // base * attempt would wrap
  p.backoff_cap_shift = 80;           // cap 1 << 80 would also wrap
  tsx::sim::Rng rng(6);
  for (uint32_t attempt : {1u, 100u, ~0u}) {
    uint64_t w = p.backoff_cycles(attempt, rng);
    EXPECT_GE(w, p.backoff_base_cycles);
    // base + draw stays inside uint64_t: draw is bounded by the saturated
    // window, which kMaxBackoffWindow keeps far below the wrap point... for
    // sane bases; here we only require no crash and a non-zero window.
    EXPECT_GT(w, 0u);
  }
}

TEST(RetryPolicy, ClampDoesNotChangeInRangeWindows) {
  // Two identical policies, one queried through the clamped path with the
  // same in-range knobs: the drawn values must be bit-identical (golden
  // stability of every existing configuration).
  RetryPolicy p;
  p.backoff = BackoffShape::kExponential;
  p.backoff_base_cycles = 120;
  p.backoff_cap_shift = 10;
  tsx::sim::Rng rng_a(77), rng_b(77);
  for (uint32_t attempt = 1; attempt <= 16; ++attempt) {
    uint64_t shift = std::min(attempt, p.backoff_cap_shift);
    uint64_t window = static_cast<uint64_t>(p.backoff_base_cycles) << shift;
    uint64_t expect = p.backoff_base_cycles + rng_b.below(window | 1);
    EXPECT_EQ(p.backoff_cycles(attempt, rng_a), expect);
  }
}

// ---- Through the public TxExecutor interface ----

TEST(RetryPolicySeam, BudgetExhaustionTakesFallbackAfterExactlyMaxAttempts) {
  RunConfig cfg = make_cfg(Backend::kRtm, 1);
  cfg.retry.max_attempts = 2;
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  const int txs = 5;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < txs; ++i) {
      ctx.transaction([&] {
        ctx.store(data, ctx.load(data) + 1);
        if (!ctx.in_rtm_fallback()) {
          rt.machine().tx_abort(0x1);  // doom every speculative attempt
        }
      });
    }
  });
  RunReport r = rt.report();
  EXPECT_EQ(r.rtm.transactions, static_cast<uint64_t>(txs));
  EXPECT_EQ(r.rtm.attempts, static_cast<uint64_t>(txs) * 2);  // the budget
  EXPECT_EQ(r.rtm.commits, 0u);
  EXPECT_EQ(r.rtm.fallbacks, static_cast<uint64_t>(txs));
  EXPECT_EQ(rt.machine().peek(data), static_cast<Word>(txs));
}

TEST(RetryPolicySeam, UnboundedBudgetNeverTakesFallback) {
  RunConfig cfg = make_cfg(Backend::kRtm, 1);
  cfg.retry.max_attempts = 0;  // unbounded
  TxRuntime rt(cfg);
  Addr data = rt.heap().host_alloc(8, 64);
  int aborts_left = 3;
  rt.run([&](TxCtx& ctx) {
    ctx.transaction([&] {
      ctx.store(data, ctx.load(data) + 1);
      if (aborts_left > 0) {
        --aborts_left;
        rt.machine().tx_abort(0x1);
      }
    });
  });
  RunReport r = rt.report();
  EXPECT_EQ(r.rtm.attempts, 4u);  // 3 aborted + 1 committed
  EXPECT_EQ(r.rtm.commits, 1u);
  EXPECT_EQ(r.rtm.fallbacks, 0u);
  EXPECT_EQ(rt.machine().peek(data), 1u);
}

TEST(RetryPolicySeam, ExponentialBackoffKeepsRtmCorrect) {
  RunConfig cfg = make_cfg(Backend::kRtm, 4);
  cfg.retry.backoff = BackoffShape::kExponential;
  TxRuntime rt(cfg);
  Addr counter = rt.heap().host_alloc(8, 64);
  const int iters = 150;
  rt.run([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      ctx.transaction([&] {
        Word v = ctx.load(counter);
        ctx.compute(7);
        ctx.store(counter, v + 1);
      });
    }
  });
  EXPECT_EQ(rt.machine().peek(counter), 4u * iters);
}

// One thread repeatedly overflows write capacity (guaranteed fallback) while
// another runs short increments: the subscription mode decides how the
// speculative side observes the serial sections.
class SubscriptionMode : public ::testing::TestWithParam<LockSubscription> {};

TEST_P(SubscriptionMode, FallbackHeavyWorkload) {
  LockSubscription mode = GetParam();
  RunConfig cfg = make_cfg(Backend::kRtm, 2);
  cfg.retry.max_attempts = 2;
  cfg.retry.subscription = mode;
  TxRuntime rt(cfg);
  const int kLines = 700;  // beyond hardware write capacity
  Addr big = rt.heap().host_alloc(kLines * 64, 64);
  Addr counter = rt.heap().host_alloc(8, 64);
  // Thread 1 needs enough iterations to still be issuing transactions while
  // thread 0 is inside its (long) serial sections; each overflow costs
  // thread 0 roughly max_attempts*kLines + kLines accesses.
  const int overflows = 4, iters = 2000;
  std::vector<std::function<void(TxCtx&)>> workers;
  workers.emplace_back([&](TxCtx& ctx) {
    for (int r = 0; r < overflows; ++r) {
      ctx.transaction([&] {
        for (int i = 0; i < kLines; ++i) {
          ctx.store(big + static_cast<Addr>(i) * 64, r);
        }
      });
    }
  });
  workers.emplace_back([&](TxCtx& ctx) {
    for (int i = 0; i < iters; ++i) {
      ctx.transaction(
          [&] { ctx.store(counter, ctx.load(counter) + 1); });
    }
  });
  rt.run(std::move(workers));

  RunReport r = rt.report();
  EXPECT_EQ(r.rtm.fallbacks, static_cast<uint64_t>(overflows));
  uint64_t lock_aborts =
      r.rtm.aborts_by_class[static_cast<size_t>(tsx::htm::AbortClass::kLock)];
  if (mode == LockSubscription::kNone) {
    // Nothing ever reads the lock line speculatively and nothing aborts
    // with the lock-busy code, so the lock-abort bucket must stay empty.
    // (Correctness of the counter is NOT guaranteed in this mode — that is
    // the point of the ablation — so it is not asserted.)
    EXPECT_EQ(lock_aborts, 0u);
  } else {
    // Subscribed modes keep the counter exact even with serial sections
    // interleaved.
    EXPECT_EQ(rt.machine().peek(counter), static_cast<Word>(iters));
  }
  if (mode == LockSubscription::kSubscribeInTx) {
    // In-tx subscription converts overlapping serial sections into
    // observable lock-class aborts.
    EXPECT_GT(lock_aborts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SubscriptionMode,
    ::testing::Values(LockSubscription::kSubscribeInTx,
                      LockSubscription::kWaitThenSubscribe,
                      LockSubscription::kNone),
    [](const auto& param_info) {
      switch (param_info.param) {
        case LockSubscription::kSubscribeInTx: return "SubscribeInTx";
        case LockSubscription::kWaitThenSubscribe: return "WaitThenSubscribe";
        case LockSubscription::kNone: return "None";
      }
      return "Unknown";
    });

}  // namespace
