// Fig. 8: Eigenbench predominance sweep (fraction of cycles spent inside
// transactions, 0.125 .. 0.875), 256K working set, zero contention.
//
// Paper shape: both systems' speedups decay as the transactional fraction
// grows; TinySTM decays faster because its per-access instrumentation taxes
// exactly the transactional cycles.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 8", "Eigenbench predominance sweep",
               "both decay with predominance; TinySTM decays faster "
               "(instrumentation overhead)");

  std::vector<double> predominance = {0.125, 0.25, 0.375, 0.5,
                                      0.625, 0.75, 0.875};
  if (args.fast) predominance = {0.125, 0.5, 0.875};

  std::vector<EigenTask> tasks;
  for (double p : predominance) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    eb.ws_bytes = 256 * 1024;  // paper: larger working set for this analysis
    // The 100-access transaction costs ~t_tx cycles; pick non-transactional
    // cold work so tx cycles / total cycles ~= p. Cold accesses mirror the
    // transactional mix so per-access cost is comparable.
    uint32_t tx_ops = 100;
    uint32_t out_ops = static_cast<uint32_t>(tx_ops * (1.0 - p) / p + 0.5);
    eb.reads_cold = out_ops * 9 / 10;
    eb.writes_cold = out_ops - eb.reads_cold;
    tasks.push_back({core::Backend::kRtm, 4, eb, 7000});
    tasks.push_back({core::Backend::kTinyStm, 4, eb, 7000});
  }
  std::vector<EigenPoint> points =
      eigen_points("fig08_predominance", tasks, args);

  util::Table t({"predominance", "RTM speedup", "TinySTM speedup",
                 "RTM energy-eff", "TinySTM energy-eff", "RTM aborts",
                 "TinySTM aborts"});
  for (size_t i = 0; i < predominance.size(); ++i) {
    double p = predominance[i];
    const EigenPoint& rtm = points[2 * i];
    const EigenPoint& stm = points[2 * i + 1];
    t.add_row({util::Table::fmt(p, 3), util::Table::fmt(rtm.speedup, 2),
               util::Table::fmt(stm.speedup, 2),
               util::Table::fmt(rtm.energy_eff, 2),
               util::Table::fmt(stm.energy_eff, 2),
               util::Table::fmt(rtm.abort_rate, 3),
               util::Table::fmt(stm.abort_rate, 3)});
  }
  emit(t, args);
  return 0;
}
