#pragma once
// Shared driver for the STAMP figure/table reproductions (Figs. 10-12,
// Tables IV-V): standard scaled-down inputs per app, and a runner that
// executes an app under a backend/thread-count with fixed *total* work so
// thread counts are comparable.

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "stamp/apps/bayes.h"
#include "stamp/apps/genome.h"
#include "stamp/apps/intruder.h"
#include "stamp/apps/kmeans.h"
#include "stamp/apps/labyrinth.h"
#include "stamp/apps/ssca2.h"
#include "stamp/apps/vacation.h"
#include "stamp/apps/yada.h"

namespace tsx::bench {

// The STAMP inputs are scaled ~10-100x below the paper's "recommended
// large" sets to fit simulator throughput, so the cache hierarchy is scaled
// by 1/8 to preserve the working-set : cache-capacity ratios that drive the
// paper's results (read-capacity aborts for big-working-set apps, write-set
// pressure when hyper-threads halve the effective L1). EXPERIMENTS.md
// discusses this substitution.
inline void scale_machine_for_stamp(sim::MachineConfig& m) {
  m.l1 = sim::CacheGeometry{4 * 1024, 8};     // 64-line write-set bound
  m.l2 = sim::CacheGeometry{32 * 1024, 8};
  m.l3 = sim::CacheGeometry{1024 * 1024, 16}; // 16K-line read-set bound
}

inline core::RunConfig stamp_run_cfg(core::Backend b, uint32_t threads,
                                     uint64_t seed, bool fast) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  scale_machine_for_stamp(cfg.machine);
  if (fast) cfg.stm.lock_table_entries = 1u << 16;
  // Traced when an ObsLabelScope is active (the app lambdas build their
  // RunConfig here, out of reach of the sweep's per-job label).
  apply_obs(cfg, tls_obs_label());
  // Placement policy: per-cell HeapPolicyScope, else --malloc-policy.
  apply_heap(cfg);
  return cfg;
}

struct StampApp {
  std::string name;
  // Runs the app; total work must be independent of the thread count.
  std::function<stamp::AppResult(core::Backend, uint32_t threads,
                                 uint64_t seed, bool fast)>
      run;
};

// The bench-scale inputs (paper runs the "recommended large" inputs on
// hardware; these are scaled to simulator speed — EXPERIMENTS.md records
// the scaling).
inline std::vector<StampApp> stamp_apps() {
  using core::Backend;
  std::vector<StampApp> apps;

  apps.push_back({"bayes", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
                    stamp::BayesConfig a;
                    a.variables = 24;
                    // Long scoring transactions whose combined read sets
                    // overflow the (scaled) L3, like the paper's bayes:
                    // 24 x 96 KB of statistics stream through a 1 MB L3,
                    // evicting concurrent transactions' read sets.
                    a.stats_words = fast ? 2048 : 20480;
                    a.candidates = fast ? 48 : 80;
                    a.seed = seed;
                    return stamp::run_bayes(stamp_run_cfg(b, t, seed, fast), a);
                  }});
  apps.push_back({"genome", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
                    stamp::GenomeConfig a;
                    a.gene_length = fast ? 1024 : 4096;
                    a.duplication_factor = 3;
                    a.hash_buckets = fast ? 256 : 1024;
                    a.seed = seed;
                    return stamp::run_genome(stamp_run_cfg(b, t, seed, fast), a);
                  }});
  apps.push_back(
      {"intruder", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
         stamp::IntruderConfig a;
         a.flows = fast ? 160 : 512;
         a.max_fragments = 10;
         a.seed = seed;
         return stamp::run_intruder(stamp_run_cfg(b, t, seed, fast), a);
       }});
  apps.push_back({"kmeans", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
                    stamp::KmeansConfig a;
                    a.points = fast ? 1024 : 2048;
                    a.dims = 8;
                    a.clusters = 16;
                    a.iterations = fast ? 2 : 3;
                    a.seed = seed;
                    return stamp::run_kmeans(stamp_run_cfg(b, t, seed, fast), a);
                  }});
  apps.push_back(
      {"labyrinth", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
         stamp::LabyrinthConfig a;
         a.width = fast ? 32 : 48;
         a.height = fast ? 32 : 48;
         a.depth = 2;
         a.paths = fast ? 12 : 24;
         a.seed = seed;
         return stamp::run_labyrinth(stamp_run_cfg(b, t, seed, fast), a);
       }});
  apps.push_back({"ssca2", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
                    stamp::Ssca2Config a;
                    a.vertices = fast ? 2048 : 8192;
                    a.edges = fast ? 8192 : 32768;
                    a.seed = seed;
                    return stamp::run_ssca2(stamp_run_cfg(b, t, seed, fast), a);
                  }});
  apps.push_back(
      {"vacation", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
         stamp::VacationConfig a;
         a.relations = fast ? 512 : 1024;
         a.customers = 256;
         a.sessions_per_thread = (fast ? 800u : 2400u) / t;  // fixed total
         a.seed = seed;
         return stamp::run_vacation(stamp_run_cfg(b, t, seed, fast), a);
       }});
  apps.push_back({"yada", [](Backend b, uint32_t t, uint64_t seed, bool fast) {
                    stamp::YadaConfig a;
                    // Mesh footprint ~2x the scaled L3: streaming misses and
                    // in-transaction read evictions, like the paper's yada.
                    a.elements = fast ? 4096 : 12288;
                    a.max_refinements = fast ? 300 : 1000;
                    a.seed = seed;
                    return stamp::run_yada(stamp_run_cfg(b, t, seed, fast), a);
                  }});
  return apps;
}

struct StampCell {
  double norm_time = 0;    // vs sequential (non-TM) 1-thread run
  double norm_energy = 0;  // vs sequential energy
  double wasted_share = 0; // share of active energy spent in aborted work
  stamp::AppResult result;
};

// One rep of one (app, backend, threads) cell: the backend run plus its
// SEQ/1-thread baseline with the same seed. Each call owns two fresh
// TxRuntime instances, so reps can run concurrently on host threads.
struct StampRep {
  double norm_time = 0;
  double norm_energy = 0;
  double wasted_share = 0;
  stamp::AppResult result;
};

inline StampRep stamp_rep(const StampApp& app, core::Backend backend,
                          uint32_t threads, bool fast, uint64_t seed,
                          const std::string& obs_label = "") {
  auto seq = app.run(core::Backend::kSeq, 1, seed, fast);
  ObsLabelScope obs_scope(obs_label);  // SEQ baseline above stays untraced
  auto run = app.run(backend, threads, seed, fast);
  if (!seq.valid) {
    throw std::runtime_error(app.name + " SEQ invalid: " +
                             seq.validation_message);
  }
  if (!run.valid) {
    throw std::runtime_error(app.name + " invalid: " + run.validation_message);
  }
  StampRep r;
  r.norm_time = static_cast<double>(run.report.wall_cycles) /
                static_cast<double>(seq.report.wall_cycles);
  r.norm_energy = run.report.joules() / seq.report.joules();
  r.wasted_share = run.report.energy_split().wasted_share();
  r.result = run;
  return r;
}

// Runs one (app, backend, threads) cell, normalized to a SEQ 1-thread run
// with the same seed, averaged over reps (serial; the figure drivers sweep
// whole grids through stamp_cells instead).
inline StampCell stamp_cell(const StampApp& app, core::Backend backend,
                            uint32_t threads, const BenchArgs& args,
                            uint64_t seed0 = 9000) {
  std::vector<double> nt, ne, ws;
  StampCell cell;
  for (int rep = 0; rep < args.reps; ++rep) {
    StampRep r = stamp_rep(app, backend, threads, args.fast, seed0 + rep);
    nt.push_back(r.norm_time);
    ne.push_back(r.norm_energy);
    ws.push_back(r.wasted_share);
    cell.result = r.result;
  }
  cell.norm_time = util::mean(nt);
  cell.norm_energy = util::mean(ne);
  cell.wasted_share = util::mean(ws);
  return cell;
}

// One cell of a STAMP figure's sweep grid.
struct StampTask {
  StampApp app;
  core::Backend backend = core::Backend::kRtm;
  uint32_t threads = 1;
  uint64_t seed0 = 9000;
};

// Computes every task (x reps) through the parallel sweep harness; returns
// one averaged StampCell per task, in task order. Per-task aggregation runs
// in rep order, so output is byte-identical for any --jobs value.
inline std::vector<StampCell> stamp_cells(const std::string& bench_id,
                                          const std::vector<StampTask>& tasks,
                                          const BenchArgs& args) {
  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(static_cast<uint64_t>(reps));
  dig.add(static_cast<uint64_t>(args.fast));
  for (const StampTask& t : tasks) {
    dig.add(t.app.name);
    dig.add(static_cast<uint64_t>(t.backend));
    dig.add(t.threads);
    dig.add(t.seed0);
  }

  // One label per job, shared between the manifest and the trace capture
  // (the registry drains sorted by label — exporter output is identical
  // for any --jobs value).
  auto label_of = [&](size_t i) {
    const StampTask& t = tasks[i / reps];
    return bench_id + ":" + t.app.name + ":" +
           core::backend_name(t.backend) + ":" + std::to_string(t.threads) +
           "t:rep" + std::to_string(i % reps);
  };

  harness::Runner runner(runner_options(args, bench_id, dig.value()));
  std::vector<StampRep> samples = runner.map<StampRep>(
      tasks.size() * reps,
      [&](size_t i) {
        const StampTask& t = tasks[i / reps];
        return stamp_rep(t.app, t.backend, t.threads, args.fast,
                         t.seed0 + i % reps, label_of(i));
      },
      [&](size_t i) {
        const StampTask& t = tasks[i / reps];
        harness::Job j;
        j.seed = t.seed0 + i % reps;
        j.label = label_of(i);
        return j;
      });

  std::vector<StampCell> out(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    std::vector<double> nt, ne, ws;
    for (size_t rep = 0; rep < reps; ++rep) {
      const StampRep& r = samples[t * reps + rep];
      nt.push_back(r.norm_time);
      ne.push_back(r.norm_energy);
      ws.push_back(r.wasted_share);
      out[t].result = r.result;
    }
    out[t].norm_time = util::mean(nt);
    out[t].norm_energy = util::mean(ne);
    out[t].wasted_share = util::mean(ws);
  }
  return out;
}

}  // namespace tsx::bench
