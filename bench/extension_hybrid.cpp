// Extension: serial-fallback RTM vs Hybrid TM (RTM fast path with a TinySTM
// fallback) under the Fig. 7 contention sweep.
//
// The serial fallback is Algorithm 1's scalability cliff: one overflowing or
// repeatedly-conflicting transaction stops the world, and the lock
// subscription converts every concurrent speculative transaction into a
// lock abort. The hybrid replaces the serial lock with a full TinySTM
// transaction, so fallbacks run concurrently — at the price of stripe
// subscription loads on the hardware path and clock-line serialization of
// hardware writer commits (see DESIGN.md § Hybrid conflict semantics).
//
// Two sweeps separate the two fallback triggers:
//
//   1. Conflict-driven (the fig07 sweep): fallbacks happen because the data
//      genuinely conflicts. Running them concurrently under STM does not
//      help — the STM transactions conflict on the same words — so the
//      hybrid pays the stripe-subscription tax everywhere and wins nowhere.
//      (Measured, and consistent with the HyTM literature's lukewarm
//      results on contended workloads.)
//
//   2. Capacity-driven on disjoint data (a fig04-style write-set sweep over
//      per-thread arrays, with in-transaction compute so the transaction is
//      more than bare stores): past the L1 write capacity every transaction
//      falls back, but the fallbacks touch disjoint lines. RTM's serial
//      lock serializes the whole transaction — compute included; the
//      hybrid's STM fallbacks commit concurrently and keep scaling. This is
//      the case hybrid TM exists for. (Without the compute the two roughly
//      tie: serial-but-plain stores against concurrent-but-instrumented
//      ones.)

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

struct HybridPoint {
  double speedup = 0;
  double energy_eff = 0;
  double hw_abort_rate = 0;   // aborts per hardware attempt
  double fallback_rate = 0;   // fallbacks per transaction (serial or STM)
};

HybridPoint point(core::Backend backend, uint32_t threads,
                  const eigenbench::EigenConfig& eb, int reps) {
  std::vector<double> sp, ee, ar, fb;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t seed = 7000 + rep;
    auto seq =
        eigenbench::run(eigen_run_cfg(core::Backend::kSeq, 1, seed), eb);
    auto run = eigenbench::run(eigen_run_cfg(backend, threads, seed), eb);
    double work_ratio = static_cast<double>(threads);
    sp.push_back(work_ratio * static_cast<double>(seq.report.wall_cycles) /
                 static_cast<double>(run.report.wall_cycles));
    ee.push_back(work_ratio * seq.report.joules() / run.report.joules());
    ar.push_back(run.report.rtm.abort_rate());
    fb.push_back(run.report.rtm.fallback_rate());
  }
  return {util::mean(sp), util::mean(ee), util::mean(ar), util::mean(fb)};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Extension", "serial-fallback RTM vs Hybrid TM (HyTM)",
               "concurrent STM fallbacks avoid the serial-lock cliff at high "
               "contention; stripe subscription costs a little at low");

  // Sweep 1 — same as fig07: contention dialed via the shared-array size
  // under the standard 100-access (90r/10w) transaction.
  std::vector<uint64_t> hot_bytes = {16ull << 20, 4ull << 20, 1ull << 20,
                                     256ull << 10, 64ull << 10, 16ull << 10,
                                     4096};
  if (args.fast) hot_bytes = {16ull << 20, 256ull << 10, 16ull << 10};

  const uint32_t threads = 4;
  util::Table t({"P(conflict) word", "RTM speedup", "Hybrid speedup",
                 "RTM energy-eff", "Hybrid energy-eff", "RTM hw-aborts",
                 "Hybrid hw-aborts", "RTM fallbacks", "Hybrid fallbacks"});
  for (uint64_t hot : hot_bytes) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    eb.ws_bytes = 64 * 1024;
    eb.reads_mild = 0;
    eb.writes_mild = 0;
    eb.reads_hot = 90;
    eb.writes_hot = 10;
    eb.hot_bytes = hot;

    double p_word = eigenbench::conflict_probability(
        threads, eb.reads_hot, eb.writes_hot, hot / 8);
    HybridPoint rtm = point(core::Backend::kRtm, threads, eb, args.reps);
    HybridPoint hyb = point(core::Backend::kHybrid, threads, eb, args.reps);
    t.add_row({util::Table::fmt(p_word, 4), util::Table::fmt(rtm.speedup, 2),
               util::Table::fmt(hyb.speedup, 2),
               util::Table::fmt(rtm.energy_eff, 2),
               util::Table::fmt(hyb.energy_eff, 2),
               util::Table::fmt(rtm.hw_abort_rate, 3),
               util::Table::fmt(hyb.hw_abort_rate, 3),
               util::Table::fmt(rtm.fallback_rate, 3),
               util::Table::fmt(hyb.fallback_rate, 3)});
  }
  emit(t, args);

  // Sweep 2 — capacity-driven fallbacks on disjoint data: writes per
  // transaction to the per-thread mild array. Past the L1 write capacity
  // every transaction falls back; the data never conflicts, so the only
  // question is whether fallbacks serialize (RTM) or overlap (hybrid).
  std::vector<uint32_t> writes_per_tx = {10, 100, 300, 600};
  if (args.fast) writes_per_tx = {10, 300, 600};

  util::Table t2({"writes/tx (disjoint)", "RTM speedup", "Hybrid speedup",
                  "RTM energy-eff", "Hybrid energy-eff", "RTM fallbacks",
                  "Hybrid fallbacks"});
  for (uint32_t writes : writes_per_tx) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 30 : 60);
    eb.ws_bytes = 1 << 20;  // spread writes over many cache sets
    eb.reads_mild = 0;
    eb.writes_mild = writes;
    eb.reads_hot = 0;
    eb.writes_hot = 0;
    eb.nops_in_tx = 2000;  // the work the serial lock needlessly serializes

    HybridPoint rtm = point(core::Backend::kRtm, threads, eb, args.reps);
    HybridPoint hyb = point(core::Backend::kHybrid, threads, eb, args.reps);
    t2.add_row({std::to_string(writes), util::Table::fmt(rtm.speedup, 2),
                util::Table::fmt(hyb.speedup, 2),
                util::Table::fmt(rtm.energy_eff, 2),
                util::Table::fmt(hyb.energy_eff, 2),
                util::Table::fmt(rtm.fallback_rate, 3),
                util::Table::fmt(hyb.fallback_rate, 3)});
  }
  emit(t2, args);
  return 0;
}
