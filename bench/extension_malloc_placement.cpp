// Extension: malloc placement as a first-class scenario axis (ROADMAP #4).
//
// Dice/Harris/Kogan/Lev observe that *where* the allocator places blocks
// decides whether HTM transactions abort: blocks packed into few L1 sets
// overflow the 8-way associativity long before the nominal write-set bound,
// while line-padded blocks waste capacity but never false-share. This
// driver sweeps mem::PlacementPolicy x threads over the allocation-heavy
// STAMP apps (vacation, intruder) under RTM and reports the Fig.-12-style
// abort split per cell plus the heap's own placement counters, so the
// policy -> MISC2 (write-capacity) causality is visible in one table.
//
// Expected shape: colored-pack concentrates every block into
// --malloc-pack-sets L1 sets, capping the usable write set at
// sets x ways lines — write-capacity aborts jump even single-threaded.
// padded spreads blocks line-exclusively: fewer conflict aborts at high
// threads, more refills/padding bytes. bump never reuses memory, so its
// footprint (and misc3 page-touch cost) grows monotonically.

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

struct PolicySpec {
  const char* name;       // table / label / CSV id
  mem::PlacementPolicy policy;
  uint32_t color_sets;    // kColored only: 0 = spread
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ext/Malloc", "malloc placement policy vs RTM aborts",
               "allocator placement decides HTM capacity aborts (no paper "
               "figure; ROADMAP item 4)");

  const std::vector<PolicySpec> policies = {
      {"size-class", mem::PlacementPolicy::kSizeClass, 0},
      {"bump", mem::PlacementPolicy::kBumpPerThread, 0},
      {"padded", mem::PlacementPolicy::kPadded, 0},
      {"colored-spread", mem::PlacementPolicy::kColored, 0},
      {"colored-pack", mem::PlacementPolicy::kColored, 2},
  };
  const std::vector<uint32_t> threads = args.fast
                                            ? std::vector<uint32_t>{1, 4}
                                            : std::vector<uint32_t>{1, 2, 4, 8};

  // The allocation-heavy STAMP apps: vacation's sessions build/tear rbtree
  // and list nodes inside transactions; intruder churns fragment buffers.
  std::vector<StampApp> apps;
  for (const StampApp& a : stamp_apps()) {
    if (a.name == "vacation" || a.name == "intruder") apps.push_back(a);
  }

  struct Cell {
    size_t app, pol;
    uint32_t threads;
  };
  std::vector<Cell> cells;
  for (size_t a = 0; a < apps.size(); ++a) {
    for (size_t p = 0; p < policies.size(); ++p) {
      for (uint32_t n : threads) cells.push_back({a, p, n});
    }
  }

  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(static_cast<uint64_t>(reps));
  dig.add(static_cast<uint64_t>(args.fast));
  for (const Cell& c : cells) {
    dig.add(apps[c.app].name);
    dig.add(std::string(policies[c.pol].name));
    dig.add(c.threads);
  }

  auto label_of = [&](size_t i) {
    const Cell& c = cells[i / reps];
    return std::string("extension_malloc_placement:") + apps[c.app].name +
           ":" + policies[c.pol].name + ":" + std::to_string(c.threads) +
           "t:rep" + std::to_string(i % reps);
  };

  harness::Runner runner(
      runner_options(args, "extension_malloc_placement", dig.value()));
  std::vector<StampRep> samples = runner.map<StampRep>(
      cells.size() * reps,
      [&](size_t i) {
        const Cell& c = cells[i / reps];
        const PolicySpec& p = policies[c.pol];
        // Per-cell policy override (thread-local, like ObsLabelScope): the
        // app lambda builds its RunConfig deep inside stamp_run_cfg.
        HeapPolicyScope heap_scope(p.policy, p.color_sets);
        return stamp_rep(apps[c.app], core::Backend::kRtm, c.threads,
                         args.fast, 9300 + i % reps, label_of(i));
      },
      [&](size_t i) {
        harness::Job j;
        j.seed = 9300 + i % reps;
        j.label = label_of(i);
        return j;
      });

  util::Table t({"app", "policy", "threads", "abort rate", "confl/read-cap",
                 "write-cap", "lock", "misc3", "misc5", "refills", "peak KiB",
                 "pad KiB", "max-set %"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    // Like the other STAMP drivers, per-cell stats come from the last rep
    // (identical seeds => identical counters across reps).
    const StampRep& r = samples[(i + 1) * reps - 1];
    const htm::RtmStats& s = r.result.report.rtm;
    const mem::HeapStats& h = r.result.report.heap;
    double attempts = static_cast<double>(std::max<uint64_t>(s.attempts, 1));
    auto share = [&](htm::AbortClass cls) {
      return static_cast<double>(
                 s.aborts_by_class[static_cast<size_t>(cls)]) /
             attempts;
    };
    uint64_t placed = 0, set_max = 0;
    for (uint64_t v : h.set_allocs) {
      placed += v;
      set_max = std::max(set_max, v);
    }
    double set_share =
        placed ? 100.0 * static_cast<double>(set_max) /
                     static_cast<double>(placed)
               : 0.0;
    t.add_row({apps[c.app].name, policies[c.pol].name,
               std::to_string(c.threads), util::Table::fmt(s.abort_rate(), 3),
               util::Table::fmt(share(htm::AbortClass::kConflictOrReadCap), 3),
               util::Table::fmt(share(htm::AbortClass::kWriteCapacity), 3),
               util::Table::fmt(share(htm::AbortClass::kLock), 3),
               util::Table::fmt(share(htm::AbortClass::kMisc3), 3),
               util::Table::fmt(share(htm::AbortClass::kMisc5), 3),
               std::to_string(h.refills),
               std::to_string(h.bytes_peak / 1024),
               std::to_string(h.bytes_padding / 1024),
               util::Table::fmt(set_share, 1)});
  }
  emit(t, args);
  std::cout
      << "Reading the split: write-cap is MISC2 (associativity/capacity\n"
         "overflow of the L1 write set). colored-pack confines placements\n"
         "to few sets, so transactions overflow sets x ways lines early;\n"
         "padded gives every block its own line(s) and shifts cost into\n"
         "refills/padding instead. max-set % is the share of placements\n"
         "landing on the hottest L1 set (100/sets = perfectly spread).\n";
  return 0;
}
