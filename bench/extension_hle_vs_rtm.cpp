// Extension: HLE vs RTM-with-fallback on the same critical sections.
//
// The paper introduces both TSX interfaces (§I) but evaluates RTM; this
// extension measures what it would have cost to use HLE instead. HLE's
// hardware-fixed policy (elide once, then take the real lock — aborting
// every concurrent elided section) loses against Algorithm 1's software
// retry budget as contention grows, and ties it when sections are disjoint.

#include "bench/bench_common.h"
#include "htm/hle.h"
#include "htm/rtm.h"
#include "stamp/apps/app.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

struct Point {
  double wall_mcycles;
  double serial_rate;  // lock acquisitions (HLE) / fallbacks (RTM) per section
};

// `shared_fraction`: probability a section touches the shared line instead
// of a thread-private one.
Point run_sections(bool use_hle, double shared_fraction, int iters,
                   uint64_t seed, bool verify) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kSeq;
  cfg.threads = 4;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  sim::Addr lock_mem = rt.heap().host_alloc(128, 64);
  sim::Addr shared = rt.heap().host_alloc(64, 64);
  std::array<sim::Addr, 4> priv{};
  for (int t = 0; t < 4; ++t) priv[t] = rt.heap().host_alloc(64, 64);

  htm::HleLock hle(m, lock_mem);
  hle.init();
  htm::RtmExecutor rtm(m, lock_mem + 64);
  rtm.init();

  HistoryVerifier verifier(rt, verify);
  rt.run([&](core::TxCtx& ctx) {
    sim::Rng& rng = ctx.rng();
    stamp::measured_region_begin(ctx);
    for (int i = 0; i < iters; ++i) {
      sim::Addr target = rng.chance(shared_fraction) ? shared : priv[ctx.id()];
      auto body = [&] {
        sim::Word v = m.load(target);
        m.compute(40);
        m.store(target, v + 1);
      };
      if (use_hle) {
        hle.critical_section(body);
      } else {
        rtm.execute(body);
      }
      ctx.compute(100);
    }
  });
  verifier.check(use_hle ? "HLE sections" : "RTM sections");
  auto rep = rt.report();
  double sections = 4.0 * iters;
  double serial = use_hle ? hle.stats().lock_acquisitions
                          : static_cast<double>(rtm.stats().fallbacks);
  return {rep.wall_cycles / 1e6, serial / sections};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Extension", "HLE vs RTM (Algorithm 1) on elided sections",
               "HLE's single hardware retry serializes under contention; "
               "RTM's software retry budget absorbs transient conflicts");

  int iters = args.fast ? 300 : 1000;
  util::Table t({"shared fraction", "HLE Mcycles", "RTM Mcycles",
                 "HLE serializations/section", "RTM fallbacks/section"});
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> hw, rw, hs, rs;
    for (int rep = 0; rep < args.reps; ++rep) {
      Point h = run_sections(true, f, iters, 9950 + rep, args.verify);
      Point r = run_sections(false, f, iters, 9950 + rep, args.verify);
      hw.push_back(h.wall_mcycles);
      rw.push_back(r.wall_mcycles);
      hs.push_back(h.serial_rate);
      rs.push_back(r.serial_rate);
    }
    t.add_row({util::Table::fmt(f, 2), util::Table::fmt(util::mean(hw), 3),
               util::Table::fmt(util::mean(rw), 3),
               util::Table::fmt(util::mean(hs), 3),
               util::Table::fmt(util::mean(rs), 3)});
  }
  emit(t, args);
  return 0;
}
