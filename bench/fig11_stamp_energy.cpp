// Fig. 11: STAMP energy expenditure, RTM vs TinySTM, 1/2/4/8 threads,
// normalized to the sequential run's energy.
//
// Paper shapes: kmeans — only RTM saves energy vs sequential; labyrinth —
// RTM energy grows with threads (wasted doomed speculation); bayes /
// labyrinth / yada — energy trends decouple from performance trends as
// threads scale (cache/bus activity).

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 11", "STAMP energy (normalized to sequential)",
               "lower is better; kmeans: only RTM < 1.0; labyrinth RTM grows "
               "with threads");

  std::vector<uint32_t> threads = {1, 2, 4, 8};
  std::vector<StampTask> tasks;
  for (const auto& app : stamp_apps()) {
    for (core::Backend b : {core::Backend::kRtm, core::Backend::kTinyStm}) {
      for (uint32_t n : threads) tasks.push_back({app, b, n, 9000});
    }
  }
  std::vector<StampCell> cells = stamp_cells("fig11_stamp_energy", tasks, args);

  // --energy-split appends the wasted-energy share (fraction of active
  // energy spent in aborted attempts) per thread count; the default columns
  // stay byte-identical either way.
  std::vector<std::string> cols = {"app", "system", "1t", "2t", "4t", "8t"};
  if (args.energy_split) {
    for (uint32_t n : threads) {
      cols.push_back(std::to_string(n) + "t-wasted");
    }
  }
  util::Table t(cols);
  for (size_t i = 0; i < tasks.size(); i += threads.size()) {
    std::vector<std::string> row{tasks[i].app.name,
                                 core::backend_name(tasks[i].backend)};
    for (size_t k = 0; k < threads.size(); ++k) {
      row.push_back(util::Table::fmt(cells[i + k].norm_energy, 2));
    }
    if (args.energy_split) {
      for (size_t k = 0; k < threads.size(); ++k) {
        row.push_back(util::Table::fmt(cells[i + k].wasted_share, 3));
      }
    }
    t.add_row(row);
  }
  emit(t, args);
  return 0;
}
