// Fig. 9: Eigenbench concurrency sweep (1 .. 8 threads; beyond 4 threads
// hyper-threading pairs share a core, and crucially an L1 — halving RTM's
// effective write-set capacity).
//
// Paper shape: RTM scales to 4 threads and then suffers at 8 (more for the
// 256K working set); TinySTM keeps scaling to 8; RTM-16K is the energy
// winner.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 9", "Eigenbench concurrency sweep",
               "RTM scales to 4 threads, dips at 8 (SMT halves L1 capacity); "
               "TinySTM scales to 8");

  std::vector<uint32_t> threads = {1, 2, 4, 8};

  std::vector<EigenRowSpec> specs;
  for (uint32_t n : threads) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    specs.push_back({std::to_string(n), n, eb});
  }
  print_eigen_table("threads", eigen_rows("fig09_concurrency", specs, args),
                    args);
  return 0;
}
