// Ablation: energy-model sensitivity. The paper's energy conclusions (e.g.
// "RTM is more energy-efficient than TinySTM and sequential for small
// working sets", "labyrinth multi-thread RTM burns energy") should not
// depend on the exact static-power share. This bench sweeps the package
// idle power and the per-core active power around the calibrated values and
// re-checks the two headline energy comparisons.

#include "bench/eigen_driver.h"
#include "stamp/apps/labyrinth.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

// A headline ratio plus the wasted-energy share of the ratio's RTM run
// (--energy-split column; computed either way, printed on request).
struct Headline {
  double ratio = 0;
  double wasted_share = 0;
};

// RTM-vs-sequential energy ratio for the eigenbench default (16K WS).
Headline eigen_energy_ratio(double idle_w, double core_w, int reps, bool fast) {
  std::vector<double> r, ws;
  for (int rep = 0; rep < reps; ++rep) {
    eigenbench::EigenConfig eb = paper_default_eb(fast ? 80 : 150);
    auto mk = [&](core::Backend b, uint32_t threads) {
      core::RunConfig cfg = eigen_run_cfg(b, threads, 9600 + rep);
      cfg.machine.energy.w_package_idle = idle_w;
      cfg.machine.energy.w_core_active = core_w;
      return eigenbench::run(cfg, eb);
    };
    auto seq = mk(core::Backend::kSeq, 1);
    auto rtm = mk(core::Backend::kRtm, 4);
    r.push_back(rtm.report.joules() / (4.0 * seq.report.joules()));
    ws.push_back(rtm.report.energy_split().wasted_share());
  }
  return {util::mean(r), util::mean(ws)};
}

// labyrinth RTM energy at 4 threads vs 1 thread.
Headline labyrinth_energy_growth(double idle_w, double core_w, int reps,
                                 bool fast) {
  std::vector<double> r, ws;
  for (int rep = 0; rep < reps; ++rep) {
    stamp::LabyrinthConfig app;
    app.width = 32;
    app.height = 32;
    app.paths = fast ? 8 : 16;
    auto mk = [&](uint32_t threads) {
      core::RunConfig cfg;
      cfg.backend = core::Backend::kRtm;
      cfg.threads = threads;
      cfg.machine.seed = 9700 + rep;
      cfg.machine.energy.w_package_idle = idle_w;
      cfg.machine.energy.w_core_active = core_w;
      return stamp::run_labyrinth(cfg, app);
    };
    auto one = mk(1);
    auto four = mk(4);
    r.push_back(four.report.joules() / one.report.joules());
    ws.push_back(four.report.energy_split().wasted_share());
  }
  return {util::mean(r), util::mean(ws)};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "energy-model sensitivity",
               "headline energy results must hold across static/dynamic "
               "power splits");

  struct Split {
    const char* name;
    double idle_w, core_w;
  };
  std::vector<Split> splits = {
      {"static-light (7W idle, 9W/core)", 7, 9},
      {"calibrated (14W idle, 7.5W/core)", 14, 7.5},
      {"static-heavy (28W idle, 5W/core)", 28, 5},
  };

  std::vector<std::string> cols = {
      "power split", "RTM/seq energy (16K eigen, <1 = RTM wins)",
      "labyrinth RTM 4t/1t energy (>1 = waste grows)"};
  if (args.energy_split) {
    cols.push_back("eigen wasted-share");
    cols.push_back("labyrinth 4t wasted-share");
  }
  util::Table t(cols);
  for (const auto& s : splits) {
    Headline eigen =
        eigen_energy_ratio(s.idle_w, s.core_w, args.reps, args.fast);
    Headline laby =
        labyrinth_energy_growth(s.idle_w, s.core_w, args.reps, args.fast);
    std::vector<std::string> row{s.name, util::Table::fmt(eigen.ratio, 3),
                                 util::Table::fmt(laby.ratio, 3)};
    if (args.energy_split) {
      row.push_back(util::Table::fmt(eigen.wasted_share, 3));
      row.push_back(util::Table::fmt(laby.wasted_share, 3));
    }
    t.add_row(row);
  }
  emit(t, args);
  std::cout << "Both qualitative claims should hold in every row.\n";
  return 0;
}
