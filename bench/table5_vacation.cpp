// Table V: vacation — baseline vs §V-B optimized code (merged lookups, head
// insertion, pre-faulting allocator), 1/2/4 threads under RTM, "-u 100"
// (reservation sessions only), reduced database size.
//
// Paper reference: ~25% execution-time reduction at every thread count,
// abort rate 0.21 -> 0.07 at 4 threads, ~10% shorter transactions, page-
// fault (HLE-unfriendly/misc3) aborts virtually eliminated, misc5 gaining
// relative weight after the fix.

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

core::RunConfig rtm_cfg(uint32_t threads, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  scale_machine_for_stamp(cfg.machine);
  apply_heap(cfg);  // --malloc-policy
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Table V", "vacation: baseline vs optimized (§V-B)",
               "~25% time reduction, abort rate 0.21->0.07 (4t), misc3/page-"
               "fault aborts eliminated, misc5 gains relative share");

  stamp::VacationConfig base;
  base.relations = args.fast ? 512 : 1024;
  base.customers = 256;
  base.reserve_pct = 100;  // "-u 100": user (reservation) sessions only
  stamp::VacationConfig opt = base;
  opt.optimized = true;

  util::Table t({"version", "threads", "Mcycles", "% reduc", "speedup",
                 "cycles/tx", "abort rate", "%mem", "%pf(misc3)", "%other"});

  // All (version, threads, rep) runs are independent; fan them out through
  // the sweep harness in serial nesting order, then aggregate below in that
  // same order (byte-identical stdout for any --jobs).
  const std::vector<uint32_t> thread_counts = {1, 2, 4};
  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(base.relations);
  dig.add(base.customers);
  dig.add(base.reserve_pct);
  dig.add(static_cast<uint64_t>(reps));
  harness::Runner runner(runner_options(args, "table5_vacation", dig.value()));
  std::vector<stamp::AppResult> results;
  try {
    results = runner.map<stamp::AppResult>(
        2 * thread_counts.size() * reps,
        [&](size_t i) {
          bool optimized = i >= thread_counts.size() * reps;
          size_t r = i % (thread_counts.size() * reps);
          uint32_t threads = thread_counts[r / reps];
          int rep = static_cast<int>(r % reps);
          auto cfgapp = optimized ? opt : base;
          cfgapp.sessions_per_thread = (args.fast ? 1200u : 3600u) / threads;
          auto res = stamp::run_vacation(rtm_cfg(threads, 9200 + rep), cfgapp);
          if (!res.valid) {
            throw std::runtime_error("VALIDATION FAILED: " +
                                     res.validation_message);
          }
          return res;
        },
        [&](size_t i) {
          bool optimized = i >= thread_counts.size() * reps;
          size_t r = i % (thread_counts.size() * reps);
          harness::Job j;
          j.seed = 9200 + r % reps;
          j.label = std::string("table5:") + (optimized ? "opt" : "base") +
                    ":" + std::to_string(thread_counts[r / reps]) + "t:rep" +
                    std::to_string(r % reps);
          return j;
        });
  } catch (const std::runtime_error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::array<double, 3> base_time{};
  size_t job = 0;
  for (bool optimized : {false, true}) {
    double one_thread_time = 0;
    for (uint32_t threads : {1u, 2u, 4u}) {
      std::vector<double> times;
      stamp::AppResult last;
      for (int rep = 0; rep < args.reps; ++rep) {
        const auto& res = results[job++];
        times.push_back(static_cast<double>(res.report.wall_cycles));
        last = res;
      }
      double time = util::mean(times);
      if (threads == 1) one_thread_time = time;
      size_t tidx = threads == 1 ? 0 : (threads == 2 ? 1 : 2);
      if (!optimized) base_time[tidx] = time;

      const htm::RtmStats& s = last.report.rtm;
      htm::RtmStats reserve =
          last.report.site_stats(stamp::kVacationSiteReserve);
      double cycles_per_tx = static_cast<double>(reserve.cycles_committed) /
                             std::max<uint64_t>(reserve.commits, 1);
      double aborts = static_cast<double>(std::max<uint64_t>(s.aborts(), 1));
      double mem_share =
          (s.aborts_by_class[size_t(htm::AbortClass::kConflictOrReadCap)] +
           s.aborts_by_class[size_t(htm::AbortClass::kWriteCapacity)]) /
          aborts;
      double pf_share =
          s.aborts_by_reason[size_t(sim::AbortReason::kPageFault)] / aborts;
      double other = 1.0 - mem_share - pf_share;
      double reduc = optimized ? 100.0 * (1.0 - time / base_time[tidx]) : 0.0;

      t.add_row({optimized ? "Opt" : "Base", std::to_string(threads),
                 util::Table::fmt(time / 1e6, 2),
                 optimized ? util::Table::fmt(reduc, 1) : "-",
                 util::Table::fmt(one_thread_time / time, 2),
                 util::Table::fmt(cycles_per_tx, 0),
                 util::Table::fmt(s.abort_rate(), 3),
                 util::Table::fmt(s.aborts() ? mem_share : 0.0, 2),
                 util::Table::fmt(s.aborts() ? pf_share : 0.0, 2),
                 util::Table::fmt(s.aborts() ? other : 0.0, 2)});
    }
  }
  emit(t, args);
  return 0;
}
