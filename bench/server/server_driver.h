#pragma once
// Server-scale TM workloads (ROADMAP item 2): an open-loop request
// generator driving three services — a KV/session store built on the elide
// layer, an order-book/ledger and an inventory-reservation service built on
// raw transactions — under the RTM / TinySTM / Hybrid / Lock backends.
//
// Open loop means arrivals are independent of completions: each worker's
// request schedule (arrival cycle, key, write/read, amount) is precomputed
// host-side from the seed alone, and a request's latency is measured from
// its *scheduled arrival* to its completion, so queueing delay shows up in
// the percentiles instead of silently throttling the generator (the
// coordinated-omission trap). Key popularity is Zipfian (sim::ZipfSampler,
// O(1) per draw over millions of keys); the schedule is scripted in phases
// — steady state, a hot-key flash crowd, a write burst — so the scoreboard
// shows how each backend degrades, not just its steady-state average.
//
// Everything is wired through harness::Runner exactly like the figure
// drivers: cells are (backend x rep), each cell owns its TxRuntime, results
// aggregate in index order, and stdout / --perf-stat / the manifest's
// counter_digest are byte-identical for every --jobs value.

#include <array>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "elide/elide.h"
#include "obs/histogram.h"
#include "sim/rng.h"

namespace tsx::bench::server {

// ---------------------------------------------------------------------------
// Traffic model

enum class PhaseKind : uint8_t { kSteady = 0, kFlashCrowd, kWriteBurst };

inline const char* phase_name(PhaseKind k) {
  switch (k) {
    case PhaseKind::kSteady: return "steady";
    case PhaseKind::kFlashCrowd: return "flash-crowd";
    case PhaseKind::kWriteBurst: return "write-burst";
  }
  return "?";
}

// One scripted segment of the arrival schedule. `requests` is per worker;
// the other knobs override the steady-state traffic shape for the segment.
struct Phase {
  PhaseKind kind = PhaseKind::kSteady;
  uint64_t requests = 0;
  // Share of requests redirected to a uniformly-drawn key in [0, hot_keys)
  // (the flash crowd: everyone asks for the same few keys).
  double hot_share = 0.0;
  uint64_t hot_keys = 16;
  double write_ratio = 0.1;
  // Multiplier on the mean interarrival gap (< 1.0 = an arrival-rate spike).
  double arrival_scale = 1.0;
};

struct TrafficConfig {
  uint64_t keys = 1ull << 21;     // Zipf keyspace (millions of keys)
  uint64_t clients = 1ull << 20;  // logical client-id space
  double zipf_theta = 0.99;       // skew exponent (YCSB's default)
  // Mean open-loop interarrival gap per worker, in simulated cycles.
  uint64_t mean_interarrival = 1400;
  uint32_t threads = 4;
  uint64_t seed = 9000;
  std::vector<Phase> phases;
};

// The standard three-act script every server driver runs: steady state, a
// flash crowd (arrival spike + 80% of traffic on 16 keys), a write burst.
inline std::vector<Phase> default_phases(uint64_t requests_per_phase,
                                         double write_ratio) {
  std::vector<Phase> ph(3);
  ph[0] = {PhaseKind::kSteady, requests_per_phase, 0.0, 16, write_ratio, 1.0};
  ph[1] = {PhaseKind::kFlashCrowd, requests_per_phase, 0.8, 16, write_ratio,
           0.5};
  double burst = write_ratio * 4.0 > 0.9 ? 0.9 : write_ratio * 4.0;
  ph[2] = {PhaseKind::kWriteBurst, requests_per_phase, 0.0, 16, burst, 1.0};
  return ph;
}

struct Request {
  sim::Cycles arrival = 0;  // cycles after the measured region opens
  uint64_t key = 0;
  uint64_t key2 = 0;  // second key for basket operations
  uint64_t client = 0;
  uint64_t amount = 0;  // 1..8
  bool is_write = false;
  uint32_t phase = 0;
};

// Precomputes one worker's full request schedule, host-side and from the
// seed alone — identical for any backend, --jobs value, or host. Arrival
// gaps are exponential (Poisson arrivals per worker); keys are Zipf over
// the full keyspace except for the flash-crowd share.
inline std::vector<Request> make_schedule(const TrafficConfig& cfg,
                                          uint32_t worker) {
  sim::Rng rng(cfg.seed + 0x517cc1b727220a95ull * (worker + 1));
  sim::ZipfSampler zipf(cfg.keys, cfg.zipf_theta);
  std::vector<Request> out;
  uint64_t total = 0;
  for (const Phase& p : cfg.phases) total += p.requests;
  out.reserve(total);
  sim::Cycles t = 0;
  for (uint32_t pi = 0; pi < cfg.phases.size(); ++pi) {
    const Phase& p = cfg.phases[pi];
    double mean = static_cast<double>(cfg.mean_interarrival) * p.arrival_scale;
    if (mean < 1.0) mean = 1.0;
    for (uint64_t i = 0; i < p.requests; ++i) {
      t += 1 + static_cast<sim::Cycles>(rng.exponential(mean));
      Request r;
      r.arrival = t;
      r.key = (p.hot_share > 0.0 && rng.chance(p.hot_share))
                  ? rng.below(p.hot_keys < cfg.keys ? p.hot_keys : cfg.keys)
                  : zipf(rng);
      r.key2 = zipf(rng);
      r.client = rng.below(cfg.clients);
      r.amount = 1 + rng.below(8);
      r.is_write = rng.chance(p.write_ratio);
      r.phase = pi;
      out.push_back(r);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Services

enum class ServiceKind : uint8_t { kKv = 0, kOrderBook, kInventory };

inline const char* service_name(ServiceKind k) {
  switch (k) {
    case ServiceKind::kKv: return "kv";
    case ServiceKind::kOrderBook: return "orderbook";
    case ServiceKind::kInventory: return "inventory";
  }
  return "?";
}

// A service owns the simulated state one cell's requests run against. The
// protocol mirrors the STAMP apps: host-free construction, init() on worker
// 0 before the measured region, handle() per request, verify() on worker 0
// after the closing barrier. verify() must check a conservation invariant
// that any lost atomicity would break, using only O(state-summary) reads —
// never a full keyspace scan.
class Service {
 public:
  virtual ~Service() = default;
  virtual void init(core::TxCtx& ctx) = 0;
  virtual void handle(core::TxCtx& ctx, uint32_t worker, const Request& r) = 0;
  virtual void verify(core::TxCtx& ctx) = 0;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  // Requests the service declined for lack of state (partial matches,
  // rejected reservations); 0 for services where every request succeeds.
  virtual uint64_t misses() const { return 0; }
  virtual elide::ElideStats elide_totals() const { return {}; }

 protected:
  void fail(std::string msg) {
    ok_ = false;
    error_ = std::move(msg);
  }
  bool ok_ = true;
  std::string error_;
};

namespace detail {
inline sim::Addr word(sim::Addr base, uint64_t i) { return base + 8 * i; }
inline sim::Addr line(sim::Addr base, uint64_t i) {
  return base + sim::kLineBytes * i;
}
}  // namespace detail

// KV/session store on the elide layer: the keyspace is sharded across
// elide::shared_mutex locks (reads elide the shared flavour, writes the
// exclusive one), each shard keeps a conservation word updated in the same
// critical section as the value, and every request additionally bumps a
// per-session counter in a raw transaction — so the cell exercises elided
// sections and plain atomic blocks side by side.
class KvService final : public Service {
 public:
  static constexpr uint64_t kShards = 64;
  static constexpr uint64_t kSessions = 1024;

  KvService(core::TxRuntime& rt, const TrafficConfig& cfg)
      : rt_(rt), cfg_(cfg), written_(cfg.threads, 0), handled_(cfg.threads, 0) {
    locks_.reserve(kShards);
    for (uint64_t s = 0; s < kShards; ++s) {
      locks_.push_back(std::make_unique<elide::shared_mutex>(
          rt, "kv.shard" + std::to_string(s)));
    }
  }

  void init(core::TxCtx& ctx) override {
    values_ = ctx.malloc(cfg_.keys * 8);
    // Shard accounting words on distinct lines: a shard's conservation
    // word must not false-conflict with its neighbours'.
    acct_ = ctx.malloc(kShards * sim::kLineBytes, sim::kLineBytes);
    sessions_ = ctx.malloc(kSessions * 8);
  }

  void handle(core::TxCtx& ctx, uint32_t worker, const Request& r) override {
    uint64_t shard = r.key % kShards;
    if (r.is_write) {
      locks_[shard]->critical_section(ctx, [&] {
        sim::Word v = ctx.load(detail::word(values_, r.key));
        ctx.store(detail::word(values_, r.key), v + r.amount);
        sim::Word a = ctx.load(detail::line(acct_, shard));
        ctx.store(detail::line(acct_, shard), a + r.amount);
        ctx.compute(40);
      });
      written_[worker] += r.amount;
    } else {
      locks_[shard]->critical_section_shared(ctx, [&] {
        (void)ctx.load(detail::word(values_, r.key));
        (void)ctx.load(detail::line(acct_, shard));
        ctx.compute(25);
      });
    }
    // Session bookkeeping in a raw atomic block (top-level by the elide
    // contract, so it runs after the critical section commits).
    sim::Addr sess = detail::word(sessions_, r.client % kSessions);
    ctx.transaction(
        [&] {
          sim::Word c = ctx.load(sess);
          ctx.store(sess, c + 1);
        },
        /*site=*/1);
    ++handled_[worker];
  }

  void verify(core::TxCtx& ctx) override {
    uint64_t acct_sum = 0, sess_sum = 0, written = 0, handled = 0;
    for (uint64_t s = 0; s < kShards; ++s) {
      acct_sum += ctx.load(detail::line(acct_, s));
    }
    for (uint64_t s = 0; s < kSessions; ++s) {
      sess_sum += ctx.load(detail::word(sessions_, s));
    }
    for (uint32_t w = 0; w < cfg_.threads; ++w) {
      written += written_[w];
      handled += handled_[w];
    }
    if (acct_sum != written) {
      fail("kv: shard accounting " + std::to_string(acct_sum) +
           " != written " + std::to_string(written));
    } else if (sess_sum != handled) {
      fail("kv: session ops " + std::to_string(sess_sum) + " != requests " +
           std::to_string(handled));
    }
  }

  elide::ElideStats elide_totals() const override {
    elide::ElideStats t;
    for (const auto& l : locks_) {
      const elide::ElideStats& s = l->stats();
      t.acquisitions += s.acquisitions;
      t.attempts += s.attempts;
      t.elided += s.elided;
      t.fallbacks += s.fallbacks;
      t.self_stops += s.self_stops;
    }
    return t;
  }

 private:
  core::TxRuntime& rt_;
  const TrafficConfig& cfg_;
  std::vector<std::unique_ptr<elide::shared_mutex>> locks_;
  sim::Addr values_ = 0, acct_ = 0, sessions_ = 0;
  std::vector<uint64_t> written_, handled_;  // per worker (exactly-once:
                                             // bumped after the section
                                             // commits, never inside it)
};

// Order book / ledger on raw transactions: keys map onto price levels;
// a write places `amount` at its level, a read matches (takes) up to
// `amount` from it. The ledger words (placed / matched, sharded by level
// group onto distinct lines) are updated in the same transaction as the
// level, so the conservation law  placed - matched == sum(levels)  breaks
// under any torn execution.
class OrderBookService final : public Service {
 public:
  static constexpr uint64_t kLevels = 256;
  static constexpr uint64_t kGroups = 16;

  OrderBookService(core::TxRuntime& rt, const TrafficConfig& cfg)
      : cfg_(cfg),
        placed_(cfg.threads, 0),
        matched_(cfg.threads, 0),
        partial_(cfg.threads, 0) {
    (void)rt;
  }

  void init(core::TxCtx& ctx) override {
    levels_ = ctx.malloc(kLevels * 8);
    placed_w_ = ctx.malloc(kGroups * sim::kLineBytes, sim::kLineBytes);
    matched_w_ = ctx.malloc(kGroups * sim::kLineBytes, sim::kLineBytes);
  }

  void handle(core::TxCtx& ctx, uint32_t worker, const Request& r) override {
    uint64_t lvl = r.key % kLevels;
    uint64_t grp = lvl % kGroups;
    sim::Word taken = 0;
    ctx.transaction([&] {
      taken = 0;  // reset: the body may re-run on abort
      sim::Word v = ctx.load(detail::word(levels_, lvl));
      if (r.is_write) {
        ctx.store(detail::word(levels_, lvl), v + r.amount);
        sim::Word p = ctx.load(detail::line(placed_w_, grp));
        ctx.store(detail::line(placed_w_, grp), p + r.amount);
      } else {
        taken = v < r.amount ? v : r.amount;
        ctx.store(detail::word(levels_, lvl), v - taken);
        sim::Word m = ctx.load(detail::line(matched_w_, grp));
        ctx.store(detail::line(matched_w_, grp), m + taken);
      }
      ctx.compute(30);
    });
    if (r.is_write) {
      placed_[worker] += r.amount;
    } else {
      matched_[worker] += taken;
      if (taken < r.amount) ++partial_[worker];
    }
  }

  void verify(core::TxCtx& ctx) override {
    uint64_t placed = 0, matched = 0, level_sum = 0;
    for (uint64_t g = 0; g < kGroups; ++g) {
      placed += ctx.load(detail::line(placed_w_, g));
      matched += ctx.load(detail::line(matched_w_, g));
    }
    for (uint64_t l = 0; l < kLevels; ++l) {
      level_sum += ctx.load(detail::word(levels_, l));
    }
    uint64_t placed_host = 0, matched_host = 0;
    for (uint32_t w = 0; w < cfg_.threads; ++w) {
      placed_host += placed_[w];
      matched_host += matched_[w];
    }
    if (placed - matched != level_sum) {
      fail("orderbook: placed - matched = " + std::to_string(placed - matched) +
           " != level sum " + std::to_string(level_sum));
    } else if (placed != placed_host || matched != matched_host) {
      fail("orderbook: ledger (" + std::to_string(placed) + ", " +
           std::to_string(matched) + ") != host tallies (" +
           std::to_string(placed_host) + ", " + std::to_string(matched_host) +
           ")");
    }
  }

  uint64_t misses() const override {
    uint64_t m = 0;
    for (uint64_t p : partial_) m += p;
    return m;
  }

 private:
  const TrafficConfig& cfg_;
  sim::Addr levels_ = 0, placed_w_ = 0, matched_w_ = 0;
  std::vector<uint64_t> placed_, matched_, partial_;
};

// Inventory reservation on raw transactions: a read reserves a two-item
// basket (one unit each, all-or-nothing — the conditional cross-key
// transaction), a write restocks one item. Conservation law:
//   initial + restocked - reserved == sum(stock).
class InventoryService final : public Service {
 public:
  static constexpr uint64_t kItems = 4096;
  static constexpr uint64_t kGroups = 16;
  // Small enough that the flash crowd visibly drains hot items (rejected
  // reservations land in the miss column); restocks refill over time.
  static constexpr uint64_t kInitialStock = 16;

  InventoryService(core::TxRuntime& rt, const TrafficConfig& cfg)
      : cfg_(cfg),
        restocked_(cfg.threads, 0),
        reserved_(cfg.threads, 0),
        rejected_(cfg.threads, 0) {
    (void)rt;
  }

  void init(core::TxCtx& ctx) override {
    stock_ = ctx.malloc(kItems * 8);
    restocked_w_ = ctx.malloc(kGroups * sim::kLineBytes, sim::kLineBytes);
    reserved_w_ = ctx.malloc(kGroups * sim::kLineBytes, sim::kLineBytes);
    // Seeding the shelves is setup, outside the measured region.
    for (uint64_t i = 0; i < kItems; ++i) {
      ctx.store(detail::word(stock_, i), kInitialStock);
    }
  }

  void handle(core::TxCtx& ctx, uint32_t worker, const Request& r) override {
    uint64_t a = r.key % kItems;
    if (r.is_write) {
      uint64_t grp = a % kGroups;
      ctx.transaction([&] {
        sim::Word s = ctx.load(detail::word(stock_, a));
        ctx.store(detail::word(stock_, a), s + r.amount);
        sim::Word t = ctx.load(detail::line(restocked_w_, grp));
        ctx.store(detail::line(restocked_w_, grp), t + r.amount);
        ctx.compute(30);
      });
      restocked_[worker] += r.amount;
      return;
    }
    uint64_t b = r.key2 % kItems;
    if (b == a) b = (a + 1) % kItems;
    uint64_t grp = a % kGroups;
    bool got = false;
    ctx.transaction([&] {
      got = false;  // reset: the body may re-run on abort
      sim::Word sa = ctx.load(detail::word(stock_, a));
      sim::Word sb = ctx.load(detail::word(stock_, b));
      if (sa >= 1 && sb >= 1) {
        ctx.store(detail::word(stock_, a), sa - 1);
        ctx.store(detail::word(stock_, b), sb - 1);
        sim::Word t = ctx.load(detail::line(reserved_w_, grp));
        ctx.store(detail::line(reserved_w_, grp), t + 2);
        got = true;
      }
      ctx.compute(30);
    });
    if (got) {
      reserved_[worker] += 2;
    } else {
      ++rejected_[worker];
    }
  }

  void verify(core::TxCtx& ctx) override {
    uint64_t restocked = 0, reserved = 0, stock_sum = 0;
    for (uint64_t g = 0; g < kGroups; ++g) {
      restocked += ctx.load(detail::line(restocked_w_, g));
      reserved += ctx.load(detail::line(reserved_w_, g));
    }
    for (uint64_t i = 0; i < kItems; ++i) {
      stock_sum += ctx.load(detail::word(stock_, i));
    }
    uint64_t restocked_host = 0, reserved_host = 0;
    for (uint32_t w = 0; w < cfg_.threads; ++w) {
      restocked_host += restocked_[w];
      reserved_host += reserved_[w];
    }
    uint64_t expect = kItems * kInitialStock + restocked - reserved;
    if (stock_sum != expect) {
      fail("inventory: stock sum " + std::to_string(stock_sum) + " != " +
           std::to_string(expect));
    } else if (restocked != restocked_host || reserved != reserved_host) {
      fail("inventory: ledger (" + std::to_string(restocked) + ", " +
           std::to_string(reserved) + ") != host tallies (" +
           std::to_string(restocked_host) + ", " +
           std::to_string(reserved_host) + ")");
    }
  }

  uint64_t misses() const override {
    uint64_t m = 0;
    for (uint64_t r : rejected_) m += r;
    return m;
  }

 private:
  const TrafficConfig& cfg_;
  sim::Addr stock_ = 0, restocked_w_ = 0, reserved_w_ = 0;
  std::vector<uint64_t> restocked_, reserved_, rejected_;
};

inline std::unique_ptr<Service> make_service(ServiceKind kind,
                                             core::TxRuntime& rt,
                                             const TrafficConfig& cfg) {
  switch (kind) {
    case ServiceKind::kKv: return std::make_unique<KvService>(rt, cfg);
    case ServiceKind::kOrderBook:
      return std::make_unique<OrderBookService>(rt, cfg);
    case ServiceKind::kInventory:
      return std::make_unique<InventoryService>(rt, cfg);
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Cell execution

// One (backend, rep) cell's measurements. Histograms merge exactly across
// reps, so rep aggregation never loses tail resolution.
struct CellResult {
  uint64_t offered = 0;    // requests scheduled
  uint64_t completed = 0;  // requests completed (== offered when ok)
  sim::Cycles offered_span = 0;  // last scheduled arrival across workers
  sim::Cycles wall = 0;          // measured-region wall cycles
  obs::Log2Histogram lat_all;
  std::vector<obs::Log2Histogram> lat_phase;
  std::vector<uint64_t> completed_phase;
  uint64_t attempts = 0;  // speculative/STM attempts
  uint64_t aborts = 0;
  uint64_t fallbacks = 0;  // RTM serial-fallback sections
  uint64_t elide_attempts = 0, elide_elided = 0, elide_fallbacks = 0;
  uint64_t misses = 0;
  bool overloaded = false;
  bool ok = true;
  std::string error;
};

// A worker counts as overloaded once it falls behind its schedule by this
// many mean interarrival gaps — the open-loop queue is growing faster than
// the service drains it.
inline constexpr uint64_t kOverloadLagGaps = 64;

// Phase-detection probe for a single cell run: forces the metrics hub on
// (no registry label needed) and reports the *scripted* phase-transition
// cycles — the absolute simulated time the first request of each later
// phase was due, i.e. the ground truth the online detector is judged
// against — alongside the hub's finalized window/phase series.
struct PhaseProbe {
  sim::Cycles window_cycles = 10000;        // hub window for this run
  std::vector<sim::Cycles> boundaries;      // one per phase transition
  std::optional<obs::MetricsData> metrics;  // hub output for the run
};

inline core::RunConfig server_run_cfg(core::Backend b,
                                      const TrafficConfig& traffic,
                                      uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = traffic.threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  apply_heap(cfg);  // --malloc-policy
  return cfg;
}

// Runs one cell: build the runtime, precompute every worker's schedule,
// drive the service, and verify its conservation law. Self-contained (owns
// its TxRuntime), so the sweep harness can shard cells across host threads.
inline CellResult run_server_rep(ServiceKind kind, core::Backend backend,
                                 const TrafficConfig& traffic, uint64_t seed,
                                 const std::string& obs_label = "",
                                 bool verify_history = false,
                                 PhaseProbe* probe = nullptr) {
  core::RunConfig cfg = server_run_cfg(backend, traffic, seed);
  apply_obs(cfg, obs_label);
  if (probe) {
    cfg.obs.enabled = true;
    cfg.obs.metrics.window_cycles = probe->window_cycles;
  }
  core::TxRuntime rt(cfg);
  HistoryVerifier hv(rt, verify_history);
  std::unique_ptr<Service> svc = make_service(kind, rt, traffic);

  const uint32_t nw = traffic.threads;
  const size_t nphases = traffic.phases.size();
  std::vector<std::vector<Request>> sched(nw);
  CellResult res;
  res.lat_phase.resize(nphases);
  res.completed_phase.assign(nphases, 0);
  for (uint32_t w = 0; w < nw; ++w) {
    sched[w] = make_schedule(traffic, w);
    res.offered += sched[w].size();
    if (!sched[w].empty() && sched[w].back().arrival > res.offered_span) {
      res.offered_span = sched[w].back().arrival;
    }
  }

  struct WorkerStats {
    std::vector<obs::Log2Histogram> lat;
    std::vector<uint64_t> completed;
    bool overloaded = false;
  };
  std::vector<WorkerStats> ws(nw);
  for (auto& s : ws) {
    s.lat.resize(nphases);
    s.completed.assign(nphases, 0);
  }
  std::vector<sim::Cycles> wstart(nw, 0);  // measured-region start per worker
  const sim::Cycles overload_lag = traffic.mean_interarrival * kOverloadLagGaps;

  rt.run([&](core::TxCtx& ctx) {
    uint32_t w = ctx.id();
    if (w == 0) svc->init(ctx);
    ctx.barrier();
    if (w == 0) ctx.runtime().mark_measurement_start();
    ctx.barrier();
    sim::Cycles start = ctx.now();
    wstart[w] = start;
    WorkerStats& st = ws[w];
    for (const Request& r : sched[w]) {
      sim::Cycles due = start + r.arrival;
      sim::Cycles now = ctx.now();
      if (now < due) {
        ctx.compute(due - now);  // open loop: idle until the arrival
      } else if (now - due > overload_lag) {
        st.overloaded = true;
      }
      svc->handle(ctx, w, r);
      st.lat[r.phase].record(ctx.now() - due);
      ++st.completed[r.phase];
    }
    ctx.barrier();
    if (w == 0) svc->verify(ctx);
  });
  hv.check(obs_label.empty() ? service_name(kind) : obs_label);

  // Merge per-worker tallies in worker order (deterministic).
  for (uint32_t w = 0; w < nw; ++w) {
    for (size_t p = 0; p < nphases; ++p) {
      res.lat_phase[p].merge(ws[w].lat[p]);
      res.completed_phase[p] += ws[w].completed[p];
      res.completed += ws[w].completed[p];
    }
    res.overloaded = res.overloaded || ws[w].overloaded;
  }
  for (size_t p = 0; p < nphases; ++p) res.lat_all.merge(res.lat_phase[p]);

  core::RunReport rep = rt.report();
  res.wall = rep.wall_cycles;
  res.attempts = rep.rtm.attempts + rep.stm.starts;
  res.aborts = rep.rtm.aborts() + rep.stm.aborts();
  res.fallbacks = rep.rtm.fallbacks;
  elide::ElideStats es = svc->elide_totals();
  res.elide_attempts = es.attempts;
  res.elide_elided = es.elided;
  res.elide_fallbacks = es.fallbacks;
  res.misses = svc->misses();
  res.ok = svc->ok();
  res.error = svc->error();
  if (probe) {
    // Scripted ground truth: the absolute cycle the first request of each
    // later phase was due (earliest across workers; worker starts are
    // barrier-aligned to within a few cycles).
    for (size_t p = 1; p < nphases; ++p) {
      sim::Cycles b = 0;
      bool found = false;
      for (uint32_t w = 0; w < nw; ++w) {
        for (const Request& r : sched[w]) {
          if (r.phase != p) continue;
          sim::Cycles cand = wstart[w] + r.arrival;
          if (!found || cand < b) b = cand;
          found = true;
          break;
        }
      }
      if (found) probe->boundaries.push_back(b);
    }
    probe->metrics = rt.metrics_data();
  }
  return res;
}

// ---------------------------------------------------------------------------
// Sweep + scoreboard

// The paper-relevant backend set for the server scoreboards.
inline std::vector<core::Backend> server_backends() {
  return {core::Backend::kRtm, core::Backend::kTinyStm, core::Backend::kHybrid,
          core::Backend::kLock};
}

// One backend's row of the scoreboard, merged over reps.
struct BackendScore {
  core::Backend backend = core::Backend::kRtm;
  CellResult sum;  // counts summed, histograms merged, flags OR-ed
};

inline void merge_cell(CellResult& into, const CellResult& c) {
  into.offered += c.offered;
  into.completed += c.completed;
  into.offered_span += c.offered_span;
  into.wall += c.wall;
  into.lat_all.merge(c.lat_all);
  if (into.lat_phase.empty()) {
    into.lat_phase.resize(c.lat_phase.size());
    into.completed_phase.assign(c.completed_phase.size(), 0);
  }
  for (size_t p = 0; p < c.lat_phase.size(); ++p) {
    into.lat_phase[p].merge(c.lat_phase[p]);
    into.completed_phase[p] += c.completed_phase[p];
  }
  into.attempts += c.attempts;
  into.aborts += c.aborts;
  into.fallbacks += c.fallbacks;
  into.elide_attempts += c.elide_attempts;
  into.elide_elided += c.elide_elided;
  into.elide_fallbacks += c.elide_fallbacks;
  into.misses += c.misses;
  into.overloaded = into.overloaded || c.overloaded;
  if (!c.ok && into.ok) {
    into.ok = false;
    into.error = c.error;
  }
}

inline void digest_traffic(harness::Digest& d, const TrafficConfig& t) {
  d.add(t.keys);
  d.add(t.clients);
  d.add(t.zipf_theta);
  d.add(t.mean_interarrival);
  d.add(t.threads);
  d.add(t.seed);
  for (const Phase& p : t.phases) {
    d.add(static_cast<uint64_t>(p.kind));
    d.add(p.requests);
    d.add(p.hot_share);
    d.add(p.hot_keys);
    d.add(p.write_ratio);
    d.add(p.arrival_scale);
  }
}

// Runs backends x reps cells through the parallel sweep harness and folds
// them into one BackendScore per backend, in (backend, rep) index order —
// byte-identical output for any --jobs value.
inline std::vector<BackendScore> run_server_sweep(
    const std::string& bench_id, ServiceKind kind, const TrafficConfig& traffic,
    const std::vector<core::Backend>& backends, const BenchArgs& args) {
  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(std::string(service_name(kind)));
  dig.add(static_cast<uint64_t>(reps));
  for (core::Backend b : backends) dig.add(static_cast<uint64_t>(b));
  digest_traffic(dig, traffic);

  auto label_of = [&](size_t i) {
    return bench_id + ":" +
           core::backend_name(backends[i / reps]) + ":rep" +
           std::to_string(i % reps);
  };

  harness::Runner runner(runner_options(args, bench_id, dig.value()));
  std::vector<CellResult> cells = runner.map<CellResult>(
      backends.size() * reps,
      [&](size_t i) {
        return run_server_rep(kind, backends[i / reps], traffic,
                              traffic.seed + i % reps, label_of(i),
                              args.verify);
      },
      [&](size_t i) {
        harness::Job j;
        j.seed = traffic.seed + i % reps;
        j.label = label_of(i);
        return j;
      });

  std::vector<BackendScore> out(backends.size());
  bool overloaded = false;
  for (size_t b = 0; b < backends.size(); ++b) {
    out[b].backend = backends[b];
    for (size_t rep = 0; rep < reps; ++rep) {
      merge_cell(out[b].sum, cells[b * reps + rep]);
    }
    overloaded = overloaded || out[b].sum.overloaded;
  }
  if (overloaded) {
    util::warn_once(
        "server:" + bench_id + ":overload",
        bench_id + ": offered load exceeded sustained throughput on at least "
                   "one backend; tail latencies include open-loop queueing");
  }
  return out;
}

// Requests per simulated megacycle.
inline double per_mcycle(uint64_t n, sim::Cycles cycles) {
  return cycles ? 1e6 * static_cast<double>(n) / static_cast<double>(cycles)
                : 0.0;
}

// The headline scoreboard: offered vs sustained throughput, corrected
// latency percentiles, abort/fallback/elision attribution, service misses.
inline util::Table scoreboard_table(const std::vector<BackendScore>& scores) {
  util::Table t({"Backend", "offered/Mcyc", "sustained/Mcyc", "p50", "p95",
                 "p99", "abort-rate", "fallbacks", "elided%", "misses"});
  for (const BackendScore& s : scores) {
    const CellResult& c = s.sum;
    double abort_rate =
        c.attempts ? static_cast<double>(c.aborts) /
                         static_cast<double>(c.attempts)
                   : 0.0;
    std::string elided =
        c.elide_attempts
            ? util::Table::fmt(100.0 * static_cast<double>(c.elide_elided) /
                                   static_cast<double>(c.elide_attempts),
                               1)
            : "-";
    t.add_row({core::backend_name(s.backend),
               util::Table::fmt(per_mcycle(c.offered, c.offered_span), 1),
               util::Table::fmt(per_mcycle(c.completed, c.wall), 1),
               util::Table::fmt_int(static_cast<int64_t>(c.lat_all.percentile(50))),
               util::Table::fmt_int(static_cast<int64_t>(c.lat_all.percentile(95))),
               util::Table::fmt_int(static_cast<int64_t>(c.lat_all.percentile(99))),
               util::Table::fmt(abort_rate, 3),
               util::Table::fmt_int(static_cast<int64_t>(c.fallbacks)), elided,
               util::Table::fmt_int(static_cast<int64_t>(c.misses))});
  }
  return t;
}

// Per-phase breakdown: how each backend rides the flash crowd and the write
// burst (latency in simulated cycles, from the corrected percentiles).
inline util::Table phase_table(const TrafficConfig& traffic,
                               const std::vector<BackendScore>& scores) {
  util::Table t({"Backend", "phase", "requests", "p50", "p95", "p99"});
  for (const BackendScore& s : scores) {
    const CellResult& c = s.sum;
    for (size_t p = 0; p < c.lat_phase.size(); ++p) {
      const obs::Log2Histogram& h = c.lat_phase[p];
      t.add_row({core::backend_name(s.backend),
                 phase_name(traffic.phases[p].kind),
                 util::Table::fmt_int(static_cast<int64_t>(c.completed_phase[p])),
                 util::Table::fmt_int(static_cast<int64_t>(h.percentile(50))),
                 util::Table::fmt_int(static_cast<int64_t>(h.percentile(95))),
                 util::Table::fmt_int(static_cast<int64_t>(h.percentile(99)))});
    }
  }
  return t;
}

// Renders both tables to a string — what the drivers print and what the
// jobs-determinism test compares between --jobs settings.
inline std::string scoreboard_text(const TrafficConfig& traffic,
                                   const std::vector<BackendScore>& scores) {
  std::ostringstream os;
  scoreboard_table(scores).print(os);
  os << "\n";
  phase_table(traffic, scores).print(os);
  return os.str();
}

// Shared main body for the three server drivers: sweep, print, and exit
// non-zero if any cell's conservation law failed (measurements from a
// non-atomic run would be meaningless).
inline int run_server_bench(const std::string& bench_id, ServiceKind kind,
                            TrafficConfig traffic, const BenchArgs& args) {
  std::vector<BackendScore> scores =
      run_server_sweep(bench_id, kind, traffic, server_backends(), args);
  util::Table t = scoreboard_table(scores);
  emit(t, args);
  util::Table pt = phase_table(traffic, scores);
  emit(pt, args);
  for (const BackendScore& s : scores) {
    if (!s.sum.ok) {
      std::cerr << bench_id << ": invariant FAILED under "
                << core::backend_name(s.backend) << ": " << s.sum.error
                << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace tsx::bench::server
