// Server workload: inventory reservation on raw transactions (ROADMAP
// item 2).
//
// Reads reserve a two-item basket all-or-nothing (the conditional
// cross-key transaction); writes restock. Conservation law: initial +
// restocked - reserved == sum of stock. The flash-crowd phase drains the
// hot items, so the miss column (rejected reservations) becomes part of
// the traffic story, not just an error count.

#include "bench/server/server_driver.h"

using namespace tsx;
using namespace tsx::bench;
using namespace tsx::bench::server;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Server/Inventory", "open-loop inventory reservation",
               "traffic-shaped scoreboard (no paper figure; ROADMAP item 2)");

  TrafficConfig traffic;
  traffic.mean_interarrival = 1400;
  traffic.seed = 9300;
  traffic.phases =
      default_phases(args.fast ? 250 : 1200, /*write_ratio=*/0.15);

  return run_server_bench("server_inventory", ServiceKind::kInventory,
                          traffic, args);
}
