// Server workload: KV/session store on the elide layer (ROADMAP item 2).
//
// An open-loop Zipfian request stream (2M keys, 1M clients) against a
// 64-shard hash table guarded by elide::shared_mutex — reads elide the
// shared flavour, writes the exclusive one, and every request bumps a
// session counter in a raw transaction. Scripted phases: steady state, a
// hot-key flash crowd (arrival spike, 80% of traffic on 16 keys), a write
// burst. Scoreboard: offered vs sustained throughput, p50/p95/p99 latency
// (corrected, upper-bound-flavored percentiles), abort/fallback/elision
// attribution — per backend, per phase.

#include "bench/server/server_driver.h"

using namespace tsx;
using namespace tsx::bench;
using namespace tsx::bench::server;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Server/KV", "open-loop KV/session store on lock elision",
               "traffic-shaped scoreboard (no paper figure; ROADMAP item 2)");

  TrafficConfig traffic;
  traffic.mean_interarrival = 1600;
  traffic.seed = 9100;
  traffic.phases =
      default_phases(args.fast ? 250 : 1200, /*write_ratio=*/0.10);

  return run_server_bench("server_kv", ServiceKind::kKv, traffic, args);
}
