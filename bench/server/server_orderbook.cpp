// Server workload: order book / ledger on raw transactions (ROADMAP item 2).
//
// Zipf-keyed price levels with a conservation ledger (placed - matched ==
// sum of levels) updated in the same transaction as the level — a compact,
// high-contention shape where the flash-crowd phase funnels most traffic
// onto a handful of levels. Write ratio is balanced (placing vs matching).

#include "bench/server/server_driver.h"

using namespace tsx;
using namespace tsx::bench;
using namespace tsx::bench::server;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Server/OrderBook", "open-loop order book / ledger",
               "traffic-shaped scoreboard (no paper figure; ROADMAP item 2)");

  TrafficConfig traffic;
  traffic.mean_interarrival = 1400;
  traffic.seed = 9200;
  traffic.phases =
      default_phases(args.fast ? 250 : 1200, /*write_ratio=*/0.45);

  return run_server_bench("server_orderbook", ServiceKind::kOrderBook, traffic,
                          args);
}
