// Fig. 7: Eigenbench contention sweep (conflict probability low -> high).
//
// Per the paper: 64K working set per thread; the x-axis is the word-
// granularity conflict probability of Hong et al.'s formula (valid for
// TinySTM; RTM's effective contention is higher at 64 B granularity — the
// line-granularity figure is printed alongside). Shape: TinySTM clearly
// wins at low contention; as contention grows TinySTM decays while RTM
// stays roughly flat and ends up ahead.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 7", "Eigenbench contention sweep",
               "TinySTM wins at low contention; RTM flat and ahead at high "
               "contention");

  // Contention is driven by shrinking the shared array under the standard
  // 100-access (90r/10w) transaction, all of whose accesses hit the shared
  // array — so the word-granularity probability (the x-axis) can be dialed
  // from ~0 to ~1. Note the line-granularity column: it saturates far
  // earlier, which is WHY "RTM performance remains almost the same" while
  // TinySTM degrades — RTM is at its false-conflict floor from the start.
  std::vector<uint64_t> hot_bytes = {16ull << 20, 4ull << 20, 1ull << 20,
                                     256ull << 10, 64ull << 10, 16ull << 10,
                                     4096};
  if (args.fast) hot_bytes = {16ull << 20, 256ull << 10, 16ull << 10};

  const uint32_t threads = 4;
  std::vector<EigenTask> tasks;
  for (uint64_t hot : hot_bytes) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    eb.ws_bytes = 64 * 1024;  // per-thread private remainder (warmed)
    eb.reads_mild = 0;
    eb.writes_mild = 0;
    eb.reads_hot = 90;
    eb.writes_hot = 10;
    eb.hot_bytes = hot;
    tasks.push_back({core::Backend::kRtm, threads, eb, 7000});
    tasks.push_back({core::Backend::kTinyStm, threads, eb, 7000});
  }
  std::vector<EigenPoint> points = eigen_points("fig07_contention", tasks, args);

  util::Table t({"P(conflict) word", "P(conflict) line", "RTM speedup",
                 "TinySTM speedup", "RTM energy-eff", "TinySTM energy-eff",
                 "RTM aborts", "TinySTM aborts"});
  for (size_t i = 0; i < hot_bytes.size(); ++i) {
    uint64_t hot = hot_bytes[i];
    const eigenbench::EigenConfig& eb = tasks[2 * i].eb;
    double p_word = eigenbench::conflict_probability(
        threads, eb.reads_hot, eb.writes_hot, hot / 8);
    double p_line = eigenbench::conflict_probability_lines(
        threads, eb.reads_hot, eb.writes_hot, hot);
    const EigenPoint& rtm = points[2 * i];
    const EigenPoint& stm = points[2 * i + 1];
    t.add_row({util::Table::fmt(p_word, 4), util::Table::fmt(p_line, 4),
               util::Table::fmt(rtm.speedup, 2),
               util::Table::fmt(stm.speedup, 2),
               util::Table::fmt(rtm.energy_eff, 2),
               util::Table::fmt(stm.energy_eff, 2),
               util::Table::fmt(rtm.abort_rate, 3),
               util::Table::fmt(stm.abort_rate, 3)});
  }
  emit(t, args);
  return 0;
}
