// Fig. 2: RTM abort rate vs transaction duration.
//
// Single thread, 64-byte working set, zero writes — the only remaining
// abort source is asynchronous events (timer interrupts), so the abort rate
// follows 1 - exp(-T/mean_interrupt_interval). Paper shape: duration starts
// to matter beyond ~30K cycles; at >= 10M cycles every transaction aborts.

#include "bench/bench_common.h"
#include "htm/rtm.h"

using namespace tsx;

namespace {

double duration_abort_rate(sim::Cycles target_cycles, int attempts,
                           uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 1;
  cfg.machine.seed = seed;  // interrupts stay ENABLED: they are the subject
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  sim::Addr data = rt.heap().host_alloc(64, 64);

  uint64_t aborts = 0;
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    m.load(data);  // warm the line
    for (int a = 0; a < attempts; ++a) {
      htm::AttemptResult r = htm::attempt(m, [&] {
        // The paper pads duration with reads of a 64 B set; we model each
        // read as an L1 hit plus its surrounding loop work (~16 cycles per
        // iteration), issued in small quanta so interrupt delivery keeps
        // per-op granularity.
        sim::Cycles spent = 0;
        while (spent < target_cycles) {
          m.load(data);
          m.compute(250);
          spent += 255;
        }
      });
      if (!r.committed) ++aborts;
    }
  });
  return static_cast<double>(aborts) / attempts;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 2", "RTM abort rate vs transaction duration",
                      "abort rate rises past ~30K cycles and reaches 1.0 by "
                      "~10M cycles (timer-interrupt driven)");

  std::vector<uint64_t> durations = {1'000,     3'000,     10'000,   30'000,
                                     100'000,   300'000,   1'000'000,
                                     3'000'000, 10'000'000};
  if (args.fast) {
    durations = {1'000, 30'000, 300'000, 3'000'000, 10'000'000};
  }

  util::Table t({"tx duration (cycles)", "abort rate", "expected 1-exp(-T/mean)"});
  core::RunConfig ref_cfg;
  double mean = ref_cfg.machine.interrupt_mean_cycles;
  for (uint64_t d : durations) {
    // Long transactions are expensive to simulate; scale the attempt count.
    int attempts = d >= 1'000'000 ? 12 : 40;
    double rate = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      rate += duration_abort_rate(d, attempts, 4000 + rep);
    }
    rate /= args.reps;
    double expected = 1.0 - std::exp(-static_cast<double>(d) / mean);
    t.add_row({util::Table::fmt_int(static_cast<int64_t>(d)),
               util::Table::fmt(rate, 3), util::Table::fmt(expected, 3)});
  }
  bench::emit(t, args);
  std::cout << "Shape check: negligible below ~30K cycles, saturating by 10M.\n";
  return 0;
}
