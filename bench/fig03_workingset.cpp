// Fig. 3: Eigenbench working-set size analysis (8K .. 128M per thread).
//
// Paper shape: RTM beats TinySTM for small working sets; both dip once the
// combined working sets exceed the 8M L3 (worst at 4M/thread, where the
// sequential baseline still fits); TinySTM shows false-conflict aborts from
// 16M (lock-table aliasing); RTM recovers somewhat at very large sets; RTM
// is the energy winner up to ~1M.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 3", "Eigenbench working-set size sweep",
               "RTM wins small WS; both dip past L3; TinySTM false conflicts "
               "at 16M+; RTM more energy-efficient up to ~1M");

  std::vector<uint64_t> ws_bytes = {8ull << 10,  32ull << 10, 128ull << 10,
                                    512ull << 10, 1ull << 20, 4ull << 20,
                                    16ull << 20, 64ull << 20};
  if (args.fast) {
    ws_bytes = {8ull << 10, 256ull << 10, 4ull << 20, 16ull << 20};
  }

  // Sweep grid: per working-set size, an RTM and a TinySTM cell. All
  // (cell x rep) runs are independent simulations — the harness shards them
  // across host cores (--jobs) and returns points in grid order.
  std::vector<EigenTask> tasks;
  for (uint64_t ws : ws_bytes) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 120 : 250);
    eb.ws_bytes = ws;
    // Keep total accesses constant across sizes (loops fixed): larger sets
    // are colder, exactly the effect under study.
    tasks.push_back({core::Backend::kRtm, 4, eb, 7000});
    tasks.push_back({core::Backend::kTinyStm, 4, eb, 7000});
  }
  std::vector<EigenPoint> points = eigen_points("fig03_workingset", tasks, args);

  util::Table t({"WS/thread", "RTM speedup", "TinySTM speedup",
                 "RTM energy-eff", "TinySTM energy-eff", "RTM aborts",
                 "TinySTM aborts"});
  for (size_t i = 0; i < ws_bytes.size(); ++i) {
    uint64_t ws = ws_bytes[i];
    const EigenPoint& rtm = points[2 * i];
    const EigenPoint& stm = points[2 * i + 1];
    std::string label = ws >= (1 << 20)
                            ? std::to_string(ws >> 20) + "M"
                            : std::to_string(ws >> 10) + "K";
    t.add_row({label, util::Table::fmt(rtm.speedup, 2),
               util::Table::fmt(stm.speedup, 2),
               util::Table::fmt(rtm.energy_eff, 2),
               util::Table::fmt(stm.energy_eff, 2),
               util::Table::fmt(rtm.abort_rate, 3),
               util::Table::fmt(stm.abort_rate, 3)});
  }
  emit(t, args);
  return 0;
}
