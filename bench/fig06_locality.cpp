// Fig. 6: Eigenbench temporal-locality sweep, 0.0 .. 1.0.
//
// Paper shape: RTM-16K is locality-insensitive; RTM-256K improves with
// locality (fewer distinct lines -> fewer L1 write-set evictions); TinySTM
// *degrades* as locality rises (its per-access instrumentation doesn't get
// cheaper for repeated addresses, while the sequential baseline does).

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 6", "Eigenbench temporal-locality sweep",
               "RTM-16K flat; RTM-256K recovers with locality; TinySTM "
               "prefers unique addresses");

  std::vector<double> locality = {0.0, 0.2, 0.4, 0.6, 0.8, 0.95};
  if (args.fast) locality = {0.0, 0.5, 0.95};

  std::vector<EigenRowSpec> specs;
  for (double l : locality) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    // 280 accesses, like Fig. 5: with the 256K working set at the L1 edge,
    // temporal locality shrinks the distinct-line footprint and rescues the
    // write-set from eviction — low locality aborts, high locality commits.
    eb.reads_mild = 252;
    eb.writes_mild = 28;
    eb.locality = l;
    specs.push_back({util::Table::fmt(l, 2), 4, eb});
  }
  print_eigen_table("locality", eigen_rows("fig06_locality", specs, args),
                    args);
  return 0;
}
