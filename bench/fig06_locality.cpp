// Fig. 6: Eigenbench temporal-locality sweep, 0.0 .. 1.0.
//
// Paper shape: RTM-16K is locality-insensitive; RTM-256K improves with
// locality (fewer distinct lines -> fewer L1 write-set evictions); TinySTM
// *degrades* as locality rises (its per-access instrumentation doesn't get
// cheaper for repeated addresses, while the sequential baseline does).

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 6", "Eigenbench temporal-locality sweep",
               "RTM-16K flat; RTM-256K recovers with locality; TinySTM "
               "prefers unique addresses");

  std::vector<double> locality = {0.0, 0.2, 0.4, 0.6, 0.8, 0.95};
  if (args.fast) locality = {0.0, 0.5, 0.95};

  std::vector<EigenRow> rows;
  for (double l : locality) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    // 280 accesses, like Fig. 5: with the 256K working set at the L1 edge,
    // temporal locality shrinks the distinct-line footprint and rescues the
    // write-set from eviction — low locality aborts, high locality commits.
    eb.reads_mild = 252;
    eb.writes_mild = 28;
    eb.locality = l;

    EigenRow row;
    row.x_label = util::Table::fmt(l, 2);
    eb.ws_bytes = 16 * 1024;
    row.rtm_small = eigen_point(core::Backend::kRtm, 4, eb, args.reps);
    row.stm_small = eigen_point(core::Backend::kTinyStm, 4, eb, args.reps);
    eb.ws_bytes = 256 * 1024;
    row.rtm_medium = eigen_point(core::Backend::kRtm, 4, eb, args.reps);
    rows.push_back(row);
  }
  print_eigen_table("locality", rows, args);
  return 0;
}
