// Host-level google-benchmark microbenchmarks of the simulator itself:
// simulated-ops throughput for the hot paths (cache-hit loads, fiber
// round-trips, RTM attempt overhead, STM read instrumentation). Useful when
// optimizing tsxsim — these numbers bound how large the reproduced
// experiments can be.

#include <benchmark/benchmark.h>

#include "core/runtime.h"
#include "htm/rtm.h"
#include "sim/fiber.h"

using namespace tsx;

namespace {

sim::MachineConfig quiet() {
  sim::MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  bool stop = false;
  sim::Fiber f(64 * 1024, [&] {
    while (!stop) self->yield();
  });
  self = &f;
  for (auto _ : state) {
    f.resume();
  }
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_SimLoadL1Hit(benchmark::State& state) {
  // Each iteration runs a fresh machine executing a fixed batch of L1-hit
  // loads; construction happens outside the timed section.
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) mm.load(0x1000);
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SimLoadL1Hit);

void BM_RtmAttemptCommit(benchmark::State& state) {
  constexpr int kBatch = 512;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) {
        htm::attempt(mm, [&mm] { mm.store(0x1000, 1); });
      }
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_RtmAttemptCommit);

void BM_TinyStmReadTx(benchmark::State& state) {
  constexpr int kBatch = 256;
  for (auto _ : state) {
    state.PauseTiming();
    core::RunConfig cfg;
    cfg.backend = core::Backend::kTinyStm;
    cfg.threads = 1;
    cfg.machine.interrupts_enabled = false;
    cfg.stm.lock_table_entries = 1u << 14;
    core::TxRuntime rt(cfg);
    sim::Addr a = rt.heap().host_alloc(4096, 64);
    state.ResumeTiming();
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < kBatch; ++i) {
        ctx.transaction([&] {
          for (int w = 0; w < 16; ++w) ctx.load(a + w * 8);
          ctx.store(a, i);
        });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TinyStmReadTx);

}  // namespace

BENCHMARK_MAIN();
