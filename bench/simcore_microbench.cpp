// Host-level google-benchmark microbenchmarks of the simulator itself:
// simulated-ops throughput for the hot paths (cache-hit loads and stores,
// fiber round-trips, RTM attempt overhead, STM read/write instrumentation,
// lock elision, heap churn). Useful when optimizing tsxsim — these numbers
// bound how large the reproduced experiments can be.
//
// The pairs BM_SimLoadL1Hit / BM_SimLoadL1HitHooked and BM_TinyStmReadTx /
// BM_TinyStmWriteTx bracket the fast-path design space: the hooked variant
// routes every op through the general path (an installed on_access hook
// disables the inline fast paths), so the ratio of the two is the measured
// value of the fast-path layer. BM_Tl2WriteTx is the regression bench for
// the TL2 commit path staying allocation-free.
//
// Usage: simcore_microbench [--json[=FILE]] [google-benchmark flags...]
//   --json        emit the JSON report on stdout
//   --json=FILE   write the JSON report to FILE (console output unchanged)
// Results are recorded in bench/BENCH_simcore.json (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "elide/elide.h"
#include "htm/rtm.h"
#include "mem/sim_heap.h"
#include "sim/fiber.h"

using namespace tsx;

namespace {

sim::MachineConfig quiet() {
  sim::MachineConfig cfg;
  cfg.interrupts_enabled = false;
  return cfg;
}

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  bool stop = false;
  sim::Fiber f(64 * 1024, [&] {
    while (!stop) self->yield();
  });
  self = &f;
  for (auto _ : state) {
    f.resume();
  }
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_SimLoadL1Hit(benchmark::State& state) {
  // Each iteration runs a fresh machine executing a fixed batch of L1-hit
  // loads; construction happens outside the timed section.
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) mm.load(0x1000);
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SimLoadL1Hit);

void BM_SimStoreL1Hit(benchmark::State& state) {
  // Store fast path: L1 hit, no other-core sharers (single core).
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) mm.store(0x1000, i);
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SimStoreL1Hit);

void BM_SimLoadL1HitHooked(benchmark::State& state) {
  // Same op mix as BM_SimLoadL1Hit but with an access-trace hook installed,
  // which routes every op through the out-of-line general path. The gap to
  // BM_SimLoadL1Hit is the measured win of the inline fast paths.
  constexpr int kBatch = 4096;
  uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    sim::TraceHooks hooks;
    hooks.on_access = [&sink](sim::CtxId, sim::Addr, sim::Word, sim::Word,
                              bool, bool) { ++sink; };
    mm.set_trace_hooks(std::move(hooks));
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) mm.load(0x1000);
    });
    state.ResumeTiming();
    mm.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SimLoadL1HitHooked);

void BM_FiberQuantumBatch(benchmark::State& state) {
  // Two contexts with sched_quantum_ops batching: the scheduler holds each
  // fiber for a quantum of ops instead of re-evaluating the clock race on
  // every op, so the fiber-switch cost amortizes over the quantum.
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    sim::MachineConfig cfg = quiet();
    cfg.sched_quantum_ops = 64;
    sim::Machine mm(cfg, 2);
    mm.prefault(0x1000, 4096);
    mm.prefault(0x200000, 4096);
    for (sim::CtxId t = 0; t < 2; ++t) {
      sim::Addr a = t == 0 ? 0x1000 : 0x200000;
      mm.set_thread(t, [&mm, a] {
        for (int i = 0; i < kBatch; ++i) mm.load(a);
      });
    }
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch * 2);
}
BENCHMARK(BM_FiberQuantumBatch);

void BM_RtmAttemptCommit(benchmark::State& state) {
  constexpr int kBatch = 512;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mm.prefault(0x1000, 4096);
    mm.set_thread(0, [&mm] {
      for (int i = 0; i < kBatch; ++i) {
        htm::attempt(mm, [&mm] { mm.store(0x1000, 1); });
      }
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_RtmAttemptCommit);

core::RunConfig stm_config(core::Backend backend) {
  core::RunConfig cfg;
  cfg.backend = backend;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;
  cfg.stm.lock_table_entries = 1u << 14;
  return cfg;
}

void BM_TinyStmReadTx(benchmark::State& state) {
  constexpr int kBatch = 256;
  for (auto _ : state) {
    state.PauseTiming();
    core::TxRuntime rt(stm_config(core::Backend::kTinyStm));
    sim::Addr a = rt.heap().host_alloc(4096, 64);
    state.ResumeTiming();
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < kBatch; ++i) {
        ctx.transaction([&] {
          for (int w = 0; w < 16; ++w) ctx.load(a + w * 8);
          ctx.store(a, i);
        });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TinyStmReadTx);

void BM_TinyStmWriteTx(benchmark::State& state) {
  // Write-dominated STM transactions: exercises the write-log RAW index
  // (util::WriteIndex) and per-write lock acquisition.
  constexpr int kBatch = 256;
  for (auto _ : state) {
    state.PauseTiming();
    core::TxRuntime rt(stm_config(core::Backend::kTinyStm));
    sim::Addr a = rt.heap().host_alloc(4096, 64);
    state.ResumeTiming();
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < kBatch; ++i) {
        ctx.transaction([&] {
          for (int w = 0; w < 16; ++w) ctx.store(a + w * 8, i + w);
        });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TinyStmWriteTx);

void BM_Tl2WriteTx(benchmark::State& state) {
  // TL2 commit path regression bench: commit-time locking over a 16-word
  // write set. The commit loop must stay allocation-free (the `acquired`
  // tracking is a reused flat index, not a per-commit map).
  constexpr int kBatch = 256;
  for (auto _ : state) {
    state.PauseTiming();
    core::TxRuntime rt(stm_config(core::Backend::kTl2));
    sim::Addr a = rt.heap().host_alloc(4096, 64);
    state.ResumeTiming();
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < kBatch; ++i) {
        ctx.transaction([&] {
          for (int w = 0; w < 16; ++w) ctx.store(a + w * 8, i + w);
        });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_Tl2WriteTx);

void BM_ElideFastPath(benchmark::State& state) {
  // Uncontended elided critical section on the RTM backend: every
  // speculation commits on the first attempt (the elide fast path).
  constexpr int kBatch = 256;
  for (auto _ : state) {
    state.PauseTiming();
    core::RunConfig cfg;
    cfg.backend = core::Backend::kRtm;
    cfg.threads = 1;
    cfg.machine.interrupts_enabled = false;
    core::TxRuntime rt(cfg);
    sim::Addr a = rt.heap().host_alloc(4096, 64);
    elide::mutex mu(rt);
    state.ResumeTiming();
    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < kBatch; ++i) {
        mu.critical_section(ctx, [&] { ctx.store(a, i); });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ElideFastPath);

void BM_HeapAllocFree(benchmark::State& state) {
  // Allocator churn on one size class: steady-state alloc/free pairs after
  // the first refill, exercising the flat block directory and the chunked
  // free stacks.
  constexpr int kBatch = 1024;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine mm(quiet(), 1);
    mem::SimHeap heap(mm);
    mm.set_thread(0, [&mm, &heap] {
      for (int i = 0; i < kBatch; ++i) {
        sim::Addr a = heap.alloc(64);
        heap.free(a);
      }
    });
    state.ResumeTiming();
    mm.run();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_HeapAllocFree);

}  // namespace

int main(int argc, char** argv) {
  // --json[=FILE]: shorthand for google-benchmark's JSON reporters, kept
  // stable for CI and for refreshing bench/BENCH_simcore.json.
  static std::string fmt_arg, out_arg, out_fmt_arg;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      fmt_arg = "--benchmark_format=json";
      args.push_back(fmt_arg.data());
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      out_arg = std::string("--benchmark_out=") + (argv[i] + 7);
      out_fmt_arg = "--benchmark_out_format=json";
      args.push_back(out_arg.data());
      args.push_back(out_fmt_arg.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
