// Ablation: the fallback retry budget (the paper fixes MAX_RETRIES = 8).
//
// Sweeps MAX_RETRIES on a contended STAMP-like workload (intruder) and on a
// capacity-doomed one (labyrinth). Expected: small budgets serialize too
// eagerly under contention (lock aborts snowball); large budgets waste
// cycles re-attempting hopeless capacity overflows; 4-16 is the sweet spot
// for conflict-dominated workloads while capacity-dominated ones want the
// smallest budget.

#include "bench/bench_common.h"
#include "stamp/apps/intruder.h"
#include "stamp/apps/labyrinth.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "RTM fallback retry budget (MAX_RETRIES)",
               "paper uses 8; conflict workloads tolerate larger budgets, "
               "capacity workloads want small ones");

  std::vector<int> budgets = {1, 2, 4, 8, 16, 64};
  if (args.fast) budgets = {1, 8, 64};

  util::Table t({"MAX_RETRIES", "intruder Mcycles", "intruder fallback rate",
                 "labyrinth Mcycles", "labyrinth fallback rate"});
  for (int budget : budgets) {
    core::RunConfig cfg;
    cfg.backend = core::Backend::kRtm;
    cfg.threads = 4;
    cfg.retry.max_attempts = budget;

    stamp::IntruderConfig iapp;
    iapp.flows = args.fast ? 128 : 384;
    iapp.max_fragments = 10;
    std::vector<double> it, ifb, lt, lfb;
    for (int rep = 0; rep < args.reps; ++rep) {
      cfg.machine.seed = 9300 + rep;
      cfg.seed = cfg.machine.seed;
      auto ires = stamp::run_intruder(cfg, iapp);
      if (!ires.valid) {
        std::cerr << "intruder invalid: " << ires.validation_message << "\n";
        return 1;
      }
      it.push_back(ires.report.wall_cycles / 1e6);
      ifb.push_back(ires.report.rtm.fallback_rate());

      stamp::LabyrinthConfig lapp;
      lapp.width = 32;
      lapp.height = 32;
      lapp.paths = args.fast ? 8 : 16;
      auto lres = stamp::run_labyrinth(cfg, lapp);
      if (!lres.valid) {
        std::cerr << "labyrinth invalid: " << lres.validation_message << "\n";
        return 1;
      }
      lt.push_back(lres.report.wall_cycles / 1e6);
      lfb.push_back(lres.report.rtm.fallback_rate());
    }
    t.add_row({std::to_string(budget), util::Table::fmt(util::mean(it), 2),
               util::Table::fmt(util::mean(ifb), 3),
               util::Table::fmt(util::mean(lt), 2),
               util::Table::fmt(util::mean(lfb), 3)});
  }
  emit(t, args);
  return 0;
}
