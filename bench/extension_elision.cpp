// Extension: transactional lock elision (src/elide) vs the raw lock and raw
// transactions on a counting kernel.
//
// Three modes run the identical critical section:
//
//   elided    elide::mutex::critical_section — speculate with the lock word
//             subscribed, fall back to the real lock on budget exhaustion
//   raw-lock  the same mutex with elision disabled: every section takes the
//             real lock (the glibc "elision compiled out" baseline)
//   raw-tx    ctx.transaction — the executor's transaction path, no lock at
//             all (the ceiling: what speculation could achieve if the lock
//             vanished)
//
// Elision should track raw-tx while contention stays low enough for
// speculation to commit, and degrade toward raw-lock — via fallbacks — as
// conflicts rise; the per-lock statistics table shows exactly where the
// budget goes. Run with --perf-stat to see the same counters through the
// PMU's "lock elision (per lock)" block, and --manifest to get them as the
// machine-readable `elide_locks` array.

#include <memory>

#include "bench/bench_common.h"
#include "elide/elide.h"

using namespace tsx;

namespace {

enum class Mode : uint32_t { kElided, kRawLock, kRawTx };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kElided: return "elided";
    case Mode::kRawLock: return "raw-lock";
    case Mode::kRawTx: return "raw-tx";
  }
  return "?";
}

constexpr uint32_t kArrayWords = 64;
constexpr uint32_t kSectionWords = 2;

struct CellOut {
  double wall_cycles = 0;
  uint64_t sections = 0;
  elide::ElideStats stats;  // zero-valued for raw-tx
};

CellOut run_cell(Mode mode, uint32_t threads, uint32_t loops, int rep,
                 const std::string& obs_label) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = threads;
  cfg.machine.seed = 9100 + static_cast<uint64_t>(rep);
  cfg.seed = 77 + static_cast<uint64_t>(rep);
  bench::apply_obs(cfg, obs_label);
  core::TxRuntime rt(cfg);

  // Precomputed per-(thread, section) address schedule, so every mode and
  // every retry performs the identical work.
  std::vector<std::vector<uint32_t>> sched(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    sim::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + t);
    for (uint32_t j = 0; j < loops * kSectionWords; ++j) {
      sched[t].push_back(static_cast<uint32_t>(rng.below(kArrayWords)));
    }
  }

  sim::Addr arr =
      rt.heap().host_alloc(kArrayWords * sim::kWordBytes, sim::kLineBytes);
  for (uint32_t i = 0; i < kArrayWords; ++i) {
    rt.machine().poke(arr + i * sim::kWordBytes, 0);
  }

  elide::ElideConfig ec;
  ec.elision_enabled = mode != Mode::kRawLock;
  auto mu = std::make_unique<elide::mutex>(rt, "bench-mutex", ec);

  rt.run([&](core::TxCtx& ctx) {
    const std::vector<uint32_t>& s = sched[ctx.id()];
    for (uint32_t j = 0; j < loops; ++j) {
      auto body = [&] {
        for (uint32_t k = 0; k < kSectionWords; ++k) {
          sim::Addr a = arr + s[j * kSectionWords + k] * sim::kWordBytes;
          ctx.store(a, ctx.load(a) + 1);
        }
        ctx.compute(80);  // section work besides the shared accesses
      };
      if (mode == Mode::kRawTx) {
        ctx.transaction(body, /*site=*/1);
      } else {
        mu->critical_section(ctx, body);
      }
    }
  });

  CellOut out;
  out.wall_cycles = static_cast<double>(rt.report().wall_cycles);
  out.sections = static_cast<uint64_t>(threads) * loops;
  out.stats = mu->stats();
  return out;
}

std::string pct_of(uint64_t part, uint64_t whole) {
  if (whole == 0) return "-";
  return util::Table::fmt(100.0 * static_cast<double>(part) /
                              static_cast<double>(whole),
                          1) +
         "%";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Extension", "transactional lock elision: elided vs raw-lock vs raw-tx",
      "elision tracks raw transactions while speculation commits, and decays "
      "toward the raw lock as fallbacks take over");

  const uint32_t loops = args.fast ? 300 : 1000;
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  if (args.fast) thread_counts = {1, 4};
  const std::vector<Mode> modes = {Mode::kElided, Mode::kRawLock,
                                   Mode::kRawTx};

  struct Cell {
    Mode mode;
    uint32_t threads;
    int rep;
  };
  std::vector<Cell> grid;
  for (uint32_t t : thread_counts) {
    for (Mode m : modes) {
      for (int rep = 0; rep < args.reps; ++rep) grid.push_back({m, t, rep});
    }
  }

  harness::Digest dig;
  dig.add(static_cast<uint64_t>(loops));
  dig.add(static_cast<uint64_t>(args.reps));
  for (const Cell& c : grid) {
    dig.add(static_cast<uint64_t>(c.mode));
    dig.add(c.threads);
  }
  auto label_of = [&](size_t i) {
    const Cell& c = grid[i];
    return std::string("elide:") + mode_name(c.mode) + ":t" +
           std::to_string(c.threads) + ":rep" + std::to_string(c.rep);
  };

  harness::Runner runner(
      bench::runner_options(args, "extension_elision", dig.value()));
  std::vector<CellOut> cells = runner.map<CellOut>(
      grid.size(),
      [&](size_t i) {
        const Cell& c = grid[i];
        return run_cell(c.mode, c.threads, loops, c.rep, label_of(i));
      },
      [&](size_t i) {
        const Cell& c = grid[i];
        harness::Job j;
        j.seed = 9100 + static_cast<uint64_t>(c.rep);
        j.label = label_of(i);
        return j;
      });

  // Throughput table, aggregated in grid order (deterministic across
  // --jobs): sections per kilocycle, normalized per mode to its own
  // 1-thread run so the scaling trend is directly readable.
  util::Table t({"threads", "mode", "sections/kcyc", "vs 1-thread",
                 "elided", "fallback"});
  std::map<std::pair<Mode, uint32_t>, CellOut> agg;
  {
    size_t i = 0;
    for (uint32_t th : thread_counts) {
      for (Mode m : modes) {
        CellOut sum;
        for (int rep = 0; rep < args.reps; ++rep, ++i) {
          const CellOut& c = cells[i];
          sum.wall_cycles += c.wall_cycles;
          sum.sections += c.sections;
          sum.stats.acquisitions += c.stats.acquisitions;
          sum.stats.attempts += c.stats.attempts;
          sum.stats.elided += c.stats.elided;
          sum.stats.busy_waits += c.stats.busy_waits;
          sum.stats.aborts += c.stats.aborts;
          sum.stats.fallbacks += c.stats.fallbacks;
          sum.stats.lock_acquires += c.stats.lock_acquires;
          sum.stats.self_stops += c.stats.self_stops;
          sum.stats.cycles_elided += c.stats.cycles_elided;
          sum.stats.cycles_wasted += c.stats.cycles_wasted;
        }
        agg[{m, th}] = sum;
      }
    }
  }
  auto thpt = [](const CellOut& c) {
    return 1000.0 * static_cast<double>(c.sections) / c.wall_cycles;
  };
  for (uint32_t th : thread_counts) {
    for (Mode m : modes) {
      const CellOut& c = agg[{m, th}];
      const CellOut& base = agg[{m, thread_counts.front()}];
      t.add_row({std::to_string(th), mode_name(m),
                 util::Table::fmt(thpt(c), 3),
                 util::Table::fmt(thpt(c) / thpt(base), 2),
                 pct_of(c.stats.elided, c.stats.acquisitions),
                 pct_of(c.stats.fallbacks, c.stats.acquisitions)});
    }
  }
  bench::emit(t, args);

  // Per-lock statistics for the elided mode — the host-side view of the
  // counters the PMU reports per lock (EXPERIMENTS.md "Lock elision").
  util::Table t2({"threads", "acq", "attempts", "elided", "busy", "aborts",
                  "fallbacks", "self-stops", "wasted-cyc%"});
  for (uint32_t th : thread_counts) {
    const elide::ElideStats& s = agg[{Mode::kElided, th}].stats;
    sim::Cycles spec = s.cycles_elided + s.cycles_wasted;
    t2.add_row({std::to_string(th), std::to_string(s.acquisitions),
                std::to_string(s.attempts), std::to_string(s.elided),
                std::to_string(s.busy_waits), std::to_string(s.aborts),
                std::to_string(s.fallbacks), std::to_string(s.self_stops),
                spec ? util::Table::fmt(100.0 *
                                            static_cast<double>(s.cycles_wasted) /
                                            static_cast<double>(spec),
                                        1)
                     : "-"});
  }
  bench::emit(t2, args);
  std::cout << "Shape check: elided throughput sits between raw-lock and "
               "raw-tx, converging on raw-tx when speculation commits.\n";
  return 0;
}
