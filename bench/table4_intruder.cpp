// Table IV: intruder — baseline vs §V-A optimized code (prepend + deferred
// sort), at 1/2/4 threads under RTM.
//
// Paper reference: ~48% execution-time reduction at every thread count,
// abort rate 0.28 -> 0.14 at 4 threads, cycles/tx halved (~1800 -> ~900),
// and TID1 memory-induced aborts (capacity+conflict) dropping from 86% to
// 36% single-threaded.

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

core::RunConfig rtm_cfg(uint32_t threads, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  scale_machine_for_stamp(cfg.machine);
  apply_heap(cfg);  // --malloc-policy
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Table IV", "intruder: baseline vs optimized (§V-A)",
               "~48% time reduction, abort rate halved, cycles/tx ~1800->900, "
               "TID1 capacity+conflict share 86%->36% (1 thread)");

  // Long flows, like the paper's recommended large input: the reassembly
  // list walk dominates the transaction.
  stamp::IntruderConfig base;
  base.flows = args.fast ? 48 : 128;
  base.max_fragments = 160;
  stamp::IntruderConfig opt = base;
  opt.optimized = true;

  util::Table t({"version", "threads", "Mcycles", "% reduc", "speedup",
                 "cycles/tx", "abort rate", "TID1 abort", "TID1 %cap",
                 "TID1 %confl", "TID1 %other"});

  // All (version, threads, rep) runs are independent; fan them out through
  // the sweep harness in serial nesting order, then aggregate below in that
  // same order (byte-identical stdout for any --jobs).
  const std::vector<uint32_t> thread_counts = {1, 2, 4};
  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(base.flows);
  dig.add(base.max_fragments);
  dig.add(static_cast<uint64_t>(reps));
  harness::Runner runner(runner_options(args, "table4_intruder", dig.value()));
  std::vector<stamp::AppResult> results;
  try {
    results = runner.map<stamp::AppResult>(
      2 * thread_counts.size() * reps,
      [&](size_t i) {
        bool optimized = i >= thread_counts.size() * reps;
        size_t r = i % (thread_counts.size() * reps);
        uint32_t threads = thread_counts[r / reps];
        int rep = static_cast<int>(r % reps);
        auto res = stamp::run_intruder(rtm_cfg(threads, 9100 + rep),
                                       optimized ? opt : base);
        if (!res.valid) {
          throw std::runtime_error("VALIDATION FAILED: " +
                                   res.validation_message);
        }
        return res;
      },
      [&](size_t i) {
        bool optimized = i >= thread_counts.size() * reps;
        size_t r = i % (thread_counts.size() * reps);
        harness::Job j;
        j.seed = 9100 + r % reps;
        j.label = std::string("table4:") + (optimized ? "opt" : "base") + ":" +
                  std::to_string(thread_counts[r / reps]) + "t:rep" +
                  std::to_string(r % reps);
        return j;
      });
  } catch (const std::runtime_error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::array<double, 4> base_time{};  // per-thread-count baseline times
  size_t job = 0;
  for (bool optimized : {false, true}) {
    double one_thread_time = 0;
    for (uint32_t threads : {1u, 2u, 4u}) {
      std::vector<double> times;
      stamp::AppResult last;
      for (int rep = 0; rep < args.reps; ++rep) {
        const auto& res = results[job++];
        times.push_back(static_cast<double>(res.report.wall_cycles));
        last = res;
      }
      double time = util::mean(times);
      if (threads == 1) one_thread_time = time;
      size_t tidx = threads == 1 ? 0 : (threads == 2 ? 1 : 2);
      if (!optimized) base_time[tidx] = time;

      htm::RtmStats overall = last.report.rtm;
      htm::RtmStats tid1 =
          last.report.site_stats(stamp::kIntruderSiteReassembly);
      double cycles_per_tx =
          static_cast<double>(tid1.cycles_committed) /
          std::max<uint64_t>(tid1.commits, 1);
      double tid1_aborts = static_cast<double>(tid1.aborts());
      auto cls = [&](htm::AbortClass c) {
        return tid1_aborts == 0
                   ? 0.0
                   : tid1.aborts_by_class[static_cast<size_t>(c)] / tid1_aborts;
      };
      double pct_cap = cls(htm::AbortClass::kWriteCapacity);
      double pct_confl = cls(htm::AbortClass::kConflictOrReadCap);
      double pct_other = 1.0 - pct_cap - pct_confl;
      double reduc = optimized ? 100.0 * (1.0 - time / base_time[tidx]) : 0.0;

      t.add_row({optimized ? "Opt" : "Base", std::to_string(threads),
                 util::Table::fmt(time / 1e6, 2),
                 optimized ? util::Table::fmt(reduc, 1) : "-",
                 util::Table::fmt(one_thread_time / time, 2),
                 util::Table::fmt(cycles_per_tx, 0),
                 util::Table::fmt(overall.abort_rate(), 2),
                 util::Table::fmt(tid1.abort_rate(), 2),
                 util::Table::fmt(pct_cap, 2), util::Table::fmt(pct_confl, 2),
                 util::Table::fmt(pct_other, 2)});
    }
  }
  emit(t, args);
  return 0;
}
