// Fig. 10: STAMP execution time, RTM vs TinySTM, 1/2/4/8 threads,
// normalized to a sequential (non-TM) run.
//
// Paper shapes per app (§IV): bayes/yada — TinySTM wins at all counts;
// genome/vacation — tie to 4 threads, RTM drops at 8; intruder — RTM scales
// to 4, tie at 8; kmeans/ssca2 — RTM ahead; labyrinth — RTM serializes.

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 10", "STAMP execution time (normalized to sequential)",
               "lower is better; see per-app shapes in the paper's §IV");

  std::vector<uint32_t> threads = {1, 2, 4, 8};
  std::vector<StampTask> tasks;
  for (const auto& app : stamp_apps()) {
    for (core::Backend b : {core::Backend::kRtm, core::Backend::kTinyStm}) {
      for (uint32_t n : threads) tasks.push_back({app, b, n, 9000});
    }
  }
  std::vector<StampCell> cells = stamp_cells("fig10_stamp_perf", tasks, args);

  util::Table t({"app", "system", "1t", "2t", "4t", "8t"});
  for (size_t i = 0; i < tasks.size(); i += threads.size()) {
    std::vector<std::string> row{tasks[i].app.name,
                                 core::backend_name(tasks[i].backend)};
    for (size_t k = 0; k < threads.size(); ++k) {
      row.push_back(util::Table::fmt(cells[i + k].norm_time, 2));
    }
    t.add_row(row);
  }
  emit(t, args);
  std::cout << "All runs validated their final application state.\n";
  return 0;
}
