// Ablation: the fallback lock-subscription policy of Algorithm 1.
//
// The paper's pseudocode reads the serial lock *inside* the transaction
// (subscribe-in-tx), so a fallback acquisition aborts all speculative
// transactions immediately ("lock aborts"). It also notes the alternative:
// reading the lock before the transaction lets doomed transactions keep
// running and abort later for other reasons — avoiding lock aborts does not
// necessarily help because they mask other abort types.
//
// LockSubscription::kNone is measured only on a workload whose fallback body is
// idempotent-safe here (shared counter with ticketed stores would be unsafe
// in general; we use it to show WHY subscription is required: lost updates).

#include "bench/bench_common.h"
#include "stamp/apps/intruder.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "fallback lock-subscription policy",
               "subscribe-in-tx (paper) vs wait-then-subscribe; lock aborts "
               "shift into other abort classes, not into free performance");

  util::Table t({"policy", "Mcycles", "abort rate", "lock-abort share",
                 "confl share", "fallback rate"});
  for (auto mode : {core::LockSubscription::kSubscribeInTx,
                    core::LockSubscription::kWaitThenSubscribe}) {
    std::vector<double> time, ar, lock_share, confl_share, fb;
    for (int rep = 0; rep < args.reps; ++rep) {
      core::RunConfig cfg;
      cfg.backend = core::Backend::kRtm;
      cfg.threads = 4;
      cfg.retry.subscription = mode;
      cfg.machine.seed = 9400 + rep;
      cfg.seed = cfg.machine.seed;
      stamp::IntruderConfig app;
      app.flows = args.fast ? 128 : 384;
      app.max_fragments = 12;
      auto res = stamp::run_intruder(cfg, app);
      if (!res.valid) {
        std::cerr << "invalid: " << res.validation_message << "\n";
        return 1;
      }
      const htm::RtmStats& s = res.report.rtm;
      double aborts = static_cast<double>(std::max<uint64_t>(s.aborts(), 1));
      time.push_back(res.report.wall_cycles / 1e6);
      ar.push_back(s.abort_rate());
      lock_share.push_back(
          s.aborts_by_class[size_t(htm::AbortClass::kLock)] / aborts);
      confl_share.push_back(
          s.aborts_by_class[size_t(htm::AbortClass::kConflictOrReadCap)] /
          aborts);
      fb.push_back(s.fallback_rate());
    }
    const char* name = mode == core::LockSubscription::kSubscribeInTx
                           ? "subscribe-in-tx"
                           : "wait-then-subscribe";
    t.add_row({name, util::Table::fmt(util::mean(time), 2),
               util::Table::fmt(util::mean(ar), 3),
               util::Table::fmt(util::mean(lock_share), 3),
               util::Table::fmt(util::mean(confl_share), 3),
               util::Table::fmt(util::mean(fb), 3)});
  }
  emit(t, args);
  return 0;
}
