// Fig. 5: Eigenbench pollution (write-fraction) sweep, 0.0 .. 1.0.
//
// Paper shape: with a 16K working set RTM is symmetric in read/write mix;
// with 256K, RTM speedup decays as pollution rises (write-sets are bounded
// by L1, read-sets by L3) and TinySTM overtakes it past ~0.4.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 5", "Eigenbench pollution sweep",
               "RTM-16K flat; RTM-256K decays with write fraction, TinySTM "
               "wins beyond pollution ~0.4");

  std::vector<double> pollution = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  if (args.fast) pollution = {0.0, 0.4, 1.0};

  std::vector<EigenRowSpec> specs;
  for (double p : pollution) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    // 280 accesses: at the 256K working set this sits at the L1-pressure
    // edge (Fig. 4), where the write fraction visibly controls how many
    // tx-written lines get evicted — the paper's asymmetry mechanism.
    uint32_t len = 280;
    eb.writes_mild = static_cast<uint32_t>(len * p + 0.5);
    eb.reads_mild = len - eb.writes_mild;
    specs.push_back({util::Table::fmt(p, 1), 4, eb});
  }
  print_eigen_table("pollution", eigen_rows("fig05_pollution", specs, args),
                    args);
  return 0;
}
