// Fig. 1: RTM read-set and write-set capacity test.
//
// Single thread; each transaction touches N distinct cache lines (read-only
// or write-only) and simply retries never — we measure the abort probability
// of a fresh attempt at each set size, exactly like the paper's custom
// microbenchmark. Expected shape: write-only aborts saturate at 512 lines
// (the L1d), read-only aborts at ~128K lines (the L3).

#include "bench/bench_common.h"
#include "htm/rtm.h"

using namespace tsx;

namespace {

// Returns the abort rate of transactions touching `lines` lines.
double capacity_abort_rate(uint64_t lines, bool writes, int attempts_per_size,
                           uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 1;
  cfg.machine.interrupts_enabled = false;  // isolate the capacity effect
  cfg.machine.seed = seed;

  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  // A contiguous region of `lines` lines, prefaulted and pre-touched so the
  // only abort cause left is capacity.
  sim::Addr base = rt.heap().host_alloc(lines * sim::kLineBytes, 64);

  uint64_t aborts = 0;
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    // Warm the region (brings lines into the hierarchy non-transactionally).
    for (uint64_t i = 0; i < lines; ++i) {
      m.load(base + i * sim::kLineBytes);
    }
    for (int a = 0; a < attempts_per_size; ++a) {
      htm::AttemptResult r = htm::attempt(m, [&] {
        for (uint64_t i = 0; i < lines; ++i) {
          sim::Addr addr = base + i * sim::kLineBytes;
          if (writes) {
            m.store(addr, a);
          } else {
            (void)m.load(addr);
          }
        }
      });
      if (!r.committed) ++aborts;
    }
  });
  return static_cast<double>(aborts) / attempts_per_size;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Fig. 1", "RTM read-set / write-set capacity",
      "write-only abort rate saturates at 512 cache blocks (L1d size); "
      "read-only abort rate saturates at 128K cache blocks (L3 size)");

  std::vector<uint64_t> sizes = {16,   64,    128,   256,   384,   512,
                                 768,  1024,  4096,  16384, 49152, 98304,
                                 131072, 196608};
  if (args.fast) {
    sizes = {64, 256, 512, 1024, 16384, 131072, 196608};
  }
  int attempts = args.fast ? 3 : 5;

  util::Table t({"cache blocks", "write-only abort rate", "read-only abort rate"});
  for (uint64_t n : sizes) {
    double w = 0, r = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      w += capacity_abort_rate(n, true, attempts, 1000 + rep);
      // Reads beyond the L3 get slow; cap the attempt count there.
      r += capacity_abort_rate(n, false, n > 65536 ? 2 : attempts, 2000 + rep);
    }
    t.add_row({util::Table::fmt_int(static_cast<int64_t>(n)),
               util::Table::fmt(w / args.reps, 2),
               util::Table::fmt(r / args.reps, 2)});
  }
  bench::emit(t, args);

  std::cout << "Shape check: write-only aborts reach 1.0 by 512+ blocks while\n"
               "read-only transactions keep committing until the working set\n"
               "approaches the 131072-block L3.\n";
  return 0;
}
