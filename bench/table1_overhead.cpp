// Table I: relative overheads of RTM versus locks and CAS on the STAMP
// queue-drain microbenchmark, normalized to the spinlock variant.
//
// Paper reference values (execution time / lock time):
//   contention  None   Lock  CAS   RTM
//   none        0.64   1     1.05  1.45
//   low         n/a    1     0.64  0.69
//   high        n/a    1     0.64  0.47

#include "bench/bench_common.h"
#include "htm/rtm.h"
#include "stamp/apps/app.h"
#include "stamp/lib/queue.h"
#include "sync/spinlock.h"

using namespace tsx;

namespace {

enum class Sync { kNone, kLock, kCas, kRtm };

// Drains a prefilled queue with the given synchronization; returns the
// wall-cycles of the drain (measured region only).
double drain_cycles(Sync sync, uint32_t threads, uint64_t elements,
                    sim::Cycles local_work, uint64_t seed,
                    const std::string& obs_label) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kSeq;  // synchronization is managed here
  cfg.threads = threads;
  cfg.machine.seed = seed;
  bench::apply_obs(cfg, obs_label);
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();

  stamp::Queue q = stamp::Queue::create(rt, elements);
  for (uint64_t i = 0; i < elements; ++i) q.host_push(rt, i + 1);
  // Prefault the queue's element pages (drain reads all of them).
  sim::Addr lock_mem = rt.heap().host_alloc(256, 64);
  sync::TicketSpinLock lock(m, lock_mem);
  lock.init();

  rt.run([&](core::TxCtx& ctx) {
    stamp::measured_region_begin(ctx);
    sim::Word v = 0;
    for (;;) {
      bool got = false;
      switch (sync) {
        case Sync::kNone:
          got = q.pop(ctx, &v);
          break;
        case Sync::kLock:
          lock.lock();
          got = q.pop(ctx, &v);
          lock.unlock();
          break;
        case Sync::kCas:
          got = q.pop_cas(ctx, &v);
          break;
        case Sync::kRtm: {
          for (;;) {
            htm::AttemptResult r =
                htm::attempt(m, [&] { got = q.pop(ctx, &v); });
            if (r.committed) break;
          }
          break;
        }
      }
      if (!got) break;
      if (local_work) ctx.compute(local_work);
    }
  });
  return static_cast<double>(rt.report().wall_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Table I", "queue-pop overhead: None / Lock / CAS / RTM",
      "none: RTM ~1.45x lock, CAS ~1.05x; low contention: CAS 0.64 / RTM "
      "0.69; high contention: CAS 0.64 / RTM 0.47 (normalized to Lock)");

  uint64_t elements = args.fast ? 20'000 : 100'000;  // paper uses 1M; scaled

  struct Row {
    const char* name;
    uint32_t threads;
    sim::Cycles local_work;
    bool include_none;
  };
  std::vector<Row> rows = {
      {"none", 1, 0, true},
      {"low", 4, 500, false},  // local work between critical sections
      {"high", 4, 0, false},
  };

  // One job per (contention row, rep, sync variant) — every drain is an
  // independent simulation. The grid is laid out in the serial nesting
  // order (row -> rep -> sync), and sums are accumulated in that same order
  // after the harness returns, so stdout is byte-identical for any --jobs.
  struct Cell {
    size_t row;
    int rep;
    Sync sync;
    const char* sync_name;
  };
  std::vector<Cell> grid;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int rep = 0; rep < args.reps; ++rep) {
      if (rows[r].include_none) grid.push_back({r, rep, Sync::kNone, "none"});
      grid.push_back({r, rep, Sync::kLock, "lock"});
      grid.push_back({r, rep, Sync::kCas, "cas"});
      grid.push_back({r, rep, Sync::kRtm, "rtm"});
    }
  }

  harness::Digest dig;
  dig.add(elements);
  dig.add(static_cast<uint64_t>(args.reps));
  for (const Cell& c : grid) {
    dig.add(c.row);
    dig.add(static_cast<uint64_t>(c.sync));
    dig.add(rows[c.row].threads);
    dig.add(rows[c.row].local_work);
  }
  auto label_of = [&](size_t i) {
    const Cell& c = grid[i];
    return std::string("table1:") + rows[c.row].name + ":" + c.sync_name +
           ":rep" + std::to_string(c.rep);
  };
  harness::Runner runner(
      bench::runner_options(args, "table1_overhead", dig.value()));
  std::vector<double> cycles = runner.map<double>(
      grid.size(),
      [&](size_t i) {
        const Cell& c = grid[i];
        return drain_cycles(c.sync, rows[c.row].threads, elements,
                            rows[c.row].local_work, 5000 + c.rep, label_of(i));
      },
      [&](size_t i) {
        const Cell& c = grid[i];
        harness::Job j;
        j.seed = 5000 + static_cast<uint64_t>(c.rep);
        j.label = label_of(i);
        return j;
      });

  util::Table t({"contention", "None", "Lock", "CAS", "RTM"});
  {
    size_t i = 0;
    for (const auto& row : rows) {
      double none = 0, lck = 0, cas = 0, rtm = 0;
      for (int rep = 0; rep < args.reps; ++rep) {
        if (row.include_none) none += cycles[i++];
        lck += cycles[i++];
        cas += cycles[i++];
        rtm += cycles[i++];
      }
      t.add_row({row.name,
                 row.include_none ? util::Table::fmt(none / lck, 2) : "-",
                 "1.00", util::Table::fmt(cas / lck, 2),
                 util::Table::fmt(rtm / lck, 2)});
    }
  }
  bench::emit(t, args);
  std::cout << "Shape check: RTM loses without contention (begin/commit "
               "overhead) and wins under high contention (no hold-and-wait).\n";
  return 0;
}
