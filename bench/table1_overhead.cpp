// Table I: relative overheads of RTM versus locks and CAS on the STAMP
// queue-drain microbenchmark, normalized to the spinlock variant.
//
// Paper reference values (execution time / lock time):
//   contention  None   Lock  CAS   RTM
//   none        0.64   1     1.05  1.45
//   low         n/a    1     0.64  0.69
//   high        n/a    1     0.64  0.47

#include "bench/bench_common.h"
#include "htm/rtm.h"
#include "stamp/apps/app.h"
#include "stamp/lib/queue.h"
#include "sync/spinlock.h"

using namespace tsx;

namespace {

enum class Sync { kNone, kLock, kCas, kRtm };

// Drains a prefilled queue with the given synchronization; returns the
// wall-cycles of the drain (measured region only).
double drain_cycles(Sync sync, uint32_t threads, uint64_t elements,
                    sim::Cycles local_work, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kSeq;  // synchronization is managed here
  cfg.threads = threads;
  cfg.machine.seed = seed;
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();

  stamp::Queue q = stamp::Queue::create(rt, elements);
  for (uint64_t i = 0; i < elements; ++i) q.host_push(rt, i + 1);
  // Prefault the queue's element pages (drain reads all of them).
  sim::Addr lock_mem = rt.heap().host_alloc(256, 64);
  sync::TicketSpinLock lock(m, lock_mem);
  lock.init();

  rt.run([&](core::TxCtx& ctx) {
    stamp::measured_region_begin(ctx);
    sim::Word v = 0;
    for (;;) {
      bool got = false;
      switch (sync) {
        case Sync::kNone:
          got = q.pop(ctx, &v);
          break;
        case Sync::kLock:
          lock.lock();
          got = q.pop(ctx, &v);
          lock.unlock();
          break;
        case Sync::kCas:
          got = q.pop_cas(ctx, &v);
          break;
        case Sync::kRtm: {
          for (;;) {
            htm::AttemptResult r =
                htm::attempt(m, [&] { got = q.pop(ctx, &v); });
            if (r.committed) break;
          }
          break;
        }
      }
      if (!got) break;
      if (local_work) ctx.compute(local_work);
    }
  });
  return static_cast<double>(rt.report().wall_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Table I", "queue-pop overhead: None / Lock / CAS / RTM",
      "none: RTM ~1.45x lock, CAS ~1.05x; low contention: CAS 0.64 / RTM "
      "0.69; high contention: CAS 0.64 / RTM 0.47 (normalized to Lock)");

  uint64_t elements = args.fast ? 20'000 : 100'000;  // paper uses 1M; scaled

  struct Row {
    const char* name;
    uint32_t threads;
    sim::Cycles local_work;
    bool include_none;
  };
  std::vector<Row> rows = {
      {"none", 1, 0, true},
      {"low", 4, 500, false},  // local work between critical sections
      {"high", 4, 0, false},
  };

  util::Table t({"contention", "None", "Lock", "CAS", "RTM"});
  for (const auto& row : rows) {
    double none = 0, lck = 0, cas = 0, rtm = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      uint64_t seed = 5000 + rep;
      if (row.include_none) {
        none += drain_cycles(Sync::kNone, row.threads, elements,
                             row.local_work, seed);
      }
      lck += drain_cycles(Sync::kLock, row.threads, elements, row.local_work,
                          seed);
      cas += drain_cycles(Sync::kCas, row.threads, elements, row.local_work,
                          seed);
      rtm += drain_cycles(Sync::kRtm, row.threads, elements, row.local_work,
                          seed);
    }
    t.add_row({row.name,
               row.include_none ? util::Table::fmt(none / lck, 2) : "-",
               "1.00", util::Table::fmt(cas / lck, 2),
               util::Table::fmt(rtm / lck, 2)});
  }
  bench::emit(t, args);
  std::cout << "Shape check: RTM loses without contention (begin/commit "
               "overhead) and wins under high contention (no hold-and-wait).\n";
  return 0;
}
