// Ablation: TinySTM (encounter-time locking + timestamp extension) vs TL2
// (commit-time locking, no extension).
//
// The paper chose TinySTM over TL2 after finding "TinySTM consistently
// outperforms TL2" (§VI, referencing the Yoo et al. RTM-vs-TL2 study).
// This bench reruns the Eigenbench default configuration plus a contended
// variant under both STMs.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "STM design: TinySTM vs TL2",
               "the paper reports TinySTM consistently ahead of TL2");

  struct Scenario {
    const char* name;
    eigenbench::EigenConfig eb;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s{"default 90r/10w 16K", paper_default_eb(args.fast ? 100 : 200)};
    scenarios.push_back(s);
  }
  {
    Scenario s{"write-heavy 50r/50w", paper_default_eb(args.fast ? 100 : 200)};
    s.eb.reads_mild = 50;
    s.eb.writes_mild = 50;
    scenarios.push_back(s);
  }
  {
    Scenario s{"contended hot 4K", paper_default_eb(args.fast ? 100 : 200)};
    s.eb.reads_mild = 84;
    s.eb.writes_mild = 8;
    s.eb.reads_hot = 4;
    s.eb.writes_hot = 4;
    s.eb.hot_bytes = 4096;
    scenarios.push_back(s);
  }

  util::Table t({"scenario", "TinySTM speedup", "TL2 speedup",
                 "TinySTM aborts", "TL2 aborts", "TinySTM energy-eff",
                 "TL2 energy-eff"});
  for (const auto& s : scenarios) {
    EigenPoint tiny = eigen_point(core::Backend::kTinyStm, 4, s.eb, args.reps);
    EigenPoint tl2 = eigen_point(core::Backend::kTl2, 4, s.eb, args.reps);
    t.add_row({s.name, util::Table::fmt(tiny.speedup, 2),
               util::Table::fmt(tl2.speedup, 2),
               util::Table::fmt(tiny.abort_rate, 3),
               util::Table::fmt(tl2.abort_rate, 3),
               util::Table::fmt(tiny.energy_eff, 2),
               util::Table::fmt(tl2.energy_eff, 2)});
  }
  emit(t, args);
  return 0;
}
