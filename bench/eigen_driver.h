#pragma once
// Shared driver for the Eigenbench figure reproductions (Figs. 3-9).
// Each figure sweeps one characteristic and reports, per backend:
// speedup over the sequential run of the same configuration, energy
// efficiency over the sequential run, and the abort rate — the three panels
// (a)/(b)/(c) of every Eigenbench figure in the paper.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "eigenbench/eigenbench.h"

namespace tsx::bench {

struct EigenPoint {
  double speedup = 0;
  double energy_eff = 0;
  double abort_rate = 0;
};

inline core::RunConfig eigen_run_cfg(core::Backend b, uint32_t threads,
                                     uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  return cfg;
}

// Runs `eb` under `backend`/`threads` and under SEQ/1-thread with the same
// per-thread workload, averaged over `reps` seeds.
inline EigenPoint eigen_point(core::Backend backend, uint32_t threads,
                              const eigenbench::EigenConfig& eb, int reps,
                              uint64_t seed0 = 7000) {
  std::vector<double> sp, ee, ar;
  for (int rep = 0; rep < reps; ++rep) {
    uint64_t seed = seed0 + rep;
    auto seq = eigenbench::run(
        eigen_run_cfg(core::Backend::kSeq, 1, seed), eb);
    auto run = eigenbench::run(eigen_run_cfg(backend, threads, seed), eb);
    // The parallel run does `threads` times the sequential per-thread work,
    // so speedup = threads * t_seq / t_par (the paper normalizes to the
    // sequential execution of the same total work).
    double work_ratio = static_cast<double>(threads);
    sp.push_back(work_ratio *
                 static_cast<double>(seq.report.wall_cycles) /
                 static_cast<double>(run.report.wall_cycles));
    ee.push_back(work_ratio * seq.report.joules() / run.report.joules());
    ar.push_back(backend == core::Backend::kRtm
                     ? run.report.rtm.abort_rate()
                     : run.report.stm.abort_rate());
  }
  return {util::mean(sp), util::mean(ee), util::mean(ar)};
}

// The paper's default eigenbench setup (§III-B): 100 accesses per tx
// (90 reads / 10 writes), 4 threads, measured over 10 runs.
inline eigenbench::EigenConfig paper_default_eb(uint64_t loops = 300) {
  eigenbench::EigenConfig eb;
  eb.loops = loops;
  eb.reads_mild = 90;
  eb.writes_mild = 10;
  eb.ws_bytes = 16 * 1024;
  return eb;
}

// Standard three-config comparison: RTM small WS, RTM medium WS, TinySTM
// small WS (the paper only shows TinySTM for the small working set).
struct EigenRow {
  std::string x_label;
  EigenPoint rtm_small, rtm_medium, stm_small;
};

inline void print_eigen_table(const std::string& x_name,
                              const std::vector<EigenRow>& rows,
                              const BenchArgs& args) {
  util::Table t({x_name, "RTM-16K speedup", "RTM-256K speedup",
                 "TinySTM speedup", "RTM-16K energy-eff", "RTM-256K energy-eff",
                 "TinySTM energy-eff", "RTM-16K aborts", "RTM-256K aborts",
                 "TinySTM aborts"});
  for (const auto& r : rows) {
    t.add_row({r.x_label, util::Table::fmt(r.rtm_small.speedup, 2),
               util::Table::fmt(r.rtm_medium.speedup, 2),
               util::Table::fmt(r.stm_small.speedup, 2),
               util::Table::fmt(r.rtm_small.energy_eff, 2),
               util::Table::fmt(r.rtm_medium.energy_eff, 2),
               util::Table::fmt(r.stm_small.energy_eff, 2),
               util::Table::fmt(r.rtm_small.abort_rate, 3),
               util::Table::fmt(r.rtm_medium.abort_rate, 3),
               util::Table::fmt(r.stm_small.abort_rate, 3)});
  }
  emit(t, args);
}

}  // namespace tsx::bench
