#pragma once
// Shared driver for the Eigenbench figure reproductions (Figs. 3-9).
// Each figure sweeps one characteristic and reports, per backend:
// speedup over the sequential run of the same configuration, energy
// efficiency over the sequential run, and the abort rate — the three panels
// (a)/(b)/(c) of every Eigenbench figure in the paper.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "eigenbench/eigenbench.h"

namespace tsx::bench {

struct EigenPoint {
  double speedup = 0;
  double energy_eff = 0;
  double abort_rate = 0;
};

inline core::RunConfig eigen_run_cfg(core::Backend b, uint32_t threads,
                                     uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = b;
  cfg.threads = threads;
  cfg.machine.seed = seed;
  cfg.seed = seed;
  return cfg;
}

// One rep of one (backend, threads, config) cell: the backend run plus its
// SEQ/1-thread baseline with the same per-thread workload and seed. This is
// the unit of work the parallel sweep harness shards across host cores —
// each call builds its own TxRuntime/Machine pair and shares nothing.
inline EigenPoint eigen_rep(core::Backend backend, uint32_t threads,
                            const eigenbench::EigenConfig& eb, uint64_t seed,
                            const std::string& obs_label = "") {
  auto seq = eigenbench::run(eigen_run_cfg(core::Backend::kSeq, 1, seed), eb);
  core::RunConfig cfg = eigen_run_cfg(backend, threads, seed);
  apply_obs(cfg, obs_label);  // SEQ baseline above stays untraced
  auto run = eigenbench::run(cfg, eb);
  // The parallel run does `threads` times the sequential per-thread work,
  // so speedup = threads * t_seq / t_par (the paper normalizes to the
  // sequential execution of the same total work).
  double work_ratio = static_cast<double>(threads);
  EigenPoint p;
  p.speedup = work_ratio * static_cast<double>(seq.report.wall_cycles) /
              static_cast<double>(run.report.wall_cycles);
  p.energy_eff = work_ratio * seq.report.joules() / run.report.joules();
  p.abort_rate = backend == core::Backend::kRtm ? run.report.rtm.abort_rate()
                                                : run.report.stm.abort_rate();
  return p;
}

// Runs `eb` under `backend`/`threads` and under SEQ/1-thread with the same
// per-thread workload, averaged over `reps` seeds (serial; the sweep
// drivers go through eigen_points instead).
inline EigenPoint eigen_point(core::Backend backend, uint32_t threads,
                              const eigenbench::EigenConfig& eb, int reps,
                              uint64_t seed0 = 7000) {
  std::vector<double> sp, ee, ar;
  for (int rep = 0; rep < reps; ++rep) {
    EigenPoint p = eigen_rep(backend, threads, eb, seed0 + rep);
    sp.push_back(p.speedup);
    ee.push_back(p.energy_eff);
    ar.push_back(p.abort_rate);
  }
  return {util::mean(sp), util::mean(ee), util::mean(ar)};
}

// One cell of a figure's sweep grid: a backend/thread-count to measure under
// a fixed Eigenbench configuration.
struct EigenTask {
  core::Backend backend = core::Backend::kRtm;
  uint32_t threads = 4;
  eigenbench::EigenConfig eb;
  uint64_t seed0 = 7000;
};

inline void digest_eigen_task(harness::Digest& d, const EigenTask& t) {
  d.add(static_cast<uint64_t>(t.backend));
  d.add(t.threads);
  d.add(t.seed0);
  const eigenbench::EigenConfig& e = t.eb;
  d.add(e.loops);
  d.add(e.reads_mild);
  d.add(e.writes_mild);
  d.add(e.ws_bytes);
  d.add(e.reads_hot);
  d.add(e.writes_hot);
  d.add(e.hot_bytes);
  d.add(e.reads_cold);
  d.add(e.writes_cold);
  d.add(e.cold_bytes);
  d.add(e.nops_in_tx);
  d.add(e.nops_out_tx);
  d.add(e.locality);
}

// Computes every task (x reps) through the parallel sweep harness; returns
// one averaged EigenPoint per task, in task order. Results are aggregated
// in (task, rep) index order, so the output — including floating-point
// summation order — is byte-identical for any --jobs value.
inline std::vector<EigenPoint> eigen_points(const std::string& bench_id,
                                            const std::vector<EigenTask>& tasks,
                                            const BenchArgs& args) {
  const size_t reps = static_cast<size_t>(args.reps);
  harness::Digest dig;
  dig.add(static_cast<uint64_t>(reps));
  for (const EigenTask& t : tasks) digest_eigen_task(dig, t);

  // One label per job, shared between the manifest and the trace capture —
  // the registry drains sorted by label, so exporter output is identical
  // for any --jobs value.
  auto label_of = [&](size_t i) {
    const EigenTask& t = tasks[i / reps];
    return bench_id + ":task" + std::to_string(i / reps) + ":" +
           core::backend_name(t.backend) + ":rep" + std::to_string(i % reps);
  };

  harness::Runner runner(runner_options(args, bench_id, dig.value()));
  std::vector<EigenPoint> samples = runner.map<EigenPoint>(
      tasks.size() * reps,
      [&](size_t i) {
        const EigenTask& t = tasks[i / reps];
        return eigen_rep(t.backend, t.threads, t.eb, t.seed0 + i % reps,
                         label_of(i));
      },
      [&](size_t i) {
        const EigenTask& t = tasks[i / reps];
        harness::Job j;
        j.seed = t.seed0 + i % reps;
        j.label = label_of(i);
        return j;
      });

  std::vector<EigenPoint> out(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    std::vector<double> sp, ee, ar;
    for (size_t rep = 0; rep < reps; ++rep) {
      const EigenPoint& p = samples[t * reps + rep];
      sp.push_back(p.speedup);
      ee.push_back(p.energy_eff);
      ar.push_back(p.abort_rate);
    }
    out[t] = {util::mean(sp), util::mean(ee), util::mean(ar)};
  }
  return out;
}

// The paper's default eigenbench setup (§III-B): 100 accesses per tx
// (90 reads / 10 writes), 4 threads, measured over 10 runs.
inline eigenbench::EigenConfig paper_default_eb(uint64_t loops = 300) {
  eigenbench::EigenConfig eb;
  eb.loops = loops;
  eb.reads_mild = 90;
  eb.writes_mild = 10;
  eb.ws_bytes = 16 * 1024;
  return eb;
}

// Standard three-config comparison: RTM small WS, RTM medium WS, TinySTM
// small WS (the paper only shows TinySTM for the small working set).
struct EigenRow {
  std::string x_label;
  EigenPoint rtm_small, rtm_medium, stm_small;
};

// One x-axis point of a standard three-config figure: the base EigenConfig
// (ws_bytes is overridden to 16K/256K per column) at a thread count.
struct EigenRowSpec {
  std::string x_label;
  uint32_t threads = 4;
  eigenbench::EigenConfig eb;
};

// Expands each spec into its RTM-16K / TinySTM-16K / RTM-256K cells, runs
// the whole grid through the sweep harness, and returns the assembled rows
// in spec order.
inline std::vector<EigenRow> eigen_rows(const std::string& bench_id,
                                        const std::vector<EigenRowSpec>& specs,
                                        const BenchArgs& args) {
  std::vector<EigenTask> tasks;
  for (const EigenRowSpec& s : specs) {
    eigenbench::EigenConfig eb = s.eb;
    eb.ws_bytes = 16 * 1024;
    tasks.push_back({core::Backend::kRtm, s.threads, eb, 7000});
    tasks.push_back({core::Backend::kTinyStm, s.threads, eb, 7000});
    eb.ws_bytes = 256 * 1024;
    tasks.push_back({core::Backend::kRtm, s.threads, eb, 7000});
  }
  std::vector<EigenPoint> points = eigen_points(bench_id, tasks, args);
  std::vector<EigenRow> rows(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    rows[i].x_label = specs[i].x_label;
    rows[i].rtm_small = points[3 * i];
    rows[i].stm_small = points[3 * i + 1];
    rows[i].rtm_medium = points[3 * i + 2];
  }
  return rows;
}

inline void print_eigen_table(const std::string& x_name,
                              const std::vector<EigenRow>& rows,
                              const BenchArgs& args) {
  util::Table t({x_name, "RTM-16K speedup", "RTM-256K speedup",
                 "TinySTM speedup", "RTM-16K energy-eff", "RTM-256K energy-eff",
                 "TinySTM energy-eff", "RTM-16K aborts", "RTM-256K aborts",
                 "TinySTM aborts"});
  for (const auto& r : rows) {
    t.add_row({r.x_label, util::Table::fmt(r.rtm_small.speedup, 2),
               util::Table::fmt(r.rtm_medium.speedup, 2),
               util::Table::fmt(r.stm_small.speedup, 2),
               util::Table::fmt(r.rtm_small.energy_eff, 2),
               util::Table::fmt(r.rtm_medium.energy_eff, 2),
               util::Table::fmt(r.stm_small.energy_eff, 2),
               util::Table::fmt(r.rtm_small.abort_rate, 3),
               util::Table::fmt(r.rtm_medium.abort_rate, 3),
               util::Table::fmt(r.stm_small.abort_rate, 3)});
  }
  emit(t, args);
}

}  // namespace tsx::bench
