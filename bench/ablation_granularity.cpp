// Ablation: conflict-detection granularity — word (TinySTM) vs cache line
// (RTM). §III-B's contention analysis notes that the same workload yields
// higher *effective* contention for RTM because it detects at 64 B.
//
// This bench constructs a workload with adjustable false sharing: threads
// write disjoint words that are either spread across lines (no false
// sharing) or packed into shared lines (pure false sharing). Word-granular
// TinySTM never aborts on packed-disjoint words; RTM does.

#include "bench/bench_common.h"
#include "stamp/apps/app.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

struct Point {
  double wall_mcycles;
  double abort_rate;
};

Point run_false_sharing(core::Backend backend, bool packed, int iters,
                        uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = backend;
  cfg.threads = 4;
  cfg.machine.seed = seed;
  core::TxRuntime rt(cfg);
  // 4 words: either all in one line (packed) or one per line (spread).
  sim::Addr base = rt.heap().host_alloc(4 * 64, 64);
  rt.run([&](core::TxCtx& ctx) {
    uint64_t stride = packed ? 8 : 64;
    sim::Addr mine = base + ctx.id() * stride;
    stamp::measured_region_begin(ctx);
    for (int i = 0; i < iters; ++i) {
      ctx.transaction([&] {
        sim::Word v = ctx.load(mine);
        ctx.compute(40);
        ctx.store(mine, v + 1);
      });
      ctx.compute(80);
    }
  });
  auto r = rt.report();
  return {r.wall_cycles / 1e6,
          backend == core::Backend::kRtm ? r.rtm.abort_rate()
                                         : r.stm.abort_rate()};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "conflict granularity: word (STM) vs line (RTM)",
               "disjoint words in one line: RTM aborts (false sharing), "
               "TinySTM does not");

  int iters = args.fast ? 400 : 1500;
  util::Table t({"layout", "system", "Mcycles", "abort rate"});
  for (bool packed : {false, true}) {
    for (core::Backend b : {core::Backend::kRtm, core::Backend::kTinyStm}) {
      std::vector<double> wall, ar;
      for (int rep = 0; rep < args.reps; ++rep) {
        Point p = run_false_sharing(b, packed, iters, 9500 + rep);
        wall.push_back(p.wall_mcycles);
        ar.push_back(p.abort_rate);
      }
      t.add_row({packed ? "packed (1 line)" : "spread (4 lines)",
                 core::backend_name(b),
                 util::Table::fmt(util::mean(wall), 2),
                 util::Table::fmt(util::mean(ar), 3)});
    }
  }
  emit(t, args);
  std::cout << "Note: STAMP's tm.h-style padding exists precisely to avoid\n"
               "the packed case under line-granularity HTM.\n";
  return 0;
}
