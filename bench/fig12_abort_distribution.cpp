// Fig. 12: RTM abort-rate distribution per STAMP application, broken into
// the paper's Table III categories:
//   data-conflict/read-capacity (indistinguishable on the hardware),
//   write-capacity, lock (serial-fallback acquisitions), misc3
//   (explicit/page-fault/unsupported), misc5 (interrupts etc.).
//
// Paper observation reproduced here: as thread counts grow, the lock-abort
// share grows (each fallback acquisition aborts up to N-1 transactions) and
// masks other abort types.

#include "bench/stamp_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 12", "RTM abort distribution for STAMP",
               "per-app abort rate split by class; lock aborts grow with "
               "thread count");

  std::vector<uint32_t> threads = {1, 2, 4, 8};
  std::vector<StampTask> tasks;
  for (const auto& app : stamp_apps()) {
    for (uint32_t n : threads) {
      tasks.push_back({app, core::Backend::kRtm, n, 9000});
    }
  }
  std::vector<StampCell> cells =
      stamp_cells("fig12_abort_distribution", tasks, args);

  util::Table t({"app", "threads", "abort rate", "confl/read-cap",
                 "write-cap", "lock", "misc3", "misc5"});
  for (size_t i = 0; i < tasks.size(); ++i) {
    const htm::RtmStats& s = cells[i].result.report.rtm;
    double attempts = static_cast<double>(std::max<uint64_t>(s.attempts, 1));
    auto share = [&](htm::AbortClass c) {
      return static_cast<double>(s.aborts_by_class[static_cast<size_t>(c)]) /
             attempts;
    };
    t.add_row({tasks[i].app.name, std::to_string(tasks[i].threads),
               util::Table::fmt(s.abort_rate(), 3),
               util::Table::fmt(share(htm::AbortClass::kConflictOrReadCap), 3),
               util::Table::fmt(share(htm::AbortClass::kWriteCapacity), 3),
               util::Table::fmt(share(htm::AbortClass::kLock), 3),
               util::Table::fmt(share(htm::AbortClass::kMisc3), 3),
               util::Table::fmt(share(htm::AbortClass::kMisc5), 3)});
  }
  emit(t, args);
  std::cout
      << "Table III mapping: conflict & read-capacity merge into MISC1 and\n"
         "are not distinguishable; lock aborts surface as conflict or\n"
         "explicit aborts caused by the serialization lock.\n";
  return 0;
}
