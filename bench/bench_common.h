#pragma once
// Shared plumbing for the figure/table reproduction drivers in bench/.
// Every driver prints (a) the paper's reference shape, (b) a table of
// simulated measurements, and (c) optionally CSV for post-processing.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "core/runtime.h"
#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"

namespace tsx::bench {

// Standard bench flags: --reps (seeds averaged), --csv, --fast (smaller
// workloads for smoke runs), --verify (record every simulated access and
// check each run for serializability via src/check — slower, opt-in).
struct BenchArgs {
  int reps = 2;
  bool csv = false;
  bool fast = false;
  bool verify = false;

  static BenchArgs parse(int argc, char** argv) {
    util::Flags flags(argc, argv);
    BenchArgs a;
    a.reps = static_cast<int>(flags.get_int("reps", 2));
    a.csv = flags.get_bool("csv", false);
    a.fast = flags.get_bool("fast", false);
    a.verify = flags.get_bool("verify", false);
    auto un = flags.unconsumed();
    if (!un.empty()) {
      std::string msg = un.size() == 1 ? "unknown flag " : "unknown flags ";
      for (size_t i = 0; i < un.size(); ++i) {
        if (i) msg += ", ";
        msg += "--" + un[i];
      }
      throw std::invalid_argument(msg);
    }
    return a;
  }
};

// Opt-in history verification for benches that own their TxRuntime:
// construct (with args.verify) before rt.run(), call check() after. On a
// serializability violation the bench exits non-zero with a diagnosis —
// measurements from a non-serializable run would be meaningless.
class HistoryVerifier {
 public:
  HistoryVerifier(core::TxRuntime& rt, bool enabled) : rt_(&rt) {
    if (enabled) rec_ = std::make_unique<check::Recorder>(rt);
  }

  void check(const std::string& what) {
    if (!rec_) return;
    check::CheckResult cr = check::check_history(rec_->history(), *rt_);
    if (!cr.ok) {
      std::cerr << "--verify FAILED (" << what << "): " << cr.error << "\n";
      std::exit(1);
    }
  }

 private:
  core::TxRuntime* rt_;
  std::unique_ptr<check::Recorder> rec_;
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_reference) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "Paper reference: " << paper_reference << "\n\n";
}

inline void emit(const util::Table& t, const BenchArgs& args) {
  t.print(std::cout);
  if (args.csv) {
    std::cout << "\nCSV:\n";
    t.print_csv(std::cout);
  }
  std::cout << "\n";
}

}  // namespace tsx::bench
