#pragma once
// Shared plumbing for the figure/table reproduction drivers in bench/.
// Every driver prints (a) the paper's reference shape, (b) a table of
// simulated measurements, and (c) optionally CSV for post-processing.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "core/runtime.h"
#include "mem/sim_heap.h"
#include "harness/runner.h"
#include "obs/abort_report.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/pmu.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"
#include "util/warn_once.h"

namespace tsx::bench {

// --trace / --abort-report / --perf-stat / --timeseries / --metrics /
// --flamegraph settings, parsed into a process-global so the drivers'
// run-config helpers (which never see BenchArgs) can consult them.
struct ObsSettings {
  bool trace = false;
  bool abort_report = false;
  bool perf_stat = false;
  bool timeseries = false;
  bool metrics = false;     // --metrics or --flamegraph (hub-backed exports)
  core::Cycles sample_interval = 0;
  core::Cycles metrics_window = 0;  // hub window; 0 = hub off
  bool enabled() const {
    return trace || abort_report || perf_stat || timeseries || metrics;
  }
};

inline ObsSettings& obs_settings() {
  static ObsSettings s;
  return s;
}

// Fills cfg.obs for a traced run registered under `label`. No-op when
// tracing is off or the label is empty (SEQ baselines stay untraced, so the
// exporters only see the measured runs).
inline void apply_obs(core::RunConfig& cfg, const std::string& label) {
  const ObsSettings& s = obs_settings();
  if (!s.enabled() || label.empty()) return;
  cfg.obs.enabled = true;
  cfg.obs.sample_interval = s.sample_interval;
  cfg.obs.metrics.window_cycles = s.metrics_window;
  cfg.obs.label = label;
}

// --malloc-policy / --malloc-pack-sets settings, parsed into a
// process-global (same pattern as ObsSettings) so the drivers' run-config
// helpers can consult them without seeing BenchArgs.
struct HeapSettings {
  bool set = false;  // a --malloc-policy flag was given
  mem::PlacementPolicy policy = mem::PlacementPolicy::kSizeClass;
  uint32_t color_sets = 0;  // kColored only: 0 = spread, N = pack into N sets
};

inline HeapSettings& heap_settings() {
  static HeapSettings s;
  return s;
}

// Per-cell placement override for sweep drivers (extension_malloc_placement
// runs several policies in one process): HeapPolicyScope sets it around a
// cell's run and apply_heap picks it up, beating the process-global flag.
// Thread-local because sweep jobs run concurrently on host threads.
struct TlsHeapPolicy {
  bool set = false;
  mem::PlacementPolicy policy = mem::PlacementPolicy::kSizeClass;
  uint32_t color_sets = 0;
};

inline TlsHeapPolicy& tls_heap_policy() {
  thread_local TlsHeapPolicy p;
  return p;
}

class HeapPolicyScope {
 public:
  HeapPolicyScope(mem::PlacementPolicy policy, uint32_t color_sets) {
    TlsHeapPolicy& p = tls_heap_policy();
    p.set = true;
    p.policy = policy;
    p.color_sets = color_sets;
  }
  ~HeapPolicyScope() { tls_heap_policy() = TlsHeapPolicy{}; }
  HeapPolicyScope(const HeapPolicyScope&) = delete;
  HeapPolicyScope& operator=(const HeapPolicyScope&) = delete;
};

// Fills cfg.heap's placement fields: a thread-local HeapPolicyScope wins,
// then the --malloc-policy flag; with neither, the config is untouched (so
// default runs stay byte-identical to the pre-policy allocator).
inline void apply_heap(core::RunConfig& cfg) {
  const TlsHeapPolicy& tls = tls_heap_policy();
  if (tls.set) {
    cfg.heap.policy = tls.policy;
    cfg.heap.color_sets = tls.color_sets;
    return;
  }
  const HeapSettings& s = heap_settings();
  if (!s.set) return;
  cfg.heap.policy = s.policy;
  cfg.heap.color_sets = s.color_sets;
}

// Parses a --malloc-policy value. "colored-spread" and "colored-pack" both
// map to kColored; pack uses --malloc-pack-sets (default 2) as color_sets.
inline mem::PlacementPolicy parse_malloc_policy(const std::string& name,
                                                bool* pack) {
  *pack = false;
  if (name == "size-class") return mem::PlacementPolicy::kSizeClass;
  if (name == "bump") return mem::PlacementPolicy::kBumpPerThread;
  if (name == "padded") return mem::PlacementPolicy::kPadded;
  if (name == "colored-spread" || name == "colored") {
    return mem::PlacementPolicy::kColored;
  }
  if (name == "colored-pack") {
    *pack = true;
    return mem::PlacementPolicy::kColored;
  }
  throw std::invalid_argument(
      "--malloc-policy must be one of size-class, bump, padded, "
      "colored-spread, colored-pack (got '" +
      name + "')");
}

// Label for runs whose RunConfig is built deep inside an app lambda (the
// STAMP drivers): ObsLabelScope sets it around the traced run and
// stamp_run_cfg picks it up. Thread-local because sweep jobs run
// concurrently on host threads.
inline std::string& tls_obs_label() {
  thread_local std::string label;
  return label;
}

class ObsLabelScope {
 public:
  explicit ObsLabelScope(std::string label) {
    tls_obs_label() = std::move(label);
  }
  ~ObsLabelScope() { tls_obs_label().clear(); }
  ObsLabelScope(const ObsLabelScope&) = delete;
  ObsLabelScope& operator=(const ObsLabelScope&) = delete;
};

// Drains the global capture registry when the last BenchArgs copy dies (end
// of main), so the exporters cover every traced run of the process. All
// outputs avoid stdout: each exporter writes to its file, or to stderr for
// the "-" destination — driver stdout stays byte-identical with
// observability on.
class ObsFlusher {
 public:
  ObsFlusher(std::string trace_file, std::string abort_report_file,
             std::string perf_stat_file, std::string timeseries_file,
             std::string metrics_file, std::string flamegraph_file)
      : trace_file_(std::move(trace_file)),
        abort_report_file_(std::move(abort_report_file)),
        perf_stat_file_(std::move(perf_stat_file)),
        timeseries_file_(std::move(timeseries_file)),
        metrics_file_(std::move(metrics_file)),
        flamegraph_file_(std::move(flamegraph_file)) {}
  ~ObsFlusher() {
    std::vector<obs::Capture> caps = obs::Registry::global().drain();
    // "" = exporter off, "-" = stderr, else a file path.
    auto flush = [&caps](const std::string& dest, const char* what,
                         void (*write)(std::ostream&,
                                       const std::vector<obs::Capture>&)) {
      if (dest.empty()) return;
      if (dest == "-") {
        write(std::cerr, caps);
        return;
      }
      std::ofstream out(dest);
      if (!out) {
        std::cerr << "[obs] cannot write " << what << " to '" << dest << "'\n";
        return;
      }
      write(out, caps);
      std::cerr << "[obs] wrote " << what << " to " << dest << "\n";
    };
    if (!trace_file_.empty()) {
      std::ofstream out(trace_file_);
      if (!out) {
        std::cerr << "[obs] cannot write trace to '" << trace_file_ << "'\n";
      } else {
        obs::write_chrome_trace(out, caps);
        std::cerr << "[obs] wrote " << caps.size() << " capture(s) to "
                  << trace_file_ << "\n";
      }
    }
    flush(abort_report_file_, "abort report", &obs::write_abort_report);
    flush(perf_stat_file_, "perf stat", &obs::write_perf_stat);
    flush(timeseries_file_, "time series", &obs::write_timeseries_csv);
    flush(metrics_file_, "metrics", &obs::write_openmetrics);
    flush(flamegraph_file_, "flame profile", &obs::write_flamegraph);
  }

 private:
  std::string trace_file_;
  std::string abort_report_file_;
  std::string perf_stat_file_;
  std::string timeseries_file_;
  std::string metrics_file_;
  std::string flamegraph_file_;
};

// Standard bench flags: --reps (seeds averaged), --csv, --fast (smaller
// workloads for smoke runs), --verify (record every simulated access and
// check each run for serializability via src/check — slower, opt-in),
// --jobs N (host threads for the sweep harness; 0/default = all cores,
// 1 = the exact serial path; stdout is byte-identical for every N),
// --manifest[=FILE] (JSON run manifest to FILE, or stderr when bare),
// --trace[=FILE] (Chrome trace-event JSON of every measured run, default
// trace.json; load in Perfetto / chrome://tracing), --abort-report[=FILE]
// (per-call-site abort attribution table, to FILE or stderr when bare),
// --perf-stat[=FILE] (perf-stat-style simulated-PMU report per measured run,
// to FILE or stderr when bare), --timeseries[=FILE] (counter time-series
// CSV, default timeseries.csv; needs --sample-interval),
// --metrics[=FILE] (OpenMetrics text exposition of the per-window metric
// series per cell, default metrics.prom), --flamegraph[=FILE]
// (collapsed-stack wasted-cycle flame profile, default flamegraph.folded;
// feed to flamegraph.pl or speedscope), --metrics-window=CYCLES
// (simulated-time window for the metrics hub; defaults to 10000 when
// --metrics/--flamegraph is given),
// --sample-interval=CYCLES (counter-sampling window for the time series and
// the trace's counter tracks; --energy-window is a deprecated alias),
// --energy-split (extra committed/wasted energy columns in the energy
// drivers' CSV output; default output stays byte-identical),
// --progress[=BOOL] (force sweep progress lines on/off; default: only when
// stderr is a TTY, see harness::RunnerOptions::assume_tty),
// --malloc-policy=NAME (simulated-heap placement policy for every measured
// run: size-class (default), bump, padded, colored-spread, colored-pack;
// see mem::PlacementPolicy), --malloc-pack-sets=N (L1 sets colored-pack
// confines placements to; default 2).
struct BenchArgs {
  int reps = 2;
  bool csv = false;
  bool fast = false;
  bool verify = false;
  int jobs = 0;
  std::string manifest;
  std::string trace;        // resolved trace file; "" = tracing off
  std::string abort_report; // "" = off, "-" = stderr, else file path
  std::string perf_stat;    // "" = off, "-" = stderr, else file path
  std::string timeseries;   // resolved CSV file; "" = off
  std::string metrics;      // OpenMetrics file; "" = off, "-" = stderr
  std::string flamegraph;   // collapsed-stack file; "" = off, "-" = stderr
  core::Cycles sample_interval = 0;
  core::Cycles metrics_window = 0;  // resolved hub window; 0 = hub off
  bool energy_split = false;
  int progress = -1;        // -1 auto (isatty), 0 off, 1 on
  // Keeps the exporters alive until the last BenchArgs copy dies.
  std::shared_ptr<ObsFlusher> obs_flusher;

  // Exits 2 with a message on stderr for any usage error (malformed value,
  // duplicate/unknown flag, stray positional) — drivers never see a throw.
  static BenchArgs parse(int argc, char** argv) {
    try {
      util::Flags flags(argc, argv);
      BenchArgs a;
      a.reps = static_cast<int>(flags.get_int("reps", 2));
      a.csv = flags.get_bool("csv", false);
      a.fast = flags.get_bool("fast", false);
      a.verify = flags.get_bool("verify", false);
      a.jobs = static_cast<int>(flags.get_int("jobs", 0));
      if (a.jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
      a.manifest = flags.get_string("manifest", "");
      a.trace = flags.get_string("trace", "");
      if (a.trace == "true") a.trace = "trace.json";  // bare --trace
      a.abort_report = flags.get_string("abort-report", "");
      if (a.abort_report == "true") a.abort_report = "-";  // bare form
      a.perf_stat = flags.get_string("perf-stat", "");
      if (a.perf_stat == "true") a.perf_stat = "-";  // bare --perf-stat
      a.timeseries = flags.get_string("timeseries", "");
      if (a.timeseries == "true") a.timeseries = "timeseries.csv";
      a.metrics = flags.get_string("metrics", "");
      if (a.metrics == "true") a.metrics = "metrics.prom";
      a.flamegraph = flags.get_string("flamegraph", "");
      if (a.flamegraph == "true") a.flamegraph = "flamegraph.folded";
      int64_t mw = flags.get_int("metrics-window", 0);
      if (mw < 0) throw std::invalid_argument("--metrics-window must be >= 0");
      if (mw == 0 && (!a.metrics.empty() || !a.flamegraph.empty())) {
        mw = 10000;  // hub exports requested: a sane default window
      }
      a.metrics_window = static_cast<core::Cycles>(mw);
      int64_t si = flags.get_int("sample-interval", 0);
      if (si < 0) throw std::invalid_argument("--sample-interval must be >= 0");
      if (flags.has("energy-window")) {
        // Deprecated alias from before the sampler unification; honored only
        // when --sample-interval is absent.
        int64_t ew = flags.get_int("energy-window", 0);
        if (ew < 0) throw std::invalid_argument("--energy-window must be >= 0");
        // Once per run, never once per sweep cell: deprecation (and any
        // other repeatable stderr warning) goes through util::warn_once so
        // serial and --jobs N stderr stay identical.
        util::warn_once("flags:energy-window-deprecated",
                        std::string(argv[0]) +
                            ": --energy-window is deprecated; use "
                            "--sample-interval=CYCLES");
        if (si == 0) si = ew;
      }
      a.sample_interval = static_cast<core::Cycles>(si);
      a.energy_split = flags.get_bool("energy-split", false);
      a.progress = flags.has("progress")
                       ? (flags.get_bool("progress", true) ? 1 : 0)
                       : -1;
      int64_t pack_sets = flags.get_int("malloc-pack-sets", 2);
      if (pack_sets < 1) {
        throw std::invalid_argument("--malloc-pack-sets must be >= 1");
      }
      if (flags.has("malloc-policy")) {
        bool pack = false;
        mem::PlacementPolicy pol =
            parse_malloc_policy(flags.get_string("malloc-policy", ""), &pack);
        HeapSettings& hs = heap_settings();
        hs.set = true;
        hs.policy = pol;
        hs.color_sets = pack ? static_cast<uint32_t>(pack_sets) : 0;
      }
      ObsSettings& s = obs_settings();
      s.trace = !a.trace.empty();
      s.abort_report = !a.abort_report.empty();
      s.perf_stat = !a.perf_stat.empty();
      s.timeseries = !a.timeseries.empty();
      s.metrics = !a.metrics.empty() || !a.flamegraph.empty();
      s.sample_interval = a.sample_interval;
      s.metrics_window = a.metrics_window;
      if (s.enabled()) {
        a.obs_flusher = std::make_shared<ObsFlusher>(
            a.trace, a.abort_report, a.perf_stat, a.timeseries, a.metrics,
            a.flamegraph);
      }
      auto un = flags.unconsumed();
      if (!un.empty()) {
        std::string msg = un.size() == 1 ? "unknown flag " : "unknown flags ";
        for (size_t i = 0; i < un.size(); ++i) {
          if (i) msg += ", ";
          msg += "--" + un[i];
        }
        throw std::invalid_argument(msg);
      }
      auto pos = flags.positional();
      if (!pos.empty()) {
        throw std::invalid_argument("unexpected argument '" + pos[0] +
                                    "' (benches take no positional arguments)");
      }
      return a;
    } catch (const std::invalid_argument& e) {
      std::cerr << argv[0] << ": " << e.what() << "\n";
      std::exit(2);
    }
  }
};

// Builds the Runner options for a driver's sweep: thread count and manifest
// destination from the flags, bench id and config digest from the driver.
inline harness::RunnerOptions runner_options(const BenchArgs& args,
                                             const std::string& bench_id,
                                             uint64_t config_digest) {
  harness::RunnerOptions opt;
  opt.jobs = static_cast<unsigned>(args.jobs);
  opt.bench_id = bench_id;
  opt.config_digest = config_digest;
  opt.manifest = args.manifest;
  opt.assume_tty = args.progress;
  if (obs_settings().enabled()) {
    // PMU-counter fingerprint for the manifest; the registry hash is
    // label-sorted and non-destructive, so it is --jobs-invariant and the
    // flusher can still drain the captures afterwards.
    opt.counter_digest_fn = [] {
      char hex[19];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(
                        obs::Registry::global().counter_digest()));
      return std::string(hex);
    };
    // Windowed-metrics fingerprint (hub windows + phase events + flame
    // edges). Absent when no capture carries metrics (hub off); label-sorted
    // in the registry, so --jobs-invariant like counter_digest.
    opt.metrics_digest_fn = [] {
      std::optional<uint64_t> d = obs::Registry::global().metrics_digest();
      if (!d) return std::string();
      char hex[19];
      std::snprintf(hex, sizeof(hex), "0x%016llx",
                    static_cast<unsigned long long>(*d));
      return std::string(hex);
    };
    // Per-lock elision counters, aggregated by lock name across the sweep's
    // captures (name-sorted and non-destructive, hence --jobs-invariant).
    // Empty — and the manifest field absent — for benches without elide
    // locks.
    opt.elide_locks_fn = [] {
      std::vector<obs::ElideLockCounters> locks =
          obs::Registry::global().elide_totals();
      if (locks.empty()) return std::string();
      std::ostringstream os;
      os << "[";
      for (size_t i = 0; i < locks.size(); ++i) {
        const obs::ElideLockCounters& e = locks[i];
        os << (i ? ", " : "") << "{\"name\": \"" << e.name
           << "\", \"acquisitions\": " << e.acquisitions
           << ", \"attempts\": " << e.attempts << ", \"elided\": " << e.elided
           << ", \"fallbacks\": " << e.fallbacks
           << ", \"lock_acquires\": " << e.lock_acquires
           << ", \"self_stops\": " << e.self_stops << "}";
      }
      os << "]";
      return os.str();
    };
    // Summed simulated-heap counters for the manifest's "heap" object
    // (label-sorted aggregation in the registry, hence --jobs-invariant).
    opt.heap_fn = [] {
      obs::HeapPmuCounters h = obs::Registry::global().heap_totals();
      if (!h.present) return std::string();
      std::ostringstream os;
      os << "{\"policy\": \"" << h.policy << "\", \"allocs\": " << h.allocs
         << ", \"frees\": " << h.frees << ", \"refills\": " << h.refills
         << ", \"bytes_live\": " << h.bytes_live
         << ", \"bytes_peak\": " << h.bytes_peak
         << ", \"bytes_padding\": " << h.bytes_padding
         << ", \"set_allocs\": [";
      for (size_t i = 0; i < h.set_allocs.size(); ++i) {
        os << (i ? ", " : "") << h.set_allocs[i];
      }
      os << "]}";
      return os.str();
    };
  }
  return opt;
}

// Opt-in history verification for benches that own their TxRuntime:
// construct (with args.verify) before rt.run(), call check() after. On a
// serializability violation the bench exits non-zero with a diagnosis —
// measurements from a non-serializable run would be meaningless.
class HistoryVerifier {
 public:
  HistoryVerifier(core::TxRuntime& rt, bool enabled) : rt_(&rt) {
    if (enabled) rec_ = std::make_unique<check::Recorder>(rt);
  }

  void check(const std::string& what) {
    if (!rec_) return;
    check::CheckResult cr = check::check_history(rec_->history(), *rt_);
    if (!cr.ok) {
      std::cerr << "--verify FAILED (" << what << "): " << cr.error << "\n";
      std::exit(1);
    }
  }

 private:
  core::TxRuntime* rt_;
  std::unique_ptr<check::Recorder> rec_;
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_reference) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "Paper reference: " << paper_reference << "\n\n";
}

inline void emit(const util::Table& t, const BenchArgs& args) {
  t.print(std::cout);
  if (args.csv) {
    std::cout << "\nCSV:\n";
    t.print_csv(std::cout);
  }
  std::cout << "\n";
}

}  // namespace tsx::bench
