#pragma once
// Shared plumbing for the figure/table reproduction drivers in bench/.
// Every driver prints (a) the paper's reference shape, (b) a table of
// simulated measurements, and (c) optionally CSV for post-processing.

#include <iostream>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"

namespace tsx::bench {

// Standard bench flags: --reps (seeds averaged), --csv, --fast (smaller
// workloads for smoke runs).
struct BenchArgs {
  int reps = 2;
  bool csv = false;
  bool fast = false;

  static BenchArgs parse(int argc, char** argv) {
    util::Flags flags(argc, argv);
    BenchArgs a;
    a.reps = static_cast<int>(flags.get_int("reps", 2));
    a.csv = flags.get_bool("csv", false);
    a.fast = flags.get_bool("fast", false);
    auto un = flags.unconsumed();
    if (!un.empty()) {
      std::string msg = "unknown flag --" + un[0];
      throw std::invalid_argument(msg);
    }
    return a;
  }
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_reference) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "Paper reference: " << paper_reference << "\n\n";
}

inline void emit(const util::Table& t, const BenchArgs& args) {
  t.print(std::cout);
  if (args.csv) {
    std::cout << "\nCSV:\n";
    t.print_csv(std::cout);
  }
  std::cout << "\n";
}

}  // namespace tsx::bench
