#pragma once
// Shared plumbing for the figure/table reproduction drivers in bench/.
// Every driver prints (a) the paper's reference shape, (b) a table of
// simulated measurements, and (c) optionally CSV for post-processing.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "core/runtime.h"
#include "harness/runner.h"
#include "util/flags.h"
#include "util/summary.h"
#include "util/table.h"

namespace tsx::bench {

// Standard bench flags: --reps (seeds averaged), --csv, --fast (smaller
// workloads for smoke runs), --verify (record every simulated access and
// check each run for serializability via src/check — slower, opt-in),
// --jobs N (host threads for the sweep harness; 0/default = all cores,
// 1 = the exact serial path; stdout is byte-identical for every N),
// --manifest[=FILE] (JSON run manifest to FILE, or stderr when bare).
struct BenchArgs {
  int reps = 2;
  bool csv = false;
  bool fast = false;
  bool verify = false;
  int jobs = 0;
  std::string manifest;

  // Exits 2 with a message on stderr for any usage error (malformed value,
  // duplicate/unknown flag, stray positional) — drivers never see a throw.
  static BenchArgs parse(int argc, char** argv) {
    try {
      util::Flags flags(argc, argv);
      BenchArgs a;
      a.reps = static_cast<int>(flags.get_int("reps", 2));
      a.csv = flags.get_bool("csv", false);
      a.fast = flags.get_bool("fast", false);
      a.verify = flags.get_bool("verify", false);
      a.jobs = static_cast<int>(flags.get_int("jobs", 0));
      if (a.jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
      a.manifest = flags.get_string("manifest", "");
      auto un = flags.unconsumed();
      if (!un.empty()) {
        std::string msg = un.size() == 1 ? "unknown flag " : "unknown flags ";
        for (size_t i = 0; i < un.size(); ++i) {
          if (i) msg += ", ";
          msg += "--" + un[i];
        }
        throw std::invalid_argument(msg);
      }
      auto pos = flags.positional();
      if (!pos.empty()) {
        throw std::invalid_argument("unexpected argument '" + pos[0] +
                                    "' (benches take no positional arguments)");
      }
      return a;
    } catch (const std::invalid_argument& e) {
      std::cerr << argv[0] << ": " << e.what() << "\n";
      std::exit(2);
    }
  }
};

// Builds the Runner options for a driver's sweep: thread count and manifest
// destination from the flags, bench id and config digest from the driver.
inline harness::RunnerOptions runner_options(const BenchArgs& args,
                                             const std::string& bench_id,
                                             uint64_t config_digest) {
  harness::RunnerOptions opt;
  opt.jobs = static_cast<unsigned>(args.jobs);
  opt.bench_id = bench_id;
  opt.config_digest = config_digest;
  opt.manifest = args.manifest;
  return opt;
}

// Opt-in history verification for benches that own their TxRuntime:
// construct (with args.verify) before rt.run(), call check() after. On a
// serializability violation the bench exits non-zero with a diagnosis —
// measurements from a non-serializable run would be meaningless.
class HistoryVerifier {
 public:
  HistoryVerifier(core::TxRuntime& rt, bool enabled) : rt_(&rt) {
    if (enabled) rec_ = std::make_unique<check::Recorder>(rt);
  }

  void check(const std::string& what) {
    if (!rec_) return;
    check::CheckResult cr = check::check_history(rec_->history(), *rt_);
    if (!cr.ok) {
      std::cerr << "--verify FAILED (" << what << "): " << cr.error << "\n";
      std::exit(1);
    }
  }

 private:
  core::TxRuntime* rt_;
  std::unique_ptr<check::Recorder> rec_;
};

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_reference) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "Paper reference: " << paper_reference << "\n\n";
}

inline void emit(const util::Table& t, const BenchArgs& args) {
  t.print(std::cout);
  if (args.csv) {
    std::cout << "\nCSV:\n";
    t.print_csv(std::cout);
  }
  std::cout << "\n";
}

}  // namespace tsx::bench
