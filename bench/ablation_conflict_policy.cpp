// Ablation: conflict-resolution policy — requester-wins (Intel's documented
// TSX behaviour, the default) vs mutual-kill (conflicts on bouncing lines
// abort both parties, which empirical TSX studies observe).
//
// Two lessons this ablation demonstrates:
//   1. With the Algorithm-1 serial fallback, mutual-kill degrades contended
//      throughput (more wasted speculation) but everything still completes
//      — the fallback guarantees progress.
//   2. Best-effort HTM fundamentally NEEDS that fallback: a bare retry loop
//      under mutual-kill can effectively livelock (we bound the experiment
//      and report attempts/commit instead of hanging).

#include "bench/bench_common.h"
#include "eigenbench/eigenbench.h"
#include "htm/rtm.h"
#include "stamp/apps/app.h"

using namespace tsx;
using namespace tsx::bench;

namespace {

struct Row {
  double wall_mcycles;
  double abort_rate;
  double fallback_rate;
};

Row contended_eigen(bool mutual_kill, int loops, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kRtm;
  cfg.threads = 4;
  cfg.machine.seed = seed;
  cfg.machine.mutual_kill_conflicts = mutual_kill;
  eigenbench::EigenConfig eb;
  eb.loops = loops;
  eb.reads_mild = 0;
  eb.writes_mild = 0;
  eb.reads_hot = 45;
  eb.writes_hot = 5;
  eb.hot_bytes = 16 * 1024;
  auto r = eigenbench::run(cfg, eb);
  return {r.report.wall_cycles / 1e6, r.report.rtm.abort_rate(),
          r.report.rtm.fallback_rate()};
}

// Bare retry loop (no fallback): counts attempts needed for a fixed number
// of commits, capped so a livelock terminates.
double bare_retry_attempts_per_commit(bool mutual_kill, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = core::Backend::kSeq;
  cfg.threads = 4;
  cfg.machine.seed = seed;
  cfg.machine.mutual_kill_conflicts = mutual_kill;
  core::TxRuntime rt(cfg);
  auto& m = rt.machine();
  sim::Addr counter = rt.heap().host_alloc(8, 64);
  const int commits_per_thread = 50;
  const uint64_t attempt_cap = 40'000;
  uint64_t attempts_total = 0;
  bool capped = false;
  rt.run([&](core::TxCtx& ctx) {
    (void)ctx;
    uint64_t attempts = 0;
    for (int i = 0; i < commits_per_thread; ++i) {
      for (;;) {
        ++attempts;
        if (attempts > attempt_cap) {
          capped = true;
          break;
        }
        auto r = htm::attempt(m, [&] {
          sim::Word v = m.load(counter);
          m.compute(60);
          m.store(counter, v + 1);
        });
        if (r.committed) break;
      }
      if (capped) break;
    }
    attempts_total += attempts;
  });
  if (capped) return -1.0;  // livelocked (hit the cap)
  return static_cast<double>(attempts_total) / (4.0 * commits_per_thread);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Ablation", "conflict policy: requester-wins vs mutual-kill",
               "mutual-kill wastes more speculation (fallback still "
               "guarantees progress); a bare retry loop can livelock");

  int loops = args.fast ? 60 : 150;
  util::Table t({"policy", "eigen Mcycles", "abort rate", "fallback rate",
                 "bare-retry attempts/commit"});
  for (bool mk : {false, true}) {
    std::vector<double> wall, ar, fb;
    double bare = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      Row r = contended_eigen(mk, loops, 9800 + rep);
      wall.push_back(r.wall_mcycles);
      ar.push_back(r.abort_rate);
      fb.push_back(r.fallback_rate);
      bare = bare_retry_attempts_per_commit(mk, 9900 + rep);
    }
    t.add_row({mk ? "mutual-kill" : "requester-wins",
               util::Table::fmt(util::mean(wall), 2),
               util::Table::fmt(util::mean(ar), 3),
               util::Table::fmt(util::mean(fb), 3),
               bare < 0 ? "LIVELOCK (capped)" : util::Table::fmt(bare, 1)});
  }
  emit(t, args);
  return 0;
}
