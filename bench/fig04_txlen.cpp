// Fig. 4: Eigenbench transaction-length sweep (10 .. 520 accesses).
//
// Paper shape: with a 16K working set RTM beats TinySTM at every length;
// with 256K, RTM drops sharply past ~100 accesses (write-set evictions from
// L1) while TinySTM is length-insensitive; the xbegin/xend overhead hurts
// RTM only for very short transactions; RTM burns more energy than
// sequential for 256K transactions longer than ~120 accesses.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 4", "Eigenbench transaction-length sweep",
               "RTM-16K wins everywhere; RTM-256K collapses past ~100 "
               "accesses; TinySTM flat in length");

  std::vector<uint32_t> lengths = {10, 40, 100, 160, 280, 400, 520};
  if (args.fast) lengths = {10, 100, 280, 520};

  std::vector<EigenRowSpec> specs;
  for (uint32_t len : lengths) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    eb.reads_mild = len * 9 / 10;
    eb.writes_mild = len - eb.reads_mild;
    specs.push_back({std::to_string(len), 4, eb});
  }
  print_eigen_table("tx length", eigen_rows("fig04_txlen", specs, args), args);
  return 0;
}
