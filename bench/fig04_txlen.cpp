// Fig. 4: Eigenbench transaction-length sweep (10 .. 520 accesses).
//
// Paper shape: with a 16K working set RTM beats TinySTM at every length;
// with 256K, RTM drops sharply past ~100 accesses (write-set evictions from
// L1) while TinySTM is length-insensitive; the xbegin/xend overhead hurts
// RTM only for very short transactions; RTM burns more energy than
// sequential for 256K transactions longer than ~120 accesses.

#include "bench/eigen_driver.h"

using namespace tsx;
using namespace tsx::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  print_header("Fig. 4", "Eigenbench transaction-length sweep",
               "RTM-16K wins everywhere; RTM-256K collapses past ~100 "
               "accesses; TinySTM flat in length");

  std::vector<uint32_t> lengths = {10, 40, 100, 160, 280, 400, 520};
  if (args.fast) lengths = {10, 100, 280, 520};

  std::vector<EigenRow> rows;
  for (uint32_t len : lengths) {
    eigenbench::EigenConfig eb = paper_default_eb(args.fast ? 100 : 200);
    eb.reads_mild = len * 9 / 10;
    eb.writes_mild = len - eb.reads_mild;

    EigenRow row;
    row.x_label = std::to_string(len);
    eb.ws_bytes = 16 * 1024;
    row.rtm_small = eigen_point(core::Backend::kRtm, 4, eb, args.reps);
    row.stm_small = eigen_point(core::Backend::kTinyStm, 4, eb, args.reps);
    eb.ws_bytes = 256 * 1024;
    row.rtm_medium = eigen_point(core::Backend::kRtm, 4, eb, args.reps);
    rows.push_back(row);
  }
  print_eigen_table("tx length", rows, args);
  return 0;
}
