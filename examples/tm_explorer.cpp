// tm_explorer: interactive Eigenbench exploration from the command line.
// Dial any of the paper's seven TM characteristics (Table II) and compare
// all five backends on the same workload.
//
//   ./tm_explorer --threads=4 --ws=65536 --len=100 --pollution=0.1 \
//                 --locality=0 --hot=0 --hot-bytes=65536 --predominance=1 \
//                 [--loops=200]
//
// Characteristics mapping:
//   concurrency        --threads
//   working-set size   --ws           (bytes per thread)
//   transaction length --len          (accesses per tx)
//   pollution          --pollution    (write fraction, 0..1)
//   temporal locality  --locality     (repeat probability, 0..1)
//   contention         --hot / --hot-bytes  (shared accesses per tx / array)
//   predominance       --predominance (tx cycles / total cycles, 0..1)

#include <iostream>

#include "eigenbench/eigenbench.h"
#include "util/flags.h"
#include "util/table.h"

using namespace tsx;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  uint64_t ws = static_cast<uint64_t>(flags.get_int("ws", 64 * 1024));
  uint32_t len = static_cast<uint32_t>(flags.get_int("len", 100));
  double pollution = flags.get_double("pollution", 0.1);
  double locality = flags.get_double("locality", 0.0);
  uint32_t hot = static_cast<uint32_t>(flags.get_int("hot", 0));
  uint64_t hot_bytes = static_cast<uint64_t>(flags.get_int("hot-bytes", 64 * 1024));
  double predominance = flags.get_double("predominance", 1.0);
  uint64_t loops = static_cast<uint64_t>(flags.get_int("loops", 200));
  for (const auto& f : flags.unconsumed()) {
    std::cerr << "unknown flag --" << f << "\n";
    return 1;
  }
  if (pollution < 0 || pollution > 1 || locality < 0 || locality > 1 ||
      predominance <= 0 || predominance > 1 || len == 0 || hot > len) {
    std::cerr << "parameter out of range\n";
    return 1;
  }

  eigenbench::EigenConfig eb;
  eb.loops = loops;
  uint32_t tx_accesses = len - hot;
  eb.writes_mild = static_cast<uint32_t>(tx_accesses * pollution + 0.5);
  eb.reads_mild = tx_accesses - eb.writes_mild;
  eb.writes_hot = static_cast<uint32_t>(hot * pollution + 0.5);
  eb.reads_hot = hot - eb.writes_hot;
  eb.ws_bytes = ws;
  eb.hot_bytes = hot_bytes;
  eb.locality = locality;
  uint32_t out_ops =
      static_cast<uint32_t>(len * (1.0 - predominance) / predominance + 0.5);
  eb.reads_cold = out_ops - out_ops / 10;
  eb.writes_cold = out_ops / 10;

  std::cout << "Eigenbench: " << threads << " threads, WS " << ws
            << " B/thread, tx length " << len << " (pollution "
            << util::Table::fmt(pollution, 2) << "), locality "
            << util::Table::fmt(locality, 2) << ", hot accesses " << hot
            << "/" << hot_bytes << " B shared, predominance "
            << util::Table::fmt(predominance, 2) << "\n";
  if (hot > 0) {
    double pw = eigenbench::conflict_probability(
        threads, eb.reads_hot, eb.writes_hot, hot_bytes / 8);
    double pl = eigenbench::conflict_probability_lines(threads, eb.reads_hot,
                                                       eb.writes_hot, hot_bytes);
    std::cout << "Estimated conflict probability: "
              << util::Table::fmt(pw, 4) << " (word) / "
              << util::Table::fmt(pl, 4) << " (line, what RTM sees)\n";
  }
  std::cout << "\n";

  core::RunConfig seq_cfg;
  seq_cfg.backend = core::Backend::kSeq;
  seq_cfg.threads = 1;
  auto seq = eigenbench::run(seq_cfg, eb);

  util::Table t({"backend", "Mcycles", "speedup", "energy-eff", "abort rate"});
  t.add_row({"SEQ(1t)", util::Table::fmt(seq.report.wall_cycles / 1e6, 3),
             "1.00", "1.00", "-"});
  for (core::Backend b : {core::Backend::kLock, core::Backend::kRtm,
                          core::Backend::kTinyStm, core::Backend::kTl2}) {
    core::RunConfig cfg;
    cfg.backend = b;
    cfg.threads = threads;
    auto run = eigenbench::run(cfg, eb);
    double sp = threads * static_cast<double>(seq.report.wall_cycles) /
                static_cast<double>(run.report.wall_cycles);
    double ee = threads * seq.report.joules() / run.report.joules();
    double ar = b == core::Backend::kRtm ? run.report.rtm.abort_rate()
                                         : run.report.stm.abort_rate();
    t.add_row({core::backend_name(b),
               util::Table::fmt(run.report.wall_cycles / 1e6, 3),
               util::Table::fmt(sp, 2), util::Table::fmt(ee, 2),
               b == core::Backend::kLock ? "-" : util::Table::fmt(ar, 3)});
  }
  t.print(std::cout);
  return 0;
}
