// Packet reassembly: the intruder case study (§V-A) as a runnable demo.
// Shows how a programming-style change — prepending fragments in O(1) and
// sorting once at reassembly, instead of keeping lists sorted inside the
// transaction — roughly halves transaction footprint and execution time on
// best-effort HTM.
//
//   ./packet_reassembly [--threads=4] [--flows=512] [--fragments=12]

#include <iostream>

#include "stamp/apps/intruder.h"
#include "util/flags.h"
#include "util/table.h"

using namespace tsx;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  uint32_t flows = static_cast<uint32_t>(flags.get_int("flows", 64));
  uint32_t fragments = static_cast<uint32_t>(flags.get_int("fragments", 160));
  for (const auto& f : flags.unconsumed()) {
    std::cerr << "unknown flag --" << f << "\n";
    return 1;
  }

  util::Table t({"version", "Mcycles", "abort rate", "reassembly cycles/tx",
                 "fallbacks", "valid"});
  double base_time = 0;
  for (bool optimized : {false, true}) {
    stamp::IntruderConfig app;
    app.flows = flows;
    app.max_fragments = fragments;
    app.optimized = optimized;

    core::RunConfig cfg;
    cfg.backend = core::Backend::kRtm;
    cfg.threads = threads;
    auto res = stamp::run_intruder(cfg, app);
    auto site = res.report.site_stats(stamp::kIntruderSiteReassembly);
    double cyc_tx = static_cast<double>(site.cycles_committed) /
                    std::max<uint64_t>(site.commits, 1);
    if (!optimized) base_time = static_cast<double>(res.report.wall_cycles);
    t.add_row({optimized ? "optimized (prepend)" : "baseline (sorted insert)",
               util::Table::fmt(res.report.wall_cycles / 1e6, 2),
               util::Table::fmt(res.report.rtm.abort_rate(), 3),
               util::Table::fmt(cyc_tx, 0),
               util::Table::fmt_int(static_cast<int64_t>(res.report.rtm.fallbacks)),
               res.valid ? "yes" : res.validation_message.c_str()});
    if (optimized) {
      double reduc = 100.0 * (1.0 - res.report.wall_cycles / base_time);
      std::cout << "Optimization reduced execution time by "
                << util::Table::fmt(reduc, 1) << "% (paper: ~48%).\n\n";
    }
  }
  t.print(std::cout);
  std::cout << "\nEvery flow was reassembled exactly once, in order, under "
               "RTM with the serial fallback.\n";
  return 0;
}
