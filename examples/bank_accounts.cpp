// Bank-account transfers: the classic TM correctness demo. N accounts with
// a conserved total balance; threads transfer random amounts between random
// account pairs atomically, with occasional all-account audits (long
// read-only transactions). Shows per-backend time/energy/abort stats and
// verifies conservation at the end.
//
//   ./bank_accounts [--threads=4] [--accounts=256] [--transfers=4000]

#include <iostream>

#include "core/runtime.h"
#include "util/flags.h"
#include "util/table.h"

using namespace tsx;

namespace {

struct Outcome {
  core::RunReport report;
  bool conserved;
  sim::Word audited_total;
};

Outcome run_bank(core::Backend backend, uint32_t threads, uint32_t accounts,
                 int transfers_total, uint64_t seed) {
  core::RunConfig cfg;
  cfg.backend = backend;
  cfg.threads = threads;
  cfg.seed = seed;
  cfg.machine.seed = seed;
  core::TxRuntime rt(cfg);

  constexpr sim::Word kInitialBalance = 1000;
  sim::Addr base = rt.heap().host_alloc(accounts * 8, 64);
  for (uint32_t a = 0; a < accounts; ++a) {
    rt.machine().poke(base + a * 8, kInitialBalance);
  }

  int per_thread = transfers_total / static_cast<int>(threads);
  std::vector<sim::Word> audits(threads, 0);

  rt.run([&](core::TxCtx& ctx) {
    sim::Rng& rng = ctx.rng();
    for (int i = 0; i < per_thread; ++i) {
      if (i % 64 == 63) {
        // Audit: a long read-only transaction over every account.
        sim::Word total = 0;
        ctx.transaction([&] {
          total = 0;
          for (uint32_t a = 0; a < accounts; ++a) {
            total += ctx.load(base + a * 8);
          }
        });
        audits[ctx.id()] = total;
        continue;
      }
      uint64_t from = rng.below(accounts);
      uint64_t to = rng.below(accounts);
      if (from == to) to = (to + 1) % accounts;
      sim::Word amount = 1 + rng.below(50);
      ctx.transaction([&] {
        sim::Word from_bal = ctx.load(base + from * 8);
        if (from_bal < amount) return;  // insufficient funds: skip
        ctx.store(base + from * 8, from_bal - amount);
        ctx.store(base + to * 8, ctx.load(base + to * 8) + amount);
      });
    }
  });

  Outcome out{rt.report(), false, 0};
  sim::Word total = 0;
  for (uint32_t a = 0; a < accounts; ++a) {
    total += rt.machine().peek(base + a * 8);
  }
  out.conserved = (total == static_cast<sim::Word>(accounts) * kInitialBalance);
  out.audited_total = audits.empty() ? 0 : audits[0];
  // Every audit must also have observed the conserved total (isolation).
  for (sim::Word a : audits) {
    if (a != 0 && a != static_cast<sim::Word>(accounts) * kInitialBalance) {
      out.conserved = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  uint32_t accounts = static_cast<uint32_t>(flags.get_int("accounts", 256));
  int transfers = static_cast<int>(flags.get_int("transfers", 4000));
  for (const auto& f : flags.unconsumed()) {
    std::cerr << "unknown flag --" << f << "\n";
    return 1;
  }

  util::Table t({"backend", "Mcycles", "mJ", "abort rate", "conserved"});
  bool all_ok = true;
  for (core::Backend b : {core::Backend::kLock, core::Backend::kRtm,
                          core::Backend::kTinyStm, core::Backend::kTl2}) {
    Outcome o = run_bank(b, threads, accounts, transfers, 42);
    bool is_rtm = b == core::Backend::kRtm;
    t.add_row({core::backend_name(b),
               util::Table::fmt(o.report.wall_cycles / 1e6, 3),
               util::Table::fmt(o.report.joules() * 1e3, 3),
               util::Table::fmt(o.report.abort_rate(is_rtm), 3),
               o.conserved ? "yes" : "NO"});
    all_ok = all_ok && o.conserved;
  }
  std::cout << accounts << " accounts, " << transfers << " transfers, "
            << threads << " threads; audits are long read-only txs:\n\n";
  t.print(std::cout);
  if (!all_ok) {
    std::cerr << "\nBALANCE NOT CONSERVED — atomicity violated!\n";
    return 1;
  }
  std::cout << "\nTotal balance conserved and every audit saw a consistent "
               "snapshot under every backend.\n";
  return 0;
}
