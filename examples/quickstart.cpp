// Quickstart: run the same atomic counter workload under every backend and
// compare time / energy / abort behaviour.
//
//   ./quickstart [--threads=4] [--iters=2000]

#include <iostream>

#include "core/runtime.h"
#include "util/flags.h"
#include "util/table.h"

using namespace tsx;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  int iters = static_cast<int>(flags.get_int("iters", 2000));
  for (const auto& f : flags.unconsumed()) {
    std::cerr << "unknown flag --" << f << "\n";
    return 1;
  }

  util::Table table({"backend", "Mcycles", "mJ", "abort rate", "fallbacks"});

  for (core::Backend backend :
       {core::Backend::kSeq, core::Backend::kLock, core::Backend::kRtm,
        core::Backend::kTinyStm, core::Backend::kTl2}) {
    core::RunConfig cfg;
    cfg.backend = backend;
    // SEQ is the single-threaded baseline; everything else runs `threads`.
    cfg.threads = backend == core::Backend::kSeq ? 1 : threads;

    core::TxRuntime rt(cfg);
    sim::Addr counter = rt.heap().host_alloc(8, 64);
    int per_thread =
        iters / static_cast<int>(cfg.threads);

    rt.run([&](core::TxCtx& ctx) {
      for (int i = 0; i < per_thread; ++i) {
        ctx.transaction([&] {
          sim::Word v = ctx.load(counter);
          ctx.compute(50);  // some work inside the critical section
          ctx.store(counter, v + 1);
        });
        ctx.compute(200);  // and some outside
      }
    });

    core::RunReport r = rt.report();
    double abort_rate = backend == core::Backend::kRtm ? r.rtm.abort_rate()
                                                       : r.stm.abort_rate();
    table.add_row({core::backend_name(backend),
                   util::Table::fmt(r.wall_cycles / 1e6, 3),
                   util::Table::fmt(r.joules() * 1e3, 3),
                   util::Table::fmt(abort_rate, 3),
                   util::Table::fmt_int(static_cast<int64_t>(r.rtm.fallbacks))});

    // Correctness: the counter must be exact for every backend.
    sim::Word final = rt.machine().peek(counter);
    sim::Word expect = static_cast<sim::Word>(per_thread) * cfg.threads;
    if (final != expect) {
      std::cerr << "LOST UPDATES under " << core::backend_name(backend) << ": "
                << final << " != " << expect << "\n";
      return 1;
    }
  }

  std::cout << "Atomic counter, " << threads << " threads, " << iters
            << " total increments (SEQ runs single-threaded):\n\n";
  table.print(std::cout);
  std::cout << "\nAll backends produced the exact count.\n";
  return 0;
}
