#pragma once
// TL2 (Dice, Shalev, Shavit, DISC 2006): word-based, time-based STM with
// commit-time locking and no timestamp extension. Included because the paper
// compares against the Yoo et al. RTM-vs-TL2 study and reports that TinySTM
// consistently outperforms TL2 — `bench/ablation_stm_design` reproduces that
// claim on this machine model.

#include <cstdint>
#include <vector>

#include "stm/common.h"
#include "util/flat_table.h"

namespace tsx::stm {

class Tl2 final : public StmSystem {
 public:
  Tl2(Machine& m, Addr region_base, StmConfig cfg = {});

  const char* name() const override { return "TL2"; }
  void init() override;

  void tx_start(CtxId ctx) override;
  Word tx_read(CtxId ctx, Addr addr) override;
  void tx_write(CtxId ctx, Addr addr, Word value) override;
  void tx_commit(CtxId ctx) override;
  void tx_abort_cleanup(CtxId ctx) override;
  bool tx_active(CtxId ctx) const override { return tx_[ctx].active; }

  static uint64_t region_bytes(const StmConfig& cfg);

 private:
  struct ReadEntry {
    Addr lock_addr;
    Word version;
  };
  struct TxDesc {
    bool active = false;
    Word rv = 0;
    std::vector<ReadEntry> read_set;
    std::vector<std::pair<Addr, Word>> write_list;
    util::WriteIndex write_index;
    std::vector<std::pair<Addr, Word>> held;  // commit-time: lock addr, prev
    util::FlatSet acquired_scratch;  // commit-time stripe dedup (reused)
    LogRing log;
  };

  void release_held(TxDesc& tx, Word new_version, bool restore_prev);

  Addr clock_addr_;
  LockTable locks_;
  StmConfig cfg_;
  std::array<TxDesc, sim::kMaxCtxs> tx_;
};

}  // namespace tsx::stm
