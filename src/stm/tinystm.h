#pragma once
// TinySTM-style word-based, time-based STM (Felber, Fetzer, Marlier, Riegel,
// "Time-based software transactional memory", TPDS 2010): encounter-time
// locking, write-back, lazy snapshot algorithm (LSA) with timestamp
// extension, suicide contention management with exponential backoff.
//
// All metadata traffic — global clock, versioned lock stripes, private log
// rings — flows through the simulated memory hierarchy, so instrumentation
// overhead, clock contention and stripe false sharing cost what they cost on
// the modeled machine.

#include <cstdint>
#include <vector>

#include "stm/common.h"
#include "util/flat_table.h"

namespace tsx::stm {

class TinyStm final : public StmSystem {
 public:
  // Memory layout: [clock line][lock table][per-ctx log rings].
  TinyStm(Machine& m, Addr region_base, StmConfig cfg = {});

  const char* name() const override { return "TinySTM"; }
  void init() override;

  void tx_start(CtxId ctx) override;
  Word tx_read(CtxId ctx, Addr addr) override;
  void tx_write(CtxId ctx, Addr addr, Word value) override;
  void tx_commit(CtxId ctx) override;
  void tx_abort_cleanup(CtxId ctx) override;
  bool tx_active(CtxId ctx) const override { return tx_[ctx].active; }

  static uint64_t region_bytes(const StmConfig& cfg);

  // Metadata addresses, exposed for the Hybrid TM executor: hardware
  // transactions subscribe to the stripe of every accessed word and publish
  // committed writes by bumping the clock and the written stripes' versions,
  // so STM validation sees them.
  Addr clock_addr() const { return clock_addr_; }
  Addr stripe_addr(Addr data_addr) const { return locks_.lock_addr(data_addr); }

 private:
  struct ReadEntry {
    Addr lock_addr;
    Word version;
  };
  struct OwnedLock {
    Addr lock_addr;
    Word prev_version;  // restored on abort
  };
  struct TxDesc {
    bool active = false;
    Word rv = 0;  // read (snapshot) timestamp
    std::vector<ReadEntry> read_set;
    std::vector<OwnedLock> locks;
    std::vector<std::pair<Addr, Word>> write_list;  // ordered write-back
    util::WriteIndex write_index;                   // RAW lookups
    LogRing log;
  };

  // Revalidates the read set; on success bumps rv to `now_version` and
  // counts an extension, otherwise aborts.
  void extend(TxDesc& tx, Word now_version);
  bool validate(TxDesc& tx, CtxId ctx);
  void release_locks(TxDesc& tx, Word new_version, bool restore_prev);

  Addr clock_addr_;
  LockTable locks_;
  StmConfig cfg_;
  std::array<TxDesc, sim::kMaxCtxs> tx_;
};

}  // namespace tsx::stm
