#include "stm/common.h"

#include "obs/trace_sink.h"

namespace tsx::stm {

const char* stm_abort_cause_name(StmAbortCause c) {
  switch (c) {
    case StmAbortCause::kReadLocked: return "read-locked";
    case StmAbortCause::kReadVersion: return "read-version";
    case StmAbortCause::kWriteLocked: return "write-locked";
    case StmAbortCause::kValidation: return "validation";
    case StmAbortCause::kCount: break;
  }
  return "?";
}

void LockTable::init() {
  // The lock table is allocated and touched at library startup, before any
  // measured region, so its pages are simply made present.
  m_.prefault(base_, bytes());
  for (uint64_t i = 0; i < entries_; ++i) {
    m_.poke(base_ + i * sim::kWordBytes, 0);
  }
}

void StmExecutor::execute(util::FnRef<void()> body, uint32_t site) {
  ++stm_.stats().transactions;
  uint32_t attempt_no = 0;
  CtxId ctx = m_.current_ctx();
  for (;;) {
    ++attempt_no;
    ++stm_.stats().starts;
    // Attempt window opens before tx_start: clock-read/snapshot work done
    // there is discarded on abort, so it belongs to the attempt.
    Cycles t0 = m_.now();
    stm_.tx_start(ctx);
    if (sink_) sink_->stm_begin(ctx, m_.now(), site);
    hooks_.on_begin();
    try {
      body();
      stm_.tx_commit(ctx);
      stm_.stats().cycles_committed += m_.now() - t0;
      if (sink_) sink_->stm_commit(ctx, m_.now());
      hooks_.on_commit();
      return;
    } catch (const StmAborted& a) {
      stm_.tx_abort_cleanup(ctx);
      stm_.stats().cycles_aborted += m_.now() - t0;
      if (sink_) {
        sink_->stm_abort(
            ctx, m_.now(),
            a.addr == ~sim::Addr{0} ? ~0ull : sim::line_of(a.addr),
            a.owner == sim::kNoCtx ? ctx : a.owner);
      }
      hooks_.on_abort();
      // Suicide + policy-shaped backoff (randomized exponential by default;
      // same rng-draw sequence as the historical inline formula).
      Cycles wait = policy_.backoff_cycles(attempt_no, m_.setup_rng());
      if (sink_) sink_->retry_decision(ctx, m_.now(), false, wait);
      if (wait) m_.compute(wait);
    }
  }
}

bool StmExecutor::execute_once(util::FnRef<void()> body, uint32_t site) {
  ++stm_.stats().transactions;
  ++stm_.stats().starts;
  CtxId ctx = m_.current_ctx();
  Cycles t0 = m_.now();
  stm_.tx_start(ctx);
  if (sink_) sink_->stm_begin(ctx, m_.now(), site);
  hooks_.on_begin();
  try {
    body();
    stm_.tx_commit(ctx);
    stm_.stats().cycles_committed += m_.now() - t0;
    if (sink_) sink_->stm_commit(ctx, m_.now());
    hooks_.on_commit();
    return true;
  } catch (const StmAborted& a) {
    stm_.tx_abort_cleanup(ctx);
    stm_.stats().cycles_aborted += m_.now() - t0;
    if (sink_) {
      sink_->stm_abort(
          ctx, m_.now(),
          a.addr == ~sim::Addr{0} ? ~0ull : sim::line_of(a.addr),
          a.owner == sim::kNoCtx ? ctx : a.owner);
    }
    hooks_.on_abort();
    return false;
  }
}

}  // namespace tsx::stm
