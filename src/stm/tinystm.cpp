#include "stm/tinystm.h"

namespace tsx::stm {

namespace {
constexpr uint64_t kLogRingBytes = 256 * 1024;
}

TinyStm::TinyStm(Machine& m, Addr region_base, StmConfig cfg)
    : StmSystem(m),
      clock_addr_(region_base),
      locks_(m, region_base + sim::kLineBytes, cfg),
      cfg_(cfg) {
  Addr log_base = region_base + sim::kLineBytes + locks_.bytes();
  for (CtxId c = 0; c < sim::kMaxCtxs; ++c) {
    tx_[c].log = LogRing(&m_, log_base + c * kLogRingBytes, kLogRingBytes);
  }
}

uint64_t TinyStm::region_bytes(const StmConfig& cfg) {
  return sim::kLineBytes +
         static_cast<uint64_t>(cfg.lock_table_entries) * sim::kWordBytes +
         sim::kMaxCtxs * kLogRingBytes;
}

void TinyStm::init() {
  m_.prefault(clock_addr_, sim::kLineBytes);
  m_.poke(clock_addr_, 0);
  locks_.init();
  m_.prefault(clock_addr_ + sim::kLineBytes + locks_.bytes(),
              sim::kMaxCtxs * kLogRingBytes);
}

void TinyStm::tx_start(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  if (tx.active) throw std::logic_error("TinySTM: nested tx_start");
  tx.active = true;
  tx.log.reset_tx();
  tx.rv = m_.load(clock_addr_);
  tx.read_set.clear();
  tx.locks.clear();
  tx.write_list.clear();
  tx.write_index.clear();
}

bool TinyStm::validate(TxDesc& tx, CtxId ctx) {
  for (const ReadEntry& e : tx.read_set) {
    Word lw = m_.load(e.lock_addr);
    if (LockTable::is_locked(lw)) {
      if (LockTable::owner_of(lw) != ctx) return false;
      continue;  // we own it: consistent by construction
    }
    if (LockTable::version_of(lw) != e.version) return false;
  }
  return true;
}

void TinyStm::extend(TxDesc& tx, Word now_version) {
  if (!validate(tx, static_cast<CtxId>(m_.current_ctx()))) {
    abort_tx(StmAbortCause::kReadVersion);
  }
  tx.rv = now_version;
  ++stats_.extensions;
}

Word TinyStm::tx_read(CtxId ctx, Addr addr) {
  TxDesc& tx = tx_[ctx];
  Addr la = locks_.lock_addr(addr);
  Word lw = m_.load(la);
  if (LockTable::is_locked(lw)) {
    if (LockTable::owner_of(lw) == ctx) {
      // Read-after-write: serve from the write log.
      m_.compute(cfg_.log_maintain_cycles);
      if (uint32_t* p = tx.write_index.find(addr)) {
        return tx.write_list[*p].second;
      }
      // We own the stripe but never wrote this word (stripe aliasing):
      // memory still holds the committed value.
      return m_.load(addr);
    }
    abort_tx(StmAbortCause::kReadLocked, addr, LockTable::owner_of(lw));
  }
  Word value = m_.load(addr);
  // Recheck that the stripe didn't change underneath the value read. The
  // second lock load hits the line fetched a moment ago and retires in the
  // shadow of the data load, so it is modeled as a zero-latency probe at
  // the data load's linearization point (peek reads the current simulated
  // state, which is exactly the state at that instant).
  Word lw2 = m_.peek(la);
  if (lw2 != lw) {
    abort_tx(StmAbortCause::kReadLocked, addr,
             LockTable::is_locked(lw2) ? LockTable::owner_of(lw2)
                                       : sim::kNoCtx);
  }
  Word version = LockTable::version_of(lw);
  if (version > tx.rv) {
    // Too new for our snapshot: try a timestamp extension.
    Word now_version = m_.load(clock_addr_);
    extend(tx, now_version);
  }
  tx.read_set.push_back({la, version});
  tx.log.append(1);  // read-log entry traffic
  return value;
}

void TinyStm::tx_write(CtxId ctx, Addr addr, Word value) {
  TxDesc& tx = tx_[ctx];
  Addr la = locks_.lock_addr(addr);
  Word lw = m_.load(la);
  if (LockTable::is_locked(lw)) {
    if (LockTable::owner_of(lw) != ctx) {
      abort_tx(StmAbortCause::kWriteLocked, addr, LockTable::owner_of(lw));
    }
  } else {
    // A version newer than our snapshot means the stripe changed since we
    // (may have) read it; validate() treats owned stripes as consistent, so
    // this must be rejected here (or the snapshot extended) to stay sound.
    if (LockTable::version_of(lw) > tx.rv) {
      Word now_version = m_.load(clock_addr_);
      extend(tx, now_version);
    }
    // Encounter-time acquisition.
    if (!m_.cas(la, lw, LockTable::make_locked(ctx))) {
      abort_tx(StmAbortCause::kWriteLocked, addr);
    }
    tx.locks.push_back({la, lw});
  }
  m_.compute(cfg_.log_maintain_cycles);
  if (uint32_t* p = tx.write_index.find(addr)) {
    tx.write_list[*p].second = value;
  } else {
    tx.write_index.insert(addr, static_cast<uint32_t>(tx.write_list.size()));
    tx.write_list.emplace_back(addr, value);
    tx.log.append(2);  // address + value in the write log
  }
}

void TinyStm::release_locks(TxDesc& tx, Word new_version, bool restore_prev) {
  for (const OwnedLock& ol : tx.locks) {
    Word v = restore_prev ? ol.prev_version : LockTable::make_version(new_version);
    m_.store(ol.lock_addr, v);
  }
  tx.locks.clear();
}

void TinyStm::tx_commit(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  if (!tx.active) throw std::logic_error("TinySTM: commit outside tx");
  if (tx.write_list.empty()) {
    // Read-only: the snapshot is consistent by LSA invariants.
    notify_serialized(ctx);
    tx.active = false;
    ++stats_.commits;
    return;
  }
  Word wv = m_.fetch_add(clock_addr_, 1) + 1;
  if (wv != tx.rv + 1) {
    if (!validate(tx, ctx)) {
      // Careful: locks are still held; the executor will call
      // tx_abort_cleanup which releases them with their old versions.
      abort_tx(StmAbortCause::kValidation);
    }
  }
  // Serialization point: validation succeeded and every written stripe is
  // still locked, so the commit can no longer fail or be observed early.
  notify_serialized(ctx);
  // Write back, then release the stripes at the new version.
  for (const auto& [addr, value] : tx.write_list) {
    m_.store(addr, value);
  }
  release_locks(tx, wv, /*restore_prev=*/false);
  tx.active = false;
  ++stats_.commits;
}

void TinyStm::tx_abort_cleanup(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  release_locks(tx, 0, /*restore_prev=*/true);
  tx.read_set.clear();
  tx.write_list.clear();
  tx.write_index.clear();
  tx.active = false;
}

}  // namespace tsx::stm
