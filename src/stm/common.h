#pragma once
// Shared pieces of the software TM implementations: the striped versioned
// lock table (in simulated memory), tx descriptors, statistics, and the
// retry executor.
//
// Both STMs are word-granular (the paper notes TinySTM detects conflicts at
// word granularity, vs RTM's 64 B lines) and time-based, with a global
// version clock in simulated memory whose cache-line ping-pong is part of
// the modeled cost.

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/retry_policy.h"
#include "sim/machine.h"
#include "sim/types.h"
#include "util/fn_ref.h"

namespace tsx::obs {
class TraceSink;
}

namespace tsx::stm {

using sim::Addr;
using sim::CtxId;
using sim::Cycles;
using sim::Machine;
using sim::Word;

enum class StmAbortCause : uint8_t {
  kReadLocked = 0,   // read found the stripe locked by another tx
  kReadVersion,      // read saw a too-new version and extension failed
  kWriteLocked,      // write lock acquisition failed
  kValidation,       // commit/extension-time read-set validation failed
  kCount,
};
const char* stm_abort_cause_name(StmAbortCause c);

// Thrown by tx_read/tx_write/tx_commit; caught by StmExecutor's retry loop.
// Never crosses a fiber switch while unwinding. `addr`/`owner` carry the
// contended data address and the owning context where the abort site knows
// them (lock-word conflicts); sentinel values otherwise.
struct StmAborted {
  StmAbortCause cause;
  Addr addr = ~Addr{0};
  CtxId owner = sim::kNoCtx;
};

struct StmStats {
  uint64_t transactions = 0;  // execute() calls
  uint64_t starts = 0;        // attempts (>= transactions)
  uint64_t commits = 0;
  std::array<uint64_t, static_cast<size_t>(StmAbortCause::kCount)> aborts_by_cause{};
  uint64_t extensions = 0;  // successful timestamp extensions (TinySTM)
  // Simulated cycles spent inside attempts that committed / aborted
  // (committed-vs-wasted energy attribution; mirrors RtmStats).
  Cycles cycles_committed = 0;
  Cycles cycles_aborted = 0;

  uint64_t aborts() const {
    uint64_t s = 0;
    for (uint64_t a : aborts_by_cause) s += a;
    return s;
  }
  double abort_rate() const {
    return starts ? static_cast<double>(aborts()) / static_cast<double>(starts)
                  : 0.0;
  }
};

struct StmConfig {
  // 2^20 word-granular stripes cover 8 MB of data without aliasing; beyond
  // that, distinct addresses share stripes and cause false conflicts — the
  // effect behind TinySTM's behaviour at 16 MB working sets in Fig. 3.
  uint32_t lock_table_entries = 1u << 20;
  uint32_t stripe_shift = 3;  // hash (addr >> 3): word granularity
  // Suicide-with-backoff contention management.
  Cycles backoff_base_cycles = 120;
  uint32_t backoff_cap_shift = 10;
  // Per-entry simulated cost of maintaining the private logs (beyond the
  // simulated stores to the log rings themselves).
  Cycles log_maintain_cycles = 1;
};

// Versioned-lock table in simulated memory. Lock word encoding:
//   bit 0      : locked
//   bits 1..63 : version (when unlocked) or owner ctx id (when locked)
class LockTable {
 public:
  LockTable(Machine& m, Addr base, const StmConfig& cfg)
      : m_(m), base_(base), mask_(cfg.lock_table_entries - 1),
        shift_(cfg.stripe_shift), entries_(cfg.lock_table_entries) {}

  // Marks the table's pages present and zeroes them (library startup cost,
  // outside measured regions).
  void init();

  Addr lock_addr(Addr data_addr) const {
    uint64_t stripe = (data_addr >> shift_) & mask_;
    return base_ + stripe * sim::kWordBytes;
  }

  static bool is_locked(Word lw) { return lw & 1; }
  static Word version_of(Word lw) { return lw >> 1; }
  static CtxId owner_of(Word lw) { return static_cast<CtxId>(lw >> 1); }
  static Word make_locked(CtxId owner) {
    return (static_cast<Word>(owner) << 1) | 1;
  }
  static Word make_version(Word version) { return version << 1; }

  uint64_t bytes() const { return entries_ * sim::kWordBytes; }

 private:
  Machine& m_;
  Addr base_;
  uint64_t mask_;
  uint32_t shift_;
  uint64_t entries_;
};

// Per-thread private log ring: models the cache/memory traffic of TinySTM's
// read/write logs. Appends are simulated stores into a per-thread region.
class LogRing {
 public:
  LogRing() = default;
  LogRing(Machine* m, Addr base, uint64_t bytes)
      : m_(m), base_(base), words_(bytes / sim::kWordBytes) {}

  void append(uint64_t n_words) {
    for (uint64_t i = 0; i < n_words; ++i) {
      // Log writes are sequential and absorbed by the store buffer, fully
      // pipelined with the surrounding loads; the cache-pressure effect is
      // modeled by one real store per line, the rest are free.
      if (pos_ % (sim::kLineBytes / sim::kWordBytes) == 0) {
        m_->store(base_ + (pos_ % words_) * sim::kWordBytes, 0x106);
      }
      ++pos_;
    }
  }
  // Logs restart from the beginning at every transaction (TinySTM reuses
  // its log arrays, so the footprint is the largest transaction, not the
  // run history — keeping the log L1-resident).
  void reset_tx() { pos_ = 0; }

 private:
  Machine* m_ = nullptr;
  Addr base_ = 0;
  uint64_t words_ = 1;
  uint64_t pos_ = 0;
};

// Abstract STM algorithm. One instance serves all contexts of a Machine.
class StmSystem {
 public:
  explicit StmSystem(Machine& m) : m_(m) {}
  virtual ~StmSystem() = default;

  virtual const char* name() const = 0;
  virtual void init() = 0;

  virtual void tx_start(CtxId ctx) = 0;
  virtual Word tx_read(CtxId ctx, Addr addr) = 0;
  virtual void tx_write(CtxId ctx, Addr addr, Word value) = 0;
  virtual void tx_commit(CtxId ctx) = 0;
  // Releases locks / discards logs after an abort (no throwing).
  virtual void tx_abort_cleanup(CtxId ctx) = 0;
  virtual bool tx_active(CtxId ctx) const = 0;

  StmStats& stats() { return stats_; }
  const StmStats& stats() const { return stats_; }

  // Observation hook for src/check's history recorder: implementations call
  // it from tx_commit at the transaction's serialization point — after
  // validation has succeeded (commit is now inevitable) and before the
  // write-back makes the new values readable by other contexts.
  void set_serialize_hook(std::function<void(CtxId)> fn) {
    serialize_hook_ = std::move(fn);
  }

 protected:
  [[noreturn]] void abort_tx(StmAbortCause cause, Addr addr = ~Addr{0},
                             CtxId owner = sim::kNoCtx) {
    ++stats_.aborts_by_cause[static_cast<size_t>(cause)];
    throw StmAborted{cause, addr, owner};
  }

  void notify_serialized(CtxId ctx) {
    if (serialize_hook_) serialize_hook_(ctx);
  }

  Machine& m_;
  StmStats stats_;
  std::function<void(CtxId)> serialize_hook_;
};

// Hooks so the simulated heap can undo allocations made in aborted attempts.
struct ScopeHooks {
  std::function<void()> begin;
  std::function<void()> commit;
  std::function<void()> abort;

  void on_begin() const { if (begin) begin(); }
  void on_commit() const { if (commit) commit(); }
  void on_abort() const { if (abort) abort(); }
};

// Retry loop with suicide contention management. The wait between attempts
// is delegated to a core::RetryPolicy (randomized exponential backoff by
// default, matching TinySTM); the attempt budget is unbounded because an
// STM has no fallback path — it retries until it commits.
class StmExecutor {
 public:
  StmExecutor(Machine& m, StmSystem& stm, StmConfig cfg = {}) : m_(m), stm_(stm) {
    policy_.max_attempts = 0;  // unbounded: no fallback
    policy_.subscription = core::LockSubscription::kNone;  // no lock to watch
    policy_.backoff = core::BackoffShape::kExponential;
    policy_.backoff_base_cycles = cfg.backoff_base_cycles;
    policy_.backoff_cap_shift = cfg.backoff_cap_shift;
  }

  void set_scope_hooks(ScopeHooks hooks) { hooks_ = std::move(hooks); }

  // Optional observability sink (src/obs): attempt lifecycle and
  // contention-manager backoff decisions for software transactions, which
  // never pass through the machine's hardware-tx hooks.
  void set_sink(obs::TraceSink* sink) { sink_ = sink; }

  const core::RetryPolicy& retry_policy() const { return policy_; }

  // Executes `body` as one atomic STM transaction (retrying as needed).
  // The body routes its shared-memory accesses through tx_read/tx_write of
  // the owning runtime layer. `site` labels the static transaction site for
  // trace attribution.
  void execute(util::FnRef<void()> body, uint32_t site = 0);

  // Executes `body` as exactly one STM attempt: true on commit, false on
  // abort (after cleanup), with no backoff and no retry. The lock-elision
  // layer uses this so *its* RetryPolicy meters speculative attempts the
  // same way across hardware and software backends.
  bool execute_once(util::FnRef<void()> body, uint32_t site = 0);

 private:
  Machine& m_;
  StmSystem& stm_;
  core::RetryPolicy policy_;
  ScopeHooks hooks_;
  obs::TraceSink* sink_ = nullptr;
};

}  // namespace tsx::stm
