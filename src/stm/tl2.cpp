#include "stm/tl2.h"

namespace tsx::stm {

namespace {
constexpr uint64_t kLogRingBytes = 256 * 1024;
}

Tl2::Tl2(Machine& m, Addr region_base, StmConfig cfg)
    : StmSystem(m),
      clock_addr_(region_base),
      locks_(m, region_base + sim::kLineBytes, cfg),
      cfg_(cfg) {
  Addr log_base = region_base + sim::kLineBytes + locks_.bytes();
  for (CtxId c = 0; c < sim::kMaxCtxs; ++c) {
    tx_[c].log = LogRing(&m_, log_base + c * kLogRingBytes, kLogRingBytes);
  }
}

uint64_t Tl2::region_bytes(const StmConfig& cfg) {
  return sim::kLineBytes +
         static_cast<uint64_t>(cfg.lock_table_entries) * sim::kWordBytes +
         sim::kMaxCtxs * kLogRingBytes;
}

void Tl2::init() {
  m_.prefault(clock_addr_, sim::kLineBytes);
  m_.poke(clock_addr_, 0);
  locks_.init();
  m_.prefault(clock_addr_ + sim::kLineBytes + locks_.bytes(),
              sim::kMaxCtxs * kLogRingBytes);
}

void Tl2::tx_start(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  if (tx.active) throw std::logic_error("TL2: nested tx_start");
  tx.active = true;
  tx.log.reset_tx();
  tx.rv = m_.load(clock_addr_);
  tx.read_set.clear();
  tx.write_list.clear();
  tx.write_index.clear();
  tx.held.clear();
}

Word Tl2::tx_read(CtxId ctx, Addr addr) {
  TxDesc& tx = tx_[ctx];
  // Read-after-write served from the redo log.
  m_.compute(cfg_.log_maintain_cycles);
  if (uint32_t* p = tx.write_index.find(addr)) {
    return tx.write_list[*p].second;
  }

  Addr la = locks_.lock_addr(addr);
  Word lw = m_.load(la);
  if (LockTable::is_locked(lw)) {
    abort_tx(StmAbortCause::kReadLocked, addr, LockTable::owner_of(lw));
  }
  if (LockTable::version_of(lw) > tx.rv) {
    abort_tx(StmAbortCause::kReadVersion, addr);
  }
  Word value = m_.load(addr);
  // Zero-latency recheck at the data load's linearization point (see
  // TinyStm::tx_read for the rationale).
  Word lw2 = m_.peek(la);
  if (lw2 != lw) {
    abort_tx(StmAbortCause::kReadLocked, addr,
             LockTable::is_locked(lw2) ? LockTable::owner_of(lw2)
                                       : sim::kNoCtx);
  }
  tx.read_set.push_back({la, LockTable::version_of(lw)});
  tx.log.append(1);
  return value;
}

void Tl2::tx_write(CtxId ctx, Addr addr, Word value) {
  TxDesc& tx = tx_[ctx];
  m_.compute(cfg_.log_maintain_cycles);
  if (uint32_t* p = tx.write_index.find(addr)) {
    tx.write_list[*p].second = value;
  } else {
    tx.write_index.insert(addr, static_cast<uint32_t>(tx.write_list.size()));
    tx.write_list.emplace_back(addr, value);
    tx.log.append(2);
  }
}

void Tl2::release_held(TxDesc& tx, Word new_version, bool restore_prev) {
  for (const auto& [la, prev] : tx.held) {
    m_.store(la, restore_prev ? prev : LockTable::make_version(new_version));
  }
  tx.held.clear();
}

void Tl2::tx_commit(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  if (!tx.active) throw std::logic_error("TL2: commit outside tx");
  if (tx.write_list.empty()) {
    notify_serialized(ctx);
    tx.active = false;
    ++stats_.commits;
    return;
  }
  // Commit-time lock acquisition over the distinct stripes of the write set.
  // (Stripes are deduplicated; acquisition order is write order, with abort
  // on any contention — classic TL2 trylock behaviour.) The dedup scratch
  // lives on the descriptor and is epoch-cleared: no per-commit allocation.
  util::FlatSet& acquired = tx.acquired_scratch;
  acquired.clear();
  for (const auto& [addr, value] : tx.write_list) {
    (void)value;
    Addr la = locks_.lock_addr(addr);
    if (!acquired.insert(la)) continue;
    Word lw = m_.load(la);
    if (LockTable::is_locked(lw)) {
      abort_tx(StmAbortCause::kWriteLocked, addr, LockTable::owner_of(lw));
    }
    if (LockTable::version_of(lw) > tx.rv) abort_tx(StmAbortCause::kValidation);
    if (!m_.cas(la, lw, LockTable::make_locked(ctx))) {
      abort_tx(StmAbortCause::kWriteLocked, addr);
    }
    tx.held.emplace_back(la, lw);
  }
  Word wv = m_.fetch_add(clock_addr_, 1) + 1;
  if (wv != tx.rv + 1) {
    for (const ReadEntry& e : tx.read_set) {
      Word lw = m_.load(e.lock_addr);
      if (LockTable::is_locked(lw)) {
        if (LockTable::owner_of(lw) != ctx) abort_tx(StmAbortCause::kValidation);
        continue;
      }
      if (LockTable::version_of(lw) > tx.rv) {
        abort_tx(StmAbortCause::kValidation);
      }
    }
  }
  // Serialization point: read-set validated, all written stripes locked.
  notify_serialized(ctx);
  for (const auto& [addr, value] : tx.write_list) {
    m_.store(addr, value);
  }
  release_held(tx, wv, /*restore_prev=*/false);
  tx.active = false;
  ++stats_.commits;
}

void Tl2::tx_abort_cleanup(CtxId ctx) {
  TxDesc& tx = tx_[ctx];
  release_held(tx, 0, /*restore_prev=*/true);
  tx.read_set.clear();
  tx.write_list.clear();
  tx.write_index.clear();
  tx.active = false;
}

}  // namespace tsx::stm
