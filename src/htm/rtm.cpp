#include "htm/rtm.h"

#include <algorithm>

#include "obs/trace_sink.h"

namespace tsx::htm {

const char* abort_class_name(AbortClass c) {
  switch (c) {
    case AbortClass::kConflictOrReadCap: return "conflict/read-capacity";
    case AbortClass::kWriteCapacity: return "write-capacity";
    case AbortClass::kLock: return "lock";
    case AbortClass::kMisc3: return "misc3";
    case AbortClass::kMisc5: return "misc5";
    case AbortClass::kCount: break;
  }
  return "?";
}

void RtmStats::merge(const RtmStats& o) {
  transactions += o.transactions;
  attempts += o.attempts;
  commits += o.commits;
  fallbacks += o.fallbacks;
  for (size_t i = 0; i < aborts_by_class.size(); ++i) {
    aborts_by_class[i] += o.aborts_by_class[i];
  }
  for (size_t i = 0; i < aborts_by_reason.size(); ++i) {
    aborts_by_reason[i] += o.aborts_by_reason[i];
  }
  cycles_committed += o.cycles_committed;
  cycles_aborted += o.cycles_aborted;
  cycles_fallback += o.cycles_fallback;
}

AttemptResult attempt(Machine& m, util::FnRef<void()> body) {
  AttemptResult r;
  Cycles t0 = m.now();
  try {
    m.tx_begin();
    body();
    m.tx_commit();
    r.committed = true;
    r.status = sim::xstatus::kStarted;
  } catch (const sim::TxAborted& a) {
    r.committed = false;
    r.status = a.status;
    r.reason = a.reason;
    r.conflict_line = a.conflict_line;
    r.attacker = a.attacker;
  }
  r.cycles = m.now() - t0;
  return r;
}

RtmExecutor::RtmExecutor(Machine& m, Addr lock_base, core::RetryPolicy policy)
    : m_(m), lock_(m, lock_base), policy_(policy),
      lock_line_(sim::line_of(lock_base)) {}

void RtmExecutor::init() { lock_.init(); }

bool RtmExecutor::in_fallback() const {
  if (!m_.on_fiber()) return false;
  return per_ctx_[m_.current_ctx()].in_fallback;
}

AbortClass RtmExecutor::classify(const AttemptResult& r, uint64_t lock_line) {
  using sim::AbortReason;
  // Lock aborts: the fallback path's explicit abort, or a conflict on the
  // serial-lock line (another thread's write_lock stomped our subscription).
  if (r.reason == AbortReason::kExplicit &&
      sim::xstatus::unpack_code(r.status) == kAbortCodeLockBusy) {
    return AbortClass::kLock;
  }
  if (r.reason == AbortReason::kConflict && r.conflict_line == lock_line) {
    return AbortClass::kLock;
  }
  switch (r.reason) {
    case AbortReason::kConflict:
    case AbortReason::kReadCapacity:
      return AbortClass::kConflictOrReadCap;
    case AbortReason::kWriteCapacity:
      return AbortClass::kWriteCapacity;
    case AbortReason::kExplicit:
    case AbortReason::kPageFault:
    case AbortReason::kUnsupportedInsn:
      return AbortClass::kMisc3;
    case AbortReason::kInterrupt:
    case AbortReason::kNone:
    case AbortReason::kCount:
      break;
  }
  return AbortClass::kMisc5;
}

void RtmExecutor::record(RtmStats& s, const AttemptResult& r,
                         uint64_t lock_line) {
  ++s.attempts;
  if (r.committed) {
    ++s.commits;
    s.cycles_committed += r.cycles;
    return;
  }
  s.cycles_aborted += r.cycles;
  ++s.aborts_by_class[static_cast<size_t>(classify(r, lock_line))];
  ++s.aborts_by_reason[static_cast<size_t>(r.reason)];
}

void RtmExecutor::execute(util::FnRef<void()> body, uint32_t site) {
  // Hold an index, not a pointer: body() may yield to another fiber whose
  // execute() appends a new site and reallocates sites_ underneath us.
  size_t site_idx = sites_.size();
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].first == site) {
      site_idx = i;
      break;
    }
  }
  if (site_idx == sites_.size()) {
    sites_.emplace_back(site, RtmStats{});
  }
  ++total_.transactions;
  ++sites_[site_idx].second.transactions;
  if (sink_) sink_->set_site(m_.current_ctx(), site);

  uint32_t retries = 0;
  for (;;) {
    ++retries;
    if (policy_.subscription == core::LockSubscription::kWaitThenSubscribe) {
      while (!lock_.read_can_lock()) m_.pause();
    }
    hooks_.on_begin();
    AttemptResult r = attempt(m_, [&] {
      if (policy_.subscription != core::LockSubscription::kNone) {
        if (!lock_.read_can_lock()) m_.tx_abort(kAbortCodeLockBusy);
      }
      body();
    });
    if (r.committed) {
      hooks_.on_commit();
    } else {
      hooks_.on_abort();
    }
    record(total_, r, lock_line_);
    record(sites_[site_idx].second, r, lock_line_);
    if (r.committed) return;

    // The paper: if the abort says the serial lock was (or is being) held,
    // wait for it to be released before retrying.
    if (classify(r, lock_line_) == AbortClass::kLock) {
      while (!lock_.read_can_lock()) m_.pause();
    }
    if (policy_.exhausted(retries)) break;
    // With the default kNone shape this is 0 and must not reach compute():
    // an extra scheduling point would perturb deterministic schedules.
    Cycles wait = policy_.backoff_cycles(retries, m_.setup_rng());
    if (sink_) sink_->retry_decision(m_.current_ctx(), m_.now(), false, wait);
    if (wait) m_.compute(wait);
  }

  // Serial fallback. With kNoSubscription this is unsafe against running
  // transactions (the ablation measures exactly that); with subscription it
  // aborts all of them via the lock line.
  if (sink_) sink_->retry_decision(m_.current_ctx(), m_.now(), true, 0);
  Cycles t0 = m_.now();
  ++total_.fallbacks;
  ++sites_[site_idx].second.fallbacks;
  per_ctx_[m_.current_ctx()].in_fallback = true;
  lock_.write_lock();
  hooks_.on_begin();
  try {
    body();
  } catch (...) {
    hooks_.on_abort();
    per_ctx_[m_.current_ctx()].in_fallback = false;
    lock_.write_unlock();
    throw;
  }
  hooks_.on_commit();
  lock_.write_unlock();
  per_ctx_[m_.current_ctx()].in_fallback = false;
  Cycles dt = m_.now() - t0;
  total_.cycles_fallback += dt;
  sites_[site_idx].second.cycles_fallback += dt;
}

RtmStats RtmExecutor::stats() const { return total_; }

RtmStats RtmExecutor::site_stats(uint32_t site) const {
  for (const auto& [id, st] : sites_) {
    if (id == site) return st;
  }
  return RtmStats{};
}

}  // namespace tsx::htm
