#pragma once
// RTM programming interface on top of the simulated TSX machine.
//
// Two levels:
//   * attempt(): one hardware transaction attempt around a body — the moral
//     equivalent of _xbegin()/_xend() with the body in between. Returns the
//     commit/abort outcome instead of longjmp-style control flow.
//   * RtmExecutor: the paper's Algorithm 1 — retry with a serial
//     reader/writer-lock fallback, subscribing to the lock inside the
//     transaction so fallback acquisitions abort all running transactions
//     ("lock aborts").
//
// Abort classification matches the paper's Fig. 12 buckets (Table III):
// data-conflict/read-capacity (merged, as on real hardware), write-capacity,
// lock, misc3 (explicit/page-fault/unsupported-insn), misc5 (interrupts &c).

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/retry_policy.h"
#include "sim/machine.h"
#include "sim/types.h"
#include "sync/spinlock.h"
#include "util/fn_ref.h"

namespace tsx::obs {
class TraceSink;
}

namespace tsx::htm {

using sim::AbortReason;
using sim::Addr;
using sim::Cycles;
using sim::Machine;

// The explicit abort code Algorithm 1 uses when it finds the serial lock
// held after starting a transaction.
inline constexpr uint8_t kAbortCodeLockBusy = 0xff;

struct AttemptResult {
  bool committed = false;
  uint32_t status = sim::xstatus::kStarted;
  AbortReason reason = AbortReason::kNone;
  uint64_t conflict_line = ~0ull;
  // Context whose access caused the abort (self for self-inflicted ones).
  sim::CtxId attacker = sim::kNoCtx;
  Cycles cycles = 0;  // duration of this attempt (begin..commit/abort)
};

// Runs `body` inside one hardware transaction attempt. The body performs its
// work through Machine ops; any abort (self- or remotely-initiated) unwinds
// the body via sim::TxAborted, which attempt() absorbs into the result.
// The body must keep host-side state transactional-safe: only locals, with
// all shared data in simulated memory (rolled back by the hardware model).
AttemptResult attempt(Machine& m, util::FnRef<void()> body);

// Reporting buckets used by the paper.
enum class AbortClass : uint8_t {
  kConflictOrReadCap = 0,  // hardware cannot tell these apart
  kWriteCapacity,
  kLock,   // aborts caused by a fallback lock acquisition
  kMisc3,  // explicit (non-lock), page fault, unsupported instruction
  kMisc5,  // interrupts / uncategorized
  kCount,
};
const char* abort_class_name(AbortClass c);

struct RtmStats {
  uint64_t transactions = 0;  // execute() calls
  uint64_t attempts = 0;
  uint64_t commits = 0;
  uint64_t fallbacks = 0;  // executions that took the serial lock
  std::array<uint64_t, static_cast<size_t>(AbortClass::kCount)> aborts_by_class{};
  std::array<uint64_t, static_cast<size_t>(AbortReason::kCount)> aborts_by_reason{};
  Cycles cycles_committed = 0;  // in committing attempts
  Cycles cycles_aborted = 0;    // wasted in aborting attempts
  Cycles cycles_fallback = 0;   // in serial sections (incl. lock wait)

  uint64_t aborts() const {
    uint64_t s = 0;
    for (uint64_t a : aborts_by_class) s += a;
    return s;
  }
  // Aborts per attempt, the paper's "abort rate".
  double abort_rate() const {
    return attempts ? static_cast<double>(aborts()) / static_cast<double>(attempts)
                    : 0.0;
  }
  double fallback_rate() const {
    return transactions
               ? static_cast<double>(fallbacks) / static_cast<double>(transactions)
               : 0.0;
  }

  void merge(const RtmStats& o);
};

// Hooks bracketing every speculative attempt and the fallback execution,
// used by the simulated heap to undo allocations of aborted attempts.
struct ScopeHooks {
  std::function<void()> begin;
  std::function<void()> commit;
  std::function<void()> abort;

  void on_begin() const { if (begin) begin(); }
  void on_commit() const { if (commit) commit(); }
  void on_abort() const { if (abort) abort(); }
};

// Algorithm 1: transactional execution with serial-lock fallback. One
// executor per Machine; all threads share it (its mutable statistics are
// per-context, merged on demand, so fibers never race on counters — not
// that they could, single host thread). Attempt budget, backoff shape and
// lock-subscription mode all come from the core::RetryPolicy.
class RtmExecutor {
 public:
  // `lock_base` must point at SerialRwLock::kFootprintBytes of simulated
  // memory, line-aligned so the subscription line is exclusive to the lock.
  RtmExecutor(Machine& m, Addr lock_base, core::RetryPolicy policy = {});

  // Host-side initialization of the lock words.
  void init();

  void set_scope_hooks(ScopeHooks hooks) { hooks_ = std::move(hooks); }

  // Optional observability sink (src/obs): execute() declares the call site
  // to it and reports every retry-policy decision (backoff length, fallback
  // taken). Begin/commit/abort events flow via the machine's ObsHooks.
  void set_sink(obs::TraceSink* sink) { sink_ = sink; }

  // Executes `body` atomically: hardware transaction with retry, then
  // serial fallback. `site` identifies the static transaction site for
  // per-site statistics (Table IV's TID1-style breakdowns); pass 0 if
  // unneeded.
  void execute(util::FnRef<void()> body, uint32_t site = 0);

  // True while the calling context holds the serial lock (body code can
  // check this to know it runs non-speculatively).
  bool in_fallback() const;

  sync::SerialRwLock& lock() { return lock_; }
  const core::RetryPolicy& policy() const { return policy_; }

  // Aggregate statistics across all contexts / sites.
  RtmStats stats() const;
  // Per-site view (sites not seen return zeroed stats).
  RtmStats site_stats(uint32_t site) const;
  const std::vector<std::pair<uint32_t, RtmStats>>& all_site_stats() const {
    return sites_;
  }

  static AbortClass classify(const AttemptResult& r, uint64_t lock_line);

 private:
  struct PerCtx {
    bool in_fallback = false;
  };

  void record(RtmStats& s, const AttemptResult& r, uint64_t lock_line);

  Machine& m_;
  sync::SerialRwLock lock_;
  core::RetryPolicy policy_;
  ScopeHooks hooks_;
  obs::TraceSink* sink_ = nullptr;
  uint64_t lock_line_;
  std::array<PerCtx, sim::kMaxCtxs> per_ctx_{};
  RtmStats total_;
  std::vector<std::pair<uint32_t, RtmStats>> sites_;
};

}  // namespace tsx::htm
