#pragma once
// Hardware Lock Elision (HLE): TSX's legacy-compatible interface, which the
// paper introduces alongside RTM (§I). An XACQUIRE-prefixed lock acquisition
// elides the lock: the critical section runs as a hardware transaction with
// the lock word in the read-set (still observed as "free"), so
// non-conflicting critical sections of the same lock run concurrently. On
// abort, the hardware re-executes the acquisition for real and the section
// runs classically under the lock.
//
// Differences from RTM that this model preserves:
//   * no abort handler or status code reaches software — the retry policy
//     is fixed in hardware (one elided attempt, then take the lock);
//   * the elided lock word itself is the subscription: a real acquisition
//     by any thread aborts all elided sections;
//   * page faults / capacity / interrupts behave exactly as under RTM.
//
// `bench/extension_hle_vs_rtm` compares this against the RTM executor with
// its software-controlled retry budget — the reason Algorithm-1-style RTM
// runtimes usually beat plain HLE on contended short sections.

#include <array>
#include <cstdint>
#include <functional>

#include "htm/rtm.h"
#include "sim/machine.h"
#include "sync/spinlock.h"

namespace tsx::htm {

struct HleStats {
  uint64_t sections = 0;        // elided_lock() calls
  uint64_t elided_commits = 0;  // sections that committed speculatively
  uint64_t elision_aborts = 0;  // failed elision attempts
  uint64_t lock_acquisitions = 0;

  double elision_rate() const {
    return sections ? static_cast<double>(elided_commits) /
                          static_cast<double>(sections)
                    : 0.0;
  }
};

// An elidable test-and-set lock (the XACQUIRE/XRELEASE pattern).
class HleLock {
 public:
  // `lock_base` must point at one line-aligned simulated word.
  HleLock(sim::Machine& m, sim::Addr lock_base, uint32_t elision_attempts = 1)
      : m_(m), lock_(m, lock_base), attempts_(elision_attempts) {}

  void init() { lock_.init(); }

  // Executes `body` as an elided critical section: speculatively first
  // (`attempts_` tries, as hardware would re-elide after some abort kinds),
  // then under the real lock.
  void critical_section(util::FnRef<void()> body);

  // Per-attempt scope hooks, mirroring RtmExecutor's: `begin` before every
  // elided attempt and after the fallback lock acquisition; `commit` after
  // a successful elision, and on the lock path after the body while the
  // lock is still held (so src/check seals sections in visibility order);
  // `abort` after every failed attempt. Used by the runtime for
  // heap-allocation scoping and history recording.
  void set_scope_hooks(ScopeHooks hooks) { hooks_ = std::move(hooks); }

  // Optional observability sink (src/obs): reports re-elision and
  // lock-acquisition decisions. Attempt events flow via the machine's
  // ObsHooks.
  void set_sink(obs::TraceSink* sink) { sink_ = sink; }

  const HleStats& stats() const { return stats_; }

 private:
  bool try_elided(util::FnRef<void()> body);

  sim::Machine& m_;
  sync::TasSpinLock lock_;
  uint32_t attempts_;
  HleStats stats_;
  ScopeHooks hooks_;
  obs::TraceSink* sink_ = nullptr;
};

}  // namespace tsx::htm
