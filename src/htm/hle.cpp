#include "htm/hle.h"

#include "htm/rtm.h"
#include "obs/trace_sink.h"

namespace tsx::htm {

bool HleLock::try_elided(util::FnRef<void()> body) {
  hooks_.on_begin();
  AttemptResult r = attempt(m_, [&] {
    // The elided acquisition: the lock word joins the read-set and must
    // look free (a held lock means someone is inside non-speculatively).
    if (lock_.is_locked()) m_.tx_abort(kAbortCodeLockBusy);
    body();
    // XRELEASE: the elided release touches nothing (the lock was never
    // written), so the commit ends the section.
  });
  if (r.committed) {
    ++stats_.elided_commits;
    hooks_.on_commit();
    return true;
  }
  ++stats_.elision_aborts;
  hooks_.on_abort();
  return false;
}

void HleLock::critical_section(util::FnRef<void()> body) {
  ++stats_.sections;
  for (uint32_t a = 0; a < attempts_; ++a) {
    if (try_elided(body)) return;
    // Hardware re-elision: no software backoff exists in HLE.
    if (sink_ && a + 1 < attempts_) {
      sink_->retry_decision(m_.current_ctx(), m_.now(), false, 0);
    }
  }
  // Hardware falls back to the real acquisition: the lock word write
  // conflicts with every concurrent elided section, aborting them all.
  if (sink_) sink_->retry_decision(m_.current_ctx(), m_.now(), true, 0);
  ++stats_.lock_acquisitions;
  lock_.lock();
  hooks_.on_begin();
  try {
    body();
  } catch (...) {
    hooks_.on_abort();
    lock_.unlock();
    throw;
  }
  // Commit while the lock is still held: the section's effects become
  // visible to other contexts only at the unlock.
  hooks_.on_commit();
  lock_.unlock();
}

}  // namespace tsx::htm
