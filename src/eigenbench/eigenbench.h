#pragma once
// Eigenbench (Hong, Oguntebi, Casper, Bronson, Kozyrakis, Olukotun,
// IISWC 2010): a microbenchmark that explores TM behaviour along orthogonal
// characteristics. This reimplementation follows the paper's three-array
// structure:
//
//   * hot  — one array shared by all threads, accessed transactionally;
//            the contention knob (Fig. 7).
//   * mild — a per-thread array accessed transactionally; its size is the
//            per-thread working set (Fig. 3), and the number of accesses per
//            transaction is the transaction length (Fig. 4).
//   * cold — a per-thread array accessed outside transactions; together with
//            non-tx compute it sets predominance (Fig. 8).
//
// The seven characteristics of the paper's Table II map to EigenConfig
// fields as documented below.

#include <cstdint>

#include "core/runtime.h"

namespace tsx::eigenbench {

using core::TxCtx;
using core::TxRuntime;
using sim::Addr;

struct EigenConfig {
  uint64_t loops = 1000;  // transactions per thread

  // Transaction length & pollution: reads/writes per tx on the mild array.
  uint32_t reads_mild = 90;
  uint32_t writes_mild = 10;
  // Working-set size: bytes of the per-thread mild array.
  uint64_t ws_bytes = 16 * 1024;

  // Contention: accesses to the shared hot array (0 = no contention).
  uint32_t reads_hot = 0;
  uint32_t writes_hot = 0;
  uint64_t hot_bytes = 64 * 1024;

  // Predominance: non-transactional work per loop iteration.
  uint32_t reads_cold = 0;
  uint32_t writes_cold = 0;
  uint64_t cold_bytes = 64 * 1024;
  uint32_t nops_in_tx = 0;   // compute cycles inside the transaction
  uint32_t nops_out_tx = 0;  // compute cycles outside

  // Temporal locality: probability that an access repeats one of the last
  // kHistory addresses instead of drawing a fresh random one.
  double locality = 0.0;

  // Verification mode: writes increment their target word (instead of
  // storing a payload), so the grand total over all arrays must equal the
  // number of writes performed — an atomicity check used by the tests.
  bool verify_increments = false;
};

struct EigenResult {
  core::RunReport report;
  uint64_t total_reads = 0;
  uint64_t total_writes = 0;
  uint64_t read_checksum = 0;   // sum of values read (forces real dataflow)
  // Only meaningful with verify_increments: sum over every array word.
  uint64_t increment_sum = 0;
};

// Approximate per-transaction conflict probability at word granularity, the
// metric the paper plots on Fig. 7's x-axis (valid for the STM; RTM's
// effective contention is higher because it detects at line granularity).
double conflict_probability(uint32_t threads, uint32_t reads_hot,
                            uint32_t writes_hot, uint64_t hot_words);
// Same formula evaluated at cache-line granularity (RTM's view).
double conflict_probability_lines(uint32_t threads, uint32_t reads_hot,
                                  uint32_t writes_hot, uint64_t hot_bytes);

// Runs eigenbench under the backend/threads in `run_cfg` and returns the
// measured-region report (setup is excluded via mark_measurement_start).
EigenResult run(const core::RunConfig& run_cfg, const EigenConfig& eb);

}  // namespace tsx::eigenbench
