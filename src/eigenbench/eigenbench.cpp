#include "eigenbench/eigenbench.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsx::eigenbench {

namespace {

constexpr uint32_t kHistory = 16;

// Per-thread address generator with a temporal-locality knob.
class AddrGen {
 public:
  AddrGen(sim::Rng& rng, Addr base, uint64_t words, double locality)
      : rng_(rng), base_(base), words_(words), locality_(locality) {}

  Addr next() {
    if (hist_size_ > 0 && locality_ > 0 && rng_.chance(locality_)) {
      return hist_[rng_.below(hist_size_)];
    }
    Addr a = base_ + rng_.below(words_) * sim::kWordBytes;
    hist_[hist_pos_] = a;
    hist_pos_ = (hist_pos_ + 1) % kHistory;
    hist_size_ = std::min<uint32_t>(hist_size_ + 1, kHistory);
    return a;
  }

 private:
  sim::Rng& rng_;
  Addr base_;
  uint64_t words_;
  double locality_;
  Addr hist_[kHistory] = {};
  uint32_t hist_pos_ = 0;
  uint32_t hist_size_ = 0;
};

struct ThreadTotals {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t checksum = 0;
};

}  // namespace

double conflict_probability(uint32_t threads, uint32_t reads_hot,
                            uint32_t writes_hot, uint64_t hot_words) {
  // Hong et al.'s approximation: a transaction conflicts if any of its hot
  // accesses collides with another concurrent transaction's writes. With
  // n-1 other transactions each writing w words of a W-word array, a single
  // access collides with probability (n-1)*w/W; a transaction makes r+w
  // independent hot accesses.
  if (threads <= 1 || hot_words == 0) return 0.0;
  double per_access =
      std::min(1.0, static_cast<double>(threads - 1) *
                        static_cast<double>(writes_hot) /
                        static_cast<double>(hot_words));
  double accesses = static_cast<double>(reads_hot + writes_hot);
  return 1.0 - std::pow(1.0 - per_access, accesses);
}

double conflict_probability_lines(uint32_t threads, uint32_t reads_hot,
                                  uint32_t writes_hot, uint64_t hot_bytes) {
  return conflict_probability(threads, reads_hot, writes_hot,
                              hot_bytes / sim::kLineBytes);
}

EigenResult run(const core::RunConfig& run_cfg, const EigenConfig& eb) {
  if (eb.ws_bytes < sim::kWordBytes || eb.hot_bytes < sim::kWordBytes) {
    throw std::invalid_argument("eigenbench arrays too small");
  }
  TxRuntime rt(run_cfg);
  uint32_t n = run_cfg.threads;

  // Setup (host-side): one hot array, per-thread mild and cold arrays.
  // Arrays are prefaulted: the paper's runs are warmed up and its Fig. 3
  // working-set effects come from cache capacity, not page faults.
  auto& heap = rt.heap();
  Addr hot = heap.host_alloc(eb.hot_bytes, sim::kLineBytes);
  std::vector<Addr> mild(n), cold(n);
  for (uint32_t t = 0; t < n; ++t) {
    mild[t] = heap.host_alloc(eb.ws_bytes, sim::kLineBytes);
    cold[t] = heap.host_alloc(std::max<uint64_t>(eb.cold_bytes, 64),
                              sim::kLineBytes);
  }

  std::vector<ThreadTotals> totals(n);

  rt.run([&](TxCtx& ctx) {
    uint32_t t = ctx.id();
    sim::Rng& rng = ctx.rng();
    AddrGen gen_mild(rng, mild[t], eb.ws_bytes / sim::kWordBytes, eb.locality);
    AddrGen gen_hot(rng, hot, eb.hot_bytes / sim::kWordBytes, eb.locality);
    AddrGen gen_cold(rng, cold[t],
                     std::max<uint64_t>(eb.cold_bytes, 64) / sim::kWordBytes,
                     eb.locality);
    ThreadTotals& tt = totals[t];

    // Warm the private working set (outside the measured region) so the
    // first measured transactions don't pay compulsory misses. The warm
    // reads run inside transactions so TM metadata (STM lock stripes) warms
    // up too — the paper's runs average full executions over millions of
    // transactions, amortizing exactly these compulsory misses.
    for (Addr chunk = mild[t]; chunk < mild[t] + eb.ws_bytes;
         chunk += 64 * sim::kLineBytes) {
      Addr end = std::min(chunk + 64 * sim::kLineBytes, mild[t] + eb.ws_bytes);
      ctx.transaction([&] {
        for (Addr a = chunk; a < end; a += sim::kLineBytes) ctx.load(a);
      });
    }
    ctx.barrier();
    if (t == 0) ctx.runtime().mark_measurement_start();
    ctx.barrier();

    // The per-transaction access schedule interleaves reads and writes in a
    // deterministic shuffled order, as eigenbench does, so writes are not
    // clustered at the end.
    uint32_t tx_ops = eb.reads_mild + eb.writes_mild + eb.reads_hot +
                      eb.writes_hot;
    std::vector<uint8_t> schedule;
    schedule.reserve(tx_ops);
    // 0 = mild read, 1 = mild write, 2 = hot read, 3 = hot write
    for (uint32_t i = 0; i < eb.reads_mild; ++i) schedule.push_back(0);
    for (uint32_t i = 0; i < eb.writes_mild; ++i) schedule.push_back(1);
    for (uint32_t i = 0; i < eb.reads_hot; ++i) schedule.push_back(2);
    for (uint32_t i = 0; i < eb.writes_hot; ++i) schedule.push_back(3);
    for (size_t i = schedule.size(); i > 1; --i) {
      std::swap(schedule[i - 1], schedule[rng.below(i)]);
    }

    uint64_t payload = (static_cast<uint64_t>(t) << 32) + 1;
    for (uint64_t loop = 0; loop < eb.loops; ++loop) {
      // Reset at each attempt and folded into the totals only after the
      // transaction commits, so aborted attempts don't skew checksums.
      uint64_t reads = 0, writes = 0, checksum = 0;
      ctx.transaction([&] {
        reads = 0;
        writes = 0;
        checksum = 0;
        for (uint8_t op : schedule) {
          switch (op) {
            case 0:
              checksum += ctx.load(gen_mild.next());
              ++reads;
              break;
            case 1: {
              Addr a = gen_mild.next();
              if (eb.verify_increments) {
                ctx.store(a, ctx.load(a) + 1);
              } else {
                ctx.store(a, payload++);
              }
              ++writes;
              break;
            }
            case 2:
              checksum += ctx.load(gen_hot.next());
              ++reads;
              break;
            case 3: {
              Addr a = gen_hot.next();
              if (eb.verify_increments) {
                ctx.store(a, ctx.load(a) + 1);
              } else {
                ctx.store(a, payload++);
              }
              ++writes;
              break;
            }
          }
        }
        if (eb.nops_in_tx) ctx.compute(eb.nops_in_tx);
      });
      tt.reads += reads;
      tt.writes += writes;
      tt.checksum += checksum;
      // Non-transactional phase: cold accesses + compute.
      for (uint32_t i = 0; i < eb.reads_cold; ++i) {
        tt.checksum += ctx.load(gen_cold.next());
        ++tt.reads;
      }
      for (uint32_t i = 0; i < eb.writes_cold; ++i) {
        Addr a = gen_cold.next();
        ctx.store(a, eb.verify_increments ? ctx.load(a) + 1 : payload++);
        ++tt.writes;
      }
      if (eb.nops_out_tx) ctx.compute(eb.nops_out_tx);
    }
  });

  EigenResult res;
  res.report = rt.report();
  for (const auto& tt : totals) {
    res.total_reads += tt.reads;
    res.total_writes += tt.writes;
    res.read_checksum += tt.checksum;
  }
  if (eb.verify_increments) {
    auto sum_array = [&](Addr base, uint64_t bytes) {
      uint64_t s = 0;
      for (Addr a = base; a < base + bytes; a += sim::kWordBytes) {
        s += rt.machine().peek(a);
      }
      return s;
    };
    res.increment_sum = sum_array(hot, eb.hot_bytes);
    for (uint32_t t = 0; t < n; ++t) {
      res.increment_sum += sum_array(mild[t], eb.ws_bytes);
      res.increment_sum +=
          sum_array(cold[t], std::max<uint64_t>(eb.cold_bytes, 64));
    }
  }
  return res;
}

}  // namespace tsx::eigenbench
