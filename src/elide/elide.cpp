#include "elide/elide.h"

#include <stdexcept>

#include "obs/trace_sink.h"

namespace tsx::elide {

namespace {

// Trace-site namespace for elided sections, far above bench site ids; the
// sink maps it to "elide:<name>" for abort attribution.
constexpr uint32_t kElideSiteBase = 0xe11d0000u;

Word owner_token(core::TxCtx& ctx) { return static_cast<Word>(ctx.id()) + 1; }

}  // namespace

namespace detail {

LockBase::LockBase(core::TxRuntime& rt, std::string name,
                   const ElideConfig& cfg, uint32_t nlines)
    : rt_(rt),
      cfg_(cfg),
      id_(rt.alloc_elide_lock_id()),
      site_(kElideSiteBase + id_),
      name_(name.empty() ? "lock#" + std::to_string(id_) : std::move(name)),
      base_(rt.alloc_elide_lines(nlines)) {
  // SeqExecutor provides no mutual exclusion for concurrent bodies, so
  // elision there would be unsound; the real-lock protocol still works.
  if (rt.config().backend == core::Backend::kSeq) cfg_.elision_enabled = false;
  for (uint32_t i = 0; i < nlines; ++i) {
    rt.machine().poke(base_ + i * sim::kLineBytes, 0);
  }
  if (obs::TraceSink* s = rt.trace_sink()) {
    s->elide_lock_name(id_, name_);
    s->set_site_name(site_, "elide:" + name_);
  }
}

void LockBase::account(core::TxCtx& ctx, obs::ElideAcqKind kind,
                       uint64_t attempts, Cycles elided_c, Cycles wasted_c) {
  ++stats_.acquisitions;
  bool tripped = false;
  if (elision_active() && cfg_.selfstop_window) {
    ++window_acqs_;
    window_elided_ += elided_c;
    window_wasted_ += wasted_c;
    if (window_acqs_ >= cfg_.selfstop_window) {
      Cycles spec = window_elided_ + window_wasted_;
      double share = spec ? static_cast<double>(window_wasted_) /
                                static_cast<double>(spec)
                          : 0.0;
      if (share > cfg_.selfstop_wasted_share) {
        if (++strikes_ >= cfg_.selfstop_strikes) {
          stats_.stopped = true;
          ++stats_.self_stops;
          tripped = true;
        }
      } else {
        strikes_ = 0;
      }
      window_acqs_ = 0;
      window_elided_ = 0;
      window_wasted_ = 0;
    }
  }
  if (obs::TraceSink* s = rt_.trace_sink()) {
    s->elide_acquire(id_, ctx.id(), ctx.now(), kind, attempts, elided_c,
                     wasted_c, tripped);
  }
}

void LockBase::note_locked_acquire(core::TxCtx& ctx) {
  ++stats_.lock_acquires;
  account(ctx, obs::ElideAcqKind::kLocked, 0, 0, 0);
}

LockBase::SpecResult LockBase::speculate(core::TxCtx& ctx,
                                         util::FnRef<void()> body,
                                         Addr subscribed_word,
                                         const std::function<bool()>& more_free) {
  SpecResult r;
  if (!elision_active()) return r;
  bool extra_busy = false;
  // Host-side wrapper only; the more_free branch costs nothing simulated.
  auto wrapped = [&extra_busy, &more_free, body] {
    if (more_free && !more_free()) {
      extra_busy = true;
      return;
    }
    body();
  };
  sim::Machine& m = rt_.machine();
  uint32_t attempt_no = 0;
  while (!cfg_.retry.exhausted(attempt_no)) {
    ++attempt_no;
    ++r.attempts;
    ++stats_.attempts;
    extra_busy = false;
    Cycles t0 = ctx.now();
    core::ElideOutcome out = ctx.elide(wrapped, subscribed_word, site_);
    Cycles dt = ctx.now() - t0;
    bool busy = out == core::ElideOutcome::kLockBusy ||
                (out == core::ElideOutcome::kCommitted && extra_busy);
    if (out == core::ElideOutcome::kCommitted && !extra_busy) {
      ++stats_.elided;
      stats_.cycles_elided += dt;
      stats_.cycles_wasted += r.wasted;
      account(ctx, obs::ElideAcqKind::kElided, r.attempts, dt, r.wasted);
      r.committed = true;
      return r;
    }
    r.wasted += dt;
    if (busy) {
      // A real holder (or, on composite locks, a reader) excludes us; yield
      // a beat before retrying rather than hammering the held word.
      ++stats_.busy_waits;
      ctx.pause();
      continue;
    }
    ++stats_.aborts;
    Cycles wait = cfg_.retry.backoff_cycles(attempt_no, m.setup_rng());
    if (wait) ctx.compute(wait);
  }
  // Budget exhausted: the caller takes the real lock. The acquisition is
  // accounted when the fallback section completes.
  stats_.cycles_wasted += r.wasted;
  return r;
}

}  // namespace detail

// ---- mutex ----

mutex::mutex(core::TxRuntime& rt, std::string name, const ElideConfig& cfg)
    : LockBase(rt, std::move(name), cfg, 1) {}

void mutex::lock(core::TxCtx& ctx) {
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(word(), 0, me)) ctx.pause();
  note_locked_acquire(ctx);
}

bool mutex::try_lock(core::TxCtx& ctx) {
  if (!ctx.lock_cas(word(), 0, owner_token(ctx))) return false;
  note_locked_acquire(ctx);
  return true;
}

void mutex::unlock(core::TxCtx& ctx) {
  if (!ctx.lock_cas(word(), owner_token(ctx), 0)) {
    throw std::logic_error("elide::mutex::unlock: not held by this context");
  }
}

// Host-side probes (peek, not load): usable both inside a fiber and after
// rt.run() returns; they deliberately stay out of any speculative read set.
bool mutex::is_locked() { return rt_.machine().peek(word()) != 0; }

bool mutex::held_by(core::TxCtx& ctx) {
  return rt_.machine().peek(word()) == owner_token(ctx);
}

void mutex::critical_section(core::TxCtx& ctx, util::FnRef<void()> body) {
  detail::LockBase::SpecResult r = speculate(ctx, body, subscribed(word()), {});
  if (r.committed) return;
  ++stats_.fallbacks;
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(word(), 0, me)) ctx.pause();
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    ctx.lock_cas(word(), me, 0);
    throw;
  }
  ctx.lock_cas(word(), me, 0);
  account(ctx, obs::ElideAcqKind::kFallback, r.attempts, 0, r.wasted);
}

void mutex::locked_section(core::TxCtx& ctx, util::FnRef<void()> body) {
  lock(ctx);
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    unlock(ctx);
    throw;
  }
  unlock(ctx);
}

// ---- shared_mutex ----

shared_mutex::shared_mutex(core::TxRuntime& rt, std::string name,
                           const ElideConfig& cfg)
    : LockBase(rt, std::move(name), cfg, 2) {}

void shared_mutex::lock(core::TxCtx& ctx) {
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(writer_word(), 0, me)) ctx.pause();
  while (ctx.load(reader_word()) != 0) ctx.pause();
  note_locked_acquire(ctx);
}

bool shared_mutex::try_lock(core::TxCtx& ctx) {
  Word me = owner_token(ctx);
  if (!ctx.lock_cas(writer_word(), 0, me)) return false;
  if (ctx.load(reader_word()) != 0) {
    // Readers in flight: back out, like sync::SerialRwLock::try_write_lock.
    ctx.lock_cas(writer_word(), me, 0);
    return false;
  }
  note_locked_acquire(ctx);
  return true;
}

void shared_mutex::unlock(core::TxCtx& ctx) {
  if (!ctx.lock_cas(writer_word(), owner_token(ctx), 0)) {
    throw std::logic_error(
        "elide::shared_mutex::unlock: not held by this context");
  }
}

void shared_mutex::lock_shared_slow(core::TxCtx& ctx) {
  for (;;) {
    ctx.lock_fetch_add(reader_word(), 1);
    if (ctx.load(writer_word()) == 0) return;
    // Writer present or arrived: back out and wait (SerialRwLock protocol).
    ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
    while (ctx.load(writer_word()) != 0) ctx.pause();
  }
}

void shared_mutex::lock_shared(core::TxCtx& ctx) {
  lock_shared_slow(ctx);
  note_locked_acquire(ctx);
}

bool shared_mutex::try_lock_shared(core::TxCtx& ctx) {
  ctx.lock_fetch_add(reader_word(), 1);
  if (ctx.load(writer_word()) == 0) {
    note_locked_acquire(ctx);
    return true;
  }
  ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
  return false;
}

void shared_mutex::unlock_shared(core::TxCtx& ctx) {
  ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
}

void shared_mutex::critical_section(core::TxCtx& ctx,
                                    util::FnRef<void()> body) {
  // Exclusive speculation: the writer word is subscribed by the executor;
  // the reader count joins the read set through the in-transaction load, so
  // a raw reader's arrival dooms (or busies) the attempt.
  std::function<bool()> readers_free;
  if (cfg_.subscribe) {
    readers_free = [this, &ctx] { return ctx.load(reader_word()) == 0; };
  }
  detail::LockBase::SpecResult r =
      speculate(ctx, body, subscribed(writer_word()), readers_free);
  if (r.committed) return;
  ++stats_.fallbacks;
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(writer_word(), 0, me)) ctx.pause();
  while (ctx.load(reader_word()) != 0) ctx.pause();
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    ctx.lock_cas(writer_word(), me, 0);
    throw;
  }
  ctx.lock_cas(writer_word(), me, 0);
  account(ctx, obs::ElideAcqKind::kFallback, r.attempts, 0, r.wasted);
}

void shared_mutex::critical_section_shared(core::TxCtx& ctx,
                                           util::FnRef<void()> body) {
  // Shared speculation subscribes only the writer word: concurrent readers
  // (elided or real) must not exclude each other.
  detail::LockBase::SpecResult r =
      speculate(ctx, body, subscribed(writer_word()), {});
  if (r.committed) return;
  ++stats_.fallbacks;
  lock_shared_slow(ctx);
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    unlock_shared(ctx);
    throw;
  }
  unlock_shared(ctx);
  account(ctx, obs::ElideAcqKind::kFallback, r.attempts, 0, r.wasted);
}

// ---- sux_lock ----

sux_lock::sux_lock(core::TxRuntime& rt, std::string name,
                   const ElideConfig& cfg)
    : LockBase(rt, std::move(name), cfg, 3) {}

void sux_lock::s_lock(core::TxCtx& ctx) {
  for (;;) {
    ctx.lock_fetch_add(reader_word(), 1);
    if (ctx.load(writer_word()) == 0) break;
    ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
    while (ctx.load(writer_word()) != 0) ctx.pause();
  }
  note_locked_acquire(ctx);
}

bool sux_lock::try_s_lock(core::TxCtx& ctx) {
  ctx.lock_fetch_add(reader_word(), 1);
  if (ctx.load(writer_word()) == 0) {
    note_locked_acquire(ctx);
    return true;
  }
  ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
  return false;
}

void sux_lock::s_unlock(core::TxCtx& ctx) {
  ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
}

void sux_lock::u_lock(core::TxCtx& ctx) {
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(update_word(), 0, me)) ctx.pause();
  note_locked_acquire(ctx);
}

bool sux_lock::try_u_lock(core::TxCtx& ctx) {
  if (!ctx.lock_cas(update_word(), 0, owner_token(ctx))) return false;
  note_locked_acquire(ctx);
  return true;
}

void sux_lock::u_unlock(core::TxCtx& ctx) {
  if (!ctx.lock_cas(update_word(), owner_token(ctx), 0)) {
    throw std::logic_error("elide::sux_lock::u_unlock: not the update holder");
  }
}

void sux_lock::u_x_upgrade(core::TxCtx& ctx) {
  Word me = owner_token(ctx);
  if (rt_.machine().load(update_word()) != me) {
    throw std::logic_error(
        "elide::sux_lock::u_x_upgrade: not the update holder");
  }
  // Only the (unique) update holder ever sets the writer flag, so this CAS
  // cannot race another writer; it *can* race elided sections, which have
  // the flag's line subscribed and abort on the write.
  ctx.lock_cas(writer_word(), 0, me);
  while (ctx.load(reader_word()) != 0) ctx.pause();
}

void sux_lock::x_u_downgrade(core::TxCtx& ctx) {
  if (!ctx.lock_cas(writer_word(), owner_token(ctx), 0)) {
    throw std::logic_error(
        "elide::sux_lock::x_u_downgrade: not the exclusive holder");
  }
}

void sux_lock::x_lock(core::TxCtx& ctx) {
  u_lock(ctx);
  u_x_upgrade(ctx);
}

void sux_lock::x_unlock(core::TxCtx& ctx) {
  x_u_downgrade(ctx);
  u_unlock(ctx);
}

void sux_lock::critical_section_shared(core::TxCtx& ctx,
                                       util::FnRef<void()> body) {
  // Shared coexists with an update holder, so only the writer flag is
  // subscribed: an elided reader runs happily beside u_lock owners and is
  // excluded (busied/doomed) exactly when an upgrade begins.
  detail::LockBase::SpecResult r =
      speculate(ctx, body, subscribed(writer_word()), {});
  if (r.committed) return;
  ++stats_.fallbacks;
  for (;;) {
    ctx.lock_fetch_add(reader_word(), 1);
    if (ctx.load(writer_word()) == 0) break;
    ctx.lock_fetch_add(reader_word(), static_cast<Word>(-1));
    while (ctx.load(writer_word()) != 0) ctx.pause();
  }
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    s_unlock(ctx);
    throw;
  }
  s_unlock(ctx);
  account(ctx, obs::ElideAcqKind::kFallback, r.attempts, 0, r.wasted);
}

void sux_lock::critical_section_x(core::TxCtx& ctx,
                                  util::FnRef<void()> body) {
  // Exclusive speculation subscribes the update word (any u/x holder
  // excludes us; writer != 0 implies update != 0 by protocol) and loads the
  // reader count in-transaction so reader arrivals doom the attempt.
  std::function<bool()> readers_free;
  if (cfg_.subscribe) {
    readers_free = [this, &ctx] { return ctx.load(reader_word()) == 0; };
  }
  detail::LockBase::SpecResult r =
      speculate(ctx, body, subscribed(update_word()), readers_free);
  if (r.committed) return;
  ++stats_.fallbacks;
  Word me = owner_token(ctx);
  while (!ctx.lock_cas(update_word(), 0, me)) ctx.pause();
  ctx.lock_cas(writer_word(), 0, me);
  while (ctx.load(reader_word()) != 0) ctx.pause();
  try {
    ctx.elide_fallback(body, site());
  } catch (...) {
    ctx.lock_cas(writer_word(), me, 0);
    ctx.lock_cas(update_word(), me, 0);
    throw;
  }
  ctx.lock_cas(writer_word(), me, 0);
  ctx.lock_cas(update_word(), me, 0);
  account(ctx, obs::ElideAcqKind::kFallback, r.attempts, 0, r.wasted);
}

// ---- condition_variable ----

condition_variable::condition_variable(core::TxRuntime& rt, std::string name)
    : rt_(rt), name_(std::move(name)), base_(rt.alloc_elide_lines(1)) {
  rt.machine().poke(seq_word(), 0);
  rt.machine().poke(waiters_word(), 0);
}

void condition_variable::wait(core::TxCtx& ctx, mutex& m) {
  if (ctx.in_atomic()) {
    throw std::logic_error(
        "elide::condition_variable::wait inside an atomic section (cv wait "
        "is a non-elidable slow path; hold the mutex for real)");
  }
  if (!m.held_by(ctx)) {
    throw std::logic_error(
        "elide::condition_variable::wait without holding the mutex");
  }
  // Register, snapshot the sequence, then release the mutex: a notify that
  // lands between the snapshot and the release bumps the sequence, so the
  // spin below exits immediately — no lost wakeup.
  ctx.fetch_add(waiters_word(), 1);
  Word s0 = ctx.load(seq_word());
  m.unlock(ctx);
  while (ctx.load(seq_word()) == s0) ctx.pause();
  ctx.fetch_add(waiters_word(), static_cast<Word>(-1));
  m.lock(ctx);
}

void condition_variable::bump(core::TxCtx& ctx) {
  if (ctx.in_atomic()) {
    // Inside an elided or transactional section: a raw RMW is illegal under
    // STM, so bump through the transactional data path.
    ctx.store(seq_word(), ctx.load(seq_word()) + 1);
  } else {
    ctx.fetch_add(seq_word(), 1);
  }
}

void condition_variable::notify_one(core::TxCtx& ctx) {
  // One sequence bump wakes every current spinner (Mesa semantics: they
  // re-check their predicates and at most one usually proceeds).
  if (ctx.load(waiters_word()) != 0) bump(ctx);
}

void condition_variable::notify_all(core::TxCtx& ctx) {
  if (ctx.load(waiters_word()) != 0) bump(ctx);
}

}  // namespace tsx::elide
