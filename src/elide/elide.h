#pragma once
// Drop-in transactional lock elision (ROADMAP item 1): a std::-shaped
// synchronization family whose lock paths speculate through the runtime's
// configured TxExecutor backend instead of acquiring the lock, in the style
// of MariaDB's transactional_lock_guard and the txlock library.
//
//   elide::mutex               — exclusive lock, TAS word layout
//   elide::shared_mutex        — reader/writer lock, SerialRwLock protocol
//   elide::sux_lock            — shared / update / exclusive (InnoDB-style)
//   elide::condition_variable  — Mesa-semantics cv over elide::mutex
//
// The elision protocol (DESIGN.md §9):
//   * critical_section(body) first attempts the body speculatively with the
//     lock word subscribed: the executor reads the word inside the
//     transaction and bails kLockBusy when it is held, so a real lock
//     holder excludes all elided sections, and the word joins the read set
//     so a later acquisition aborts in-flight elided sections.
//   * Attempts are metered by the lock's own core::RetryPolicy (budget +
//     backoff). On exhaustion the section falls back to the real lock —
//     acquired with the sync::spinlock protocols through executor lock-word
//     RMWs — and runs via TxCtx::elide_fallback so heap scoping and the
//     check recorder see the same unit shape as an elided section.
//   * Per-lock statistics (attempts, elided commits, fallbacks, wasted
//     cycles) feed the PMU through the runtime's TraceSink, and a txlock
//     style self-stop permanently disables elision on locks whose wasted
//     cycle share stays above a threshold for consecutive windows.
//   * Condition-variable wait is a non-elidable slow path by design: wait
//     must publish its waiter registration and block, which cannot commit
//     inside a speculative section. wait() therefore requires the mutex to
//     be *really* held (elided callers throw), like glibc's elision rules.
//
// All lock words live in the dedicated elide region (mem/layout.h), one or
// more full cache lines per lock, so the check recorder filters their
// transient spin values exactly like the backends' runtime locks.

#include <cstdint>
#include <functional>
#include <string>

#include "core/runtime.h"
#include "sim/types.h"
#include "util/fn_ref.h"

namespace tsx::elide {

using sim::Addr;
using sim::Cycles;
using sim::Word;

// Per-lock elision knobs. The retry policy defaults mirror the paper's
// Algorithm 1 (8 attempts, no backoff); `subscribe = false` exists only for
// the broken-elision canary the oracle must catch.
struct ElideConfig {
  core::RetryPolicy retry{};
  bool elision_enabled = true;  // false: every section takes the real lock
  bool subscribe = true;        // false: canary — do not subscribe the word
  // Self-stop heuristic (txlock "stops"): every `selfstop_window` completed
  // acquisitions, if wasted / (elided + wasted) speculative cycles exceeded
  // `selfstop_wasted_share` for `selfstop_strikes` consecutive windows,
  // elision is disabled permanently for this lock.
  uint32_t selfstop_window = 64;
  double selfstop_wasted_share = 0.75;
  uint32_t selfstop_strikes = 2;
};

// Host-side per-lock statistics (exact; mirrored to the PMU when tracing).
struct ElideStats {
  uint64_t acquisitions = 0;  // completed critical/locked sections
  uint64_t attempts = 0;      // speculative attempts, incl. busy bails
  uint64_t elided = 0;        // sections committed speculatively
  uint64_t busy_waits = 0;    // attempts that bailed on a held lock word
  uint64_t aborts = 0;        // attempts aborted for data/capacity/interrupt
  uint64_t fallbacks = 0;     // sections that exhausted the attempt budget
  uint64_t lock_acquires = 0; // explicit lock() / locked_section holds
  uint64_t self_stops = 0;    // 0 or 1: the self-stop trip
  Cycles cycles_elided = 0;   // inside committed speculative attempts
  Cycles cycles_wasted = 0;   // inside attempts that did not commit
  bool stopped = false;       // elision disabled by the self-stop heuristic
};

namespace detail {

// State and policy shared by every elidable lock: identity (id, name, sink
// registration), statistics, the self-stop window accounting, and the
// speculative-attempt loop. Subclasses provide the word layout and the real
// lock/unlock protocol.
class LockBase {
 public:
  const ElideStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  // True while elision is configured on and not self-stopped.
  bool elision_active() const {
    return cfg_.elision_enabled && !stats_.stopped;
  }
  // Test hook: clears a self-stop so elision resumes.
  void reset_elision() {
    stats_.stopped = false;
    window_acqs_ = window_elided_ = window_wasted_ = strikes_ = 0;
  }

 protected:
  LockBase(core::TxRuntime& rt, std::string name, const ElideConfig& cfg,
           uint32_t nlines);

  struct SpecResult {
    bool committed = false;  // an attempt committed; acquisition accounted
    uint64_t attempts = 0;   // speculative attempts consumed
    Cycles wasted = 0;       // cycles burned in non-committing attempts
  };

  // The speculative part of a section: attempts `body` under the retry
  // budget with `subscribed_word` watched (0 = unsubscribed canary mode).
  // `more_free`, when set, is evaluated *inside* the speculation (through
  // transactional loads) and bails the attempt as busy when false — used by
  // composite locks to also require e.g. readers == 0. On `committed` the
  // acquisition is fully accounted; otherwise the caller takes the real
  // lock, runs the fallback, and calls account() with the returned tallies.
  SpecResult speculate(core::TxCtx& ctx, util::FnRef<void()> body,
                       Addr subscribed_word,
                       const std::function<bool()>& more_free);

  // Reports a non-speculative acquisition (lock()/locked_section) so
  // acquisition counts stay comparable across modes.
  void note_locked_acquire(core::TxCtx& ctx);

  // Completes per-acquisition accounting: stats, PMU mirroring, and the
  // self-stop window.
  void account(core::TxCtx& ctx, obs::ElideAcqKind kind, uint64_t attempts,
               Cycles elided_c, Cycles wasted_c);

  Addr subscribed(Addr word) const { return cfg_.subscribe ? word : 0; }
  uint32_t site() const { return site_; }

  core::TxRuntime& rt_;
  ElideConfig cfg_;
  ElideStats stats_;

 private:
  uint32_t id_;
  uint32_t site_;  // trace-site label for elided attempts
  std::string name_;
  Addr base_;
  // Self-stop window accumulators.
  uint64_t window_acqs_ = 0;
  Cycles window_elided_ = 0;
  Cycles window_wasted_ = 0;
  uint32_t strikes_ = 0;

 protected:
  Addr base() const { return base_; }
};

}  // namespace detail

// Exclusive elidable mutex. Word layout: one word (0 = free, owner-id+1 =
// held), sync::TasSpinLock-compatible.
class mutex : public detail::LockBase {
 public:
  explicit mutex(core::TxRuntime& rt, std::string name = {},
                 const ElideConfig& cfg = {});

  // Non-speculative acquire/release (the "real lock" path). All transitions
  // go through executor lock-word RMWs so STM backends version-bump the
  // word's stripe (see TxExecutor::lock_cas).
  void lock(core::TxCtx& ctx);
  bool try_lock(core::TxCtx& ctx);
  void unlock(core::TxCtx& ctx);
  bool is_locked();                     // raw simulated read
  bool held_by(core::TxCtx& ctx);      // raw simulated read

  // Guard-shaped elided critical section: speculate, then fall back to
  // lock()+body+unlock() on budget exhaustion. Must be called outside any
  // atomic section (throws std::logic_error otherwise).
  void critical_section(core::TxCtx& ctx, util::FnRef<void()> body);

  // Forced non-speculative section: real acquisition around the body, with
  // the same heap/recorder bracketing as a fallback. Workloads use this to
  // guarantee genuine lock-holder windows.
  void locked_section(core::TxCtx& ctx, util::FnRef<void()> body);

  Addr word() const { return base(); }

 private:
  friend class condition_variable;
};

// Reader/writer elidable lock, sync::SerialRwLock protocol with the writer
// word and reader count on separate lines (raw reader traffic must not
// false-conflict with the subscribed writer word).
class shared_mutex : public detail::LockBase {
 public:
  explicit shared_mutex(core::TxRuntime& rt, std::string name = {},
                        const ElideConfig& cfg = {});

  void lock(core::TxCtx& ctx);          // exclusive
  bool try_lock(core::TxCtx& ctx);
  void unlock(core::TxCtx& ctx);
  void lock_shared(core::TxCtx& ctx);
  bool try_lock_shared(core::TxCtx& ctx);
  void unlock_shared(core::TxCtx& ctx);

  // Elided sections. The shared flavour subscribes only the writer word
  // (concurrent readers must not doom it); the exclusive flavour checks
  // writer == 0 && readers == 0 inside the speculation.
  void critical_section(core::TxCtx& ctx, util::FnRef<void()> body);
  void critical_section_shared(core::TxCtx& ctx,
                               util::FnRef<void()> body);

  Addr writer_word() const { return base(); }
  Addr reader_word() const { return base() + sim::kLineBytes; }

 private:
  void lock_shared_slow(core::TxCtx& ctx);
};

// Shared / update / exclusive lock in the InnoDB sux_lock shape: update
// coexists with shared but excludes update/exclusive; exclusive excludes
// everything and is reached by upgrading an update hold.
// Words (one line each): update owner, writer flag, reader count.
class sux_lock : public detail::LockBase {
 public:
  explicit sux_lock(core::TxRuntime& rt, std::string name = {},
                    const ElideConfig& cfg = {});

  void s_lock(core::TxCtx& ctx);
  bool try_s_lock(core::TxCtx& ctx);
  void s_unlock(core::TxCtx& ctx);

  void u_lock(core::TxCtx& ctx);
  bool try_u_lock(core::TxCtx& ctx);
  void u_unlock(core::TxCtx& ctx);

  void x_lock(core::TxCtx& ctx);    // u_lock + upgrade
  void x_unlock(core::TxCtx& ctx);
  void u_x_upgrade(core::TxCtx& ctx);
  void x_u_downgrade(core::TxCtx& ctx);

  // Elided sections: shared subscribes the writer flag; exclusive checks
  // update, writer and readers all free inside the speculation.
  void critical_section_shared(core::TxCtx& ctx,
                               util::FnRef<void()> body);
  void critical_section_x(core::TxCtx& ctx, util::FnRef<void()> body);

  Addr update_word() const { return base(); }
  Addr writer_word() const { return base() + sim::kLineBytes; }
  Addr reader_word() const { return base() + 2 * sim::kLineBytes; }
};

// Mesa-semantics condition variable over elide::mutex. wait() is the
// documented non-elidable slow path: it requires the mutex to be really
// held by the caller (elided sections cannot block) and publishes waiter
// registration with raw RMWs. Wakeups may be spurious; callers loop on
// their predicate as with std::condition_variable.
class condition_variable {
 public:
  explicit condition_variable(core::TxRuntime& rt, std::string name = {});

  // Atomically releases `m` and blocks until a notify arrives (Mesa:
  // possibly spuriously); reacquires `m` before returning. Throws
  // std::logic_error when called inside an atomic section or without
  // holding `m`.
  void wait(core::TxCtx& ctx, mutex& m);

  template <class Pred>
  void wait(core::TxCtx& ctx, mutex& m, Pred&& pred) {
    while (!pred()) wait(ctx, m);
  }

  // Callable with or without the mutex held, and from inside elided or
  // transactional sections (the sequence bump is then transactional).
  void notify_one(core::TxCtx& ctx);
  void notify_all(core::TxCtx& ctx);

  Addr seq_word() const { return base_; }
  Addr waiters_word() const { return base_ + sim::kWordBytes; }

 private:
  void bump(core::TxCtx& ctx);

  core::TxRuntime& rt_;
  std::string name_;
  Addr base_;
};

}  // namespace tsx::elide
