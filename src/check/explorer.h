#pragma once
// Deterministic schedule exploration. Sweeps the fiber scheduler's seed,
// jitter window, and yield quantum over a seed range, running the
// differential oracle at every point; on the first divergence it shrinks
// the failing configuration (fewer loops, fewer threads, schedule knobs
// off) to a minimal reproducer and renders the tm_fuzz command line that
// replays it.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "core/backend.h"

namespace tsx::check {

struct ExplorerConfig {
  std::vector<std::string> workloads;      // empty = all
  std::vector<core::Backend> backends;     // empty = default_backends()
  uint32_t seeds = 16;                     // sweep points
  uint64_t base_seed = 1;
  uint32_t threads = 2;
  uint32_t loops = 32;
  bool break_read_set_conflicts = false;
  bool break_elision = false;  // unsubscribed-lock-word canary (elide-*)
  bool check_history = true;
  // >= 0 pins the knob for every sweep point; -1 sweeps it.
  int64_t jitter_override = -1;
  int64_t quantum_override = -1;
  // Progress callback (may be empty): called before each sweep point.
  std::function<void(uint32_t seed_index)> on_progress;
};

struct Repro {
  std::string workload;
  core::Backend backend = core::Backend::kRtm;
  OracleConfig cfg;
  bool digest_mismatch = false;
  std::string ref_backend;  // digest baseline (digest mismatches only)
  std::string error;
};

struct ExploreResult {
  bool failed = false;
  uint32_t first_divergent_seed = 0;  // sweep index of the first failure
  Repro repro;                        // shrunk minimal reproducer
  uint32_t shrink_steps = 0;          // successful shrinking reductions
  uint64_t runs = 0;                  // total workload executions
  // Command line that replays the shrunk reproducer via tm_fuzz.
  std::string repro_command() const;
};

// Derives the oracle config for sweep point `s` (exposed so tm_fuzz can
// replay a specific point with --seed-index).
OracleConfig sweep_point(const ExplorerConfig& cfg, uint32_t s);

ExploreResult explore(const ExplorerConfig& cfg);

}  // namespace tsx::check
