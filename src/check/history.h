#pragma once
// History recording for the serializability checker (src/check/checker.h).
//
// A Recorder attaches to a TxRuntime and captures, for every atomic unit
// that commits, the ordered list of heap-word reads and writes the unit
// performed, in the global order in which units *serialized*. Two event
// streams feed it:
//
//   * sim::TraceHooks — physical machine accesses. These carry plain
//     (non-transactional) accesses, HTM speculative accesses (the simulator
//     is undo-log based, so speculative values are the values that commit),
//     and lock-protected accesses. Machine events that occur while the
//     context has an *STM* transaction active are suppressed: they are STM
//     metadata traffic (clock, lock table, logs) and commit-time
//     write-back, not workload semantics.
//   * core::TxObserver — atomic-block boundaries for every backend plus
//     the logical read/write stream of STM transactions.
//
// Seal points (the moment a unit's position in the global order is fixed):
//   HTM (RTM speculation, HLE elision): the machine's on_tx_commit hook,
//     which fires after effects are final and before any other context can
//     run.
//   STM (TinySTM, TL2): StmSystem's serialize hook, fired inside tx_commit
//     at the algorithm's serialization point (validation success, write
//     stripes locked, before write-back).
//   Lock / CAS / HLE-fallback / RTM-fallback / SEQ: on_unit_commit from
//     host code, which the runtime calls after the body but before the
//     protecting lock is released.
//
// Plain accesses outside any atomic block become their own single-access
// units, sealed immediately (a machine op is atomic w.r.t. fiber yields).
//
// Only addresses inside the application heap [mem::kHeapBase,
// kHeapBase + kHeapBytes) are recorded; runtime locks and STM metadata
// live in other regions and are filtered out.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/runtime.h"
#include "core/trace.h"
#include "sim/types.h"

namespace tsx::check {

using sim::Addr;
using sim::CtxId;
using sim::Word;

struct Access {
  Addr addr;
  Word value;     // value read, or value written
  bool is_write;
};

struct Unit {
  CtxId ctx = 0;
  uint32_t site = 0;
  // STM units are checked for snapshot consistency rather than strictly
  // replayed: an STM transaction's reads come from a consistent snapshot
  // that may be slightly older than its serialization point.
  bool stm = false;
  std::vector<Access> accesses;
};

// The committed history: units in seal (serialization) order, plus the
// initial value of every heap word touched (latched at first global touch).
struct History {
  std::vector<Unit> units;
  std::unordered_map<Addr, Word> initial;
};

class Recorder final : public core::TxObserver {
 public:
  // Installs machine trace hooks and the runtime observer. Attach before
  // TxRuntime::run and keep alive until after it returns.
  explicit Recorder(core::TxRuntime& rt);
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  const History& history() const { return h_; }

  // ---- core::TxObserver ----
  void on_unit_begin(CtxId ctx, uint32_t site) override;
  void on_unit_commit(CtxId ctx) override;
  void on_unit_abort(CtxId ctx) override;
  void on_stm_read(CtxId ctx, Addr addr, Word value) override;
  void on_stm_write(CtxId ctx, Addr addr, Word value,
                    Word pre_commit_value) override;

 private:
  void machine_access(CtxId ctx, Addr addr, Word old_value, Word value,
                      bool is_write, bool in_tx);
  void machine_tx_begin(CtxId ctx);
  void machine_tx_abort(CtxId ctx);
  void seal(CtxId ctx);
  void latch_initial(Addr addr, Word value);
  static bool in_heap(Addr a);

  struct OpenUnit {
    bool active = false;
    bool implicit = false;  // opened by a bare machine tx, not the runtime
    uint32_t site = 0;
    bool stm = false;
    std::vector<Access> buf;
  };

  core::TxRuntime& rt_;
  std::vector<OpenUnit> open_;  // per context
  History h_;
};

}  // namespace tsx::check
