#include "check/checker.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace tsx::check {

namespace {

std::string hex(Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

// Per-address committed-write history: (unit index, value written), in seal
// order. Snapshot time T means "after the first T units were applied", so
// the value at snapshot T is the last version with unit index < T.
using Versions = std::unordered_map<Addr, std::vector<std::pair<size_t, Word>>>;

// Inclusive snapshot-time intervals [lo, hi].
using Intervals = std::vector<std::pair<size_t, size_t>>;

// Intervals of snapshot times T in [0, max_t] at which `addr` reads as
// `want`, given its version history and initial value.
Intervals matching_snapshots(const Versions& vers,
                             const std::unordered_map<Addr, Word>& initial,
                             Addr addr, Word want, size_t max_t) {
  Intervals out;
  auto ii = initial.find(addr);
  Word cur = ii != initial.end() ? ii->second : 0;
  size_t lo = 0;
  auto vi = vers.find(addr);
  if (vi != vers.end()) {
    for (const auto& [idx, val] : vi->second) {
      // `cur` holds for T in [lo, idx]: the write at unit `idx` is first
      // visible to snapshots T >= idx + 1.
      if (cur == want && lo <= std::min(idx, max_t)) {
        out.emplace_back(lo, std::min(idx, max_t));
      }
      lo = idx + 1;
      cur = val;
      if (lo > max_t) return out;
    }
  }
  if (cur == want && lo <= max_t) out.emplace_back(lo, max_t);
  return out;
}

Intervals intersect(const Intervals& a, const Intervals& b) {
  Intervals out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    size_t lo = std::max(a[i].first, b[j].first);
    size_t hi = std::min(a[i].second, b[j].second);
    if (lo <= hi) out.emplace_back(lo, hi);
    if (a[i].second < b[j].second) ++i; else ++j;
  }
  return out;
}

}  // namespace

CheckResult check_history(const History& h,
                          const std::function<Word(Addr)>& final_value) {
  CheckResult r;
  std::unordered_map<Addr, Word> state = h.initial;
  Versions versions;

  auto value_of = [&](Addr a) -> Word {
    auto it = state.find(a);
    return it != state.end() ? it->second : 0;
  };
  auto fail = [&](size_t i, const std::string& why) {
    r.ok = false;
    r.unit_index = i;
    r.error = "unit " + std::to_string(i) + ": " + why;
    return r;
  };

  for (size_t i = 0; i < h.units.size(); ++i) {
    const Unit& u = h.units[i];
    // Final value per address this unit writes (for the version history).
    std::unordered_map<Addr, Word> unit_writes;

    if (!u.stm) {
      // Strict replay: the unit serialized exactly at its seal point, so
      // every read must see the current replay state.
      for (const Access& acc : u.accesses) {
        if (acc.is_write) {
          state[acc.addr] = acc.value;
          unit_writes[acc.addr] = acc.value;
        } else if (Word cur = value_of(acc.addr); cur != acc.value) {
          std::ostringstream os;
          os << "ctx " << u.ctx << " read " << hex(acc.addr) << " as "
             << acc.value << " but serial replay has " << cur
             << " (non-serializable: a conflicting write was missed)";
          return fail(i, os.str());
        }
      }
    } else {
      // Snapshot check: all first-reads must be explained by one snapshot
      // T <= i; later reads of the same address must repeat it and
      // read-own-writes must return the buffered value.
      std::unordered_map<Addr, Word> own;
      std::vector<std::pair<Addr, Word>> first_reads;
      std::unordered_map<Addr, Word> seen_read;
      for (const Access& acc : u.accesses) {
        if (acc.is_write) {
          own[acc.addr] = acc.value;
          unit_writes[acc.addr] = acc.value;
          continue;
        }
        if (auto oi = own.find(acc.addr); oi != own.end()) {
          if (oi->second != acc.value) {
            return fail(i, "ctx " + std::to_string(u.ctx) +
                               " read-own-write of " + hex(acc.addr) +
                               " returned " + std::to_string(acc.value) +
                               " instead of " + std::to_string(oi->second));
          }
          continue;
        }
        if (auto si = seen_read.find(acc.addr); si != seen_read.end()) {
          if (si->second != acc.value) {
            return fail(i, "ctx " + std::to_string(u.ctx) +
                               " non-repeatable read of " + hex(acc.addr));
          }
          continue;
        }
        seen_read.emplace(acc.addr, acc.value);
        first_reads.emplace_back(acc.addr, acc.value);
      }
      Intervals feasible{{0, i}};
      for (const auto& [a, v] : first_reads) {
        feasible =
            intersect(feasible, matching_snapshots(versions, h.initial, a, v, i));
        if (feasible.empty()) {
          std::ostringstream os;
          os << "ctx " << u.ctx << " has no consistent snapshot: read of "
             << hex(a) << " = " << v
             << " cannot coexist with its other reads at any serialization "
                "point <= "
             << i;
          return fail(i, os.str());
        }
      }
      for (const auto& [a, v] : unit_writes) state[a] = v;
    }

    for (const auto& [a, v] : unit_writes) versions[a].emplace_back(i, v);
  }

  // Final-state audit: replayed heap vs the machine's backing store.
  std::map<Addr, Word> touched;  // ordered for a stable first-diff report
  for (const auto& [a, v] : h.initial) touched[a] = v;
  for (const auto& [a, v] : state) touched[a] = v;
  for (const auto& [a, v] : touched) {
    Word actual = final_value(a);
    if (actual != v) {
      r.ok = false;
      r.unit_index = SIZE_MAX;
      std::ostringstream os;
      os << "final state diverges at " << hex(a) << ": machine has " << actual
         << ", serial replay has " << v;
      r.error = os.str();
      return r;
    }
  }
  return r;
}

CheckResult check_history(const History& h, core::TxRuntime& rt) {
  return check_history(h, [&](Addr a) { return rt.machine().peek(a); });
}

}  // namespace tsx::check
