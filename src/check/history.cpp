#include "check/history.h"

#include "mem/layout.h"

namespace tsx::check {

Recorder::Recorder(core::TxRuntime& rt) : rt_(rt) {
  open_.resize(rt_.config().threads);
  sim::TraceHooks hooks;
  hooks.on_access = [this](CtxId c, Addr a, Word old_v, Word v, bool w,
                           bool in_tx) {
    machine_access(c, a, old_v, v, w, in_tx);
  };
  hooks.on_tx_begin = [this](CtxId c) { machine_tx_begin(c); };
  hooks.on_tx_commit = [this](CtxId c) { seal(c); };
  hooks.on_tx_abort = [this](CtxId c) { machine_tx_abort(c); };
  rt_.machine().set_trace_hooks(std::move(hooks));
  rt_.set_observer(this);
}

Recorder::~Recorder() {
  rt_.set_observer(nullptr);
  rt_.machine().set_trace_hooks({});
}

bool Recorder::in_heap(Addr a) {
  return a >= mem::kHeapBase && a < mem::kHeapBase + mem::kHeapBytes;
}

void Recorder::latch_initial(Addr a, Word v) {
  // First global touch wins: any earlier committed write to this word would
  // itself have latched it, so the first latch always sees the pre-history
  // value.
  h_.initial.emplace(a, v);
}

void Recorder::machine_access(CtxId ctx, Addr a, Word old_v, Word v,
                              bool is_write, bool /*in_tx*/) {
  if (!in_heap(a)) return;
  // Machine traffic inside a live software transaction is metadata/
  // speculation (logging, validation, commit write-back); the logical
  // stream arrives through on_stm_read/on_stm_write instead.
  if (rt_.executor().stm_active(ctx)) return;
  latch_initial(a, is_write ? old_v : v);
  OpenUnit& u = open_[ctx];
  if (u.active) {
    u.buf.push_back({a, v, is_write});
    return;
  }
  // Plain access outside any atomic block: a singleton unit, sealed now
  // (single machine ops are atomic with respect to fiber scheduling).
  Unit s;
  s.ctx = ctx;
  s.accesses.push_back({a, v, is_write});
  h_.units.push_back(std::move(s));
}

void Recorder::machine_tx_begin(CtxId ctx) {
  OpenUnit& u = open_[ctx];
  if (u.active) return;  // runtime-opened unit (RTM attempt, HLE elision)
  u.active = true;
  u.implicit = true;
  u.site = 0;
  u.stm = false;
  u.buf.clear();
}

void Recorder::machine_tx_abort(CtxId ctx) {
  OpenUnit& u = open_[ctx];
  if (!u.active) return;
  u.buf.clear();  // speculative effects were rolled back
  if (u.implicit) u.active = false;  // a retry re-opens via tx_begin
}

void Recorder::seal(CtxId ctx) {
  OpenUnit& u = open_[ctx];
  if (!u.active) return;  // idempotent: later backstop calls are no-ops
  Unit done;
  done.ctx = ctx;
  done.site = u.site;
  done.stm = u.stm;
  done.accesses = std::move(u.buf);
  h_.units.push_back(std::move(done));
  u.active = false;
  u.buf.clear();
}

void Recorder::on_unit_begin(CtxId ctx, uint32_t site) {
  OpenUnit& u = open_[ctx];
  u.active = true;
  u.implicit = false;
  u.site = site;
  // Units that run as software transactions get snapshot-consistency
  // checking; everything else replays strictly. Queried per unit (not per
  // backend) because the Hybrid executor mixes hardware units with STM
  // fallback units: STM executors call tx_start before this hook fires, so
  // stm_active() is exactly "this unit is a software transaction".
  u.stm = rt_.executor().stm_active(ctx);
  u.buf.clear();  // a fresh begin discards any stale speculative buffer
}

void Recorder::on_unit_commit(CtxId ctx) { seal(ctx); }

void Recorder::on_unit_abort(CtxId ctx) {
  OpenUnit& u = open_[ctx];
  // Keep the unit open: the runtime re-begins on retry, and the HLE lock
  // path reuses the unit opened before the failed elision attempts.
  u.buf.clear();
}

void Recorder::on_stm_read(CtxId ctx, Addr a, Word v) {
  if (!in_heap(a)) return;
  latch_initial(a, v);
  OpenUnit& u = open_[ctx];
  if (u.active) u.buf.push_back({a, v, false});
}

void Recorder::on_stm_write(CtxId ctx, Addr a, Word v, Word pre) {
  if (!in_heap(a)) return;
  latch_initial(a, pre);
  OpenUnit& u = open_[ctx];
  if (u.active) u.buf.push_back({a, v, true});
}

}  // namespace tsx::check
