// tm_fuzz: deterministic schedule-exploration driver for the differential
// oracle (src/check). Sweeps scheduler seeds and perturbation knobs over
// seeded workloads under multiple concurrency-control backends; exits
// non-zero and prints a shrunk minimal reproducer on the first divergence.
//
// Examples:
//   tm_fuzz --seeds 64                          # full sweep, all defaults
//   tm_fuzz --workloads rbtree --backends rtm,stm --seeds 16
//   tm_fuzz --seeds 8 --break-read-conflicts    # must catch the bug
//   tm_fuzz --workloads eigen-inc --backends rtm --seeds 1 --seed 17
//           --threads 2 --loops 4 --jitter-window 0 --quantum 0   # replay

#include <cstdio>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "util/flags.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void usage() {
  std::printf(
      "tm_fuzz: schedule exploration + cross-backend differential oracle\n"
      "  --seeds N            sweep points (default 16)\n"
      "  --seed S             base workload seed (default 1)\n"
      "  --workloads a,b      subset of: eigen-inc,rbtree,hashtable,queue,\n"
      "                       elide-mutex,elide-shared\n"
      "  --backends a,b       subset of: rtm,hle,stm,tl2,spinlock,cas,seq,hybrid\n"
      "  --threads N          simulated threads (default 2)\n"
      "  --loops N            operations per thread (default 32)\n"
      "  --jitter-window C    pin sched_jitter_window (default: sweep)\n"
      "  --quantum N          pin sched_quantum_ops (default: sweep)\n"
      "  --break-read-conflicts  inject the read-set-blind conflict bug\n"
      "  --break-elision      inject the unsubscribed-lock-elision bug\n"
      "  --no-history         skip the serializability checker\n"
      "  --fast               smaller workloads (smoke-test mode)\n"
      "  --progress N         print progress every N sweep points\n");
}

}  // namespace

int main(int argc, char** argv) {
  tsx::util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    usage();
    return 0;
  }

  tsx::check::ExplorerConfig cfg;
  cfg.seeds = static_cast<uint32_t>(flags.get_int("seeds", 16));
  cfg.base_seed = static_cast<uint64_t>(flags.get_int("seed", 1));
  cfg.threads = static_cast<uint32_t>(flags.get_int("threads", 2));
  cfg.loops = static_cast<uint32_t>(flags.get_int("loops", 32));
  cfg.jitter_override = flags.get_int("jitter-window", -1);
  cfg.quantum_override = flags.get_int("quantum", -1);
  cfg.break_read_set_conflicts = flags.get_bool("break-read-conflicts", false);
  cfg.break_elision = flags.get_bool("break-elision", false);
  cfg.check_history = !flags.get_bool("no-history", false);
  if (flags.get_bool("fast", false)) cfg.loops = std::min(cfg.loops, 12u);

  for (const std::string& w :
       split_csv(flags.get_string("workloads", ""))) {
    bool known = false;
    for (const std::string& k : tsx::check::workload_names()) known |= (k == w);
    if (!known) {
      std::fprintf(stderr, "tm_fuzz: unknown workload '%s'\n", w.c_str());
      return 2;
    }
    cfg.workloads.push_back(w);
  }
  for (const std::string& b : split_csv(flags.get_string("backends", ""))) {
    tsx::core::Backend backend;
    if (!tsx::core::backend_from_name(b, &backend)) {
      std::fprintf(stderr, "tm_fuzz: unknown backend '%s'\n", b.c_str());
      return 2;
    }
    cfg.backends.push_back(backend);
  }

  int64_t every = flags.get_int("progress", 0);
  if (every > 0) {
    cfg.on_progress = [every](uint32_t s) {
      if (s % static_cast<uint32_t>(every) == 0) {
        std::printf("tm_fuzz: sweep point %u...\n", s);
        std::fflush(stdout);
      }
    };
  }

  auto unknown = flags.unconsumed();
  if (!unknown.empty()) {
    std::fprintf(stderr, "tm_fuzz: unknown flag '%s' (try --help)\n",
                 unknown.front().c_str());
    return 2;
  }
  if (cfg.seeds == 0) {
    std::fprintf(stderr, "tm_fuzz: --seeds must be >= 1\n");
    return 2;
  }
  if (cfg.threads < 1 || cfg.threads > tsx::sim::kMaxCtxs) {
    std::fprintf(stderr, "tm_fuzz: --threads must be 1..%u\n",
                 static_cast<unsigned>(tsx::sim::kMaxCtxs));
    return 2;
  }
  if (cfg.loops == 0) {
    std::fprintf(stderr, "tm_fuzz: --loops must be >= 1\n");
    return 2;
  }

  const auto& workloads =
      cfg.workloads.empty() ? tsx::check::workload_names() : cfg.workloads;
  const auto& backends = cfg.backends.empty() ? tsx::check::default_backends()
                                              : cfg.backends;
  std::printf("tm_fuzz: %u sweep points x %zu workloads x %zu backends "
              "(threads=%u loops=%u%s)\n",
              cfg.seeds, workloads.size(), backends.size(), cfg.threads,
              cfg.loops,
              cfg.break_read_set_conflicts || cfg.break_elision
                  ? ", FAULT INJECTION ON"
                  : "");

  tsx::check::ExploreResult res = tsx::check::explore(cfg);
  if (!res.failed) {
    std::printf("tm_fuzz: PASS — %llu runs, no divergence\n",
                static_cast<unsigned long long>(res.runs));
    return 0;
  }

  std::printf(
      "tm_fuzz: FAIL at sweep point %u\n"
      "  workload: %s\n"
      "  backend:  %s\n"
      "  error:    %s\n"
      "  shrunk reproducer (%u reductions, seed %llu, threads %u, loops %u, "
      "jitter %llu, quantum %u):\n"
      "    %s\n",
      res.first_divergent_seed, res.repro.workload.c_str(),
      tsx::core::backend_name(res.repro.backend), res.repro.error.c_str(),
      res.shrink_steps, static_cast<unsigned long long>(res.repro.cfg.seed),
      res.repro.cfg.threads, res.repro.cfg.loops,
      static_cast<unsigned long long>(res.repro.cfg.jitter_window),
      res.repro.cfg.quantum_ops, res.repro_command().c_str());
  return 1;
}
