#include "check/explorer.h"

#include <sstream>

#include "sim/rng.h"

namespace tsx::check {

namespace {

// A failure predicate the shrinker can re-evaluate on candidate configs.
// Digest mismatches need the reference backend re-run too; direct failures
// (invariant / history violations) only need the failing backend.
struct FailureProbe {
  std::string workload;
  core::Backend backend;
  bool digest_mismatch;
  core::Backend ref_backend;

  bool fails(const OracleConfig& cfg, std::string* error, uint64_t* runs) const {
    WorkloadResult wr = run_workload(workload, backend, cfg);
    ++*runs;
    if (!wr.ok) {
      *error = wr.error;
      return true;
    }
    if (digest_mismatch && wr.comparable) {
      WorkloadResult ref = run_workload(workload, ref_backend, cfg);
      ++*runs;
      if (ref.ok && ref.digest != wr.digest) {
        *error = "final-state digest diverges from " +
                 std::string(core::backend_name(ref_backend));
        return true;
      }
      if (!ref.ok) {
        *error = ref.error;
        return true;
      }
    }
    return false;
  }
};

}  // namespace

OracleConfig sweep_point(const ExplorerConfig& cfg, uint32_t s) {
  static constexpr sim::Cycles kJitters[4] = {0, 32, 128, 512};
  static constexpr uint32_t kQuanta[4] = {0, 1, 4, 16};
  OracleConfig oc;
  oc.threads = cfg.threads;
  oc.loops = cfg.loops;
  oc.seed = cfg.base_seed + s;
  // Derived from the workload seed *value* (not the sweep index) so that a
  // replay with --seeds 1 --seed <value> lands on the identical machine.
  uint64_t st = oc.seed * 0x9e3779b97f4a7c15ull + 1;
  oc.machine_seed = sim::splitmix64(st);
  oc.jitter_window = cfg.jitter_override >= 0
                         ? static_cast<sim::Cycles>(cfg.jitter_override)
                         : kJitters[s % 4];
  oc.quantum_ops = cfg.quantum_override >= 0
                       ? static_cast<uint32_t>(cfg.quantum_override)
                       : kQuanta[(s / 4) % 4];
  oc.break_read_set_conflicts = cfg.break_read_set_conflicts;
  oc.break_elision = cfg.break_elision;
  oc.check_history = cfg.check_history;
  return oc;
}

std::string ExploreResult::repro_command() const {
  std::ostringstream os;
  os << "tm_fuzz --workloads " << repro.workload << " --backends ";
  if (repro.digest_mismatch) os << repro.ref_backend << ",";
  os << core::backend_name(repro.backend) << " --seeds 1 --seed "
     << repro.cfg.seed << " --threads " << repro.cfg.threads << " --loops "
     << repro.cfg.loops << " --jitter-window " << repro.cfg.jitter_window
     << " --quantum " << repro.cfg.quantum_ops;
  if (repro.cfg.break_read_set_conflicts) os << " --break-read-conflicts";
  if (repro.cfg.break_elision) os << " --break-elision";
  if (!repro.cfg.check_history) os << " --no-history";
  return os.str();
}

ExploreResult explore(const ExplorerConfig& cfg) {
  ExploreResult res;
  const std::vector<std::string>& workloads =
      cfg.workloads.empty() ? workload_names() : cfg.workloads;
  const std::vector<core::Backend>& backends =
      cfg.backends.empty() ? default_backends() : cfg.backends;

  OracleResult first_fail;
  uint32_t fail_seed = 0;
  for (uint32_t s = 0; s < cfg.seeds; ++s) {
    if (cfg.on_progress) cfg.on_progress(s);
    OracleConfig oc = sweep_point(cfg, s);
    OracleResult orr = run_oracle(workloads, backends, oc);
    res.runs += static_cast<uint64_t>(workloads.size()) * backends.size();
    if (!orr.ok) {
      first_fail = orr;
      fail_seed = s;
      break;
    }
  }
  if (first_fail.ok) return res;

  res.failed = true;
  res.first_divergent_seed = fail_seed;

  // ---- shrink to a minimal reproducer ----
  core::Backend failing_backend = core::Backend::kRtm;
  core::backend_from_name(first_fail.backend, &failing_backend);
  FailureProbe probe{first_fail.workload, failing_backend,
                     first_fail.digest_mismatch, backends[0]};
  Repro best;
  best.workload = first_fail.workload;
  best.backend = failing_backend;
  best.cfg = sweep_point(cfg, fail_seed);
  best.digest_mismatch = first_fail.digest_mismatch;
  best.ref_backend = core::backend_name(backends[0]);
  best.error = first_fail.error;

  auto try_accept = [&](OracleConfig candidate) {
    std::string err;
    if (probe.fails(candidate, &err, &res.runs)) {
      best.cfg = candidate;
      best.error = err;
      ++res.shrink_steps;
      return true;
    }
    return false;
  };

  // Halve the iteration count while the failure persists.
  while (best.cfg.loops > 1) {
    OracleConfig c = best.cfg;
    c.loops = c.loops / 2;
    if (!try_accept(c)) break;
  }
  // Drop threads toward the two-thread minimum for a race.
  while (best.cfg.threads > 2) {
    OracleConfig c = best.cfg;
    c.threads = c.threads - 1;
    if (!try_accept(c)) break;
  }
  // Turn schedule-perturbation knobs off if the bug survives without them.
  if (best.cfg.jitter_window != 0) {
    OracleConfig c = best.cfg;
    c.jitter_window = 0;
    try_accept(c);
  }
  if (best.cfg.quantum_ops != 0) {
    OracleConfig c = best.cfg;
    c.quantum_ops = 0;
    try_accept(c);
  }
  // One more loop-halving pass: fewer threads sometimes unlocks it.
  while (best.cfg.loops > 1) {
    OracleConfig c = best.cfg;
    c.loops = c.loops / 2;
    if (!try_accept(c)) break;
  }

  res.repro = best;
  return res;
}

}  // namespace tsx::check
