#pragma once
// Serializability checker: replays a recorded History (units in seal order)
// against the latched initial heap values and verifies that
//
//   1. every non-STM unit's reads see exactly the replay state at its
//      serialization point (strict replay: plain, HTM, and lock-protected
//      units serialize at their seal point, so their reads must match);
//   2. every STM unit's first-reads are consistent with *some single*
//      snapshot no later than its seal point (time-based STMs read from a
//      consistent snapshot that can be slightly older than the
//      serialization point), its read-own-writes are satisfied, and its
//      repeated reads are stable;
//   3. the final replayed heap equals the machine's actual backing store
//      for every touched word.
//
// Any violation means the execution was not serializable in the order the
// backend claimed — i.e. a concurrency-control bug (see
// MachineConfig::tsx_ignore_read_set_conflicts for an injectable one).

#include <cstddef>
#include <functional>
#include <string>

#include "check/history.h"

namespace tsx::check {

struct CheckResult {
  bool ok = true;
  std::string error;           // human-readable diagnosis
  size_t unit_index = SIZE_MAX;  // first violating unit (SIZE_MAX if final-state)
};

// `final_value(addr)` must return the actual committed value of a heap word
// after the run (e.g. machine.peek). Units are replayed in recorded order.
CheckResult check_history(const History& h,
                          const std::function<Word(Addr)>& final_value);

// Convenience: checks a recorder's history against the runtime's machine.
CheckResult check_history(const History& h, core::TxRuntime& rt);

}  // namespace tsx::check
