#include "check/oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "check/checker.h"
#include "check/history.h"
#include "core/runtime.h"
#include "elide/elide.h"
#include "sim/rng.h"
#include "stamp/lib/hashtable.h"
#include "stamp/lib/queue.h"
#include "stamp/lib/rbtree.h"

namespace tsx::check {

namespace {

using core::Backend;
using core::RunConfig;
using core::TxCtx;
using core::TxRuntime;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void fnv(uint64_t& h, uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

RunConfig make_run_config(Backend backend, const OracleConfig& cfg) {
  RunConfig rc;
  rc.backend = backend;
  rc.threads = cfg.threads;
  rc.seed = cfg.seed;
  rc.machine.seed = cfg.machine_seed;
  rc.machine.sched_jitter_window = cfg.jitter_window;
  rc.machine.sched_quantum_ops = cfg.quantum_ops;
  rc.machine.tsx_ignore_read_set_conflicts = cfg.break_read_set_conflicts;
  return rc;
}

// Runs `worker` with optional history recording; on completion fills
// r.error from the checker if the history is not serializable. Returns the
// runtime for host-side final-state inspection.
struct RunOutcome {
  std::unique_ptr<TxRuntime> rt;
  bool history_ok = true;
  std::string history_error;
};

RunOutcome run_with_check(Backend backend, const OracleConfig& cfg,
                          const std::function<void(TxRuntime&)>& setup,
                          const std::function<void(TxCtx&)>& worker) {
  RunOutcome out;
  out.rt = std::make_unique<TxRuntime>(make_run_config(backend, cfg));
  setup(*out.rt);
  std::unique_ptr<Recorder> rec;
  if (cfg.check_history) rec = std::make_unique<Recorder>(*out.rt);
  out.rt->run(worker);
  if (rec) {
    CheckResult cr = check_history(rec->history(), *out.rt);
    out.history_ok = cr.ok;
    out.history_error = cr.error;
  }
  return out;
}

void fill_history_failure(WorkloadResult& r, const RunOutcome& out) {
  if (!out.history_ok) {
    r.ok = false;
    r.error = "history not serializable: " + out.history_error;
  }
}

// ---- eigen-inc: eigenbench-style shared-array increment kernel ----------
//
// Each transaction increments kTxWords distinct words of a kArrayWords-word
// shared array. The address schedule is precomputed per (thread,
// iteration), so the committed effect is schedule-independent and the final
// array equals the increment counts — checkable without any reference run.

constexpr uint32_t kArrayWords = 16;  // small: high conflict probability
constexpr uint32_t kTxWords = 4;

WorkloadResult workload_eigen_inc(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  std::vector<std::vector<uint32_t>> sched(cfg.threads);
  std::vector<uint64_t> expected(kArrayWords, 0);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    sim::Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + t);
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      // kTxWords distinct indices per transaction.
      uint32_t picked[kTxWords];
      for (uint32_t k = 0; k < kTxWords; ++k) {
        uint32_t idx;
        bool dup;
        do {
          idx = static_cast<uint32_t>(rng.below(kArrayWords));
          dup = false;
          for (uint32_t p = 0; p < k; ++p) dup |= (picked[p] == idx);
        } while (dup);
        picked[k] = idx;
        sched[t].push_back(idx);
        ++expected[idx];
      }
    }
  }

  sim::Addr arr = 0;
  auto setup = [&](TxRuntime& rt) {
    arr = rt.heap().host_alloc(kArrayWords * sim::kWordBytes, sim::kLineBytes);
    for (uint32_t i = 0; i < kArrayWords; ++i) {
      rt.machine().poke(arr + i * sim::kWordBytes, 0);
    }
  };
  auto worker = [&](TxCtx& ctx) {
    const std::vector<uint32_t>& s = sched[ctx.id()];
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      ctx.transaction([&] {
        for (uint32_t k = 0; k < kTxWords; ++k) {
          sim::Addr a = arr + s[j * kTxWords + k] * sim::kWordBytes;
          ctx.store(a, ctx.load(a) + 1);
        }
      });
    }
  };

  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  uint64_t digest = kFnvOffset;
  for (uint32_t i = 0; i < kArrayWords; ++i) {
    sim::Word v = out.rt->machine().peek(arr + i * sim::kWordBytes);
    fnv(digest, v);
    if (r.ok && v != expected[i]) {
      std::ostringstream os;
      os << "lost update: word " << i << " = " << v << ", expected "
         << expected[i] << " increments";
      r.ok = false;
      r.error = os.str();
    }
  }
  r.digest = digest;
  if (r.ok) fill_history_failure(r, out);
  return r;
}

// ---- container workloads ------------------------------------------------
//
// Per-thread disjoint key partitions (key % threads == thread) make the
// final map independent of interleaving: each thread's operations commute
// with every other thread's, so the result must equal a sequential replay
// into a std:: container — under *any* correct backend.

enum MapOp : uint32_t { kInsert = 0, kRemove = 1, kUpdate = 2 };

struct MapStep {
  MapOp op;
  sim::Word key;
  sim::Word value;
};

constexpr uint32_t kSlotsPerThread = 12;

std::vector<std::vector<MapStep>> map_schedule(const OracleConfig& cfg) {
  std::vector<std::vector<MapStep>> sched(cfg.threads);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    sim::Rng rng(cfg.seed * 0x2545f4914f6cdd1dull + 7 * t + 1);
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      MapStep s;
      s.op = static_cast<MapOp>(rng.below(3));
      s.key = 1 + t + cfg.threads * rng.below(kSlotsPerThread);
      s.value = 1 + rng.below(1u << 20);
      sched[t].push_back(s);
    }
  }
  return sched;
}

std::map<sim::Word, sim::Word> map_reference(
    const std::vector<std::vector<MapStep>>& sched) {
  std::map<sim::Word, sim::Word> ref;
  for (const auto& steps : sched) {
    for (const MapStep& s : steps) {
      switch (s.op) {
        case kInsert: ref.emplace(s.key, s.value); break;
        case kRemove: ref.erase(s.key); break;
        case kUpdate:
          if (auto it = ref.find(s.key); it != ref.end()) it->second = s.value;
          break;
      }
    }
  }
  return ref;
}

WorkloadResult finish_map_workload(
    WorkloadResult r, const RunOutcome& out,
    const std::vector<std::pair<sim::Word, sim::Word>>& items,
    const std::map<sim::Word, sim::Word>& ref) {
  // Digest sorted contents: chain/traversal order is schedule-dependent
  // (hash chains grow in insertion order), the key/value set is not.
  std::vector<std::pair<sim::Word, sim::Word>> got = items;
  std::sort(got.begin(), got.end());
  uint64_t digest = kFnvOffset;
  for (const auto& [k, v] : got) {
    fnv(digest, k);
    fnv(digest, v);
  }
  r.digest = digest;
  if (r.ok) {
    std::vector<std::pair<sim::Word, sim::Word>> want(ref.begin(), ref.end());
    if (got != want) {
      std::ostringstream os;
      os << "final contents diverge from sequential std:: reference ("
         << got.size() << " items vs " << want.size() << ")";
      r.ok = false;
      r.error = os.str();
    }
  }
  if (r.ok) fill_history_failure(r, out);
  return r;
}

WorkloadResult workload_rbtree(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  auto sched = map_schedule(cfg);
  std::unique_ptr<stamp::RbTree> tree;
  auto setup = [&](TxRuntime& rt) {
    tree = std::make_unique<stamp::RbTree>(stamp::RbTree::create_host(rt));
  };
  auto worker = [&](TxCtx& ctx) {
    for (const MapStep& s : sched[ctx.id()]) {
      ctx.transaction([&] {
        switch (s.op) {
          case kInsert: tree->insert(ctx, s.key, s.value); break;
          case kRemove: tree->remove(ctx, s.key); break;
          case kUpdate: tree->update(ctx, s.key, s.value); break;
        }
      });
    }
  };
  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  std::string why;
  if (!tree->host_validate(*out.rt, &why)) {
    r.ok = false;
    r.error = "red-black invariant broken: " + why;
  }
  return finish_map_workload(std::move(r), out, tree->host_items(*out.rt),
                             map_reference(sched));
}

WorkloadResult workload_hashtable(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  auto sched = map_schedule(cfg);
  std::unique_ptr<stamp::HashTable> table;
  auto setup = [&](TxRuntime& rt) {
    table = std::make_unique<stamp::HashTable>(
        stamp::HashTable::create_host(rt, /*buckets=*/16));
  };
  auto worker = [&](TxCtx& ctx) {
    for (const MapStep& s : sched[ctx.id()]) {
      ctx.transaction([&] {
        switch (s.op) {
          case kInsert: table->insert(ctx, s.key, s.value); break;
          case kRemove: table->remove(ctx, s.key); break;
          case kUpdate: {
            sim::Word v;
            if (table->find(ctx, s.key, &v)) {
              table->remove(ctx, s.key);
              table->insert(ctx, s.key, s.value);
            }
            break;
          }
        }
      });
    }
  };
  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  return finish_map_workload(std::move(r), out, table->host_items(*out.rt),
                             map_reference(sched));
}

// ---- queue: push/pop conservation ---------------------------------------
//
// Whether a given pop finds the queue empty depends on the interleaving, so
// the final contents are NOT digest-comparable. Instead the oracle checks
// conservation: count and value-sum of (prefill + successful pushes -
// successful pops) must equal the surviving ring contents.

WorkloadResult workload_queue(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  r.comparable = false;

  struct QStep {
    bool push;
    sim::Word value;
  };
  std::vector<std::vector<QStep>> sched(cfg.threads);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    sim::Rng rng(cfg.seed * 0xd1342543de82ef95ull + 13 * t + 5);
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      bool push = rng.below(100) < 55;
      sim::Word tag = (static_cast<sim::Word>(t + 1) << 32) | j;
      sched[t].push_back({push, tag});
    }
  }

  constexpr uint32_t kPrefill = 8;
  std::unique_ptr<stamp::Queue> q;
  uint64_t initial_count = 0, initial_sum = 0;
  auto setup = [&](TxRuntime& rt) {
    q = std::make_unique<stamp::Queue>(
        stamp::Queue::create(rt, cfg.threads * cfg.loops + kPrefill + 4));
    for (uint32_t i = 0; i < kPrefill; ++i) {
      sim::Word v = (1ull << 48) | i;
      q->host_push(rt, v);
      ++initial_count;
      initial_sum += v;
    }
  };

  std::vector<uint64_t> pushes(cfg.threads, 0), pops(cfg.threads, 0);
  std::vector<uint64_t> push_sum(cfg.threads, 0), pop_sum(cfg.threads, 0);
  auto worker = [&](TxCtx& ctx) {
    uint32_t t = ctx.id();
    for (const QStep& s : sched[t]) {
      // Results are latched inside the body but consumed only after the
      // transaction returns: the last (committed) attempt wins, so aborted
      // attempts cannot corrupt the host-side tallies.
      bool did = false;
      sim::Word popped = 0;
      if (s.push) {
        ctx.transaction([&] { did = q->push(ctx, s.value); });
        if (did) {
          ++pushes[t];
          push_sum[t] += s.value;
        }
      } else {
        ctx.transaction([&] { did = q->pop(ctx, &popped); });
        if (did) {
          ++pops[t];
          pop_sum[t] += popped;
        }
      }
    }
  };

  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  uint64_t pushed = initial_count, popped = 0, sum_in = initial_sum,
           sum_out = 0;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    pushed += pushes[t];
    popped += pops[t];
    sum_in += push_sum[t];
    sum_out += pop_sum[t];
  }

  // Survey the surviving ring contents host-side.
  auto& m = out.rt->machine();
  sim::Addr base = q->base();
  sim::Word pop_i = m.peek(base), push_i = m.peek(base + 8);
  sim::Word ring = m.peek(base + 16);
  sim::Addr elems = m.peek(base + 24);
  uint64_t remaining = (push_i + ring - pop_i) % ring;
  uint64_t remaining_sum = 0;
  for (uint64_t k = 0; k < remaining; ++k) {
    remaining_sum += m.peek(elems + ((pop_i + k) % ring) * sim::kWordBytes);
  }

  if (pushed - popped != remaining) {
    std::ostringstream os;
    os << "element count not conserved: " << pushed << " in, " << popped
       << " out, but " << remaining << " remain";
    r.ok = false;
    r.error = os.str();
  } else if (sum_in - sum_out != remaining_sum) {
    std::ostringstream os;
    os << "element values not conserved: sum in " << sum_in << ", out "
       << sum_out << ", remaining " << remaining_sum;
    r.ok = false;
    r.error = os.str();
  }
  if (r.ok) fill_history_failure(r, out);
  return r;
}

// ---- elide-mutex: increment kernel under an elide::mutex ----------------
//
// The eigen-inc kernel with every access running under one elide::mutex:
// most sections go through critical_section (speculation + fallback), and
// every fourth through locked_section, whose deliberately widened
// load-compute-store bodies give unsubscribed speculation (the
// break_elision canary) a window to commit inside a real holder's section
// and lose its increments. Expected counts and digest are exactly
// eigen-inc's.

WorkloadResult workload_elide_mutex(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  std::vector<std::vector<uint32_t>> sched(cfg.threads);
  std::vector<uint64_t> expected(kArrayWords, 0);
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    sim::Rng rng(cfg.seed * 0xbf58476d1ce4e5b9ull + 3 * t + 2);
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      for (uint32_t k = 0; k < kTxWords; ++k) {
        uint32_t idx = static_cast<uint32_t>(rng.below(kArrayWords));
        sched[t].push_back(idx);
        ++expected[idx];
      }
    }
  }

  sim::Addr arr = 0;
  std::unique_ptr<elide::mutex> mu;
  auto setup = [&](TxRuntime& rt) {
    arr = rt.heap().host_alloc(kArrayWords * sim::kWordBytes, sim::kLineBytes);
    for (uint32_t i = 0; i < kArrayWords; ++i) {
      rt.machine().poke(arr + i * sim::kWordBytes, 0);
    }
    elide::ElideConfig ec;
    ec.subscribe = !cfg.break_elision;
    mu = std::make_unique<elide::mutex>(rt, "oracle-mutex", ec);
  };
  auto worker = [&](TxCtx& ctx) {
    const std::vector<uint32_t>& s = sched[ctx.id()];
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      auto body = [&] {
        for (uint32_t k = 0; k < kTxWords; ++k) {
          sim::Addr a = arr + s[j * kTxWords + k] * sim::kWordBytes;
          sim::Word v = ctx.load(a);
          if (j % 4 == 3) ctx.compute(60);  // widen the holder's window
          ctx.store(a, v + 1);
        }
      };
      if (j % 4 == 3) {
        mu->locked_section(ctx, body);
      } else {
        mu->critical_section(ctx, body);
      }
    }
  };

  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  uint64_t digest = kFnvOffset;
  for (uint32_t i = 0; i < kArrayWords; ++i) {
    sim::Word v = out.rt->machine().peek(arr + i * sim::kWordBytes);
    fnv(digest, v);
    if (r.ok && v != expected[i]) {
      std::ostringstream os;
      os << "lost update under elided lock: word " << i << " = " << v
         << ", expected " << expected[i] << " increments";
      r.ok = false;
      r.error = os.str();
    }
  }
  r.digest = digest;
  if (r.ok) fill_history_failure(r, out);
  return r;
}

// ---- elide-shared: invariant x == y under an elide::shared_mutex --------
//
// Writers keep two words in lockstep through exclusive sections; readers
// snapshot both through shared sections and must never observe x != y. The
// final state is write-count-determined, hence digest-comparable.

WorkloadResult workload_elide_shared(Backend backend, const OracleConfig& cfg) {
  WorkloadResult r;
  std::vector<std::vector<bool>> writes(cfg.threads);
  uint64_t total_writes = 0;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    sim::Rng rng(cfg.seed * 0x94d049bb133111ebull + 11 * t + 3);
    for (uint32_t j = 0; j < cfg.loops; ++j) {
      bool w = rng.below(100) < 40;
      writes[t].push_back(w);
      if (w) ++total_writes;
    }
  }

  sim::Addr xw = 0, yw = 0;
  std::unique_ptr<elide::shared_mutex> mu;
  auto setup = [&](TxRuntime& rt) {
    // Separate lines so reader and writer sections conflict only through
    // the lock protocol, not false sharing.
    xw = rt.heap().host_alloc(sim::kLineBytes, sim::kLineBytes);
    yw = rt.heap().host_alloc(sim::kLineBytes, sim::kLineBytes);
    rt.machine().poke(xw, 0);
    rt.machine().poke(yw, 0);
    elide::ElideConfig ec;
    ec.subscribe = !cfg.break_elision;
    mu = std::make_unique<elide::shared_mutex>(rt, "oracle-rw", ec);
  };

  bool torn = false;
  sim::Word torn_x = 0, torn_y = 0;
  auto worker = [&](TxCtx& ctx) {
    for (bool w : writes[ctx.id()]) {
      if (w) {
        mu->critical_section(ctx, [&] {
          sim::Word x = ctx.load(xw);
          ctx.store(xw, x + 1);
          ctx.compute(30);
          ctx.store(yw, ctx.load(yw) + 1);
        });
      } else {
        // Latched inside, consumed after: the committed attempt wins.
        sim::Word vx = 0, vy = 0;
        mu->critical_section_shared(ctx, [&] {
          vx = ctx.load(xw);
          vy = ctx.load(yw);
        });
        if (vx != vy && !torn) {
          torn = true;
          torn_x = vx;
          torn_y = vy;
        }
      }
    }
  };

  RunOutcome out = run_with_check(backend, cfg, setup, worker);
  sim::Word fx = out.rt->machine().peek(xw);
  sim::Word fy = out.rt->machine().peek(yw);
  uint64_t digest = kFnvOffset;
  fnv(digest, fx);
  fnv(digest, fy);
  r.digest = digest;
  if (torn) {
    std::ostringstream os;
    os << "reader observed torn invariant: x = " << torn_x << ", y = "
       << torn_y;
    r.ok = false;
    r.error = os.str();
  } else if (fx != total_writes || fy != total_writes) {
    std::ostringstream os;
    os << "lost writer update: x = " << fx << ", y = " << fy << ", expected "
       << total_writes;
    r.ok = false;
    r.error = os.str();
  }
  if (r.ok) fill_history_failure(r, out);
  return r;
}

}  // namespace

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "eigen-inc", "rbtree", "hashtable", "queue", "elide-mutex",
      "elide-shared"};
  return names;
}

const std::vector<core::Backend>& default_backends() {
  static const std::vector<core::Backend> backends = {
      Backend::kRtm, Backend::kHle, Backend::kTinyStm, Backend::kLock,
      Backend::kCas, Backend::kHybrid};
  return backends;
}

WorkloadResult run_workload(const std::string& name, core::Backend backend,
                            const OracleConfig& cfg) {
  if (name == "eigen-inc") return workload_eigen_inc(backend, cfg);
  if (name == "rbtree") return workload_rbtree(backend, cfg);
  if (name == "hashtable") return workload_hashtable(backend, cfg);
  if (name == "queue") return workload_queue(backend, cfg);
  if (name == "elide-mutex") return workload_elide_mutex(backend, cfg);
  if (name == "elide-shared") return workload_elide_shared(backend, cfg);
  WorkloadResult r;
  r.ok = false;
  r.error = "unknown workload '" + name + "'";
  return r;
}

OracleResult run_oracle(const std::vector<std::string>& workloads,
                        const std::vector<core::Backend>& backends,
                        const OracleConfig& cfg) {
  OracleResult res;
  for (const std::string& w : workloads) {
    bool have_ref = false;
    uint64_t ref_digest = 0;
    std::string ref_backend;
    for (core::Backend b : backends) {
      WorkloadResult wr = run_workload(w, b, cfg);
      if (!wr.ok) {
        res.ok = false;
        res.workload = w;
        res.backend = core::backend_name(b);
        res.error = wr.error;
        return res;
      }
      if (!wr.comparable) continue;
      if (!have_ref) {
        have_ref = true;
        ref_digest = wr.digest;
        ref_backend = core::backend_name(b);
      } else if (wr.digest != ref_digest) {
        res.ok = false;
        res.workload = w;
        res.backend = core::backend_name(b);
        res.digest_mismatch = true;
        res.error = "final-state digest diverges from " + ref_backend;
        return res;
      }
    }
  }
  return res;
}

}  // namespace tsx::check
