#pragma once
// Cross-backend differential oracle. Runs seeded workloads (an
// eigenbench-style increment kernel and the STAMP lib containers) under any
// concurrency-control backend and verifies
//
//   * per-run invariants (container shape, element conservation, expected
//     final counts derived from a sequential std:: reference);
//   * history serializability via src/check/checker (opt-out);
//   * a digest of the canonical final state, which must be identical across
//     backends for the comparable workloads.
//
// All workloads precompute their per-thread operation schedules from the
// workload seed *outside* transaction bodies, so a retried body re-executes
// the identical operation — a prerequisite for cross-backend determinism
// (the real eigenbench kernel draws addresses inside the body and is
// therefore not digest-comparable across abort patterns).

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.h"
#include "sim/types.h"

namespace tsx::check {

struct OracleConfig {
  uint32_t threads = 2;
  uint32_t loops = 32;         // operations per thread
  uint64_t seed = 1;           // workload schedule seed
  uint64_t machine_seed = 42;  // scheduler / interrupt seed
  sim::Cycles jitter_window = 0;  // MachineConfig::sched_jitter_window
  uint32_t quantum_ops = 0;       // MachineConfig::sched_quantum_ops
  bool break_read_set_conflicts = false;  // fault injection (HTM backends)
  // Fault injection for the elide workloads: construct their locks with
  // ElideConfig::subscribe = false, so speculative sections stop watching
  // the lock word and can commit inside a real holder's critical section
  // (the classic unsubscribed-elision lost update).
  bool break_elision = false;
  bool check_history = true;
};

struct WorkloadResult {
  bool ok = true;
  std::string error;
  bool comparable = true;  // digest is schedule-independent for this workload
  uint64_t digest = 0;     // FNV-1a over the canonical final state
};

// Workload names accepted by run_workload: "eigen-inc", "rbtree",
// "hashtable", "queue", "elide-mutex", "elide-shared".
const std::vector<std::string>& workload_names();

// The backends the oracle exercises by default (kHybrid included so the
// STM-fallback seal point stays covered).
const std::vector<core::Backend>& default_backends();

WorkloadResult run_workload(const std::string& name, core::Backend backend,
                            const OracleConfig& cfg);

struct OracleResult {
  bool ok = true;
  std::string workload;  // failing workload (when !ok)
  std::string backend;   // failing backend (when !ok)
  bool digest_mismatch = false;
  std::string error;
};

// Runs every workload under every backend; fails on the first invariant or
// history violation, or on any cross-backend digest divergence.
OracleResult run_oracle(const std::vector<std::string>& workloads,
                        const std::vector<core::Backend>& backends,
                        const OracleConfig& cfg);

}  // namespace tsx::check
