#pragma once
// Cooperative fibers over POSIX ucontext. Each simulated hardware thread runs
// its workload on a fiber; the Machine scheduler resumes the fiber whose
// local clock is globally minimal, so memory events are totally ordered and
// the whole simulation is deterministic and single-OS-threaded (no data
// races by construction; cf. Core Guidelines CP.2).
//
// Exceptions may be thrown and caught *within* a fiber; they must never
// propagate out of the fiber entry function (the entry traps them) and
// unwinding never crosses a context switch.

#include <cstddef>
#include <functional>
#include <memory>

namespace tsx::sim {

class Fiber {
 public:
  // `fn` runs on the fiber's own stack at first resume().
  Fiber(size_t stack_bytes, std::function<void()> fn);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the scheduler into the fiber. Returns when the fiber
  // yields or finishes. Must not be called on a finished fiber.
  void resume();

  // Switches from inside the fiber back to the scheduler.
  void yield();

  bool finished() const;

  // Set if fn terminated with an exception (a bug in workload code); the
  // scheduler rethrows it on the main context so tests see the failure.
  std::exception_ptr error() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tsx::sim
