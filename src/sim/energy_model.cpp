#include "sim/energy_model.h"

namespace tsx::sim {

EnergyBreakdown EnergyModel::compute(uint64_t ops, uint64_t l1, uint64_t l2,
                                     uint64_t l3, uint64_t mem,
                                     uint64_t coherence, uint64_t writebacks,
                                     double core_busy_cycles,
                                     Cycles wall_cycles) const {
  EnergyBreakdown e;
  e.dynamic_j = 1e-9 * (static_cast<double>(ops) * p_.nj_per_op +
                        static_cast<double>(l1) * p_.nj_per_l1 +
                        static_cast<double>(l2) * p_.nj_per_l2 +
                        static_cast<double>(l3) * p_.nj_per_l3 +
                        static_cast<double>(mem) * p_.nj_per_mem +
                        static_cast<double>(coherence) * p_.nj_per_coherence +
                        static_cast<double>(writebacks) * p_.nj_per_writeback);
  e.core_active_j = p_.w_core_active * (core_busy_cycles / freq_hz_);
  e.package_idle_j =
      p_.w_package_idle * (static_cast<double>(wall_cycles) / freq_hz_);
  return e;
}

}  // namespace tsx::sim
