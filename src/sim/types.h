#pragma once
// Fundamental types shared across the tsxsim machine model.

#include <cstdint>

namespace tsx::sim {

using Addr = uint64_t;    // simulated byte address (data ops are word-aligned)
using Word = uint64_t;    // simulated memory is word (8 B) granular
using Cycles = uint64_t;  // simulated CPU cycles
using CtxId = uint32_t;   // hardware thread id, 0..kMaxCtxs-1

inline constexpr uint32_t kLineBytes = 64;
inline constexpr uint32_t kPageBytes = 4096;
inline constexpr uint32_t kWordBytes = 8;
inline constexpr uint32_t kWordsPerPage = kPageBytes / kWordBytes;
inline constexpr uint32_t kMaxCtxs = 8;

inline constexpr uint64_t line_of(Addr a) { return a / kLineBytes; }
inline constexpr uint64_t page_of(Addr a) { return a / kPageBytes; }
inline constexpr Addr line_base(Addr a) { return a & ~Addr(kLineBytes - 1); }

// Internal (precise) abort causes. The *architectural* view reported to
// software collapses some of these, exactly as the paper observes on real
// Haswell: read-capacity aborts are indistinguishable from data conflicts
// (both raise the CONFLICT status bit and count toward MISC1).
enum class AbortReason : uint8_t {
  kNone = 0,
  kConflict,         // another hw thread touched a tx line (requester wins)
  kReadCapacity,     // tx-read line evicted from L3
  kWriteCapacity,    // tx-written line evicted from L1
  kExplicit,         // _xabort(code)
  kPageFault,        // first-touch minor fault inside a transaction
  kInterrupt,        // asynchronous event (timer interrupt)
  kUnsupportedInsn,  // TSX-unfriendly instruction executed in a transaction
  kCount,
};

const char* abort_reason_name(AbortReason r);

// TSX RTM status word bits, mirroring Intel's _XABORT_* layout.
namespace xstatus {
inline constexpr uint32_t kStarted = ~0u;  // sentinel: _XBEGIN_STARTED
inline constexpr uint32_t kExplicit = 1u << 0;
inline constexpr uint32_t kRetry = 1u << 1;
inline constexpr uint32_t kConflict = 1u << 2;
inline constexpr uint32_t kCapacity = 1u << 3;
inline constexpr uint32_t kDebug = 1u << 4;
inline constexpr uint32_t kNested = 1u << 5;
inline constexpr uint32_t code_shift = 24;

inline constexpr uint32_t pack_code(uint8_t code) {
  return static_cast<uint32_t>(code) << code_shift;
}
inline constexpr uint8_t unpack_code(uint32_t status) {
  return static_cast<uint8_t>(status >> code_shift);
}
}  // namespace xstatus

// Builds the architectural status word for an internal abort reason.
uint32_t status_for_abort(AbortReason r, uint8_t explicit_code);

// Intel-style performance-counter buckets (RTM_RETIRED:ABORTED_MISCn).
// Documented mapping (the authoritative table; tests/test_types_misc.cpp
// asserts it exhaustively):
//   MISC1  data conflicts                        <- kConflict
//   MISC2  capacity (read- or write-set overflow)<- kReadCapacity,
//                                                   kWriteCapacity
//   MISC3  explicit / page fault / unsupported   <- kExplicit, kPageFault,
//          instruction                              kUnsupportedInsn
//   MISC4  incompatible memory type — cannot occur in this simulator
//          (sentinel bucket, intentionally unreachable)
//   MISC5  everything else (asynchronous events) <- kInterrupt
// Note the counters are *finer* than the architectural status word: a read-
// capacity abort raises the CONFLICT status bit (status_for_abort), yet the
// counters bucket it under MISC2. The paper's Fig. 12 conflict/read-capacity
// merge is a reporting-layer choice (htm::AbortClass), not a counter one.
enum class MiscBucket : uint8_t { kMisc1 = 0, kMisc2, kMisc3, kMisc4, kMisc5, kCount };
MiscBucket misc_bucket_for(AbortReason r);

}  // namespace tsx::sim
