#pragma once
// Machine configuration: a Haswell-like 4-core / 8-thread part (Core i7-4770
// class). Defaults are calibrated so the paper's microbenchmark anchors hold:
// write-set capacity cliff at 512 lines (L1d), read-set cliff at 128K lines
// (L3), duration cliff starting ~30K cycles and saturating by ~10M cycles,
// and a no-contention RTM/spinlock queue-pop ratio of roughly 1.45 (Table I).

#include <cstddef>
#include <cstdint>

#include "sim/energy_model.h"
#include "sim/types.h"

namespace tsx::sim {

struct CacheGeometry {
  uint32_t size_bytes = 0;
  uint32_t ways = 1;

  uint32_t lines() const { return size_bytes / kLineBytes; }
  uint32_t sets() const { return lines() / ways; }
};

struct MachineConfig {
  // Topology. Contexts are assigned to cores round-robin (ctx i -> core
  // i % cores), so runs with <= `cores` threads use distinct physical cores
  // (the paper pins threads the same way) and 8-thread runs pair
  // hyper-threads that share L1/L2.
  uint32_t cores = 4;

  CacheGeometry l1{32 * 1024, 8};
  CacheGeometry l2{256 * 1024, 8};
  CacheGeometry l3{8 * 1024 * 1024, 16};

  // Access latencies (cycles). Totals seen by a load: issue + hit level.
  Cycles lat_issue = 1;
  Cycles lat_l1 = 3;
  Cycles lat_l2 = 11;
  Cycles lat_l3 = 33;
  Cycles lat_mem = 210;
  Cycles lat_c2c = 60;      // dirty line forwarded from another core
  Cycles lat_upgrade = 22;  // invalidating sharers to gain write ownership

  // TSX costs (xbegin+xend round-trip ~56 cycles, calibrated against the
  // paper's Table I no-contention RTM/lock ratio of ~1.45).
  Cycles tx_begin_cycles = 30;
  Cycles tx_commit_cycles = 26;
  Cycles tx_abort_cycles = 110;  // pipeline flush + register restore

  // OS-event model.
  Cycles page_fault_cycles = 1800;        // minor fault service, non-tx path
  double interrupt_mean_cycles = 2.2e6;   // Poisson arrivals per hw thread
  Cycles interrupt_handler_cycles = 4200;
  bool interrupts_enabled = true;

  // Conflict policy: a conflicting access always aborts the other (victim)
  // transaction, requester-wins style (Intel's documented TSX behaviour and
  // the default). With mutual_kill_conflicts, a transactional requester
  // that kills an *older* transaction dies too — empirically, TSX conflicts
  // on bouncing lines often abort both parties. CAUTION: both-abort without
  // a lock fallback can livelock a simple retry loop (demonstrably — see
  // bench/ablation_conflict_policy); only enable it for executors with a
  // serial fallback.
  bool mutual_kill_conflicts = false;

  // FAULT INJECTION (testing only): drop the read-set half of conflict
  // detection — a transactional read-set line written by another thread no
  // longer aborts the reader. This deliberately breaks serializability
  // (lost updates / stale reads commit) and exists so src/check's oracle
  // can demonstrate that it catches a broken conflict policy.
  bool tsx_ignore_read_set_conflicts = false;

  // Schedule-exploration knobs (src/check's tm_fuzz). Defaults keep the
  // exact min-clock scheduler, so they are behaviour-neutral unless set.
  //
  // sched_jitter_window: contexts whose clock is within this many cycles of
  // the minimum are all eligible to run; the scheduler picks among them with
  // a deterministic RNG seeded from `seed`. Models timing noise (frequency
  // jitter, store-buffer drain, ...) without breaking determinism per seed.
  Cycles sched_jitter_window = 0;
  // sched_quantum_ops: once resumed, a context runs this many ops before it
  // may yield again (0 = yield whenever it ceases to be the clock minimum).
  // Coarsens the interleaving, exposing schedules where one thread races far
  // ahead in effect order.
  uint32_t sched_quantum_ops = 0;

  // TESTING ONLY: route every op through the general (slow) path, bypassing
  // the inline fast paths. The two must be observably identical — the
  // equivalence tests in tests/test_machine.cpp flip this and compare full
  // stats/clock outcomes; it is never set in real runs.
  bool disable_fast_paths = false;

  // Two hyper-threads sharing a core slow each other's core-bound work.
  double smt_slowdown = 1.45;

  double freq_ghz = 3.4;

  uint64_t seed = 0x7a117a11;

  EnergyParams energy{};

  // Fiber stacks for workload code (rb-tree rebalancing etc. is iterative,
  // but app logic may use moderate recursion).
  size_t fiber_stack_bytes = 512 * 1024;
};

}  // namespace tsx::sim
