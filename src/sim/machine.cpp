#include "sim/machine.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsx::sim {

Cycles Machine::interrupt_gate_for(double next_interrupt) {
  // 2^63 comfortably exceeds any simulated clock; casting infinity (the
  // interrupts-disabled sentinel) would be UB.
  if (next_interrupt >= 9.2e18) return ~Cycles{0};
  return static_cast<Cycles>(std::ceil(next_interrupt));
}

uint32_t Machine::checked_threads(uint32_t n) {
  if (n == 0 || n > kMaxCtxs) {
    throw std::invalid_argument("thread count must be 1..8");
  }
  return n;
}

Machine::Machine(const MachineConfig& cfg, uint32_t num_threads)
    : cfg_(cfg), num_threads_(checked_threads(num_threads)),
      mem_(cfg_, num_threads_, &stats_.mem,
           [this](CtxId victim, AbortReason r, uint64_t line, CtxId attacker) {
             abort_tx(victim, r, line, 0, attacker);
           }),
      setup_rng_(cfg.seed ^ 0xabcdef), sched_rng_(cfg.seed ^ 0x5c4ed01eull) {
  smt_possible_ = num_threads_ > cfg_.cores;
  lat_l1_hit_ = cfg_.lat_issue + cfg_.lat_l1;
  // Sized exactly once: SimContext* stays stable for the machine's lifetime.
  ctxs_.resize(num_threads);
  for (CtxId i = 0; i < num_threads; ++i) {
    SimContext& c = ctxs_[i];
    c.id = i;
    c.core = mem_.core_of(i);
    c.rng.reseed(cfg_.seed * 0x9e3779b97f4a7c15ull + i + 1);
    // +infinity when disabled: the per-op due check is then never true.
    c.next_interrupt = cfg_.interrupts_enabled
                           ? c.rng.exponential(cfg_.interrupt_mean_cycles)
                           : std::numeric_limits<double>::infinity();
    c.interrupt_gate = interrupt_gate_for(c.next_interrupt);
    c.l1 = &mem_.l1(c.core);
  }
  // Same-core sibling lists for the SMT-slowdown check.
  for (SimContext& c : ctxs_) {
    for (SimContext& other : ctxs_) {
      if (other.id != c.id && other.core == c.core) {
        c.siblings[c.n_siblings++] = &other;
      }
    }
  }
  refresh_fast_flags();
}

Machine::~Machine() = default;

void Machine::set_obs_hooks(ObsHooks hooks, Cycles sample_window_cycles) {
  obs_ = std::move(hooks);
  sample_window_ = obs_.on_sample_window ? sample_window_cycles : 0;
  next_sample_ = sample_window_;
  max_clock_seen_ = 0;
  sample_gate_ = sample_window_ ? 0 : ~Cycles{0};
  if (obs_.on_tx_evict) {
    mem_.set_evict_hook([this](CtxId by, int level, uint64_t line) {
      obs_.on_tx_evict(by, ctxs_[by].clock, level, line);
    });
  } else {
    mem_.set_evict_hook(nullptr);
  }
}

void Machine::set_thread(CtxId ctx, ThreadFn fn) {
  if (ctx >= num_threads_) throw std::invalid_argument("bad ctx id");
  if (ctxs_[ctx].fiber) throw std::logic_error("thread already set");
  ctxs_[ctx].fiber =
      std::make_unique<Fiber>(cfg_.fiber_stack_bytes, std::move(fn));
}

void Machine::throw_off_fiber() {
  throw std::logic_error("simulation op outside a fiber");
}

CtxId Machine::current_ctx() const { return cur().id; }

Cycles Machine::now() const { return cur().clock; }

Cycles Machine::wall() const {
  Cycles w = 0;
  for (const SimContext& c : ctxs_) w = std::max(w, c.clock);
  return w;
}

Cycles Machine::ctx_finish(CtxId ctx) const { return ctxs_[ctx].clock; }

double Machine::core_busy_cycles() const {
  // A core is modeled busy for as long as its busiest context.
  std::vector<double> core_busy(cfg_.cores, 0.0);
  for (const SimContext& c : ctxs_) {
    core_busy[c.core] = std::max(core_busy[c.core], static_cast<double>(c.busy));
  }
  double total = 0;
  for (double b : core_busy) total += b;
  return total;
}

bool Machine::sibling_active(const SimContext& c) const {
  for (uint32_t i = 0; i < c.n_siblings; ++i) {
    if (!c.siblings[i]->finished) return true;
  }
  return false;
}

// The high-water mark makes boundary order monotonic across contexts.
void Machine::cross_sample_windows(SimContext& c) {
  max_clock_seen_ = c.clock;
  sample_gate_ = c.clock;
  while (max_clock_seen_ >= next_sample_) {
    obs_.on_sample_window(next_sample_, stats_);
    next_sample_ += sample_window_;
  }
}

void Machine::maybe_yield_slow() {
  SimContext& c = cur();
  // sched_quantum_ops: hold the fiber for a full quantum of ops before the
  // usual clock comparison may deschedule it.
  if (cfg_.sched_quantum_ops > 0) {
    if (++c.ops_since_resume < cfg_.sched_quantum_ops) return;
  }
  for (const SimContext& other : ctxs_) {
    if (other.id == c.id || other.finished || other.waiting) {
      continue;
    }
    if (other.clock < c.clock + cfg_.sched_jitter_window ||
        (other.clock == c.clock && other.id < c.id)) {
      c.fiber->yield();
      return;
    }
  }
}

Machine::SimContext* Machine::pick_next() {
  SimContext* best = nullptr;
  bool any_waiting = false;
  for (SimContext& c : ctxs_) {
    if (c.finished) continue;
    if (c.waiting) {
      any_waiting = true;
      continue;
    }
    if (!best || c.clock < best->clock ||
        (c.clock == best->clock && c.id < best->id)) {
      best = &c;
    }
  }
  if (!best && any_waiting) {
    throw std::logic_error("barrier deadlock: all runnable contexts waiting");
  }
  // Scheduler jitter: any runnable context within the window of the clock
  // minimum may run next; the choice is a deterministic function of the
  // machine seed and the pick sequence. Yield points stay unchanged, only
  // the order in which eligible fibers interleave varies — exactly the
  // degree of freedom real timing noise has.
  if (best && cfg_.sched_jitter_window > 0) {
    SimContext* eligible[kMaxCtxs];
    uint32_t n = 0;
    for (SimContext& c : ctxs_) {
      if (c.finished || c.waiting) continue;
      if (c.clock <= best->clock + cfg_.sched_jitter_window) {
        eligible[n++] = &c;
      }
    }
    if (n > 1) best = eligible[sched_rng_.below(n)];
  }
  return best;
}

void Machine::run() {
  if (ran_) throw std::logic_error("Machine::run called twice");
  for (SimContext& c : ctxs_) {
    if (!c.fiber) throw std::logic_error("unset thread function");
  }
  ran_ = true;
  while (SimContext* next = pick_next()) {
    current_ = next;
    next->ops_since_resume = 0;
    refresh_fast_ctx();
    next->fiber->resume();
    current_ = nullptr;
    refresh_fast_ctx();
    next->finished = next->fiber->finished();
    if (next->finished && next->fiber->error()) {
      std::rethrow_exception(next->fiber->error());
    }
  }
}

void Machine::op_prologue() {
  SimContext& c = cur();
  if (cfg_.interrupts_enabled) {
    while (static_cast<double>(c.clock) >= c.next_interrupt) {
      ++stats_.interrupts;
      if (c.tx.active && !c.tx.doomed) {
        abort_tx(c.id, AbortReason::kInterrupt, ~0ull, 0, c.id);
      }
      c.clock += cfg_.interrupt_handler_cycles;
      c.busy += cfg_.interrupt_handler_cycles;
      c.next_interrupt = static_cast<double>(c.clock) +
                         c.rng.exponential(cfg_.interrupt_mean_cycles);
      c.interrupt_gate = interrupt_gate_for(c.next_interrupt);
    }
  }
  check_doomed();
}

void Machine::check_doomed() {
  SimContext& c = cur();
  if (c.tx.doomed) deliver_abort(c);
}

void Machine::deliver_abort(SimContext& c) {
  advance(cfg_.tx_abort_cycles, 0);
  TxAborted ex{c.tx.status, c.tx.reason, c.tx.conflict_line, c.tx.attacker};
  c.tx.doomed = false;
  c.tx.active = false;
  c.tx.depth = 0;
  refresh_fast_ctx();
  maybe_yield();
  throw ex;
}

void Machine::abort_tx(CtxId victim, AbortReason reason, uint64_t line,
                       uint8_t code, CtxId attacker) {
  SimContext& v = ctxs_[victim];
  if (!v.tx.active || v.tx.doomed) return;
  // Roll back speculative values (newest first).
  for (auto it = v.tx.undo.rbegin(); it != v.tx.undo.rend(); ++it) {
    mem_.backing().poke(it->first, it->second);
  }
  v.tx.undo.clear();
  mem_.tx_clear(victim);
  refresh_fast_ctx();
  v.tx.doomed = true;
  v.tx.reason = reason;
  v.tx.conflict_line = line;
  v.tx.status = status_for_abort(reason, code);
  v.tx.attacker = attacker;
  if (v.tx.depth > 1) v.tx.status |= xstatus::kNested;
  ++stats_.tx.aborts_by_reason[static_cast<size_t>(reason)];
  ++stats_.tx.aborts_by_misc[static_cast<size_t>(misc_bucket_for(reason))];
  if (trace_.on_tx_abort) trace_.on_tx_abort(victim);
  if (obs_.on_tx_abort) {
    obs_.on_tx_abort(victim, v.clock, reason, line, attacker);
  }
}

Cycles Machine::mem_access(Addr addr, bool is_write) {
  SimContext& c = cur();
  bool tx = c.tx.active && !c.tx.doomed;
  // Page-fault model: faults are suppressed inside transactions (the tx
  // aborts and the page stays absent, as on real TSX hardware).
  if (!mem_.backing().present(addr)) {
    if (tx) {
      abort_tx(c.id, AbortReason::kPageFault, line_of(addr), 0, c.id);
      deliver_abort(c);
    }
    ++stats_.mem.page_faults;
    advance(cfg_.page_fault_cycles, 0);
    mem_.backing().make_present(addr);
  }
  Cycles lat = mem_.access(c.id, addr, is_write, tx);
  ++stats_.ops;
  // Issue and L1-hit cycles are core-bound (the L1 ports are shared by the
  // hyper-thread pair and scale with smt_slowdown); anything beyond the L1
  // is latency in the uncore and overlaps freely.
  Cycles core_part = std::min(lat, lat_l1_hit_);
  advance(core_part, lat - core_part);
  return lat;
}

// The inline fast paths (machine.h) bail out to the *_general continuations
// below for everything else: faults, transactions, hooks, interrupts, cache
// misses, upgrades, unaligned addresses.

Word Machine::load_general(Addr addr) {
  op_prologue();
  mem_access(addr, /*is_write=*/false);
  check_doomed();
  SimContext& c = cur();
  Word v = mem_.backing().peek(addr);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, v, v, /*is_write=*/false, c.tx.active);
  }
  maybe_yield();
  return v;
}

void Machine::store_general(Addr addr, Word value) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  Word old = mem_.backing().peek(addr);
  if (c.tx.active) {
    c.tx.undo.emplace_back(addr, old);
  }
  mem_.backing().poke(addr, value);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, value, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
}

bool Machine::cas_general(Addr addr, Word expected, Word desired) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);  // lock-prefixed op overhead beyond the exclusive access
  Word old = mem_.backing().peek(addr);
  if (old != expected) {
    if (trace_.on_access) {
      trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    }
    maybe_yield();
    return false;
  }
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_.backing().poke(addr, desired);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    trace_.on_access(c.id, addr, old, desired, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
  return true;
}

Word Machine::fetch_add_general(Addr addr, Word delta) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);
  Word old = mem_.backing().peek(addr);
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_.backing().poke(addr, old + delta);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    trace_.on_access(c.id, addr, old, old + delta, /*is_write=*/true,
                     c.tx.active);
  }
  maybe_yield();
  return old;
}

Word Machine::swap(Addr addr, Word value) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);
  Word old = mem_.backing().peek(addr);
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_.backing().poke(addr, value);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, value, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
  return old;
}

void Machine::compute_general(Cycles cycles) {
  op_prologue();
  ++stats_.ops;
  advance(cycles, 0);
  maybe_yield();
}

void Machine::pause(Cycles cycles) { compute(cycles); }

void Machine::tx_begin() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) {
    ++c.tx.depth;  // flat nesting
    advance(8, 0);
    maybe_yield();
    return;
  }
  ++stats_.ops;
  advance(cfg_.tx_begin_cycles, 0);
  c.tx.active = true;
  c.tx.depth = 1;
  c.tx.doomed = false;
  c.tx.reason = AbortReason::kNone;
  c.tx.conflict_line = ~0ull;
  c.tx.status = 0;
  c.tx.undo.clear();
  mem_.tx_begin(c.id, c.clock);
  refresh_fast_ctx();
  ++stats_.tx.started;
  if (trace_.on_tx_begin) trace_.on_tx_begin(c.id);
  if (obs_.on_tx_begin) obs_.on_tx_begin(c.id, c.clock);
  maybe_yield();
}

void Machine::tx_commit() {
  op_prologue();
  SimContext& c = cur();
  if (!c.tx.active) throw std::logic_error("tx_commit outside transaction");
  if (c.tx.depth > 1) {
    --c.tx.depth;
    advance(8, 0);
    maybe_yield();
    return;
  }
  ++stats_.ops;
  advance(cfg_.tx_commit_cycles, 0);
  mem_.tx_clear(c.id);
  c.tx.active = false;
  c.tx.depth = 0;
  c.tx.undo.clear();
  refresh_fast_ctx();
  ++stats_.tx.committed;
  // The commit hook fires here — after the speculative state became the
  // committed state, before the next scheduling point — so a recorder sees
  // transactions in exactly their serialization order.
  if (trace_.on_tx_commit) trace_.on_tx_commit(c.id);
  if (obs_.on_tx_commit) obs_.on_tx_commit(c.id, c.clock);
  maybe_yield();
}

void Machine::tx_abort(uint8_t code) {
  op_prologue();
  SimContext& c = cur();
  if (!c.tx.active) throw std::logic_error("tx_abort outside transaction");
  abort_tx(c.id, AbortReason::kExplicit, ~0ull, code, c.id);
  deliver_abort(c);
}

void Machine::tx_unsupported_insn() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) {
    abort_tx(c.id, AbortReason::kUnsupportedInsn, ~0ull, 0, c.id);
    deliver_abort(c);
  }
  advance(40, 0);
  maybe_yield();
}

bool Machine::in_tx() const { return cur().tx.active && !cur().tx.doomed; }

void Machine::barrier() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) throw std::logic_error("barrier inside transaction");
  advance(60, 0);  // syscall-ish entry cost
  ++barrier_arrived_;
  barrier_clock_ = std::max(barrier_clock_, c.clock);
  if (barrier_arrived_ == num_threads_) {
    // Release everyone at the last arriver's clock.
    Cycles release = barrier_clock_;
    uint64_t gen = barrier_generation_;
    barrier_arrived_ = 0;
    barrier_clock_ = 0;
    ++barrier_generation_;
    (void)gen;
    for (SimContext& other : ctxs_) {
      if (other.waiting) {
        other.waiting = false;
        other.clock = std::max(other.clock, release);
      }
    }
    c.clock = std::max(c.clock, release);
    maybe_yield();
    return;
  }
  c.waiting = true;
  while (c.waiting) c.fiber->yield();
}

}  // namespace tsx::sim
