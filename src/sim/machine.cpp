#include "sim/machine.h"

#include <algorithm>

namespace tsx::sim {

Machine::Machine(const MachineConfig& cfg, uint32_t num_threads)
    : cfg_(cfg), num_threads_(num_threads), setup_rng_(cfg.seed ^ 0xabcdef),
      sched_rng_(cfg.seed ^ 0x5c4ed01eull) {
  if (num_threads == 0 || num_threads > kMaxCtxs) {
    throw std::invalid_argument("thread count must be 1..8");
  }
  mem_ = std::make_unique<MemorySystem>(
      cfg_, num_threads, &stats_.mem,
      [this](CtxId victim, AbortReason r, uint64_t line, CtxId attacker) {
        abort_tx(victim, r, line, 0, attacker);
      });
  for (CtxId i = 0; i < num_threads; ++i) {
    auto c = std::make_unique<SimContext>();
    c->id = i;
    c->core = mem_->core_of(i);
    c->rng.reseed(cfg_.seed * 0x9e3779b97f4a7c15ull + i + 1);
    c->next_interrupt = cfg_.interrupts_enabled
                            ? c->rng.exponential(cfg_.interrupt_mean_cycles)
                            : 0;
    ctxs_.push_back(std::move(c));
  }
}

Machine::~Machine() = default;

void Machine::set_obs_hooks(ObsHooks hooks, Cycles sample_window_cycles) {
  obs_ = std::move(hooks);
  sample_window_ = obs_.on_sample_window ? sample_window_cycles : 0;
  next_sample_ = sample_window_;
  max_clock_seen_ = 0;
  if (obs_.on_tx_evict) {
    mem_->set_evict_hook([this](CtxId by, int level, uint64_t line) {
      obs_.on_tx_evict(by, ctxs_[by]->clock, level, line);
    });
  } else {
    mem_->set_evict_hook(nullptr);
  }
}

void Machine::set_thread(CtxId ctx, ThreadFn fn) {
  if (ctx >= num_threads_) throw std::invalid_argument("bad ctx id");
  if (ctxs_[ctx]->fiber) throw std::logic_error("thread already set");
  ctxs_[ctx]->fiber =
      std::make_unique<Fiber>(cfg_.fiber_stack_bytes, std::move(fn));
}

Machine::SimContext& Machine::cur() {
  if (!current_) throw std::logic_error("simulation op outside a fiber");
  return *current_;
}

const Machine::SimContext& Machine::cur() const {
  if (!current_) throw std::logic_error("simulation op outside a fiber");
  return *current_;
}

CtxId Machine::current_ctx() const { return cur().id; }

Cycles Machine::now() const { return cur().clock; }

Cycles Machine::wall() const {
  Cycles w = 0;
  for (const auto& c : ctxs_) w = std::max(w, c->clock);
  return w;
}

Cycles Machine::ctx_finish(CtxId ctx) const { return ctxs_[ctx]->clock; }

double Machine::core_busy_cycles() const {
  // A core is modeled busy for as long as its busiest context.
  std::vector<double> core_busy(cfg_.cores, 0.0);
  for (const auto& c : ctxs_) {
    core_busy[c->core] =
        std::max(core_busy[c->core], static_cast<double>(c->busy));
  }
  double total = 0;
  for (double b : core_busy) total += b;
  return total;
}

bool Machine::sibling_active(const SimContext& c) const {
  for (const auto& other : ctxs_) {
    if (other->id != c.id && other->core == c.core &&
        !other->fiber->finished()) {
      return true;
    }
  }
  return false;
}

void Machine::advance(Cycles core_cycles, Cycles mem_cycles) {
  SimContext& c = cur();
  Cycles adj_core = core_cycles;
  if (num_threads_ > cfg_.cores && sibling_active(c)) {
    adj_core = static_cast<Cycles>(
        static_cast<double>(core_cycles) * cfg_.smt_slowdown + 0.5);
  }
  c.clock += adj_core + mem_cycles;
  c.busy += adj_core + mem_cycles;
  // Sample-window counter sampling: report each window boundary the first
  // time any context's clock crosses it. The high-water mark makes boundary
  // order monotonic; emission is host-side only, so sampling never perturbs
  // the simulated timeline.
  if (sample_window_ && c.clock > max_clock_seen_) {
    max_clock_seen_ = c.clock;
    while (max_clock_seen_ >= next_sample_) {
      obs_.on_sample_window(next_sample_, stats_);
      next_sample_ += sample_window_;
    }
  }
}

void Machine::maybe_yield() {
  if (num_threads_ == 1) return;
  SimContext& c = cur();
  // sched_quantum_ops: hold the fiber for a full quantum of ops before the
  // usual clock comparison may deschedule it.
  if (cfg_.sched_quantum_ops > 0) {
    if (++c.ops_since_resume < cfg_.sched_quantum_ops) return;
  }
  for (const auto& other : ctxs_) {
    if (other->id == c.id || other->fiber->finished() || other->waiting) {
      continue;
    }
    if (other->clock < c.clock + cfg_.sched_jitter_window ||
        (other->clock == c.clock && other->id < c.id)) {
      c.fiber->yield();
      return;
    }
  }
}

Machine::SimContext* Machine::pick_next() {
  SimContext* best = nullptr;
  bool any_waiting = false;
  for (auto& c : ctxs_) {
    if (c->fiber->finished()) continue;
    if (c->waiting) {
      any_waiting = true;
      continue;
    }
    if (!best || c->clock < best->clock ||
        (c->clock == best->clock && c->id < best->id)) {
      best = c.get();
    }
  }
  if (!best && any_waiting) {
    throw std::logic_error("barrier deadlock: all runnable contexts waiting");
  }
  // Scheduler jitter: any runnable context within the window of the clock
  // minimum may run next; the choice is a deterministic function of the
  // machine seed and the pick sequence. Yield points stay unchanged, only
  // the order in which eligible fibers interleave varies — exactly the
  // degree of freedom real timing noise has.
  if (best && cfg_.sched_jitter_window > 0) {
    SimContext* eligible[kMaxCtxs];
    uint32_t n = 0;
    for (auto& c : ctxs_) {
      if (c->fiber->finished() || c->waiting) continue;
      if (c->clock <= best->clock + cfg_.sched_jitter_window) {
        eligible[n++] = c.get();
      }
    }
    if (n > 1) best = eligible[sched_rng_.below(n)];
  }
  return best;
}

void Machine::run() {
  if (ran_) throw std::logic_error("Machine::run called twice");
  for (auto& c : ctxs_) {
    if (!c->fiber) throw std::logic_error("unset thread function");
  }
  ran_ = true;
  while (SimContext* next = pick_next()) {
    current_ = next;
    next->ops_since_resume = 0;
    next->fiber->resume();
    current_ = nullptr;
    if (next->fiber->finished() && next->fiber->error()) {
      std::rethrow_exception(next->fiber->error());
    }
  }
}

void Machine::op_prologue() {
  SimContext& c = cur();
  if (cfg_.interrupts_enabled) {
    while (static_cast<double>(c.clock) >= c.next_interrupt) {
      ++stats_.interrupts;
      if (c.tx.active && !c.tx.doomed) {
        abort_tx(c.id, AbortReason::kInterrupt, ~0ull, 0, c.id);
      }
      c.clock += cfg_.interrupt_handler_cycles;
      c.busy += cfg_.interrupt_handler_cycles;
      c.next_interrupt = static_cast<double>(c.clock) +
                         c.rng.exponential(cfg_.interrupt_mean_cycles);
    }
  }
  check_doomed();
}

void Machine::check_doomed() {
  SimContext& c = cur();
  if (c.tx.doomed) deliver_abort(c);
}

void Machine::deliver_abort(SimContext& c) {
  advance(cfg_.tx_abort_cycles, 0);
  TxAborted ex{c.tx.status, c.tx.reason, c.tx.conflict_line, c.tx.attacker};
  c.tx.doomed = false;
  c.tx.active = false;
  c.tx.depth = 0;
  maybe_yield();
  throw ex;
}

void Machine::abort_tx(CtxId victim, AbortReason reason, uint64_t line,
                       uint8_t code, CtxId attacker) {
  SimContext& v = *ctxs_[victim];
  if (!v.tx.active || v.tx.doomed) return;
  // Roll back speculative values (newest first).
  for (auto it = v.tx.undo.rbegin(); it != v.tx.undo.rend(); ++it) {
    mem_->backing().poke(it->first, it->second);
  }
  v.tx.undo.clear();
  mem_->tx_clear(victim);
  v.tx.doomed = true;
  v.tx.reason = reason;
  v.tx.conflict_line = line;
  v.tx.status = status_for_abort(reason, code);
  v.tx.attacker = attacker;
  if (v.tx.depth > 1) v.tx.status |= xstatus::kNested;
  ++stats_.tx.aborts_by_reason[static_cast<size_t>(reason)];
  ++stats_.tx.aborts_by_misc[static_cast<size_t>(misc_bucket_for(reason))];
  if (trace_.on_tx_abort) trace_.on_tx_abort(victim);
  if (obs_.on_tx_abort) {
    obs_.on_tx_abort(victim, v.clock, reason, line, attacker);
  }
}

Cycles Machine::mem_access(Addr addr, bool is_write) {
  SimContext& c = cur();
  bool tx = c.tx.active && !c.tx.doomed;
  // Page-fault model: faults are suppressed inside transactions (the tx
  // aborts and the page stays absent, as on real TSX hardware).
  if (!mem_->backing().present(addr)) {
    if (tx) {
      abort_tx(c.id, AbortReason::kPageFault, line_of(addr), 0, c.id);
      deliver_abort(c);
    }
    ++stats_.mem.page_faults;
    advance(cfg_.page_fault_cycles, 0);
    mem_->backing().make_present(addr);
  }
  Cycles lat = mem_->access(c.id, addr, is_write, tx);
  ++stats_.ops;
  // Issue and L1-hit cycles are core-bound (the L1 ports are shared by the
  // hyper-thread pair and scale with smt_slowdown); anything beyond the L1
  // is latency in the uncore and overlaps freely.
  Cycles core_part = std::min(lat, cfg_.lat_issue + cfg_.lat_l1);
  advance(core_part, lat - core_part);
  return lat;
}

Word Machine::load(Addr addr) {
  op_prologue();
  mem_access(addr, /*is_write=*/false);
  check_doomed();
  SimContext& c = cur();
  Word v = mem_->backing().peek(addr);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, v, v, /*is_write=*/false, c.tx.active);
  }
  maybe_yield();
  return v;
}

void Machine::store(Addr addr, Word value) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  Word old = mem_->backing().peek(addr);
  if (c.tx.active) {
    c.tx.undo.emplace_back(addr, old);
  }
  mem_->backing().poke(addr, value);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, value, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
}

bool Machine::cas(Addr addr, Word expected, Word desired) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);  // lock-prefixed op overhead beyond the exclusive access
  Word old = mem_->backing().peek(addr);
  if (old != expected) {
    if (trace_.on_access) {
      trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    }
    maybe_yield();
    return false;
  }
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_->backing().poke(addr, desired);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    trace_.on_access(c.id, addr, old, desired, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
  return true;
}

Word Machine::fetch_add(Addr addr, Word delta) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);
  Word old = mem_->backing().peek(addr);
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_->backing().poke(addr, old + delta);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, old, /*is_write=*/false, c.tx.active);
    trace_.on_access(c.id, addr, old, old + delta, /*is_write=*/true,
                     c.tx.active);
  }
  maybe_yield();
  return old;
}

Word Machine::swap(Addr addr, Word value) {
  op_prologue();
  mem_access(addr, /*is_write=*/true);
  check_doomed();
  SimContext& c = cur();
  advance(4, 0);
  Word old = mem_->backing().peek(addr);
  if (c.tx.active) c.tx.undo.emplace_back(addr, old);
  mem_->backing().poke(addr, value);
  if (trace_.on_access) {
    trace_.on_access(c.id, addr, old, value, /*is_write=*/true, c.tx.active);
  }
  maybe_yield();
  return old;
}

void Machine::compute(Cycles cycles) {
  op_prologue();
  ++stats_.ops;
  advance(cycles, 0);
  maybe_yield();
}

void Machine::pause(Cycles cycles) { compute(cycles); }

void Machine::tx_begin() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) {
    ++c.tx.depth;  // flat nesting
    advance(8, 0);
    maybe_yield();
    return;
  }
  ++stats_.ops;
  advance(cfg_.tx_begin_cycles, 0);
  c.tx.active = true;
  c.tx.depth = 1;
  c.tx.doomed = false;
  c.tx.reason = AbortReason::kNone;
  c.tx.conflict_line = ~0ull;
  c.tx.status = 0;
  c.tx.undo.clear();
  mem_->tx_begin(c.id, c.clock);
  ++stats_.tx.started;
  if (trace_.on_tx_begin) trace_.on_tx_begin(c.id);
  if (obs_.on_tx_begin) obs_.on_tx_begin(c.id, c.clock);
  maybe_yield();
}

void Machine::tx_commit() {
  op_prologue();
  SimContext& c = cur();
  if (!c.tx.active) throw std::logic_error("tx_commit outside transaction");
  if (c.tx.depth > 1) {
    --c.tx.depth;
    advance(8, 0);
    maybe_yield();
    return;
  }
  ++stats_.ops;
  advance(cfg_.tx_commit_cycles, 0);
  mem_->tx_clear(c.id);
  c.tx.active = false;
  c.tx.depth = 0;
  c.tx.undo.clear();
  ++stats_.tx.committed;
  // The commit hook fires here — after the speculative state became the
  // committed state, before the next scheduling point — so a recorder sees
  // transactions in exactly their serialization order.
  if (trace_.on_tx_commit) trace_.on_tx_commit(c.id);
  if (obs_.on_tx_commit) obs_.on_tx_commit(c.id, c.clock);
  maybe_yield();
}

void Machine::tx_abort(uint8_t code) {
  op_prologue();
  SimContext& c = cur();
  if (!c.tx.active) throw std::logic_error("tx_abort outside transaction");
  abort_tx(c.id, AbortReason::kExplicit, ~0ull, code, c.id);
  deliver_abort(c);
}

void Machine::tx_unsupported_insn() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) {
    abort_tx(c.id, AbortReason::kUnsupportedInsn, ~0ull, 0, c.id);
    deliver_abort(c);
  }
  advance(40, 0);
  maybe_yield();
}

bool Machine::in_tx() const { return cur().tx.active && !cur().tx.doomed; }

void Machine::barrier() {
  op_prologue();
  SimContext& c = cur();
  if (c.tx.active) throw std::logic_error("barrier inside transaction");
  advance(60, 0);  // syscall-ish entry cost
  ++barrier_arrived_;
  barrier_clock_ = std::max(barrier_clock_, c.clock);
  if (barrier_arrived_ == num_threads_) {
    // Release everyone at the last arriver's clock.
    Cycles release = barrier_clock_;
    uint64_t gen = barrier_generation_;
    barrier_arrived_ = 0;
    barrier_clock_ = 0;
    ++barrier_generation_;
    (void)gen;
    for (auto& other : ctxs_) {
      if (other->waiting) {
        other->waiting = false;
        other->clock = std::max(other->clock, release);
      }
    }
    c.clock = std::max(c.clock, release);
    maybe_yield();
    return;
  }
  c.waiting = true;
  while (c.waiting) c.fiber->yield();
}

}  // namespace tsx::sim
