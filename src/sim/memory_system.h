#pragma once
// Cache hierarchy + coherence + TSX read/write-set tracking.
//
// Model summary (see DESIGN.md §4):
//   * Private L1d and L2 per core (shared by the two hyper-threads of a
//     core), one shared *inclusive* L3.
//   * Line-granularity invalidation coherence. The directory state (which
//     cores' private caches hold a line; which core holds it modified) is
//     kept on the L3 line, which inclusion makes authoritative.
//   * Transactional write-sets are pinned in the L1: evicting a tx-written
//     line aborts the writing transaction(s) with kWriteCapacity. Write-set
//     capacity therefore tops out at 512 lines (and earlier under set
//     pressure or SMT sharing), matching the paper's Fig. 1.
//   * Transactional read-sets are tracked in the inclusive L3: an L3
//     eviction of a tx-read line aborts the reader(s) with kReadCapacity, so
//     read-sets scale to ~128K lines (Fig. 1).
//   * Conflicts are requester-wins: any write (tx or not) to a line in
//     another hw thread's read- or write-set, and any read of a line in
//     another hw thread's write-set, aborts that other transaction.
//
// The MemorySystem performs no value movement: it returns timing and raises
// abort callbacks; the Machine moves values through the BackingStore.
//
// Hot path (DESIGN.md §10): fast_load/fast_store are header-inline replicas
// of access()'s L1-hit branch for the zero-live-transactions case. They
// check every precondition before mutating anything (stats, LRU), so a
// bail-out to the full access() replays the op with no double-counting.
// Transactional line sets are util::FlatSet (O(1) epoch clear, insertion-
// order iteration); caches are stored by value to drop a pointer chase.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/backing_store.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "util/flat_table.h"

namespace tsx::sim {

class MemorySystem {
 public:
  // `on_abort(victim, reason, line, attacker)` must roll the victim's
  // transaction back and call tx_clear(victim). It may be invoked
  // re-entrantly from access(). `attacker` is the context whose access
  // caused the abort: the conflicting requester for kConflict, the context
  // whose fill evicted the tracked line for capacity aborts (possibly the
  // victim itself).
  using AbortFn = std::function<void(CtxId, AbortReason, uint64_t, CtxId)>;
  // Optional observability hook (src/obs): a capacity-tracked line left its
  // tracking structure. `level` is 1 for L1 write-set evictions, 3 for L3
  // read-set evictions; `by` is the context whose access triggered it.
  using EvictFn = std::function<void(CtxId, int, uint64_t)>;

  MemorySystem(const MachineConfig& cfg, uint32_t num_ctxs, MemStats* stats,
               AbortFn on_abort);

  // Performs one data access and returns its latency in cycles. The caller
  // has already handled page faults. `tx_mode` tracks the line in the
  // requester's transactional sets.
  Cycles access(CtxId ctx, Addr addr, bool is_write, bool tx_mode);

  // Fast-path load: L1 hit with no live transaction anywhere. The zero-
  // live-transactions precondition is the CALLER's to guarantee (the
  // Machine's fast_ctx_ is null whenever any transaction is live, see
  // machine.h) — it is what makes conflict checks, tx tracking, and abort
  // callbacks unreachable. Returns the latency, or 0 if the L1 misses
  // (caller must then run the full access(); nothing has been mutated).
  // Mirrors access()'s L1-read branch: same stats, same LRU update, same
  // latency.
  // `l1` is the requester's core-private L1 (the Machine caches the pointer
  // per context, see SimContext::l1).
  Cycles fast_load(Cache& l1, uint64_t line) {
    CacheLine* l1l = l1.probe(line);
    if (!l1l) return 0;
    l1.bump(l1l);
    ++stats_->loads;
    ++stats_->l1_hits;
    return lat_l1_hit_;
  }

  // Fast-path store: additionally requires that no other core shares the
  // line (otherwise the upgrade/invalidate path must run). Mirrors
  // access()'s L1-write branch. Same caller-guaranteed precondition as
  // fast_load.
  Cycles fast_store(Cache& l1, uint32_t core, uint64_t line) {
    CacheLine* l1l = l1.probe(line);
    if (!l1l) return 0;
    CacheLine* l3l = l3_.probe(line);
    uint8_t core_bit = static_cast<uint8_t>(1u << core);
    if (l3l && (l3l->sharers & static_cast<uint8_t>(~core_bit))) return 0;
    l1.bump(l1l);
    ++stats_->stores;
    ++stats_->l1_hits;
    if (l3l) l3l->dirty_owner = static_cast<int8_t>(core);
    l1l->dirty = true;
    return lat_l1_hit_;
  }

  uint32_t active_tx_count() const { return active_tx_count_; }

  // `begin_clock` orders transactions by age for the mutual-kill policy.
  void tx_begin(CtxId ctx, Cycles begin_clock);
  // Clears transactional flags and sets (used for both commit and abort).
  void tx_clear(CtxId ctx);
  bool tx_active(CtxId ctx) const { return tx_[ctx].active; }

  const util::FlatSet& read_lines(CtxId ctx) const {
    return tx_[ctx].read_lines;
  }
  const util::FlatSet& write_lines(CtxId ctx) const {
    return tx_[ctx].write_lines;
  }

  BackingStore& backing() { return backing_; }
  const BackingStore& backing() const { return backing_; }

  uint32_t core_of(CtxId ctx) const { return ctx % cores_; }

  // Testing hooks.
  Cache& l1(uint32_t core) { return l1_[core]; }
  Cache& l2(uint32_t core) { return l2_[core]; }
  Cache& l3() { return l3_; }

  // Installs (or clears) the capacity-eviction observability hook. Unset
  // costs one branch per tx-tracked eviction.
  void set_evict_hook(EvictFn fn) { on_evict_ = std::move(fn); }

 private:
  struct TxTrack {
    bool active = false;
    Cycles begin_clock = 0;
    util::FlatSet read_lines;
    util::FlatSet write_lines;
  };

  void check_conflicts(CtxId requester, uint64_t line, bool is_write);
  void on_l1_evict(uint32_t core, CacheLine victim);
  void on_l2_evict(uint32_t core, CacheLine victim);
  void on_l3_evict(CacheLine victim);
  // Removes other cores' private copies of `line` (for write ownership).
  void invalidate_other_private(uint32_t keep_core, CacheLine* l3_line);
  void drop_sharer_if_absent(uint32_t core, uint64_t line);

  const MachineConfig& cfg_;
  uint32_t cores_;
  uint32_t num_ctxs_;
  Cycles lat_l1_hit_;  // cfg_.lat_issue + cfg_.lat_l1, precomputed
  MemStats* stats_;
  AbortFn on_abort_;
  EvictFn on_evict_;
  // Context of the access() currently in flight — attributed as the attacker
  // of any abort the access triggers (conflict kills and capacity evictions
  // both happen inside access()). Fast paths skip it: they cannot trigger
  // aborts or evictions, and every slow access() re-sets it first.
  CtxId requester_ = 0;

  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  BackingStore backing_;

  std::vector<TxTrack> tx_;
  uint32_t active_tx_count_ = 0;
};

}  // namespace tsx::sim
