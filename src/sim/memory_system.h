#pragma once
// Cache hierarchy + coherence + TSX read/write-set tracking.
//
// Model summary (see DESIGN.md §4):
//   * Private L1d and L2 per core (shared by the two hyper-threads of a
//     core), one shared *inclusive* L3.
//   * Line-granularity invalidation coherence. The directory state (which
//     cores' private caches hold a line; which core holds it modified) is
//     kept on the L3 line, which inclusion makes authoritative.
//   * Transactional write-sets are pinned in the L1: evicting a tx-written
//     line aborts the writing transaction(s) with kWriteCapacity. Write-set
//     capacity therefore tops out at 512 lines (and earlier under set
//     pressure or SMT sharing), matching the paper's Fig. 1.
//   * Transactional read-sets are tracked in the inclusive L3: an L3
//     eviction of a tx-read line aborts the reader(s) with kReadCapacity, so
//     read-sets scale to ~128K lines (Fig. 1).
//   * Conflicts are requester-wins: any write (tx or not) to a line in
//     another hw thread's read- or write-set, and any read of a line in
//     another hw thread's write-set, aborts that other transaction.
//
// The MemorySystem performs no value movement: it returns timing and raises
// abort callbacks; the Machine moves values through the BackingStore.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/backing_store.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsx::sim {

class MemorySystem {
 public:
  // `on_abort(victim, reason, line, attacker)` must roll the victim's
  // transaction back and call tx_clear(victim). It may be invoked
  // re-entrantly from access(). `attacker` is the context whose access
  // caused the abort: the conflicting requester for kConflict, the context
  // whose fill evicted the tracked line for capacity aborts (possibly the
  // victim itself).
  using AbortFn = std::function<void(CtxId, AbortReason, uint64_t, CtxId)>;
  // Optional observability hook (src/obs): a capacity-tracked line left its
  // tracking structure. `level` is 1 for L1 write-set evictions, 3 for L3
  // read-set evictions; `by` is the context whose access triggered it.
  using EvictFn = std::function<void(CtxId, int, uint64_t)>;

  MemorySystem(const MachineConfig& cfg, uint32_t num_ctxs, MemStats* stats,
               AbortFn on_abort);

  // Performs one data access and returns its latency in cycles. The caller
  // has already handled page faults. `tx_mode` tracks the line in the
  // requester's transactional sets.
  Cycles access(CtxId ctx, Addr addr, bool is_write, bool tx_mode);

  // `begin_clock` orders transactions by age for the mutual-kill policy.
  void tx_begin(CtxId ctx, Cycles begin_clock);
  // Clears transactional flags and sets (used for both commit and abort).
  void tx_clear(CtxId ctx);
  bool tx_active(CtxId ctx) const { return tx_[ctx].active; }

  const std::unordered_set<uint64_t>& read_lines(CtxId ctx) const {
    return tx_[ctx].read_lines;
  }
  const std::unordered_set<uint64_t>& write_lines(CtxId ctx) const {
    return tx_[ctx].write_lines;
  }

  BackingStore& backing() { return backing_; }
  const BackingStore& backing() const { return backing_; }

  uint32_t core_of(CtxId ctx) const { return ctx % cores_; }

  // Testing hooks.
  Cache& l1(uint32_t core) { return *l1_[core]; }
  Cache& l2(uint32_t core) { return *l2_[core]; }
  Cache& l3() { return *l3_; }

  // Installs (or clears) the capacity-eviction observability hook. Unset
  // costs one branch per tx-tracked eviction.
  void set_evict_hook(EvictFn fn) { on_evict_ = std::move(fn); }

 private:
  struct TxTrack {
    bool active = false;
    Cycles begin_clock = 0;
    std::unordered_set<uint64_t> read_lines;
    std::unordered_set<uint64_t> write_lines;
  };

  void check_conflicts(CtxId requester, uint64_t line, bool is_write);
  void on_l1_evict(uint32_t core, CacheLine victim);
  void on_l2_evict(uint32_t core, CacheLine victim);
  void on_l3_evict(CacheLine victim);
  // Removes other cores' private copies of `line` (for write ownership).
  void invalidate_other_private(uint32_t keep_core, CacheLine* l3_line);
  void drop_sharer_if_absent(uint32_t core, uint64_t line);

  const MachineConfig& cfg_;
  uint32_t cores_;
  uint32_t num_ctxs_;
  MemStats* stats_;
  AbortFn on_abort_;
  EvictFn on_evict_;
  // Context of the access() currently in flight — attributed as the attacker
  // of any abort the access triggers (conflict kills and capacity evictions
  // both happen inside access()).
  CtxId requester_ = 0;

  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  std::unique_ptr<Cache> l3_;
  BackingStore backing_;

  std::vector<TxTrack> tx_;
  uint32_t active_tx_count_ = 0;
};

}  // namespace tsx::sim
