#include "sim/cache.h"

#include <stdexcept>

namespace tsx::sim {

Cache::Cache(const CacheGeometry& geom, const char* name)
    : sets_(geom.sets()), set_mask_(geom.sets() - 1), ways_(geom.ways),
      name_(name) {
  if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0) {
    throw std::invalid_argument("cache set count must be a nonzero power of 2");
  }
  lines_.resize(static_cast<size_t>(sets_) * ways_);
  mru_ = &lines_[0];  // any line works: invalid lines never match a probe
}

CacheLine* Cache::fill(uint64_t line_addr,
                       util::FnRef<void(const CacheLine&)> on_evict) {
  if (probe(line_addr)) {
    throw std::logic_error("fill of already-present line");
  }
  CacheLine* set = set_begin(set_index(line_addr));
  CacheLine* victim = nullptr;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    if (!victim || set[w].lru < victim->lru) victim = &set[w];
  }
  if (victim->valid) {
    on_evict(*victim);
  }
  victim->reset(line_addr);
  victim->lru = ++tick_;
  return victim;
}

void Cache::invalidate(uint64_t line_addr) {
  if (CacheLine* line = probe(line_addr)) {
    line->valid = false;
    line->tag = CacheLine::kNoTag;  // keeps probe()'s single-compare honest
  }
}

uint64_t Cache::valid_lines() const {
  uint64_t n = 0;
  for (const auto& l : lines_) n += l.valid;
  return n;
}

}  // namespace tsx::sim
