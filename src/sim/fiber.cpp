#include "sim/fiber.h"

#include <ucontext.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

// Under ASan every stack switch must be announced, or the runtime misjudges
// stack bounds (e.g. during exception unwinds on a fiber stack) and reports
// false positives. See sanitizer/common_interface_defs.h.
#if defined(__SANITIZE_ADDRESS__)
#define TSX_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TSX_ASAN_FIBERS 1
#endif
#endif

#if defined(TSX_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace tsx::sim {

struct Fiber::Impl {
  ucontext_t self{};
  ucontext_t scheduler{};
  std::vector<char> stack;
  std::function<void()> fn;
  bool finished = false;
  bool running = false;
  std::exception_ptr error;
#if defined(TSX_ASAN_FIBERS)
  void* sched_fake_stack = nullptr;  // saved when the scheduler side suspends
  void* fiber_fake_stack = nullptr;  // saved when the fiber side suspends
  const void* sched_stack_bottom = nullptr;
  size_t sched_stack_size = 0;
#endif

  static void trampoline(unsigned hi, unsigned lo) {
    auto* impl = reinterpret_cast<Impl*>(
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
#if defined(TSX_ASAN_FIBERS)
    // First time on this stack: no fake stack of our own yet; learn where we
    // came from so yield/exit can switch back.
    __sanitizer_finish_switch_fiber(nullptr, &impl->sched_stack_bottom,
                                    &impl->sched_stack_size);
#endif
    try {
      impl->fn();
    } catch (...) {
      impl->error = std::current_exception();
    }
    impl->finished = true;
#if defined(TSX_ASAN_FIBERS)
    // Terminal switch: nullptr tells ASan to retire this fiber's fake stack.
    __sanitizer_start_switch_fiber(nullptr, impl->sched_stack_bottom,
                                   impl->sched_stack_size);
#endif
    // Never return from a makecontext entry: swap back to the scheduler
    // forever.
    swapcontext(&impl->self, &impl->scheduler);
  }
};

Fiber::Fiber(size_t stack_bytes, std::function<void()> fn)
    : impl_(std::make_unique<Impl>()) {
  impl_->fn = std::move(fn);
  impl_->stack.resize(stack_bytes);
  if (getcontext(&impl_->self) != 0) {
    throw std::runtime_error("getcontext failed");
  }
  impl_->self.uc_stack.ss_sp = impl_->stack.data();
  impl_->self.uc_stack.ss_size = impl_->stack.size();
  impl_->self.uc_link = nullptr;
  auto ptr = reinterpret_cast<uintptr_t>(impl_.get());
  makecontext(&impl_->self, reinterpret_cast<void (*)()>(&Impl::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  if (impl_->finished) throw std::logic_error("resume of finished fiber");
  impl_->running = true;
#if defined(TSX_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&impl_->sched_fake_stack,
                                 impl_->stack.data(), impl_->stack.size());
#endif
  swapcontext(&impl_->scheduler, &impl_->self);
#if defined(TSX_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(impl_->sched_fake_stack, nullptr, nullptr);
#endif
  impl_->running = false;
}

void Fiber::yield() {
#if defined(TSX_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&impl_->fiber_fake_stack,
                                 impl_->sched_stack_bottom,
                                 impl_->sched_stack_size);
#endif
  swapcontext(&impl_->self, &impl_->scheduler);
#if defined(TSX_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(impl_->fiber_fake_stack,
                                  &impl_->sched_stack_bottom,
                                  &impl_->sched_stack_size);
#endif
}

bool Fiber::finished() const { return impl_->finished; }

std::exception_ptr Fiber::error() const { return impl_->error; }

}  // namespace tsx::sim
