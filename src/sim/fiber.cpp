#include "sim/fiber.h"

#include <ucontext.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tsx::sim {

struct Fiber::Impl {
  ucontext_t self{};
  ucontext_t scheduler{};
  std::vector<char> stack;
  std::function<void()> fn;
  bool finished = false;
  bool running = false;
  std::exception_ptr error;

  static void trampoline(unsigned hi, unsigned lo) {
    auto* impl = reinterpret_cast<Impl*>(
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
    try {
      impl->fn();
    } catch (...) {
      impl->error = std::current_exception();
    }
    impl->finished = true;
    // Never return from a makecontext entry: swap back to the scheduler
    // forever.
    swapcontext(&impl->self, &impl->scheduler);
  }
};

Fiber::Fiber(size_t stack_bytes, std::function<void()> fn)
    : impl_(std::make_unique<Impl>()) {
  impl_->fn = std::move(fn);
  impl_->stack.resize(stack_bytes);
  if (getcontext(&impl_->self) != 0) {
    throw std::runtime_error("getcontext failed");
  }
  impl_->self.uc_stack.ss_sp = impl_->stack.data();
  impl_->self.uc_stack.ss_size = impl_->stack.size();
  impl_->self.uc_link = nullptr;
  auto ptr = reinterpret_cast<uintptr_t>(impl_.get());
  makecontext(&impl_->self, reinterpret_cast<void (*)()>(&Impl::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  if (impl_->finished) throw std::logic_error("resume of finished fiber");
  impl_->running = true;
  swapcontext(&impl_->scheduler, &impl_->self);
  impl_->running = false;
}

void Fiber::yield() {
  swapcontext(&impl_->self, &impl_->scheduler);
}

bool Fiber::finished() const { return impl_->finished; }

std::exception_ptr Fiber::error() const { return impl_->error; }

}  // namespace tsx::sim
