#pragma once
// Event counters maintained by the memory system and machine. These are the
// simulator's "performance counters": benches snapshot them before and after
// a measured region, like the paper's libpfm4-based harness.

#include <array>
#include <cstdint>

#include "sim/types.h"

namespace tsx::sim {

struct MemStats {
  // loads and l1_hits are deliberately adjacent: the L1-hit load fast path
  // increments exactly this pair, and adjacency lets the compiler fuse the
  // two read-modify-writes into one 16-byte update.
  uint64_t loads = 0;
  uint64_t l1_hits = 0;
  uint64_t stores = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t mem_accesses = 0;
  uint64_t c2c_transfers = 0;
  uint64_t invalidations = 0;
  uint64_t writebacks = 0;
  uint64_t page_faults = 0;

  uint64_t accesses() const { return loads + stores; }
  uint64_t l1_accesses() const { return accesses(); }
  uint64_t l2_accesses() const { return accesses() - l1_hits; }
  uint64_t l3_accesses() const { return l2_accesses() - l2_hits; }
};

struct TxStats {
  uint64_t started = 0;
  uint64_t committed = 0;
  std::array<uint64_t, static_cast<size_t>(AbortReason::kCount)> aborts_by_reason{};
  std::array<uint64_t, static_cast<size_t>(MiscBucket::kCount)> aborts_by_misc{};

  uint64_t aborted() const {
    uint64_t s = 0;
    for (uint64_t a : aborts_by_reason) s += a;
    return s;
  }
  double abort_rate() const {
    return started ? static_cast<double>(aborted()) / static_cast<double>(started)
                   : 0.0;
  }
};

struct MachineStats {
  MemStats mem;
  TxStats tx;
  uint64_t ops = 0;            // retired simulated operations (issue slots)
  uint64_t interrupts = 0;
  double core_busy_cycles = 0; // summed over cores (for the energy model)
};

}  // namespace tsx::sim
