#pragma once
// The simulated machine: contexts (hardware threads) running workload code
// on fibers, a deterministic min-time scheduler, the TSX transactional state
// machine (undo log, doom/abort delivery, status words), the OS-event model
// (timer interrupts, page faults) and run-level statistics.
//
// Threading model: the whole simulation runs on ONE host thread. Simulated
// concurrency is interleaving of fiber ops ordered by local clocks, so every
// run is deterministic for a given seed (Core Guidelines CP.2: no shared
// mutable state between host threads at all).
//
// All simulated work must go through Machine ops (load/store/cas/compute/…):
// each op is a scheduling point, an interrupt-delivery point, and an
// abort-delivery point.
//
// Hot path (DESIGN.md §10): each data op is split into an inline fast path
// and an out-of-line general path. The fast path handles the overwhelmingly
// common case — no access-trace hook installed (fast_ok_, recomputed when
// hooks change), no due interrupt, context not in a transaction, page
// materialized, zero live transactions machine-wide, L1 hit — and is
// op-for-op equivalent to the general path: identical stat increments in
// identical order, identical advance() arguments, identical scheduling
// points. MachineConfig::disable_fast_paths forces the general path so the
// equivalence is testable.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/backing_store.h"
#include "sim/config.h"
#include "sim/fiber.h"
#include "sim/memory_system.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsx::sim {

// Sentinel for "no context" in attacker attribution (self-inflicted aborts
// carry the victim's own id instead; this is only for unset fields).
inline constexpr CtxId kNoCtx = ~CtxId{0};

// Thrown out of Machine ops when the current context's hardware transaction
// has aborted. Caught by the HTM layer's attempt wrapper (never crosses a
// fiber switch during unwinding).
struct TxAborted {
  uint32_t status = 0;
  AbortReason reason = AbortReason::kNone;
  uint64_t conflict_line = ~0ull;
  // Context whose access caused the abort (the conflicting requester, or
  // the context whose fill evicted a tracked line). Self for explicit /
  // page-fault / interrupt / unsupported-insn aborts.
  CtxId attacker = kNoCtx;
};

// Observation hooks for src/check's history recorder. Every hook fires at
// the op's linearization point — after the value moved in the backing store
// and (for tx_commit) after the transaction's effects became permanent, but
// BEFORE the op's scheduling point (maybe_yield) — so the order of hook
// invocations is exactly the order in which effects hit simulated memory.
// All hooks are optional; unset hooks cost one branch per op.
struct TraceHooks {
  // One data access. `old_value` is the pre-op value of the word (equal to
  // `value` for reads), `in_tx` whether the context was inside a live
  // hardware transaction. RMW ops (cas/fetch_add/swap) fire a read followed
  // by a write; a failed CAS fires only the read.
  std::function<void(CtxId, Addr addr, Word old_value, Word value,
                     bool is_write, bool in_tx)>
      on_access;
  std::function<void(CtxId)> on_tx_begin;   // outermost tx_begin
  std::function<void(CtxId)> on_tx_commit;  // outermost tx_commit, effects final
  std::function<void(CtxId)> on_tx_abort;   // after rollback, any abort cause
};

// Observability hooks for src/obs's event tracer. A SEPARATE slot from
// TraceHooks so the check-layer recorder (which installs TraceHooks
// wholesale) and a tracing sink can coexist on one machine. All timestamps
// are the acting context's simulated clock, so emission is deterministic
// and costs the simulation nothing (hooks run host-side only).
struct ObsHooks {
  std::function<void(CtxId, Cycles)> on_tx_begin;
  std::function<void(CtxId, Cycles)> on_tx_commit;
  // victim, victim clock at rollback, precise cause, conflicting line
  // (~0 if none), attacker context (== victim for self-inflicted aborts).
  std::function<void(CtxId, Cycles, AbortReason, uint64_t, CtxId)> on_tx_abort;
  // A capacity-tracked line left its tracking structure: level 1 = L1
  // write-set eviction, 3 = L3 read-set eviction. `by` triggered the fill.
  std::function<void(CtxId, Cycles, int, uint64_t)> on_tx_evict;
  // Fired when simulated time first crosses each sample-window boundary
  // (the unified counter-sampling path: energy-model samples and the PMU
  // time series both hang off it); receives the boundary timestamp and a
  // stats snapshot at that moment.
  std::function<void(Cycles, const MachineStats&)> on_sample_window;
};

class Machine {
 public:
  using ThreadFn = std::function<void()>;

  Machine(const MachineConfig& cfg, uint32_t num_threads);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  uint32_t num_threads() const { return num_threads_; }
  const MachineConfig& config() const { return cfg_; }
  // L1 geometry seam for set-index-aware clients (the heap's coloring
  // policies place blocks by L1 set; see mem::PlacementPolicy).
  const CacheGeometry& l1_geometry() const { return cfg_.l1; }

  // Registers the workload for context `ctx` (must be called for every
  // context exactly once before run()). The function runs on a fiber; it may
  // only interact with the simulation through this Machine.
  void set_thread(CtxId ctx, ThreadFn fn);

  // Runs the simulation to completion of all threads.
  void run();

  // ---- Ops (valid only while run() is executing the calling fiber) ----
  Word load(Addr addr);
  void store(Addr addr, Word value);
  // Atomic ops: one exclusive access; the bool result reports CAS success.
  bool cas(Addr addr, Word expected, Word desired);
  Word fetch_add(Addr addr, Word delta);
  Word swap(Addr addr, Word value);
  void compute(Cycles cycles);
  void pause(Cycles cycles = 40);  // _mm_pause-style busy-wait hint

  // ---- TSX primitives ----
  void tx_begin();
  void tx_commit();
  [[noreturn]] void tx_abort(uint8_t code);  // _xabort
  // Models executing a TSX-unfriendly instruction (syscall, cpuid, ...).
  void tx_unsupported_insn();
  bool in_tx() const;

  // ---- Introspection & host-side helpers ----
  CtxId current_ctx() const;
  bool on_fiber() const { return current_ != nullptr; }
  Cycles now() const;              // current context's clock
  Cycles wall() const;             // after run(): max finish time
  Cycles ctx_finish(CtxId) const;  // after run(): per-context finish time
  // Per-context busy cycles (the PMU's unhalted-clock counter; excludes
  // time parked in barriers, unlike the clock itself).
  Cycles ctx_busy(CtxId ctx) const { return ctxs_[ctx].busy; }

  // Host-side (costless) value access for setup/validation.
  Word peek(Addr addr) const { return mem_.backing().peek(addr); }
  void poke(Addr addr, Word value) { mem_.backing().poke(addr, value); }
  void prefault(Addr addr, uint64_t bytes) { mem_.backing().prefault(addr, bytes); }

  // Named barrier across all threads of the machine. Host-level: waiting
  // contexts are descheduled (no simulated spinning); on release their
  // clocks advance to the last arriver's clock.
  void barrier();

  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }
  MachineStats snapshot() const { return stats_; }

  MemorySystem& memory() { return mem_; }
  Rng& setup_rng() { return setup_rng_; }

  // Per-core busy cycles for the energy model (valid after run()).
  double core_busy_cycles() const;

  // Read-only view of the last abort delivered to `ctx` (testing).
  AbortReason last_abort_reason(CtxId ctx) const { return ctxs_[ctx].tx.reason; }

  // Installs (or clears) the observation hooks. Safe to call between ops;
  // typically done before run() by src/check's recorder. An installed
  // on_access hook routes every data op through the general path.
  void set_trace_hooks(TraceHooks hooks) {
    trace_ = std::move(hooks);
    refresh_fast_flags();
  }

  // Installs (or clears) the observability hooks (src/obs tracer). Distinct
  // from set_trace_hooks so recorder and tracer can coexist. If
  // `sample_window_cycles` > 0, on_sample_window fires each time simulated
  // time crosses a multiple of it.
  void set_obs_hooks(ObsHooks hooks, Cycles sample_window_cycles = 0);

 private:
  struct HwTx {
    bool active = false;
    int depth = 0;
    bool doomed = false;
    AbortReason reason = AbortReason::kNone;
    uint64_t conflict_line = ~0ull;
    uint32_t status = 0;
    CtxId attacker = kNoCtx;
    std::vector<std::pair<Addr, Word>> undo;
  };

  struct SimContext {
    CtxId id = 0;
    uint32_t core = 0;
    Cycles clock = 0;
    Cycles busy = 0;
    bool waiting = false;   // parked in a barrier
    bool finished = false;  // cached Fiber::finished() (updated in run())
    std::unique_ptr<Fiber> fiber;
    HwTx tx;
    Rng rng;
    // Next interrupt arrival time; +infinity when interrupts are disabled,
    // so the per-op due check is one branchless compare.
    double next_interrupt = 0;
    // ceil(next_interrupt) saturated to ~0 — the same due check as an
    // integer compare (n >= x iff n >= ceil(x) for integer n), saving the
    // int->double convert on every op. Kept in sync wherever
    // next_interrupt changes.
    Cycles interrupt_gate = 0;
    // This context's core-private L1 (mem_.l1(core)), cached so the data-op
    // fast paths skip the core load and per-core vector indexing.
    Cache* l1 = nullptr;
    uint32_t ops_since_resume = 0;  // for the sched_quantum_ops knob
    // Same-core sibling contexts (SMT), precomputed in the ctor so
    // sibling_active() is a short fixed walk instead of an all-ctx scan.
    uint32_t n_siblings = 0;
    SimContext* siblings[kMaxCtxs - 1] = {};
  };

  SimContext& cur();
  const SimContext& cur() const;

  // True when the current op may take the inline fast path: the cached
  // fast-context pointer is non-null (hooks and config allow it, the
  // context is outside any transaction, and no transaction is live
  // machine-wide — doomed implies active, so no abort can be pending
  // either) and no interrupt is due. next_interrupt is +infinity when
  // interrupts are disabled, so one compare covers both knobs.
  bool fast_op_ok(const SimContext* c) const {
    return c != nullptr && c->clock < c->interrupt_gate;
  }
  // Saturating ceil for SimContext::interrupt_gate (infinity when interrupts
  // are disabled; a double->uint64 cast of infinity would be UB).
  static Cycles interrupt_gate_for(double next_interrupt);
  void refresh_fast_flags() {
    fast_ok_ = !trace_.on_access && !cfg_.disable_fast_paths;
    refresh_fast_ctx();
  }
  // Recomputes fast_ctx_. Must be called whenever one of its inputs changes:
  // the running fiber (run loop), the current context's tx.active, the
  // machine-wide live-transaction count (tx_begin / tx_clear sites), or
  // fast_ok_.
  void refresh_fast_ctx() {
    SimContext* c = current_;
    fast_ctx_ = (c != nullptr && fast_ok_ && !c->tx.active &&
                 mem_.active_tx_count() == 0)
                    ? c
                    : nullptr;
  }

  // Op prologue: deliver due interrupts, then any pending abort.
  void op_prologue();
  [[noreturn]] void deliver_abort(SimContext& c);
  void check_doomed();  // throws if current ctx is doomed

  // Rolls back and dooms a transaction (memory-system abort callback and
  // the path for self-initiated aborts). `attacker` is the context whose
  // access caused the abort — the victim itself for self-inflicted ones.
  void abort_tx(CtxId victim, AbortReason reason, uint64_t line, uint8_t code,
                CtxId attacker);

  void advance(Cycles core_cycles, Cycles mem_cycles);
  void advance_ctx(SimContext& c, Cycles core_cycles, Cycles mem_cycles);
  bool sibling_active(const SimContext& c) const;
  void maybe_yield();
  // Cold continuations of the inline hot helpers below the class.
  void maybe_yield_slow();
  void cross_sample_windows(SimContext& c);
  [[noreturn]] static void throw_off_fiber();
  SimContext* pick_next();

  // Common memory-op body (general path).
  Cycles mem_access(Addr addr, bool is_write);

  // Out-of-line general paths: everything the fast paths bail out of
  // (faults, transactions, hooks, interrupts, cache misses, upgrades).
  Word load_general(Addr addr);
  void store_general(Addr addr, Word value);
  bool cas_general(Addr addr, Word expected, Word desired);
  Word fetch_add_general(Addr addr, Word delta);
  void compute_general(Cycles cycles);

  static uint32_t checked_threads(uint32_t n);

  MachineConfig cfg_;
  uint32_t num_threads_;
  MachineStats stats_;
  MemorySystem mem_;  // by value: hot paths reach it without a pointer chase
  std::vector<SimContext> ctxs_;  // sized once in the ctor; pointers stable
  SimContext* current_ = nullptr;
  // current_ when every fast-path precondition except interrupt arrival
  // holds, else null (see refresh_fast_ctx). The data-op fast paths guard on
  // this single pointer.
  SimContext* fast_ctx_ = nullptr;
  bool ran_ = false;
  bool fast_ok_ = false;  // no on_access hook && fast paths enabled
  bool smt_possible_ = false;       // num_threads_ > cfg_.cores, fixed
  Cycles lat_l1_hit_ = 0;           // cfg_.lat_issue + cfg_.lat_l1, fixed

  // Barrier state.
  uint32_t barrier_arrived_ = 0;
  Cycles barrier_clock_ = 0;
  uint64_t barrier_generation_ = 0;

  Rng setup_rng_;
  Rng sched_rng_;  // scheduler jitter (sched_jitter_window)
  TraceHooks trace_;
  ObsHooks obs_;
  Cycles sample_window_ = 0;  // 0 = counter sampling off
  Cycles next_sample_ = 0;    // next window boundary to report
  Cycles max_clock_seen_ = 0; // high-water mark driving window crossings
  // max_clock_seen_ while sampling is on, ~0 while off: the per-op window
  // check is then a single load+compare.
  Cycles sample_gate_ = ~Cycles{0};
};

// ---- Inline hot paths (DESIGN.md §10) -------------------------------------
//
// cur()/advance()/maybe_yield() and the data-op fast paths are header-inline
// so a workload loop compiles into straight-line code: callers see through
// the guard chain, keep the hot SimContext fields in registers, and only
// call out of line into the cold continuations (the general paths,
// sample-window crossings, and the multi-thread scheduler). Each fast path
// is op-for-op equivalent to its *_general twin for the cases it accepts:
// identical stat increments in identical order, identical advance()
// arguments, identical scheduling points. Every precondition is checked
// before anything is mutated, so bailing out replays the op from scratch
// with no double counting. Invariants relied on:
//   * !tx.active implies !tx.doomed (abort_tx only dooms active txs), so
//     neither check_doomed nor undo logging can be needed.
//   * fast_load/fast_store refuse when any transaction is live anywhere, so
//     conflict checks, tx tracking, and abort callbacks cannot fire.
//   * An L1 hit cannot fault (the first touch materialized the page) and
//     cannot evict, so requester_ attribution is never read.

inline Machine::SimContext& Machine::cur() {
  if (!current_) throw_off_fiber();
  return *current_;
}

inline const Machine::SimContext& Machine::cur() const {
  if (!current_) throw_off_fiber();
  return *current_;
}

inline void Machine::advance_ctx(SimContext& c, Cycles core_cycles,
                                 Cycles mem_cycles) {
  Cycles adj_core = core_cycles;
  if (smt_possible_ && sibling_active(c)) {
    adj_core = static_cast<Cycles>(
        static_cast<double>(core_cycles) * cfg_.smt_slowdown + 0.5);
  }
  c.clock += adj_core + mem_cycles;
  c.busy += adj_core + mem_cycles;
  // Sample-window counter sampling: report each window boundary the first
  // time any context's clock crosses it (emission is host-side only, so
  // sampling never perturbs the simulated timeline). sample_gate_ is the
  // high-water mark, or ~0 when sampling is off — one compare covers both.
  if (c.clock > sample_gate_) cross_sample_windows(c);
}

inline void Machine::advance(Cycles core_cycles, Cycles mem_cycles) {
  advance_ctx(cur(), core_cycles, mem_cycles);
}

inline void Machine::maybe_yield() {
  if (num_threads_ == 1) return;  // nothing to deschedule to
  maybe_yield_slow();
}

inline Word Machine::load(Addr addr) {
  SimContext* c = fast_ctx_;
  if (fast_op_ok(c) && addr % kWordBytes == 0) {
    if (BackingStore::Page* pg = mem_.backing().lookup_present(addr)) {
      if (Cycles lat = mem_.fast_load(*c->l1, line_of(addr))) {
        ++stats_.ops;
        advance_ctx(*c, lat, 0);
        Word v = pg->words[(addr % kPageBytes) / kWordBytes];
        maybe_yield();
        return v;
      }
    }
  }
  return load_general(addr);
}

inline void Machine::store(Addr addr, Word value) {
  SimContext* c = fast_ctx_;
  if (fast_op_ok(c) && addr % kWordBytes == 0) {
    if (BackingStore::Page* pg = mem_.backing().lookup_present(addr)) {
      if (Cycles lat = mem_.fast_store(*c->l1, c->core, line_of(addr))) {
        ++stats_.ops;
        advance_ctx(*c, lat, 0);
        pg->words[(addr % kPageBytes) / kWordBytes] = value;
        maybe_yield();
        return;
      }
    }
  }
  store_general(addr, value);
}

inline bool Machine::cas(Addr addr, Word expected, Word desired) {
  SimContext* c = fast_ctx_;
  if (fast_op_ok(c) && addr % kWordBytes == 0) {
    if (BackingStore::Page* pg = mem_.backing().lookup_present(addr)) {
      if (Cycles lat = mem_.fast_store(*c->l1, c->core, line_of(addr))) {
        ++stats_.ops;
        advance_ctx(*c, lat, 0);
        advance_ctx(*c, 4, 0);  // lock-prefixed overhead, as general path
        Word& slot = pg->words[(addr % kPageBytes) / kWordBytes];
        Word old = slot;
        bool ok = old == expected;
        if (ok) slot = desired;
        maybe_yield();
        return ok;
      }
    }
  }
  return cas_general(addr, expected, desired);
}

inline Word Machine::fetch_add(Addr addr, Word delta) {
  SimContext* c = fast_ctx_;
  if (fast_op_ok(c) && addr % kWordBytes == 0) {
    if (BackingStore::Page* pg = mem_.backing().lookup_present(addr)) {
      if (Cycles lat = mem_.fast_store(*c->l1, c->core, line_of(addr))) {
        ++stats_.ops;
        advance_ctx(*c, lat, 0);
        advance_ctx(*c, 4, 0);
        Word& slot = pg->words[(addr % kPageBytes) / kWordBytes];
        Word old = slot;
        slot = old + delta;
        maybe_yield();
        return old;
      }
    }
  }
  return fetch_add_general(addr, delta);
}

inline void Machine::compute(Cycles cycles) {
  SimContext* c = fast_ctx_;
  if (fast_op_ok(c)) {
    ++stats_.ops;
    advance_ctx(*c, cycles, 0);
    maybe_yield();
    return;
  }
  compute_general(cycles);
}

}  // namespace tsx::sim
