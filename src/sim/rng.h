#pragma once
// Deterministic PRNG used everywhere in the simulator and workloads.
// xoshiro256** seeded via splitmix64; no libstdc++ distribution objects so
// results are identical across standard-library implementations.

#include <cmath>
#include <cstdint>

namespace tsx::sim {

inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    // Lemire-style rejection-free mapping: bias negligible at our scales,
    // but keep a single rejection pass for exactness on small bounds.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  // Exponential with the given mean (> 0); used for interrupt arrivals.
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log1p(-u);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace tsx::sim
