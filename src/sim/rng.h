#pragma once
// Deterministic PRNG used everywhere in the simulator and workloads.
// xoshiro256** seeded via splitmix64; no libstdc++ distribution objects so
// results are identical across standard-library implementations.

#include <cmath>
#include <cstdint>

namespace tsx::sim {

inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    // Lemire-style rejection-free mapping: bias negligible at our scales,
    // but keep a single rejection pass for exactness on small bounds.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  // Exponential with the given mean (> 0); used for interrupt arrivals.
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log1p(-u);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipf(n, theta) sampler over [0, n) by rejection inversion of the bounding
// envelope (Hormann & Derflinger 1996), the scheme commons-rng and YCSB's
// scrambled generator build on. O(1) per draw with no per-element tables, so
// n can be in the millions, and numerically stable for theta near 1: every
// x^(1-theta) evaluation is phrased through log1p/expm1 helpers instead of
// pow, which cancels catastrophically as 1-theta -> 0.
class ZipfSampler {
 public:
  // n >= 1 elements; theta > 0 is the skew exponent (P(k) proportional to
  // 1/(k+1)^theta). theta == 1 is handled via the log branch of hIntegral.
  ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
    double nd = static_cast<double>(n);
    h_integral_x1_ = hIntegral(1.5) - 1.0;
    h_integral_num_elements_ = hIntegral(nd + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  // Draws from [0, n); rank 0 is the hottest element.
  uint64_t operator()(Rng& rng) const {
    if (n_ == 1) return 0;
    while (true) {
      double u = h_integral_num_elements_ +
                 rng.uniform() * (h_integral_x1_ - h_integral_num_elements_);
      double x = hIntegralInverse(u);
      double kd = x < 1.0 ? 1.0 : std::floor(x + 0.5);
      if (kd > static_cast<double>(n_)) kd = static_cast<double>(n_);
      // Accept k if u falls within its own bar of the histogram; the s_
      // shortcut accepts the body of every bar without evaluating h.
      if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd)) {
        return static_cast<uint64_t>(kd) - 1;
      }
    }
  }

 private:
  // Integral of the envelope h: x^(1-theta)/(1-theta), written as
  // log(x) * helper1((1-theta) log x) so the theta -> 1 limit (log x) is
  // exact instead of 0/0.
  double hIntegral(double x) const {
    double log_x = std::log(x);
    return helper2((1.0 - theta_) * log_x) * log_x;
  }

  double h(double x) const { return std::exp(-theta_ * std::log(x)); }

  double hIntegralInverse(double x) const {
    double t = x * (1.0 - theta_);
    if (t < -1.0) t = -1.0;  // round-off guard near the distribution head
    return std::exp(helper1(t) * x);
  }

  // helper1(x) = log1p(x)/x, continuous at 0.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * 0.5 + x * x / 3.0;
  }

  // helper2(x) = expm1(x)/x, continuous at 0.
  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * 0.5 + x * x / 6.0;
  }

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

}  // namespace tsx::sim
