#include "sim/types.h"

namespace tsx::sim {

const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kConflict: return "conflict";
    case AbortReason::kReadCapacity: return "read-capacity";
    case AbortReason::kWriteCapacity: return "write-capacity";
    case AbortReason::kExplicit: return "explicit";
    case AbortReason::kPageFault: return "page-fault";
    case AbortReason::kInterrupt: return "interrupt";
    case AbortReason::kUnsupportedInsn: return "unsupported-insn";
    case AbortReason::kCount: break;
  }
  return "?";
}

uint32_t status_for_abort(AbortReason r, uint8_t explicit_code) {
  using namespace xstatus;
  switch (r) {
    case AbortReason::kConflict:
      return kConflict | kRetry;
    case AbortReason::kReadCapacity:
      // Real Haswell reports L3 read-set evictions as conflicts; the paper
      // leans on this (Fig. 12 merges the two). No retry hint: retrying the
      // same oversized read set fails again.
      return kConflict;
    case AbortReason::kWriteCapacity:
      return kCapacity;
    case AbortReason::kExplicit:
      return kExplicit | pack_code(explicit_code);
    case AbortReason::kPageFault:
    case AbortReason::kUnsupportedInsn:
    case AbortReason::kInterrupt:
      return 0;  // none of the status bits set, like real asynchronous aborts
    case AbortReason::kNone:
    case AbortReason::kCount:
      break;
  }
  return 0;
}

MiscBucket misc_bucket_for(AbortReason r) {
  switch (r) {
    case AbortReason::kConflict:
      return MiscBucket::kMisc1;
    case AbortReason::kReadCapacity:
    case AbortReason::kWriteCapacity:
      // Capacity aborts are MISC2, the dedicated capacity counter. Note the
      // asymmetry with status_for_abort: the *status word* for a read-
      // capacity abort raises the CONFLICT bit (software cannot tell it from
      // a data conflict), but the performance counters do distinguish it —
      // the paper's Fig. 12 merge of conflict + read-capacity happens at the
      // reporting layer (htm::AbortClass), not here.
      return MiscBucket::kMisc2;
    case AbortReason::kExplicit:
    case AbortReason::kPageFault:
    case AbortReason::kUnsupportedInsn:
      return MiscBucket::kMisc3;
    case AbortReason::kInterrupt:
      return MiscBucket::kMisc5;
    case AbortReason::kNone:
    case AbortReason::kCount:
      break;
  }
  return MiscBucket::kMisc5;
}

}  // namespace tsx::sim
