#include "sim/backing_store.h"

#include <stdexcept>

namespace tsx::sim {

BackingStore::Page& BackingStore::page_for(Addr addr) {
  auto& slot = pages_[page_of(addr)];
  if (!slot) slot = std::make_unique<Page>();
  return *slot;
}

const BackingStore::Page* BackingStore::find_page(Addr addr) const {
  auto it = pages_.find(page_of(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

Word BackingStore::peek(Addr addr) const {
  if (addr % kWordBytes != 0) throw std::invalid_argument("unaligned peek");
  const Page* p = find_page(addr);
  if (!p) return 0;
  return p->words[(addr % kPageBytes) / kWordBytes];
}

void BackingStore::poke(Addr addr, Word value) {
  if (addr % kWordBytes != 0) throw std::invalid_argument("unaligned poke");
  page_for(addr).words[(addr % kPageBytes) / kWordBytes] = value;
}

bool BackingStore::present(Addr addr) const {
  const Page* p = find_page(addr);
  return p && p->present;
}

void BackingStore::make_present(Addr addr) { page_for(addr).present = true; }

void BackingStore::prefault(Addr addr, uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t first = page_of(addr);
  uint64_t last = page_of(addr + bytes - 1);
  for (uint64_t p = first; p <= last; ++p) {
    page_for(p * kPageBytes).present = true;
  }
}

}  // namespace tsx::sim
