#include "sim/backing_store.h"

namespace tsx::sim {

BackingStore::Page* BackingStore::lookup_slow(uint64_t pno) const {
  std::unique_ptr<Page>* slot = pages_.find(pno);
  if (!slot) return nullptr;
  Page* p = slot->get();
  // Only present pages enter the cache (lookup_present relies on it).
  if (p->present) {
    cache_no_ = pno;
    cache_page_ = p;
  }
  return p;
}

BackingStore::Page& BackingStore::materialize(uint64_t pno) {
  auto [slot, inserted] = pages_.try_emplace(pno);
  if (inserted) *slot = std::make_unique<Page>();
  Page* p = slot->get();
  if (p->present) {
    cache_no_ = pno;
    cache_page_ = p;
  }
  return *p;
}

void BackingStore::make_present(Addr addr) { page_for(addr).present = true; }

void BackingStore::prefault(Addr addr, uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t first = page_of(addr);
  uint64_t last = page_of(addr + bytes - 1);
  for (uint64_t p = first; p <= last; ++p) {
    page_for(p * kPageBytes).present = true;
  }
}

}  // namespace tsx::sim
