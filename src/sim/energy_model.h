#pragma once
// RAPL-like package-energy model.
//
// The paper reads chip energy through RAPL and validates it against ATX
// input measurements. RAPL package energy decomposes into (a) dynamic energy
// proportional to retired work and cache/memory events and (b) static +
// uncore power integrated over wall-clock time. We account exactly those
// terms from simulator event counts. Constants are calibrated to a desktop
// Haswell (84 W TDP, ~3.4 GHz): a fully-active 4-core run draws ~55-65 W,
// package idle ~14 W. EXPERIMENTS.md documents the calibration.

#include <cstdint>

#include "sim/types.h"

namespace tsx::sim {

struct EnergyParams {
  // Dynamic energy per event, in nanojoules.
  double nj_per_op = 0.45;        // per retired instruction-equivalent
  double nj_per_l1 = 0.12;        // per L1 access
  double nj_per_l2 = 0.65;        // per L2 access
  double nj_per_l3 = 3.2;         // per L3 access
  double nj_per_mem = 18.0;       // per DRAM access
  double nj_per_coherence = 1.1;  // per invalidation/forward message
  double nj_per_writeback = 2.4;  // per dirty writeback

  // Power, in watts.
  double w_core_active = 7.5;  // per core with >= 1 context executing
  double w_package_idle = 14.0;  // uncore + static, paid for the whole run
};

struct EnergyBreakdown {
  double dynamic_j = 0;
  double core_active_j = 0;
  double package_idle_j = 0;

  double total_j() const { return dynamic_j + core_active_j + package_idle_j; }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& p, double freq_ghz)
      : p_(p), freq_hz_(freq_ghz * 1e9) {}

  // `ops` counts retired simulated operations; cache counters come from the
  // memory system; `core_busy_cycles` sums, over cores, the cycles during
  // which the core had at least one active context; `wall_cycles` is the end
  // time of the run.
  EnergyBreakdown compute(uint64_t ops, uint64_t l1, uint64_t l2, uint64_t l3,
                          uint64_t mem, uint64_t coherence, uint64_t writebacks,
                          double core_busy_cycles, Cycles wall_cycles) const;

  double seconds(Cycles c) const { return static_cast<double>(c) / freq_hz_; }

 private:
  EnergyParams p_;
  double freq_hz_;
};

}  // namespace tsx::sim
