#pragma once
// Set-associative cache with true-LRU replacement. Caches track presence and
// per-line transactional flags; data values live in the BackingStore.
//
// Flag usage by level:
//   * L1: tx_write_mask — which hw threads have this line in their tx
//     write-set. Evicting such a line is a write-capacity abort.
//   * L3: tx_read_mask — which hw threads have this line in their tx
//     read-set (the L3 is inclusive, so an L3 eviction means the line left
//     the whole cache hierarchy: read-capacity abort). L3 lines also carry
//     the directory state: which cores' private caches hold the line, and
//     which core (if any) holds it modified.
//
// probe/touch are header-inline: they run on every simulated access and the
// way scan is a handful of compares over one contiguous set. The eviction
// callback on fill() is a util::FnRef — constructed for free at the call
// site, no std::function allocation on the miss path.

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"
#include "util/fn_ref.h"

namespace tsx::sim {

struct CacheLine {
  // Invalid lines carry kNoTag so probe() is a single compare per way (no
  // real line address is ever ~0: the simulated address space is < 2^52).
  // `valid` mirrors `tag != kNoTag` for readers; both are kept in sync.
  static constexpr uint64_t kNoTag = ~0ull;

  uint64_t tag = kNoTag;  // full line address (addr / 64), or kNoTag
  uint64_t lru = 0;
  bool valid = false;
  bool dirty = false;
  uint8_t tx_write_mask = 0;  // L1 only
  uint8_t tx_read_mask = 0;   // L3 only
  uint8_t sharers = 0;        // L3 only: cores whose private caches hold it
  int8_t dirty_owner = -1;    // L3 only: core holding it modified, or -1

  void reset(uint64_t line_addr) {
    tag = line_addr;
    valid = true;
    dirty = false;
    tx_write_mask = 0;
    tx_read_mask = 0;
    sharers = 0;
    dirty_owner = -1;
  }
};

class Cache {
 public:
  Cache(const CacheGeometry& geom, const char* name);

  // Looks up without touching replacement state. The MRU memo short-circuits
  // the way scan for back-to-back hits on one line; it is self-validating
  // (the memoed line still holding the asked-for tag proves it was neither
  // invalidated nor re-filled), so it cannot change any probe result.
  CacheLine* probe(uint64_t line_addr) {
    if (mru_->tag == line_addr) return mru_;
    CacheLine* set = set_begin(set_index(line_addr));
    for (uint32_t w = 0; w < ways_; ++w) {
      if (set[w].tag == line_addr) return mru_ = &set[w];
    }
    return nullptr;
  }
  const CacheLine* probe(uint64_t line_addr) const {
    return const_cast<Cache*>(this)->probe(line_addr);
  }

  // Refreshes replacement state of a line returned by probe(). Split from
  // touch() so speculative fast paths can look up first and only commit the
  // LRU update once every other precondition holds.
  void bump(CacheLine* line) { line->lru = ++tick_; }

  // Looks up and, on hit, refreshes LRU.
  CacheLine* touch(uint64_t line_addr) {
    CacheLine* line = probe(line_addr);
    if (line) bump(line);
    return line;
  }

  // Allocates a slot for `line_addr` (which must not be present), invoking
  // `on_evict` with the victim line first if a valid line is displaced.
  // Returns the (re-initialized) line.
  CacheLine* fill(uint64_t line_addr,
                  util::FnRef<void(const CacheLine&)> on_evict);

  // Drops the line if present (no writeback — caller decides what the
  // invalidation means).
  void invalidate(uint64_t line_addr);

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }
  const char* name() const { return name_; }

  // Counts currently-valid lines (tests / debugging).
  uint64_t valid_lines() const;

 private:
  // sets_ is validated as a power of two, so the modulo is a mask — probe()
  // runs on every simulated access and a runtime integer divide would
  // dominate it.
  uint32_t set_index(uint64_t line_addr) const {
    return static_cast<uint32_t>(line_addr) & set_mask_;
  }
  CacheLine* set_begin(uint32_t set) { return &lines_[set * ways_]; }

  uint32_t sets_;
  uint32_t set_mask_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  std::vector<CacheLine> lines_;
  // Most-recently probed-hit line; always a valid pointer into lines_ (never
  // null, so the hot compare needs no null check). See probe().
  CacheLine* mru_;
  const char* name_;
};

}  // namespace tsx::sim
