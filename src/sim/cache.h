#pragma once
// Set-associative cache with true-LRU replacement. Caches track presence and
// per-line transactional flags; data values live in the BackingStore.
//
// Flag usage by level:
//   * L1: tx_write_mask — which hw threads have this line in their tx
//     write-set. Evicting such a line is a write-capacity abort.
//   * L3: tx_read_mask — which hw threads have this line in their tx
//     read-set (the L3 is inclusive, so an L3 eviction means the line left
//     the whole cache hierarchy: read-capacity abort). L3 lines also carry
//     the directory state: which cores' private caches hold the line, and
//     which core (if any) holds it modified.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace tsx::sim {

struct CacheLine {
  uint64_t tag = 0;  // full line address (addr / 64)
  uint64_t lru = 0;
  bool valid = false;
  bool dirty = false;
  uint8_t tx_write_mask = 0;  // L1 only
  uint8_t tx_read_mask = 0;   // L3 only
  uint8_t sharers = 0;        // L3 only: cores whose private caches hold it
  int8_t dirty_owner = -1;    // L3 only: core holding it modified, or -1

  void reset(uint64_t line_addr) {
    tag = line_addr;
    valid = true;
    dirty = false;
    tx_write_mask = 0;
    tx_read_mask = 0;
    sharers = 0;
    dirty_owner = -1;
  }
};

class Cache {
 public:
  Cache(const CacheGeometry& geom, const char* name);

  // Looks up without touching replacement state.
  CacheLine* probe(uint64_t line_addr);
  const CacheLine* probe(uint64_t line_addr) const;

  // Looks up and, on hit, refreshes LRU.
  CacheLine* touch(uint64_t line_addr);

  // Allocates a slot for `line_addr` (which must not be present), invoking
  // `on_evict` with the victim line first if a valid line is displaced.
  // Returns the (re-initialized) line.
  CacheLine* fill(uint64_t line_addr,
                  const std::function<void(const CacheLine&)>& on_evict);

  // Drops the line if present (no writeback — caller decides what the
  // invalidation means).
  void invalidate(uint64_t line_addr);

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }
  const char* name() const { return name_; }

  // Counts currently-valid lines (tests / debugging).
  uint64_t valid_lines() const;

 private:
  uint32_t set_index(uint64_t line_addr) const {
    return static_cast<uint32_t>(line_addr % sets_);
  }
  CacheLine* set_begin(uint32_t set) { return &lines_[set * ways_]; }

  uint32_t sets_;
  uint32_t ways_;
  uint64_t tick_ = 0;
  std::vector<CacheLine> lines_;
  const char* name_;
};

}  // namespace tsx::sim
