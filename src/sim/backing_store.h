#pragma once
// Paged word-granular backing store for the simulated physical address space,
// plus the page-table "present" bits used for the minor-fault model.
//
// Values live here exclusively; caches model timing/presence only. Pages are
// materialized lazily (zero-filled). A page starts *not present*: the first
// access from simulated code raises a minor fault (serviced in non-tx mode,
// aborting any enclosing hardware transaction — the behaviour behind the
// paper's misc3 aborts in vacation).
//
// Hot-path layout (DESIGN.md §10): the page directory is an open-addressed
// util::FlatTable keyed by page number, fronted by a one-entry last-page
// cache. Pages are heap-allocated (unique_ptr slots), so a cached Page* stays
// valid across table growth, and pages are never freed — the cache needs no
// invalidation. peek/poke/present are inline: the common case is a cache hit
// followed by a single indexed load/store.

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "sim/types.h"
#include "util/flat_table.h"

namespace tsx::sim {

class BackingStore {
 public:
  struct Page {
    bool present = false;
    std::array<Word, kWordsPerPage> words{};
  };

  // Host-side value access (no timing, no faults). Used by the machine for
  // the actual data movement and by tests/validators for inspection.
  Word peek(Addr addr) const {
    if (addr % kWordBytes != 0) throw std::invalid_argument("unaligned peek");
    const Page* p = lookup(addr);
    if (!p) return 0;
    return p->words[(addr % kPageBytes) / kWordBytes];
  }

  void poke(Addr addr, Word value) {
    if (addr % kWordBytes != 0) throw std::invalid_argument("unaligned poke");
    page_for(addr).words[(addr % kPageBytes) / kWordBytes] = value;
  }

  bool present(Addr addr) const {
    const Page* p = lookup(addr);
    return p && p->present;
  }

  void make_present(Addr addr);

  // Marks [addr, addr+bytes) present without cost: models memory that was
  // touched before the measured region (or by a pre-faulting allocator).
  void prefault(Addr addr, uint64_t bytes);

  uint64_t pages_allocated() const { return pages_.size(); }

  // Hot-path lookup: materialized page holding addr, or null. One compare on
  // the last-page cache; the table probe is the cold continuation.
  Page* lookup(Addr addr) const {
    uint64_t pno = page_of(addr);
    if (pno == cache_no_) return cache_page_;
    return lookup_slow(pno);
  }

  // Hot-path lookup that returns only *present* pages. The last-page cache
  // is filled exclusively with present pages (and presence is permanent), so
  // a cache hit needs no present check — the fast paths' common case is the
  // single compare.
  Page* lookup_present(Addr addr) const {
    uint64_t pno = page_of(addr);
    if (pno == cache_no_) return cache_page_;
    Page* p = lookup_slow(pno);
    return (p && p->present) ? p : nullptr;
  }

 private:
  Page& page_for(Addr addr) {
    if (Page* p = lookup(addr)) return *p;
    return materialize(page_of(addr));
  }

  Page* lookup_slow(uint64_t pno) const;
  Page& materialize(uint64_t pno);

  mutable util::FlatTable<std::unique_ptr<Page>> pages_;
  // Last-page cache, holding only *present* pages; valid whenever
  // cache_no_ != kNoPage (pages are never freed and never lose presence, so
  // a cached pointer cannot dangle and a cached page cannot fault).
  static constexpr uint64_t kNoPage = ~uint64_t{0};
  mutable uint64_t cache_no_ = kNoPage;
  mutable Page* cache_page_ = nullptr;
};

}  // namespace tsx::sim
