#pragma once
// Paged word-granular backing store for the simulated physical address space,
// plus the page-table "present" bits used for the minor-fault model.
//
// Values live here exclusively; caches model timing/presence only. Pages are
// materialized lazily (zero-filled). A page starts *not present*: the first
// access from simulated code raises a minor fault (serviced in non-tx mode,
// aborting any enclosing hardware transaction — the behaviour behind the
// paper's misc3 aborts in vacation).

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/types.h"

namespace tsx::sim {

class BackingStore {
 public:
  struct Page {
    bool present = false;
    std::array<Word, kWordsPerPage> words{};
  };

  // Host-side value access (no timing, no faults). Used by the machine for
  // the actual data movement and by tests/validators for inspection.
  Word peek(Addr addr) const;
  void poke(Addr addr, Word value);

  bool present(Addr addr) const;
  void make_present(Addr addr);

  // Marks [addr, addr+bytes) present without cost: models memory that was
  // touched before the measured region (or by a pre-faulting allocator).
  void prefault(Addr addr, uint64_t bytes);

  uint64_t pages_allocated() const { return pages_.size(); }

 private:
  Page& page_for(Addr addr);
  const Page* find_page(Addr addr) const;

  mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace tsx::sim
