#include "sim/memory_system.h"

#include <bit>
#include <stdexcept>

namespace tsx::sim {

MemorySystem::MemorySystem(const MachineConfig& cfg, uint32_t num_ctxs,
                           MemStats* stats, AbortFn on_abort)
    : cfg_(cfg),
      cores_(cfg.cores),
      num_ctxs_(num_ctxs),
      lat_l1_hit_(cfg.lat_issue + cfg.lat_l1),
      stats_(stats),
      on_abort_(std::move(on_abort)),
      l3_(cfg.l3, "L3"),
      tx_(num_ctxs) {
  if (num_ctxs > kMaxCtxs) throw std::invalid_argument("too many contexts");
  l1_.reserve(cores_);
  l2_.reserve(cores_);
  for (uint32_t c = 0; c < cores_; ++c) {
    l1_.emplace_back(cfg.l1, "L1");
    l2_.emplace_back(cfg.l2, "L2");
  }
}

void MemorySystem::tx_begin(CtxId ctx, Cycles begin_clock) {
  TxTrack& t = tx_[ctx];
  if (t.active) throw std::logic_error("tx_begin while active");
  t.active = true;
  t.begin_clock = begin_clock;
  ++active_tx_count_;
}

void MemorySystem::tx_clear(CtxId ctx) {
  TxTrack& t = tx_[ctx];
  if (!t.active) return;
  uint32_t core = core_of(ctx);
  uint8_t bit = static_cast<uint8_t>(1u << ctx);
  for (uint64_t line : t.write_lines) {
    if (CacheLine* l = l1_[core].probe(line)) {
      l->tx_write_mask &= static_cast<uint8_t>(~bit);
    }
  }
  for (uint64_t line : t.read_lines) {
    if (CacheLine* l = l3_.probe(line)) {
      l->tx_read_mask &= static_cast<uint8_t>(~bit);
    }
  }
  t.write_lines.clear();
  t.read_lines.clear();
  t.active = false;
  --active_tx_count_;
}

void MemorySystem::check_conflicts(CtxId requester, uint64_t line,
                                   bool is_write) {
  if (active_tx_count_ == 0) return;
  if (active_tx_count_ == 1 && tx_[requester].active) return;
  bool requester_in_tx = tx_[requester].active;
  Cycles requester_begin = tx_[requester].begin_clock;
  for (CtxId other = 0; other < num_ctxs_; ++other) {
    if (other == requester || !tx_[other].active) continue;
    const TxTrack& t = tx_[other];
    bool hit = t.write_lines.count(line) ||
               (is_write && !cfg_.tsx_ignore_read_set_conflicts &&
                t.read_lines.count(line));
    if (hit) {
      // The existing (victim) transaction aborts, requester-wins style.
      Cycles victim_begin = t.begin_clock;
      on_abort_(other, AbortReason::kConflict, line, requester);
      // Mutual kill: conflicts on bouncing lines usually abort both parties
      // on real TSX. The older transaction survives (here: the requester
      // dies only if the victim began earlier), so one transaction always
      // makes progress.
      if (cfg_.mutual_kill_conflicts && requester_in_tx &&
          victim_begin < requester_begin) {
        on_abort_(requester, AbortReason::kConflict, line, other);
        requester_in_tx = false;  // already doomed; don't re-abort
      }
    }
  }
}

void MemorySystem::drop_sharer_if_absent(uint32_t core, uint64_t line) {
  if (l1_[core].probe(line) || l2_[core].probe(line)) return;
  if (CacheLine* l3l = l3_.probe(line)) {
    l3l->sharers &= static_cast<uint8_t>(~(1u << core));
    if (l3l->dirty_owner == static_cast<int8_t>(core)) l3l->dirty_owner = -1;
  }
}

void MemorySystem::on_l1_evict(uint32_t core, CacheLine victim) {
  if (victim.tx_write_mask) {
    if (on_evict_) on_evict_(requester_, 1, victim.tag);
    uint8_t mask = victim.tx_write_mask;
    for (CtxId ctx = 0; ctx < num_ctxs_; ++ctx) {
      if (mask & (1u << ctx)) {
        on_abort_(ctx, AbortReason::kWriteCapacity, victim.tag, requester_);
      }
    }
  }
  // L1 victims fall into the L2 (which typically still holds the line since
  // fills install in both). Dirty data must not be lost.
  if (CacheLine* l2l = l2_[core].probe(victim.tag)) {
    l2l->dirty = l2l->dirty || victim.dirty;
    return;
  }
  if (victim.dirty) {
    CacheLine* nl =
        l2_[core].fill(victim.tag, [&](const CacheLine& v) { on_l2_evict(core, v); });
    nl->dirty = true;
    return;
  }
  // Clean and gone from the private hierarchy: update directory state.
  drop_sharer_if_absent(core, victim.tag);
}

void MemorySystem::on_l2_evict(uint32_t core, CacheLine victim) {
  if (victim.dirty) {
    // Writeback to the (inclusive) L3.
    ++stats_->writebacks;
    if (CacheLine* l3l = l3_.probe(victim.tag)) {
      l3l->dirty = true;
      if (l3l->dirty_owner == static_cast<int8_t>(core) &&
          !l1_[core].probe(victim.tag)) {
        l3l->dirty_owner = -1;
      }
    }
  }
  drop_sharer_if_absent(core, victim.tag);
}

void MemorySystem::on_l3_evict(CacheLine victim) {
  // Read-capacity aborts first: the line is leaving the hierarchy.
  if (victim.tx_read_mask) {
    if (on_evict_) on_evict_(requester_, 3, victim.tag);
    uint8_t mask = victim.tx_read_mask;
    for (CtxId ctx = 0; ctx < num_ctxs_; ++ctx) {
      if (mask & (1u << ctx)) {
        on_abort_(ctx, AbortReason::kReadCapacity, victim.tag, requester_);
      }
    }
  }
  // Inclusion: back-invalidate every private copy.
  uint8_t sharers = victim.sharers;
  for (uint32_t core = 0; core < cores_; ++core) {
    if (!(sharers & (1u << core))) continue;
    ++stats_->invalidations;
    if (CacheLine* l1l = l1_[core].probe(victim.tag)) {
      if (l1l->tx_write_mask) {
        if (on_evict_) on_evict_(requester_, 1, victim.tag);
        uint8_t mask = l1l->tx_write_mask;
        for (CtxId ctx = 0; ctx < num_ctxs_; ++ctx) {
          if (mask & (1u << ctx)) {
            on_abort_(ctx, AbortReason::kWriteCapacity, victim.tag, requester_);
          }
        }
      }
      l1_[core].invalidate(victim.tag);
    }
    l2_[core].invalidate(victim.tag);
  }
  if (victim.dirty || victim.dirty_owner >= 0) ++stats_->writebacks;
}

void MemorySystem::invalidate_other_private(uint32_t keep_core,
                                            CacheLine* l3_line) {
  uint64_t line = l3_line->tag;
  uint8_t others =
      l3_line->sharers & static_cast<uint8_t>(~(1u << keep_core));
  for (uint32_t core = 0; core < cores_; ++core) {
    if (!(others & (1u << core))) continue;
    ++stats_->invalidations;
    if (CacheLine* l1l = l1_[core].probe(line)) {
      // A tx-written line being stolen by another core: conflict semantics
      // are handled by check_conflicts via the tx sets; here we only drop
      // the stale copy (the owning tx has already been aborted).
      if (l1l->dirty) l3_line->dirty = true;
      l1_[core].invalidate(line);
    }
    if (CacheLine* l2l = l2_[core].probe(line)) {
      if (l2l->dirty) l3_line->dirty = true;
      l2_[core].invalidate(line);
    }
  }
  l3_line->sharers &= static_cast<uint8_t>(1u << keep_core);
  if (l3_line->dirty_owner >= 0 &&
      l3_line->dirty_owner != static_cast<int8_t>(keep_core)) {
    l3_line->dirty_owner = -1;
  }
}

Cycles MemorySystem::access(CtxId ctx, Addr addr, bool is_write, bool tx_mode) {
  uint64_t line = line_of(addr);
  uint32_t core = core_of(ctx);
  requester_ = ctx;  // abort attribution for everything this access triggers
  uint8_t ctx_bit = static_cast<uint8_t>(1u << ctx);
  uint8_t core_bit = static_cast<uint8_t>(1u << core);

  if (is_write) {
    ++stats_->stores;
  } else {
    ++stats_->loads;
  }

  // Requester-wins conflict resolution against all other live transactions.
  check_conflicts(ctx, line, is_write);

  Cycles lat = cfg_.lat_issue;
  CacheLine* l1l = l1_[core].touch(line);
  CacheLine* l3l = nullptr;

  if (l1l) {
    ++stats_->l1_hits;
    lat += cfg_.lat_l1;
    if (is_write) {
      l3l = l3_.probe(line);
      if (l3l && (l3l->sharers & static_cast<uint8_t>(~core_bit))) {
        lat += cfg_.lat_upgrade;
        invalidate_other_private(core, l3l);
      }
      if (l3l) l3l->dirty_owner = static_cast<int8_t>(core);
      l1l->dirty = true;
    }
  } else if (CacheLine* l2l = l2_[core].touch(line)) {
    ++stats_->l2_hits;
    lat += cfg_.lat_l2;
    if (is_write) {
      l3l = l3_.probe(line);
      if (l3l && (l3l->sharers & static_cast<uint8_t>(~core_bit))) {
        lat += cfg_.lat_upgrade;
        invalidate_other_private(core, l3l);
      }
      if (l3l) l3l->dirty_owner = static_cast<int8_t>(core);
    }
    // Promote into L1.
    bool was_dirty = l2l->dirty;
    l1l = l1_[core].fill(line,
                         [&](const CacheLine& v) { on_l1_evict(core, v); });
    l1l->dirty = was_dirty || is_write;
  } else {
    l3l = l3_.touch(line);
    if (l3l) {
      ++stats_->l3_hits;
      // Dirty in another core's private cache: cache-to-cache forward.
      if (l3l->dirty_owner >= 0 &&
          l3l->dirty_owner != static_cast<int8_t>(core)) {
        ++stats_->c2c_transfers;
        lat += cfg_.lat_c2c;
        uint32_t owner = static_cast<uint32_t>(l3l->dirty_owner);
        if (is_write) {
          invalidate_other_private(core, l3l);
        } else {
          // Downgrade the owner to shared; data written back to L3.
          if (CacheLine* ol = l1_[owner].probe(line)) ol->dirty = false;
          if (CacheLine* ol = l2_[owner].probe(line)) ol->dirty = false;
          l3l->dirty = true;
          l3l->dirty_owner = -1;
        }
      } else {
        lat += cfg_.lat_l3;
        if (is_write && (l3l->sharers & static_cast<uint8_t>(~core_bit))) {
          lat += cfg_.lat_upgrade;
          invalidate_other_private(core, l3l);
        }
      }
    } else {
      ++stats_->mem_accesses;
      lat += cfg_.lat_mem;
      l3l = l3_.fill(line, [&](const CacheLine& v) { on_l3_evict(v); });
    }
    l3l->sharers |= core_bit;
    if (is_write) l3l->dirty_owner = static_cast<int8_t>(core);
    // Fill the private levels.
    CacheLine* l2n =
        l2_[core].fill(line, [&](const CacheLine& v) { on_l2_evict(core, v); });
    l2n->dirty = false;
    l1l = l1_[core].fill(line,
                         [&](const CacheLine& v) { on_l1_evict(core, v); });
    l1l->dirty = is_write;
  }

  // Transactional tracking for the requester. The L1/L3 fills above may have
  // aborted the requester itself (self-eviction of its own tx line); the
  // Machine checks the doomed flag after this returns, so tracking a line
  // for an already-cleared transaction must be avoided.
  if (tx_mode && tx_[ctx].active) {
    if (is_write) {
      tx_[ctx].write_lines.insert(line);
      l1l->tx_write_mask |= ctx_bit;
    } else {
      tx_[ctx].read_lines.insert(line);
      if (!l3l) l3l = l3_.probe(line);
      if (l3l) l3l->tx_read_mask |= ctx_bit;
    }
  }
  return lat;
}

}  // namespace tsx::sim
