#include "core/runtime.h"

#include <stdexcept>

#include "mem/layout.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"

namespace tsx::core {

namespace {

sim::MemStats diff(const sim::MemStats& a, const sim::MemStats& b) {
  sim::MemStats d;
  d.loads = a.loads - b.loads;
  d.stores = a.stores - b.stores;
  d.l1_hits = a.l1_hits - b.l1_hits;
  d.l2_hits = a.l2_hits - b.l2_hits;
  d.l3_hits = a.l3_hits - b.l3_hits;
  d.mem_accesses = a.mem_accesses - b.mem_accesses;
  d.c2c_transfers = a.c2c_transfers - b.c2c_transfers;
  d.invalidations = a.invalidations - b.invalidations;
  d.writebacks = a.writebacks - b.writebacks;
  d.page_faults = a.page_faults - b.page_faults;
  return d;
}

sim::TxStats diff(const sim::TxStats& a, const sim::TxStats& b) {
  sim::TxStats d;
  d.started = a.started - b.started;
  d.committed = a.committed - b.committed;
  for (size_t i = 0; i < d.aborts_by_reason.size(); ++i) {
    d.aborts_by_reason[i] = a.aborts_by_reason[i] - b.aborts_by_reason[i];
  }
  for (size_t i = 0; i < d.aborts_by_misc.size(); ++i) {
    d.aborts_by_misc[i] = a.aborts_by_misc[i] - b.aborts_by_misc[i];
  }
  return d;
}

sim::MachineStats diff(const sim::MachineStats& a, const sim::MachineStats& b) {
  sim::MachineStats d;
  d.mem = diff(a.mem, b.mem);
  d.tx = diff(a.tx, b.tx);
  d.ops = a.ops - b.ops;
  d.interrupts = a.interrupts - b.interrupts;
  d.core_busy_cycles = a.core_busy_cycles - b.core_busy_cycles;
  return d;
}

htm::RtmStats diff(const htm::RtmStats& a, const htm::RtmStats& b) {
  htm::RtmStats d;
  d.transactions = a.transactions - b.transactions;
  d.attempts = a.attempts - b.attempts;
  d.commits = a.commits - b.commits;
  d.fallbacks = a.fallbacks - b.fallbacks;
  for (size_t i = 0; i < d.aborts_by_class.size(); ++i) {
    d.aborts_by_class[i] = a.aborts_by_class[i] - b.aborts_by_class[i];
  }
  for (size_t i = 0; i < d.aborts_by_reason.size(); ++i) {
    d.aborts_by_reason[i] = a.aborts_by_reason[i] - b.aborts_by_reason[i];
  }
  d.cycles_committed = a.cycles_committed - b.cycles_committed;
  d.cycles_aborted = a.cycles_aborted - b.cycles_aborted;
  d.cycles_fallback = a.cycles_fallback - b.cycles_fallback;
  return d;
}

stm::StmStats diff(const stm::StmStats& a, const stm::StmStats& b) {
  stm::StmStats d;
  d.transactions = a.transactions - b.transactions;
  d.starts = a.starts - b.starts;
  d.commits = a.commits - b.commits;
  for (size_t i = 0; i < d.aborts_by_cause.size(); ++i) {
    d.aborts_by_cause[i] = a.aborts_by_cause[i] - b.aborts_by_cause[i];
  }
  d.extensions = a.extensions - b.extensions;
  d.cycles_committed = a.cycles_committed - b.cycles_committed;
  d.cycles_aborted = a.cycles_aborted - b.cycles_aborted;
  return d;
}

}  // namespace

TxRuntime::TxRuntime(RunConfig cfg) : cfg_(std::move(cfg)) {
  machine_ = std::make_unique<sim::Machine>(cfg_.machine, cfg_.threads);
  heap_ = std::make_unique<mem::SimHeap>(*machine_, cfg_.heap);

  if (cfg_.obs.enabled) {
    pmu_ = std::make_unique<obs::Pmu>(cfg_.threads);
    sink_ = std::make_unique<obs::TraceSink>(cfg_.obs.capacity);
    sink_->set_pmu(pmu_.get());
    if (cfg_.obs.metrics.window_cycles > 0) {
      hub_ = std::make_unique<obs::MetricsHub>(cfg_.obs.metrics);
      sink_->set_hub(hub_.get());
    }
    obs::TraceSink* s = sink_.get();
    sim::ObsHooks hooks;
    hooks.on_tx_begin = [s](CtxId c, Cycles t) { s->tx_begin(c, t); };
    hooks.on_tx_commit = [s](CtxId c, Cycles t) { s->tx_commit(c, t); };
    hooks.on_tx_abort = [s](CtxId c, Cycles t, sim::AbortReason r,
                            uint64_t line, CtxId attacker) {
      s->tx_abort(c, t, r, line, attacker);
    };
    hooks.on_tx_evict = [s](CtxId c, Cycles t, int level, uint64_t line) {
      s->evict(c, t, level, line);
    };
    if (cfg_.obs.sample_interval) {
      hooks.on_sample_window = [s](Cycles t, const sim::MachineStats& st) {
        s->energy_sample(t, st);
      };
    }
    machine_->set_obs_hooks(std::move(hooks), cfg_.obs.sample_interval);
  }

  // Runtime region: the backends' synchronization objects, one line each
  // (assigned in executors.cpp). All initialization is host-side pokes.
  machine_->prefault(mem::kRuntimeRegionBase, sim::kPageBytes);
  exec_ = make_executor(cfg_, ExecutorEnv{machine_.get(), heap_.get(),
                                          &observer_, sink_.get()});

  for (CtxId i = 0; i < cfg_.threads; ++i) {
    // Distinct, deterministic per-thread workload seeds.
    ctxs_.emplace_back(new TxCtx(*this, i, cfg_.seed * 1000003ull + i));
  }
}

TxRuntime::~TxRuntime() {
  if (sink_ && !cfg_.obs.label.empty()) {
    obs::Capture c = obs::make_capture(*sink_, cfg_.obs.label,
                                       cfg_.machine.freq_ghz, cfg_.threads);
    c.pmu = pmu_data();
    c.metrics = metrics_data();
    obs::Registry::global().add(std::move(c));
  }
}

std::optional<obs::MetricsData> TxRuntime::metrics_data() {
  if (!hub_) return std::nullopt;
  return hub_->finalize(ran_ ? machine_->wall() : 0);
}

std::optional<obs::PmuData> TxRuntime::pmu_data() const {
  if (!pmu_) return std::nullopt;
  std::vector<Cycles> finish(cfg_.threads, 0);
  std::vector<Cycles> busy(cfg_.threads, 0);
  if (ran_) {
    for (CtxId i = 0; i < cfg_.threads; ++i) {
      finish[i] = machine_->ctx_finish(i);
      busy[i] = machine_->ctx_busy(i);
    }
  }
  obs::PmuData d = pmu_->finalize(
      machine_->snapshot(), ran_ ? machine_->wall() : 0, finish, busy,
      ran_ ? machine_->core_busy_cycles() : 0.0, cfg_.machine.energy,
      cfg_.machine.freq_ghz);
  // Heap placement counters ride along with the PMU data (perf-stat "heap"
  // block, counter digest, manifest) but come straight from the allocator.
  const mem::HeapStats& hs = heap_->stats();
  d.heap.present = true;
  d.heap.policy = mem::placement_policy_name(cfg_.heap.policy);
  d.heap.allocs = hs.allocs;
  d.heap.frees = hs.frees;
  d.heap.refills = hs.refills;
  d.heap.bytes_live = hs.bytes_live;
  d.heap.bytes_peak = hs.bytes_peak;
  d.heap.bytes_padding = hs.bytes_padding;
  d.heap.set_allocs = hs.set_allocs;
  return d;
}

void TxRuntime::run(const std::function<void(TxCtx&)>& worker) {
  std::vector<std::function<void(TxCtx&)>> workers(cfg_.threads, worker);
  run(std::move(workers));
}

void TxRuntime::run(std::vector<std::function<void(TxCtx&)>> workers) {
  if (ran_) throw std::logic_error("TxRuntime::run called twice");
  if (workers.size() != cfg_.threads) {
    throw std::invalid_argument("worker count != thread count");
  }
  ran_ = true;
  for (CtxId i = 0; i < cfg_.threads; ++i) {
    TxCtx* ctx = ctxs_[i].get();
    auto fn = std::move(workers[i]);
    machine_->set_thread(i, [ctx, fn = std::move(fn)] { fn(*ctx); });
  }
  machine_->run();
}

Addr TxRuntime::alloc_elide_lines(uint32_t nlines) {
  Addr a = mem::kElideRegionBase + next_elide_line_ * sim::kLineBytes;
  next_elide_line_ += nlines;
  machine_->prefault(a, uint64_t{nlines} * sim::kLineBytes);
  return a;
}

void TxRuntime::mark_measurement_start() {
  mark_stats_ = machine_->snapshot();
  mark_wall_ = machine_->wall();
  mark_core_busy_ = machine_->core_busy_cycles();
  mark_rtm_ = exec_->rtm_stats();
  mark_stm_ = exec_->stm_stats();
}

RunReport TxRuntime::report() const {
  RunReport r;
  sim::MachineStats end = machine_->snapshot();
  end.core_busy_cycles = machine_->core_busy_cycles();
  sim::Cycles end_wall = machine_->wall();

  if (mark_stats_) {
    sim::MachineStats m0 = *mark_stats_;
    m0.core_busy_cycles = mark_core_busy_;
    r.machine = diff(end, m0);
    r.wall_cycles = end_wall - mark_wall_;
    r.rtm = diff(exec_->rtm_stats(), mark_rtm_);
    r.stm = diff(exec_->stm_stats(), mark_stm_);
  } else {
    r.machine = end;
    r.wall_cycles = end_wall;
    r.rtm = exec_->rtm_stats();
    r.stm = exec_->stm_stats();
  }

  r.rtm_sites = exec_->rtm_site_stats();
  r.heap = heap_->stats();
  r.heap_policy = cfg_.heap.policy;

  sim::EnergyModel em(cfg_.machine.energy, cfg_.machine.freq_ghz);
  r.seconds = em.seconds(r.wall_cycles);
  const sim::MemStats& ms = r.machine.mem;
  r.energy = em.compute(r.machine.ops, ms.l1_accesses(), ms.l2_accesses(),
                        ms.l3_accesses(), ms.mem_accesses,
                        ms.invalidations + ms.c2c_transfers, ms.writebacks,
                        r.machine.core_busy_cycles, r.wall_cycles);
  return r;
}

void TxRuntime::execute_atomic(TxCtx& ctx, util::FnRef<void()> body,
                               uint32_t site) {
  if (ctx.in_atomic_) {  // flat nesting
    body();
    return;
  }
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&ctx.in_atomic_};
  ctx.in_atomic_ = true;

  // Attempt/retry/fallback structure, heap scoping and observer bracketing
  // all live behind the executor interface.
  exec_->execute(body, site);
}

// ---- TxCtx ----

Word TxCtx::load(Addr a) {
  if (in_atomic_) return rt_.exec_->load(id_, a);
  return rt_.machine_->load(a);
}

void TxCtx::store(Addr a, Word v) {
  if (in_atomic_) {
    rt_.exec_->store(id_, a, v);
    return;
  }
  rt_.machine_->store(a, v);
}

bool TxCtx::cas(Addr a, Word expected, Word desired) {
  if (in_atomic_ && rt_.exec_->stm_active(id_)) {
    throw std::logic_error("raw CAS inside an STM transaction");
  }
  return rt_.machine_->cas(a, expected, desired);
}

Word TxCtx::fetch_add(Addr a, Word delta) {
  if (in_atomic_ && rt_.exec_->stm_active(id_)) {
    throw std::logic_error("raw fetch_add inside an STM transaction");
  }
  return rt_.machine_->fetch_add(a, delta);
}

void TxCtx::compute(Cycles c) { rt_.machine_->compute(c); }
void TxCtx::pause() { rt_.machine_->pause(); }

void TxCtx::transaction(util::FnRef<void()> body, uint32_t site) {
  rt_.execute_atomic(*this, body, site);
}

ElideOutcome TxCtx::elide(util::FnRef<void()> body, Addr lock_word,
                          uint32_t site) {
  if (in_atomic_) {
    throw std::logic_error("elide attempt inside an atomic section");
  }
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&in_atomic_};
  in_atomic_ = true;
  return rt_.exec_->elide(body, lock_word, site);
}

void TxCtx::elide_fallback(util::FnRef<void()> body, uint32_t site) {
  if (in_atomic_) {
    throw std::logic_error("elide fallback inside an atomic section");
  }
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&in_atomic_};
  in_atomic_ = true;
  rt_.exec_->elide_fallback(body, site);
}

bool TxCtx::lock_cas(Addr a, Word expected, Word desired) {
  return rt_.exec_->lock_cas(a, expected, desired);
}

Word TxCtx::lock_fetch_add(Addr a, Word delta) {
  return rt_.exec_->lock_fetch_add(a, delta);
}

Addr TxCtx::malloc(uint64_t bytes, uint64_t align) {
  return rt_.heap_->alloc(bytes, align);
}

void TxCtx::free(Addr a) { rt_.heap_->free(a); }

void TxCtx::barrier() { rt_.machine_->barrier(); }

Cycles TxCtx::now() const { return rt_.machine_->now(); }

uint32_t TxCtx::threads() const { return rt_.cfg_.threads; }

bool TxCtx::in_rtm_fallback() const { return rt_.exec_->in_serial_fallback(); }

}  // namespace tsx::core
