#include "core/runtime.h"

#include <stdexcept>

#include "mem/layout.h"

namespace tsx::core {

namespace {

sim::MemStats diff(const sim::MemStats& a, const sim::MemStats& b) {
  sim::MemStats d;
  d.loads = a.loads - b.loads;
  d.stores = a.stores - b.stores;
  d.l1_hits = a.l1_hits - b.l1_hits;
  d.l2_hits = a.l2_hits - b.l2_hits;
  d.l3_hits = a.l3_hits - b.l3_hits;
  d.mem_accesses = a.mem_accesses - b.mem_accesses;
  d.c2c_transfers = a.c2c_transfers - b.c2c_transfers;
  d.invalidations = a.invalidations - b.invalidations;
  d.writebacks = a.writebacks - b.writebacks;
  d.page_faults = a.page_faults - b.page_faults;
  return d;
}

sim::TxStats diff(const sim::TxStats& a, const sim::TxStats& b) {
  sim::TxStats d;
  d.started = a.started - b.started;
  d.committed = a.committed - b.committed;
  for (size_t i = 0; i < d.aborts_by_reason.size(); ++i) {
    d.aborts_by_reason[i] = a.aborts_by_reason[i] - b.aborts_by_reason[i];
  }
  for (size_t i = 0; i < d.aborts_by_misc.size(); ++i) {
    d.aborts_by_misc[i] = a.aborts_by_misc[i] - b.aborts_by_misc[i];
  }
  return d;
}

sim::MachineStats diff(const sim::MachineStats& a, const sim::MachineStats& b) {
  sim::MachineStats d;
  d.mem = diff(a.mem, b.mem);
  d.tx = diff(a.tx, b.tx);
  d.ops = a.ops - b.ops;
  d.interrupts = a.interrupts - b.interrupts;
  d.core_busy_cycles = a.core_busy_cycles - b.core_busy_cycles;
  return d;
}

htm::RtmStats diff(const htm::RtmStats& a, const htm::RtmStats& b) {
  htm::RtmStats d;
  d.transactions = a.transactions - b.transactions;
  d.attempts = a.attempts - b.attempts;
  d.commits = a.commits - b.commits;
  d.fallbacks = a.fallbacks - b.fallbacks;
  for (size_t i = 0; i < d.aborts_by_class.size(); ++i) {
    d.aborts_by_class[i] = a.aborts_by_class[i] - b.aborts_by_class[i];
  }
  for (size_t i = 0; i < d.aborts_by_reason.size(); ++i) {
    d.aborts_by_reason[i] = a.aborts_by_reason[i] - b.aborts_by_reason[i];
  }
  d.cycles_committed = a.cycles_committed - b.cycles_committed;
  d.cycles_aborted = a.cycles_aborted - b.cycles_aborted;
  d.cycles_fallback = a.cycles_fallback - b.cycles_fallback;
  return d;
}

stm::StmStats diff(const stm::StmStats& a, const stm::StmStats& b) {
  stm::StmStats d;
  d.transactions = a.transactions - b.transactions;
  d.starts = a.starts - b.starts;
  d.commits = a.commits - b.commits;
  for (size_t i = 0; i < d.aborts_by_cause.size(); ++i) {
    d.aborts_by_cause[i] = a.aborts_by_cause[i] - b.aborts_by_cause[i];
  }
  d.extensions = a.extensions - b.extensions;
  return d;
}

}  // namespace

TxRuntime::TxRuntime(RunConfig cfg) : cfg_(std::move(cfg)) {
  machine_ = std::make_unique<sim::Machine>(cfg_.machine, cfg_.threads);
  heap_ = std::make_unique<mem::SimHeap>(*machine_, cfg_.heap);

  // Runtime region: global lock (line 0), RTM serial lock (line 1).
  machine_->prefault(mem::kRuntimeRegionBase, sim::kPageBytes);
  global_lock_ = std::make_unique<sync::TicketSpinLock>(*machine_,
                                                        mem::kRuntimeRegionBase);
  global_lock_->init();

  htm::ScopeHooks rtm_hooks{
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_begin(c);
        if (observer_) observer_->on_unit_begin(c, 0);
      },
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_commit(c);
        if (observer_) observer_->on_unit_commit(c);
      },
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_abort(c);
        if (observer_) observer_->on_unit_abort(c);
      },
  };
  rtm_ = std::make_unique<htm::RtmExecutor>(
      *machine_, mem::kRuntimeRegionBase + sim::kLineBytes, cfg_.rtm);
  rtm_->init();
  rtm_->set_scope_hooks(rtm_hooks);

  // HLE / CAS backend locks: one line each, after the RTM serial lock.
  hle_lock_ = std::make_unique<htm::HleLock>(
      *machine_, mem::kRuntimeRegionBase + 2 * sim::kLineBytes,
      cfg_.hle_elision_attempts);
  hle_lock_->init();
  // Same scoping as RTM: heap allocation tracking per attempt, observer
  // bracketing for src/check. Lock-path sections seal before the unlock;
  // elided sections seal through the machine's tx-commit trace hook (the
  // later scope-commit call is an idempotent backstop).
  hle_lock_->set_scope_hooks(htm::ScopeHooks{
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_begin(c);
        if (observer_) observer_->on_unit_begin(c, 0);
      },
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_commit(c);
        if (observer_) observer_->on_unit_commit(c);
      },
      [this] {
        sim::CtxId c = machine_->current_ctx();
        heap_->tx_scope_abort(c);
        if (observer_) observer_->on_unit_abort(c);
      },
  });
  cas_lock_ = std::make_unique<sync::TasSpinLock>(
      *machine_, mem::kRuntimeRegionBase + 3 * sim::kLineBytes);
  cas_lock_->init();

  if (cfg_.backend == Backend::kTinyStm) {
    stm_ = std::make_unique<stm::TinyStm>(*machine_, mem::kStmRegionBase,
                                          cfg_.stm);
  } else if (cfg_.backend == Backend::kTl2) {
    stm_ = std::make_unique<stm::Tl2>(*machine_, mem::kStmRegionBase, cfg_.stm);
  }
  if (stm_) {
    stm_->init();
    stm_exec_ = std::make_unique<stm::StmExecutor>(*machine_, *stm_, cfg_.stm);
    stm_exec_->set_scope_hooks(stm::ScopeHooks{
        [this] {
          sim::CtxId c = machine_->current_ctx();
          heap_->tx_scope_begin(c);
          if (observer_) observer_->on_unit_begin(c, 0);
        },
        [this] { heap_->tx_scope_commit(machine_->current_ctx()); },
        [this] {
          sim::CtxId c = machine_->current_ctx();
          heap_->tx_scope_abort(c);
          if (observer_) observer_->on_unit_abort(c);
        },
    });
  }

  for (CtxId i = 0; i < cfg_.threads; ++i) {
    // Distinct, deterministic per-thread workload seeds.
    ctxs_.emplace_back(new TxCtx(*this, i, cfg_.seed * 1000003ull + i));
  }
}

TxRuntime::~TxRuntime() = default;

void TxRuntime::set_observer(TxObserver* obs) {
  observer_ = obs;
  if (stm_) {
    if (obs) {
      stm_->set_serialize_hook(
          [this](sim::CtxId c) { observer_->on_unit_commit(c); });
    } else {
      stm_->set_serialize_hook({});
    }
  }
}

void TxRuntime::run(const std::function<void(TxCtx&)>& worker) {
  std::vector<std::function<void(TxCtx&)>> workers(cfg_.threads, worker);
  run(std::move(workers));
}

void TxRuntime::run(std::vector<std::function<void(TxCtx&)>> workers) {
  if (ran_) throw std::logic_error("TxRuntime::run called twice");
  if (workers.size() != cfg_.threads) {
    throw std::invalid_argument("worker count != thread count");
  }
  ran_ = true;
  for (CtxId i = 0; i < cfg_.threads; ++i) {
    TxCtx* ctx = ctxs_[i].get();
    auto fn = std::move(workers[i]);
    machine_->set_thread(i, [ctx, fn = std::move(fn)] { fn(*ctx); });
  }
  machine_->run();
}

void TxRuntime::mark_measurement_start() {
  mark_stats_ = machine_->snapshot();
  mark_wall_ = machine_->wall();
  mark_core_busy_ = machine_->core_busy_cycles();
  mark_rtm_ = rtm_->stats();
  if (stm_) mark_stm_ = stm_->stats();
}

RunReport TxRuntime::report() const {
  RunReport r;
  sim::MachineStats end = machine_->snapshot();
  end.core_busy_cycles = machine_->core_busy_cycles();
  sim::Cycles end_wall = machine_->wall();

  if (mark_stats_) {
    sim::MachineStats m0 = *mark_stats_;
    m0.core_busy_cycles = mark_core_busy_;
    r.machine = diff(end, m0);
    r.wall_cycles = end_wall - mark_wall_;
    r.rtm = diff(rtm_->stats(), mark_rtm_);
    if (stm_) r.stm = diff(stm_->stats(), mark_stm_);
  } else {
    r.machine = end;
    r.wall_cycles = end_wall;
    r.rtm = rtm_->stats();
    if (stm_) r.stm = stm_->stats();
  }

  r.rtm_sites = rtm_->all_site_stats();

  sim::EnergyModel em(cfg_.machine.energy, cfg_.machine.freq_ghz);
  r.seconds = em.seconds(r.wall_cycles);
  const sim::MemStats& ms = r.machine.mem;
  r.energy = em.compute(r.machine.ops, ms.l1_accesses(), ms.l2_accesses(),
                        ms.l3_accesses(), ms.mem_accesses,
                        ms.invalidations + ms.c2c_transfers, ms.writebacks,
                        r.machine.core_busy_cycles, r.wall_cycles);
  return r;
}

void TxRuntime::execute_atomic(TxCtx& ctx, const std::function<void()>& body,
                               uint32_t site) {
  if (ctx.in_atomic_) {  // flat nesting
    body();
    return;
  }
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&ctx.in_atomic_};
  ctx.in_atomic_ = true;

  // Observer bracketing for the non-executor backends. The commit call
  // lands while the section is still protected (before the unlock), so the
  // recorder's seal order matches the order in which atomic effects became
  // visible; RTM/STM bracketing is wired through their executors' scope and
  // serialize hooks instead.
  switch (cfg_.backend) {
    case Backend::kSeq:
      if (observer_) observer_->on_unit_begin(ctx.id_, site);
      body();
      if (observer_) observer_->on_unit_commit(ctx.id_);
      return;
    case Backend::kLock: {
      global_lock_->lock();
      if (observer_) observer_->on_unit_begin(ctx.id_, site);
      try {
        body();
      } catch (...) {
        if (observer_) observer_->on_unit_abort(ctx.id_);
        global_lock_->unlock();
        throw;
      }
      if (observer_) observer_->on_unit_commit(ctx.id_);
      global_lock_->unlock();
      return;
    }
    case Backend::kCas: {
      cas_lock_->lock();
      if (observer_) observer_->on_unit_begin(ctx.id_, site);
      try {
        body();
      } catch (...) {
        if (observer_) observer_->on_unit_abort(ctx.id_);
        cas_lock_->unlock();
        throw;
      }
      if (observer_) observer_->on_unit_commit(ctx.id_);
      cas_lock_->unlock();
      return;
    }
    case Backend::kHle:
      // Heap scoping and observer bracketing ride on the HleLock's scope
      // hooks (wired in the constructor), which fire per elision attempt.
      hle_lock_->critical_section(body);
      return;
    case Backend::kRtm:
      rtm_->execute(body, site);
      return;
    case Backend::kTinyStm:
    case Backend::kTl2:
      stm_exec_->execute(body);
      return;
  }
}

// ---- TxCtx ----

Word TxCtx::load(Addr a) {
  if (in_atomic_ && rt_.stm_ && rt_.stm_->tx_active(id_)) {
    Word v = rt_.stm_->tx_read(id_, a);
    // Logical STM access stream for src/check (machine-level events inside
    // an STM transaction are metadata/speculation, which the recorder
    // suppresses).
    if (rt_.observer_) rt_.observer_->on_stm_read(id_, a, v);
    return v;
  }
  return rt_.machine_->load(a);
}

void TxCtx::store(Addr a, Word v) {
  if (in_atomic_ && rt_.stm_ && rt_.stm_->tx_active(id_)) {
    // Latch the committed value before tx_write so the recorder can record
    // the pre-image for the replay's initial state.
    Word pre = rt_.observer_ ? rt_.machine_->peek(a) : 0;
    rt_.stm_->tx_write(id_, a, v);
    if (rt_.observer_) rt_.observer_->on_stm_write(id_, a, v, pre);
    return;
  }
  rt_.machine_->store(a, v);
}

bool TxCtx::cas(Addr a, Word expected, Word desired) {
  if (in_atomic_ && rt_.stm_ && rt_.stm_->tx_active(id_)) {
    throw std::logic_error("raw CAS inside an STM transaction");
  }
  return rt_.machine_->cas(a, expected, desired);
}

Word TxCtx::fetch_add(Addr a, Word delta) {
  if (in_atomic_ && rt_.stm_ && rt_.stm_->tx_active(id_)) {
    throw std::logic_error("raw fetch_add inside an STM transaction");
  }
  return rt_.machine_->fetch_add(a, delta);
}

void TxCtx::compute(Cycles c) { rt_.machine_->compute(c); }
void TxCtx::pause() { rt_.machine_->pause(); }

void TxCtx::transaction(const std::function<void()>& body, uint32_t site) {
  rt_.execute_atomic(*this, body, site);
}

Addr TxCtx::malloc(uint64_t bytes, uint64_t align) {
  return rt_.heap_->alloc(bytes, align);
}

void TxCtx::free(Addr a) { rt_.heap_->free(a); }

void TxCtx::barrier() { rt_.machine_->barrier(); }

Cycles TxCtx::now() const { return rt_.machine_->now(); }

uint32_t TxCtx::threads() const { return rt_.cfg_.threads; }

bool TxCtx::in_rtm_fallback() const {
  return rt_.cfg_.backend == Backend::kRtm && rt_.rtm_->in_fallback();
}

}  // namespace tsx::core
