#pragma once
// core::RetryPolicy: the retry/backoff/fallback decision, hoisted out of the
// individual executors so every backend (RTM serial-fallback, Hybrid TM,
// the STMs' suicide loop) answers the same three questions the same way:
//   * how many speculative attempts before the fallback path? (budget)
//   * how long to wait between attempts? (backoff shape)
//   * how does the fast path watch the fallback lock? (subscription)
//
// Leaf header: depends only on sim/, so htm/ and stm/ can accept a policy
// without linking against tsx_core.

#include <algorithm>
#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace tsx::core {

// How an HTM fast path watches its fallback lock (the ablation's knob).
enum class LockSubscription : uint8_t {
  kSubscribeInTx = 0,  // Algorithm 1: read the lock inside the transaction
  kWaitThenSubscribe,  // spin for lock-free before xbegin, then subscribe
  kNone,               // unsafe in general; provided for the ablation only
};

// Shape of the wait between failed attempts.
enum class BackoffShape : uint8_t {
  kNone = 0,     // retry immediately (the paper's Algorithm 1)
  kLinear,       // window grows linearly in the attempt number
  kExponential,  // window doubles per attempt (TinySTM suicide backoff)
};

struct RetryPolicy {
  // Speculative attempts before the executor takes its fallback path;
  // <= 0 means unbounded (no fallback — retry until commit).
  int max_attempts = 8;  // the paper's MAX_RETRIES
  LockSubscription subscription = LockSubscription::kSubscribeInTx;
  BackoffShape backoff = BackoffShape::kNone;
  sim::Cycles backoff_base_cycles = 120;
  uint32_t backoff_cap_shift = 10;  // window stops growing after 2^shift

  bool unbounded() const { return max_attempts <= 0; }

  // True once `attempts` tries have been burned and the fallback is due.
  bool exhausted(uint32_t attempts) const {
    return !unbounded() && attempts >= static_cast<uint32_t>(max_attempts);
  }

  // Simulated cycles to wait before the attempt following `attempt_no`
  // failed tries. Randomized within the shape's window (exactly one rng draw
  // for any shape but kNone, which draws nothing). Callers must skip the
  // machine compute() entirely when this returns 0 so a no-backoff policy
  // introduces no extra scheduling points.
  sim::Cycles backoff_cycles(uint32_t attempt_no, sim::Rng& rng) const {
    if (backoff == BackoffShape::kNone) return 0;
    uint64_t window;
    if (backoff == BackoffShape::kLinear) {
      uint64_t cap = uint64_t{1} << backoff_cap_shift;
      window = backoff_base_cycles * std::min<uint64_t>(attempt_no, cap);
    } else {
      uint32_t shift = std::min(attempt_no, backoff_cap_shift);
      window = static_cast<uint64_t>(backoff_base_cycles) << shift;
    }
    return backoff_base_cycles + rng.below(window | 1);
  }
};

}  // namespace tsx::core
