#pragma once
// core::RetryPolicy: the retry/backoff/fallback decision, hoisted out of the
// individual executors so every backend (RTM serial-fallback, Hybrid TM,
// the STMs' suicide loop) answers the same three questions the same way:
//   * how many speculative attempts before the fallback path? (budget)
//   * how long to wait between attempts? (backoff shape)
//   * how does the fast path watch the fallback lock? (subscription)
//
// Leaf header: depends only on sim/, so htm/ and stm/ can accept a policy
// without linking against tsx_core.

#include <algorithm>
#include <bit>
#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace tsx::core {

// How an HTM fast path watches its fallback lock (the ablation's knob).
enum class LockSubscription : uint8_t {
  kSubscribeInTx = 0,  // Algorithm 1: read the lock inside the transaction
  kWaitThenSubscribe,  // spin for lock-free before xbegin, then subscribe
  kNone,               // unsafe in general; provided for the ablation only
};

// Shape of the wait between failed attempts.
enum class BackoffShape : uint8_t {
  kNone = 0,     // retry immediately (the paper's Algorithm 1)
  kLinear,       // window grows linearly in the attempt number
  kExponential,  // window doubles per attempt (TinySTM suicide backoff)
};

struct RetryPolicy {
  // Speculative attempts before the executor takes its fallback path;
  // <= 0 means unbounded (no fallback — retry until commit).
  int max_attempts = 8;  // the paper's MAX_RETRIES
  LockSubscription subscription = LockSubscription::kSubscribeInTx;
  BackoffShape backoff = BackoffShape::kNone;
  sim::Cycles backoff_base_cycles = 120;
  uint32_t backoff_cap_shift = 10;  // window stops growing after 2^shift

  bool unbounded() const { return max_attempts <= 0; }

  // True once `attempts` tries have been burned and the fallback is due.
  bool exhausted(uint32_t attempts) const {
    return !unbounded() && attempts >= static_cast<uint32_t>(max_attempts);
  }

  // Largest backoff window ever handed out: 2^62 simulated cycles, beyond
  // any horizon a run can reach, and small enough that base + draw cannot
  // wrap uint64_t for any sane base.
  static constexpr uint64_t kMaxBackoffWindow = uint64_t{1} << 62;

  // Simulated cycles to wait before the attempt following `attempt_no`
  // failed tries. Randomized within the shape's window (exactly one rng draw
  // for any shape but kNone, which draws nothing). Callers must skip the
  // machine compute() entirely when this returns 0 so a no-backoff policy
  // introduces no extra scheduling points.
  //
  // Both `backoff_cap_shift` (a knob) and `attempt_no` (unbounded under a
  // generous budget) can reach the word width, where a raw `1 << shift` /
  // `base << shift` is undefined behavior — so every shift is clamped below
  // 64 and the window saturates at kMaxBackoffWindow instead of wrapping.
  // In-range configurations (shift small enough that nothing saturates) are
  // bit-for-bit unchanged.
  sim::Cycles backoff_cycles(uint32_t attempt_no, sim::Rng& rng) const {
    if (backoff == BackoffShape::kNone) return 0;
    uint64_t window;
    if (backoff == BackoffShape::kLinear) {
      // attempt_no < 2^32, so a cap beyond 2^32 never binds; clamping the
      // shift there keeps it far below the word width.
      uint64_t cap = uint64_t{1} << std::min(backoff_cap_shift, 32u);
      __uint128_t w = static_cast<__uint128_t>(backoff_base_cycles) *
                      std::min<uint64_t>(attempt_no, cap);
      window = w > kMaxBackoffWindow ? kMaxBackoffWindow
                                     : static_cast<uint64_t>(w);
    } else {
      uint64_t base = backoff_base_cycles;
      uint32_t width = static_cast<uint32_t>(std::bit_width(base));
      // base << shift < 2^(width + shift): keeping width + shift <= 62
      // bounds the window by kMaxBackoffWindow with no overflow.
      uint32_t max_shift = width < 62 ? 62 - width : 0;
      uint32_t shift = std::min({attempt_no, backoff_cap_shift, max_shift});
      window = base << shift;
    }
    return backoff_base_cycles + rng.below(window | 1);
  }
};

}  // namespace tsx::core
