#pragma once
// Observation interface between the runtime and src/check's history
// recorder. The runtime reports atomic-block boundaries for every backend
// plus the *logical* read/write stream of STM transactions (whose physical
// machine accesses — lock-table probes, log traffic, commit-time write-back
// — are implementation detail, not workload semantics). Plain and HTM
// accesses are observed at the machine level via sim::TraceHooks instead;
// see src/check/history.h for how the two streams combine.
//
// All callbacks run on the simulation's single host thread, at well-defined
// points (documented per method); implementations must not call back into
// the runtime's simulated ops.

#include "sim/types.h"

namespace tsx::core {

class TxObserver {
 public:
  virtual ~TxObserver() = default;

  // An atomic block (one TxCtx::transaction body execution scope) opened
  // for `ctx`. Re-invoked on every retry attempt; a fresh begin discards
  // any speculative events buffered for the context.
  virtual void on_unit_begin(sim::CtxId ctx, uint32_t site) = 0;
  // The current atomic block committed. For HTM and STM paths the precise
  // serialization point is reported earlier through sim::TraceHooks /
  // StmSystem::set_serialize_hook; this call is the backstop that seals
  // lock-based and sequential blocks (it is idempotent for the others).
  virtual void on_unit_commit(sim::CtxId ctx) = 0;
  // The current attempt aborted; buffered speculative events are invalid.
  virtual void on_unit_abort(sim::CtxId ctx) = 0;

  // Logical STM accesses (value as seen/written by the transaction).
  // `pre_commit_value` is the word's committed value in the backing store
  // at the time of the call, used to latch initial values lazily.
  virtual void on_stm_read(sim::CtxId ctx, sim::Addr addr, sim::Word value) = 0;
  virtual void on_stm_write(sim::CtxId ctx, sim::Addr addr, sim::Word value,
                            sim::Word pre_commit_value) = 0;
};

}  // namespace tsx::core
