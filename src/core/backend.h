#pragma once
// Concurrency-control backends the runtime can execute atomic blocks with.

#include <string>

namespace tsx::core {

enum class Backend {
  kSeq = 0,   // no synchronization (sequential baseline / "None" in Table I)
  kLock,      // one global ticket spinlock around every atomic block
  kRtm,       // hardware transactions with serial-lock fallback (Algorithm 1)
  kTinyStm,   // TinySTM-style time-based STM
  kTl2,       // TL2 commit-time-locking STM
  kHle,       // hardware lock elision around one global TAS lock (§I)
  kCas,       // one global CAS-acquired test-and-set spinlock (Table I's
              // CAS-style synchronization as a general backend)
};

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSeq: return "SEQ";
    case Backend::kLock: return "Lock";
    case Backend::kRtm: return "RTM";
    case Backend::kTinyStm: return "TinySTM";
    case Backend::kTl2: return "TL2";
    case Backend::kHle: return "HLE";
    case Backend::kCas: return "CAS";
  }
  return "?";
}

// Parses a backend name (as printed by backend_name, case-insensitive
// ASCII); returns false if unknown.
inline bool backend_from_name(const std::string& s, Backend* out) {
  auto eq = [&](const char* n) {
    if (s.size() != std::char_traits<char>::length(n)) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      char a = s[i], b = n[i];
      if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
      if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
      if (a != b) return false;
    }
    return true;
  };
  for (Backend b : {Backend::kSeq, Backend::kLock, Backend::kRtm,
                    Backend::kTinyStm, Backend::kTl2, Backend::kHle,
                    Backend::kCas}) {
    if (eq(backend_name(b))) {
      *out = b;
      return true;
    }
  }
  // Common aliases used by tm_fuzz and the docs.
  if (eq("stm") || eq("tinystm")) { *out = Backend::kTinyStm; return true; }
  if (eq("spinlock")) { *out = Backend::kLock; return true; }
  return false;
}

inline bool backend_is_stm(Backend b) {
  return b == Backend::kTinyStm || b == Backend::kTl2;
}

}  // namespace tsx::core
