#pragma once
// Concurrency-control backends the runtime can execute atomic blocks with.
//
// The X-macro table below is the single source of truth: the enum, the
// printable names, parse(), and kAllBackends are all generated from it, so a
// new backend can never be visible to one and missing from another.

#include <array>
#include <string>

namespace tsx::core {

// X(enumerator, printable-name)
#define TSX_BACKEND_LIST(X)                                                    \
  X(kSeq, "SEQ")         /* no synchronization (sequential baseline) */       \
  X(kLock, "Lock")       /* one global ticket spinlock per atomic block */    \
  X(kRtm, "RTM")         /* HTM with serial-lock fallback (Algorithm 1) */    \
  X(kTinyStm, "TinySTM") /* TinySTM-style time-based STM */                   \
  X(kTl2, "TL2")         /* TL2 commit-time-locking STM */                    \
  X(kHle, "HLE")         /* hardware lock elision of one TAS lock (§I) */     \
  X(kCas, "CAS")         /* one global CAS-acquired test-and-set lock */      \
  X(kHybrid, "Hybrid")   /* HTM fast path with a TinySTM fallback (HyTM) */

enum class Backend {
#define TSX_BACKEND_ENUM(e, name) e,
  TSX_BACKEND_LIST(TSX_BACKEND_ENUM)
#undef TSX_BACKEND_ENUM
};

inline constexpr std::array kAllBackends = {
#define TSX_BACKEND_VALUE(e, name) Backend::e,
    TSX_BACKEND_LIST(TSX_BACKEND_VALUE)
#undef TSX_BACKEND_VALUE
};

inline const char* backend_name(Backend b) {
  switch (b) {
#define TSX_BACKEND_NAME(e, name) \
  case Backend::e:                \
    return name;
    TSX_BACKEND_LIST(TSX_BACKEND_NAME)
#undef TSX_BACKEND_NAME
  }
  return "?";
}

// Parses a backend name (as printed by backend_name, case-insensitive
// ASCII); returns false if unknown.
inline bool backend_from_name(const std::string& s, Backend* out) {
  auto eq = [&](const char* n) {
    if (s.size() != std::char_traits<char>::length(n)) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      char a = s[i], b = n[i];
      if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
      if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
      if (a != b) return false;
    }
    return true;
  };
  for (Backend b : kAllBackends) {
    if (eq(backend_name(b))) {
      *out = b;
      return true;
    }
  }
  // Common aliases used by tm_fuzz and the docs.
  if (eq("stm") || eq("tinystm")) { *out = Backend::kTinyStm; return true; }
  if (eq("spinlock")) { *out = Backend::kLock; return true; }
  if (eq("hytm")) { *out = Backend::kHybrid; return true; }
  return false;
}

// Backends whose atomic blocks run as pure software transactions. (kHybrid
// is excluded: its fast path is hardware, only the fallback is STM.)
inline bool backend_is_stm(Backend b) {
  return b == Backend::kTinyStm || b == Backend::kTl2;
}

}  // namespace tsx::core
