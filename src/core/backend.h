#pragma once
// Concurrency-control backends the runtime can execute atomic blocks with.

#include <string>

namespace tsx::core {

enum class Backend {
  kSeq = 0,   // no synchronization (sequential baseline / "None" in Table I)
  kLock,      // one global ticket spinlock around every atomic block
  kRtm,       // hardware transactions with serial-lock fallback (Algorithm 1)
  kTinyStm,   // TinySTM-style time-based STM
  kTl2,       // TL2 commit-time-locking STM
};

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSeq: return "SEQ";
    case Backend::kLock: return "Lock";
    case Backend::kRtm: return "RTM";
    case Backend::kTinyStm: return "TinySTM";
    case Backend::kTl2: return "TL2";
  }
  return "?";
}

inline bool backend_is_stm(Backend b) {
  return b == Backend::kTinyStm || b == Backend::kTl2;
}

}  // namespace tsx::core
