#pragma once
// Per-run measurement report: time, energy, abort statistics. Benches
// compare reports across backends/thread counts to build the paper's
// figures (speedup and energy efficiency are ratios of reports).

#include <algorithm>

#include "htm/rtm.h"
#include "mem/sim_heap.h"
#include "sim/energy_model.h"
#include "sim/stats.h"
#include "stm/common.h"

namespace tsx::core {

// Energy of the measured region split along the committed-vs-wasted axis,
// derived from executor attempt-cycle counters (works without obs tracing;
// the simulated PMU computes an event-derived twin for whole runs). The
// dynamic + core-active energy is apportioned by attempt-cycle share with
// non-tx as the exact remainder, so the four terms always sum to the
// report's total energy; package-idle is static/unattributable.
struct TxEnergySplit {
  double committed_j = 0;
  double wasted_j = 0;  // the paper's "energy spent in aborted work"
  double non_tx_j = 0;
  double static_j = 0;

  double total_j() const { return committed_j + wasted_j + non_tx_j + static_j; }
  // Share of attributable (non-static) energy thrown away in aborted work.
  double wasted_share() const {
    double active = committed_j + wasted_j + non_tx_j;
    return active > 0 ? wasted_j / active : 0.0;
  }
};

struct RunReport {
  sim::Cycles wall_cycles = 0;
  double seconds = 0;
  sim::EnergyBreakdown energy;
  sim::MachineStats machine;  // deltas over the measured region
  htm::RtmStats rtm;          // zero unless backend == kRtm
  stm::StmStats stm;          // zero unless an STM backend
  // Simulated-heap counters (whole run, not window-diffed: allocator state
  // is cumulative) and the placement policy that produced them.
  mem::HeapStats heap;
  mem::PlacementPolicy heap_policy = mem::PlacementPolicy::kSizeClass;
  // Per-transaction-site RTM statistics (whole run, not window-diffed);
  // used for the paper's TID-level tables (IV, V).
  std::vector<std::pair<uint32_t, htm::RtmStats>> rtm_sites;

  htm::RtmStats site_stats(uint32_t site) const {
    for (const auto& [id, st] : rtm_sites) {
      if (id == site) return st;
    }
    return htm::RtmStats{};
  }

  double joules() const { return energy.total_j(); }

  // Committed-vs-wasted energy attribution over the measured region.
  // Committed work includes the RTM serial fallback (it performs useful,
  // retained work, just non-speculatively); wasted is cycles inside
  // attempts that aborted, hardware or software.
  TxEnergySplit energy_split() const {
    TxEnergySplit s;
    s.static_j = energy.package_idle_j;
    double active_j = energy.total_j() - energy.package_idle_j;
    double committed = static_cast<double>(rtm.cycles_committed) +
                       static_cast<double>(rtm.cycles_fallback) +
                       static_cast<double>(stm.cycles_committed);
    double wasted = static_cast<double>(rtm.cycles_aborted) +
                    static_cast<double>(stm.cycles_aborted);
    double denom = std::max(machine.core_busy_cycles, committed + wasted);
    if (denom > 0 && active_j > 0) {
      s.committed_j = active_j * (committed / denom);
      s.wasted_j = active_j * (wasted / denom);
      s.non_tx_j = active_j - s.committed_j - s.wasted_j;
    } else {
      s.non_tx_j = active_j;
    }
    return s;
  }

  // Abort rate of whichever TM system ran (0 for SEQ/Lock).
  double abort_rate(bool is_rtm) const {
    return is_rtm ? rtm.abort_rate() : stm.abort_rate();
  }
};

inline double speedup(const RunReport& baseline, const RunReport& run) {
  return static_cast<double>(baseline.wall_cycles) /
         static_cast<double>(run.wall_cycles);
}

// "Energy efficiency" in the paper's figures: baseline energy / run energy
// (> 1 means the run spends less energy than the sequential baseline).
inline double energy_efficiency(const RunReport& baseline, const RunReport& run) {
  return baseline.joules() / run.joules();
}

}  // namespace tsx::core
