#pragma once
// Per-run measurement report: time, energy, abort statistics. Benches
// compare reports across backends/thread counts to build the paper's
// figures (speedup and energy efficiency are ratios of reports).

#include "htm/rtm.h"
#include "sim/energy_model.h"
#include "sim/stats.h"
#include "stm/common.h"

namespace tsx::core {

struct RunReport {
  sim::Cycles wall_cycles = 0;
  double seconds = 0;
  sim::EnergyBreakdown energy;
  sim::MachineStats machine;  // deltas over the measured region
  htm::RtmStats rtm;          // zero unless backend == kRtm
  stm::StmStats stm;          // zero unless an STM backend
  // Per-transaction-site RTM statistics (whole run, not window-diffed);
  // used for the paper's TID-level tables (IV, V).
  std::vector<std::pair<uint32_t, htm::RtmStats>> rtm_sites;

  htm::RtmStats site_stats(uint32_t site) const {
    for (const auto& [id, st] : rtm_sites) {
      if (id == site) return st;
    }
    return htm::RtmStats{};
  }

  double joules() const { return energy.total_j(); }

  // Abort rate of whichever TM system ran (0 for SEQ/Lock).
  double abort_rate(bool is_rtm) const {
    return is_rtm ? rtm.abort_rate() : stm.abort_rate();
  }
};

inline double speedup(const RunReport& baseline, const RunReport& run) {
  return static_cast<double>(baseline.wall_cycles) /
         static_cast<double>(run.wall_cycles);
}

// "Energy efficiency" in the paper's figures: baseline energy / run energy
// (> 1 means the run spends less energy than the sequential baseline).
inline double energy_efficiency(const RunReport& baseline, const RunReport& run) {
  return baseline.joules() / run.joules();
}

}  // namespace tsx::core
