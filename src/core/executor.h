#pragma once
// core::TxExecutor: the uniform interface every concurrency-control backend
// implements. TxRuntime holds exactly one executor, built by make_executor()
// from the configured Backend — there is no per-backend dispatch anywhere
// else in the runtime.
//
// Responsibilities of an executor:
//   * execute(): run a body as one atomic block (attempts, retries,
//     fallback — per its core::RetryPolicy where applicable), including the
//     heap transaction-scope hooks and the check recorder's unit bracketing;
//   * load()/store(): the transactional data path used by TxCtx inside
//     atomic blocks (STM-backed executors route these through tx_read/
//     tx_write; everything else goes straight to the machine);
//   * report its statistics for RunReport.
//
// Concrete executors live in executors.cpp; nothing outside it needs their
// types.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/trace.h"
#include "htm/rtm.h"
#include "mem/sim_heap.h"
#include "sim/machine.h"
#include "stm/common.h"
#include "util/fn_ref.h"

namespace tsx::obs {
class TraceSink;
}  // namespace tsx::obs

namespace tsx::core {

struct RunConfig;  // core/runtime.h

// What the runtime lends its executor. `observer` points at the runtime's
// observer slot (not the observer itself): executors read it at call time,
// so TxRuntime::set_observer needs no re-wiring. `sink` is the optional
// structured-event trace sink (null when tracing is off); executors only
// emit policy-level events to it (site labels, retry/fallback decisions) —
// hardware tx lifecycle events flow through the machine's ObsHooks.
struct ExecutorEnv {
  sim::Machine* machine = nullptr;
  mem::SimHeap* heap = nullptr;
  TxObserver* const* observer = nullptr;
  obs::TraceSink* sink = nullptr;
};

// Result of one *elision* attempt batch (TxExecutor::elide): the body either
// committed speculatively, bailed because the subscribed lock word was held,
// or aborted for a data/capacity/interrupt reason. The caller (src/elide)
// owns the retry loop — the executor runs exactly one speculative attempt so
// the lock layer can meter attempts against its own core::RetryPolicy and
// per-lock statistics.
enum class ElideOutcome : uint8_t {
  kCommitted = 0,
  kLockBusy = 1,
  kAborted = 2,
};

class TxExecutor {
 public:
  explicit TxExecutor(const ExecutorEnv& env) : env_(env) {}
  virtual ~TxExecutor() = default;
  TxExecutor(const TxExecutor&) = delete;
  TxExecutor& operator=(const TxExecutor&) = delete;

  virtual const char* name() const = 0;

  // Runs `body` as one atomic block for the calling context. `site` labels
  // the static transaction site for per-site statistics. The body reference
  // is non-owning (util::FnRef): executors run it synchronously and never
  // store it.
  virtual void execute(util::FnRef<void()> body, uint32_t site) = 0;

  // Transactional data path for TxCtx inside atomic blocks. The default is
  // a plain machine access (hardware or a lock does the bookkeeping).
  virtual sim::Word load(sim::CtxId ctx, sim::Addr a) {
    (void)ctx;
    return env_.machine->load(a);
  }
  virtual void store(sim::CtxId ctx, sim::Addr a, sim::Word v) {
    (void)ctx;
    env_.machine->store(a, v);
  }

  // --- Lock-elision seam (src/elide) -------------------------------------
  //
  // elide(): one speculative attempt at `body` with `lock_word` subscribed
  // (read inside the transaction, aborting with kLockBusy when non-zero).
  // `lock_word == 0` means "do not subscribe" — only the broken-elision
  // canary passes that (the simulated heap starts at 0x4'0000'0000, so 0 is
  // never a real lock). The default runs the body through execute() with a
  // pre-check of the word, which is correct for the global-lock and serial
  // backends; speculative backends override it in executors.cpp.
  virtual ElideOutcome elide(util::FnRef<void()> body, sim::Addr lock_word,
                             uint32_t site);

  // elide_fallback(): run `body` non-speculatively while the *caller*
  // already holds its fallback lock. Brackets the heap transaction scope and
  // the check recorder unit so elided and fallback executions leave the same
  // history shape. STM-backed executors override it to run the body as a
  // software transaction, which keeps stripe versions moving and so doom
  // concurrently elided readers (opacity).
  virtual void elide_fallback(util::FnRef<void()> body, uint32_t site);

  // Lock-word read-modify-writes for the fallback path. Raw machine RMWs by
  // default; STM-backed executors wrap them in small software transactions
  // so lock-word transitions version-bump their stripes.
  virtual bool lock_cas(sim::Addr a, sim::Word expected, sim::Word desired);
  virtual sim::Word lock_fetch_add(sim::Addr a, sim::Word delta);

  // True while `ctx` runs a live software transaction (raw atomics are then
  // a programming error, and machine-level trace events are metadata).
  virtual bool stm_active(sim::CtxId ctx) const {
    (void)ctx;
    return false;
  }

  // True while the calling context executes under a serial fallback lock
  // (i.e. non-speculatively and exclusively).
  virtual bool in_serial_fallback() const { return false; }

  // Statistics views merged into RunReport; zeroed when not applicable.
  virtual htm::RtmStats rtm_stats() const { return {}; }
  virtual stm::StmStats stm_stats() const { return {}; }
  virtual std::vector<std::pair<uint32_t, htm::RtmStats>> rtm_site_stats()
      const {
    return {};
  }

 protected:
  TxObserver* obs() const { return env_.observer ? *env_.observer : nullptr; }

  ExecutorEnv env_;
};

// Registry keyed on RunConfig::backend. Throws std::invalid_argument for a
// Backend value outside the X-macro table.
std::unique_ptr<TxExecutor> make_executor(const RunConfig& cfg,
                                          const ExecutorEnv& env);

}  // namespace tsx::core
