// Concrete TxExecutor implementations for every Backend, plus the
// make_executor() registry. This file is the only place that knows which
// synchronization object a backend uses, where it lives in the runtime
// region, and how heap scoping / history observation wrap its attempts.
//
// Runtime-region line assignment (one object per line, see mem/layout.h):
//   line 0: global ticket spinlock (kLock)
//   line 1: RTM serial fallback reader/writer lock (kRtm)
//   line 2: HLE elided TAS lock (kHle)
//   line 3: CAS test-and-set lock (kCas)

#include "core/executor.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/runtime.h"
#include "htm/hle.h"
#include "mem/layout.h"
#include "obs/trace_sink.h"
#include "stm/tinystm.h"
#include "stm/tl2.h"
#include "sync/spinlock.h"

namespace tsx::core {

namespace {

using sim::Addr;
using sim::CtxId;
using sim::Cycles;
using sim::Word;

// Heap transaction scoping + recorder unit bracketing around every
// speculative attempt / fallback execution. When `observe_commit` is false
// the commit hook only closes the heap scope: STM executors seal their units
// through the serialize hook at the true serialization point instead.
template <class Hooks>
Hooks make_scope_hooks(const ExecutorEnv& env, bool observe_commit) {
  return Hooks{
      [env] {
        CtxId c = env.machine->current_ctx();
        env.heap->tx_scope_begin(c);
        if (TxObserver* o = *env.observer) o->on_unit_begin(c, 0);
      },
      [env, observe_commit] {
        CtxId c = env.machine->current_ctx();
        env.heap->tx_scope_commit(c);
        if (!observe_commit) return;
        if (TxObserver* o = *env.observer) o->on_unit_commit(c);
      },
      [env] {
        CtxId c = env.machine->current_ctx();
        env.heap->tx_scope_abort(c);
        if (TxObserver* o = *env.observer) o->on_unit_abort(c);
      },
  };
}

// One speculative elision attempt on a hardware-transactional backend:
// subscribe the lock word inside the transaction (abort kAbortCodeLockBusy
// when held), run the body, and map the attempt result onto ElideOutcome.
// Mirrors RtmExecutor::execute's hook ordering so the recorder and heap
// scoping see elided sections exactly like executor transactions.
ElideOutcome hw_elide(sim::Machine& m, obs::TraceSink* sink,
                      const htm::ScopeHooks& hooks,
                      util::FnRef<void()> body, Addr lock_word, uint32_t site) {
  if (sink) sink->set_site(m.current_ctx(), site);
  hooks.on_begin();
  htm::AttemptResult r = htm::attempt(m, [&] {
    if (lock_word != 0 && m.load(lock_word) != 0) {
      m.tx_abort(htm::kAbortCodeLockBusy);
    }
    body();
  });
  if (r.committed) {
    hooks.on_commit();
    return ElideOutcome::kCommitted;
  }
  hooks.on_abort();
  if (r.reason == sim::AbortReason::kExplicit &&
      sim::xstatus::unpack_code(r.status) == htm::kAbortCodeLockBusy) {
    return ElideOutcome::kLockBusy;
  }
  return ElideOutcome::kAborted;
}

// ---- kSeq ----

class SeqExecutor final : public TxExecutor {
 public:
  using TxExecutor::TxExecutor;

  const char* name() const override { return "SEQ"; }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    CtxId c = env_.machine->current_ctx();
    if (TxObserver* o = obs()) o->on_unit_begin(c, site);
    body();
    if (TxObserver* o = obs()) o->on_unit_commit(c);
  }
};

// ---- kLock / kCas ----

// One global spinlock around every atomic block. The observer's commit call
// lands while the lock is still held, so the recorder seals sections in the
// order their effects became visible.
template <class Lock>
class SpinLockExecutor final : public TxExecutor {
 public:
  SpinLockExecutor(const ExecutorEnv& env, const char* name, Addr lock_base)
      : TxExecutor(env), name_(name), lock_(*env.machine, lock_base) {
    lock_.init();
  }

  const char* name() const override { return name_; }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    CtxId c = env_.machine->current_ctx();
    if (env_.sink) env_.sink->set_site(c, site);
    lock_.lock();
    // Section timestamps for the metrics hub's lock-activity signal
    // (hub-only: no ring event, no PMU counter, no simulated work).
    Cycles t0 = env_.sink ? env_.machine->now() : 0;
    if (TxObserver* o = obs()) o->on_unit_begin(c, site);
    try {
      body();
    } catch (...) {
      if (TxObserver* o = obs()) o->on_unit_abort(c);
      lock_.unlock();
      throw;
    }
    if (TxObserver* o = obs()) o->on_unit_commit(c);
    if (env_.sink) env_.sink->lock_section(c, t0, env_.machine->now());
    lock_.unlock();
  }

 private:
  const char* name_;
  Lock lock_;
};

// ---- kHle ----

class HleExecutor final : public TxExecutor {
 public:
  HleExecutor(const ExecutorEnv& env, uint32_t elision_attempts)
      : TxExecutor(env),
        lock_(*env.machine, mem::kRuntimeRegionBase + 2 * sim::kLineBytes,
              elision_attempts),
        elide_hooks_(make_scope_hooks<htm::ScopeHooks>(env, true)) {
    lock_.init();
    // Heap scoping and observer bracketing fire per elision attempt;
    // lock-path sections seal before the unlock, elided sections seal
    // through the machine's tx-commit trace hook (the later scope-commit
    // call is an idempotent backstop).
    lock_.set_scope_hooks(make_scope_hooks<htm::ScopeHooks>(env, true));
    lock_.set_sink(env.sink);
  }

  const char* name() const override { return "HLE"; }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    if (env_.sink) env_.sink->set_site(env_.machine->current_ctx(), site);
    lock_.critical_section(body);
  }

  ElideOutcome elide(util::FnRef<void()> body, Addr lock_word,
                     uint32_t site) override {
    return hw_elide(*env_.machine, env_.sink, elide_hooks_, body, lock_word,
                    site);
  }

  // Hardware elision needs raw lock-word RMWs (glibc-style): exclusion
  // against elided sections comes from subscription, and the acquiring CAS
  // must conflict with their read sets immediately, not via a nested block.
  bool lock_cas(sim::Addr a, sim::Word expected, sim::Word desired) override {
    return env_.machine->load(a) == expected &&
           env_.machine->cas(a, expected, desired);
  }
  sim::Word lock_fetch_add(sim::Addr a, sim::Word delta) override {
    return env_.machine->fetch_add(a, delta);
  }

 private:
  htm::HleLock lock_;
  htm::ScopeHooks elide_hooks_;
};

// ---- kRtm ----

class RtmSerialExecutor final : public TxExecutor {
 public:
  RtmSerialExecutor(const ExecutorEnv& env, const RetryPolicy& policy)
      : TxExecutor(env),
        rtm_(*env.machine, mem::kRuntimeRegionBase + sim::kLineBytes, policy),
        elide_hooks_(make_scope_hooks<htm::ScopeHooks>(env, true)) {
    rtm_.init();
    rtm_.set_scope_hooks(make_scope_hooks<htm::ScopeHooks>(env, true));
    rtm_.set_sink(env.sink);
  }

  const char* name() const override { return "RTM"; }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    rtm_.execute(body, site);
  }

  // Elision attempts bypass rtm_'s serial lock entirely: the elided lock's
  // own word is the subscription target, and src/elide owns retry/fallback.
  // rtm_stats() intentionally keeps counting execute() transactions only;
  // per-lock elision statistics live in the elide layer and the PMU.
  ElideOutcome elide(util::FnRef<void()> body, Addr lock_word,
                     uint32_t site) override {
    return hw_elide(*env_.machine, env_.sink, elide_hooks_, body, lock_word,
                    site);
  }

  // Raw lock-word RMWs, as for HLE: the CAS itself is the conflict source
  // that dooms subscribed elided sections.
  bool lock_cas(sim::Addr a, sim::Word expected, sim::Word desired) override {
    return env_.machine->load(a) == expected &&
           env_.machine->cas(a, expected, desired);
  }
  sim::Word lock_fetch_add(sim::Addr a, sim::Word delta) override {
    return env_.machine->fetch_add(a, delta);
  }

  bool in_serial_fallback() const override { return rtm_.in_fallback(); }
  htm::RtmStats rtm_stats() const override { return rtm_.stats(); }
  std::vector<std::pair<uint32_t, htm::RtmStats>> rtm_site_stats()
      const override {
    return rtm_.all_site_stats();
  }

 private:
  htm::RtmExecutor rtm_;
  htm::ScopeHooks elide_hooks_;
};

// ---- STM-backed executors (kTinyStm, kTl2, and kHybrid's fallback) ----

// Owns an StmSystem + its retry executor and provides the software
// transactional data path: loads/stores inside a live software transaction
// route through tx_read/tx_write, with the logical access stream mirrored
// to the observer (machine-level traffic of an STM transaction is metadata,
// which the recorder suppresses via stm_active()).
class StmBackedExecutor : public TxExecutor {
 public:
  StmBackedExecutor(const ExecutorEnv& env,
                    std::unique_ptr<stm::StmSystem> sys,
                    const stm::StmConfig& cfg)
      : TxExecutor(env),
        stm_(std::move(sys)),
        stm_exec_(*env.machine, *stm_, cfg) {
    stm_->init();
    stm_->set_serialize_hook([this](CtxId c) {
      if (TxObserver* o = obs()) o->on_unit_commit(c);
    });
    stm_exec_.set_scope_hooks(make_scope_hooks<stm::ScopeHooks>(env, false));
    stm_exec_.set_sink(env.sink);
  }

  Word load(CtxId ctx, Addr a) override {
    if (!stm_->tx_active(ctx)) return env_.machine->load(a);
    Word v = stm_->tx_read(ctx, a);
    if (TxObserver* o = obs()) o->on_stm_read(ctx, a, v);
    return v;
  }

  void store(CtxId ctx, Addr a, Word v) override {
    if (!stm_->tx_active(ctx)) {
      env_.machine->store(a, v);
      return;
    }
    // Latch the committed value before tx_write so the recorder can record
    // the pre-image for the replay's initial state.
    Word pre = obs() ? env_.machine->peek(a) : 0;
    stm_->tx_write(ctx, a, v);
    if (TxObserver* o = obs()) o->on_stm_write(ctx, a, v, pre);
  }

  bool stm_active(CtxId ctx) const override { return stm_->tx_active(ctx); }
  stm::StmStats stm_stats() const override { return stm_->stats(); }

  // Software elision: one single-shot STM transaction with the lock word in
  // its read set (tx_read validates it against the stripe clock). A busy
  // lock *commits* the read-only transaction — the busy observation was
  // atomic — and reports kLockBusy without burning an STM abort.
  ElideOutcome elide(util::FnRef<void()> body, Addr lock_word,
                     uint32_t site) override {
    ElideOutcome out = ElideOutcome::kCommitted;
    bool committed = stm_exec_.execute_once(
        [&] {
          out = ElideOutcome::kCommitted;
          if (lock_word != 0 &&
              this->load(env_.machine->current_ctx(), lock_word) != 0) {
            out = ElideOutcome::kLockBusy;
            return;
          }
          body();
        },
        site);
    return committed ? out : ElideOutcome::kAborted;
  }

  // The fallback body must run as a software transaction even though the
  // caller holds the fallback lock: raw stores would not bump stripe
  // versions, and a concurrently elided reader that started before the lock
  // acquisition could then read a torn snapshot without failing validation
  // (opacity). As a transaction, every write locks + version-bumps its
  // stripe, dooming such readers at read/commit time.
  void elide_fallback(util::FnRef<void()> body, uint32_t site) override {
    stm_exec_.execute(body, site);
  }

  // Lock-word transitions go through small STM transactions for the same
  // reason: elided readers subscribe the word via tx_read, so acquiring or
  // releasing the word must version-bump its stripe to invalidate them.
  bool lock_cas(Addr a, Word expected, Word desired) override {
    bool ok = false;
    stm_exec_.execute([&] {
      CtxId c = env_.machine->current_ctx();
      ok = false;
      if (this->load(c, a) == expected) {
        this->store(c, a, desired);
        ok = true;
      }
    });
    return ok;
  }

  Word lock_fetch_add(Addr a, Word delta) override {
    Word old = 0;
    stm_exec_.execute([&] {
      CtxId c = env_.machine->current_ctx();
      old = this->load(c, a);
      this->store(c, a, old + delta);
    });
    return old;
  }

 protected:
  std::unique_ptr<stm::StmSystem> stm_;
  stm::StmExecutor stm_exec_;
};

class StmExecutorAdapter final : public StmBackedExecutor {
 public:
  using StmBackedExecutor::StmBackedExecutor;

  const char* name() const override { return stm_->name(); }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    stm_exec_.execute(body, site);
  }
};

// ---- kHybrid ----

// Hybrid TM in the HyTM-with-orecs style: hardware transaction attempts,
// then a full TinySTM transaction as the fallback — no serial lock, so an
// overflowing or conflicting transaction degrades to *concurrent* software
// mode instead of stopping the world.
//
// Coupling invariants (see DESIGN.md for the full argument):
//   * Every hardware access first loads the word's stripe lock. If the
//     stripe is locked, the attempt aborts (code kAbortCodeStmLocked) —
//     a software transaction owns the word (encounter-time write lock held
//     until post-write-back release), so reading the data word could see a
//     torn snapshot. The load also puts the stripe line into the hardware
//     read set, so a later STM lock acquisition dooms the attempt via the
//     machine's requester-wins conflict path.
//   * A writing hardware transaction publishes its commit to STM timestamp
//     validation: inside the transaction, after the body, it bumps the
//     global clock and writes the new version into every written stripe.
//     Without this, a software transaction that read a word before the
//     hardware commit would revalidate against a stale stripe version and
//     miss the conflict. The clock write also serializes concurrent
//     hardware writers against each other (write-write conflict on the
//     clock line) — the classic HyTM clock-contention cost, measured by
//     bench/extension_hybrid.
//   * STM commits doom overlapping hardware transactions for free: the
//     stripe CAS, the commit-time clock fetch_add and the write-back all
//     hit lines in hardware read/write sets.
//   * Read-only hardware transactions publish nothing: their snapshot is
//     guaranteed by hardware conflict detection alone, and STM read-only
//     transactions validate per-read against the clock as usual.
class HybridExecutor final : public StmBackedExecutor {
 public:
  // Explicit abort code for "stripe locked by a software transaction";
  // classified as a lock-class abort (the STM lock *is* our fallback lock).
  static constexpr uint8_t kAbortCodeStmLocked = 0xfe;

  HybridExecutor(const ExecutorEnv& env, const RetryPolicy& policy,
                 const stm::StmConfig& cfg)
      : StmBackedExecutor(
            env, std::make_unique<stm::TinyStm>(*env.machine, mem::kStmRegionBase, cfg),
            cfg),
        m_(*env.machine),
        policy_(policy),
        tiny_(static_cast<stm::TinyStm*>(stm_.get())),
        clock_line_(sim::line_of(tiny_->clock_addr())),
        hw_hooks_(make_scope_hooks<htm::ScopeHooks>(env, true)) {}

  const char* name() const override { return "Hybrid"; }

  void execute(util::FnRef<void()> body, uint32_t site) override {
    // Index, not pointer: body() may yield to a fiber whose execute()
    // appends a new site and reallocates sites_ underneath us.
    size_t site_idx = sites_.size();
    for (size_t i = 0; i < sites_.size(); ++i) {
      if (sites_[i].first == site) {
        site_idx = i;
        break;
      }
    }
    if (site_idx == sites_.size()) sites_.emplace_back(site, htm::RtmStats{});
    ++total_.transactions;
    ++sites_[site_idx].second.transactions;

    CtxId ctx = m_.current_ctx();
    if (env_.sink) env_.sink->set_site(ctx, site);
    PerCtx& pc = per_ctx_[ctx];
    uint32_t attempts = 0;
    while (!policy_.exhausted(attempts)) {
      ++attempts;
      hw_hooks_.on_begin();
      pc.hw = true;
      pc.write_stripes.clear();
      htm::AttemptResult r = htm::attempt(m_, [&] {
        body();
        publish(pc);
      });
      pc.hw = false;
      record(total_, r);
      record(sites_[site_idx].second, r);
      if (r.committed) {
        hw_hooks_.on_commit();
        return;
      }
      hw_hooks_.on_abort();
      // Capacity aborts are deterministic: the transaction cannot fit, so
      // retrying in hardware is futile (real TSX clears the RETRY hint for
      // them). Go straight to the software fallback — it is concurrent, so
      // unlike the serial-lock scheme there is no reason to be reluctant.
      if (r.reason == sim::AbortReason::kWriteCapacity ||
          r.reason == sim::AbortReason::kReadCapacity) {
        break;
      }
      if (policy_.exhausted(attempts)) break;
      Cycles wait = policy_.backoff_cycles(attempts, m_.setup_rng());
      if (env_.sink) env_.sink->retry_decision(ctx, m_.now(), false, wait);
      if (wait) m_.compute(wait);
    }

    // Software fallback: a full TinySTM transaction, concurrent with other
    // contexts' hardware attempts (which it dooms on true conflict).
    Cycles t0 = m_.now();
    ++total_.fallbacks;
    ++sites_[site_idx].second.fallbacks;
    if (env_.sink) env_.sink->retry_decision(ctx, m_.now(), true, 0);
    stm_exec_.execute(body, site);
    Cycles dt = m_.now() - t0;
    total_.cycles_fallback += dt;
    sites_[site_idx].second.cycles_fallback += dt;
  }

  Word load(CtxId ctx, Addr a) override {
    PerCtx& pc = per_ctx_[ctx];
    if (!pc.hw) return StmBackedExecutor::load(ctx, a);
    subscribe_stripe(a);
    return m_.load(a);
  }

  void store(CtxId ctx, Addr a, Word v) override {
    PerCtx& pc = per_ctx_[ctx];
    if (!pc.hw) {
      StmBackedExecutor::store(ctx, a, v);
      return;
    }
    Addr stripe = subscribe_stripe(a);
    bool seen = false;
    for (Addr s : pc.write_stripes) seen |= (s == stripe);
    if (!seen) pc.write_stripes.push_back(stripe);
    m_.store(a, v);
  }

  // Hardware elision attempt with hybrid coupling: the lock word's *stripe*
  // joins the read set too (and is checked for a software owner), and a
  // writing elided section publishes its commit to STM timestamp validation
  // exactly like execute()'s hardware path. Software-mode work (the caller's
  // fallback and lock-word RMWs) is inherited from StmBackedExecutor.
  ElideOutcome elide(util::FnRef<void()> body, Addr lock_word,
                     uint32_t site) override {
    CtxId ctx = m_.current_ctx();
    if (env_.sink) env_.sink->set_site(ctx, site);
    PerCtx& pc = per_ctx_[ctx];
    hw_hooks_.on_begin();
    pc.hw = true;
    pc.write_stripes.clear();
    htm::AttemptResult r = htm::attempt(m_, [&] {
      if (lock_word != 0) {
        subscribe_stripe(lock_word);
        if (m_.load(lock_word) != 0) m_.tx_abort(htm::kAbortCodeLockBusy);
      }
      body();
      publish(pc);
    });
    pc.hw = false;
    if (r.committed) {
      hw_hooks_.on_commit();
      return ElideOutcome::kCommitted;
    }
    hw_hooks_.on_abort();
    if (r.reason == sim::AbortReason::kExplicit &&
        sim::xstatus::unpack_code(r.status) == htm::kAbortCodeLockBusy) {
      return ElideOutcome::kLockBusy;
    }
    return ElideOutcome::kAborted;
  }

  htm::RtmStats rtm_stats() const override { return total_; }
  std::vector<std::pair<uint32_t, htm::RtmStats>> rtm_site_stats()
      const override {
    return sites_;
  }

 private:
  struct PerCtx {
    bool hw = false;                  // inside a hardware attempt's body
    std::vector<Addr> write_stripes;  // deduped stripes written this attempt
  };

  // Loads the stripe word (joining the hardware read set) and aborts the
  // attempt if a software transaction holds it.
  Addr subscribe_stripe(Addr a) {
    Addr stripe = tiny_->stripe_addr(a);
    Word lw = m_.load(stripe);
    if (stm::LockTable::is_locked(lw)) m_.tx_abort(kAbortCodeStmLocked);
    return stripe;
  }

  // Runs inside the hardware transaction, after the body: make this commit
  // visible to STM timestamp validation. All these stores are speculative
  // and roll back with the attempt.
  void publish(const PerCtx& pc) {
    if (pc.write_stripes.empty()) return;  // read-only: nothing to publish
    Word next = m_.load(tiny_->clock_addr()) + 1;
    m_.store(tiny_->clock_addr(), next);
    for (Addr stripe : pc.write_stripes) {
      m_.store(stripe, stm::LockTable::make_version(next));
    }
  }

  htm::AbortClass classify(const htm::AttemptResult& r) const {
    if (r.reason == sim::AbortReason::kExplicit &&
        sim::xstatus::unpack_code(r.status) == kAbortCodeStmLocked) {
      return htm::AbortClass::kLock;
    }
    // Conflicts on the clock line are commit-serialization conflicts with
    // other writers (hardware or software) — the hybrid's lock-class bucket.
    return htm::RtmExecutor::classify(r, clock_line_);
  }

  void record(htm::RtmStats& s, const htm::AttemptResult& r) const {
    ++s.attempts;
    if (r.committed) {
      ++s.commits;
      s.cycles_committed += r.cycles;
      return;
    }
    s.cycles_aborted += r.cycles;
    ++s.aborts_by_class[static_cast<size_t>(classify(r))];
    ++s.aborts_by_reason[static_cast<size_t>(r.reason)];
  }

  sim::Machine& m_;
  RetryPolicy policy_;
  stm::TinyStm* tiny_;  // the same object stm_ owns, concretely typed
  uint64_t clock_line_;
  htm::ScopeHooks hw_hooks_;
  std::array<PerCtx, sim::kMaxCtxs> per_ctx_{};
  htm::RtmStats total_;
  std::vector<std::pair<uint32_t, htm::RtmStats>> sites_;
};

}  // namespace

// Default elision: run the body through execute() with a pre-check of the
// lock word inside the atomic block. For the global-lock backends the
// executor's own lock provides the exclusion, so this "elides" the caller's
// lock by nesting under the global one — semantically a correct (if
// unexciting) elision. kSeq gets the same shape; src/elide disables elision
// there because SeqExecutor provides no exclusion at all.
ElideOutcome TxExecutor::elide(util::FnRef<void()> body,
                               sim::Addr lock_word, uint32_t site) {
  ElideOutcome out = ElideOutcome::kCommitted;
  execute(
      [&] {
        out = ElideOutcome::kCommitted;  // reset on retry
        if (lock_word != 0 && env_.machine->load(lock_word) != 0) {
          out = ElideOutcome::kLockBusy;
          return;
        }
        body();
      },
      site);
  return out;
}

// Default fallback execution: the caller already holds its lock, so no
// exclusion is needed here — just heap scoping plus recorder bracketing.
// The unit seals before the caller releases the lock word, matching the
// visibility order SpinLockExecutor establishes.
void TxExecutor::elide_fallback(util::FnRef<void()> body,
                                uint32_t site) {
  CtxId c = env_.machine->current_ctx();
  env_.heap->tx_scope_begin(c);
  if (TxObserver* o = obs()) o->on_unit_begin(c, site);
  try {
    body();
  } catch (...) {
    env_.heap->tx_scope_abort(c);
    if (TxObserver* o = obs()) o->on_unit_abort(c);
    throw;
  }
  env_.heap->tx_scope_commit(c);
  if (TxObserver* o = obs()) o->on_unit_commit(c);
}

// Default lock-word RMWs run as (tiny) atomic blocks. This matters for the
// global-lock backends: elide() observes the lock word inside the executor's
// lock, so the word may only *transition* under that same lock — a raw CAS
// from a fallback acquirer could otherwise slip in after an elided section's
// busy check and race its body. Under the global lock, load + store is an
// atomic CAS. The lock words live outside the heap region, so the recorder
// sees these blocks as empty units.
bool TxExecutor::lock_cas(sim::Addr a, sim::Word expected, sim::Word desired) {
  bool ok = false;
  execute(
      [&] {
        ok = false;
        if (env_.machine->load(a) == expected) {
          env_.machine->store(a, desired);
          ok = true;
        }
      },
      0);
  return ok;
}

sim::Word TxExecutor::lock_fetch_add(sim::Addr a, sim::Word delta) {
  sim::Word old = 0;
  execute(
      [&] {
        old = env_.machine->load(a);
        env_.machine->store(a, old + delta);
      },
      0);
  return old;
}

std::unique_ptr<TxExecutor> make_executor(const RunConfig& cfg,
                                          const ExecutorEnv& env) {
  switch (cfg.backend) {
    case Backend::kSeq:
      return std::make_unique<SeqExecutor>(env);
    case Backend::kLock:
      return std::make_unique<SpinLockExecutor<sync::TicketSpinLock>>(
          env, "Lock", mem::kRuntimeRegionBase);
    case Backend::kRtm:
      return std::make_unique<RtmSerialExecutor>(env, cfg.retry);
    case Backend::kTinyStm:
      return std::make_unique<StmExecutorAdapter>(
          env,
          std::make_unique<stm::TinyStm>(*env.machine, mem::kStmRegionBase,
                                         cfg.stm),
          cfg.stm);
    case Backend::kTl2:
      return std::make_unique<StmExecutorAdapter>(
          env,
          std::make_unique<stm::Tl2>(*env.machine, mem::kStmRegionBase,
                                     cfg.stm),
          cfg.stm);
    case Backend::kHle:
      return std::make_unique<HleExecutor>(env, cfg.hle_elision_attempts);
    case Backend::kCas:
      return std::make_unique<SpinLockExecutor<sync::TasSpinLock>>(
          env, "CAS", mem::kRuntimeRegionBase + 3 * sim::kLineBytes);
    case Backend::kHybrid:
      return std::make_unique<HybridExecutor>(env, cfg.retry, cfg.stm);
  }
  throw std::invalid_argument("make_executor: unknown backend");
}

}  // namespace tsx::core
