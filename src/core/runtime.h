#pragma once
// TxRuntime: the public façade of the library. It assembles a simulated
// machine, a heap, and the selected concurrency-control backend, runs worker
// functions on simulated hardware threads, and produces a RunReport for the
// measured region.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::RunConfig cfg;
//   cfg.backend = core::Backend::kRtm;
//   cfg.threads = 4;
//   core::TxRuntime rt(cfg);
//   rt.run([&](core::TxCtx& ctx) {
//     ctx.transaction([&] {
//       Word v = ctx.load(counter);
//       ctx.store(counter, v + 1);
//     });
//   });
//   core::RunReport r = rt.report();

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/executor.h"
#include "core/report.h"
#include "core/retry_policy.h"
#include "core/trace.h"
#include "mem/sim_heap.h"
#include "obs/metrics.h"
#include "obs/pmu.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "stm/common.h"
#include "util/fn_ref.h"

namespace tsx::obs {
class TraceSink;
}  // namespace tsx::obs

namespace tsx::core {

using sim::Addr;
using sim::CtxId;
using sim::Cycles;
using sim::Word;

// Structured-event tracing (src/obs). When `enabled`, the runtime owns a
// bounded obs::TraceSink, wires it into the machine and the executor, and —
// if `label` is non-empty — registers the capture with obs::Registry::global()
// at destruction so exporters can drain it after the run.
struct ObsConfig {
  bool enabled = false;
  size_t capacity = size_t{1} << 16;  // ring capacity in events
  // Counter-sampling interval in simulated cycles; 0 = no samples. Drives
  // both the kEnergy trace events and the PMU time series (one sampling
  // path). Formerly named `energy_window`.
  Cycles sample_interval = 0;
  std::string label;  // registry key; sorted at drain time
  // Windowed live-metrics plane (obs::MetricsHub): metrics.window_cycles > 0
  // folds the event stream into fixed windows with online phase detection;
  // 0 (default) leaves the hub off. The other MetricsConfig fields tune the
  // phase detector.
  obs::MetricsConfig metrics{};
};

struct RunConfig {
  Backend backend = Backend::kSeq;
  uint32_t threads = 1;
  sim::MachineConfig machine{};
  // Retry/backoff/fallback knobs for the HTM-first backends (kRtm, kHybrid).
  RetryPolicy retry{};
  stm::StmConfig stm{};
  mem::HeapConfig heap{};
  uint64_t seed = 42;  // workload-level seed (distinct from machine.seed)
  // kHle backend: elision attempts before the real acquisition (hardware
  // re-elides after some abort kinds; 1 models stock HLE).
  uint32_t hle_elision_attempts = 1;
  ObsConfig obs{};
};

class TxRuntime;

// Per-thread handle passed to worker functions. All simulated work of a
// worker must go through its TxCtx.
class TxCtx {
 public:
  // Shared-memory access: inside transaction() these are transactional
  // (routed to RTM tracking or the STM algorithm); outside they are plain.
  Word load(Addr a);
  void store(Addr a, Word v);

  // Non-transactional atomics (Table I's CAS variant and workload plumbing).
  // Calling them inside an STM transaction is a programming error.
  bool cas(Addr a, Word expected, Word desired);
  Word fetch_add(Addr a, Word delta);

  void compute(Cycles c);
  void pause();

  // Runs `body` atomically under the configured backend. `site` labels the
  // static transaction site for per-site RTM statistics. The body is passed
  // by non-owning reference (util::FnRef — two words, never allocates) and
  // only runs synchronously within this call.
  void transaction(util::FnRef<void()> body, uint32_t site = 0);

  // Lock-elision access for src/elide (guard-shaped scopes). elide() runs
  // one speculative attempt with `lock_word` subscribed; elide_fallback()
  // runs the body while the caller holds its fallback lock. Both bracket
  // the body like transaction() (heap scoping, recorder units, executor
  // load/store routing) and throw std::logic_error when nested inside an
  // atomic block — elided sections are top-level by contract.
  ElideOutcome elide(util::FnRef<void()> body, Addr lock_word,
                     uint32_t site = 0);
  void elide_fallback(util::FnRef<void()> body, uint32_t site = 0);

  // Lock-word RMWs for the elision layer's fallback path. Plain machine
  // atomics on hardware/lock backends; small software transactions on
  // STM-backed ones (see TxExecutor::lock_cas).
  bool lock_cas(Addr a, Word expected, Word desired);
  Word lock_fetch_add(Addr a, Word delta);

  // Simulated heap (transaction-scope aware).
  Addr malloc(uint64_t bytes, uint64_t align = 8);
  void free(Addr a);

  void barrier();
  Cycles now() const;

  CtxId id() const { return id_; }
  uint32_t threads() const;
  sim::Rng& rng() { return rng_; }
  TxRuntime& runtime() { return rt_; }

  // True while executing a transaction() body.
  bool in_atomic() const { return in_atomic_; }
  // True if the current atomic block runs under the RTM serial fallback
  // (i.e. non-speculatively).
  bool in_rtm_fallback() const;

 private:
  friend class TxRuntime;
  TxCtx(TxRuntime& rt, CtxId id, uint64_t seed) : rt_(rt), id_(id), rng_(seed) {}

  TxRuntime& rt_;
  CtxId id_;
  sim::Rng rng_;
  bool in_atomic_ = false;
};

class TxRuntime {
 public:
  explicit TxRuntime(RunConfig cfg);
  ~TxRuntime();

  TxRuntime(const TxRuntime&) = delete;
  TxRuntime& operator=(const TxRuntime&) = delete;

  const RunConfig& config() const { return cfg_; }

  // Runs `worker` on every simulated thread to completion.
  void run(const std::function<void(TxCtx&)>& worker);
  // Heterogeneous variant: one function per thread (size must equal the
  // thread count).
  void run(std::vector<std::function<void(TxCtx&)>> workers);

  // Called from worker code (typically thread 0 after a setup barrier):
  // starts the measured region. If never called, the region is the whole
  // run.
  void mark_measurement_start();

  RunReport report() const;

  sim::Machine& machine() { return *machine_; }
  mem::SimHeap& heap() { return *heap_; }
  // Null unless cfg.obs.enabled.
  obs::TraceSink* trace_sink() { return sink_.get(); }
  // The simulated PMU (null unless cfg.obs.enabled). Fed by the sink.
  obs::Pmu* pmu() { return pmu_.get(); }
  // Finalized PMU data — counters, cycle attribution, energy split,
  // histograms, samples. Empty unless cfg.obs.enabled; valid after run().
  std::optional<obs::PmuData> pmu_data() const;
  // The windowed metrics hub (null unless cfg.obs.enabled and
  // cfg.obs.metrics.window_cycles > 0). Subscribe before run() for live
  // sealed-window callbacks — the AdaptivePolicy seam.
  obs::MetricsHub* metrics_hub() { return hub_.get(); }
  // Finalized window series, phase boundaries and flame profile. Empty
  // unless the hub is on; valid after run(). Non-const: finalizing seals
  // the hub's remaining windows (idempotent, repeatable).
  std::optional<obs::MetricsData> metrics_data();
  // The one concurrency-control executor this runtime dispatches through.
  TxExecutor& executor() { return *exec_; }
  const TxExecutor& executor() const { return *exec_; }

  // Monotonic per-runtime id for elide locks (stable across --jobs because
  // each sweep cell owns its runtime and constructs locks in program order).
  uint32_t alloc_elide_lock_id() { return next_elide_lock_id_++; }

  // Hands out `nlines` fresh cache lines in the elide region (mem/layout.h)
  // for lock words, prefaulted host-side. Line-granular so independent lock
  // words never share a line (a subscribed word must not see false
  // conflicts from a neighbour's traffic).
  Addr alloc_elide_lines(uint32_t nlines);

  // Installs (or clears, with nullptr) the atomic-block observer used by
  // src/check's history recorder. Call before run(). Executors read the
  // observer slot at call time (including from their STM serialize hooks);
  // machine-level TraceHooks are the recorder's own responsibility.
  void set_observer(TxObserver* obs) { observer_ = obs; }

 private:
  friend class TxCtx;

  void execute_atomic(TxCtx& ctx, util::FnRef<void()> body, uint32_t site);

  RunConfig cfg_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<mem::SimHeap> heap_;
  std::unique_ptr<obs::Pmu> pmu_;         // before sink_: the sink borrows it
  std::unique_ptr<obs::MetricsHub> hub_;  // before sink_: the sink borrows it
  std::unique_ptr<obs::TraceSink> sink_;  // before exec_: executors borrow it
  std::unique_ptr<TxExecutor> exec_;
  std::vector<std::unique_ptr<TxCtx>> ctxs_;
  TxObserver* observer_ = nullptr;
  bool ran_ = false;
  uint32_t next_elide_lock_id_ = 0;
  uint64_t next_elide_line_ = 0;

  // Measurement window.
  std::optional<sim::MachineStats> mark_stats_;
  sim::Cycles mark_wall_ = 0;
  double mark_core_busy_ = 0;
  htm::RtmStats mark_rtm_;
  stm::StmStats mark_stm_;
};

}  // namespace tsx::core
