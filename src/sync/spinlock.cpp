#include "sync/spinlock.h"

namespace tsx::sync {

void TicketSpinLock::lock() {
  Word my_ticket = m_.fetch_add(next_addr(), 1);
  while (m_.load(serving_addr()) != my_ticket) {
    m_.pause();
  }
}

void TicketSpinLock::unlock() {
  Word serving = m_.load(serving_addr());
  m_.store(serving_addr(), serving + 1);
}

bool TicketSpinLock::try_lock() {
  Word serving = m_.load(serving_addr());
  Word next = m_.load(next_addr());
  if (next != serving) return false;
  // Claim the next ticket only if nobody else took it meanwhile.
  return m_.cas(next_addr(), next, next + 1);
}

bool TicketSpinLock::is_locked() {
  Word next = m_.load(next_addr());
  Word serving = m_.load(serving_addr());
  return next != serving;
}

void TasSpinLock::lock() {
  for (;;) {
    if (m_.load(base_) == 0 && m_.cas(base_, 0, 1)) return;
    m_.pause();
  }
}

bool TasSpinLock::try_lock() {
  return m_.load(base_) == 0 && m_.cas(base_, 0, 1);
}

void TasSpinLock::unlock() { m_.store(base_, 0); }

bool TasSpinLock::is_locked() { return m_.load(base_) != 0; }

bool SerialRwLock::read_can_lock() { return m_.load(writer_addr()) == 0; }

void SerialRwLock::read_lock() {
  for (;;) {
    m_.fetch_add(reader_addr(), 1);
    if (m_.load(writer_addr()) == 0) return;
    // A writer is present or arrived: back out and wait.
    m_.fetch_add(reader_addr(), static_cast<Word>(-1));
    while (m_.load(writer_addr()) != 0) m_.pause();
  }
}

void SerialRwLock::read_unlock() {
  m_.fetch_add(reader_addr(), static_cast<Word>(-1));
}

void SerialRwLock::write_lock() {
  while (!m_.cas(writer_addr(), 0, 1)) m_.pause();
  while (m_.load(reader_addr()) != 0) m_.pause();
}

void SerialRwLock::write_unlock() { m_.store(writer_addr(), 0); }

bool SerialRwLock::try_read_lock() {
  m_.fetch_add(reader_addr(), 1);
  if (m_.load(writer_addr()) == 0) return true;
  m_.fetch_add(reader_addr(), static_cast<Word>(-1));
  return false;
}

bool SerialRwLock::try_write_lock() {
  if (!m_.cas(writer_addr(), 0, 1)) return false;
  if (m_.load(reader_addr()) != 0) {
    // Readers in flight: back out instead of waiting them down.
    m_.store(writer_addr(), 0);
    return false;
  }
  return true;
}

}  // namespace tsx::sync
