#pragma once
// Classic synchronization primitives implemented on *simulated* memory, so
// their coherence behaviour (lock-line ping-pong, hold-and-wait) costs what
// it costs on the modeled machine. These are the paper's comparison points
// in Table I and the lock-based TM fallback path.
//
// Each primitive occupies one or more words of simulated memory that the
// caller provides (typically from the simulated heap, one per cache line to
// avoid false sharing).

#include "sim/machine.h"
#include "sim/types.h"

namespace tsx::sync {

using sim::Addr;
using sim::Machine;
using sim::Word;

// Ticket spinlock, like the pre-queued-spinlock Linux kernel
// arch/x86/include/asm/spinlock.h the paper benchmarks against.
// Layout: word 0 = next ticket, word 1 = now serving.
class TicketSpinLock {
 public:
  static constexpr uint64_t kFootprintBytes = 2 * sim::kWordBytes;

  TicketSpinLock(Machine& m, Addr base) : m_(m), base_(base) {}

  // Initializes the lock words (host-side, no cost).
  void init() {
    m_.poke(next_addr(), 0);
    m_.poke(serving_addr(), 0);
  }

  void lock();
  // Takes a ticket only when it would be served immediately; never waits.
  bool try_lock();
  void unlock();
  bool is_locked();  // simulated read

 private:
  Addr next_addr() const { return base_; }
  Addr serving_addr() const { return base_ + sim::kWordBytes; }

  Machine& m_;
  Addr base_;
};

// Test-and-test-and-set spinlock on a single word (0 = free, 1 = held).
class TasSpinLock {
 public:
  static constexpr uint64_t kFootprintBytes = sim::kWordBytes;

  TasSpinLock(Machine& m, Addr base) : m_(m), base_(base) {}

  void init() { m_.poke(base_, 0); }

  void lock();
  bool try_lock();
  void unlock();
  bool is_locked();

 private:
  Machine& m_;
  Addr base_;
};

// Reader/writer lock used as the RTM serial fallback (Algorithm 1 in the
// paper). Writer-preferring would risk starving the elided path, so this is
// a simple fair-enough implementation:
//   word 0: writer flag (0/1), word 1: reader count.
//
// The key operation for lock elision is `read_can_lock()` — a plain load of
// the writer word. An RTM transaction performs it *inside* the transaction,
// which puts the lock line into the tx read-set: a later write_lock() by a
// thread entering the fallback conflicts and aborts all subscribed
// transactions (the paper's "lock aborts").
class SerialRwLock {
 public:
  static constexpr uint64_t kFootprintBytes = 2 * sim::kWordBytes;

  SerialRwLock(Machine& m, Addr base) : m_(m), base_(base) {}

  void init() {
    m_.poke(writer_addr(), 0);
    m_.poke(reader_addr(), 0);
  }

  // Plain simulated load of the writer word; safe inside a transaction.
  bool read_can_lock();

  void read_lock();
  void read_unlock();
  void write_lock();
  void write_unlock();

  // Non-blocking acquires, needed by elision fallback paths (src/elide)
  // that must bound the time spent holding other resources. try_read_lock
  // uses read_lock's optimistic increment-then-check protocol, so a failed
  // try still costs two reader-count RMWs (the real coherence price).
  bool try_read_lock();
  bool try_write_lock();

  Addr writer_addr() const { return base_; }
  Addr reader_addr() const { return base_ + sim::kWordBytes; }

 private:

  Machine& m_;
  Addr base_;
};

}  // namespace tsx::sync
