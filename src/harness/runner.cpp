#include "harness/runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/json.h"

namespace tsx::harness {

namespace {

using util::json_escape;
using util::json_fixed;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void Digest::bytes(const void* p, size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) {
    h_ ^= b[i];
    h_ *= 1099511628211ull;
  }
}

void Digest::add_u64(uint64_t v) { bytes(&v, sizeof(v)); }

void Digest::add(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  add_u64(bits);
}

void Digest::add(const std::string& s) {
  bytes(s.data(), s.size());
  add_u64(s.size());  // length-delimit fields
}

std::string Digest::hex() const {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

Runner::Runner(RunnerOptions opt) : opt_(std::move(opt)) {
  jobs_ = opt_.jobs;
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

void Runner::run(std::vector<Job> jobs) {
  const size_t n = jobs.size();
  std::ostream& progress =
      opt_.progress_stream ? *opt_.progress_stream : std::cerr;
  const Clock::time_point t0 = Clock::now();
  std::vector<double> job_seconds(n, 0.0);
  std::vector<std::exception_ptr> errors(n);

  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(jobs_, n ? n : 1));

  // Resolve the progress policy once: quiet wins, then the environment,
  // then the explicit assume_tty override, then auto-detection (an injected
  // progress_stream is a test seam that wants the lines; plain stderr emits
  // only when it is a terminal, so redirected logs stay clean).
  bool progress_on = !opt_.quiet;
  if (progress_on) {
    if (const char* env = std::getenv("TSXLAB_PROGRESS")) {
      progress_on = std::strcmp(env, "0") != 0;
    } else if (opt_.assume_tty >= 0) {
      progress_on = opt_.assume_tty != 0;
    } else if (opt_.progress_stream) {
      progress_on = true;
    } else {
      progress_on = isatty(fileno(stderr)) != 0;
    }
  }

  std::mutex io_mu;
  double last_report = 0.0;
  auto report = [&](size_t done, bool final) {
    if (!progress_on) return;
    double el = seconds_since(t0);
    {
      std::lock_guard<std::mutex> g(io_mu);
      // Throttle: at most ~1 line/second plus the final summary.
      if (!final && el - last_report < 1.0) return;
      last_report = el;
      progress << "[" << opt_.bench_id << "] " << done << "/" << n
               << " jobs, " << (workers > 1 ? "jobs=" : "serial, jobs=")
               << workers << ", " << static_cast<int>(el * 10) / 10.0
               << "s elapsed" << (final ? " (done)" : "") << "\n";
    }
  };

  auto run_one = [&](size_t i) {
    const Clock::time_point j0 = Clock::now();
    try {
      jobs[i].fn();
    } catch (...) {
      errors[i] = std::current_exception();
    }
    job_seconds[i] = seconds_since(j0);
  };

  if (workers <= 1) {
    // Exact serial path: inline, in index order, on the calling thread.
    for (size_t i = 0; i < n; ++i) {
      run_one(i);
      report(i + 1, false);
    }
  } else {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          run_one(i);
          report(done.fetch_add(1, std::memory_order_relaxed) + 1, false);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  report(n, true);

  emit_manifest(jobs, job_seconds, seconds_since(t0));

  for (size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

void Runner::emit_manifest(const std::vector<Job>& jobs,
                           const std::vector<double>& job_seconds,
                           double wall_seconds) const {
  std::ofstream file;
  std::ostream* os = opt_.manifest_stream;
  if (!os) {
    if (opt_.manifest.empty()) return;
    if (opt_.manifest == "-" || opt_.manifest == "true") {
      os = &std::cerr;
    } else {
      file.open(opt_.manifest);
      if (!file) {
        std::cerr << "[" << opt_.bench_id << "] cannot write manifest to '"
                  << opt_.manifest << "'\n";
        return;
      }
      os = &file;
    }
  }
  Digest d;  // FNV-1a over config digest + per-job seeds: one run fingerprint
  d.add(opt_.config_digest);
  for (const Job& j : jobs) d.add(j.seed);
  char cfg_hex[19];
  std::snprintf(cfg_hex, sizeof(cfg_hex), "0x%016llx",
                static_cast<unsigned long long>(opt_.config_digest));

  std::string counter_digest;
  if (opt_.counter_digest_fn) counter_digest = opt_.counter_digest_fn();

  *os << "{\n"
      << "  \"bench\": \"" << json_escape(opt_.bench_id) << "\",\n"
      << "  \"config_digest\": \"" << cfg_hex << "\",\n"
      << "  \"run_digest\": \"" << d.hex() << "\",\n";
  if (!counter_digest.empty()) {
    *os << "  \"counter_digest\": \"" << json_escape(counter_digest)
        << "\",\n";
  }
  std::string metrics_digest;
  if (opt_.metrics_digest_fn) metrics_digest = opt_.metrics_digest_fn();
  if (!metrics_digest.empty()) {
    *os << "  \"metrics_digest\": \"" << json_escape(metrics_digest)
        << "\",\n";
  }
  std::string elide_locks;
  if (opt_.elide_locks_fn) elide_locks = opt_.elide_locks_fn();
  if (!elide_locks.empty()) {
    // Pre-rendered JSON array of per-lock elision counters.
    *os << "  \"elide_locks\": " << elide_locks << ",\n";
  }
  std::string heap;
  if (opt_.heap_fn) heap = opt_.heap_fn();
  if (!heap.empty()) {
    // Pre-rendered JSON object of summed heap/placement counters.
    *os << "  \"heap\": " << heap << ",\n";
  }
  *os << "  \"jobs_flag\": " << jobs_ << ",\n"
      << "  \"total_jobs\": " << jobs.size() << ",\n"
      << "  \"wall_seconds\": " << json_fixed(wall_seconds, 6) << ",\n"
      << "  \"jobs\": [\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    *os << "    {\"index\": " << i << ", \"label\": \""
        << json_escape(jobs[i].label) << "\", \"seed\": " << jobs[i].seed
        << ", \"seconds\": " << json_fixed(job_seconds[i], 6) << "}"
        << (i + 1 < jobs.size() ? ",\n" : "\n");
  }
  *os << "  ]\n}\n";
  os->flush();
}

}  // namespace tsx::harness
