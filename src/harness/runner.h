#pragma once
// bench::Runner lives here: a thread pool that fans a vector of independent
// simulation Jobs across host cores and aggregates results *in index order*,
// so driver output is byte-identical regardless of completion order or
// thread count.
//
// Safety precondition (audited in DESIGN/tests): a tsxlab simulation
// (TxRuntime + Machine + SimHeap + fibers) is a self-contained object graph
// with no mutable global state, and a Fiber is created, resumed and
// destroyed on one host thread only. Hence any number of *distinct*
// TxRuntime instances may run on distinct host threads concurrently; a Job
// must simply own every runtime it touches. tests/test_harness.cpp proves
// the determinism end-to-end (jobs=1 vs jobs=8 digests).
//
// Exactness guarantees:
//   * jobs = 1 runs every Job inline on the calling thread, in index order —
//     today's serial path, byte for byte (no pool is spawned).
//   * jobs > 1 runs Jobs on a pool; each Job writes only its own result slot
//     (closure capture), and callers read the slots in index order after
//     run() returns, so aggregation order — including floating-point
//     summation order — matches the serial path.
//   * If Jobs throw, run() rethrows the exception of the lowest-indexed
//     failed Job after the pool drains (deterministic failure choice).
//
// Progress goes to stderr (throttled); stdout stays owned by the driver.
// An optional JSON run manifest (bench id, config digest, per-job seed and
// wall time) supports reproducibility audits; see EXPERIMENTS.md §"Running
// sweeps in parallel".

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace tsx::harness {

// FNV-1a accumulator for the manifest's sim-config digest. Drivers feed the
// fields that determine their workload (backend ids, thread counts, sweep
// parameters, seeds); equal digests => same job grid.
class Digest {
 public:
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  void add(T v) {
    add_u64(static_cast<uint64_t>(v));
  }
  void add(double v);
  void add(const std::string& s);
  uint64_t value() const { return h_; }
  std::string hex() const;

 private:
  void add_u64(uint64_t v);
  void bytes(const void* p, size_t n);
  uint64_t h_ = 14695981039346656037ull;
};

struct Job {
  // Runs the simulation and stores its result via closure capture. Must not
  // touch stdout and must own every TxRuntime/Machine it creates.
  std::function<void()> fn;
  // Recorded in the manifest; purely descriptive.
  uint64_t seed = 0;
  std::string label;
};

struct RunnerOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency(). 1 = exact
  // serial path (jobs run inline, no pool).
  unsigned jobs = 0;
  // Bench id shown in progress lines and recorded in the manifest.
  std::string bench_id = "bench";
  // Digest of the simulated configuration (see Digest above).
  uint64_t config_digest = 0;
  // Manifest destination: "" = off, "-" or "true" (bare --manifest) =
  // stderr, anything else = file path.
  std::string manifest;
  // Test seams: redirect progress / manifest to a stream. Progress defaults
  // to stderr; a non-null manifest_stream overrides `manifest`.
  std::ostream* progress_stream = nullptr;
  std::ostream* manifest_stream = nullptr;
  // Suppress progress lines entirely (tests).
  bool quiet = false;
  // Progress-line policy: -1 = auto (emit only when the destination is a
  // terminal — a set progress_stream counts as one, otherwise isatty on
  // stderr), 0 = force off, 1 = force on. The TSXLAB_PROGRESS environment
  // variable ("0" off, anything else on) overrides this; quiet overrides
  // everything. Keeps redirected logs free of throttled status lines.
  int assume_tty = -1;
  // Optional observability-counter fingerprint, recorded in the manifest as
  // "counter_digest". Called once, after every job has completed (so drivers
  // can hash the obs registry's PMU counters); an empty result omits the
  // field. Must be deterministic w.r.t. --jobs — CI diffs it.
  std::function<std::string()> counter_digest_fn;
  // Optional windowed-metrics fingerprint (obs::Registry::metrics_digest),
  // recorded in the manifest as "metrics_digest". Same contract as
  // counter_digest_fn: called once after every job completed, empty result
  // omits the field, must be deterministic w.r.t. --jobs.
  std::function<std::string()> metrics_digest_fn;
  // Optional per-lock elision counters, recorded in the manifest as
  // "elide_locks". Called once after every job completed; returns the
  // pre-rendered JSON array value (e.g. `[{"name": "m", ...}]`) or an empty
  // string to omit the field. Must be deterministic w.r.t. --jobs.
  std::function<std::string()> elide_locks_fn;
  // Optional simulated-heap counters, recorded in the manifest as "heap".
  // Same contract as elide_locks_fn: pre-rendered JSON object value or an
  // empty string to omit; deterministic w.r.t. --jobs.
  std::function<std::string()> heap_fn;
};

class Runner {
 public:
  explicit Runner(RunnerOptions opt);

  // Executes all jobs and blocks until every one finished (or was abandoned
  // after a failure was recorded; queued jobs still run — results are
  // complete either way). Rethrows the lowest-indexed Job failure.
  void run(std::vector<Job> jobs);

  // Resolved worker count (after the 0 = hardware_concurrency default).
  unsigned jobs() const { return jobs_; }

  // Fan-out convenience: results[i] = fn(i), in index order. meta(i) supplies
  // the manifest seed/label for job i.
  template <typename T, typename Fn, typename MetaFn>
  std::vector<T> map(size_t n, Fn fn, MetaFn meta) {
    std::vector<T> out(n);
    std::vector<Job> js;
    js.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Job j = meta(i);
      j.fn = [&out, fn, i] { out[i] = fn(i); };
      js.push_back(std::move(j));
    }
    run(std::move(js));
    return out;
  }

 private:
  void emit_manifest(const std::vector<Job>& jobs,
                     const std::vector<double>& job_seconds,
                     double wall_seconds) const;

  RunnerOptions opt_;
  unsigned jobs_ = 1;
};

}  // namespace tsx::harness
