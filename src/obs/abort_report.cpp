#include "obs/abort_report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/table.h"

namespace tsx::obs {

namespace {

std::string site_label(const Capture& c, uint32_t site) {
  auto it = c.site_names.find(site);
  if (it != c.site_names.end()) return it->second;
  if (site == kNoSite) return "(none)";
  return "site#" + std::to_string(site);
}

// Top-k entries of a count map, "key:count" joined with spaces; ties break
// toward the smaller key so the report is deterministic.
template <typename Map, typename KeyFmt>
std::string top_k(const Map& m, size_t k, KeyFmt fmt) {
  std::vector<std::pair<typename Map::key_type, uint64_t>> v(m.begin(),
                                                             m.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (v.size() > k) v.resize(k);
  std::string out;
  for (const auto& [key, count] : v) {
    if (!out.empty()) out += " ";
    out += fmt(key) + ":" + std::to_string(count);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

void write_abort_report(std::ostream& os,
                        const std::vector<Capture>& captures) {
  using sim::AbortReason;
  for (const Capture& c : captures) {
    os << "=== abort attribution: " << c.label << " ===\n";
    if (c.dropped > 0) {
      os << "(event ring dropped " << c.dropped
         << " oldest events; counts below are exact)\n";
    }
    util::Table t({"site", "attempts", "commits", "fallbacks", "aborts",
                   "conflict", "rcap", "wcap", "explicit", "fault", "insn",
                   "intr", "top lines", "top attackers"});
    auto reason_count = [](const SiteAgg& a, AbortReason r) {
      return util::Table::fmt_int(static_cast<int64_t>(
          a.aborts_by_reason[static_cast<size_t>(r)]));
    };
    for (const auto& [site, agg] : c.sites) {
      t.add_row({site_label(c, site),
                 util::Table::fmt_int(static_cast<int64_t>(agg.attempts)),
                 util::Table::fmt_int(static_cast<int64_t>(agg.commits)),
                 util::Table::fmt_int(static_cast<int64_t>(agg.fallbacks)),
                 util::Table::fmt_int(static_cast<int64_t>(agg.aborts())),
                 reason_count(agg, AbortReason::kConflict),
                 reason_count(agg, AbortReason::kReadCapacity),
                 reason_count(agg, AbortReason::kWriteCapacity),
                 reason_count(agg, AbortReason::kExplicit),
                 reason_count(agg, AbortReason::kPageFault),
                 reason_count(agg, AbortReason::kUnsupportedInsn),
                 reason_count(agg, AbortReason::kInterrupt),
                 top_k(agg.conflict_lines, 3,
                       [](uint64_t line) {
                         return "0x" + [line] {
                           char buf[32];
                           std::snprintf(buf, sizeof(buf), "%llx",
                                         static_cast<unsigned long long>(
                                             line * sim::kLineBytes));
                           return std::string(buf);
                         }();
                       }),
                 top_k(agg.attacker_sites, 3, [&](uint32_t s) {
                   return site_label(c, s);
                 })});
    }
    t.print(os);
    os << "\n";
  }
}

}  // namespace tsx::obs
