#pragma once
// MetricsHub: the live metrics plane on top of the TraceSink forwarding
// seam.
//
// Where the Pmu accumulates whole-run totals and only yields PmuData at
// finalize(), the hub folds the same event stream incrementally into fixed
// simulated-time windows and maintains per-window derived signals — abort
// rate by MISC bucket, conflict/capacity mix, wasted-cycle share, fallback
// rate, per-lock elided share — plus an online EWMA/CUSUM phase-change
// detector over those signals. That makes the run *watchable while it
// happens*: subscribe() hands every sealed window (and any phase boundary
// it triggered) to a callback, which is the seam the adaptive runtime
// (ROADMAP item 5) plugs into.
//
// Windowing is exact, not sampled: every event lands in the window that
// contains its timestamp (windows[t / window_cycles]), so for every counter
// the sum of all window deltas equals the finalized PmuData total by
// construction — regardless of the slight cross-context reordering the
// scheduler's per-context clocks produce. Cycle deltas (committed/wasted)
// are attributed to the window containing the attempt's *closing* event,
// mirroring the Pmu's accounting. Like the Pmu and SiteAgg, all aggregation
// happens at emission time and never replays the lossy event ring, so the
// per-site wasted-cycle flame profile stays exact after the ring wraps.
//
// All of this is host-side bookkeeping on simulated timestamps: an
// installed hub performs no simulated machine operation and never perturbs
// simulated results.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/pmu.h"
#include "sim/types.h"

namespace tsx::obs {

struct Capture;  // registry.h (which includes this header)

// ---- Window aggregates ----

// Per-lock elision deltas inside one window (per-lock elided% signal).
struct ElideWindowCounters {
  uint64_t acquisitions = 0;
  uint64_t elided = 0;
  uint64_t fallbacks = 0;
  sim::Cycles cycles_elided = 0;
  sim::Cycles cycles_wasted = 0;
};

// One fixed simulated-time window [start, start + window_cycles). All
// counters are deltas within the window, not cumulative.
struct MetricsWindow {
  sim::Cycles start = 0;

  // Hardware transaction lifecycle (machine forwarders).
  uint64_t hw_starts = 0;
  uint64_t hw_commits = 0;
  uint64_t hw_aborts = 0;
  std::array<uint64_t, static_cast<size_t>(sim::MiscBucket::kCount)>
      aborts_by_misc{};
  std::array<uint64_t, static_cast<size_t>(sim::AbortReason::kCount)>
      aborts_by_reason{};

  // Software transactions (STM backends, hybrid fallback).
  uint64_t stm_starts = 0;
  uint64_t stm_commits = 0;
  uint64_t stm_aborts = 0;

  uint64_t fallbacks = 0;  // retry-policy serial-fallback decisions

  // Lock-backend critical sections (hub-only seam; see
  // TraceSink::lock_section) so kLock/kCas runs produce a per-window
  // activity signal without any ring/PMU change.
  uint64_t lock_sections = 0;
  sim::Cycles lock_section_cycles = 0;

  // Attempt-window cycle deltas (closing-event attribution, like the Pmu).
  sim::Cycles committed_cycles = 0;
  sim::Cycles wasted_cycles = 0;

  // Per-lock elision deltas, keyed by lock id (sorted map iteration keeps
  // every export deterministic).
  std::map<uint32_t, ElideWindowCounters> elide;

  // ---- Derived signals (the phase detector's inputs) ----
  uint64_t attempts() const { return hw_starts + stm_starts; }
  uint64_t commits() const { return hw_commits + stm_commits; }
  uint64_t aborts() const { return hw_aborts + stm_aborts; }
  // Completed units of useful work: the activity signal that exists for
  // every backend (RTM/STM/hybrid commits, lock sections).
  uint64_t activity() const { return commits() + lock_sections; }
  double abort_rate() const {
    uint64_t a = attempts();
    return a ? static_cast<double>(aborts()) / static_cast<double>(a) : 0.0;
  }
  double conflict_share() const;   // conflict aborts / all aborts
  double capacity_share() const;   // capacity aborts / all aborts
  double wasted_share() const {    // wasted / (committed + wasted)
    sim::Cycles tx = committed_cycles + wasted_cycles;
    return tx ? static_cast<double>(wasted_cycles) / static_cast<double>(tx)
              : 0.0;
  }
  double fallback_rate() const {
    uint64_t a = attempts();
    return a ? static_cast<double>(fallbacks) / static_cast<double>(a) : 0.0;
  }
};

// ---- Phase detection ----

// One detected phase boundary: the detector's evidence crossed its decision
// threshold at window `window`; `t` is that window's start (the boundary is
// located to within one window by construction).
struct PhaseEvent {
  uint32_t window = 0;
  sim::Cycles t = 0;
  int channel = 0;    // PhaseDetector channel that fired (kChannel* below)
  int direction = 0;  // +1 signal rose, -1 signal fell
  double score = 0;   // CUSUM statistic at the decision point
};

struct MetricsConfig {
  // Window length in simulated cycles; 0 disables the hub entirely.
  sim::Cycles window_cycles = 0;

  // Phase-detector tuning (see DESIGN.md "Windowing and phase detection").
  uint32_t warmup_windows = 3;    // windows used to learn the baseline
  double ewma_alpha = 0.25;       // baseline mean/deviation smoothing
  double cusum_k = 0.5;           // per-window slack, in deviation units
  double cusum_h = 4.0;           // decision threshold, in deviation units
  uint32_t cooldown_windows = 2;  // re-learn windows after a boundary
};

// Online two-sided CUSUM over EWMA-standardized window signals. Streaming
// and causal: update() sees one sealed window at a time and reports whether
// that window crossed the decision threshold. Channels:
//   0  activity  log1p(commits + lock sections)  — throughput shifts
//   1  aborts    aborts / attempts              — contention shifts
//   2  wasted    wasted / (committed + wasted)  — speculation-cost shifts
class PhaseDetector {
 public:
  static constexpr int kChannelActivity = 0;
  static constexpr int kChannelAbortRate = 1;
  static constexpr int kChannelWastedShare = 2;
  static constexpr int kChannels = 3;

  explicit PhaseDetector(const MetricsConfig& cfg);

  // Feeds the next window; returns the boundary event (positioned at this
  // window) if the evidence crossed the threshold. After a boundary the
  // detector re-learns its baseline from the new phase.
  std::optional<PhaseEvent> update(const MetricsWindow& w);

 private:
  struct Channel {
    bool primed = false;
    double mean = 0;
    double dev = 0;  // EWMA of |residual| (robust scale)
    double up = 0;   // one-sided CUSUM statistics
    double down = 0;
  };

  void reset_baseline();

  MetricsConfig cfg_;
  std::array<Channel, kChannels> ch_{};
  uint32_t seen_ = 0;      // windows since the last baseline reset
  uint32_t windows_ = 0;   // total windows fed
  uint32_t cooldown_ = 0;  // pending re-learn windows
};

// ---- Flame profile ----

// Second stack frame of the wasted-cycle flame profile: the attacker's call
// site for attributed conflicts, the abort reason otherwise. Encoded as one
// ordered key so the per-site maps stay sorted and cheap.
constexpr uint64_t kFlameAttackerBit = uint64_t{1} << 32;
inline uint64_t flame_attacker_key(uint32_t site) {
  return kFlameAttackerBit | site;
}
inline uint64_t flame_reason_key(sim::AbortReason r) {
  return static_cast<uint64_t>(r);
}

// victim site -> (attacker-site-or-reason key -> wasted cycles).
using FlameProfile = std::map<uint32_t, std::map<uint64_t, uint64_t>>;

// ---- Finalized result (carried inside a registry Capture) ----

struct MetricsData {
  sim::Cycles window_cycles = 0;
  std::vector<MetricsWindow> windows;
  std::vector<PhaseEvent> phases;  // detector run over the exact series
  FlameProfile flame;
  std::map<uint32_t, std::string> lock_names;
};

// ---- The hub ----

class MetricsHub {
 public:
  explicit MetricsHub(MetricsConfig cfg);

  // ---- Feed (TraceSink forwards; sites pre-resolved by the sink) ----
  void hw_begin(sim::CtxId ctx, sim::Cycles t);
  void hw_commit(sim::CtxId ctx, sim::Cycles t);
  // `attacker_site` is kNoSite unless the abort has a distinct attributed
  // attacker (mirrors the sink's attacker_sites accounting).
  void hw_abort(sim::CtxId ctx, sim::Cycles t, sim::AbortReason reason,
                uint32_t victim_site, uint32_t attacker_site);
  void stm_begin(sim::CtxId ctx, sim::Cycles t);
  void stm_commit(sim::CtxId ctx, sim::Cycles t);
  void stm_abort(sim::CtxId ctx, sim::Cycles t, uint32_t victim_site,
                 uint32_t attacker_site);
  void retry_decision(sim::CtxId ctx, sim::Cycles t, bool fallback);
  void lock_section(sim::CtxId ctx, sim::Cycles t0, sim::Cycles t1);
  void elide_lock_name(uint32_t lock, const std::string& name);
  void elide_acquire(uint32_t lock, sim::Cycles t, ElideAcqKind kind,
                     sim::Cycles cycles_elided, sim::Cycles cycles_wasted);

  // ---- Live subscription (the AdaptivePolicy seam) ----
  // Called once per sealed window, in window order, with the phase boundary
  // that window triggered (if any). A window seals when the event stream's
  // high-water mark passes the *next* window's end, leaving one window of
  // slack for the scheduler's bounded cross-context clock skew; the final
  // partial window seals at finalize(). Live sealing is a low-latency view
  // of the same aggregates finalize() reports.
  using WindowCallback =
      std::function<void(const MetricsWindow&, const std::optional<PhaseEvent>&)>;
  void subscribe(WindowCallback cb) { subscribers_.push_back(std::move(cb)); }

  sim::Cycles window_cycles() const { return cfg_.window_cycles; }
  const MetricsConfig& config() const { return cfg_; }

  // Seals every remaining window, replays a fresh detector over the exact
  // window series (identical statistics to the live pass once stragglers
  // are included), and returns the immutable result.
  MetricsData finalize(sim::Cycles wall);

 private:
  struct CtxState {
    bool open = false;
    sim::Cycles begin_t = 0;
  };

  MetricsWindow& window_at(sim::Cycles t);
  void note_time(sim::Cycles t);
  void seal_through(size_t end_index);  // seals windows [sealed_, end_index)

  MetricsConfig cfg_;
  std::vector<MetricsWindow> windows_;
  std::vector<CtxState> ctx_;
  std::map<uint32_t, std::string> lock_names_;
  FlameProfile flame_;
  std::vector<WindowCallback> subscribers_;
  PhaseDetector live_detector_;
  sim::Cycles max_t_seen_ = 0;
  size_t sealed_ = 0;  // windows [0, sealed_) already delivered live
  bool finalized_ = false;
};

// ---- Exporters (captures arrive label-sorted from Registry::drain, so
// both outputs are byte-identical across --jobs values) ----

// OpenMetrics / Prometheus text exposition of every capture's final window
// series: one sample per window per metric family, labelled
// {cell="<label>",w="<index>"} (plus lock="<name>" for elision families),
// ending with "# EOF".
void write_openmetrics(std::ostream& os, const std::vector<Capture>& captures);

// Collapsed-stack flame profile ("cell;victim;attacker-or-reason cycles"
// lines), weighted by wasted cycles — feed to flamegraph.pl or speedscope.
void write_flamegraph(std::ostream& os, const std::vector<Capture>& captures);

}  // namespace tsx::obs
