#pragma once
// End-of-run per-call-site abort-attribution report.
//
// For every capture, one table row per static xbegin call site: attempts,
// commits, serial fallbacks, aborts broken down by AbortReason, the most
// frequently conflicting cache lines and the most frequent attacker sites.
// Counts come from the sink's incremental aggregation, so they are exact
// even when the event ring wrapped.

#include <iosfwd>
#include <vector>

#include "obs/registry.h"

namespace tsx::obs {

void write_abort_report(std::ostream& os, const std::vector<Capture>& captures);

}  // namespace tsx::obs
