#include "obs/chrome_trace.h"

#include <array>
#include <optional>
#include <ostream>
#include <string>

#include "sim/types.h"
#include "util/json.h"

namespace tsx::obs {

namespace {

struct Emitter {
  std::ostream& os;
  bool first = true;

  void raw(const std::string& event_json) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << event_json;
  }
};

std::string us(sim::Cycles cycles, double freq_ghz) {
  // cycles / (GHz * 1000) = microseconds. Fixed precision keeps the output
  // byte-stable.
  double f = freq_ghz > 0 ? freq_ghz : 1.0;
  return util::json_fixed(static_cast<double>(cycles) / (f * 1000.0), 3);
}

std::string site_label(const Capture& c, uint32_t site) {
  auto it = c.site_names.find(site);
  if (it != c.site_names.end()) return it->second;
  if (site == kNoSite) return "tx";
  return "tx@site" + std::to_string(site);
}

void meta_event(Emitter& em, int pid, int tid, const char* name,
                const std::string& value) {
  std::string j = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                  ",\"tid\":" + std::to_string(tid) + ",\"name\":\"" + name +
                  "\",\"args\":{\"name\":\"" + util::json_escape(value) +
                  "\"}}";
  em.raw(j);
}

struct PendingBegin {
  sim::Cycles t = 0;
  uint32_t site = kNoSite;
  uint8_t flags = 0;
};

void write_capture(Emitter& em, const Capture& c, int pid) {
  meta_event(em, pid, 0, "process_name", c.label);
  for (uint32_t t = 0; t < c.threads; ++t) {
    meta_event(em, pid, static_cast<int>(t), "thread_name",
               "hw thread " + std::to_string(t));
  }

  std::array<std::optional<PendingBegin>, sim::kMaxCtxs> open{};
  auto base = [&](const char* ph, const Event& e, sim::Cycles ts) {
    return std::string("{\"ph\":\"") + ph + "\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(e.ctx) +
           ",\"ts\":" + us(ts, c.freq_ghz);
  };

  for (const Event& e : c.events) {
    switch (e.kind) {
      case EventKind::kTxBegin:
        if (e.ctx < open.size()) open[e.ctx] = PendingBegin{e.t, e.site, e.flags};
        break;
      case EventKind::kTxCommit:
      case EventKind::kTxAbort: {
        bool abort = e.kind == EventKind::kTxAbort;
        bool have_begin = e.ctx < open.size() && open[e.ctx].has_value();
        PendingBegin b;
        if (have_begin) {
          b = *open[e.ctx];
          open[e.ctx].reset();
        }
        std::string args = std::string("\"outcome\":\"") +
                           (abort ? "abort" : "commit") + "\"";
        if (e.flags & kFlagStm) args += ",\"stm\":true";
        if (abort) {
          args += std::string(",\"reason\":\"") + abort_reason_name(e.reason) +
                  "\"";
          if (e.line != ~0ull) args += ",\"line\":" + std::to_string(e.line);
          if (e.attacker != ~sim::CtxId{0}) {
            args += ",\"attacker\":" + std::to_string(e.attacker);
            args += ",\"attacker_site\":\"" +
                    util::json_escape(site_label(c, e.attacker_site)) + "\"";
          }
        }
        if (have_begin) {
          // Complete ("X") duration event spanning begin -> outcome.
          em.raw(base("X", e, b.t) + ",\"dur\":" + us(e.t - b.t, c.freq_ghz) +
                 ",\"name\":\"" + util::json_escape(site_label(c, b.site)) +
                 "\",\"args\":{" + args + "}}");
        } else {
          // Begin was evicted from the ring: degrade to an instant event.
          em.raw(base("i", e, e.t) + ",\"s\":\"t\",\"name\":\"" +
                 util::json_escape(site_label(c, e.site)) + "\",\"args\":{" +
                 args + "}}");
        }
        if (abort) {
          em.raw(base("i", e, e.t) + ",\"s\":\"t\",\"name\":\"abort: " +
                 abort_reason_name(e.reason) + "\",\"args\":{" + args + "}}");
        }
        break;
      }
      case EventKind::kEvict:
        em.raw(base("i", e, e.t) + ",\"s\":\"t\",\"name\":\"" +
               (e.level == 1 ? "evict L1 write-set" : "evict L3 read-set") +
               "\",\"args\":{\"line\":" + std::to_string(e.line) + "}}");
        break;
      case EventKind::kRetry:
        em.raw(base("i", e, e.t) + ",\"s\":\"t\",\"name\":\"" +
               (e.decision ? "fallback" : "retry") +
               "\",\"args\":{\"site\":\"" +
               util::json_escape(site_label(c, e.site)) +
               "\",\"backoff_cycles\":" + std::to_string(e.backoff) + "}}");
        break;
      case EventKind::kEnergy: {
        Event ce = e;
        ce.ctx = 0;
        em.raw(base("C", ce, e.t) + ",\"name\":\"machine counters\"" +
               ",\"args\":{\"ops\":" + std::to_string(e.ops) +
               ",\"commits\":" + std::to_string(e.commits) +
               ",\"aborts\":" + std::to_string(e.aborts) + "}}");
        break;
      }
    }
  }
  // Transactions still open when tracing ended.
  for (uint32_t ctx = 0; ctx < open.size(); ++ctx) {
    if (!open[ctx]) continue;
    Event e;
    e.ctx = ctx;
    em.raw(base("i", e, open[ctx]->t) + ",\"s\":\"t\",\"name\":\"" +
           util::json_escape(site_label(c, open[ctx]->site)) +
           " (unfinished)\",\"args\":{}}");
  }

  // PMU counter tracks (--sample-interval): the sample stream rendered as
  // Chrome counter ("C") events alongside the span events above.
  if (c.pmu) {
    Event ce;  // counters are process-scoped; park them on tid 0
    ce.ctx = 0;
    for (const PmuSample& s : c.pmu->samples) {
      em.raw(base("C", ce, s.t) + ",\"name\":\"pmu tx\",\"args\":{\"starts\":" +
             std::to_string(s.tx_starts) +
             ",\"commits\":" + std::to_string(s.tx_commits) +
             ",\"aborts\":" + std::to_string(s.tx_aborts) + "}}");
      em.raw(base("C", ce, s.t) +
             ",\"name\":\"pmu tx cycles\",\"args\":{\"committed\":" +
             std::to_string(s.committed_cycles) +
             ",\"wasted\":" + std::to_string(s.wasted_cycles) + "}}");
      em.raw(base("C", ce, s.t) +
             ",\"name\":\"pmu memory\",\"args\":{\"l1_hits\":" +
             std::to_string(s.l1_hits) +
             ",\"l2_hits\":" + std::to_string(s.l2_hits) +
             ",\"l3_hits\":" + std::to_string(s.l3_hits) +
             ",\"mem\":" + std::to_string(s.mem_accesses) + "}}");
    }
  }

  // Phase boundaries from the metrics hub: process-scoped instant events, so
  // the detected steady/flash-crowd/write-burst edges line up against the
  // span and counter tracks above.
  if (c.metrics) {
    static const char* kChannelNames[] = {"activity", "abort-rate",
                                          "wasted-share"};
    for (const PhaseEvent& pe : c.metrics->phases) {
      Event ce;
      ce.ctx = 0;
      const char* chan =
          pe.channel >= 0 && pe.channel < 3 ? kChannelNames[pe.channel] : "?";
      em.raw(base("i", ce, pe.t) + ",\"s\":\"p\",\"name\":\"phase change\"" +
             ",\"args\":{\"window\":" + std::to_string(pe.window) +
             ",\"channel\":\"" + chan + "\",\"direction\":\"" +
             (pe.direction > 0 ? "rise" : "fall") + "\",\"score\":" +
             util::json_fixed(pe.score, 2) + "}}");
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<Capture>& captures) {
  os << "{\"traceEvents\":[\n";
  Emitter em{os};
  int pid = 1;
  for (const Capture& c : captures) write_capture(em, c, pid++);
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace tsx::obs
