#include "obs/timeseries.h"

#include <ostream>

#include "obs/registry.h"
#include "util/table.h"

namespace tsx::obs {

void write_timeseries_csv(std::ostream& os,
                          const std::vector<Capture>& captures) {
  os << "label,t_cycles,ops,loads,stores,l1_hits,l2_hits,l3_hits,"
        "mem_accesses,tx_starts,tx_commits,tx_aborts,"
        "tx_aborts_misc1,tx_aborts_misc2,tx_aborts_misc3,tx_aborts_misc4,"
        "tx_aborts_misc5,fallbacks,committed_tx_cycles,wasted_tx_cycles\n";
  for (const Capture& c : captures) {
    if (!c.pmu) continue;
    for (const PmuSample& s : c.pmu->samples) {
      os << util::Table::csv_escape(c.label) << "," << s.t << "," << s.ops << ","
         << s.loads << "," << s.stores << "," << s.l1_hits << "," << s.l2_hits
         << "," << s.l3_hits << "," << s.mem_accesses << "," << s.tx_starts
         << "," << s.tx_commits << "," << s.tx_aborts;
      for (uint64_t m : s.aborts_misc) os << "," << m;
      os << "," << s.fallbacks << "," << s.committed_cycles << ","
         << s.wasted_cycles << "\n";
    }
  }
}

}  // namespace tsx::obs
