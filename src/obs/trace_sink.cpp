#include "obs/trace_sink.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/pmu.h"

namespace tsx::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx_begin";
    case EventKind::kTxCommit: return "tx_commit";
    case EventKind::kTxAbort: return "tx_abort";
    case EventKind::kEvict: return "evict";
    case EventKind::kRetry: return "retry";
    case EventKind::kEnergy: return "energy";
  }
  return "?";
}

TraceSink::TraceSink(size_t capacity)
    : cap_(capacity), arena_(capacity * sizeof(Event)) {
  if (capacity == 0) throw std::invalid_argument("TraceSink capacity == 0");
  ring_ = arena_.alloc_array<Event>(capacity);
  cur_site_.fill(kNoSite);
}

void TraceSink::push(const Event& e) {
  if (size_ < cap_) {
    ring_[size_++] = e;
    return;
  }
  ring_[head_] = e;  // overwrite the oldest
  head_ = (head_ + 1) % cap_;
  ++dropped_;
}

void TraceSink::set_site(sim::CtxId ctx, uint32_t site) {
  if (ctx < cur_site_.size()) cur_site_[ctx] = site;
}

void TraceSink::retry_decision(sim::CtxId ctx, sim::Cycles t, bool fallback,
                               sim::Cycles backoff) {
  Event e;
  e.kind = EventKind::kRetry;
  e.ctx = ctx;
  e.t = t;
  e.site = cur_site(ctx);
  e.decision = fallback ? 1 : 0;
  e.backoff = backoff;
  push(e);
  if (fallback) ++sites_[e.site].fallbacks;
  if (pmu_) pmu_->retry_decision(ctx, fallback);
  if (hub_) hub_->retry_decision(ctx, t, fallback);
}

void TraceSink::lock_section(sim::CtxId ctx, sim::Cycles t0, sim::Cycles t1) {
  if (hub_) hub_->lock_section(ctx, t0, t1);
}

void TraceSink::elide_lock_name(uint32_t lock, const std::string& name) {
  if (pmu_) pmu_->elide_lock_name(lock, name);
  if (hub_) hub_->elide_lock_name(lock, name);
}

void TraceSink::elide_acquire(uint32_t lock, sim::CtxId ctx, sim::Cycles t,
                              ElideAcqKind kind, uint64_t attempts,
                              sim::Cycles cycles_elided,
                              sim::Cycles cycles_wasted, bool self_stopped) {
  // PMU/hub-only: per-lock counters are exact aggregates, not ring events,
  // so elision-free traces (and their goldens) are unchanged. `ctx` is part
  // of the seam for future per-thread attribution; the PMU aggregates per
  // lock, the hub per lock per window.
  (void)ctx;
  if (pmu_) {
    pmu_->elide_acquire(lock, kind, attempts, cycles_elided, cycles_wasted,
                        self_stopped);
  }
  if (hub_) hub_->elide_acquire(lock, t, kind, cycles_elided, cycles_wasted);
}

void TraceSink::tx_begin(sim::CtxId ctx, sim::Cycles t) {
  Event e;
  e.kind = EventKind::kTxBegin;
  e.ctx = ctx;
  e.t = t;
  e.site = cur_site(ctx);
  push(e);
  ++sites_[e.site].attempts;
  if (pmu_) pmu_->tx_begin(ctx, t, false);
  if (hub_) hub_->hw_begin(ctx, t);
}

void TraceSink::tx_commit(sim::CtxId ctx, sim::Cycles t) {
  Event e;
  e.kind = EventKind::kTxCommit;
  e.ctx = ctx;
  e.t = t;
  e.site = cur_site(ctx);
  push(e);
  ++sites_[e.site].commits;
  if (pmu_) pmu_->tx_commit(ctx, t, false);
  if (hub_) hub_->hw_commit(ctx, t);
}

void TraceSink::tx_abort(sim::CtxId victim, sim::Cycles t,
                         sim::AbortReason reason, uint64_t line,
                         sim::CtxId attacker) {
  Event e;
  e.kind = EventKind::kTxAbort;
  e.ctx = victim;
  e.t = t;
  e.site = cur_site(victim);
  e.reason = reason;
  e.line = line;
  e.attacker = attacker;
  e.attacker_site = attacker < cur_site_.size() ? cur_site_[attacker] : kNoSite;
  push(e);
  SiteAgg& agg = sites_[e.site];
  ++agg.aborts_by_reason[static_cast<size_t>(reason)];
  if (line != ~0ull) ++agg.conflict_lines[line];
  if (e.attacker_site != kNoSite && attacker != victim) {
    ++agg.attacker_sites[e.attacker_site];
  }
  if (pmu_) pmu_->tx_abort(victim, t, false);
  if (hub_) {
    uint32_t attacker_site = e.attacker_site != kNoSite && attacker != victim
                                 ? e.attacker_site
                                 : kNoSite;
    hub_->hw_abort(victim, t, reason, e.site, attacker_site);
  }
}

void TraceSink::evict(sim::CtxId by, sim::Cycles t, int level, uint64_t line) {
  Event e;
  e.kind = EventKind::kEvict;
  e.ctx = by;
  e.t = t;
  e.level = static_cast<uint8_t>(level);
  e.line = line;
  push(e);
}

void TraceSink::energy_sample(sim::Cycles t, const sim::MachineStats& stats) {
  Event e;
  e.kind = EventKind::kEnergy;
  e.t = t;
  e.ops = stats.ops;
  e.commits = stats.tx.committed;
  e.aborts = stats.tx.aborted();
  push(e);
  if (pmu_) pmu_->sample(t, stats);
}

void TraceSink::stm_begin(sim::CtxId ctx, sim::Cycles t, uint32_t site) {
  set_site(ctx, site);
  Event e;
  e.kind = EventKind::kTxBegin;
  e.flags = kFlagStm;
  e.ctx = ctx;
  e.t = t;
  e.site = site;
  push(e);
  ++sites_[site].attempts;
  if (pmu_) pmu_->tx_begin(ctx, t, true);
  if (hub_) hub_->stm_begin(ctx, t);
}

void TraceSink::stm_commit(sim::CtxId ctx, sim::Cycles t) {
  Event e;
  e.kind = EventKind::kTxCommit;
  e.flags = kFlagStm;
  e.ctx = ctx;
  e.t = t;
  e.site = cur_site(ctx);
  push(e);
  ++sites_[e.site].commits;
  if (pmu_) pmu_->tx_commit(ctx, t, true);
  if (hub_) hub_->stm_commit(ctx, t);
}

void TraceSink::stm_abort(sim::CtxId ctx, sim::Cycles t, uint64_t line,
                          sim::CtxId attacker) {
  Event e;
  e.kind = EventKind::kTxAbort;
  e.flags = kFlagStm;
  e.ctx = ctx;
  e.t = t;
  e.site = cur_site(ctx);
  // STM aborts are data conflicts by construction (lock-word or validation
  // failures); the precise software cause is reported by StmStats.
  e.reason = sim::AbortReason::kConflict;
  e.line = line;
  e.attacker = attacker;
  e.attacker_site = attacker < cur_site_.size() ? cur_site_[attacker] : kNoSite;
  push(e);
  SiteAgg& agg = sites_[e.site];
  ++agg.aborts_by_reason[static_cast<size_t>(sim::AbortReason::kConflict)];
  if (line != ~0ull) ++agg.conflict_lines[line];
  if (e.attacker_site != kNoSite && attacker != ctx) {
    ++agg.attacker_sites[e.attacker_site];
  }
  if (pmu_) pmu_->tx_abort(ctx, t, true);
  if (hub_) {
    uint32_t attacker_site = e.attacker_site != kNoSite && attacker != ctx
                                 ? e.attacker_site
                                 : kNoSite;
    hub_->stm_abort(ctx, t, e.site, attacker_site);
  }
}

std::vector<Event> TraceSink::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  if (size_ < cap_) {
    out.assign(ring_, ring_ + size_);
    return out;
  }
  for (size_t i = 0; i < cap_; ++i) {
    out.push_back(ring_[(head_ + i) % cap_]);
  }
  return out;
}

void TraceSink::set_site_name(uint32_t site, std::string name) {
  site_names_[site] = std::move(name);
}

std::string TraceSink::site_name(uint32_t site) const {
  auto it = site_names_.find(site);
  if (it != site_names_.end()) return it->second;
  if (site == kNoSite) return "(none)";
  return "site#" + std::to_string(site);
}

}  // namespace tsx::obs
