#pragma once
// CSV export of the PMU counter time series (--sample-interval samples).
//
// One row per sample per capture, keyed by the capture's task label.
// Captures arrive sorted by label from Registry::drain and samples are in
// simulated-time order within a capture, so the CSV is byte-identical
// across harness --jobs values. All values are cumulative counters at the
// sample's window boundary (diff consecutive rows for rates).

#include <iosfwd>
#include <vector>

namespace tsx::obs {

struct Capture;

void write_timeseries_csv(std::ostream& os,
                          const std::vector<Capture>& captures);

}  // namespace tsx::obs
