#pragma once
// TraceSink: a bounded ring buffer of typed trace events plus exact
// per-call-site abort attribution.
//
// The ring keeps the newest `capacity` events (oldest are overwritten and
// counted in dropped()); the per-site aggregation is maintained
// incrementally on every emission, so the abort-attribution table stays
// exact even after the ring wraps.
//
// All emission is host-side work: pushing an event performs no simulated
// machine operation, so an installed sink never perturbs simulated timing.
// The sink learns each context's current static call site from the engines
// (set_site) and uses it to label machine-level begin/commit/abort events
// and to resolve an abort's attacker context to the attacker's site.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/events.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "util/arena.h"

namespace tsx::obs {

class Pmu;
class MetricsHub;                   // obs/metrics.h
enum class ElideAcqKind : uint8_t;  // obs/pmu.h

// Exact per-site attribution (independent of ring capacity).
struct SiteAgg {
  uint64_t attempts = 0;   // hardware or STM attempts started
  uint64_t commits = 0;
  uint64_t fallbacks = 0;  // serial-fallback decisions at this site
  std::array<uint64_t, static_cast<size_t>(sim::AbortReason::kCount)>
      aborts_by_reason{};
  std::map<uint64_t, uint64_t> conflict_lines;  // line -> abort count
  std::map<uint32_t, uint64_t> attacker_sites;  // attacker site -> abort count

  uint64_t aborts() const {
    uint64_t s = 0;
    for (uint64_t a : aborts_by_reason) s += a;
    return s;
  }
};

class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 1 << 16);

  // Optional simulated-PMU accumulator: every attempt-lifecycle emission,
  // retry decision and counter sample is forwarded, so the PMU sees the
  // exact event stream of all backends (hardware attempts arrive through
  // the machine forwarders, software attempts through stm_*) without any
  // executor knowing about it. Not owned.
  void set_pmu(Pmu* pmu) { pmu_ = pmu; }

  // Optional windowed-metrics hub (obs/metrics.h): the same forwarding seam
  // as the PMU, but folded into fixed simulated-time windows with sites
  // pre-resolved. Not owned.
  void set_hub(MetricsHub* hub) { hub_ = hub; }

  // ---- Engine-side ----
  // Declares `site` as ctx's current static call site (host-side, no
  // event). Engines call this at the top of every execute().
  void set_site(sim::CtxId ctx, uint32_t site);
  // Records a retry-policy decision after a failed attempt.
  void retry_decision(sim::CtxId ctx, sim::Cycles t, bool fallback,
                      sim::Cycles backoff);
  // One completed lock-backend critical section [t0, t1). Hub-only (no ring
  // event, no PMU counter): it gives kLock/kCas runs a per-window activity
  // signal while leaving every pre-hub trace, report and digest unchanged.
  void lock_section(sim::CtxId ctx, sim::Cycles t0, sim::Cycles t1);

  // ---- Machine ObsHooks forwarders (hardware transactions) ----
  void tx_begin(sim::CtxId ctx, sim::Cycles t);
  void tx_commit(sim::CtxId ctx, sim::Cycles t);
  void tx_abort(sim::CtxId victim, sim::Cycles t, sim::AbortReason reason,
                uint64_t line, sim::CtxId attacker);
  void evict(sim::CtxId by, sim::Cycles t, int level, uint64_t line);
  // Sample-window boundary (the machine's unified counter-sampling path;
  // kEnergy events keep their historical name).
  void energy_sample(sim::Cycles t, const sim::MachineStats& stats);

  // ---- STM attempt lifecycle (software transactions bypass the machine's
  // hardware-tx state, so the STM executor reports them directly) ----
  void stm_begin(sim::CtxId ctx, sim::Cycles t, uint32_t site);
  void stm_commit(sim::CtxId ctx, sim::Cycles t);
  void stm_abort(sim::CtxId ctx, sim::Cycles t, uint64_t line,
                 sim::CtxId attacker);

  // ---- Elide-lock reporting (src/elide; PMU-only, no ring events, so
  // existing trace goldens are unaffected by elision-free runs) ----
  void elide_lock_name(uint32_t lock, const std::string& name);
  void elide_acquire(uint32_t lock, sim::CtxId ctx, sim::Cycles t,
                     ElideAcqKind kind, uint64_t attempts,
                     sim::Cycles cycles_elided, sim::Cycles cycles_wasted,
                     bool self_stopped);

  // ---- Inspection / export ----
  // Events oldest -> newest (at most `capacity`).
  std::vector<Event> events() const;
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }
  // Number of events overwritten because the ring was full.
  size_t dropped() const { return dropped_; }

  const std::map<uint32_t, SiteAgg>& sites() const { return sites_; }

  // Optional human-readable site names for reports ("site#N" otherwise).
  void set_site_name(uint32_t site, std::string name);
  std::string site_name(uint32_t site) const;
  const std::map<uint32_t, std::string>& site_names() const {
    return site_names_;
  }

 private:
  void push(const Event& e);
  uint32_t cur_site(sim::CtxId ctx) const {
    return ctx < cur_site_.size() ? cur_site_[ctx] : kNoSite;
  }

  size_t cap_;
  // Ring storage allocated once at full capacity from the arena (events are
  // flat PODs, never destroyed element-wise), so emission can never trigger
  // a vector reallocation mid-run.
  util::Arena arena_;
  Event* ring_;
  size_t size_ = 0;
  size_t head_ = 0;  // next write position once the ring is full
  size_t dropped_ = 0;

  std::array<uint32_t, sim::kMaxCtxs> cur_site_;
  std::map<uint32_t, SiteAgg> sites_;
  std::map<uint32_t, std::string> site_names_;
  Pmu* pmu_ = nullptr;
  MetricsHub* hub_ = nullptr;
};

}  // namespace tsx::obs
