#include "obs/pmu.h"

#include <ostream>
#include <string>

#include "obs/registry.h"
#include "util/json.h"

namespace tsx::obs {

Pmu::Pmu(uint32_t threads) : threads_(threads), ctx_(threads) {}

void Pmu::tx_begin(sim::CtxId ctx, sim::Cycles t, bool stm) {
  if (stm) ++stm_starts_;
  if (ctx >= ctx_.size()) return;
  CtxState& c = ctx_[ctx];
  if (c.open) ++mismatched_;  // begin with an attempt still open
  c.open = true;
  c.begin_t = t;
}

void Pmu::tx_commit(sim::CtxId ctx, sim::Cycles t, bool stm) {
  if (stm) ++stm_commits_;
  if (ctx >= ctx_.size()) return;
  CtxState& c = ctx_[ctx];
  if (!c.open) {
    ++mismatched_;
    return;
  }
  c.open = false;
  sim::Cycles dur = t >= c.begin_t ? t - c.begin_t : 0;
  c.committed += dur;
  tx_duration_.record(dur);
  retries_.record(c.abort_streak);
  c.abort_streak = 0;
}

void Pmu::tx_abort(sim::CtxId ctx, sim::Cycles t, bool stm) {
  if (stm) ++stm_aborts_;
  if (ctx >= ctx_.size()) return;
  CtxState& c = ctx_[ctx];
  if (!c.open) {
    ++mismatched_;
    return;
  }
  c.open = false;
  sim::Cycles dur = t >= c.begin_t ? t - c.begin_t : 0;
  c.wasted += dur;
  abort_latency_.record(dur);
  ++c.abort_streak;
}

void Pmu::retry_decision(sim::CtxId ctx, bool fallback) {
  if (!fallback) return;
  ++fallbacks_;
  if (ctx >= ctx_.size()) return;
  // The fallback execution commits the transaction outside any attempt
  // window; close this transaction's retry count here.
  retries_.record(ctx_[ctx].abort_streak);
  ctx_[ctx].abort_streak = 0;
}

void Pmu::elide_lock_name(uint32_t lock, const std::string& name) {
  ElideLockCounters& e = elide_[lock];
  e.lock = lock;
  e.name = name;
}

void Pmu::elide_acquire(uint32_t lock, ElideAcqKind kind, uint64_t attempts,
                        sim::Cycles cycles_elided, sim::Cycles cycles_wasted,
                        bool self_stopped) {
  ElideLockCounters& e = elide_[lock];
  e.lock = lock;
  ++e.acquisitions;
  e.attempts += attempts;
  switch (kind) {
    case ElideAcqKind::kElided: ++e.elided; break;
    case ElideAcqKind::kFallback: ++e.fallbacks; break;
    case ElideAcqKind::kLocked: ++e.lock_acquires; break;
  }
  if (self_stopped) ++e.self_stops;
  e.cycles_elided += cycles_elided;
  e.cycles_wasted += cycles_wasted;
}

sim::Cycles Pmu::committed_cycles() const {
  sim::Cycles s = 0;
  for (const CtxState& c : ctx_) s += c.committed;
  return s;
}

sim::Cycles Pmu::wasted_cycles() const {
  sim::Cycles s = 0;
  for (const CtxState& c : ctx_) s += c.wasted;
  return s;
}

void Pmu::sample(sim::Cycles t, const sim::MachineStats& stats) {
  PmuSample s;
  s.t = t;
  s.ops = stats.ops;
  s.loads = stats.mem.loads;
  s.stores = stats.mem.stores;
  s.l1_hits = stats.mem.l1_hits;
  s.l2_hits = stats.mem.l2_hits;
  s.l3_hits = stats.mem.l3_hits;
  s.mem_accesses = stats.mem.mem_accesses;
  s.tx_starts = stats.tx.started;
  s.tx_commits = stats.tx.committed;
  s.tx_aborts = stats.tx.aborted();
  for (size_t i = 0; i < s.aborts_misc.size(); ++i) {
    s.aborts_misc[i] = stats.tx.aborts_by_misc[i];
  }
  s.fallbacks = fallbacks_;
  s.committed_cycles = committed_cycles();
  s.wasted_cycles = wasted_cycles();
  samples_.push_back(s);
}

PmuData Pmu::finalize(const sim::MachineStats& machine, sim::Cycles wall,
                      const std::vector<sim::Cycles>& ctx_finish,
                      const std::vector<sim::Cycles>& ctx_busy,
                      double core_busy, const sim::EnergyParams& energy,
                      double freq_ghz) const {
  PmuData d;
  d.threads = threads_;
  d.freq_ghz = freq_ghz;
  d.wall = wall;
  d.machine = machine;
  d.machine.core_busy_cycles = core_busy;
  d.stm_starts = stm_starts_;
  d.stm_commits = stm_commits_;
  d.stm_aborts = stm_aborts_;
  d.fallbacks = fallbacks_;
  d.mismatched = mismatched_;
  d.tx_duration = tx_duration_;
  d.abort_latency = abort_latency_;
  d.retries = retries_;
  d.samples = samples_;

  // ---- Per-context cycle identity ----
  d.ctx.resize(threads_);
  for (uint32_t i = 0; i < threads_; ++i) {
    const CtxState& c = ctx_[i];
    PmuCtxSplit& s = d.ctx[i];
    if (c.open) ++d.mismatched;  // attempt never closed (body threw out)
    s.committed = c.committed;
    s.wasted = c.wasted;
    s.finish = i < ctx_finish.size() ? ctx_finish[i] : 0;
    s.busy = i < ctx_busy.size() ? ctx_busy[i] : 0;
    sim::Cycles in_tx = c.committed + c.wasted;
    if (in_tx > s.finish || s.finish > wall) {
      d.identity_ok = false;  // attempt windows exceed the context's clock
      s.non_tx = in_tx > s.finish ? 0 : s.finish - in_tx;
    } else {
      s.non_tx = s.finish - in_tx;
    }
    s.idle = s.finish <= wall ? wall - s.finish : 0;
    d.split.committed += s.committed;
    d.split.wasted += s.wasted;
    d.split.non_tx += s.non_tx;
    d.split.idle += s.idle;
  }
  if (d.mismatched) d.identity_ok = false;

  // ---- Whole-run energy and its committed-vs-wasted split ----
  sim::EnergyModel em(energy, freq_ghz);
  const sim::MemStats& ms = machine.mem;
  d.energy = em.compute(machine.ops, ms.l1_accesses(), ms.l2_accesses(),
                        ms.l3_accesses(), ms.mem_accesses,
                        ms.invalidations + ms.c2c_transfers, ms.writebacks,
                        core_busy, wall);
  double busy_j = d.energy.dynamic_j + d.energy.core_active_j;
  double denom = static_cast<double>(d.split.committed + d.split.wasted +
                                     d.split.non_tx);
  if (denom > 0) {
    d.energy_split.committed_j =
        busy_j * static_cast<double>(d.split.committed) / denom;
    d.energy_split.wasted_j =
        busy_j * static_cast<double>(d.split.wasted) / denom;
  }
  // Remainder, so the split sums to total_j() exactly.
  d.energy_split.non_tx_j =
      busy_j - d.energy_split.committed_j - d.energy_split.wasted_j;
  d.energy_split.static_j = d.energy.package_idle_j;

  // ---- The perf-stat event list (DESIGN.md documents the mapping) ----
  sim::Cycles cycles = 0;
  for (sim::Cycles b : ctx_busy) cycles += b;
  auto add = [&d](const char* name, const char* hsw, uint64_t v) {
    d.counters.push_back(PerfCounter{name, hsw, v});
  };
  auto reason = [&machine](sim::AbortReason r) {
    return machine.tx.aborts_by_reason[static_cast<size_t>(r)];
  };
  add("cpu-cycles", "CPU_CLK_THREAD_UNHALTED.THREAD (sum)", cycles);
  add("instructions", "INST_RETIRED.ANY", machine.ops);
  add("mem-loads", "MEM_UOPS_RETIRED.ALL_LOADS", ms.loads);
  add("mem-stores", "MEM_UOPS_RETIRED.ALL_STORES", ms.stores);
  add("l1-hits", "MEM_LOAD_UOPS_RETIRED.L1_HIT", ms.l1_hits);
  add("l2-hits", "MEM_LOAD_UOPS_RETIRED.L2_HIT", ms.l2_hits);
  add("l3-hits", "MEM_LOAD_UOPS_RETIRED.L3_HIT", ms.l3_hits);
  add("llc-misses", "LONGEST_LAT_CACHE.MISS", ms.mem_accesses);
  add("hitm-transfers", "MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_HITM",
      ms.c2c_transfers);
  add("writebacks", "L2_TRANS.L2_WB", ms.writebacks);
  add("page-faults", "faults", ms.page_faults);
  add("interrupts", "HW_INTERRUPTS.RECEIVED", machine.interrupts);
  add("tx-start", "RTM_RETIRED.START", machine.tx.started);
  add("tx-commit", "RTM_RETIRED.COMMIT", machine.tx.committed);
  add("tx-abort", "RTM_RETIRED.ABORTED", machine.tx.aborted());
  static const char* kMiscNames[] = {"tx-abort-misc1", "tx-abort-misc2",
                                     "tx-abort-misc3", "tx-abort-misc4",
                                     "tx-abort-misc5"};
  static const char* kMiscEvents[] = {
      "RTM_RETIRED.ABORTED_MISC1", "RTM_RETIRED.ABORTED_MISC2",
      "RTM_RETIRED.ABORTED_MISC3", "RTM_RETIRED.ABORTED_MISC4",
      "RTM_RETIRED.ABORTED_MISC5"};
  for (size_t i = 0; i < static_cast<size_t>(sim::MiscBucket::kCount); ++i) {
    add(kMiscNames[i], kMiscEvents[i], machine.tx.aborts_by_misc[i]);
  }
  add("tx-conflict", "TX_MEM.ABORT_CONFLICT",
      reason(sim::AbortReason::kConflict));
  add("tx-capacity-read", "TX_MEM.ABORT_CAPACITY_READ",
      reason(sim::AbortReason::kReadCapacity));
  add("tx-capacity-write", "TX_MEM.ABORT_CAPACITY_WRITE",
      reason(sim::AbortReason::kWriteCapacity));
  add("stm-start", "(software: STM attempts)", stm_starts_);
  add("stm-commit", "(software: STM commits)", stm_commits_);
  add("stm-abort", "(software: STM aborts)", stm_aborts_);
  add("fallbacks", "(software: retry-policy fallbacks)", fallbacks_);

  // ---- Per-lock elision statistics (map iteration: sorted by lock id) ----
  for (const auto& [id, e] : elide_) {
    d.elide.push_back(e);
    if (d.elide.back().name.empty()) {
      d.elide.back().name = "lock#" + std::to_string(id);
    }
  }
  return d;
}

namespace {

// Locale-independent thousands grouping ("1234567" -> "1,234,567"); perf
// stat's value column, byte-stable everywhere.
std::string group_digits(uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

std::string rpad(std::string s, size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
  return s;
}

std::string lpad(std::string s, size_t w) {
  if (s.size() < w) s.insert(0, w - s.size(), ' ');
  return s;
}

std::string pct(sim::Cycles part, sim::Cycles whole) {
  double p = whole ? 100.0 * static_cast<double>(part) /
                         static_cast<double>(whole)
                   : 0.0;
  return util::json_fixed(p, 1) + "%";
}

void write_hist_line(std::ostream& os, const char* name,
                     const Log2Histogram& h) {
  os << " " << rpad(name, 22) << " p50=" << h.percentile(50)
     << "  p95=" << h.percentile(95) << "  p99=" << h.percentile(99)
     << "  mean=" << util::json_fixed(h.mean(), 1) << "  n=" << h.count()
     << "\n";
}

}  // namespace

void write_perf_stat(std::ostream& os, const std::vector<Capture>& captures) {
  for (const Capture& c : captures) {
    if (!c.pmu) continue;
    const PmuData& d = *c.pmu;
    os << "==== perf stat: " << c.label << " ====\n";
    os << " Simulated Haswell, " << d.threads << " hw thread"
       << (d.threads == 1 ? "" : "s") << " @ "
       << util::json_fixed(d.freq_ghz, 2) << " GHz; wall "
       << group_digits(d.wall) << " cycles = "
       << util::json_fixed(static_cast<double>(d.wall) / (d.freq_ghz * 1e9), 6)
       << " s\n\n";
    for (const PerfCounter& pc : d.counters) {
      os << " " << lpad(group_digits(pc.value), 15) << "  " << rpad(pc.name, 18)
         << "  # " << pc.haswell << "\n";
    }
    os << "\n cycle attribution (committed + wasted + non-tx + idle == wall, "
          "per hw thread)"
       << (d.identity_ok ? "" : " [IDENTITY VIOLATED]") << ":\n";
    for (uint32_t i = 0; i < d.ctx.size(); ++i) {
      const PmuCtxSplit& s = d.ctx[i];
      os << "   ctx" << i << "  committed " << lpad(pct(s.committed, d.wall), 6)
         << "  wasted " << lpad(pct(s.wasted, d.wall), 6) << "  non-tx "
         << lpad(pct(s.non_tx, d.wall), 6) << "  idle "
         << lpad(pct(s.idle, d.wall), 6) << "\n";
    }
    os << "   total committed " << group_digits(d.split.committed)
       << "  wasted " << group_digits(d.split.wasted) << "  non-tx "
       << group_digits(d.split.non_tx) << "  idle "
       << group_digits(d.split.idle) << "  (cycles, summed)\n";
    os << "\n energy: total " << util::json_fixed(d.energy.total_j(), 6)
       << " J = dynamic " << util::json_fixed(d.energy.dynamic_j, 6)
       << " + core-active " << util::json_fixed(d.energy.core_active_j, 6)
       << " + package-idle " << util::json_fixed(d.energy.package_idle_j, 6)
       << "\n";
    os << " energy split: committed "
       << util::json_fixed(d.energy_split.committed_j, 6) << " J  wasted "
       << util::json_fixed(d.energy_split.wasted_j, 6) << " J  non-tx "
       << util::json_fixed(d.energy_split.non_tx_j, 6) << " J  static "
       << util::json_fixed(d.energy_split.static_j, 6) << " J\n\n";
    write_hist_line(os, "tx duration (cycles)", d.tx_duration);
    write_hist_line(os, "abort latency (cycles)", d.abort_latency);
    write_hist_line(os, "retries per commit", d.retries);
    if (!d.elide.empty()) {
      os << "\n lock elision (per lock):\n";
      for (const ElideLockCounters& e : d.elide) {
        sim::Cycles spec = e.cycles_elided + e.cycles_wasted;
        os << "   " << rpad(e.name, 16) << " acq "
           << lpad(group_digits(e.acquisitions), 8) << "  elided "
           << lpad(group_digits(e.elided), 8) << "  fallback "
           << lpad(group_digits(e.fallbacks), 6) << "  lock "
           << lpad(group_digits(e.lock_acquires), 6) << "  self-stop "
           << e.self_stops << "  attempts "
           << lpad(group_digits(e.attempts), 8) << "  wasted "
           << lpad(pct(e.cycles_wasted, spec), 6) << "\n";
      }
    }
    if (d.heap.present) {
      const HeapPmuCounters& h = d.heap;
      os << "\n heap (malloc placement):\n";
      os << "   policy " << rpad(h.policy, 12) << " allocs "
         << lpad(group_digits(h.allocs), 10) << "  frees "
         << lpad(group_digits(h.frees), 10) << "  refills "
         << lpad(group_digits(h.refills), 6) << "\n";
      os << "   live " << lpad(group_digits(h.bytes_live), 12) << " B  peak "
         << lpad(group_digits(h.bytes_peak), 12) << " B  padding "
         << lpad(group_digits(h.bytes_padding), 10) << " B\n";
      uint64_t placed = 0, used = 0, max_count = 0;
      size_t max_set = 0;
      for (size_t i = 0; i < h.set_allocs.size(); ++i) {
        placed += h.set_allocs[i];
        if (h.set_allocs[i]) ++used;
        if (h.set_allocs[i] > max_count) {
          max_count = h.set_allocs[i];
          max_set = i;
        }
      }
      os << "   set-occupancy: " << h.set_allocs.size() << " L1 sets, "
         << used << " used";
      if (placed) {
        os << ", max " << group_digits(max_count) << " placements on set "
           << max_set << " = "
           << util::json_fixed(100.0 * static_cast<double>(max_count) /
                                   static_cast<double>(placed),
                               1)
           << "% of " << group_digits(placed);
      }
      os << "\n";
    }
    if (!d.samples.empty()) {
      os << " samples: " << d.samples.size() << " (interval boundaries; see "
         << "--timeseries for the CSV)\n";
    }
    os << "\n";
  }
}

}  // namespace tsx::obs
