#pragma once
// Typed trace events for the observability subsystem (src/obs).
//
// Events are flat PODs so the ring buffer in TraceSink is a plain vector
// with no per-event allocation. Which fields are meaningful depends on
// `kind`; unused fields keep their zero/sentinel defaults. All timestamps
// are simulated cycles of the acting context, so event streams are a pure
// function of the run configuration and seed — byte-identical across
// harness `--jobs` values.

#include <cstdint>

#include "sim/types.h"

namespace tsx::obs {

enum class EventKind : uint8_t {
  kTxBegin = 0,  // transaction attempt started (hardware xbegin or STM)
  kTxCommit,     // attempt committed
  kTxAbort,      // attempt aborted (reason/line/attacker valid)
  kEvict,        // a capacity-tracked line left its tracking structure
  kRetry,        // retry-policy decision after a failed attempt
  kEnergy,       // sample-window counter snapshot (--sample-interval; the
                 // historical name, from the original --energy-window flag)
};

const char* event_kind_name(EventKind k);

// Site id meaning "no call site registered".
inline constexpr uint32_t kNoSite = ~0u;

// Event::flags bit: the attempt ran under an STM algorithm (software
// transaction; no hardware xbegin was involved).
inline constexpr uint8_t kFlagStm = 1u << 0;

struct Event {
  EventKind kind = EventKind::kTxBegin;
  uint8_t flags = 0;
  sim::CtxId ctx = 0;   // acting context (the victim for kTxAbort)
  sim::Cycles t = 0;    // simulated cycles

  // kTxBegin / kTxCommit / kTxAbort / kRetry
  uint32_t site = kNoSite;  // static xbegin call-site label

  // kTxAbort
  sim::AbortReason reason = sim::AbortReason::kNone;
  uint64_t line = ~0ull;               // conflicting line; kEvict: evicted line
  sim::CtxId attacker = ~sim::CtxId{0};
  uint32_t attacker_site = kNoSite;    // attacker's site at abort time

  // kEvict: 1 = L1 write-set eviction, 3 = L3 read-set eviction
  uint8_t level = 0;

  // kRetry: 0 = speculative retry (after `backoff` cycles), 1 = serial
  // fallback taken
  uint8_t decision = 0;
  sim::Cycles backoff = 0;

  // kEnergy: cumulative machine counters at the window boundary
  uint64_t ops = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
};

}  // namespace tsx::obs
