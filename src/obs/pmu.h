#pragma once
// Simulated PMU: the paper's measurement vocabulary on top of the
// simulator's raw counters.
//
// The paper reads Haswell TSX through libpfm4 perf events
// (RTM_RETIRED.START/COMMIT/ABORTED, the ABORTED_MISC1-5 buckets,
// TX_MEM.ABORT_*) plus RAPL energy windows. The Pmu gives tsxlab the same
// surface: it listens to the attempt lifecycle (hardware transactions via
// the machine's ObsHooks, software transactions via the STM executor — both
// already flow through TraceSink, which forwards here), attributes every
// per-hardware-thread cycle into committed-tx / wasted-tx / non-tx / idle
// with an enforced identity (the four buckets tile [0, wall] exactly), and
// derives the committed-vs-wasted energy split the paper's "energy thrown
// away in aborted work" analysis needs.
//
// Like TraceSink's SiteAgg, all aggregation is incremental at emission time
// and never replays the (lossy) event ring, so the counters are exact
// regardless of ring capacity. All inputs are simulated cycles and
// deterministic counters, so every derived report is byte-identical across
// harness --jobs values.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/energy_model.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsx::obs {

struct Capture;  // registry.h (which includes this header)

// Per-hardware-thread cycle attribution. The identity
//   committed + wasted + non_tx + idle == wall
// holds exactly for every context: committed/wasted sum attempt windows
// (begin..commit / begin..abort timestamps on the context's own clock),
// non_tx is the remainder of the context's finish time, idle is the tail
// until the run's wall clock. Attribution is per hardware thread (not per
// core): two hyperthreads of one core each get their own identity, so the
// buckets are well-defined even when SMT overlaps their execution.
struct PmuCtxSplit {
  sim::Cycles committed = 0;  // inside attempts that committed
  sim::Cycles wasted = 0;     // inside attempts that aborted (discarded work)
  sim::Cycles non_tx = 0;     // executing outside any attempt window
  sim::Cycles idle = 0;       // finished, waiting for the run's last context
  sim::Cycles finish = 0;     // the context's own finish time
  sim::Cycles busy = 0;       // scheduler busy cycles (perf's unhalted clock)
};

// Whole-run sums of the per-context buckets.
struct TxCycleSplit {
  sim::Cycles committed = 0;
  sim::Cycles wasted = 0;
  sim::Cycles non_tx = 0;
  sim::Cycles idle = 0;

  sim::Cycles total() const { return committed + wasted + non_tx + idle; }
};

// EnergyBreakdown split along the committed-vs-wasted axis. The dynamic +
// core-active energy is apportioned by cycle share, with non_tx_j computed
// as the remainder so the four terms sum to total_j() exactly; the
// package-idle term is static and unattributable.
struct EnergySplit {
  double committed_j = 0;
  double wasted_j = 0;  // the paper's "energy spent in aborted work"
  double non_tx_j = 0;
  double static_j = 0;  // package idle / uncore

  double total_j() const { return committed_j + wasted_j + non_tx_j + static_j; }
};

// One named counter of the perf-stat report: the simulator counter's value
// under the Haswell perf event name the paper measured (DESIGN.md carries
// the full mapping table).
struct PerfCounter {
  std::string name;     // perf-style short name, e.g. "tx-abort-misc2"
  std::string haswell;  // real event, e.g. "RTM_RETIRED.ABORTED_MISC2"
  uint64_t value = 0;
};

// How one elide-lock acquisition protocol completed (src/elide reports one
// event per completed acquisition, with attempt/cycle deltas).
enum class ElideAcqKind : uint8_t {
  kElided = 0,    // section committed speculatively
  kFallback = 1,  // attempt budget exhausted; section ran under the lock
  kLocked = 2,    // explicit non-speculative hold (lock()/locked_section)
};

// Per-lock elision counters, the txlock-style stats table. `attempts`
// counts speculative tries including lock-busy bails; `cycles_wasted` sums
// attempt windows that did not commit (the self-stop heuristic's input).
struct ElideLockCounters {
  uint32_t lock = 0;
  std::string name;
  uint64_t acquisitions = 0;
  uint64_t attempts = 0;
  uint64_t elided = 0;
  uint64_t fallbacks = 0;
  uint64_t lock_acquires = 0;
  uint64_t self_stops = 0;
  sim::Cycles cycles_elided = 0;
  sim::Cycles cycles_wasted = 0;
};

// Simulated-heap counters for the perf-stat "heap" block: the allocator's
// whole-run stats under the placement policy that produced them (mem::
// PlacementPolicy — the malloc-placement axis). Filled by TxRuntime when
// the capture is built; not an event-derived aggregate.
struct HeapPmuCounters {
  bool present = false;
  std::string policy;  // placement_policy_name() of the run's heap
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t refills = 0;
  uint64_t bytes_live = 0;
  uint64_t bytes_peak = 0;
  uint64_t bytes_padding = 0;
  std::vector<uint64_t> set_allocs;  // placements per L1 set index
};

// One row of the counter time series (--sample-interval): cumulative values
// at a simulated-time window boundary.
struct PmuSample {
  sim::Cycles t = 0;
  uint64_t ops = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t mem_accesses = 0;
  uint64_t tx_starts = 0;
  uint64_t tx_commits = 0;
  uint64_t tx_aborts = 0;
  // Per-MISC-bucket abort counts (cumulative, hardware aborts), so the
  // phase detector's abort-mix inputs are reconstructable from the CSV.
  std::array<uint64_t, static_cast<size_t>(sim::MiscBucket::kCount)>
      aborts_misc{};
  uint64_t fallbacks = 0;  // retry-policy fallback decisions, cumulative
  sim::Cycles committed_cycles = 0;  // PMU-attributed, cumulative
  sim::Cycles wasted_cycles = 0;
};

// Immutable PMU result for one run, carried inside a registry Capture.
struct PmuData {
  uint32_t threads = 0;
  double freq_ghz = 0;
  sim::Cycles wall = 0;
  sim::MachineStats machine;  // final whole-run counters

  // Software-transaction attempt counters (STM backends and the hybrid's
  // fallback; hardware attempts are machine.tx).
  uint64_t stm_starts = 0;
  uint64_t stm_commits = 0;
  uint64_t stm_aborts = 0;
  uint64_t fallbacks = 0;  // retry-policy fallback decisions

  std::vector<PmuCtxSplit> ctx;  // one per hardware thread
  TxCycleSplit split;
  sim::EnergyBreakdown energy;  // whole-run (not measured-region) energy
  EnergySplit energy_split;

  Log2Histogram tx_duration;    // committed attempt durations, cycles
  Log2Histogram abort_latency;  // aborted attempt durations, cycles
  Log2Histogram retries;        // aborted attempts preceding each commit

  std::vector<PmuSample> samples;
  std::vector<PerfCounter> counters;  // the perf-stat event list

  // Per-lock elision statistics, sorted by lock id; empty when the run used
  // no elide locks.
  std::vector<ElideLockCounters> elide;

  // Simulated-heap placement counters (present for every traced TxRuntime).
  HeapPmuCounters heap;

  // false if attempt events were mispaired or an attempt window exceeded
  // its context's clock (would make non_tx negative). Never expected; the
  // tier-1 identity tests assert it.
  bool identity_ok = true;
  uint64_t mismatched = 0;  // commit/abort events without an open begin
};

// Incremental accumulator, fed by TraceSink (one per traced TxRuntime).
class Pmu {
 public:
  explicit Pmu(uint32_t threads);

  // ---- Feed (TraceSink forwards; `stm` distinguishes software attempts) ----
  void tx_begin(sim::CtxId ctx, sim::Cycles t, bool stm);
  void tx_commit(sim::CtxId ctx, sim::Cycles t, bool stm);
  void tx_abort(sim::CtxId ctx, sim::Cycles t, bool stm);
  void retry_decision(sim::CtxId ctx, bool fallback);
  void sample(sim::Cycles t, const sim::MachineStats& stats);
  void elide_lock_name(uint32_t lock, const std::string& name);
  void elide_acquire(uint32_t lock, ElideAcqKind kind, uint64_t attempts,
                     sim::Cycles cycles_elided, sim::Cycles cycles_wasted,
                     bool self_stopped);

  // Cumulative attributed cycles so far (used by the sampler).
  sim::Cycles committed_cycles() const;
  sim::Cycles wasted_cycles() const;

  // Closes the books: per-context identity, energy split, the perf-stat
  // counter list. `ctx_finish`/`ctx_busy` are per-hardware-thread clocks
  // from the machine; `core_busy` is the energy model's per-core busy sum.
  PmuData finalize(const sim::MachineStats& machine, sim::Cycles wall,
                   const std::vector<sim::Cycles>& ctx_finish,
                   const std::vector<sim::Cycles>& ctx_busy, double core_busy,
                   const sim::EnergyParams& energy, double freq_ghz) const;

 private:
  struct CtxState {
    bool open = false;
    sim::Cycles begin_t = 0;
    sim::Cycles committed = 0;
    sim::Cycles wasted = 0;
    uint64_t abort_streak = 0;  // aborts since the last commit/fallback
  };

  uint32_t threads_;
  std::vector<CtxState> ctx_;
  uint64_t stm_starts_ = 0;
  uint64_t stm_commits_ = 0;
  uint64_t stm_aborts_ = 0;
  uint64_t fallbacks_ = 0;
  uint64_t mismatched_ = 0;
  Log2Histogram tx_duration_;
  Log2Histogram abort_latency_;
  Log2Histogram retries_;
  std::vector<PmuSample> samples_;
  std::map<uint32_t, ElideLockCounters> elide_;  // keyed (and sorted) by id
};

// perf-stat-style report, one block per capture (captures arrive sorted by
// label from Registry::drain, so output is byte-identical across --jobs).
// Captures without PMU data are skipped.
void write_perf_stat(std::ostream& os, const std::vector<Capture>& captures);

}  // namespace tsx::obs
