#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/events.h"
#include "obs/registry.h"
#include "util/json.h"

namespace tsx::obs {

// ---- MetricsWindow ----

double MetricsWindow::conflict_share() const {
  uint64_t all = aborts();
  if (!all) return 0.0;
  // STM aborts are data conflicts by construction (see TraceSink::stm_abort).
  uint64_t conf =
      aborts_by_reason[static_cast<size_t>(sim::AbortReason::kConflict)] +
      stm_aborts;
  return static_cast<double>(conf) / static_cast<double>(all);
}

double MetricsWindow::capacity_share() const {
  uint64_t all = aborts();
  if (!all) return 0.0;
  uint64_t cap =
      aborts_by_reason[static_cast<size_t>(sim::AbortReason::kReadCapacity)] +
      aborts_by_reason[static_cast<size_t>(sim::AbortReason::kWriteCapacity)];
  return static_cast<double>(cap) / static_cast<double>(all);
}

// ---- PhaseDetector ----

namespace {

// Per-channel deviation floors: detection thresholds are expressed in
// deviation units, so a floor keeps near-noiseless baselines (dev ~ 0) from
// turning tiny fluctuations into boundaries. Channel 0 is log-activity
// (0.08 ~ an 8% throughput shift); channels 1-2 are shares in [0, 1].
constexpr double kScaleFloor[PhaseDetector::kChannels] = {0.08, 0.02, 0.02};

double channel_value(int c, const MetricsWindow& w) {
  switch (c) {
    case PhaseDetector::kChannelActivity:
      return std::log1p(static_cast<double>(w.activity()));
    case PhaseDetector::kChannelAbortRate:
      return w.abort_rate();
    case PhaseDetector::kChannelWastedShare:
      return w.wasted_share();
  }
  return 0.0;
}

}  // namespace

PhaseDetector::PhaseDetector(const MetricsConfig& cfg) : cfg_(cfg) {}

void PhaseDetector::reset_baseline() {
  for (Channel& c : ch_) c = Channel{};
  seen_ = 0;
}

std::optional<PhaseEvent> PhaseDetector::update(const MetricsWindow& w) {
  uint32_t idx = windows_++;
  if (cooldown_ > 0) {
    // Transition windows are a mix of both phases; keep them out of the new
    // baseline entirely.
    --cooldown_;
    return std::nullopt;
  }
  ++seen_;

  std::optional<PhaseEvent> fired;
  for (int i = 0; i < kChannels; ++i) {
    Channel& c = ch_[i];
    double x = channel_value(i, w);
    if (!c.primed) {
      c.primed = true;
      c.mean = x;
      continue;
    }
    double resid = x - c.mean;
    double scale = std::max(c.dev, kScaleFloor[i]);
    double z = resid / scale;
    if (seen_ > cfg_.warmup_windows && !fired) {
      c.up = std::max(0.0, c.up + z - cfg_.cusum_k);
      c.down = std::max(0.0, c.down - z - cfg_.cusum_k);
      if (c.up > cfg_.cusum_h || c.down > cfg_.cusum_h) {
        PhaseEvent e;
        e.window = idx;
        e.channel = i;
        e.direction = c.up > cfg_.cusum_h ? 1 : -1;
        e.score = std::max(c.up, c.down);
        fired = e;
        continue;  // baseline resets below; no point updating this EWMA
      }
    }
    c.mean += cfg_.ewma_alpha * resid;
    c.dev = (1.0 - cfg_.ewma_alpha) * c.dev +
            cfg_.ewma_alpha * std::fabs(resid);
  }

  if (fired) {
    reset_baseline();
    cooldown_ = cfg_.cooldown_windows;
  }
  return fired;
}

// ---- MetricsHub ----

MetricsHub::MetricsHub(MetricsConfig cfg)
    : cfg_(cfg), ctx_(sim::kMaxCtxs), live_detector_(cfg) {
  if (cfg_.window_cycles == 0) cfg_.window_cycles = 1;  // defensive
}

MetricsWindow& MetricsHub::window_at(sim::Cycles t) {
  size_t idx = static_cast<size_t>(t / cfg_.window_cycles);
  if (idx >= windows_.size()) {
    size_t old = windows_.size();
    windows_.resize(idx + 1);
    for (size_t i = old; i <= idx; ++i) {
      windows_[i].start = static_cast<sim::Cycles>(i) * cfg_.window_cycles;
    }
  }
  return windows_[idx];
}

void MetricsHub::note_time(sim::Cycles t) {
  if (t > max_t_seen_) max_t_seen_ = t;
  // Seal with one full window of slack: the scheduler always resumes the
  // smallest-clock runnable context, so a context can run at most one
  // quantum past its peers — events for window w stop arriving well before
  // the stream's high-water mark leaves window w+1.
  size_t hw = static_cast<size_t>(max_t_seen_ / cfg_.window_cycles);
  if (hw >= 2) seal_through(hw - 1);
}

void MetricsHub::seal_through(size_t end_index) {
  if (end_index <= sealed_) return;
  // Materialize empty windows in the gap so subscribers see a contiguous,
  // in-order series (an idle window is a signal too).
  if (end_index > windows_.size()) {
    window_at(static_cast<sim::Cycles>(end_index - 1) * cfg_.window_cycles);
  }
  for (; sealed_ < end_index; ++sealed_) {
    const MetricsWindow& w = windows_[sealed_];
    std::optional<PhaseEvent> e = live_detector_.update(w);
    if (e) e->t = w.start;
    for (const WindowCallback& cb : subscribers_) cb(w, e);
  }
}

void MetricsHub::hw_begin(sim::CtxId ctx, sim::Cycles t) {
  note_time(t);
  ++window_at(t).hw_starts;
  if (ctx >= ctx_.size()) return;
  ctx_[ctx].open = true;
  ctx_[ctx].begin_t = t;
}

void MetricsHub::hw_commit(sim::CtxId ctx, sim::Cycles t) {
  note_time(t);
  MetricsWindow& w = window_at(t);
  ++w.hw_commits;
  if (ctx >= ctx_.size() || !ctx_[ctx].open) return;
  ctx_[ctx].open = false;
  sim::Cycles begin = ctx_[ctx].begin_t;
  w.committed_cycles += t >= begin ? t - begin : 0;
}

void MetricsHub::hw_abort(sim::CtxId ctx, sim::Cycles t,
                          sim::AbortReason reason, uint32_t victim_site,
                          uint32_t attacker_site) {
  note_time(t);
  MetricsWindow& w = window_at(t);
  ++w.hw_aborts;
  ++w.aborts_by_misc[static_cast<size_t>(sim::misc_bucket_for(reason))];
  ++w.aborts_by_reason[static_cast<size_t>(reason)];
  sim::Cycles wasted = 0;
  if (ctx < ctx_.size() && ctx_[ctx].open) {
    ctx_[ctx].open = false;
    sim::Cycles begin = ctx_[ctx].begin_t;
    wasted = t >= begin ? t - begin : 0;
    w.wasted_cycles += wasted;
  }
  uint64_t key = attacker_site != kNoSite ? flame_attacker_key(attacker_site)
                                          : flame_reason_key(reason);
  flame_[victim_site][key] += wasted;
}

void MetricsHub::stm_begin(sim::CtxId ctx, sim::Cycles t) {
  note_time(t);
  ++window_at(t).stm_starts;
  if (ctx >= ctx_.size()) return;
  ctx_[ctx].open = true;
  ctx_[ctx].begin_t = t;
}

void MetricsHub::stm_commit(sim::CtxId ctx, sim::Cycles t) {
  note_time(t);
  MetricsWindow& w = window_at(t);
  ++w.stm_commits;
  if (ctx >= ctx_.size() || !ctx_[ctx].open) return;
  ctx_[ctx].open = false;
  sim::Cycles begin = ctx_[ctx].begin_t;
  w.committed_cycles += t >= begin ? t - begin : 0;
}

void MetricsHub::stm_abort(sim::CtxId ctx, sim::Cycles t, uint32_t victim_site,
                           uint32_t attacker_site) {
  note_time(t);
  MetricsWindow& w = window_at(t);
  ++w.stm_aborts;
  sim::Cycles wasted = 0;
  if (ctx < ctx_.size() && ctx_[ctx].open) {
    ctx_[ctx].open = false;
    sim::Cycles begin = ctx_[ctx].begin_t;
    wasted = t >= begin ? t - begin : 0;
    w.wasted_cycles += wasted;
  }
  uint64_t key = attacker_site != kNoSite
                     ? flame_attacker_key(attacker_site)
                     : flame_reason_key(sim::AbortReason::kConflict);
  flame_[victim_site][key] += wasted;
}

void MetricsHub::retry_decision(sim::CtxId ctx, sim::Cycles t, bool fallback) {
  (void)ctx;
  if (!fallback) return;
  note_time(t);
  ++window_at(t).fallbacks;
}

void MetricsHub::lock_section(sim::CtxId ctx, sim::Cycles t0, sim::Cycles t1) {
  (void)ctx;
  note_time(t1);
  MetricsWindow& w = window_at(t1);
  ++w.lock_sections;
  w.lock_section_cycles += t1 >= t0 ? t1 - t0 : 0;
}

void MetricsHub::elide_lock_name(uint32_t lock, const std::string& name) {
  lock_names_[lock] = name;
}

void MetricsHub::elide_acquire(uint32_t lock, sim::Cycles t, ElideAcqKind kind,
                               sim::Cycles cycles_elided,
                               sim::Cycles cycles_wasted) {
  note_time(t);
  ElideWindowCounters& e = window_at(t).elide[lock];
  ++e.acquisitions;
  if (kind == ElideAcqKind::kElided) ++e.elided;
  if (kind == ElideAcqKind::kFallback) ++e.fallbacks;
  e.cycles_elided += cycles_elided;
  e.cycles_wasted += cycles_wasted;
}

MetricsData MetricsHub::finalize(sim::Cycles wall) {
  // Pad the series to cover [0, wall) so trailing idle time is visible,
  // then deliver any unsealed windows to live subscribers.
  if (wall > 0) {
    size_t n = static_cast<size_t>((wall + cfg_.window_cycles - 1) /
                                   cfg_.window_cycles);
    if (n > windows_.size()) {
      window_at(static_cast<sim::Cycles>(n - 1) * cfg_.window_cycles);
    }
  }
  if (!finalized_) {
    finalized_ = true;
    seal_through(windows_.size());
  }

  MetricsData d;
  d.window_cycles = cfg_.window_cycles;
  d.windows = windows_;
  d.flame = flame_;
  d.lock_names = lock_names_;

  // Authoritative phase pass: a fresh detector streamed over the exact
  // window series. The final window is excluded when it is partial (it
  // covers less simulated time than the others, so its counts dip for
  // length reasons, not workload reasons).
  PhaseDetector det(cfg_);
  size_t n = d.windows.size();
  if (n && wall > 0 && d.windows[n - 1].start + cfg_.window_cycles > wall) {
    --n;
  }
  for (size_t i = 0; i < n; ++i) {
    std::optional<PhaseEvent> e = det.update(d.windows[i]);
    if (e) {
      e->t = d.windows[i].start;
      d.phases.push_back(*e);
    }
  }
  return d;
}

// ---- Exporters ----

namespace {

std::string resolved_site_name(const Capture& c, uint32_t site) {
  auto it = c.site_names.find(site);
  if (it != c.site_names.end()) return it->second;
  if (site == kNoSite) return "(none)";
  return "site#" + std::to_string(site);
}

std::string lock_label(const MetricsData& m, uint32_t lock) {
  auto it = m.lock_names.find(lock);
  if (it != m.lock_names.end()) return it->second;
  return "lock#" + std::to_string(lock);
}

// One OpenMetrics family: emits the TYPE header, then one sample per window
// of every capture (captures are already label-sorted).
template <typename Fn>
void emit_family(std::ostream& os, const std::vector<Capture>& captures,
                 const char* name, const char* help, Fn&& per_window) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " gauge\n";
  for (const Capture& c : captures) {
    if (!c.metrics) continue;
    const MetricsData& m = *c.metrics;
    for (size_t i = 0; i < m.windows.size(); ++i) {
      per_window(os, c, m, m.windows[i], i);
    }
  }
}

void sample_head(std::ostream& os, const char* name, const Capture& c,
                 size_t w) {
  os << name << "{cell=\"" << c.label << "\",w=\"" << w << "\"}";
}

}  // namespace

void write_openmetrics(std::ostream& os,
                       const std::vector<Capture>& captures) {
  // Run-level series parameters first, then the window families.
  os << "# HELP tsxlab_window_cycles Window length in simulated cycles\n";
  os << "# TYPE tsxlab_window_cycles gauge\n";
  for (const Capture& c : captures) {
    if (!c.metrics) continue;
    os << "tsxlab_window_cycles{cell=\"" << c.label << "\"} "
       << c.metrics->window_cycles << "\n";
  }

  struct CounterFamily {
    const char* name;
    const char* help;
    uint64_t (*get)(const MetricsWindow&);
  };
  static const CounterFamily kCounters[] = {
      {"tsxlab_window_start_cycles", "Window start, simulated cycles",
       [](const MetricsWindow& w) { return static_cast<uint64_t>(w.start); }},
      {"tsxlab_window_hw_starts", "Hardware transaction attempts begun",
       [](const MetricsWindow& w) { return w.hw_starts; }},
      {"tsxlab_window_hw_commits", "Hardware transaction commits",
       [](const MetricsWindow& w) { return w.hw_commits; }},
      {"tsxlab_window_hw_aborts", "Hardware transaction aborts",
       [](const MetricsWindow& w) { return w.hw_aborts; }},
      {"tsxlab_window_stm_starts", "Software transaction attempts begun",
       [](const MetricsWindow& w) { return w.stm_starts; }},
      {"tsxlab_window_stm_commits", "Software transaction commits",
       [](const MetricsWindow& w) { return w.stm_commits; }},
      {"tsxlab_window_stm_aborts", "Software transaction aborts",
       [](const MetricsWindow& w) { return w.stm_aborts; }},
      {"tsxlab_window_fallbacks", "Retry-policy serial fallbacks",
       [](const MetricsWindow& w) { return w.fallbacks; }},
      {"tsxlab_window_lock_sections", "Lock-backend critical sections",
       [](const MetricsWindow& w) { return w.lock_sections; }},
      {"tsxlab_window_committed_cycles", "Cycles in committed attempts",
       [](const MetricsWindow& w) {
         return static_cast<uint64_t>(w.committed_cycles);
       }},
      {"tsxlab_window_wasted_cycles", "Cycles in aborted attempts",
       [](const MetricsWindow& w) {
         return static_cast<uint64_t>(w.wasted_cycles);
       }},
      {"tsxlab_window_lock_section_cycles",
       "Cycles inside lock-backend critical sections",
       [](const MetricsWindow& w) {
         return static_cast<uint64_t>(w.lock_section_cycles);
       }},
  };
  for (const CounterFamily& fam : kCounters) {
    emit_family(os, captures, fam.name, fam.help,
                [&fam](std::ostream& o, const Capture& c, const MetricsData&,
                       const MetricsWindow& w, size_t i) {
                  sample_head(o, fam.name, c, i);
                  o << " " << fam.get(w) << "\n";
                });
  }

  emit_family(os, captures, "tsxlab_window_aborts_misc",
              "Hardware aborts by RTM_RETIRED.ABORTED_MISC bucket",
              [](std::ostream& o, const Capture& c, const MetricsData&,
                 const MetricsWindow& w, size_t i) {
                for (size_t b = 0; b < w.aborts_by_misc.size(); ++b) {
                  o << "tsxlab_window_aborts_misc{cell=\"" << c.label
                    << "\",w=\"" << i << "\",bucket=\"" << b + 1 << "\"} "
                    << w.aborts_by_misc[b] << "\n";
                }
              });

  struct RatioFamily {
    const char* name;
    const char* help;
    double (*get)(const MetricsWindow&);
  };
  static const RatioFamily kRatios[] = {
      {"tsxlab_window_abort_rate", "Aborts per attempt",
       [](const MetricsWindow& w) { return w.abort_rate(); }},
      {"tsxlab_window_conflict_share", "Conflict aborts / all aborts",
       [](const MetricsWindow& w) { return w.conflict_share(); }},
      {"tsxlab_window_capacity_share", "Capacity aborts / all aborts",
       [](const MetricsWindow& w) { return w.capacity_share(); }},
      {"tsxlab_window_wasted_share",
       "Wasted cycles / (committed + wasted) cycles",
       [](const MetricsWindow& w) { return w.wasted_share(); }},
      {"tsxlab_window_fallback_rate", "Fallbacks per attempt",
       [](const MetricsWindow& w) { return w.fallback_rate(); }},
  };
  for (const RatioFamily& fam : kRatios) {
    emit_family(os, captures, fam.name, fam.help,
                [&fam](std::ostream& o, const Capture& c, const MetricsData&,
                       const MetricsWindow& w, size_t i) {
                  sample_head(o, fam.name, c, i);
                  o << " " << util::json_fixed(fam.get(w), 6) << "\n";
                });
  }

  emit_family(os, captures, "tsxlab_window_elided_share",
              "Elided acquisitions / acquisitions, per elide lock",
              [](std::ostream& o, const Capture& c, const MetricsData& m,
                 const MetricsWindow& w, size_t i) {
                for (const auto& [lock, e] : w.elide) {
                  double share =
                      e.acquisitions
                          ? static_cast<double>(e.elided) /
                                static_cast<double>(e.acquisitions)
                          : 0.0;
                  o << "tsxlab_window_elided_share{cell=\"" << c.label
                    << "\",w=\"" << i << "\",lock=\"" << lock_label(m, lock)
                    << "\"} " << util::json_fixed(share, 6) << "\n";
                }
              });

  os << "# HELP tsxlab_phase_boundary Detected phase boundary (value: "
        "boundary time, simulated cycles)\n";
  os << "# TYPE tsxlab_phase_boundary gauge\n";
  for (const Capture& c : captures) {
    if (!c.metrics) continue;
    for (const PhaseEvent& e : c.metrics->phases) {
      os << "tsxlab_phase_boundary{cell=\"" << c.label << "\",w=\""
         << e.window << "\",channel=\"" << e.channel << "\",direction=\""
         << (e.direction > 0 ? "rise" : "fall") << "\"} " << e.t << "\n";
    }
  }
  os << "# EOF\n";
}

void write_flamegraph(std::ostream& os, const std::vector<Capture>& captures) {
  for (const Capture& c : captures) {
    if (!c.metrics) continue;
    for (const auto& [victim, edges] : c.metrics->flame) {
      for (const auto& [key, cycles] : edges) {
        if (!cycles) continue;  // zero-weight stacks only add noise
        os << c.label << ";" << resolved_site_name(c, victim) << ";";
        if (key & kFlameAttackerBit) {
          os << resolved_site_name(
              c, static_cast<uint32_t>(key & 0xffffffffull));
        } else {
          os << "["
             << sim::abort_reason_name(static_cast<sim::AbortReason>(key))
             << "]";
        }
        os << " " << cycles << "\n";
      }
    }
  }
}

}  // namespace tsx::obs
