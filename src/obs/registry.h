#pragma once
// Process-global collection point for per-run trace captures.
//
// The harness may run benchmark tasks on several worker threads (`--jobs N`)
// and in arbitrary completion order. Each TxRuntime that traces deposits an
// immutable Capture here under its unique task label; exporters drain the
// registry sorted by label, which makes trace and abort-report output
// byte-identical across --jobs values (timestamps inside a capture are
// simulated, hence already deterministic).

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/pmu.h"
#include "obs/trace_sink.h"

namespace tsx::obs {

struct Capture {
  std::string label;       // unique task label, e.g. "fig07:eigen:RTM:rep0"
  double freq_ghz = 0;     // for cycle -> microsecond conversion
  uint32_t threads = 0;    // simulated hardware threads in the run
  std::vector<Event> events;  // oldest -> newest (ring-bounded)
  size_t dropped = 0;
  std::map<uint32_t, SiteAgg> sites;
  std::map<uint32_t, std::string> site_names;
  // Finalized PMU result (perf-stat counters, cycle/energy attribution,
  // time-series samples); present for every run traced with obs enabled.
  std::optional<PmuData> pmu;
  // Finalized windowed metrics (window series, phase boundaries, flame
  // profile); present when the run had a MetricsHub (--metrics /
  // --flamegraph / an explicit metrics window).
  std::optional<MetricsData> metrics;
};

// Builds an immutable capture from a sink's current state.
Capture make_capture(const TraceSink& sink, std::string label, double freq_ghz,
                     uint32_t threads);

class Registry {
 public:
  // The process-wide instance used by core::TxRuntime and the bench
  // finalizer. Tests may construct their own.
  static Registry& global();

  void add(Capture c);
  // Removes and returns all captures, sorted by label.
  std::vector<Capture> drain();
  size_t size() const;

  // FNV-1a digest over every capture's PMU counters, cycle split and sample
  // stream, iterated in label order — so the digest is identical across
  // --jobs values. Non-destructive (the harness records it in the run
  // manifest before the exporters drain). Captures without PMU data
  // contribute only their label.
  uint64_t counter_digest() const;

  // Per-lock elision counters aggregated across all captures by lock name,
  // sorted by name. Non-destructive; used for the harness manifest's
  // `elide_locks` array. Empty when no capture recorded elide locks.
  std::vector<ElideLockCounters> elide_totals() const;

  // FNV-1a digest over every capture's window series, phase events and
  // flame profile, iterated in label order (hence --jobs-invariant).
  // Non-destructive; nullopt when no capture carries metrics, so the
  // manifest field only appears for hub-enabled runs.
  std::optional<uint64_t> metrics_digest() const;

  // Simulated-heap counters summed across all captures (policy from the
  // first capture that carries one — a sweep runs one policy per process
  // unless a driver overrides per cell, in which case the manifest reports
  // the first). present == false when no capture has PMU data.
  // Non-destructive; used for the harness manifest's `heap` object.
  HeapPmuCounters heap_totals() const;

 private:
  mutable std::mutex mu_;
  std::vector<Capture> captures_;
};

}  // namespace tsx::obs
