#include "obs/registry.h"

#include <algorithm>

namespace tsx::obs {

Capture make_capture(const TraceSink& sink, std::string label, double freq_ghz,
                     uint32_t threads) {
  Capture c;
  c.label = std::move(label);
  c.freq_ghz = freq_ghz;
  c.threads = threads;
  c.events = sink.events();
  c.dropped = sink.dropped();
  c.sites = sink.sites();
  c.site_names = sink.site_names();
  return c;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::add(Capture c) {
  std::lock_guard<std::mutex> lock(mu_);
  captures_.push_back(std::move(c));
}

std::vector<Capture> Registry::drain() {
  std::vector<Capture> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(captures_);
  }
  std::sort(out.begin(), out.end(),
            [](const Capture& a, const Capture& b) { return a.label < b.label; });
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_.size();
}

namespace {

struct Fnv {
  uint64_t h = 14695981039346656037ull;
  void add(uint64_t v) {
    for (size_t i = 0; i < sizeof(v); ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    add(static_cast<uint64_t>(s.size()));
  }
};

}  // namespace

uint64_t Registry::counter_digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Capture*> sorted;
  sorted.reserve(captures_.size());
  for (const Capture& c : captures_) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const Capture* a, const Capture* b) { return a->label < b->label; });
  Fnv f;
  for (const Capture* c : sorted) {
    f.add(c->label);
    if (!c->pmu) continue;
    const PmuData& d = *c->pmu;
    f.add(d.wall);
    for (const PerfCounter& pc : d.counters) f.add(pc.value);
    f.add(d.split.committed);
    f.add(d.split.wasted);
    f.add(d.split.non_tx);
    f.add(d.split.idle);
    f.add(static_cast<uint64_t>(d.samples.size()));
    for (const PmuSample& s : d.samples) {
      f.add(s.t);
      f.add(s.tx_commits);
      f.add(s.tx_aborts);
    }
    f.add(static_cast<uint64_t>(d.elide.size()));
    for (const ElideLockCounters& e : d.elide) {
      f.add(e.name);
      f.add(e.acquisitions);
      f.add(e.attempts);
      f.add(e.elided);
      f.add(e.fallbacks);
      f.add(e.lock_acquires);
      f.add(e.self_stops);
      f.add(e.cycles_elided);
      f.add(e.cycles_wasted);
    }
  }
  return f.h;
}

std::vector<ElideLockCounters> Registry::elide_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Keyed by lock name: each sweep cell owns its runtime, so the "same"
  // lock recurs across captures under one name with fresh ids.
  std::map<std::string, ElideLockCounters> by_name;
  for (const Capture& c : captures_) {
    if (!c.pmu) continue;
    for (const ElideLockCounters& e : c.pmu->elide) {
      ElideLockCounters& t = by_name[e.name];
      t.name = e.name;
      t.acquisitions += e.acquisitions;
      t.attempts += e.attempts;
      t.elided += e.elided;
      t.fallbacks += e.fallbacks;
      t.lock_acquires += e.lock_acquires;
      t.self_stops += e.self_stops;
      t.cycles_elided += e.cycles_elided;
      t.cycles_wasted += e.cycles_wasted;
    }
  }
  std::vector<ElideLockCounters> out;
  out.reserve(by_name.size());
  for (auto& [name, e] : by_name) out.push_back(std::move(e));
  return out;
}

}  // namespace tsx::obs
