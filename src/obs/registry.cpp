#include "obs/registry.h"

#include <algorithm>

namespace tsx::obs {

Capture make_capture(const TraceSink& sink, std::string label, double freq_ghz,
                     uint32_t threads) {
  Capture c;
  c.label = std::move(label);
  c.freq_ghz = freq_ghz;
  c.threads = threads;
  c.events = sink.events();
  c.dropped = sink.dropped();
  c.sites = sink.sites();
  c.site_names = sink.site_names();
  return c;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::add(Capture c) {
  std::lock_guard<std::mutex> lock(mu_);
  captures_.push_back(std::move(c));
}

std::vector<Capture> Registry::drain() {
  std::vector<Capture> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(captures_);
  }
  std::sort(out.begin(), out.end(),
            [](const Capture& a, const Capture& b) { return a.label < b.label; });
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_.size();
}

namespace {

struct Fnv {
  uint64_t h = 14695981039346656037ull;
  void add(uint64_t v) {
    for (size_t i = 0; i < sizeof(v); ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    add(static_cast<uint64_t>(s.size()));
  }
};

}  // namespace

uint64_t Registry::counter_digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Capture*> sorted;
  sorted.reserve(captures_.size());
  for (const Capture& c : captures_) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const Capture* a, const Capture* b) { return a->label < b->label; });
  Fnv f;
  for (const Capture* c : sorted) {
    f.add(c->label);
    if (!c->pmu) continue;
    const PmuData& d = *c->pmu;
    f.add(d.wall);
    for (const PerfCounter& pc : d.counters) f.add(pc.value);
    f.add(d.split.committed);
    f.add(d.split.wasted);
    f.add(d.split.non_tx);
    f.add(d.split.idle);
    f.add(static_cast<uint64_t>(d.samples.size()));
    for (const PmuSample& s : d.samples) {
      f.add(s.t);
      f.add(s.tx_commits);
      f.add(s.tx_aborts);
    }
    f.add(static_cast<uint64_t>(d.elide.size()));
    for (const ElideLockCounters& e : d.elide) {
      f.add(e.name);
      f.add(e.acquisitions);
      f.add(e.attempts);
      f.add(e.elided);
      f.add(e.fallbacks);
      f.add(e.lock_acquires);
      f.add(e.self_stops);
      f.add(e.cycles_elided);
      f.add(e.cycles_wasted);
    }
    if (d.heap.present) {
      f.add(d.heap.policy);
      f.add(d.heap.allocs);
      f.add(d.heap.frees);
      f.add(d.heap.refills);
      f.add(d.heap.bytes_live);
      f.add(d.heap.bytes_peak);
      f.add(d.heap.bytes_padding);
      f.add(static_cast<uint64_t>(d.heap.set_allocs.size()));
      for (uint64_t v : d.heap.set_allocs) f.add(v);
    }
  }
  return f.h;
}

std::optional<uint64_t> Registry::metrics_digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Capture*> sorted;
  sorted.reserve(captures_.size());
  for (const Capture& c : captures_) {
    if (c.metrics) sorted.push_back(&c);
  }
  if (sorted.empty()) return std::nullopt;
  std::sort(sorted.begin(), sorted.end(),
            [](const Capture* a, const Capture* b) { return a->label < b->label; });
  Fnv f;
  for (const Capture* c : sorted) {
    f.add(c->label);
    const MetricsData& m = *c->metrics;
    f.add(m.window_cycles);
    f.add(static_cast<uint64_t>(m.windows.size()));
    for (const MetricsWindow& w : m.windows) {
      f.add(w.start);
      f.add(w.hw_starts);
      f.add(w.hw_commits);
      f.add(w.hw_aborts);
      for (uint64_t v : w.aborts_by_misc) f.add(v);
      for (uint64_t v : w.aborts_by_reason) f.add(v);
      f.add(w.stm_starts);
      f.add(w.stm_commits);
      f.add(w.stm_aborts);
      f.add(w.fallbacks);
      f.add(w.lock_sections);
      f.add(w.lock_section_cycles);
      f.add(w.committed_cycles);
      f.add(w.wasted_cycles);
      f.add(static_cast<uint64_t>(w.elide.size()));
      for (const auto& [lock, e] : w.elide) {
        f.add(lock);
        f.add(e.acquisitions);
        f.add(e.elided);
        f.add(e.fallbacks);
        f.add(e.cycles_elided);
        f.add(e.cycles_wasted);
      }
    }
    f.add(static_cast<uint64_t>(m.phases.size()));
    for (const PhaseEvent& e : m.phases) {
      f.add(e.window);
      f.add(e.t);
      f.add(static_cast<uint64_t>(e.channel));
      f.add(static_cast<uint64_t>(static_cast<int64_t>(e.direction)));
    }
    f.add(static_cast<uint64_t>(m.flame.size()));
    for (const auto& [victim, edges] : m.flame) {
      f.add(victim);
      f.add(static_cast<uint64_t>(edges.size()));
      for (const auto& [key, cycles] : edges) {
        f.add(key);
        f.add(cycles);
      }
    }
  }
  return f.h;
}

std::vector<ElideLockCounters> Registry::elide_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Keyed by lock name: each sweep cell owns its runtime, so the "same"
  // lock recurs across captures under one name with fresh ids.
  std::map<std::string, ElideLockCounters> by_name;
  for (const Capture& c : captures_) {
    if (!c.pmu) continue;
    for (const ElideLockCounters& e : c.pmu->elide) {
      ElideLockCounters& t = by_name[e.name];
      t.name = e.name;
      t.acquisitions += e.acquisitions;
      t.attempts += e.attempts;
      t.elided += e.elided;
      t.fallbacks += e.fallbacks;
      t.lock_acquires += e.lock_acquires;
      t.self_stops += e.self_stops;
      t.cycles_elided += e.cycles_elided;
      t.cycles_wasted += e.cycles_wasted;
    }
  }
  std::vector<ElideLockCounters> out;
  out.reserve(by_name.size());
  for (auto& [name, e] : by_name) out.push_back(std::move(e));
  return out;
}

HeapPmuCounters Registry::heap_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Iterate label-sorted (like counter_digest) so the "first" policy and
  // the summed counters are --jobs-invariant.
  std::vector<const Capture*> sorted;
  sorted.reserve(captures_.size());
  for (const Capture& c : captures_) sorted.push_back(&c);
  std::sort(sorted.begin(), sorted.end(),
            [](const Capture* a, const Capture* b) { return a->label < b->label; });
  HeapPmuCounters t;
  for (const Capture* c : sorted) {
    if (!c->pmu || !c->pmu->heap.present) continue;
    const HeapPmuCounters& h = c->pmu->heap;
    if (!t.present) t.policy = h.policy;
    t.present = true;
    t.allocs += h.allocs;
    t.frees += h.frees;
    t.refills += h.refills;
    t.bytes_live += h.bytes_live;
    t.bytes_peak += h.bytes_peak;
    t.bytes_padding += h.bytes_padding;
    if (t.set_allocs.size() < h.set_allocs.size()) {
      t.set_allocs.resize(h.set_allocs.size(), 0);
    }
    for (size_t i = 0; i < h.set_allocs.size(); ++i) {
      t.set_allocs[i] += h.set_allocs[i];
    }
  }
  return t;
}

}  // namespace tsx::obs
