#include "obs/registry.h"

#include <algorithm>

namespace tsx::obs {

Capture make_capture(const TraceSink& sink, std::string label, double freq_ghz,
                     uint32_t threads) {
  Capture c;
  c.label = std::move(label);
  c.freq_ghz = freq_ghz;
  c.threads = threads;
  c.events = sink.events();
  c.dropped = sink.dropped();
  c.sites = sink.sites();
  c.site_names = sink.site_names();
  return c;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::add(Capture c) {
  std::lock_guard<std::mutex> lock(mu_);
  captures_.push_back(std::move(c));
}

std::vector<Capture> Registry::drain() {
  std::vector<Capture> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(captures_);
  }
  std::sort(out.begin(), out.end(),
            [](const Capture& a, const Capture& b) { return a.label < b.label; });
  return out;
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_.size();
}

}  // namespace tsx::obs
