#pragma once
// Chrome trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
//
// Layout: one "process" per capture (pid = 1-based capture index, named by
// the capture label), one track ("thread") per simulated hardware thread.
// Transaction attempts become complete ("X") duration events; aborts,
// capacity evictions and retry decisions become instant ("i") events;
// sample-window snapshots and the PMU time series become counter ("C")
// events.
//
// Timestamps convert simulated cycles to microseconds with the capture's
// core frequency and fixed 3-digit precision, so the output is byte-stable.

#include <iosfwd>
#include <vector>

#include "obs/registry.h"

namespace tsx::obs {

void write_chrome_trace(std::ostream& os, const std::vector<Capture>& captures);

}  // namespace tsx::obs
