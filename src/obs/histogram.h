#pragma once
// Fixed-bucket log2 histogram for the simulated PMU's latency distributions
// (transaction duration, abort latency, retries-per-commit).
//
// Buckets are powers of two: bucket 0 holds the value 0, bucket b >= 1 holds
// values in [2^(b-1), 2^b). With 65 buckets every uint64_t value has a home.
// Recording is O(1) and allocation-free; percentiles walk the (tiny) bucket
// array and return the *lower bound* of the bucket containing the requested
// rank — exact for distributions placed on bucket bounds (what the tests
// use) and within 2x for everything else, which is the usual log2-histogram
// contract (cf. hdrhistogram / perf's --log-scale buckets).

#include <array>
#include <bit>
#include <cstdint>

namespace tsx::obs {

class Log2Histogram {
 public:
  // bit_width(0) = 0, bit_width(1) = 1, bit_width(2..3) = 2, ... so every
  // uint64_t lands in [0, 64].
  static constexpr size_t kBuckets = 65;

  static constexpr size_t bucket_of(uint64_t v) { return std::bit_width(v); }
  static constexpr uint64_t bucket_lower_bound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  void record(uint64_t v) {
    ++counts_[bucket_of(v)];
    ++n_;
    sum_ += v;
  }

  uint64_t count() const { return n_; }
  uint64_t sum() const { return sum_; }
  double mean() const {
    return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
  }

  // Lower bound of the bucket holding the ceil(p/100 * n)-th smallest
  // recorded value (1-based rank, clamped to [1, n]). 0 when empty.
  uint64_t percentile(double p) const {
    if (n_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n_));
    if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(n_)) {
      ++rank;  // ceil
    }
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) return bucket_lower_bound(b);
    }
    return bucket_lower_bound(kBuckets - 1);
  }

  const std::array<uint64_t, kBuckets>& counts() const { return counts_; }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace tsx::obs
