#pragma once
// Fixed-bucket log2 histogram for the simulated PMU's latency distributions
// (transaction duration, abort latency, retries-per-commit) and the server
// scoreboards' latency SLO columns (bench/server).
//
// Buckets are powers of two: bucket 0 holds the value 0, bucket b >= 1 holds
// values in [2^(b-1), 2^b). With 65 buckets every uint64_t value has a home.
// Recording is O(1) and allocation-free.
//
// Percentile contract (changed for the server scoreboards — the original
// implementation returned the bucket *lower* bound, which underreports a
// tail percentile by up to 2x and is the wrong side of the error for an SLO
// gate):
//   * If every recorded value in the target bucket equals the bucket's
//     lower bound (detected exactly via the per-bucket sum), the bound is
//     returned exactly. This preserves the historical exact-on-bound
//     behavior that the test_pmu distributions rely on.
//   * Otherwise the requested rank is interpolated linearly *within* the
//     bucket's [lower, upper] range, reaching the upper bound at the
//     bucket's top rank — so a percentile never underreports by more than
//     the within-bucket spread, and the reported tail is conservative
//     (hdrhistogram's "equivalent value range" reporting, upper-bound
//     flavored).

#include <array>
#include <bit>
#include <cstdint>

namespace tsx::obs {

class Log2Histogram {
 public:
  // bit_width(0) = 0, bit_width(1) = 1, bit_width(2..3) = 2, ... so every
  // uint64_t lands in [0, 64].
  static constexpr size_t kBuckets = 65;

  static constexpr size_t bucket_of(uint64_t v) { return std::bit_width(v); }
  static constexpr uint64_t bucket_lower_bound(size_t b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  // Largest value the bucket can hold (inclusive). Bucket 64 tops out at
  // the uint64_t maximum.
  static constexpr uint64_t bucket_upper_bound(size_t b) {
    return b >= kBuckets - 1 ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
  }

  void record(uint64_t v) {
    size_t b = bucket_of(v);
    ++counts_[b];
    bucket_sums_[b] += v;
    ++n_;
    sum_ += v;
  }

  // Adds every recorded value of `o` into this histogram (exact: bucket
  // counts and sums are additive). Used to merge per-rep scoreboards.
  void merge(const Log2Histogram& o) {
    for (size_t b = 0; b < kBuckets; ++b) {
      counts_[b] += o.counts_[b];
      bucket_sums_[b] += o.bucket_sums_[b];
    }
    n_ += o.n_;
    sum_ += o.sum_;
  }

  uint64_t count() const { return n_; }
  uint64_t sum() const { return sum_; }
  double mean() const {
    return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0;
  }

  // Value at the ceil(p/100 * n)-th smallest recorded value (1-based rank,
  // clamped to [1, n]); 0 when empty. Exact when the target bucket holds
  // only its lower bound; within-bucket rank interpolation otherwise (see
  // the contract at the top of this header).
  uint64_t percentile(double p) const {
    if (n_ == 0) return 0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n_));
    if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(n_)) {
      ++rank;  // ceil
    }
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      seen += counts_[b];
      if (seen < rank) continue;
      uint64_t lo = bucket_lower_bound(b);
      uint64_t c = counts_[b];
      // All values in the bucket sit exactly on the lower bound (lo is the
      // bucket minimum, so sum == c * lo iff every value equals lo): the
      // bound is the exact answer. The product is widened so a huge bucket
      // cannot wrap into a false match.
      if (static_cast<__uint128_t>(lo) * c == bucket_sums_[b]) return lo;
      // Rank interpolation across the bucket's value range: rank_in_bucket
      // runs 1..c and maps onto (lo, hi], hitting hi at the top rank.
      uint64_t hi = bucket_upper_bound(b);
      uint64_t rank_in_bucket = rank - (seen - c);
      return lo + static_cast<uint64_t>(static_cast<__uint128_t>(hi - lo) *
                                        rank_in_bucket / c);
    }
    return bucket_upper_bound(kBuckets - 1);
  }

  const std::array<uint64_t, kBuckets>& counts() const { return counts_; }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  std::array<uint64_t, kBuckets> bucket_sums_{};
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace tsx::obs
