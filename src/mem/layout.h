#pragma once
// Fixed simulated-address-space layout. Regions are far apart so aliasing
// between runtime metadata and application data is impossible.

#include "sim/types.h"

namespace tsx::mem {

// STM metadata: global clock line, stripe lock table, per-thread log rings.
inline constexpr sim::Addr kStmRegionBase = 0x0001'0000'0000ull;

// Runtime region: RTM serial fallback lock, global spinlock for the LOCK
// backend, and other core-runtime words. Each object gets its own line.
inline constexpr sim::Addr kRuntimeRegionBase = 0x0002'0000'0000ull;

// Elidable-lock words (src/elide): one or more lines per lock, handed out
// by TxRuntime::alloc_elide_lines. A separate region (not the heap) so the
// check recorder filters lock-word traffic the same way it filters the
// backends' runtime locks — transient spin/subscription values are
// synchronization metadata, not application history.
inline constexpr sim::Addr kElideRegionBase = 0x0003'0000'0000ull;

// Application heap.
inline constexpr sim::Addr kHeapBase = 0x0004'0000'0000ull;
inline constexpr uint64_t kHeapBytes = 1ull << 36;  // 64 GiB of address space

}  // namespace tsx::mem
