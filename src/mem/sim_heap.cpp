#include "mem/sim_heap.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace tsx::mem {

SimHeap::SimHeap(Machine& m, HeapConfig cfg)
    : m_(m), cfg_(cfg), bump_(kHeapBase) {}

uint64_t SimHeap::size_class(uint64_t bytes) const {
  // Round to the next power of two, minimum one word. STAMP apps allocate a
  // handful of node sizes, so classes stay few and reuse is high.
  uint64_t b = std::max<uint64_t>(bytes, sim::kWordBytes);
  return std::bit_ceil(b);
}

Addr SimHeap::take_from_pool(PerCtx& pc, uint64_t csize, bool simulate_cost) {
  FreeStack& fl = pc.free_lists[csize];
  if (fl.empty()) {
    // Refill: carve a chunk from the global bump region.
    ++stats_.refills;
    uint64_t chunk = std::max(cfg_.chunk_bytes, csize);
    if (bump_ + chunk > kHeapBase + kHeapBytes) {
      throw std::runtime_error("simulated heap exhausted");
    }
    Addr base = bump_;
    bump_ += chunk;
    if (cfg_.prefault_on_refill) {
      // The optimized allocator touches every page of the new pool before
      // handing memory out. The touches themselves must not be speculative
      // (a refill can be triggered from inside a transaction, and faulting
      // there would defeat the optimization), so pages are marked present
      // directly and the fault-service time is charged as plain cycles.
      m_.prefault(base, chunk);
      if (simulate_cost) {
        m_.compute((chunk / sim::kPageBytes) * cfg_.touch_page_cycles);
      }
    }
    // Push descending so pops hand blocks out in address order.
    uint64_t blocks = chunk / csize;
    for (uint64_t i = blocks; i-- > 0;) {
      fl.push(arena_, base + i * csize);
    }
  }
  return fl.pop();
}

Addr SimHeap::alloc(uint64_t bytes, uint64_t align) {
  if (align < 8 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("bad alignment");
  }
  CtxId ctx = m_.current_ctx();
  PerCtx& pc = per_ctx_[ctx];
  uint64_t csize = size_class(std::max(bytes, align));
  m_.compute(cfg_.alloc_cycles);
  Addr a = take_from_pool(pc, csize, /*simulate_cost=*/true);
  blocks_[a] = Block{csize, &pc};
  ++stats_.allocs;
  stats_.bytes_live += csize;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  if (pc.scope_open) pc.scope_allocs.push_back(a);
  return a;
}

Addr SimHeap::host_alloc(uint64_t bytes, uint64_t align) {
  if (align < 8 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("bad alignment");
  }
  uint64_t csize = size_class(std::max(bytes, align));
  Addr a = take_from_pool(host_ctx_, csize, /*simulate_cost=*/false);
  m_.prefault(a, csize);
  blocks_[a] = Block{csize, &host_ctx_};
  ++stats_.allocs;
  stats_.bytes_live += csize;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  return a;
}

void SimHeap::release(Addr addr) {
  Block* b = blocks_.find(addr);
  if (!b) throw std::invalid_argument("free of unknown block");
  uint64_t csize = b->csize;
  PerCtx* owner = b->owner;
  blocks_.erase(addr);
  stats_.bytes_live -= csize;
  ++stats_.frees;
  owner->free_lists[csize].push(arena_, addr);
}

void SimHeap::free(Addr addr) {
  CtxId ctx = m_.current_ctx();
  PerCtx& pc = per_ctx_[ctx];
  m_.compute(cfg_.free_cycles);
  if (pc.scope_open) {
    // Defer: an aborted attempt must not have freed anything.
    pc.scope_frees.push_back(addr);
    return;
  }
  release(addr);
}

void SimHeap::tx_scope_begin(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  if (pc.scope_open) throw std::logic_error("nested heap tx scope");
  pc.scope_open = true;
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

void SimHeap::tx_scope_commit(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  pc.scope_open = false;
  for (Addr a : pc.scope_frees) release(a);
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

void SimHeap::tx_scope_abort(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  pc.scope_open = false;
  // Undo speculative allocations; drop deferred frees.
  for (Addr a : pc.scope_allocs) release(a);
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

uint64_t SimHeap::block_size(Addr addr) const {
  const Block* b = blocks_.find(addr);
  return b ? b->csize : 0;
}

}  // namespace tsx::mem
