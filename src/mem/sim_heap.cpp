#include "mem/sim_heap.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace tsx::mem {

const char* placement_policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kSizeClass: return "size-class";
    case PlacementPolicy::kBumpPerThread: return "bump";
    case PlacementPolicy::kPadded: return "padded";
    case PlacementPolicy::kColored: return "colored";
  }
  return "?";
}

SimHeap::SimHeap(Machine& m, HeapConfig cfg)
    : m_(m),
      cfg_(cfg),
      bump_(kHeapBase),
      l1_sets_(std::max<uint32_t>(1, m.l1_geometry().sets())) {
  stats_.set_allocs.assign(l1_sets_, 0);
}

uint64_t SimHeap::size_class(uint64_t bytes) const {
  // Round to the next power of two, minimum one word. STAMP apps allocate a
  // handful of node sizes, so classes stay few and reuse is high.
  uint64_t b = std::max<uint64_t>(bytes, sim::kWordBytes);
  uint64_t c = std::bit_ceil(b);
  // Line-granular policies never share a cache line between blocks.
  if (cfg_.policy == PlacementPolicy::kPadded ||
      cfg_.policy == PlacementPolicy::kColored) {
    c = std::max<uint64_t>(c, sim::kLineBytes);
  }
  return c;
}

Addr SimHeap::carve_chunk(uint64_t chunk, uint64_t align, bool simulate_cost) {
  ++stats_.refills;
  // Round the refill base up to the requested alignment. Without this, a
  // class larger than the previous refills' chunk granularity would hand
  // out blocks that violate the caller's power-of-two `align` contract
  // (e.g. a 128 KiB class carved at a 64 KiB-aligned bump cursor).
  Addr base = (bump_ + align - 1) & ~(align - 1);
  if (base + chunk > kHeapBase + kHeapBytes) {
    throw std::runtime_error("simulated heap exhausted");
  }
  bump_ = base + chunk;
  if (cfg_.prefault_on_refill) {
    // The optimized allocator touches every page of the new pool before
    // handing memory out. The touches themselves must not be speculative
    // (a refill can be triggered from inside a transaction, and faulting
    // there would defeat the optimization), so pages are marked present
    // directly and the fault-service time is charged as plain cycles.
    m_.prefault(base, chunk);
    if (simulate_cost) {
      m_.compute((chunk / sim::kPageBytes) * cfg_.touch_page_cycles);
    }
  }
  return base;
}

void SimHeap::refill(FreeStack& fl, uint64_t csize, bool simulate_cost) {
  uint64_t chunk = std::max(cfg_.chunk_bytes, csize);
  if (cfg_.policy != PlacementPolicy::kColored) {
    Addr base = carve_chunk(chunk, csize, simulate_cost);
    // Push descending so pops hand blocks out in address order.
    uint64_t blocks = chunk / csize;
    for (uint64_t i = blocks; i-- > 0;) {
      fl.push(arena_, base + i * csize);
    }
    return;
  }

  // kColored: place blocks by their L1 set index. The carve is aligned to
  // the larger of the class and one full set sweep, so the chunk base
  // always starts on set 0 and the eligible-slot sweep below cannot come
  // up empty.
  uint64_t sweep = uint64_t{l1_sets_} * sim::kLineBytes;
  Addr base = carve_chunk(chunk, std::max(csize, sweep), simulate_cost);
  uint64_t slots = chunk / csize;
  uint32_t sets = cfg_.color_sets;
  if (sets == 0 || sets >= l1_sets_) {
    // Spread: all slots are eligible, but the pop order is rotated per
    // refill. Each class's chunk base maps to set 0, so without rotation
    // every pool would lead with the same few sets; rotating balances the
    // cross-class set histogram.
    uint64_t rot = color_rot_++ % slots;
    for (uint64_t j = slots; j-- > 0;) {
      fl.push(arena_, base + ((rot + j) % slots) * csize);
    }
    return;
  }
  // Pack: keep only slots whose first line maps to one of the first
  // `color_sets` sets. Fewer blocks per chunk — the skipped address space
  // is the price of concentrating the working set into few sets.
  for (uint64_t i = slots; i-- > 0;) {
    Addr a = base + i * csize;
    if ((a / sim::kLineBytes) % l1_sets_ < sets) fl.push(arena_, a);
  }
}

Addr SimHeap::take_from_pool(PerCtx& pc, uint64_t csize, bool simulate_cost) {
  if (cfg_.policy == PlacementPolicy::kBumpPerThread) {
    // Sequential carving from the context's current run; natural alignment
    // satisfies any `align <= csize` request.
    Addr cur = (pc.bump_cur + csize - 1) & ~(csize - 1);
    if (cur + csize > pc.bump_end) {
      uint64_t chunk = std::max(cfg_.chunk_bytes, csize);
      cur = carve_chunk(chunk, csize, simulate_cost);
      pc.bump_end = cur + chunk;
    }
    pc.bump_cur = cur + csize;
    return cur;
  }
  FreeStack& fl = pc.free_lists[csize];
  if (fl.empty()) refill(fl, csize, simulate_cost);
  return fl.pop();
}

void SimHeap::count_placement(Addr addr) {
  ++stats_.set_allocs[(addr / sim::kLineBytes) % l1_sets_];
}

Addr SimHeap::alloc(uint64_t bytes, uint64_t align) {
  if (align < 8 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("bad alignment");
  }
  CtxId ctx = m_.current_ctx();
  PerCtx& pc = per_ctx_[ctx];
  uint64_t want = std::max(bytes, align);
  uint64_t csize = size_class(want);
  m_.compute(cfg_.alloc_cycles);
  Addr a = take_from_pool(pc, csize, /*simulate_cost=*/true);
  blocks_[a] = Block{csize, &pc};
  ++stats_.allocs;
  stats_.bytes_live += csize;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  stats_.bytes_padding +=
      csize - std::bit_ceil(std::max<uint64_t>(want, sim::kWordBytes));
  count_placement(a);
  if (pc.scope_open) pc.scope_allocs.push_back(a);
  return a;
}

Addr SimHeap::host_alloc(uint64_t bytes, uint64_t align) {
  if (align < 8 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("bad alignment");
  }
  uint64_t want = std::max(bytes, align);
  uint64_t csize = size_class(want);
  Addr a = take_from_pool(host_ctx_, csize, /*simulate_cost=*/false);
  m_.prefault(a, csize);
  blocks_[a] = Block{csize, &host_ctx_};
  ++stats_.allocs;
  stats_.bytes_live += csize;
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
  stats_.bytes_padding +=
      csize - std::bit_ceil(std::max<uint64_t>(want, sim::kWordBytes));
  count_placement(a);
  return a;
}

void SimHeap::release(Addr addr) {
  Block* b = blocks_.find(addr);
  if (!b) throw std::invalid_argument("free of unknown block");
  uint64_t csize = b->csize;
  PerCtx* owner = b->owner;
  blocks_.erase(addr);
  stats_.bytes_live -= csize;
  ++stats_.frees;
  if (cfg_.policy != PlacementPolicy::kBumpPerThread) {
    owner->free_lists[csize].push(arena_, addr);
  }
  // kBumpPerThread never reuses: the address is retired for good.
}

void SimHeap::free(Addr addr) {
  CtxId ctx = m_.current_ctx();
  PerCtx& pc = per_ctx_[ctx];
  // Validate BEFORE charging free_cycles: an invalid free must surface as
  // an exception from free() itself, without mutating simulated time (a
  // mid-executor throw after compute() would leave the error path with a
  // different clock than the caller observed).
  if (!blocks_.find(addr)) {
    throw std::invalid_argument("free of unknown block");
  }
  if (pc.scope_open) {
    for (Addr f : pc.scope_frees) {
      if (f == addr) {
        throw std::invalid_argument(
            "double free of one block inside a transaction scope");
      }
    }
    m_.compute(cfg_.free_cycles);
    // Defer: an aborted attempt must not have freed anything.
    pc.scope_frees.push_back(addr);
    return;
  }
  m_.compute(cfg_.free_cycles);
  release(addr);
}

void SimHeap::tx_scope_begin(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  if (pc.scope_open) throw std::logic_error("nested heap tx scope");
  pc.scope_open = true;
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

void SimHeap::tx_scope_commit(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  pc.scope_open = false;
  for (Addr a : pc.scope_frees) release(a);
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

void SimHeap::tx_scope_abort(CtxId ctx) {
  PerCtx& pc = per_ctx_[ctx];
  pc.scope_open = false;
  // Undo speculative allocations; drop deferred frees.
  for (Addr a : pc.scope_allocs) release(a);
  pc.scope_allocs.clear();
  pc.scope_frees.clear();
}

uint64_t SimHeap::block_size(Addr addr) const {
  const Block* b = blocks_.find(addr);
  return b ? b->csize : 0;
}

}  // namespace tsx::mem
