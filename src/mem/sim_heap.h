#pragma once
// Simulated-memory allocator in the style of STAMP's thread-local memory
// manager: per-thread segregated free lists refilled in chunks from a global
// bump region, so parallel allocation needs no synchronization.
//
// Two properties matter for the paper's experiments:
//   * Lazily-faulted pages: freshly obtained chunks are NOT present; the
//     first touch faults — and a fault inside a hardware transaction aborts
//     it (misc3). This is the vacation §V-B pathology.
//   * `prefault_on_refill`: the optimized allocator touches chunk pages when
//     the pool grows (simulated non-tx stores), eliminating in-tx faults.
//
// Transactional scopes: allocations made inside a speculative attempt are
// registered and released again if the attempt aborts; frees are deferred to
// commit (an aborted attempt must not release memory the old state uses).

#include <array>
#include <cstdint>
#include <vector>

#include "mem/layout.h"
#include "sim/machine.h"
#include "sim/types.h"
#include "util/arena.h"
#include "util/flat_table.h"

namespace tsx::mem {

using sim::Addr;
using sim::CtxId;
using sim::Machine;

struct HeapConfig {
  bool prefault_on_refill = false;
  uint64_t chunk_bytes = 64 * 1024;
  sim::Cycles alloc_cycles = 28;  // malloc fast-path cost
  sim::Cycles free_cycles = 20;
  sim::Cycles touch_page_cycles = 900;  // pre-touch cost per page on refill
};

struct HeapStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t refills = 0;
  uint64_t bytes_live = 0;
  uint64_t bytes_peak = 0;
};

class SimHeap {
 public:
  SimHeap(Machine& m, HeapConfig cfg = {});

  // Allocates from the calling context's pool. Must be called from a fiber.
  // `align` must be a power of two >= 8.
  Addr alloc(uint64_t bytes, uint64_t align = 8);
  void free(Addr addr);

  // Host-side allocation for setup code running outside the simulation
  // (no cost, pages prefaulted). Freeable with free() only from a fiber.
  Addr host_alloc(uint64_t bytes, uint64_t align = 8);

  // Transactional scopes (wired into the RTM/STM executors per context).
  void tx_scope_begin(CtxId ctx);
  void tx_scope_commit(CtxId ctx);
  void tx_scope_abort(CtxId ctx);

  const HeapStats& stats() const { return stats_; }

  // Testing: size of the block owning `addr`, 0 if unknown.
  uint64_t block_size(Addr addr) const;

 private:
  // LIFO free list in arena-backed chunks: no per-node allocation, and the
  // chunk links are recycled (a drained chunk stays linked via `next` for
  // the next push wave), so steady-state alloc/free churn touches no
  // allocator at all. Refills push block addresses DESCENDING so pops hand
  // blocks out in ascending address order — the exact sequence the previous
  // vector-based list (push ascending, reverse, pop_back) produced.
  class FreeStack {
   public:
    bool empty() const { return size_ == 0; }
    void push(util::Arena& arena, Addr v) {
      if (!top_) {
        top_ = new_chunk(arena, nullptr);
      } else if (top_->count == kSlots) {
        top_ = top_->next ? top_->next : new_chunk(arena, top_);
      }
      top_->slots[top_->count++] = v;
      ++size_;
    }
    Addr pop() {
      if (top_->count == 0) top_ = top_->prev;
      --size_;
      return top_->slots[--top_->count];
    }

   private:
    static constexpr uint32_t kSlots = 64;
    struct Chunk {
      Chunk* prev = nullptr;
      Chunk* next = nullptr;
      uint32_t count = 0;
      Addr slots[kSlots];
    };
    static Chunk* new_chunk(util::Arena& arena, Chunk* prev) {
      Chunk* c = arena.create<Chunk>();
      c->prev = prev;
      if (prev) prev->next = c;
      return c;
    }

    Chunk* top_ = nullptr;
    uint64_t size_ = 0;
  };

  struct PerCtx {
    // size-class -> free addresses
    util::FlatTable<FreeStack> free_lists;
    bool scope_open = false;
    std::vector<Addr> scope_allocs;
    std::vector<Addr> scope_frees;
  };

  struct Block {
    uint64_t csize = 0;
    PerCtx* owner = nullptr;
  };

  uint64_t size_class(uint64_t bytes) const;
  Addr take_from_pool(PerCtx& pc, uint64_t csize, bool simulate_cost);
  void release(Addr addr);

  Machine& m_;
  HeapConfig cfg_;
  Addr bump_;
  util::Arena arena_;  // FreeStack chunk storage (lives as long as the heap)
  std::array<PerCtx, sim::kMaxCtxs> per_ctx_;
  PerCtx host_ctx_;
  // addr -> owning block metadata (flat: the directory is probed on every
  // free and block_size query).
  util::FlatTable<Block> blocks_;
  HeapStats stats_;
};

}  // namespace tsx::mem
